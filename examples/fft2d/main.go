// fft2d reproduces one cell of the paper's Table 1.0 interactively: the
// Parallel 2D FFT benchmark, hand-coded vs SAGE auto-generated, on a chosen
// platform, size and node count.
//
//	go run ./examples/fft2d
//	go run ./examples/fft2d -n 1024 -nodes 8 -platform CSPI
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/platforms"
)

func main() {
	n := flag.Int("n", 512, "matrix edge (power of two)")
	nodes := flag.Int("nodes", 8, "processor count")
	platformName := flag.String("platform", "CSPI", "target platform")
	flag.Parse()

	pl, err := platforms.ByName(*platformName)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := experiments.RunTable1(experiments.Table1Config{
		Platform: pl,
		Sizes:    []int{*n},
		Nodes:    []int{*nodes},
		Protocol: experiments.Protocol{Repetitions: 1, Iterations: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.Format())
	fmt.Println("\nThe paper reports SAGE auto-generated code running at roughly")
	fmt.Println("77.5-86% of hand-coded performance on the CSPI target; the 2D FFT")
	fmt.Println("row above should fall in that band.")
}
