// cornerturn runs the Distributed Corner Turn benchmark under the SAGE
// runtime with full instrumentation and prints the Visualizer report —
// phase breakdown, bottleneck analysis, and an ASCII execution timeline —
// for a configurable machine.
//
//	go run ./examples/cornerturn
//	go run ./examples/cornerturn -n 512 -nodes 4 -platform Mercury
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	sage "repro"
)

func main() {
	n := flag.Int("n", 256, "matrix edge (power of two)")
	nodes := flag.Int("nodes", 4, "processor count")
	platformName := flag.String("platform", "CSPI", "target platform")
	iterations := flag.Int("iterations", 4, "data sets to process")
	flag.Parse()

	app, err := sage.NewCornerTurnApp(*n, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	proj, err := sage.NewProject(app, *platformName, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		log.Fatal(err)
	}
	res, trace, err := proj.RunTraced(sage.RunOptions{Iterations: *iterations})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corner turn %dx%d on %s with %d nodes: period %v, latency %v\n\n",
		*n, *n, *platformName, *nodes, res.Period, res.AvgLatency())
	if err := trace.Report(os.Stdout, 100); err != nil {
		log.Fatal(err)
	}
	// The result is the transpose of the generated input: spot-check one
	// off-diagonal pair through the collected output.
	fmt.Printf("\noutput[2][7] = %v (transpose of input[7][2])\n", res.Output.At(2, 7))
}
