// stap builds the space-time adaptive processing style pipeline the paper's
// introduction motivates (radar/signal processing), lets the AToT genetic
// mapper place it on a platform, and compares the optimised mapping against
// the naive round-robin placement on the simulated machine.
//
//	go run ./examples/stap
//	go run ./examples/stap -n 256 -threads 6 -nodes 8 -platform SKY
package main

import (
	"flag"
	"fmt"
	"log"

	sage "repro"
)

func main() {
	n := flag.Int("n", 128, "data cube edge (power of two)")
	threads := flag.Int("threads", 6, "worker threads per stage")
	nodes := flag.Int("nodes", 8, "processor count")
	platformName := flag.String("platform", "CSPI", "target platform")
	flag.Parse()

	app, err := sage.NewSTAPApp(*n, *threads)
	if err != nil {
		log.Fatal(err)
	}

	// Naive placement first.
	naive, err := sage.NewProject(app, *platformName, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	naive.MapRoundRobin()
	naiveRes, err := naive.Run(sage.RunOptions{Iterations: 5})
	if err != nil {
		log.Fatal(err)
	}

	// AToT genetic mapping on a fresh project.
	tuned, err := sage.NewProject(app, *platformName, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := tuned.AutoMap(sage.GAConfig{Population: 48, Generations: 80, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tunedRes, err := tuned.Run(sage.RunOptions{Iterations: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("STAP pipeline %dx%d, %d worker threads/stage, %s with %d nodes\n\n",
		*n, *n, *threads, *platformName, *nodes)
	fmt.Printf("round-robin mapping:  period %-14v latency %v\n", naiveRes.Period, naiveRes.AvgLatency())
	fmt.Printf("AToT GA mapping:      period %-14v latency %v\n", tunedRes.Period, tunedRes.AvgLatency())
	fmt.Printf("\nGA: %d generations, %d cost evaluations, objective %.4g\n",
		stats.Generations, stats.Evaluations, stats.Best.Total)
	fmt.Println("\nGA thread placement:")
	for _, f := range tuned.App.Functions {
		fmt.Printf("  %-10s -> nodes %v\n", f.Name, tuned.Mapping.Assign[f.Name])
	}
}
