// Quickstart: model a small dataflow application, map it onto a simulated
// platform, generate glue code with the Alter generator, and execute it
// under the SAGE runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sage "repro"
)

func main() {
	// 1. Application editor: a three-stage pipeline over a 256x256 complex
	// matrix — synthesise, window each row, FFT each row, collect.
	app := sage.NewApp("quickstart")
	mt, err := app.AddType(&sage.DataType{Name: "frame", Rows: 256, Cols: 256, Elem: "complex"})
	if err != nil {
		log.Fatal(err)
	}
	src := app.AddFunction(&sage.Function{Name: "source", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 42}})
	src.AddOutput("out", mt, sage.ByRows)

	win := app.AddFunction(&sage.Function{Name: "window", Kind: "window_rows", Threads: 4,
		Params: map[string]any{"window": "hann"}})
	win.AddInput("in", mt, sage.ByRows)
	win.AddOutput("out", mt, sage.ByRows)

	fft := app.AddFunction(&sage.Function{Name: "fft", Kind: "fft_rows", Threads: 4})
	fft.AddInput("in", mt, sage.ByRows)
	fft.AddOutput("out", mt, sage.ByRows)

	sink := app.AddFunction(&sage.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, sage.ByRows)

	for _, c := range [][4]string{
		{"source", "out", "window", "in"},
		{"window", "out", "fft", "in"},
		{"fft", "out", "sink", "in"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			log.Fatal(err)
		}
	}
	app.AssignIDs()

	// 2. Target a platform from the hardware shelf.
	proj, err := sage.NewProject(app, "CSPI", 4)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Map threads onto processors (worker thread i -> node i).
	if err := proj.MapSpread(); err != nil {
		log.Fatal(err)
	}

	// 4. Generate glue code: the Alter script emits the runtime tables and
	// a readable listing.
	out, err := proj.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("---- generated glue listing ----")
	fmt.Print(out.GlueSource)

	// 5. Execute 10 data sets on the simulated machine.
	res, err := proj.Run(sage.RunOptions{Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("---- execution ----")
	fmt.Printf("period:      %v per data set\n", res.Period)
	fmt.Printf("avg latency: %v source-to-sink\n", res.AvgLatency())
	fmt.Printf("output:      %dx%d matrix, sample [0][1] = %v\n",
		res.Output.Rows, res.Output.Cols, res.Output.At(0, 1))
}
