// channelizer builds a decimating filter-bank front end — the classic first
// stage of the radar/communications pipelines the paper's introduction
// motivates: FIR-filter and decimate every sensor row, spectrum-analyse the
// reduced-rate data, detect power. It demonstrates shape-changing dataflow
// (the decimator's output type is narrower than its input type) flowing
// through the generator and runtime unchanged.
//
//	go run ./examples/channelizer
//	go run ./examples/channelizer -n 512 -factor 8 -nodes 8
package main

import (
	"flag"
	"fmt"
	"log"

	sage "repro"
)

func main() {
	n := flag.Int("n", 256, "input frame edge (power of two)")
	factor := flag.Int("factor", 4, "decimation factor (must divide n; n/factor must be a power of two)")
	nodes := flag.Int("nodes", 4, "processor count")
	platformName := flag.String("platform", "CSPI", "target platform")
	flag.Parse()

	app := sage.NewApp("channelizer")
	frame, err := app.AddType(&sage.DataType{Name: "frame", Rows: *n, Cols: *n, Elem: "complex"})
	if err != nil {
		log.Fatal(err)
	}
	narrow, err := app.AddType(&sage.DataType{Name: "narrow", Rows: *n, Cols: *n / *factor, Elem: "complex"})
	if err != nil {
		log.Fatal(err)
	}

	src := app.AddFunction(&sage.Function{Name: "sensor", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 11}})
	src.AddOutput("out", frame, sage.ByRows)

	dec := app.AddFunction(&sage.Function{Name: "decimate", Kind: "fir_decimate_rows", Threads: *nodes,
		Params: map[string]any{"ntaps": 12, "factor": *factor}})
	dec.AddInput("in", frame, sage.ByRows)
	dec.AddOutput("out", narrow, sage.ByRows)

	fft := app.AddFunction(&sage.Function{Name: "spectrum", Kind: "fft_rows", Threads: *nodes})
	fft.AddInput("in", narrow, sage.ByRows)
	fft.AddOutput("out", narrow, sage.ByRows)

	det := app.AddFunction(&sage.Function{Name: "detect", Kind: "mag2", Threads: *nodes})
	det.AddInput("in", narrow, sage.ByRows)
	det.AddOutput("out", narrow, sage.ByRows)

	sink := app.AddFunction(&sage.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", narrow, sage.ByRows)

	for _, c := range [][4]string{
		{"sensor", "out", "decimate", "in"},
		{"decimate", "out", "spectrum", "in"},
		{"spectrum", "out", "detect", "in"},
		{"detect", "out", "sink", "in"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			log.Fatal(err)
		}
	}
	app.AssignIDs()

	proj, err := sage.NewProject(app, *platformName, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		log.Fatal(err)
	}
	res, err := proj.Run(sage.RunOptions{Iterations: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channelizer %dx%d -> %dx%d on %s (%d nodes)\n",
		*n, *n, *n, *n / *factor, *platformName, *nodes)
	fmt.Printf("  period %v, latency %v\n", res.Period, res.AvgLatency())
	fmt.Printf("  detected power sample [0][1] = %.4f\n", real(res.Output.At(0, 1)))
}
