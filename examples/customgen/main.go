// customgen demonstrates Alter as a user-facing tool language: a custom
// generator script that traverses the model through the same standard calls
// the built-in generator uses, emits a design report instead of runtime
// tables, and a second script that generates valid tables while injecting a
// probe property into every function — the kind of tool customisation the
// paper's Alter section is about.
//
//	go run ./examples/customgen
package main

import (
	"fmt"
	"log"

	sage "repro"
)

// reportScript walks the model and emits a human-readable design audit on
// the glue-listing stream. It deliberately emits no table source, so it is
// paired with the standard generator for execution.
const reportScript = `
(emit-src (format "DESIGN AUDIT for ~a on ~a (~a nodes)" (app-name) (platform-name) (num-nodes)))
(emit-src "")
(define total-threads
  (fold + 0 (map function-threads (functions))))
(emit-src (format "functions: ~a   total threads: ~a   arcs: ~a"
                  (length (functions)) total-threads (length (arcs))))
(for-each
 (lambda (f)
   (emit-src (format "  ~a: kind=~a threads=~a nodes=~a"
                     (function-name f) (function-kind f) (function-threads f)
                     (map (lambda (i) (node-of f i)) (range (function-threads f)))))
   ;; Tag heavy stages for instrumentation: anything with > 2 threads.
   (when (> (function-threads f) 2)
     (set-property f "probe" #t)))
 (functions))
(emit-src "")
(for-each
 (lambda (a)
   (let ((sp (arc-from a)) (dp (arc-to a)))
     (emit-src (format "  dataflow ~a.~a (~a) -> ~a.~a (~a), ~ax~a elements"
                       (function-name (port-fn sp)) (port-name sp) (port-striping sp)
                       (function-name (port-fn dp)) (port-name dp) (port-striping dp)
                       (port-rows sp) (port-cols sp)))))
 (arcs))
(emit-src "")
`

func main() {
	app, err := sage.NewSTAPApp(128, 4)
	if err != nil {
		log.Fatal(err)
	}
	proj, err := sage.NewProject(app, "CSPI", 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		log.Fatal(err)
	}

	// Compose the audit pass with the standard generator: the script runs
	// first (emitting the report and tagging heavy functions with the
	// probe property), then the standard script emits the verified tables.
	out, err := proj.GenerateWith(reportScript + sage.StandardGeneratorScript)
	if err != nil {
		log.Fatal(err)
	}
	// The glue listing now opens with the audit report, followed by the
	// standard generator's listing.
	fmt.Print(out.GlueSource)
	probed := 0
	for _, f := range out.Tables.Functions {
		if f.Probe {
			probed++
			fmt.Printf("probe enabled on %s (threads=%d)\n", f.Name, f.Threads)
		}
	}
	fmt.Printf("%d of %d functions instrumented by the custom script\n", probed, len(out.Tables.Functions))

	res, err := proj.Run(sage.RunOptions{Iterations: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run complete: period %v, latency %v\n", res.Period, res.AvgLatency())
}
