package sage_test

import (
	"strings"
	"testing"

	sage "repro"
)

func TestProjectWorkflowEndToEnd(t *testing.T) {
	app, err := sage.NewFFT2DApp(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := sage.NewProject(app, "CSPI", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		t.Fatal(err)
	}
	out, err := proj.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables.Functions) != 4 || out.GlueSource == "" {
		t.Fatalf("unexpected glue output: %d functions", len(out.Tables.Functions))
	}
	res, err := proj.Run(sage.RunOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency() <= 0 || res.Period <= 0 || res.Output == nil {
		t.Fatalf("result = %+v", res)
	}
}

func TestProjectAutoMap(t *testing.T) {
	app, err := sage.NewSTAPApp(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := sage.NewProject(app, "Mercury", 8)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := proj.AutoMap(sage.GAConfig{Population: 16, Generations: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Best.Total <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if proj.Mapping == nil {
		t.Fatal("AutoMap did not install a mapping")
	}
	if _, err := proj.Run(sage.RunOptions{Iterations: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectRunTraced(t *testing.T) {
	app, err := sage.NewCornerTurnApp(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := sage.NewProject(app, "SKY", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		t.Fatal(err)
	}
	res, trace, err := proj.RunTraced(sage.RunOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(trace.Events) == 0 {
		t.Fatal("no trace collected")
	}
	var sb strings.Builder
	if err := trace.Report(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Visualizer") {
		t.Fatal("report missing")
	}
}

func TestProjectErrors(t *testing.T) {
	if _, err := sage.NewProject(nil, "CSPI", 4); err == nil {
		t.Fatal("nil app accepted")
	}
	app, _ := sage.NewFFT2DApp(32, 2)
	if _, err := sage.NewProject(app, "Cray", 4); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := sage.NewProject(app, "CSPI", 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
	proj, err := sage.NewProject(app, "CSPI", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj.Generate(); err == nil {
		t.Fatal("generate without mapping accepted")
	}
	if _, err := proj.Run(sage.RunOptions{}); err == nil {
		t.Fatal("run without mapping accepted")
	}
}

func TestCustomGeneratorScript(t *testing.T) {
	app, _ := sage.NewCornerTurnApp(32, 2)
	proj, err := sage.NewProject(app, "CSPI", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		t.Fatal(err)
	}
	// A custom script that counts functions through the standard calls.
	script := `
	  (define n (length (functions)))
	  (emit (format "(app ~s ~s ~a)" (app-name) (platform-name) (num-nodes)))
	  (emit (format "(order ~a)" (topo-order)))
	`
	// Incomplete tables: verification must reject them, proving the custom
	// script path is live.
	if _, err := proj.GenerateWith(script); err == nil {
		t.Fatal("incomplete custom generation accepted")
	}
}

func TestPlatformRegistryExposed(t *testing.T) {
	names := sage.PlatformNames()
	if len(names) < 4 {
		t.Fatalf("platforms = %v", names)
	}
	pl, err := sage.PlatformByName("CSPI")
	if err != nil || pl.Name != "CSPI" {
		t.Fatalf("ByName: %v %v", pl, err)
	}
}

func TestShelfThroughFacade(t *testing.T) {
	s := sage.BuiltinShelf()
	app := sage.NewApp("shelf-facade")
	mt, err := app.AddType(&sage.DataType{Name: "cpx32x32", Rows: 32, Cols: 32, Elem: "complex"})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&sage.Function{Name: "src", Kind: "source_matrix", Threads: 1})
	src.AddOutput("out", mt, sage.ByRows)
	if _, err := s.Instantiate(app, "corner-turn-stage", "ct", sage.ShelfParams{"n": 32, "threads": 2}); err != nil {
		t.Fatal(err)
	}
	snk := app.AddFunction(&sage.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, sage.ByRows)
	if _, err := app.Connect("src", "out", "ct", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("ct", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	// NewProject flattens the composite automatically.
	proj, err := sage.NewProject(app, "CSPI", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		t.Fatal(err)
	}
	res, err := proj.Run(sage.RunOptions{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil {
		t.Fatal("no output")
	}
}

func TestManualAppThroughFacade(t *testing.T) {
	// Build a custom pipeline directly against the facade types.
	app := sage.NewApp("facade-demo")
	mt, err := app.AddType(&sage.DataType{Name: "m", Rows: 32, Cols: 32, Elem: "complex"})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&sage.Function{Name: "src", Kind: "source_matrix", Threads: 1, Params: map[string]any{"seed": 9}})
	src.AddOutput("out", mt, sage.ByRows)
	work := app.AddFunction(&sage.Function{Name: "work", Kind: "scale", Threads: 2, Params: map[string]any{"factor": 2.0}})
	work.AddInput("in", mt, sage.ByRows)
	work.AddOutput("out", mt, sage.ByRows)
	snk := app.AddFunction(&sage.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, sage.ByRows)
	if _, err := app.Connect("src", "out", "work", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("work", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	app.AssignIDs()

	proj, err := sage.NewProject(app, "Workstations", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.MapSpread(); err != nil {
		t.Fatal(err)
	}
	res, err := proj.Run(sage.RunOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil {
		t.Fatal("no output")
	}
	// The sink sees the doubled source.
	if got := res.Output.At(3, 7); got == 0 {
		t.Fatal("output looks empty")
	}
}
