// Benchmark harness regenerating every table and figure of the paper's
// evaluation (run: go test -bench=. -benchmem). Each benchmark prints the
// corresponding table once (the rows the paper reports) and exposes the key
// quantities as custom metrics:
//
//	hand-vms / sage-vms — virtual milliseconds per data set on the
//	                      simulated CSPI machine (hand-coded vs generated)
//	pct-of-hand         — the paper's "% of Hand Coded" column
//
// Absolute host ns/op numbers measure simulator throughput, not 1999
// hardware; the virtual-time metrics carry the reproduced results.
package sage_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/alter"
	"repro/internal/apps"
	"repro/internal/atot"
	"repro/internal/experiments"
	"repro/internal/gluegen"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"

	"repro/internal/machine"
)

// benchProto keeps full-scale benchmarks affordable: the simulator is
// deterministic, so repetitions only confirm identical numbers.
var benchProto = experiments.Protocol{Repetitions: 1, Iterations: 3}

var printOnce sync.Map

// printTable prints s once per benchmark name across -benchtime reruns.
func printTable(name, s string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", s)
	}
}

// BenchmarkTable1 regenerates Table 1.0: hand-coded vs SAGE auto-generated
// 2D FFT and Corner Turn on the CSPI machine at 256/512/1024 and 4/8 nodes.
func BenchmarkTable1(b *testing.B) {
	var tbl *experiments.Table1
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.RunTable1(experiments.Table1Config{Protocol: benchProto})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("table1", tbl.Format())
	b.ReportMetric(tbl.FFTAvg, "fft-pct-of-hand")
	b.ReportMetric(tbl.CTAvg, "ct-pct-of-hand")
	b.ReportMetric(tbl.OverallAvg, "overall-pct-of-hand")
}

// BenchmarkTable1Parallel sweeps the experiment engine's worker-pool size
// over the Table 1.0 grid. Virtual-time results are byte-identical at every
// pool size (asserted here); host ns/op across the sub-benchmarks measures
// the engine's wall-clock speedup — compare parallel=1 against
// parallel=NumCPU.
func BenchmarkTable1Parallel(b *testing.B) {
	reference := ""
	sizes := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		sizes = append(sizes, n)
	}
	for _, par := range sizes {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			proto := benchProto
			proto.Parallelism = par
			var tbl *experiments.Table1
			for i := 0; i < b.N; i++ {
				var err error
				tbl, err = experiments.RunTable1(experiments.Table1Config{Protocol: proto})
				if err != nil {
					b.Fatal(err)
				}
			}
			if reference == "" {
				reference = tbl.Format()
			} else if tbl.Format() != reference {
				b.Fatal("parallel run produced different results than sequential")
			}
			b.ReportMetric(float64(par), "pool-size")
			b.ReportMetric(tbl.OverallAvg, "overall-pct-of-hand")
		})
	}
}

// BenchmarkTable1Cells runs each Table 1.0 cell as a sub-benchmark with
// per-cell metrics.
func BenchmarkTable1Cells(b *testing.B) {
	for _, kind := range []experiments.AppKind{experiments.AppFFT2D, experiments.AppCornerTurn} {
		for _, n := range []int{256, 512, 1024} {
			for _, nodes := range []int{4, 8} {
				kind, n, nodes := kind, n, nodes
				b.Run(fmt.Sprintf("%s/n=%d/nodes=%d", kind, n, nodes), func(b *testing.B) {
					var row experiments.Row
					for i := 0; i < b.N; i++ {
						tbl, err := experiments.RunTable1(experiments.Table1Config{
							Sizes: []int{n}, Nodes: []int{nodes}, Protocol: benchProto,
						})
						if err != nil {
							b.Fatal(err)
						}
						for _, r := range tbl.Rows {
							if r.App == kind {
								row = r
							}
						}
					}
					b.ReportMetric(float64(row.Hand)/1e6, "hand-vms")
					b.ReportMetric(float64(row.Sage)/1e6, "sage-vms")
					b.ReportMetric(row.PctOfHand, "pct-of-hand")
				})
			}
		}
	}
}

// BenchmarkTwoNodeAnomaly regenerates the §3.4 observation: the two-node
// corner turn suffers the largest buffer-management overhead.
func BenchmarkTwoNodeAnomaly(b *testing.B) {
	var res *experiments.TwoNode
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTwoNode(platforms.CSPI(), 512, benchProto)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("twonode", res.Format())
	if !res.WorstIsTwoNodes() {
		b.Fatal("two-node configuration is not the worst (paper §3.4 shape lost)")
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.PctOfHand, fmt.Sprintf("pct-at-%d-nodes", r.Nodes))
	}
}

// BenchmarkAggregateEfficiency regenerates the §4 claim: overall efficiency
// of generated code, plus the future-work optimised-buffer mode that targets
// "90% of hand coded performance".
func BenchmarkAggregateEfficiency(b *testing.B) {
	var agg *experiments.Aggregate
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = experiments.RunAggregate(experiments.Table1Config{
			Sizes: []int{512}, Nodes: []int{4, 8}, Protocol: benchProto,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("aggregate", agg.Format())
	b.ReportMetric(agg.Baseline.OverallAvg, "baseline-pct")
	b.ReportMetric(agg.Optimized.OverallAvg, "optimized-pct")
}

// BenchmarkCrossVendor regenerates the MITRE-style cross-vendor sweep the
// paper's §3.1 draws on: both hand-coded benchmarks across Mercury, CSPI,
// SIGI and SKY at several node counts.
func BenchmarkCrossVendor(b *testing.B) {
	var cv *experiments.CrossVendor
	for i := 0; i < b.N; i++ {
		var err error
		cv, err = experiments.RunCrossVendor(1024, []int{2, 4, 8, 16}, benchProto)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("crossvendor", cv.Format())
	for _, r := range cv.Rows {
		if r.Nodes == 8 {
			b.ReportMetric(float64(r.Latency)/1e6, fmt.Sprintf("%s-%s-vms", r.Platform, shortApp(r.App)))
		}
	}
}

func shortApp(k experiments.AppKind) string {
	if k == experiments.AppFFT2D {
		return "fft"
	}
	return "ct"
}

// BenchmarkPortability regenerates the §4 portability claim: one model,
// glue regenerated per platform, identical numerical output everywhere.
func BenchmarkPortability(b *testing.B) {
	var p *experiments.Portability
	for i := 0; i < b.N; i++ {
		var err error
		p, err = experiments.RunPortability(experiments.AppFFT2D, 512, 8, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("portability", p.Format())
	if !p.AllVerified() {
		b.Fatal("outputs differ across platforms")
	}
}

// BenchmarkGlueGeneration measures the Figure 1.0 pipeline itself: the Alter
// script traversing the model and emitting the runtime table source. Host
// ns/op is the real cost of generation.
func BenchmarkGlueGeneration(b *testing.B) {
	app, err := apps.FFT2D(1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	mapping, err := model.SpreadParallel(app, 8)
	if err != nil {
		b.Fatal(err)
	}
	in := gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 8}
	b.ResetTimer()
	var out *gluegen.Output
	for i := 0; i < b.N; i++ {
		out, err = gluegen.Generate(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	study, err := experiments.RunGenStudy(experiments.AppFFT2D, platforms.CSPI(), 1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	printTable("genstudy", study.Format())
	b.ReportMetric(float64(len(out.Tables.Buffers)), "buffers")
	b.ReportMetric(float64(study.Transfers), "transfers")
}

// BenchmarkPipelineAblation quantifies §3.3's period/latency distinction:
// the pipelined runtime's throughput against sequential execution.
func BenchmarkPipelineAblation(b *testing.B) {
	var p *experiments.Pipeline
	for i := 0; i < b.N; i++ {
		var err error
		p, err = experiments.RunPipeline(experiments.AppFFT2D, platforms.CSPI(), 512, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("pipeline", p.Format())
	b.ReportMetric(float64(p.SageSequential)/1e6, "sequential-vms")
	b.ReportMetric(float64(p.SagePipelinePeriod)/1e6, "pipelined-period-vms")
}

// BenchmarkAToTMapping measures the genetic mapper (host ns/op is real GA
// time) and reports the objective improvements over the baselines.
func BenchmarkAToTMapping(b *testing.B) {
	app, err := apps.STAP(256, 6)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := atot.NewEvaluator(app, platforms.CSPI(), 8)
	if err != nil {
		b.Fatal(err)
	}
	var stats *atot.GAStats
	for i := 0; i < b.N; i++ {
		_, stats, err = atot.MapGA(ev, atot.GAConfig{Population: 48, Generations: 60, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	rr, err := ev.Evaluate(model.RoundRobin(app, 8), atot.Weights{})
	if err != nil {
		b.Fatal(err)
	}
	printTable("atot", fmt.Sprintf("AToT GA objective %.4g vs round-robin %.4g (%.1f%% better)",
		stats.Best.Total, rr.Total, 100*(rr.Total-stats.Best.Total)/rr.Total))
	b.ReportMetric(stats.Best.Total/1e6, "ga-objective-M")
	b.ReportMetric(rr.Total/1e6, "roundrobin-objective-M")
}

// BenchmarkAblationAlltoall compares the three all-to-all schedules on the
// CSPI fabric — the design choice behind each vendor's tuned MPI_All_to_All.
func BenchmarkAblationAlltoall(b *testing.B) {
	for _, alg := range []mpi.AlltoallAlgorithm{mpi.AlltoallDirect, mpi.AlltoallPairwise, mpi.AlltoallBruck} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				m := machine.New(k, platforms.CSPI(), 8)
				w := mpi.NewWorld(m)
				w.Launch("a2a", func(r *mpi.Rank) {
					parts := make([]mpi.Payload, 8)
					for d := range parts {
						parts[d] = mpi.Payload{Bytes: 128 * 1024}
					}
					r.Alltoall(parts, alg)
				})
				if err := k.Run(); err != nil {
					b.Fatal(err)
				}
				elapsed = k.Now()
			}
			b.ReportMetric(float64(elapsed)/1e6, "vms")
		})
	}
}

// BenchmarkAblationBufferSlots sweeps the runtime's pipelining credit depth.
func BenchmarkAblationBufferSlots(b *testing.B) {
	out, err := experiments.GenerateTables(experiments.AppFFT2D, platforms.CSPI(), 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{1, 2, 4} {
		slots := slots
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			var period sim.Duration
			for i := 0; i < b.N; i++ {
				res, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 6, BufferSlots: slots})
				if err != nil {
					b.Fatal(err)
				}
				period = res.Period
			}
			b.ReportMetric(float64(period)/1e6, "period-vms")
		})
	}
}

// BenchmarkAblationDispatch sweeps the function-table dispatch overhead, the
// constant the conclusion's optimisation work targets.
func BenchmarkAblationDispatch(b *testing.B) {
	out, err := experiments.GenerateTables(experiments.AppCornerTurn, platforms.CSPI(), 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	for _, usec := range []int{5, 25, 100} {
		usec := usec
		b.Run(fmt.Sprintf("dispatch=%dus", usec), func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				res, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{
					Iterations: 3, Sequential: true,
					DispatchOverhead: sim.Duration(usec) * 1000,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.AvgLatency()
			}
			b.ReportMetric(float64(lat)/1e6, "latency-vms")
		})
	}
}

// BenchmarkScaling sweeps node counts for both benchmarks (the "several
// node configurations" axis of the paper's measurement campaign).
func BenchmarkScaling(b *testing.B) {
	for _, kind := range []experiments.AppKind{experiments.AppFFT2D, experiments.AppCornerTurn} {
		kind := kind
		b.Run(shortApp(kind), func(b *testing.B) {
			var sc *experiments.Scaling
			for i := 0; i < b.N; i++ {
				var err error
				sc, err = experiments.RunScaling(kind, platforms.CSPI(), 512, []int{1, 2, 4, 8, 16}, benchProto)
				if err != nil {
					b.Fatal(err)
				}
			}
			printTable("scaling-"+string(kind), sc.Format())
			last := sc.Rows[len(sc.Rows)-1]
			b.ReportMetric(last.HandSpeedup, "hand-speedup-16n")
			b.ReportMetric(last.SageSpeedup, "sage-speedup-16n")
		})
	}
}

// BenchmarkHeterogeneousMapping demonstrates the §1.1 claim that AToT maps
// onto *heterogeneous* architectures: a speed-aware GA against round-robin
// on a machine mixing 2x, 1x and 0.5x processors.
func BenchmarkHeterogeneousMapping(b *testing.B) {
	app, err := apps.STAP(128, 4)
	if err != nil {
		b.Fatal(err)
	}
	speeds := []float64{2, 2, 1, 1, 1, 1, 0.5, 0.5}
	var h *experiments.Heterogeneous
	for i := 0; i < b.N; i++ {
		h, err = experiments.RunHeterogeneous(app, platforms.CSPI(), speeds,
			atot.GAConfig{Generations: 60, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("hetero", h.Format())
	b.ReportMetric(float64(h.MeasuredGA)/1e6, "ga-period-vms")
	b.ReportMetric(float64(h.MeasuredRR)/1e6, "roundrobin-period-vms")
}

// BenchmarkRealTimeRates sweeps sensor input rates around the pipeline's
// capacity, reproducing the real-time framing of the paper's introduction.
func BenchmarkRealTimeRates(b *testing.B) {
	var rt *experiments.RealTime
	for i := 0; i < b.N; i++ {
		var err error
		rt, err = experiments.RunRealTime(experiments.AppCornerTurn, platforms.CSPI(), 512, 8, 8, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("realtime", rt.Format())
	for _, row := range rt.Rows {
		if row.Sustained {
			b.ReportMetric(float64(row.InputPeriod)/1e6, "fastest-sustained-period-vms")
			break
		}
	}
}

// BenchmarkISSPLFFT measures the host-side FFT kernel (library quality, not
// a paper figure).
func BenchmarkISSPLFFT(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%7), float64(i%5))
			}
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := isspl.FFT(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkISSPLTranspose measures the blocked transpose kernel.
func BenchmarkISSPLTranspose(b *testing.B) {
	for _, n := range []int{256, 1024} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := isspl.TestMatrix(n, 1)
			b.SetBytes(int64(16 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				isspl.TransposeSquare(m.Data, n)
			}
		})
	}
}

// BenchmarkAlterInterpreter measures the generator-language interpreter on a
// recursion-heavy workload (host-side tool performance).
func BenchmarkAlterInterpreter(b *testing.B) {
	const src = `
	  (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
	  (fib 17)`
	for i := 0; i < b.N; i++ {
		in := alter.New()
		v, err := in.RunString(src)
		if err != nil {
			b.Fatal(err)
		}
		if !alter.Equal(v, int64(1597)) {
			b.Fatalf("fib = %v", v)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw discrete-event throughput: how
// many simulated corner-turn iterations per host second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	out, err := experiments.GenerateTables(experiments.AppCornerTurn, platforms.CSPI(), 8, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
