// Package sage is the public API of the SAGE reproduction: a Go
// re-implementation of Honeywell's Systems and Applications Genesis
// Environment as described in "Auto Source Code Generation and Run-Time
// Infrastructure and Environment for High Performance, Distributed Computing
// Systems" (IPPS/IPDPS 2000 workshops).
//
// The package ties the subsystems together into the workflow of the paper:
//
//  1. model an application as a dataflow graph of library functions with
//     striped/replicated ports (Designer — internal/model, internal/funclib);
//  2. model or pick a target platform (hardware editor — internal/machine,
//     internal/platforms);
//  3. map function threads onto processors, manually or with the genetic
//     optimiser (AToT — internal/atot);
//  4. generate glue code: an Alter script traverses the model and emits the
//     runtime tables (internal/alter, internal/gluegen);
//  5. execute on the simulated multicomputer under the SAGE runtime kernel
//     (internal/sagert) and inspect probe traces (internal/viz).
//
// A minimal session:
//
//	app, _ := sage.NewFFT2DApp(1024, 8)
//	proj, _ := sage.NewProject(app, "CSPI", 8)
//	_ = proj.MapSpread()
//	out, _ := proj.Generate()
//	res, _ := proj.Run(sage.RunOptions{Iterations: 100})
//	fmt.Println(res.AvgLatency(), res.Period)
//	_ = out // generated glue source artifacts
package sage

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/atot"
	"repro/internal/core"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/shelf"
	"repro/internal/sim"
	"repro/internal/viz"
)

// Re-exported model types for building applications programmatically.
type (
	// App is an application model (the application editor's artifact).
	App = model.App
	// Function is a behavioural block instance.
	Function = model.Function
	// DataType is a data type dictionary entry.
	DataType = model.DataType
	// Mapping assigns function threads to processors.
	Mapping = model.Mapping
	// Platform is a hardware descriptor.
	Platform = machine.Platform
	// RunOptions tunes runtime execution.
	RunOptions = sagert.Options
	// RunResult reports an execution.
	RunResult = sagert.Result
	// Trace is a collected set of visualizer probe events.
	Trace = viz.Trace
	// GAConfig tunes the AToT genetic mapper.
	GAConfig = atot.GAConfig
	// GlueOutput bundles generated tables and source artifacts.
	GlueOutput = gluegen.Output
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Shelf catalogues reusable hierarchical blocks.
	Shelf = shelf.Shelf
	// ShelfParams parameterise a shelf-entry instantiation.
	ShelfParams = shelf.Params
)

// BuiltinShelf returns the stock shelf of reusable composite blocks
// (fft2d-stage, corner-turn-stage, detect-chain).
func BuiltinShelf() *Shelf { return shelf.Builtin() }

// Striping kinds for ports.
const (
	Replicated = model.Replicated
	ByRows     = model.ByRows
	ByCols     = model.ByCols
)

// StandardGeneratorScript is the built-in Alter glue-code generator; custom
// scripts can be composed with it (prepend audit/instrumentation passes) and
// run through Project.GenerateWith.
const StandardGeneratorScript = gluegen.StandardScript

// NewApp creates an empty application model.
func NewApp(name string) *App { return model.NewApp(name) }

// NewFFT2DApp builds the paper's Parallel 2D FFT benchmark model.
func NewFFT2DApp(n, threads int) (*App, error) { return apps.FFT2D(n, threads) }

// NewCornerTurnApp builds the paper's Distributed Corner Turn benchmark model.
func NewCornerTurnApp(n, threads int) (*App, error) { return apps.CornerTurn(n, threads) }

// NewSTAPApp builds the space-time adaptive processing example pipeline.
func NewSTAPApp(n, threads int) (*App, error) { return apps.STAP(n, threads) }

// PlatformByName returns a registered platform descriptor (CSPI, Mercury,
// SKY, SIGI, Workstations).
func PlatformByName(name string) (Platform, error) { return platforms.ByName(name) }

// PlatformNames lists the registered platforms.
func PlatformNames() []string { return platforms.Names() }

// Project is one design session: an application targeted at a platform.
type Project struct {
	App      *App
	Platform Platform
	Nodes    int
	Mapping  *Mapping
}

// NewProject validates the application (flattening composites) and pairs it
// with a platform at a node count.
func NewProject(app *App, platformName string, nodes int) (*Project, error) {
	if app == nil {
		return nil, fmt.Errorf("sage: nil application")
	}
	pl, err := platforms.ByName(platformName)
	if err != nil {
		return nil, err
	}
	return NewProjectOn(app, pl, nodes)
}

// NewProjectOn is NewProject with an explicit platform descriptor (e.g. one
// lowered from a custom hardware model).
func NewProjectOn(app *App, pl Platform, nodes int) (*Project, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("sage: %d nodes", nodes)
	}
	flat, err := app.Flatten()
	if err != nil {
		return nil, err
	}
	if err := flat.Validate(); err != nil {
		return nil, err
	}
	return &Project{App: flat, Platform: pl, Nodes: nodes}, nil
}

// MapSpread applies the canonical manual mapping: worker thread i on node i,
// single-threaded functions on node 0.
func (p *Project) MapSpread() error {
	m, err := model.SpreadParallel(p.App, p.Nodes)
	if err != nil {
		return err
	}
	p.Mapping = m
	return nil
}

// MapRoundRobin applies the naive baseline mapping.
func (p *Project) MapRoundRobin() {
	p.Mapping = model.RoundRobin(p.App, p.Nodes)
}

// AutoMap runs the AToT genetic mapper and installs the best mapping found.
// It returns the optimiser's statistics.
func (p *Project) AutoMap(cfg GAConfig) (*atot.GAStats, error) {
	ev, err := atot.NewEvaluator(p.App, p.Platform, p.Nodes)
	if err != nil {
		return nil, err
	}
	m, stats, err := atot.MapGA(ev, cfg)
	if err != nil {
		return nil, err
	}
	p.Mapping = m
	return stats, nil
}

// SetMapping installs an explicit mapping after validating it.
func (p *Project) SetMapping(m *Mapping) error {
	if err := m.Validate(p.App, p.Nodes); err != nil {
		return err
	}
	p.Mapping = m
	return nil
}

// Build runs the standard Alter glue-code generator over the mapped project
// and returns the executable Program.
func (p *Project) Build() (*core.Program, error) {
	if p.Mapping == nil {
		return nil, fmt.Errorf("sage: project has no mapping (call MapSpread, AutoMap or SetMapping)")
	}
	return core.Build(p.App, p.Mapping, p.Platform, p.Nodes)
}

// Generate runs the standard Alter glue-code generator over the mapped
// project and returns the generation artifacts.
func (p *Project) Generate() (*GlueOutput, error) {
	prog, err := p.Build()
	if err != nil {
		return nil, err
	}
	return prog.Artifacts, nil
}

// GenerateWith runs a custom Alter generator script instead of the standard
// one.
func (p *Project) GenerateWith(script string) (*GlueOutput, error) {
	if p.Mapping == nil {
		return nil, fmt.Errorf("sage: project has no mapping (call MapSpread, AutoMap or SetMapping)")
	}
	prog, err := core.BuildWithScript(p.App, p.Mapping, p.Platform, p.Nodes, script)
	if err != nil {
		return nil, err
	}
	return prog.Artifacts, nil
}

// Run generates glue code and executes it on a fresh simulated machine.
func (p *Project) Run(opts RunOptions) (*RunResult, error) {
	prog, err := p.Build()
	if err != nil {
		return nil, err
	}
	return prog.Run(opts)
}

// RunTraced is Run with every function probed, returning the visualizer
// trace alongside the result.
func (p *Project) RunTraced(opts RunOptions) (*RunResult, *Trace, error) {
	prog, err := p.Build()
	if err != nil {
		return nil, nil, err
	}
	return prog.RunTraced(opts)
}
