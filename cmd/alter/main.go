// alter is a standalone interpreter for the Alter language — the Lisp-like
// language the SAGE glue-code generator is written in (§2). It runs script
// files or an interactive read-eval-print loop, which is the environment a
// tool developer uses while writing a custom generator before handing it to
// sage-gluegen -script.
//
// Usage:
//
//	alter script.alter [more.alter ...]   # run files
//	alter                                 # REPL
//	echo '(+ 1 2)' | alter -              # evaluate stdin
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/alter"
	"repro/internal/cli"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain runs the interpreter over script files (or stdin with "-") and maps
// errors to the shared exit-code discipline: alter takes no flags, so any
// dash-prefixed argument other than "-" is a usage mistake (exit 2); read or
// evaluation failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	in := alter.New()
	// Scripts get (display ...) and (newline) for output; the gluegen
	// embedding replaces these with emit streams.
	in.Global.Register("display", func(a alter.List) (alter.Value, error) {
		for _, v := range a {
			fmt.Print(alter.Display(v))
		}
		return nil, nil
	})
	in.Global.Register("newline", func(a alter.List) (alter.Value, error) {
		fmt.Println()
		return nil, nil
	})

	for _, path := range args {
		if strings.HasPrefix(path, "-") && path != "-" {
			fmt.Fprintf(stderr, "alter: unknown flag %q\nusage: alter [script.alter ... | -]\n", path)
			return cli.ExitUsage
		}
	}
	if len(args) == 0 {
		repl(in)
		return cli.ExitOK
	}
	for _, path := range args {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintln(stderr, "alter:", err)
			return cli.ExitFailure
		}
		if _, err := in.RunString(string(src)); err != nil {
			fmt.Fprintln(stderr, "alter:", err)
			return cli.ExitFailure
		}
	}
	return cli.ExitOK
}

// repl reads balanced forms from stdin and prints each result.
func repl(in *alter.Interp) {
	fmt.Println("Alter interpreter (the SAGE glue-code generator language); Ctrl-D to exit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("alter> ")
		} else {
			fmt.Print("  ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		pending.WriteString(sc.Text())
		pending.WriteByte('\n')
		src := pending.String()
		if !balanced(src) {
			prompt()
			continue
		}
		pending.Reset()
		if strings.TrimSpace(src) == "" {
			prompt()
			continue
		}
		v, err := in.RunString(src)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("=>", alter.Format(v))
		}
		prompt()
	}
	fmt.Println()
}

// balanced reports whether every '(' has a matching ')' outside strings and
// comments (a heuristic good enough for a REPL continuation prompt).
func balanced(src string) bool {
	depth := 0
	inString := false
	inComment := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inComment:
			if c == '\n' {
				inComment = false
			}
		case inString:
			if c == '\\' {
				i++
			} else if c == '"' {
				inString = false
			}
		case c == '"':
			inString = true
		case c == ';':
			inComment = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		}
	}
	return depth <= 0 && !inString
}
