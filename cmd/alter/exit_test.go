package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: dash-prefixed pseudo-flags exit 2,
// read or evaluation failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "ok.alter")
	if err := os.WriteFile(good, []byte("(+ 1 2)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.alter")
	if err := os.WriteFile(bad, []byte("(undefined-op)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "no-such.alter")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"missing script", []string{missing}, cli.ExitFailure},
		{"evaluation error", []string{bad}, cli.ExitFailure},
		{"good script", []string{good}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
