package main

import "testing"

func TestBalancedHeuristic(t *testing.T) {
	cases := map[string]bool{
		"(+ 1 2)":           true,
		"(define (f x)":     false,
		"(f \"(\" )":        true,  // paren inside string ignored
		"\"unterminated":    false, // open string
		"; comment ( ( (\n": true,  // comment ignored
		"()":                true,
		")(":                true, // depth <= 0: let the reader report it
		"(a (b) ":           false,
		`("\"(" )`:          true, // escaped quote inside string
	}
	for src, want := range cases {
		if got := balanced(src); got != want {
			t.Errorf("balanced(%q) = %v, want %v", src, got, want)
		}
	}
}
