package main

import (
	"io"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, read and
// render failures exit 1.
func TestExitCodes(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.csv")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"missing -trace", nil, cli.ExitUsage},
		{"missing trace file", []string{"-trace", missing}, cli.ExitFailure},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
