package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/viz"
)

// writeTrace runs a traced corner turn and exports its CSV.
func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	app, err := apps.CornerTurn(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	mapping, _ := model.SpreadParallel(app, 2)
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace, hook := viz.Collector()
	if _, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 2, ProbeAll: true, Trace: hook}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportFromCSV(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeTrace(t, dir)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(tracePath, 60, false, "")
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if !strings.Contains(string(buf[:n]), "Visualizer report") {
		t.Fatalf("report:\n%s", string(buf[:n]))
	}
}

func TestSVGFromCSV(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeTrace(t, dir)
	svgPath := filepath.Join(dir, "out.svg")
	if err := run(tracePath, 60, false, svgPath); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil || !strings.Contains(string(svg), "<svg") {
		t.Fatalf("svg: %v", err)
	}
}

func TestVizErrors(t *testing.T) {
	if err := run("", 60, false, ""); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run("/nonexistent.csv", 60, false, ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
