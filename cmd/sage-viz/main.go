// sage-viz renders the Visualizer report from a probe-event CSV exported by
// sage-run -trace-csv (or by any program using internal/viz.WriteCSV).
//
// Usage:
//
//	sage-viz -trace trace.csv
//	sage-viz -trace trace.csv -width 120
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/viz"
)

func main() {
	traceFile := flag.String("trace", "", "probe-event CSV file (required)")
	width := flag.Int("width", 100, "timeline width in columns")
	csvOnly := flag.Bool("breakdown", false, "print only the per-function breakdown")
	svgOut := flag.String("svg", "", "write the timeline as an SVG file")
	flag.Parse()

	if err := run(*traceFile, *width, *csvOnly, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "sage-viz:", err)
		os.Exit(1)
	}
}

func run(traceFile string, width int, breakdownOnly bool, svgOut string) error {
	if traceFile == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := viz.ReadCSV(f)
	if err != nil {
		return err
	}
	if svgOut != "" {
		out, err := os.Create(svgOut)
		if err != nil {
			return err
		}
		defer out.Close()
		return trace.WriteSVG(out, 1200)
	}
	if breakdownOnly {
		for _, b := range trace.Breakdown() {
			fmt.Printf("%-16s compute=%-14v recv=%-14v send=%-14v\n", b.Fn, b.Compute, b.Recv, b.Send)
		}
		return nil
	}
	return trace.Report(os.Stdout, width)
}
