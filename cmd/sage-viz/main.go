// sage-viz renders the Visualizer report from a probe-event CSV exported by
// sage-run -trace-csv (or by any program using internal/viz.WriteCSV).
//
// Usage:
//
//	sage-viz -trace trace.csv
//	sage-viz -trace trace.csv -width 120
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/viz"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, render failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-viz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceFile := fs.String("trace", "", "probe-event CSV file (required)")
	width := fs.Int("width", 100, "timeline width in columns")
	csvOnly := fs.Bool("breakdown", false, "print only the per-function breakdown")
	svgOut := fs.String("svg", "", "write the timeline as an SVG file")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(*traceFile, *width, *csvOnly, *svgOut); err != nil {
		fmt.Fprintln(stderr, "sage-viz:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(traceFile string, width int, breakdownOnly bool, svgOut string) error {
	if traceFile == "" {
		return cli.Usagef("-trace is required")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := viz.ReadCSV(f)
	if err != nil {
		return err
	}
	if svgOut != "" {
		out, err := os.Create(svgOut)
		if err != nil {
			return err
		}
		defer out.Close()
		return trace.WriteSVG(out, 1200)
	}
	if breakdownOnly {
		for _, b := range trace.Breakdown() {
			fmt.Printf("%-16s compute=%-14v recv=%-14v send=%-14v\n", b.Fn, b.Compute, b.Recv, b.Send)
		}
		return nil
	}
	return trace.Report(os.Stdout, width)
}
