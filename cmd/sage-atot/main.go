// sage-atot runs the Architecture Trades and Optimization Tool's mapping
// stage: it loads a model, maps its threads onto a platform with the genetic
// algorithm (or a baseline), prints the cost breakdown and estimated
// schedule, and optionally writes the mapping file consumed by
// sage-gluegen/sage-run.
//
// Usage:
//
//	sage-atot -model fft2d.sage -platform CSPI -nodes 8 -o fft2d.map
//	sage-atot -model fft2d.sage -platform CSPI -nodes 8 -strategy greedy
//	sage-atot -model fft2d.sage -platform CSPI -nodes 8 -strategy twin -topk 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atot"
	"repro/internal/cli"
	"repro/internal/funclib"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/twin"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, mapping failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-atot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelFile := fs.String("model", "", "model file (required)")
	platformName := fs.String("platform", "CSPI", "target platform")
	nodes := fs.Int("nodes", 8, "processor count")
	strategy := fs.String("strategy", "ga", "mapping strategy: ga | twin | greedy | roundrobin | spread")
	pop := fs.Int("pop", 64, "GA population")
	gens := fs.Int("gens", 150, "GA generations")
	seed := fs.Int64("seed", 1, "GA seed")
	topK := fs.Int("topk", 4, "twin strategy: candidates promoted to DES evaluation")
	iters := fs.Int("iterations", 4, "twin strategy: iterations per scored run")
	parallel := fs.Int("parallel", 0, "worker pool width for scoring (0 = all cores)")
	schedule := fs.Bool("schedule", false, "print the estimated execution schedule")
	out := fs.String("o", "", "write the mapping file")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	cfg := runConfig{
		strategy: *strategy, pop: *pop, gens: *gens, seed: *seed,
		topK: *topK, iterations: *iters, parallel: *parallel,
		schedule: *schedule, out: *out,
	}
	if err := run(*modelFile, *platformName, *nodes, cfg); err != nil {
		fmt.Fprintln(stderr, "sage-atot:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

type runConfig struct {
	strategy   string
	pop, gens  int
	seed       int64
	topK       int
	iterations int
	parallel   int
	schedule   bool
	out        string
}

func run(modelFile, platformName string, nodes int, rc runConfig) error {
	if modelFile == "" {
		return cli.Usagef("-model is required")
	}
	f, err := os.Open(modelFile)
	if err != nil {
		return err
	}
	app, err := model.ReadText(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := funclib.ValidateApp(app); err != nil {
		return err
	}
	pl, err := platforms.ByName(platformName)
	if err != nil {
		return err
	}
	ev, err := atot.NewEvaluator(app, pl, nodes)
	if err != nil {
		return err
	}

	var mapping *model.Mapping
	switch rc.strategy {
	case "ga":
		var stats *atot.GAStats
		mapping, stats, err = atot.MapGA(ev, atot.GAConfig{Population: rc.pop, Generations: rc.gens, Seed: rc.seed, Parallelism: rc.parallel})
		if err != nil {
			return err
		}
		fmt.Printf("GA: %d generations, %d evaluations, best objective %.4g\n",
			stats.Generations, stats.Evaluations, stats.Best.Total)
	case "twin":
		res, err := twin.MapGAPromote(app, pl, nodes, rc.topK,
			atot.GAConfig{Population: rc.pop, Generations: rc.gens, Seed: rc.seed, Parallelism: rc.parallel},
			twin.Options{Iterations: rc.iterations})
		if err != nil {
			return err
		}
		mapping = res.Mapping
		fmt.Printf("twin GA: %d generations, %d twin evaluations, %d candidates promoted to DES\n",
			res.Stats.Generations, res.Stats.Evaluations, len(res.Candidates))
		for i, c := range res.Candidates {
			mark := " "
			if i == res.Winner {
				mark = "*"
			}
			fmt.Printf("  %s candidate %d: twin=%v des=%v\n", mark, i, c.TwinElapsed, c.DESElapsed)
		}
	case "greedy":
		if mapping, err = atot.MapGreedy(ev); err != nil {
			return err
		}
	case "roundrobin":
		mapping = model.RoundRobin(app, nodes)
	case "spread":
		if mapping, err = model.SpreadParallel(app, nodes); err != nil {
			return err
		}
	default:
		return cli.Usagef("unknown strategy %q", rc.strategy)
	}

	cost, err := ev.Evaluate(mapping, atot.Weights{})
	if err != nil {
		return err
	}
	fmt.Printf("mapping cost: max-node-busy=%v comm=%v critical-path=%v\n",
		cost.MaxNodeBusy, cost.Comm, cost.CriticalPath)
	for _, fn := range app.Functions {
		fmt.Printf("  %-14s -> nodes %v\n", fn.Name, mapping.Assign[fn.Name])
	}

	if rc.schedule {
		sched, err := ev.EstimateSchedule(mapping)
		if err != nil {
			return err
		}
		fmt.Println("\nestimated schedule (one iteration):")
		for _, s := range sched {
			fmt.Printf("  %-14s[%d] node %-3d %12v .. %v\n", s.Fn, s.Thread, s.Node, s.Start, s.End)
		}
	}

	if rc.out != "" {
		f, err := os.Create(rc.out)
		if err != nil {
			return err
		}
		defer f.Close()
		return mapping.WriteText(f, app.Name)
	}
	return nil
}
