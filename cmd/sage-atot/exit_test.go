package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/cli"
)

// writeModel generates a small FFT2D model file for the success cases.
func writeModel(t *testing.T) string {
	t.Helper()
	app, err := apps.FFT2D(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fft2d.sage")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.WriteText(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes pins the CLI contract: usage mistakes exit 2, mapping
// failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	model := writeModel(t)
	missing := filepath.Join(t.TempDir(), "no-such.sage")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"missing -model", nil, cli.ExitUsage},
		{"unknown strategy", []string{"-model", model, "-strategy", "anneal"}, cli.ExitUsage},
		{"missing model file", []string{"-model", missing}, cli.ExitFailure},
		{"roundrobin mapping", []string{"-model", model, "-strategy", "roundrobin", "-nodes", "4"}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
