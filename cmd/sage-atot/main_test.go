package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/model"
)

func writeSTAP(t *testing.T, dir string) string {
	t.Helper()
	app, err := apps.STAP(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stap.sage")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := app.WriteText(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStrategiesProduceValidMappings(t *testing.T) {
	dir := t.TempDir()
	modelPath := writeSTAP(t, dir)
	for _, strategy := range []string{"ga", "twin", "greedy", "roundrobin", "spread"} {
		outPath := filepath.Join(dir, strategy+".map")
		rc := runConfig{strategy: strategy, pop: 16, gens: 10, seed: 1, topK: 2, iterations: 2, schedule: strategy == "ga", out: outPath}
		if err := run(modelPath, "CSPI", 8, rc); err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		f, err := os.Open(outPath)
		if err != nil {
			t.Fatal(err)
		}
		mapping, appName, err := model.ReadMappingText(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if appName != "stap_64" {
			t.Fatalf("%s: app %q", strategy, appName)
		}
		if len(mapping.Assign) != 6 {
			t.Fatalf("%s: %d functions mapped", strategy, len(mapping.Assign))
		}
	}
}

func TestAtotErrors(t *testing.T) {
	if err := run("", "CSPI", 8, runConfig{strategy: "ga", pop: 8, gens: 5, seed: 1}); err == nil {
		t.Fatal("missing model accepted")
	}
	dir := t.TempDir()
	modelPath := writeSTAP(t, dir)
	if err := run(modelPath, "Cray", 8, runConfig{strategy: "ga", pop: 8, gens: 5, seed: 1}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run(modelPath, "CSPI", 8, runConfig{strategy: "simulated-annealing", pop: 8, gens: 5, seed: 1}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestScheduleOutput(t *testing.T) {
	dir := t.TempDir()
	modelPath := writeSTAP(t, dir)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(modelPath, "CSPI", 8, runConfig{strategy: "spread", pop: 8, gens: 5, seed: 1, schedule: true})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	if !strings.Contains(out, "estimated schedule") || !strings.Contains(out, "doppler") {
		t.Fatalf("schedule output:\n%s", out)
	}
}
