package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stream"
)

// goldenScenario is the committed remap scenario the experiments package
// pins its golden output to — the CLI exercises the same file CI gates on.
const goldenScenario = "../../internal/experiments/testdata/stream_remap.json"

// smallScenario is a fast remap-free mix for the plain-run tests.
const smallScenario = `{"app":"fft2d","n":32,"threads":2,"nodes":4,"seed":7,"classes":[
{"name":"interactive","process":"poisson","rate":400,"frames":12,"slo_ms":20},
{"name":"batch","process":"gamma","rate":100,"shape":4,"frames":4,"weight":2}]}`

func writeScenario(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, writeScenario(t, smallScenario), mode{parallel: 1}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"streaming run: 16 offered", "interactive", "batch", "Jain fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestJSONReportValidates(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, writeScenario(t, smallScenario), mode{asJSON: true, parallel: 1}); err != nil {
		t.Fatal(err)
	}
	var rep stream.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not a report: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("-json report fails schema: %v", err)
	}
	if rep.Offered != 16 || rep.Completed != 16 {
		t.Errorf("offered %d completed %d, want 16/16", rep.Offered, rep.Completed)
	}
}

func TestCompareGoldenImproves(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, goldenScenario, mode{compare: true, requireImproved: true, parallel: 2})
	if err != nil {
		t.Fatalf("-require-improved failed on the committed golden scenario: %v", err)
	}
	if !strings.Contains(out.String(), "remapping cut late+shed") {
		t.Errorf("comparison verdict missing:\n%s", out.String())
	}
}

func TestCompareNeedsRemapPolicy(t *testing.T) {
	err := run(os.Stdout, writeScenario(t, smallScenario), mode{compare: true, parallel: 1})
	if err == nil || !strings.Contains(err.Error(), "remap policy") {
		t.Fatalf("compare without a remap policy: err = %v", err)
	}
}

func TestReplayByteIdentical(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, goldenScenario, mode{replay: true, parallel: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replay ok") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCheckAcceptsOwnOutput(t *testing.T) {
	var rep bytes.Buffer
	if err := run(&rep, writeScenario(t, smallScenario), mode{asJSON: true, parallel: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, rep.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, path, mode{check: true, parallel: 1}); err != nil {
		t.Fatalf("-check refused the CLI's own -json output: %v", err)
	}
	if !strings.Contains(out.String(), "ok — sage-stream/1") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCheckRejectsBadReports(t *testing.T) {
	cases := []struct{ name, body string }{
		{"not json", "not a report"},
		{"unknown field", `{"schema":"sage-stream/1","bogus":1}`},
		{"wrong schema", `{"schema":"sage-stream/9","seed":1,"offered":1,"admitted":1,"completed":1,"classes":[]}`},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "report.json")
		if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(os.Stdout, path, mode{check: true, parallel: 1}); err == nil {
			t.Errorf("%s: -check accepted it", tc.name)
		}
	}
}

func TestModeConflictsAreUsageErrors(t *testing.T) {
	bad := []mode{
		{compare: true, replay: true, parallel: 1},
		{compare: true, check: true, parallel: 1},
		{requireImproved: true, parallel: 1},
		{parallel: 0},
	}
	for _, m := range bad {
		if err := run(os.Stdout, goldenScenario, m); err == nil {
			t.Errorf("mode %+v accepted", m)
		}
	}
}
