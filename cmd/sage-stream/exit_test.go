package main

import (
	"io"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, run or
// validation failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.json")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"no scenario argument", nil, cli.ExitUsage},
		{"conflicting modes", []string{"-compare", "-check", goldenScenario}, cli.ExitUsage},
		{"orphan require-improved", []string{"-require-improved", goldenScenario}, cli.ExitUsage},
		{"missing scenario file", []string{missing}, cli.ExitFailure},
		{"good run", []string{goldenScenario}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
