// sage-stream runs streaming SAGE scenarios: a JSON scenario file (class
// mix, app/platform/mapping case, optional fault plan and remap policy) is
// compiled and executed on the simulated machine, and the SLO report —
// per-class latency percentiles, throughput, fairness, backpressure
// high-water marks and remap events — is printed as a table or as JSON.
// Reports are pure virtual-time artifacts: byte-identical for a given
// scenario on every host.
//
// Usage:
//
//	sage-stream scenario.json                  run, print the SLO report
//	sage-stream -json scenario.json            same, report as JSON
//	sage-stream -compare scenario.json         remap vs static baseline
//	sage-stream -compare -require-improved ... exit 1 unless remap won
//	sage-stream -replay scenario.json          determinism check: compare at
//	                                           -parallel 1 vs -parallel N,
//	                                           fail on any byte difference
//	sage-stream -check report.json             validate a report's schema
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/stream"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, run/validation failures exit 1.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-stream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	compare := fs.Bool("compare", false, "run the scenario twice (remap policy off and on) and print both cells")
	requireImproved := fs.Bool("require-improved", false, "with -compare: exit 1 unless remapping reduced late+shed frames")
	replay := fs.Bool("replay", false, "determinism check: run the comparison at -parallel 1 and -parallel N and fail on any report byte difference")
	check := fs.Bool("check", false, "treat the argument as a report JSON file and validate its schema")
	asJSON := fs.Bool("json", false, "print the report as JSON instead of a table")
	parallel := fs.Int("parallel", 1, "experiment parallelism for -compare / the second -replay leg")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sage-stream [-compare [-require-improved] | -replay | -check] [-json] [-parallel N] file.json")
		return cli.ExitUsage
	}
	if err := run(stdout, fs.Arg(0), mode{
		compare: *compare, requireImproved: *requireImproved,
		replay: *replay, check: *check, asJSON: *asJSON, parallel: *parallel,
	}); err != nil {
		fmt.Fprintln(stderr, "sage-stream:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

type mode struct {
	compare, requireImproved, replay, check, asJSON bool
	parallel                                        int
}

func run(w io.Writer, path string, m mode) error {
	exclusive := 0
	for _, on := range []bool{m.compare, m.replay, m.check} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		return cli.Usagef("-compare, -replay and -check are mutually exclusive")
	}
	if m.requireImproved && !m.compare {
		return cli.Usagef("-require-improved only applies with -compare")
	}
	if m.parallel < 1 {
		return cli.Usagef("-parallel must be >= 1 (got %d)", m.parallel)
	}
	if m.check {
		return checkReport(w, path)
	}
	sc, err := readScenario(path)
	if err != nil {
		return err
	}
	switch {
	case m.compare:
		return runCompare(w, sc, m)
	case m.replay:
		return runReplay(w, sc, m.parallel)
	default:
		return runOnce(w, sc, m.asJSON)
	}
}

func readScenario(path string) (*stream.Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := stream.ReadScenario(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// runOnce executes the scenario and prints its SLO report.
func runOnce(w io.Writer, sc *stream.Scenario, asJSON bool) error {
	cfg, err := sc.Build()
	if err != nil {
		return err
	}
	res, err := stream.Run(cfg)
	if err != nil {
		return err
	}
	rep := stream.BuildReport(cfg.Classes, cfg.Seed, res)
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("report failed schema validation: %w", err)
	}
	if asJSON {
		return rep.WriteJSON(w)
	}
	rep.Format(w)
	return nil
}

// runCompare runs the remap-vs-static experiment and prints both cells.
func runCompare(w io.Writer, sc *stream.Scenario, m mode) error {
	cmp, err := experiments.RunStreamCompare(experiments.StreamCompareConfig{
		Scenario: sc, Parallelism: m.parallel,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, cmp.Format())
	if m.requireImproved && !cmp.Improved() {
		return fmt.Errorf("remapping did not improve late+shed (static %d, remap %d)",
			cmp.Static.Late+cmp.Static.Shed, cmp.Remap.Late+cmp.Remap.Shed)
	}
	return nil
}

// runReplay is the determinism gate CI runs: the comparison executed at
// experiment parallelism 1 and at -parallel N must produce byte-identical
// report JSON for both cells.
func runReplay(w io.Writer, sc *stream.Scenario, parallel int) error {
	render := func(p int) ([]byte, error) {
		cmp, err := experiments.RunStreamCompare(experiments.StreamCompareConfig{
			Scenario: sc, Parallelism: p,
		})
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		if err := cmp.Static.WriteJSON(&b); err != nil {
			return nil, err
		}
		if err := cmp.Remap.WriteJSON(&b); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	}
	seq, err := render(1)
	if err != nil {
		return err
	}
	par, err := render(parallel)
	if err != nil {
		return err
	}
	if !bytes.Equal(seq, par) {
		return fmt.Errorf("replay diverged: reports at -parallel 1 and -parallel %d differ", parallel)
	}
	fmt.Fprintf(w, "replay ok: reports byte-identical at -parallel 1 and -parallel %d (%d bytes)\n",
		parallel, len(seq))
	return nil
}

// checkReport validates a report JSON file against the schema — the gate CI
// runs on committed sage-stream output.
func checkReport(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep stream.Report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "%s: ok — %s, seed %d, %d/%d frames completed, %d late, %d shed, %d remaps\n",
		path, rep.Schema, rep.Seed, rep.Completed, rep.Offered, rep.Late, rep.Shed, len(rep.Remaps))
	return nil
}
