package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, validation
// failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "no-such.txt")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"no plan argument", nil, cli.ExitUsage},
		{"missing plan file", []string{missing}, cli.ExitFailure},
		{"empty plan", []string{empty}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
