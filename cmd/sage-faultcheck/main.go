// sage-faultcheck validates a fault-plan file before it is handed to
// sage-bench -faults or a sagert.Options.Faults field: the plan must parse,
// pass semantic validation (rates in range, finite stall windows, non-empty
// windows) and — when -nodes is given — only reference nodes that exist on
// the target machine. On success it prints the normalised plan (the parser's
// canonical form, suitable for checking in) and a one-line summary. Exit
// status is non-zero on any violation, so CI can gate on it.
//
// Usage:
//
//	sage-faultcheck plan.txt
//	sage-faultcheck -nodes 8 plan.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
)

func main() {
	nodes := flag.Int("nodes", 0, "machine size to check node/link references against (0 = skip)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sage-faultcheck [-nodes N] plan.txt")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "sage-faultcheck:", err)
		os.Exit(1)
	}
}

func run(w *os.File, path string, nodes int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	plan, err := fault.ParsePlan(string(src))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if nodes > 0 {
		if err := plan.CheckNodes(nodes); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if plan.Empty() {
		fmt.Fprintf(w, "%s: ok — empty plan (no faults)\n", path)
		return nil
	}
	fmt.Fprint(w, plan.String())
	fmt.Fprintf(w, "%s: ok — seed %d, %d drop / %d degrade / %d stall rules\n",
		path, plan.Seed, len(plan.Drops), len(plan.Degrades), len(plan.Stalls))
	return nil
}
