// sage-faultcheck validates a fault-plan file before it is handed to
// sage-bench -faults or a sagert.Options.Faults field: the plan must parse,
// pass semantic validation (rates in range, finite stall windows, non-empty
// windows) and — when -nodes is given — only reference nodes that exist on
// the target machine. On success it prints the normalised plan (the parser's
// canonical form, suitable for checking in) and a one-line summary. Exit
// status is non-zero on any violation, so CI can gate on it.
//
// Usage:
//
//	sage-faultcheck plan.txt
//	sage-faultcheck -nodes 8 plan.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/fault"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, validation failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-faultcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 0, "machine size to check node/link references against (0 = skip)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sage-faultcheck [-nodes N] plan.txt")
		return cli.ExitUsage
	}
	if err := run(os.Stdout, fs.Arg(0), *nodes); err != nil {
		fmt.Fprintln(stderr, "sage-faultcheck:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(w io.Writer, path string, nodes int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	plan, err := fault.ParsePlan(string(src))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if nodes > 0 {
		if err := plan.CheckNodes(nodes); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if plan.Empty() {
		fmt.Fprintf(w, "%s: ok — empty plan (no faults)\n", path)
		return nil
	}
	fmt.Fprint(w, plan.String())
	fmt.Fprintf(w, "%s: ok — seed %d, %d drop / %d degrade / %d stall rules\n",
		path, plan.Seed, len(plan.Drops), len(plan.Degrades), len(plan.Stalls))
	return nil
}
