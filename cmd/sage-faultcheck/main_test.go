package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkFile(t *testing.T, src string, nodes int) (string, error) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.txt")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	rerr := run(out, path, nodes)
	out.Close()
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), rerr
}

func TestValidPlanNormalised(t *testing.T) {
	out, err := checkFile(t, `
# trouble at t=1ms
seed 42
drop link=0->1   rate=0.5 from=1ms to=3ms
stall node=2 at=2ms for=500us
`, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"seed 42",
		"drop link=0->1 rate=0.5 from=1ms to=3ms",
		"stall node=2 at=2ms",
		"ok — seed 42, 1 drop / 0 degrade / 1 stall rules",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyPlanOK(t *testing.T) {
	out, err := checkFile(t, "# nothing\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "empty plan") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestParseErrorRefused(t *testing.T) {
	if _, err := checkFile(t, "drop rate=2\n", 0); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if _, err := checkFile(t, "boom\n", 0); err == nil {
		t.Fatal("unknown directive accepted")
	}
}

func TestNodeBoundsChecked(t *testing.T) {
	src := "stall node=7 at=1ms for=1ms\n"
	if _, err := checkFile(t, src, 4); err == nil {
		t.Fatal("stall beyond machine size accepted with -nodes 4")
	}
	if _, err := checkFile(t, src, 8); err != nil {
		t.Fatalf("valid node refused: %v", err)
	}
	if _, err := checkFile(t, src, 0); err != nil {
		t.Fatalf("-nodes 0 should skip the bounds check: %v", err)
	}
}

func TestMissingFile(t *testing.T) {
	if err := run(os.Stdout, filepath.Join(t.TempDir(), "absent.txt"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
