package main

import (
	"io"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, run failures
// exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	model := writeModel(t, t.TempDir())
	missing := filepath.Join(t.TempDir(), "no-such.sage")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"missing -model/-tables", nil, cli.ExitUsage},
		{"missing model file", []string{"-model", missing}, cli.ExitFailure},
		{"small run", []string{"-model", model, "-nodes", "4", "-iterations", "1"}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
