package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/model"
)

// writeModel serialises a benchmark model into dir and returns its path.
func writeModel(t *testing.T, dir string) string {
	t.Helper()
	app, err := apps.CornerTurn(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ct.sage")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := app.WriteText(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestRunFromModel(t *testing.T) {
	dir := t.TempDir()
	modelPath := writeModel(t, dir)
	csvPath := filepath.Join(dir, "trace.csv")
	svgPath := filepath.Join(dir, "trace.svg")
	out, err := captureStdout(t, func() error {
		return run(options{
			modelFile: modelPath, platformName: "CSPI", nodes: 4,
			iterations: 3, traceCSV: csvPath, svgOut: svgPath,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"period:", "avg latency:", "node 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil || !strings.HasPrefix(string(csv), "fn,name") {
		t.Fatalf("trace csv missing/wrong: %v", err)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil || !strings.Contains(string(svg), "<svg") {
		t.Fatalf("svg missing/wrong: %v", err)
	}
}

func TestRunFromPregeneratedTables(t *testing.T) {
	dir := t.TempDir()
	modelPath := writeModel(t, dir)
	// Generate tables via the loadTables path, save, and re-run from file.
	pl, nodes, err := resolvePlatform(options{platformName: "CSPI", nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	tables, _, err := loadTables(options{modelFile: modelPath}, pl, nodes)
	if err != nil {
		t.Fatal(err)
	}
	_ = tables
	// Emit table source through gluegen directly for the file path.
	app, _ := apps.CornerTurn(64, 4)
	mapping, _ := model.SpreadParallel(app, 4)
	outPath := filepath.Join(dir, "ct.tbl")
	outSrc := generateTableSource(t, app, mapping)
	if err := os.WriteFile(outPath, []byte(outSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run(options{tablesFile: outPath, iterations: 2, platformName: "CSPI"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cornerturn_64 on CSPI") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunWithCustomHardware(t *testing.T) {
	dir := t.TempDir()
	modelPath := writeModel(t, dir)
	hwPath := filepath.Join(dir, "custom.hw")
	sys := model.SystemFromPlatform(mustPlatform(t, "SKY"), 1)
	sys.Name = "CustomSKY"
	f, err := os.Create(hwPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteHWText(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := captureStdout(t, func() error {
		return run(options{modelFile: modelPath, hwFile: hwPath, iterations: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "on CustomSKY (4 nodes)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Fatal("no inputs accepted")
	}
	if err := run(options{modelFile: "/nonexistent", platformName: "CSPI", nodes: 4}); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run(options{tablesFile: "/nonexistent"}); err == nil {
		t.Fatal("missing tables accepted")
	}
	if err := run(options{modelFile: "x", platformName: "Cray", nodes: 4}); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
