package main

import (
	"testing"

	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/platforms"
)

func mustPlatform(t *testing.T, name string) machine.Platform {
	t.Helper()
	pl, err := platforms.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func generateTableSource(t *testing.T, app *model.App, mapping *model.Mapping) string {
	t.Helper()
	out, err := gluegen.Generate(gluegen.Input{
		App: app, Mapping: mapping, Platform: mustPlatform(t, "CSPI"), NumNodes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out.TableSource
}
