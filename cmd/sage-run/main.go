// sage-run executes a model under the SAGE runtime on the simulated
// multicomputer: it loads (or generates) a mapping, generates the glue
// tables (or loads pre-generated table source), runs the configured number
// of iterations, and reports period and latency per §3.3. With -viz it
// prints the Visualizer report; with -trace-csv / -svg it exports the probe
// events; with -trace it writes a Chrome trace-event JSON of the whole run
// (kernel, runtime and MPI layers) for chrome://tracing or Perfetto.
//
// Usage:
//
//	sage-run -model fft2d.sage -platform CSPI -nodes 8 -iterations 100
//	sage-run -model fft2d.sage -mapping fft2d.map -viz -trace-csv trace.csv
//	sage-run -tables fft2d.tbl                  # run pre-generated glue
//	sage-run -model fft2d.sage -hw custom.hw    # custom hardware design
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/trace"
	"repro/internal/twin"
	"repro/internal/viz"
)

type options struct {
	modelFile, mappingFile, platformName, hwFile, tablesFile string
	nodes, iterations, shards                                int
	sequential, optimized, vizReport                         bool
	traceCSV, svgOut, traceOut                               string
	latencyBound                                             time.Duration
}

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, run failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.modelFile, "model", "", "model file (or use -tables)")
	fs.StringVar(&o.mappingFile, "mapping", "", "mapping file (default: spread mapping)")
	fs.StringVar(&o.platformName, "platform", "CSPI", "target platform from the registry")
	fs.StringVar(&o.hwFile, "hw", "", "custom hardware design file (overrides -platform)")
	fs.StringVar(&o.tablesFile, "tables", "", "pre-generated runtime table source to execute (skips generation)")
	fs.IntVar(&o.nodes, "nodes", 8, "processor count (ignored with -tables)")
	fs.IntVar(&o.iterations, "iterations", 10, "data sets to process")
	fs.IntVar(&o.shards, "shards", 1, "simulate on up to this many host cores (byte-identical results; falls back to 1 when the run cannot shard)")
	fs.BoolVar(&o.sequential, "sequential", false, "process one data set at a time (no pipelining)")
	fs.BoolVar(&o.optimized, "optimized-buffers", false, "enable the future-work buffer optimisation")
	fs.BoolVar(&o.vizReport, "viz", false, "print the Visualizer report")
	fs.StringVar(&o.traceCSV, "trace-csv", "", "export probe events as CSV")
	fs.StringVar(&o.traceOut, "trace", "", "write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto)")
	fs.StringVar(&o.svgOut, "svg", "", "export the execution timeline as SVG")
	fs.DurationVar(&o.latencyBound, "latency-threshold", 0, "flag iterations over this latency")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(o); err != nil {
		fmt.Fprintln(stderr, "sage-run:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

// resolvePlatform picks the hardware: a custom design file or the registry.
func resolvePlatform(o options) (machine.Platform, int, error) {
	if o.hwFile != "" {
		f, err := os.Open(o.hwFile)
		if err != nil {
			return machine.Platform{}, 0, err
		}
		defer f.Close()
		sys, err := model.ReadHWText(f)
		if err != nil {
			return machine.Platform{}, 0, err
		}
		return sys.Platform(), sys.NumNodes(), nil
	}
	pl, err := platforms.ByName(o.platformName)
	return pl, o.nodes, err
}

// loadTables obtains runtime tables: from a pre-generated table-source file
// or by generating from a model + mapping.
func loadTables(o options, pl machine.Platform, nodes int) (*gluegen.Tables, string, error) {
	if o.tablesFile != "" {
		src, err := os.ReadFile(o.tablesFile)
		if err != nil {
			return nil, "", err
		}
		tables, err := gluegen.ParseTableSource(string(src))
		if err != nil {
			return nil, "", err
		}
		if err := tables.Verify(); err != nil {
			return nil, "", err
		}
		return tables, tables.AppName, nil
	}
	if o.modelFile == "" {
		return nil, "", cli.Usagef("pass -model or -tables")
	}
	mf, err := os.Open(o.modelFile)
	if err != nil {
		return nil, "", err
	}
	app, err := model.ReadText(mf)
	mf.Close()
	if err != nil {
		return nil, "", err
	}
	var mapping *model.Mapping
	if o.mappingFile != "" {
		pf, err := os.Open(o.mappingFile)
		if err != nil {
			return nil, "", err
		}
		var appName string
		mapping, appName, err = model.ReadMappingText(pf)
		pf.Close()
		if err != nil {
			return nil, "", err
		}
		if appName != app.Name {
			return nil, "", fmt.Errorf("mapping is for app %q, model is %q", appName, app.Name)
		}
	} else {
		if mapping, err = model.SpreadParallel(app, nodes); err != nil {
			return nil, "", err
		}
	}
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes})
	if err != nil {
		return nil, "", err
	}
	return out.Tables, app.Name, nil
}

func run(o options) error {
	pl, nodes, err := resolvePlatform(o)
	if err != nil {
		return err
	}
	tables, appName, err := loadTables(o, pl, nodes)
	if err != nil {
		return err
	}
	if o.tablesFile != "" && tables.Platform != pl.Name {
		// Pre-generated tables carry their target; honor it.
		pl, err = platforms.ByName(tables.Platform)
		if err != nil {
			return fmt.Errorf("tables target platform %q: %w", tables.Platform, err)
		}
	}
	opts := sagert.Options{Iterations: o.iterations, Sequential: o.sequential, OptimizedBuffers: o.optimized, Shards: o.shards}
	if o.shards > 1 {
		// Seed the shard partitioner with the twin's per-node busy forecast;
		// uniform weights are a fine fallback when the twin refuses.
		if w, err := twin.ShardWeights(tables, pl, twin.Options{
			Iterations: o.iterations, Sequential: o.sequential, OptimizedBuffers: o.optimized,
		}); err == nil {
			opts.ShardWeights = w
		}
	}
	var vtrace *viz.Trace
	if o.vizReport || o.traceCSV != "" || o.svgOut != "" {
		var hook func(sagert.Event)
		vtrace, hook = viz.Collector()
		opts.ProbeAll = true
		opts.Trace = hook
	}
	if o.traceOut != "" {
		opts.Collector = trace.New(appName + " on " + pl.Name)
	}
	res, err := sagert.Run(tables, pl, opts)
	if err != nil {
		return err
	}
	fmt.Printf("app %s on %s (%d nodes), %d iterations\n", appName, pl.Name, tables.NumNodes, o.iterations)
	fmt.Printf("  period:      %v per data set\n", res.Period)
	fmt.Printf("  avg latency: %v\n", res.AvgLatency())
	fmt.Printf("  elapsed:     %v virtual\n", res.Elapsed)
	for _, ns := range res.NodeStats {
		fmt.Printf("  node %-3d compute=%-14v copy=%-14v comm=%-14v util=%5.1f%%\n",
			ns.Node, ns.ComputeBusy, ns.CopyBusy, ns.CommBusy, 100*ns.Utilization)
	}
	if o.latencyBound > 0 {
		for _, v := range viz.CheckLatencies(res.Latencies, o.latencyBound) {
			fmt.Printf("  LATENCY VIOLATION: iteration %d took %v (threshold %v)\n", v.Iteration, v.Latency, v.Threshold)
		}
	}
	if o.vizReport {
		fmt.Println()
		if err := vtrace.Report(os.Stdout, 100); err != nil {
			return err
		}
	}
	if o.traceCSV != "" {
		f, err := os.Create(o.traceCSV)
		if err != nil {
			return err
		}
		if err := vtrace.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		t := trace.NewTrace()
		t.Add(opts.Collector)
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := t.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace:       %s\n", o.traceOut)
	}
	if o.svgOut != "" {
		f, err := os.Create(o.svgOut)
		if err != nil {
			return err
		}
		if err := vtrace.WriteSVG(f, 1200); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
