// sage-tracecheck validates a Chrome trace-event JSON file produced by
// sage-bench -trace or sage-run -trace: every event must carry the required
// fields, timestamps must be non-negative and non-decreasing per track, and
// (optionally) spans from specific layers must be present. Exit status is
// non-zero on any violation, so CI can gate on it.
//
// Usage:
//
//	sage-tracecheck trace.json
//	sage-tracecheck -require sim,sagert,mpi trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	require := flag.String("require", "", "comma-separated trace categories (layers) that must appear, e.g. sim,sagert,mpi")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sage-tracecheck [-require layers] trace.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *require); err != nil {
		fmt.Fprintln(os.Stderr, "sage-tracecheck:", err)
		os.Exit(1)
	}
}

func run(path, require string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats, err := trace.ValidateChrome(data)
	if err != nil {
		return err
	}
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if stats.Cats[want] == 0 {
			return fmt.Errorf("%s: no spans from required layer %q (present: %s)",
				path, want, strings.Join(stats.Layers(), ", "))
		}
	}
	fmt.Printf("%s: ok — %d events, %d spans, layers: %s\n",
		path, stats.Events, stats.Spans, strings.Join(stats.Layers(), ", "))
	return nil
}
