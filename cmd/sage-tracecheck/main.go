// sage-tracecheck validates a Chrome trace-event JSON file produced by
// sage-bench -trace or sage-run -trace: every event must carry the required
// fields, timestamps must be non-negative and non-decreasing per track, and
// (optionally) spans from specific layers must be present. Exit status is
// non-zero on any violation, so CI can gate on it.
//
// Usage:
//
//	sage-tracecheck trace.json
//	sage-tracecheck -require sim,sagert,mpi trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/trace"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, validation failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	require := fs.String("require", "", "comma-separated trace categories (layers) that must appear, e.g. sim,sagert,mpi")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sage-tracecheck [-require layers] trace.json")
		return cli.ExitUsage
	}
	if err := run(fs.Arg(0), *require); err != nil {
		fmt.Fprintln(stderr, "sage-tracecheck:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(path, require string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats, err := trace.ValidateChrome(data)
	if err != nil {
		return err
	}
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if stats.Cats[want] == 0 {
			return fmt.Errorf("%s: no spans from required layer %q (present: %s)",
				path, want, strings.Join(stats.Layers(), ", "))
		}
	}
	fmt.Printf("%s: ok — %d events, %d spans, layers: %s\n",
		path, stats.Events, stats.Spans, strings.Join(stats.Layers(), ", "))
	return nil
}
