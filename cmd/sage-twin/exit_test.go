package main

import (
	"io"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, runtime
// failures exit 1, successful predictions exit 0.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"missing model", nil, cli.ExitUsage},
		{"bad iterations", []string{"-model", "x.sage", "-iterations", "0"}, cli.ExitUsage},
		{"bad seeds", []string{"-validate", "-seeds", "0"}, cli.ExitUsage},
		{"missing model file", []string{"-model", "does-not-exist.sage"}, cli.ExitFailure},
		{"validate ok", []string{"-validate", "-seeds", "24", "-quick"}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
