package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
)

func writeFFT(t *testing.T, dir string) string {
	t.Helper()
	app, err := apps.FFT2D(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fft.sage")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := app.WriteText(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPredictAndCompare(t *testing.T) {
	modelPath := writeFFT(t, t.TempDir())
	var b strings.Builder
	o := options{
		modelFile: modelPath, platformName: "CSPI", nodes: 4, iterations: 4,
		compare: true,
	}
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"predicted elapsed:", "bottleneck period:", "node 0", "DES elapsed:", "twin error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSweepOutput(t *testing.T) {
	modelPath := writeFFT(t, t.TempDir())
	var b strings.Builder
	o := options{
		modelFile: modelPath, platformName: "Mercury", iterations: 3,
		sweep: "4, 8,16", compare: true,
	}
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + 3 sweep rows, got:\n%s", out)
	}
	if !strings.Contains(lines[0], "ape%") {
		t.Fatalf("compare column missing:\n%s", out)
	}
}

func TestValidateMode(t *testing.T) {
	var b strings.Builder
	o := options{doValidate: true, seedStart: 1, seeds: 24, quick: true}
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "twin-validate:") || !strings.Contains(b.String(), "PASS") {
		t.Fatalf("validate output:\n%s", b.String())
	}
}

func TestTwinUsageErrors(t *testing.T) {
	if err := run(options{}, &strings.Builder{}); err == nil {
		t.Fatal("missing model accepted")
	}
	modelPath := writeFFT(t, t.TempDir())
	if err := run(options{modelFile: modelPath, iterations: 1, sweep: "zero"}, &strings.Builder{}); err == nil {
		t.Fatal("bad sweep accepted")
	}
	if err := run(options{modelFile: modelPath, iterations: 1, sweep: "2", mappingFile: "x.map"}, &strings.Builder{}); err == nil {
		t.Fatal("sweep with mapping accepted")
	}
	if err := run(options{modelFile: modelPath, platformName: "Cray", iterations: 1, nodes: 2}, &strings.Builder{}); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
