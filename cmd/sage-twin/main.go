// sage-twin is the analytical twin's front door: it predicts what a SAGE
// run would measure — elapsed virtual time, latency, period, per-node busy
// accounting, per-phase breakdowns — in closed form, without simulating a
// single event. It can also compare its prediction against the real
// discrete-event run, sweep node counts, and replay the twin-vs-DES
// calibration matrix that gates the model in CI.
//
// Usage:
//
//	sage-twin -model fft2d.sage -platform CSPI -nodes 8 -iterations 100
//	sage-twin -model fft2d.sage -nodes 8 -compare       # twin vs DES
//	sage-twin -model fft2d.sage -sweep 1,2,4,8,16,32    # scaling forecast
//	sage-twin -validate -seeds 24 -quick                # calibration gates
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/twin"
	"repro/internal/twin/validate"
)

type options struct {
	modelFile, mappingFile, platformName string
	nodes, iterations                    int
	sequential, optimized                bool
	compare                              bool
	sweep                                string
	doValidate                           bool
	seedStart                            int64
	seeds                                int
	quick                                bool
	parallel                             int
}

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, prediction/validation failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-twin", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.modelFile, "model", "", "model file (required unless -validate)")
	fs.StringVar(&o.mappingFile, "mapping", "", "mapping file (default: spread mapping)")
	fs.StringVar(&o.platformName, "platform", "CSPI", "target platform from the registry")
	fs.IntVar(&o.nodes, "nodes", 8, "processor count")
	fs.IntVar(&o.iterations, "iterations", 10, "data sets to process")
	fs.BoolVar(&o.sequential, "sequential", false, "predict the barrier-synchronised mode")
	fs.BoolVar(&o.optimized, "optimized-buffers", false, "predict the optimised-buffer mode")
	fs.BoolVar(&o.compare, "compare", false, "also run the DES and report the prediction error")
	fs.StringVar(&o.sweep, "sweep", "", "comma-separated node counts to forecast (spread mapping each)")
	fs.BoolVar(&o.doValidate, "validate", false, "run the twin-vs-DES calibration matrix instead of predicting")
	fs.Int64Var(&o.seedStart, "seed-start", 1, "validate: first conformance seed")
	fs.IntVar(&o.seeds, "seeds", 16, "validate: number of seeded cases")
	fs.BoolVar(&o.quick, "quick", false, "validate: small graphs (the CI gate matrix)")
	fs.IntVar(&o.parallel, "parallel", 0, "validate: worker pool width (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(stderr, "sage-twin:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(o options, w io.Writer) error {
	if o.doValidate {
		return runValidate(o, w)
	}
	if o.modelFile == "" {
		return cli.Usagef("-model is required (or use -validate)")
	}
	if o.iterations < 1 {
		return cli.Usagef("-iterations must be >= 1")
	}
	f, err := os.Open(o.modelFile)
	if err != nil {
		return err
	}
	app, err := model.ReadText(f)
	f.Close()
	if err != nil {
		return err
	}
	if o.sweep != "" {
		return runSweep(o, app, w)
	}
	return runPredict(o, app, w)
}

// predictOne builds tables for one (nodes, mapping) point and prices it.
func predictOne(o options, app *model.App, nodes int) (*twin.Prediction, *gluegen.Tables, error) {
	pl, err := platforms.ByName(o.platformName)
	if err != nil {
		return nil, nil, err
	}
	var mapping *model.Mapping
	if o.mappingFile != "" {
		mf, err := os.Open(o.mappingFile)
		if err != nil {
			return nil, nil, err
		}
		var appName string
		mapping, appName, err = model.ReadMappingText(mf)
		mf.Close()
		if err != nil {
			return nil, nil, err
		}
		if appName != app.Name {
			return nil, nil, fmt.Errorf("mapping is for app %q, model is %q", appName, app.Name)
		}
	} else if mapping, err = model.SpreadParallel(app, nodes); err != nil {
		return nil, nil, err
	}
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes})
	if err != nil {
		return nil, nil, err
	}
	ev, err := twin.NewEvaluator(out.Tables, pl)
	if err != nil {
		return nil, nil, err
	}
	pred := ev.Predict(twin.Options{
		Iterations: o.iterations, Sequential: o.sequential, OptimizedBuffers: o.optimized,
	})
	return pred, out.Tables, nil
}

func runPredict(o options, app *model.App, w io.Writer) error {
	pred, tables, err := predictOne(o, app, o.nodes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s on %s, %d nodes, %d iterations (sequential=%v optimized=%v)\n",
		app.Name, o.platformName, o.nodes, o.iterations, o.sequential, o.optimized)
	fmt.Fprintf(w, "predicted elapsed:   %v\n", pred.Elapsed)
	fmt.Fprintf(w, "predicted latency:   %v\n", pred.AvgLatency)
	fmt.Fprintf(w, "predicted period:    %v\n", pred.Period)
	fmt.Fprintf(w, "fill iteration:      %v\n", pred.FirstIteration)
	fmt.Fprintf(w, "steady iteration:    %v\n", pred.SteadyIteration)
	fmt.Fprintf(w, "bottleneck period:   %v\n", pred.BottleneckPeriod)
	fmt.Fprintf(w, "phases: recv=%v dispatch=%v compute=%v send=%v\n",
		pred.Phases.Recv, pred.Phases.Dispatch, pred.Phases.Compute, pred.Phases.Send)
	for n, nc := range pred.Nodes {
		fmt.Fprintf(w, "  node %-3d compute=%-14v copy=%-14v comm=%v\n", n, nc.Compute, nc.Copy, nc.Comm)
	}
	if o.compare {
		res, err := runDES(o, tables)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "DES elapsed:         %v (twin error %.2f%%)\n",
			sim.Duration(res.Elapsed), ape(pred.Elapsed, sim.Duration(res.Elapsed)))
		fmt.Fprintf(w, "DES latency:         %v\n", res.AvgLatency())
		fmt.Fprintf(w, "DES period:          %v\n", res.Period)
	}
	return nil
}

func runSweep(o options, app *model.App, w io.Writer) error {
	if o.mappingFile != "" {
		return cli.Usagef("-sweep derives a spread mapping per point; drop -mapping")
	}
	var counts []int
	for _, part := range strings.Split(o.sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return cli.Usagef("bad -sweep entry %q", part)
		}
		counts = append(counts, n)
	}
	fmt.Fprintf(w, "%-6s %14s %14s %14s", "nodes", "elapsed", "latency", "period")
	if o.compare {
		fmt.Fprintf(w, " %14s %7s", "des", "ape%")
	}
	fmt.Fprintln(w)
	for _, nodes := range counts {
		pred, tables, err := predictOne(o, app, nodes)
		if err != nil {
			return fmt.Errorf("nodes=%d: %w", nodes, err)
		}
		fmt.Fprintf(w, "%-6d %14v %14v %14v", nodes, pred.Elapsed, pred.AvgLatency, pred.Period)
		if o.compare {
			res, err := runDES(o, tables)
			if err != nil {
				return fmt.Errorf("nodes=%d: %w", nodes, err)
			}
			fmt.Fprintf(w, " %14v %7.2f", sim.Duration(res.Elapsed), ape(pred.Elapsed, sim.Duration(res.Elapsed)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runDES(o options, tables *gluegen.Tables) (*sagert.Result, error) {
	pl, err := platforms.ByName(o.platformName)
	if err != nil {
		return nil, err
	}
	return sagert.Run(tables, pl, sagert.Options{
		Iterations: o.iterations, Sequential: o.sequential, OptimizedBuffers: o.optimized,
	})
}

func runValidate(o options, w io.Writer) error {
	if o.seeds < 1 {
		return cli.Usagef("-seeds must be >= 1")
	}
	rep, err := validate.Validate(validate.Config{
		SeedStart: o.seedStart, Seeds: o.seeds, Quick: o.quick, Parallelism: o.parallel,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.Table())
	fmt.Fprintln(w, rep.Summary())
	if !rep.Pass() {
		return fmt.Errorf("calibration gates failed: MAPE=%.2f%% (gate %.0f%%), spearman=%.4f (gate %.2f)",
			rep.MAPE, validate.GateMAPE, rep.Spearman, validate.GateSpearman)
	}
	return nil
}

func ape(pred, des sim.Duration) float64 {
	if des == 0 {
		return 0
	}
	d := float64(pred) - float64(des)
	if d < 0 {
		d = -d
	}
	return 100 * d / float64(des)
}
