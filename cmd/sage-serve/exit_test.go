package main

import (
	"io"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, listen
// failures exit 1. (The serving path is covered by CI's serve-smoke job and
// internal/serve's tests.)
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"empty addr", []string{"-addr", ""}, cli.ExitUsage},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:1"}, cli.ExitFailure},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
