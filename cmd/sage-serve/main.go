// sage-serve is the persistent SAGE daemon: it keeps the model -> mapping ->
// gluegen -> simulate pipeline resident and answers HTTP requests, so a
// design-space exploration front end pays process start-up and table
// generation once instead of per run. See internal/serve for the API and
// DESIGN.md §9 for the architecture (admission control, content-addressed
// response cache, deadline cancellation).
//
// Usage:
//
//	sage-serve -addr :8080
//	sage-serve -addr 127.0.0.1:0 -workers 4 -queue 32 -rate 50 -deadline 10s
//
// Endpoints:
//
//	POST /v1/run     {"app":"fft2d","n":256,"platform":"CSPI","nodes":8,...}
//	GET  /v1/health  liveness probe
//	GET  /v1/stats   queue depth, cache hit rate, worker occupancy
//
// SIGINT/SIGTERM shut the daemon down cleanly: in-flight requests finish or
// hit their deadline, the worker fleet drains, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, serve failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "simulation worker fleet size (0 = GOMAXPROCS); results are identical at any setting")
	queue := fs.Int("queue", 64, "queued requests beyond the running ones before shedding with 429")
	rate := fs.Float64("rate", 0, "sustained admission rate in requests/sec (0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst capacity (0 = derived from -rate)")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request wall-clock budget; exceeding it cancels the run with 504 (0 = none)")
	cacheEntries := fs.Int("cache", 1024, "response cache entries (negative disables caching)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(*addr, serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		RatePerSec:   *rate,
		Burst:        *burst,
		Deadline:     *deadline,
		CacheEntries: *cacheEntries,
	}, stderr); err != nil {
		fmt.Fprintln(stderr, "sage-serve:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(addr string, cfg serve.Config, stderr io.Writer) error {
	if addr == "" {
		return cli.Usagef("-addr is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := serve.New(cfg)
	srv := &http.Server{Handler: s}

	// The listening line goes to stderr so scripts (and CI) can wait on it;
	// it reports the resolved address, which matters with port 0.
	fmt.Fprintf(stderr, "sage-serve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		s.Shutdown()
		return err
	case sig := <-sigc:
		fmt.Fprintf(stderr, "sage-serve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			s.Shutdown()
			return err
		}
		s.Shutdown()
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(stderr, "sage-serve: clean shutdown")
		return nil
	}
}
