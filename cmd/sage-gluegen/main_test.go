package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/gluegen"
	"repro/internal/model"
)

// writeInputs serialises a model and matching mapping into dir.
func writeInputs(t *testing.T, dir string) (modelPath, mappingPath string) {
	t.Helper()
	app, err := apps.FFT2D(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "m.sage")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.WriteText(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	mapping, err := model.SpreadParallel(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	mappingPath = filepath.Join(dir, "m.map")
	pf, err := os.Create(mappingPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapping.WriteText(pf, app.Name); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	return modelPath, mappingPath
}

func TestGenerateToFiles(t *testing.T) {
	dir := t.TempDir()
	modelPath, mappingPath := writeInputs(t, dir)
	tblPath := filepath.Join(dir, "m.tbl")
	gluePath := filepath.Join(dir, "m.glue")
	if err := run(modelPath, mappingPath, "CSPI", 4, "", tblPath, gluePath, false); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(tblPath)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := gluegen.ParseTableSource(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := tables.Verify(); err != nil {
		t.Fatal(err)
	}
	glue, err := os.ReadFile(gluePath)
	if err != nil || !strings.Contains(string(glue), "SAGE auto-generated") {
		t.Fatalf("glue listing: %v", err)
	}
}

func TestCustomScriptFile(t *testing.T) {
	dir := t.TempDir()
	modelPath, mappingPath := writeInputs(t, dir)
	scriptPath := filepath.Join(dir, "broken.alter")
	if err := os.WriteFile(scriptPath, []byte("(no-such-call)"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(modelPath, mappingPath, "CSPI", 4, scriptPath, "", "", false); err == nil {
		t.Fatal("broken custom script accepted")
	}
}

func TestPrintScript(t *testing.T) {
	if err := run("", "", "", 0, "", "", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestGluegenErrors(t *testing.T) {
	dir := t.TempDir()
	modelPath, mappingPath := writeInputs(t, dir)
	if err := run("", "", "CSPI", 4, "", "", "", false); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if err := run(modelPath, mappingPath, "Cray", 4, "", "", "", false); err == nil {
		t.Fatal("unknown platform accepted")
	}
	// Mapping for a different app.
	other := filepath.Join(dir, "other.map")
	if err := os.WriteFile(other, []byte("mapping different\nmap f 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(modelPath, other, "CSPI", 4, "", "", "", false); err == nil {
		t.Fatal("mismatched mapping accepted")
	}
}
