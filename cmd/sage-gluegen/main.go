// sage-gluegen is the glue-code generator of Figure 1.0: it loads an
// application model and a mapping, runs the Alter generator script (the
// standard one or a user script), and writes the runtime table source and
// the human-readable glue listing.
//
// Usage:
//
//	sage-gluegen -model fft2d.sage -mapping fft2d.map -platform CSPI -nodes 8 \
//	             -tables fft2d.tbl -glue fft2d_glue.txt
//	sage-gluegen -model fft2d.sage -mapping fft2d.map -script my-generator.alter
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, generation failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-gluegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelFile := fs.String("model", "", "model file (required)")
	mappingFile := fs.String("mapping", "", "mapping file (required)")
	platformName := fs.String("platform", "CSPI", "target platform")
	nodes := fs.Int("nodes", 8, "processor count")
	scriptFile := fs.String("script", "", "custom Alter generator script (default: built-in standard script)")
	tablesOut := fs.String("tables", "", "write the runtime table source (default stdout)")
	glueOut := fs.String("glue", "", "write the human-readable glue listing")
	printScript := fs.Bool("print-script", false, "print the built-in Alter generator script and exit")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(*modelFile, *mappingFile, *platformName, *nodes, *scriptFile, *tablesOut, *glueOut, *printScript); err != nil {
		fmt.Fprintln(stderr, "sage-gluegen:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(modelFile, mappingFile, platformName string, nodes int, scriptFile, tablesOut, glueOut string, printScript bool) error {
	if printScript {
		fmt.Print(gluegen.StandardScript)
		return nil
	}
	if modelFile == "" || mappingFile == "" {
		return cli.Usagef("-model and -mapping are required")
	}
	mf, err := os.Open(modelFile)
	if err != nil {
		return err
	}
	app, err := model.ReadText(mf)
	mf.Close()
	if err != nil {
		return err
	}
	pf, err := os.Open(mappingFile)
	if err != nil {
		return err
	}
	mapping, appName, err := model.ReadMappingText(pf)
	pf.Close()
	if err != nil {
		return err
	}
	if appName != app.Name {
		return fmt.Errorf("mapping is for app %q, model is %q", appName, app.Name)
	}
	pl, err := platforms.ByName(platformName)
	if err != nil {
		return err
	}
	script := gluegen.StandardScript
	if scriptFile != "" {
		b, err := os.ReadFile(scriptFile)
		if err != nil {
			return err
		}
		script = string(b)
	}
	out, err := gluegen.GenerateWith(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes}, script)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d functions, %d logical buffers, %d transfers; tables verified\n",
		len(out.Tables.Functions), len(out.Tables.Buffers), countTransfers(out.Tables))
	if tablesOut == "" {
		fmt.Print(out.TableSource)
	} else if err := os.WriteFile(tablesOut, []byte(out.TableSource), 0o644); err != nil {
		return err
	}
	if glueOut != "" {
		if err := os.WriteFile(glueOut, []byte(out.GlueSource), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func countTransfers(t *gluegen.Tables) int {
	n := 0
	for _, b := range t.Buffers {
		n += len(b.Transfers)
	}
	return n
}
