// sage-gluegen is the glue-code generator of Figure 1.0: it loads an
// application model and a mapping, runs the Alter generator script (the
// standard one or a user script), and writes the runtime table source and
// the human-readable glue listing.
//
// Usage:
//
//	sage-gluegen -model fft2d.sage -mapping fft2d.map -platform CSPI -nodes 8 \
//	             -tables fft2d.tbl -glue fft2d_glue.txt
//	sage-gluegen -model fft2d.sage -mapping fft2d.map -script my-generator.alter
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
)

func main() {
	modelFile := flag.String("model", "", "model file (required)")
	mappingFile := flag.String("mapping", "", "mapping file (required)")
	platformName := flag.String("platform", "CSPI", "target platform")
	nodes := flag.Int("nodes", 8, "processor count")
	scriptFile := flag.String("script", "", "custom Alter generator script (default: built-in standard script)")
	tablesOut := flag.String("tables", "", "write the runtime table source (default stdout)")
	glueOut := flag.String("glue", "", "write the human-readable glue listing")
	printScript := flag.Bool("print-script", false, "print the built-in Alter generator script and exit")
	flag.Parse()

	if err := run(*modelFile, *mappingFile, *platformName, *nodes, *scriptFile, *tablesOut, *glueOut, *printScript); err != nil {
		fmt.Fprintln(os.Stderr, "sage-gluegen:", err)
		os.Exit(1)
	}
}

func run(modelFile, mappingFile, platformName string, nodes int, scriptFile, tablesOut, glueOut string, printScript bool) error {
	if printScript {
		fmt.Print(gluegen.StandardScript)
		return nil
	}
	if modelFile == "" || mappingFile == "" {
		return fmt.Errorf("-model and -mapping are required")
	}
	mf, err := os.Open(modelFile)
	if err != nil {
		return err
	}
	app, err := model.ReadText(mf)
	mf.Close()
	if err != nil {
		return err
	}
	pf, err := os.Open(mappingFile)
	if err != nil {
		return err
	}
	mapping, appName, err := model.ReadMappingText(pf)
	pf.Close()
	if err != nil {
		return err
	}
	if appName != app.Name {
		return fmt.Errorf("mapping is for app %q, model is %q", appName, app.Name)
	}
	pl, err := platforms.ByName(platformName)
	if err != nil {
		return err
	}
	script := gluegen.StandardScript
	if scriptFile != "" {
		b, err := os.ReadFile(scriptFile)
		if err != nil {
			return err
		}
		script = string(b)
	}
	out, err := gluegen.GenerateWith(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes}, script)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d functions, %d logical buffers, %d transfers; tables verified\n",
		len(out.Tables.Functions), len(out.Tables.Buffers), countTransfers(out.Tables))
	if tablesOut == "" {
		fmt.Print(out.TableSource)
	} else if err := os.WriteFile(tablesOut, []byte(out.TableSource), 0o644); err != nil {
		return err
	}
	if glueOut != "" {
		if err := os.WriteFile(glueOut, []byte(out.GlueSource), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func countTransfers(t *gluegen.Tables) int {
	n := 0
	for _, b := range t.Buffers {
		n += len(b.Transfers)
	}
	return n
}
