package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, differential
// failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"no mode selected", nil, cli.ExitUsage},
		{"bad range", []string{"-seed-range", "7"}, cli.ExitUsage},
		{"reversed range", []string{"-seed-range", "9:3"}, cli.ExitUsage},
		{"unknown app", []string{"-app", "nope"}, cli.ExitUsage},
		{"bad platform", []string{"-app", "fft2d", "-platform", "nope"}, cli.ExitUsage},
		{"empty range passes", []string{"-seed-range", "0:0"}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestSeedSweepPasses runs the in-process differential loop for a few
// generated seeds end to end through the CLI surface.
func TestSeedSweepPasses(t *testing.T) {
	var out bytes.Buffer
	if got := cliMain([]string{"-seed-range", "0:3", "-quick"}, &out, io.Discard); got != cli.ExitOK {
		t.Fatalf("exit %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "3/3 seeds pass") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.HasPrefix(line, "seed ") && !strings.Contains(line, "PASS oracle+sim") {
			t.Fatalf("seed line without PASS: %q", line)
		}
	}
}

// TestAppModeVerifies runs a small benchmark app through plan/execute/oracle.
func TestAppModeVerifies(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-app", "ct", "-n", "16", "-nodes", "2", "-iterations", "2"}
	if got := cliMain(args, &out, io.Discard); got != cli.ExitOK {
		t.Fatalf("exit %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "verified vs oracle") {
		t.Fatalf("missing verification line:\n%s", out.String())
	}
}

// TestEmitWritesPackage checks -emit materializes a source package.
func TestEmitWritesPackage(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-app", "fft2d", "-n", "16", "-nodes", "2", "-emit", dir}
	if got := cliMain(args, &out, io.Discard); got != cli.ExitOK {
		t.Fatalf("exit %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "emitted ") {
		t.Fatalf("missing emit line:\n%s", out.String())
	}
}
