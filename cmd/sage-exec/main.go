// sage-exec closes the paper's code-generation loop for real: it lowers
// gluegen's runtime tables into an actual Go program — one goroutine per
// SAGE thread, buffered-channel lanes with the simulated runtime's credit
// semantics, function-library kernels on real []complex128 data — and then
// proves the generated code correct by differential execution. Every run is
// compared bit for bit against the sequential oracle (every iteration) and
// against the simulated kernel's data path (iteration 0). With -build the
// emitted source is additionally compiled with the host toolchain and the
// binary's output byte-compared against the in-process execution.
//
// Usage:
//
//	sage-exec -seed 7                        # one conformance seed, verbose
//	sage-exec -seed-range 0:32 -quick        # a seed sweep (CI smoke)
//	sage-exec -seed-range 0:8 -quick -build -race
//	sage-exec -seed 7 -emit ./out            # keep the emitted source
//	sage-exec -app fft2d -n 64 -nodes 4 -iterations 3
//	sage-exec -app ct -n 64 -nodes 4 -bench 5   # wall clock vs handcoded loop
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/codegen"
	"repro/internal/codegen/rtl"
	"repro/internal/conformance"
	"repro/internal/experiments"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr)) }

// options carries the parsed flag set.
type options struct {
	quick      bool
	build      bool
	race       bool
	emitDir    string
	iterations int
	bench      int
}

// cliMain parses flags and maps errors onto the shared exit-code
// discipline: usage mistakes exit 2, differential failures exit 1.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-exec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", -1, "check one conformance seed")
		seedRange = fs.String("seed-range", "", "half-open seed range from:to")
		quick     = fs.Bool("quick", false, "bound generated graph and platform sizes")
		build     = fs.Bool("build", false, "also compile the emitted source and diff the binary's output")
		race      = fs.Bool("race", false, "build the emitted program with -race (implies -build)")
		emitDir   = fs.String("emit", "", "write the emitted source package(s) under this directory")
		app       = fs.String("app", "", "run a benchmark app instead of a seed: fft2d or ct")
		n         = fs.Int("n", 64, "app mode: problem size (n x n)")
		nodes     = fs.Int("nodes", 4, "app mode: platform nodes")
		threads   = fs.Int("threads", 0, "app mode: worker threads per stage (0 = nodes)")
		platform  = fs.String("platform", "Workstations", "app mode: platform name")
		iters     = fs.Int("iterations", 1, "app mode: pipeline iterations to execute")
		bench     = fs.Int("bench", 0, "app mode: repetitions for the wall-clock comparison vs the handcoded loop")
	)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	opt := options{
		quick: *quick, build: *build || *race, race: *race,
		emitDir: *emitDir, iterations: *iters, bench: *bench,
	}

	switch {
	case *app != "":
		return runApp(*app, *n, *nodes, *threads, *platform, opt, stdout, stderr)
	case *seed >= 0:
		return checkSeeds(*seed, *seed+1, opt, stdout, stderr)
	case *seedRange != "":
		from, to, err := cli.ParseRange(*seedRange)
		if err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitUsage
		}
		return checkSeeds(from, to, opt, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "sage-exec: one of -seed, -seed-range or -app is required")
		fs.Usage()
		return cli.ExitUsage
	}
}

// checkSeeds runs the full differential loop for every seed in [from, to):
// generate -> gluegen -> plan -> execute, diffed against the oracle and the
// sim kernel, optionally through the compiler.
func checkSeeds(from, to int64, opt options, stdout, stderr io.Writer) int {
	failed := 0
	for seed := from; seed < to; seed++ {
		if err := checkSeed(seed, opt, stdout); err != nil {
			fmt.Fprintf(stderr, "sage-exec: seed %d: %v\n", seed, err)
			failed++
		}
	}
	fmt.Fprintf(stdout, "sage-exec: %d/%d seeds pass\n", to-from-int64(failed), to-from)
	if failed > 0 {
		return cli.ExitFailure
	}
	return cli.ExitOK
}

func checkSeed(seed int64, opt options, stdout io.Writer) error {
	c, err := conformance.Generate(seed, conformance.GenConfig{Quick: opt.quick})
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	pl, err := platforms.ByName(c.Platform)
	if err != nil {
		return err
	}
	gout, err := gluegen.Generate(gluegen.Input{
		App: c.App, Mapping: c.Mapping, Platform: pl, NumNodes: c.Nodes,
	})
	if err != nil {
		return fmt.Errorf("gluegen: %w", err)
	}
	prog, err := codegen.Plan(gout.Tables, c.Iterations)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	res, err := rtl.Execute(prog)
	if err != nil {
		return fmt.Errorf("execute: %w", err)
	}

	// Every iteration against the sequential oracle.
	for iter := 0; iter < c.Iterations; iter++ {
		want, err := conformance.Oracle(c.App, iter)
		if err != nil {
			return fmt.Errorf("oracle iter %d: %w", iter, err)
		}
		if d := conformance.CompareOutputs(want, res.Iters[iter]); d != "" {
			return fmt.Errorf("vs oracle, iteration %d: %s", iter, d)
		}
	}
	// Iteration 0 against the simulated kernel's data path.
	sres, err := sagert.Run(gout.Tables, pl, sagert.Options{Iterations: c.Iterations})
	if err != nil {
		return fmt.Errorf("sim kernel: %w", err)
	}
	if d := conformance.CompareOutputs(sres.Outputs, res.Iters[0]); d != "" {
		return fmt.Errorf("vs sim kernel: %s", d)
	}

	detail := fmt.Sprintf("%d threads, %d lanes, %d iterations, wall %v",
		len(prog.Threads), len(prog.Conns), prog.Iterations, res.Wall.Round(time.Microsecond))
	if opt.emitDir != "" || opt.build {
		src, err := codegen.EmitSource(prog)
		if err != nil {
			return fmt.Errorf("emit: %w", err)
		}
		if opt.emitDir != "" {
			dir := filepath.Join(opt.emitDir, fmt.Sprintf("seed-%d", seed))
			if err := codegen.WritePackage(dir, src); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "seed %d: emitted %s\n", seed, filepath.Join(dir, "main.go"))
		}
		if opt.build {
			var want bytes.Buffer
			if err := res.WriteText(&want); err != nil {
				return err
			}
			bres, err := codegen.BuildAndRun(src, codegen.BuildOptions{Race: opt.race, Vet: true})
			if err != nil {
				return err
			}
			if !bytes.Equal(bres.Stdout, want.Bytes()) {
				return fmt.Errorf("compiled output differs from in-process output")
			}
			detail += ", compiled output identical"
			if opt.race {
				detail += " (-race)"
			}
		}
	}
	fmt.Fprintf(stdout, "seed %d: PASS oracle+sim (%s)\n", seed, detail)
	return nil
}

// appKind maps the CLI spelling onto the experiments catalog.
func appKind(name string) (experiments.AppKind, error) {
	switch name {
	case "fft2d":
		return experiments.AppFFT2D, nil
	case "ct", "cornerturn":
		return experiments.AppCornerTurn, nil
	default:
		return "", fmt.Errorf("unknown app %q (want fft2d or ct)", name)
	}
}

// runApp generates, verifies and (optionally) benchmarks one of the paper's
// benchmark applications as a real executing program.
func runApp(name string, n, nodes, threads int, platform string, opt options, stdout, stderr io.Writer) int {
	kind, err := appKind(name)
	if err != nil {
		fmt.Fprintln(stderr, "sage-exec:", err)
		return cli.ExitUsage
	}
	if threads <= 0 {
		threads = nodes
	}
	if opt.iterations < 1 {
		opt.iterations = 1
	}
	pl, err := platforms.ByName(platform)
	if err != nil {
		fmt.Fprintln(stderr, "sage-exec:", err)
		return cli.ExitUsage
	}
	app, err := experiments.BuildApp(kind, n, threads)
	if err != nil {
		fmt.Fprintln(stderr, "sage-exec:", err)
		return cli.ExitFailure
	}
	gout, err := experiments.GenerateTablesWide(kind, pl, nodes, threads, n)
	if err != nil {
		fmt.Fprintln(stderr, "sage-exec:", err)
		return cli.ExitFailure
	}
	prog, err := codegen.Plan(gout.Tables, opt.iterations)
	if err != nil {
		fmt.Fprintln(stderr, "sage-exec:", err)
		return cli.ExitFailure
	}
	res, err := rtl.Execute(prog)
	if err != nil {
		fmt.Fprintln(stderr, "sage-exec:", err)
		return cli.ExitFailure
	}
	for iter := 0; iter < opt.iterations; iter++ {
		want, err := conformance.Oracle(app, iter)
		if err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		if d := conformance.CompareOutputs(want, res.Iters[iter]); d != "" {
			fmt.Fprintf(stderr, "sage-exec: %s iteration %d: %s\n", kind, iter, d)
			return cli.ExitFailure
		}
	}
	fmt.Fprintf(stdout, "%s n=%d nodes=%d threads=%d: %d threads, %d lanes, %d iterations verified vs oracle, wall %v\n",
		kind, n, nodes, threads, len(prog.Threads), len(prog.Conns), opt.iterations, res.Wall.Round(time.Microsecond))

	if opt.emitDir != "" {
		src, err := codegen.EmitSource(prog)
		if err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		if err := codegen.WritePackage(opt.emitDir, src); err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		fmt.Fprintf(stdout, "emitted %s\n", filepath.Join(opt.emitDir, "main.go"))
	}
	if opt.build {
		src, err := codegen.EmitSource(prog)
		if err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		var want bytes.Buffer
		if err := res.WriteText(&want); err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		bres, err := codegen.BuildAndRun(src, codegen.BuildOptions{Race: opt.race, Vet: true})
		if err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		if !bytes.Equal(bres.Stdout, want.Bytes()) {
			fmt.Fprintln(stderr, "sage-exec: compiled output differs from in-process output")
			return cli.ExitFailure
		}
		fmt.Fprintln(stdout, "compiled output identical to in-process execution")
	}
	if opt.bench > 0 {
		return benchApp(kind, app, prog, opt, stdout, stderr)
	}
	return cli.ExitOK
}

// benchApp measures real wall clock: the generated concurrent program
// against the handcoded-style sequential loop (the oracle evaluating the
// same model once per data set), averaged over repetitions. This is the
// paper's Table-1 comparison re-run on actual execution rather than the
// simulator — numbers land in README.md's "running generated code for
// real" walkthrough.
func benchApp(kind experiments.AppKind, app *model.App, prog *rtl.Program, opt options, stdout, stderr io.Writer) int {
	reps := opt.bench
	var genTotal, handTotal time.Duration
	for r := 0; r < reps; r++ {
		res, err := rtl.Execute(prog)
		if err != nil {
			fmt.Fprintln(stderr, "sage-exec:", err)
			return cli.ExitFailure
		}
		genTotal += res.Wall
		start := time.Now()
		for iter := 0; iter < opt.iterations; iter++ {
			if _, err := conformance.Oracle(app, iter); err != nil {
				fmt.Fprintln(stderr, "sage-exec:", err)
				return cli.ExitFailure
			}
		}
		handTotal += time.Since(start)
	}
	gen := genTotal / time.Duration(reps)
	hand := handTotal / time.Duration(reps)
	fmt.Fprintf(stdout, "bench %s: generated %v, handcoded-loop %v, ratio %.2f (avg of %d reps, %d iterations)\n",
		kind, gen.Round(time.Microsecond), hand.Round(time.Microsecond),
		float64(gen)/float64(hand), reps, opt.iterations)
	return cli.ExitOK
}
