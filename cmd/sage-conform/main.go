// sage-conform drives the randomized end-to-end conformance subsystem: for
// every seed in a range it generates a valid dataflow application (a layered
// DAG of function-library ops with randomized shapes, stripings, fan-in and
// fan-out), maps it onto a randomized platform, generates the runtime tables,
// executes them on the simulated multicomputer, and differentially checks the
// outputs against a single-node sequential oracle — plus the metamorphic
// invariants (re-execution, sequential mode, optimized buffers, traced,
// faulted with forced delivery, node-permuted mapping), all bit for bit.
// Failing seeds are greedily shrunk and written as reproducer corpus files
// that the test suite replays.
//
// Usage:
//
//	sage-conform -seed-range 0:200                  # the standard campaign
//	sage-conform -seed 17                           # one seed, verbose
//	sage-conform -seed-range 0:64 -quick -parallel 8
//	sage-conform -seed-range 0:32 -mutate           # harness self-test
//	sage-conform -seed-range 0:32 -mutate-exec      # generated-code self-test
//	sage-conform -replay internal/conformance/testdata/corpus
//	sage-conform -seed-range 0:64 -corpus ./failing # write reproducers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/conformance"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, conformance failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-conform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seedRange  = fs.String("seed-range", "", "half-open seed range from:to, e.g. 0:200")
		seed       = fs.Int64("seed", -1, "check a single seed (prints the generated case summary)")
		quick      = fs.Bool("quick", false, "bound graph and platform sizes (CI smoke runs)")
		parallel   = fs.Int("parallel", 1, "concurrent checker workers; output is identical for any value")
		mutate     = fs.Bool("mutate", false, "self-test: inject a runtime miscomputation; every seed must fail and shrink small")
		mutateExec = fs.Bool("mutate-exec", false, "self-test: corrupt the generated-code execution output; every seed must fail on the exec variant")
		corpus     = fs.String("corpus", "", "directory receiving seed-<n>.case reproducers for failing seeds")
		replay     = fs.String("replay", "", "replay every .case reproducer in a directory instead of generating")
		noShrink   = fs.Bool("no-shrink", false, "report raw failures without minimizing")
		maxShrink  = fs.Int("max-shrink-checks", 0, "differential check budget per shrink (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	switch {
	case *replay != "":
		return replayDir(*replay)
	case *seed >= 0:
		return oneSeed(*seed, *quick, *mutate, *mutateExec, *maxShrink)
	case *seedRange != "":
		from, to, err := cli.ParseRange(*seedRange)
		if err != nil {
			fmt.Fprintln(stderr, "sage-conform:", err)
			return cli.ExitUsage
		}
		rep, err := conformance.Run(from, to, conformance.Config{
			Quick:           *quick,
			Parallelism:     *parallel,
			Mutate:          *mutate,
			MutateExec:      *mutateExec,
			CorpusDir:       *corpus,
			MaxShrinkChecks: *maxShrink,
			NoShrink:        *noShrink,
		})
		if rep != nil {
			fmt.Print(rep.Format())
		}
		if err != nil {
			fmt.Fprintln(stderr, "sage-conform:", err)
			return cli.ExitFailure
		}
		if !rep.OK() {
			return cli.ExitFailure
		}
		return cli.ExitOK
	default:
		fmt.Fprintln(stderr, "sage-conform: one of -seed-range, -seed or -replay is required")
		fs.Usage()
		return cli.ExitUsage
	}
}

// oneSeed checks a single seed verbosely.
func oneSeed(seed int64, quick, mutate, mutateExec bool, maxShrink int) int {
	c, err := conformance.Generate(seed, conformance.GenConfig{Quick: quick})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sage-conform: seed %d: generator: %v\n", seed, err)
		return 1
	}
	fmt.Printf("seed %d: app %s: %d tasks, %d arcs, %d nodes, platform %s, %d iterations\n",
		seed, c.App.Name, c.Tasks(), c.Arcs(), c.Nodes, c.Platform, c.Iterations)
	for _, f := range c.App.Functions {
		fmt.Printf("  %-24s kind=%-18s threads=%d\n", f.Name, f.Kind, f.Threads)
	}
	opt := conformance.CheckOptions{MutateRuntime: mutate, MutateExec: mutateExec}
	fail := c.Check(opt)
	if fail == nil {
		fmt.Printf("seed %d: PASS (oracle + all metamorphic variants agree bit for bit)\n", seed)
		return 0
	}
	fmt.Printf("seed %d: FAIL %s\n", seed, fail)
	sr := conformance.Shrink(c, opt, maxShrink)
	fmt.Printf("seed %d: shrunk to %d tasks / %d arcs in %d checks: %s\n",
		seed, sr.Case.Tasks(), sr.Case.Arcs(), sr.Checks, sr.Failure)
	if err := conformance.WriteCase(os.Stdout, sr.Case); err != nil {
		fmt.Fprintln(os.Stderr, "sage-conform:", err)
	}
	return 1
}

// replayDir re-checks every committed reproducer.
func replayDir(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sage-conform:", err)
		return 1
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".case") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Printf("replay %s: no .case files\n", dir)
		return 0
	}
	bad := 0
	for _, name := range files {
		c, err := conformance.ReadCaseFile(filepath.Join(dir, name))
		if err != nil {
			fmt.Printf("replay %s: UNREADABLE: %v\n", name, err)
			bad++
			continue
		}
		if fail := c.Check(conformance.CheckOptions{}); fail != nil {
			fmt.Printf("replay %s: FAIL %s\n", name, fail)
			bad++
		} else {
			fmt.Printf("replay %s: pass (%d tasks, %d nodes)\n", name, c.Tasks(), c.Nodes)
		}
	}
	fmt.Printf("replay: %d/%d reproducers pass\n", len(files)-bad, len(files))
	if bad > 0 {
		return 1
	}
	return 0
}
