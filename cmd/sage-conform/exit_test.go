package main

import (
	"io"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, conformance
// failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"no mode selected", nil, cli.ExitUsage},
		{"bad range", []string{"-seed-range", "7"}, cli.ExitUsage},
		{"reversed range", []string{"-seed-range", "9:3"}, cli.ExitUsage},
		{"empty range passes", []string{"-seed-range", "0:0"}, cli.ExitOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
