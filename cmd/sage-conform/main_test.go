package main

import "testing"

func TestParseRange(t *testing.T) {
	cases := []struct {
		in       string
		from, to int64
		ok       bool
	}{
		{"0:200", 0, 200, true},
		{"5:5", 5, 5, true},
		{" 3 : 9 ", 3, 9, true},
		{"-4:4", -4, 4, true},
		{"9:3", 0, 0, false},
		{"12", 0, 0, false},
		{"a:b", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, tc := range cases {
		from, to, err := parseRange(tc.in)
		if tc.ok && (err != nil || from != tc.from || to != tc.to) {
			t.Errorf("parseRange(%q) = %d, %d, %v; want %d, %d", tc.in, from, to, err, tc.from, tc.to)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseRange(%q) accepted, want error", tc.in)
		}
	}
}
