// sage-bench regenerates the paper's evaluation tables and figures (see
// DESIGN.md's experiment index).
//
// Usage:
//
//	sage-bench -experiment table1              # Table 1.0 at paper scale
//	sage-bench -experiment table1 -quick       # reduced protocol
//	sage-bench -experiment table1 -parallel 4  # 4-worker simulation pool
//	sage-bench -experiment all -quick
//
// Experiments: table1, twonode, aggregate, crossvendor, portability,
// genstudy, pipeline, mapping, faultsweep, all.
//
// Independent simulation runs fan out across a bounded worker pool
// (-parallel, default GOMAXPROCS). Results are identical at any pool size —
// all timing is virtual — so -parallel trades host wall-clock only.
// -shards N additionally shards each SAGE simulation internally
// (sagert.Options.Shards) — useful when one huge run dominates; like
// -parallel it never changes a reported number.
//
// -faults plan.txt injects a deterministic fault plan (drops, degraded
// links, node stalls — see DESIGN.md §6 and sage-faultcheck) into every
// simulated run of the selected experiment; the faultsweep experiment
// instead sweeps drop rates itself and takes no -faults file.
//
// -trace out.json records a Chrome trace (open in chrome://tracing or
// Perfetto) covering every simulation run the experiment performs;
// -trace-summary prints per-node utilisation, link traffic and wait
// statistics derived from the same trace. Tracing never changes results.
//
// -benchjson BENCH_<n>.json runs the fixed performance matrix instead of an
// experiment (see package repro/internal/bench) and writes the report;
// -bench-quick shrinks the matrix for CI smoke runs. -benchcheck FILE
// validates an existing report against the BENCH JSON schema and prints its
// deterministic fingerprint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/atot"
	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/platforms"
	"repro/internal/trace"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, experiment failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("experiment", "table1", "experiment to run (table1|twonode|aggregate|crossvendor|portability|genstudy|pipeline|mapping|heterogeneous|realtime|scaling|faultsweep|all)")
	quick := fs.Bool("quick", false, "reduced sizes and protocol for a fast smoke run")
	paper := fs.Bool("paper", false, "use the literal §3.3 protocol (10 executions x 100 iterations); slow, and — the simulator being deterministic — numerically identical to the default reduced protocol")
	parallel := fs.Int("parallel", 0, "worker pool size for independent simulation runs (0 = GOMAXPROCS, 1 = sequential); output is identical at any setting")
	shards := fs.Int("shards", 1, "shard each SAGE simulation run across up to this many cores (byte-identical output; sequential-mode comparisons and shared-fabric platforms ignore it)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of every simulation run to this file")
	traceSummary := fs.Bool("trace-summary", false, "print a per-node/per-link trace summary (requires or implies tracing)")
	faultsPath := fs.String("faults", "", "fault-plan file injected into every simulated run (validate with sage-faultcheck)")
	benchJSON := fs.String("benchjson", "", "run the fixed benchmark matrix and write the BENCH JSON report to this file (ignores -experiment)")
	benchQuick := fs.Bool("bench-quick", false, "with -benchjson: tiny matrix sizes for CI smoke runs")
	benchCheck := fs.String("benchcheck", "", "validate an existing BENCH JSON report and print its deterministic fingerprint")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	if *benchCheck != "" {
		r, err := bench.ReadFile(*benchCheck)
		if err != nil {
			fmt.Fprintln(stderr, "sage-bench:", err)
			return cli.ExitCode(err)
		}
		fmt.Print(r.Fingerprint())
		return cli.ExitOK
	}
	if *benchJSON != "" {
		if err := runBench(*benchJSON, *benchQuick); err != nil {
			fmt.Fprintln(stderr, "sage-bench:", err)
			return cli.ExitCode(err)
		}
		return cli.ExitOK
	}
	if err := run(*exp, *quick, *paper, *parallel, *shards, *tracePath, *traceSummary, *faultsPath); err != nil {
		fmt.Fprintln(stderr, "sage-bench:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

// runBench executes the fixed performance matrix and writes the report.
// Progress goes to stderr; the JSON file is the product.
func runBench(path string, quick bool) error {
	r, err := bench.Run(bench.Matrix(quick), os.Stderr)
	if err != nil {
		return err
	}
	if err := bench.Validate(r); err != nil {
		return fmt.Errorf("fresh report failed schema validation: %w", err)
	}
	if err := bench.WriteFile(path, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: %d cases written to %s\n", len(r.Cases), path)
	if s := r.Summary; s != nil {
		fmt.Fprintf(os.Stderr, "bench: events/sec mean %.0f p50 %.0f range [%.0f, %.0f] over %d cases\n",
			s.EventsPerSecMean, s.EventsPerSecP50, s.EventsPerSecMin, s.EventsPerSecMax, s.Cases)
	}
	return nil
}

func run(exp string, quick, paper bool, parallel, shards int, tracePath string, traceSummary bool, faultsPath string) error {
	// Default: paper sizes, reduced repetition count. Averages are exact
	// because virtual timing is deterministic across repetitions.
	proto := experiments.Protocol{Repetitions: 1, Iterations: 5}
	if paper {
		proto = experiments.Paper()
	}
	sizes := []int{256, 512, 1024}
	nodes := []int{4, 8}
	anomalyN := 512
	vendorN := 1024
	vendorNodes := []int{2, 4, 8, 16}
	if quick {
		proto = experiments.Quick()
		sizes = []int{64, 128}
		anomalyN = 128
		vendorN = 128
		vendorNodes = []int{4, 8}
	}
	proto.Parallelism = parallel
	proto.Shards = shards
	if faultsPath != "" {
		src, err := os.ReadFile(faultsPath)
		if err != nil {
			return err
		}
		plan, err := fault.ParsePlan(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", faultsPath, err)
		}
		proto.Faults = plan
	}
	var tr *trace.Trace
	if tracePath != "" || traceSummary {
		tr = trace.NewTrace()
		proto.Trace = tr
	}
	tblCfg := experiments.Table1Config{Sizes: sizes, Nodes: nodes, Protocol: proto}

	runOne := func(name string) error {
		switch name {
		case "table1":
			t, err := experiments.RunTable1(tblCfg)
			if err != nil {
				return err
			}
			fmt.Println(t.Format())
		case "twonode":
			t, err := experiments.RunTwoNode(platforms.CSPI(), anomalyN, proto)
			if err != nil {
				return err
			}
			fmt.Println(t.Format())
			fmt.Printf("two-node configuration is the worst: %v (paper §3.4 observed the same)\n\n", t.WorstIsTwoNodes())
		case "aggregate":
			a, err := experiments.RunAggregate(tblCfg)
			if err != nil {
				return err
			}
			fmt.Println(a.Format())
		case "crossvendor":
			c, err := experiments.RunCrossVendor(vendorN, vendorNodes, proto)
			if err != nil {
				return err
			}
			fmt.Println(c.Format())
		case "portability":
			p, err := experiments.RunPortability(experiments.AppFFT2D, min(512, vendorN), 8, experiments.Quick())
			if err != nil {
				return err
			}
			fmt.Println(p.Format())
			fmt.Printf("identical output on every platform: %v\n\n", p.AllVerified())
		case "genstudy":
			for _, kind := range []experiments.AppKind{experiments.AppFFT2D, experiments.AppCornerTurn} {
				s, err := experiments.RunGenStudy(kind, platforms.CSPI(), vendorN, 8)
				if err != nil {
					return err
				}
				fmt.Println(s.Format())
			}
			fmt.Println()
		case "pipeline":
			p, err := experiments.RunPipeline(experiments.AppFFT2D, platforms.CSPI(), min(512, vendorN), 8, 8)
			if err != nil {
				return err
			}
			fmt.Println(p.Format())
		case "mapping":
			app, err := apps.STAP(min(256, vendorN), 6)
			if err != nil {
				return err
			}
			gens := 120
			if quick {
				gens = 30
			}
			s, err := experiments.RunMappingStudy(app, platforms.CSPI(), 8, atot.GAConfig{Generations: gens, Seed: 1})
			if err != nil {
				return err
			}
			fmt.Println(s.Format())
		case "heterogeneous":
			app, err := apps.STAP(min(128, vendorN), 4)
			if err != nil {
				return err
			}
			gens := 60
			if quick {
				gens = 25
			}
			h, err := experiments.RunHeterogeneous(app, platforms.CSPI(),
				[]float64{2, 2, 1, 1, 1, 1, 0.5, 0.5},
				atot.GAConfig{Generations: gens, Seed: 1})
			if err != nil {
				return err
			}
			fmt.Println(h.Format())
		case "scaling":
			sc, err := experiments.RunScaling(experiments.AppFFT2D, platforms.CSPI(),
				min(512, vendorN), vendorNodes, proto)
			if err != nil {
				return err
			}
			fmt.Println(sc.Format())
			sc2, err := experiments.RunScaling(experiments.AppCornerTurn, platforms.CSPI(),
				min(512, vendorN), vendorNodes, proto)
			if err != nil {
				return err
			}
			fmt.Println(sc2.Format())
		case "faultsweep":
			fc := experiments.FaultSweepConfig{N: min(256, vendorN), Protocol: proto}
			if quick {
				fc.Rates = []float64{0, 0.1, 0.3}
			}
			fs, err := experiments.RunFaultSweep(fc)
			if err != nil {
				return err
			}
			fmt.Println(fs.Format())
		case "realtime":
			rt, err := experiments.RunRealTime(experiments.AppCornerTurn, platforms.CSPI(),
				min(512, vendorN), 8, 8, nil)
			if err != nil {
				return err
			}
			fmt.Println(rt.Format())
		default:
			return cli.Usagef("unknown experiment %q", name)
		}
		return nil
	}

	if exp == "all" {
		for _, name := range []string{"table1", "twonode", "aggregate", "crossvendor", "portability", "genstudy", "pipeline", "mapping", "heterogeneous", "realtime", "scaling", "faultsweep"} {
			fmt.Printf("=== %s ===\n", name)
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return writeTrace(tr, tracePath, traceSummary)
	}
	if err := runOne(exp); err != nil {
		return err
	}
	return writeTrace(tr, tracePath, traceSummary)
}

// writeTrace emits the collected trace as Chrome trace-event JSON and/or a
// text summary after the experiments finish.
func writeTrace(tr *trace.Trace, path string, summary bool) error {
	if tr == nil {
		return nil
	}
	if len(tr.Runs()) == 0 {
		fmt.Fprintln(os.Stderr, "sage-bench: note: the selected experiment produced no traced runs")
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Status goes to stderr so traced stdout stays byte-identical to an
		// untraced run of the same experiment.
		fmt.Fprintf(os.Stderr, "trace: %d runs written to %s (open in chrome://tracing or Perfetto)\n", len(tr.Runs()), path)
	}
	if summary {
		if err := tr.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
