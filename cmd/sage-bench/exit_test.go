package main

import (
	"io"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, runtime
// failures exit 1. (Successful experiments are covered by main_test.go.)
func TestExitCodes(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.json")
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"unknown experiment", []string{"-experiment", "warpdrive"}, cli.ExitUsage},
		{"missing benchcheck file", []string{"-benchcheck", missing}, cli.ExitFailure},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
