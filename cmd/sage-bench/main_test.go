package main

import (
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<22)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestGenStudyExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error { return run("genstudy", true, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 1.0") || !strings.Contains(out, "verified=true") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTable1QuickExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error { return run("table1", true, false) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1.0", "2D FFT", "% of Hand", "Overall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("warpcore", true, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
