package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<22)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestGenStudyExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error { return run("genstudy", true, false, 0, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 1.0") || !strings.Contains(out, "verified=true") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTable1QuickExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error { return run("table1", true, false, 0, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1.0", "2D FFT", "% of Hand", "Overall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestParallelFlagOutputIdentical pins the CLI-level determinism guarantee:
// -parallel changes wall-clock only, never a byte of the printed tables.
func TestParallelFlagOutputIdentical(t *testing.T) {
	seq, err := captureStdout(t, func() error { return run("twonode", true, false, 1, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	par, err := captureStdout(t, func() error { return run("twonode", true, false, 4, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("-parallel 4 output differs from -parallel 1:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("warpcore", true, false, 0, 1, "", false, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestFaultSweepExperiment smoke-tests the faultsweep table end to end,
// including its -parallel invariance.
func TestFaultSweepExperiment(t *testing.T) {
	seq, err := captureStdout(t, func() error { return run("faultsweep", true, false, 1, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fault sweep", "% of Hand", "x fault0", "30.0%"} {
		if !strings.Contains(seq, want) {
			t.Fatalf("output missing %q:\n%s", want, seq)
		}
	}
	par, err := captureStdout(t, func() error { return run("faultsweep", true, false, 4, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("faultsweep output differs at -parallel 4:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestFaultsFlag injects a plan file into a regular experiment: the run must
// still verify, finish slower than fault-free, and reject malformed plans.
func TestFaultsFlag(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.txt")
	if err := os.WriteFile(plan, []byte("seed 9\ndrop link=* rate=0.2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	clean, err := captureStdout(t, func() error { return run("twonode", true, false, 0, 1, "", false, "") })
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := captureStdout(t, func() error { return run("twonode", true, false, 0, 1, "", false, plan) })
	if err != nil {
		t.Fatal(err)
	}
	if faulted == clean {
		t.Fatal("-faults plan did not change the experiment's timings")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("drop rate=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("twonode", true, false, 0, 1, "", false, bad); err == nil {
		t.Fatal("malformed plan file accepted")
	}
	if err := run("twonode", true, false, 0, 1, "", false, filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing plan file accepted")
	}
}
