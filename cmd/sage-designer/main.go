// sage-designer is the command-line face of the SAGE Designer: it creates
// benchmark application models, validates models against the function
// library, and prints summaries.
//
// Usage:
//
//	sage-designer -new fft2d -n 1024 -threads 8 -o fft2d.sage
//	sage-designer -model fft2d.sage -summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/cli"
	"repro/internal/funclib"
	"repro/internal/model"
	"repro/internal/platforms"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, load/validation failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-designer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	newApp := fs.String("new", "", "create a benchmark model: fft2d | cornerturn | stap")
	n := fs.Int("n", 1024, "matrix edge for -new (power of two)")
	threads := fs.Int("threads", 8, "worker thread count for -new")
	out := fs.String("o", "", "output file for -new (default stdout)")
	modelFile := fs.String("model", "", "model file to load")
	summary := fs.Bool("summary", false, "print a model summary")
	kinds := fs.Bool("kinds", false, "list the function library (software shelf)")
	newHW := fs.String("new-hw", "", "emit a hardware design from a registry platform (CSPI|Mercury|SKY|SIGI|Workstations)")
	boards := fs.Int("boards", 2, "board count for -new-hw")
	hwFile := fs.String("hw", "", "hardware design file to validate and summarise")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(*newApp, *n, *threads, *out, *modelFile, *summary, *kinds, *newHW, *boards, *hwFile); err != nil {
		fmt.Fprintln(stderr, "sage-designer:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

func run(newApp string, n, threads int, out, modelFile string, summary, kinds bool, newHW string, boards int, hwFile string) error {
	if newHW != "" {
		pl, err := platforms.ByName(newHW)
		if err != nil {
			return err
		}
		sys := model.SystemFromPlatform(pl, boards)
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return sys.WriteHWText(w)
	}
	if hwFile != "" {
		f, err := os.Open(hwFile)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err := model.ReadHWText(f)
		if err != nil {
			return err
		}
		pl := sys.Platform()
		fmt.Printf("hardware %q: OK\n", sys.Name)
		fmt.Printf("  %d boards x %d procs = %d nodes\n", sys.NumBoards, sys.Board.NumProcs, sys.NumNodes())
		fmt.Printf("  cpu %s: %.0f MHz, %.2f flops/cycle, copy %.0f MB/s\n",
			sys.Board.Proc.Name, pl.ClockHz/1e6, pl.FlopsPerCycle, pl.MemCopyBW/1e6)
		fmt.Printf("  fabric %s: %.0f MB/s, latency %v, alltoall %s\n",
			sys.Fabric.Name, pl.InterBW/1e6, pl.InterLatency, pl.AllToAll)
		return nil
	}
	if kinds {
		fmt.Println("function library (software shelf):")
		for _, k := range funclib.Kinds() {
			im, err := funclib.Lookup(k)
			if err != nil {
				return err
			}
			fmt.Printf("  %-16s %s\n", k, im.Doc)
		}
		return nil
	}
	if newApp != "" {
		var app *model.App
		var err error
		switch newApp {
		case "fft2d":
			app, err = apps.FFT2D(n, threads)
		case "cornerturn":
			app, err = apps.CornerTurn(n, threads)
		case "stap":
			app, err = apps.STAP(n, threads)
		default:
			return cli.Usagef("unknown benchmark %q (want fft2d, cornerturn or stap)", newApp)
		}
		if err != nil {
			return err
		}
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return app.WriteText(w)
	}
	if modelFile == "" {
		return cli.Usagef("nothing to do: pass -new, -model or -kinds")
	}
	f, err := os.Open(modelFile)
	if err != nil {
		return err
	}
	defer f.Close()
	app, err := model.ReadText(f)
	if err != nil {
		return err
	}
	if err := app.Validate(); err != nil {
		return fmt.Errorf("model invalid: %w", err)
	}
	if err := funclib.ValidateApp(app); err != nil {
		return fmt.Errorf("model invalid against function library: %w", err)
	}
	fmt.Printf("model %q: OK\n", app.Name)
	if summary {
		printSummary(app)
	}
	return nil
}

func printSummary(app *model.App) {
	fmt.Printf("\n%d data types, %d functions, %d arcs\n\n", len(app.Types), len(app.Functions), len(app.Arcs))
	for _, fn := range app.Functions {
		fmt.Printf("  [%d] %-14s kind=%-16s threads=%d\n", fn.ID, fn.Name, fn.Kind, fn.Threads)
		for _, p := range fn.Inputs {
			fmt.Printf("        in  %-8s %4dx%-4d %s\n", p.Name, p.Type.Rows, p.Type.Cols, p.Striping)
		}
		for _, p := range fn.Outputs {
			fmt.Printf("        out %-8s %4dx%-4d %s\n", p.Name, p.Type.Rows, p.Type.Cols, p.Striping)
		}
	}
	fmt.Println()
	for _, a := range app.Arcs {
		fmt.Printf("  arc %s\n", a)
	}
}
