package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout around f and returns what was printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), ferr
}

func TestNewModelAndValidate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ct.sage")
	if err := run("cornerturn", 128, 4, path, "", false, false, "", 0, ""); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("", 0, 0, "", path, true, false, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK", "transpose_block", "arc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestKindsListing(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 0, 0, "", "", false, true, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fft_rows", "source_matrix", "software shelf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kinds missing %q", want)
		}
	}
}

func TestHWRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.hw")
	if err := run("", 0, 0, path, "", false, false, "Mercury", 3, ""); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("", 0, 0, "", "", false, false, "", 0, path)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 boards x 4 procs = 12 nodes") {
		t.Fatalf("hw summary wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run("warpdrive", 64, 4, "", "", false, false, "", 0, ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run("", 0, 0, "", "", false, false, "", 0, ""); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run("", 0, 0, "", "/nonexistent.sage", false, false, "", 0, ""); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run("", 0, 0, "", "", false, false, "NoSuchVendor", 2, ""); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
