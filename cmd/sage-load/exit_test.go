package main

import (
	"io"
	"testing"

	"repro/internal/cli"
)

// TestExitCodes pins the CLI contract: usage mistakes exit 2, an
// unreachable daemon exits 1. (The load path against a live daemon is
// covered by CI's serve-smoke job.)
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-definitely-not-a-flag"}, cli.ExitUsage},
		{"missing addr", nil, cli.ExitUsage},
		{"bad counts", []string{"-addr", "http://127.0.0.1:1", "-n", "0"}, cli.ExitUsage},
		{"unreachable daemon", []string{"-addr", "http://127.0.0.1:1", "-wait", "50ms"}, cli.ExitFailure},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestMixDeterministic: the same seed must replay the same request bytes —
// CI's cached-vs-fresh comparison depends on it.
func TestMixDeterministic(t *testing.T) {
	a, b := mix(7, 16), mix(7, 16)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("mix sizes %d/%d, want 16", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Errorf("request %d differs between identically seeded mixes", i)
		}
	}
	c := mix(8, 16)
	same := 0
	for i := range a {
		if string(a[i]) == string(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical mix")
	}
}
