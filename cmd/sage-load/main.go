// sage-load is the seeded load generator for sage-serve: it drives a
// deterministic mix of simulation requests at the daemon, counts outcomes,
// and (with -check-cache) replays every distinct request to assert that the
// cached response is byte-identical to the fresh one. CI's serve-smoke job
// is built on it; it is also a handy soak driver for a daemon left running.
//
// Usage:
//
//	sage-load -addr http://127.0.0.1:8080 -n 200
//	sage-load -addr http://127.0.0.1:8080 -n 1000 -parallel 8 -check-cache
//
// Exit status: 0 when every request succeeded (429 shed responses count as
// expected under overload unless -no-shed), 1 on any 5xx, transport error
// or cached/fresh byte mismatch, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
)

func main() { os.Exit(cliMain(os.Args[1:], os.Stderr)) }

// cliMain parses flags and maps errors to the shared exit-code discipline:
// usage mistakes exit 2, load-run failures exit 1.
func cliMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sage-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8080 (required)")
	n := fs.Int("n", 200, "requests to send")
	seed := fs.Int64("seed", 1, "request-mix seed; the same seed replays the same mix")
	parallel := fs.Int("parallel", 4, "concurrent senders")
	distinct := fs.Int("distinct", 16, "distinct request shapes in the mix (the rest are cache hits)")
	checkCache := fs.Bool("check-cache", false, "after the run, replay each distinct request and require byte-identical bodies")
	noShed := fs.Bool("no-shed", false, "treat 429 shed responses as failures")
	wait := fs.Duration("wait", 10*time.Second, "how long to wait for /v1/health before starting")
	stats := fs.Bool("stats", false, "print /v1/stats after the run")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if err := run(os.Stdout, *addr, *n, *seed, *parallel, *distinct, *checkCache, *noShed, *wait, *stats); err != nil {
		fmt.Fprintln(stderr, "sage-load:", err)
		return cli.ExitCode(err)
	}
	return cli.ExitOK
}

// request mirrors the serve.Request fields the generator uses; sage-load
// speaks the wire format only, as an external client would.
type request struct {
	App      string   `json:"app"`
	N        int      `json:"n"`
	Threads  int      `json:"threads"`
	Platform string   `json:"platform"`
	Nodes    int      `json:"nodes"`
	Mapping  string   `json:"mapping"`
	Seed     int64    `json:"seed"`
	Protocol protocol `json:"protocol"`
}

type protocol struct {
	Iterations int `json:"iterations"`
}

// mix builds the deterministic request set: `distinct` shapes drawn from a
// seeded generator over the benchmark apps, small sizes and both cheap
// mapping strategies. Same seed, same mix, byte for byte.
func mix(seed int64, distinct int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	apps := []string{"fft2d", "cornerturn"}
	sizes := []int{64, 128, 256}
	mappings := []string{"spread", "roundrobin"}
	out := make([][]byte, 0, distinct)
	for i := 0; i < distinct; i++ {
		r := request{
			App:      apps[rng.Intn(len(apps))],
			N:        sizes[rng.Intn(len(sizes))],
			Threads:  2 + 2*rng.Intn(2),
			Platform: "CSPI",
			Nodes:    4 + 4*rng.Intn(2),
			Mapping:  mappings[rng.Intn(len(mappings))],
			Seed:     seed,
			Protocol: protocol{Iterations: 1 + rng.Intn(4)},
		}
		b, err := json.Marshal(r)
		if err != nil {
			panic(err) // plain data cannot fail to marshal
		}
		out = append(out, b)
	}
	return out
}

func run(w io.Writer, addr string, n int, seed int64, parallel, distinct int, checkCache, noShed bool, wait time.Duration, stats bool) error {
	if addr == "" {
		return cli.Usagef("-addr is required")
	}
	if n <= 0 || parallel <= 0 || distinct <= 0 {
		return cli.Usagef("-n, -parallel and -distinct must be positive")
	}
	addr = strings.TrimRight(addr, "/")
	client := &http.Client{Timeout: 2 * time.Minute}

	if err := waitHealthy(client, addr, wait); err != nil {
		return err
	}

	reqs := mix(seed, distinct)
	var ok, shed, failed atomic.Uint64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for p := 0; p < parallel; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				status, _, err := post(client, addr, reqs[i%len(reqs)])
				switch {
				case err != nil:
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("request %d: %w", i, err))
				case status == http.StatusOK:
					ok.Add(1)
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("request %d: unexpected status %d", i, status))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Fprintf(w, "sage-load: %d requests in %v (%.0f req/s): %d ok, %d shed, %d failed\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), ok.Load(), shed.Load(), failed.Load())

	if checkCache {
		mismatches := 0
		for i, body := range reqs {
			s1, b1, err := post(client, addr, body)
			if err != nil {
				return fmt.Errorf("check-cache request %d: %w", i, err)
			}
			s2, b2, err := post(client, addr, body)
			if err != nil {
				return fmt.Errorf("check-cache request %d: %w", i, err)
			}
			if s1 != http.StatusOK || s2 != http.StatusOK {
				return fmt.Errorf("check-cache request %d: statuses %d/%d", i, s1, s2)
			}
			if !bytes.Equal(b1, b2) {
				mismatches++
				fmt.Fprintf(w, "sage-load: MISMATCH on request %d: cached response differs from fresh\n", i)
			}
		}
		if mismatches > 0 {
			return fmt.Errorf("%d cached responses differ from fresh ones", mismatches)
		}
		fmt.Fprintf(w, "sage-load: check-cache ok: %d distinct requests byte-identical on replay\n", len(reqs))
	}

	if stats {
		resp, err := client.Get(addr + "/v1/stats")
		if err != nil {
			return err
		}
		io.Copy(w, resp.Body)
		resp.Body.Close()
	}

	if f := firstErr.Load(); f != nil {
		return f.(error)
	}
	if noShed && shed.Load() > 0 {
		return fmt.Errorf("%d requests shed with 429 (-no-shed)", shed.Load())
	}
	return nil
}

// waitHealthy polls /v1/health until the daemon answers 200 or the budget
// runs out.
func waitHealthy(client *http.Client, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(addr + "/v1/health")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon not healthy after %v: %w", budget, err)
			}
			return fmt.Errorf("daemon not healthy after %v", budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// post sends one run request and returns (status, body, error).
func post(client *http.Client, addr string, body []byte) (int, []byte, error) {
	resp, err := client.Post(addr+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
