package stream

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// remapScenario is the committed fault-then-remap case: node 1 suffers
// recurring 2ms stalls; the remap controller should move work off it after
// the first window fills, while the static baseline keeps hitting every
// stall. The same scenario backs the golden replay and CI's remap check.
func remapScenario() *Scenario {
	return &Scenario{
		App: "fft2d", N: 32, Threads: 2, Nodes: 4, Seed: 11,
		Classes: []Class{
			{Name: "interactive", Process: "poisson", Rate: 700, Frames: 40, SLOMs: 5},
			{Name: "batch", Process: "gamma", Rate: 150, Shape: 4, Frames: 10, Weight: 2},
		},
		Faults: `seed 3
stall node=1 at=2ms for=2ms
stall node=1 at=7ms for=2ms
stall node=1 at=12ms for=2ms
stall node=1 at=17ms for=2ms
stall node=1 at=22ms for=2ms
stall node=1 at=27ms for=2ms
stall node=1 at=32ms for=2ms
stall node=1 at=37ms for=2ms
stall node=1 at=42ms for=2ms
stall node=1 at=47ms for=2ms
stall node=1 at=52ms for=2ms
stall node=1 at=57ms for=2ms
stall node=1 at=62ms for=2ms
stall node=1 at=67ms for=2ms
stall node=1 at=72ms for=2ms
`,
		Remap: &RemapSpec{MaxRemaps: 1},
	}
}

func runScenario(t *testing.T, sc *Scenario) *Report {
	t.Helper()
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(cfg.Classes, cfg.Seed, res)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	return rep
}

// TestRemapBeatsStatic is the subsystem's reason to exist: on the committed
// fault scenario the remapped run completes strictly more frames on time
// than the static mapping, and actually performed a migration.
func TestRemapBeatsStatic(t *testing.T) {
	sc := remapScenario()
	remap := runScenario(t, sc)
	static := runScenario(t, sc.Static())

	if len(remap.Remaps) == 0 {
		t.Fatal("remap run never remapped")
	}
	if remap.Remaps[0].Migrated == 0 {
		t.Error("remap event migrated no threads")
	}
	if remap.Remaps[0].Trigger != 1 {
		t.Errorf("remap triggered on node %d, want 1", remap.Remaps[0].Trigger)
	}
	if len(static.Remaps) != 0 {
		t.Fatal("static run remapped")
	}
	lateRemap := remap.Late + remap.Shed
	lateStatic := static.Late + static.Shed
	t.Logf("static: %d late + %d shed; remap: %d late + %d shed (stall %v)",
		static.Late, static.Shed, remap.Late, remap.Shed,
		time.Duration(remap.Remaps[0].StallNs))
	if lateRemap >= lateStatic {
		t.Errorf("remapping did not help: %d late/shed with remap, %d static", lateRemap, lateStatic)
	}
}

// TestStreamDeterministicBytes: the full fault+remap scenario produces
// byte-identical report JSON on repeated runs — the determinism contract the
// golden replay and the -parallel byte-diff in CI depend on.
func TestStreamDeterministicBytes(t *testing.T) {
	sc := remapScenario()
	var first []byte
	for i := 0; i < 2; i++ {
		rep := runScenario(t, sc)
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatal("repeated runs produced different report bytes")
		}
	}
}

// TestStreamNoGoroutineLeak: a full run (including the remap protocol and
// the controller) leaves no process goroutine behind; run under -race in CI.
func TestStreamNoGoroutineLeak(t *testing.T) {
	sc := remapScenario()
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// The kernel's Shutdown releases parked procs synchronously, but give the
	// scheduler a beat to reap them.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestStreamCancel: closing Cancel mid-run aborts with ErrCanceled and leaks
// nothing.
func TestStreamCancel(t *testing.T) {
	sc := remapScenario()
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan struct{})
	close(ch)
	cfg.Cancel = ch
	cfg.CancelEvery = 1
	if _, err := Run(cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestStreamShedding: a deadline tight against a saturating rate sheds
// frames, and the report stays internally consistent (Validate covers the
// accounting identities).
func TestStreamShedding(t *testing.T) {
	sc := &Scenario{
		App: "fft2d", N: 32, Threads: 2, Nodes: 4, Seed: 5,
		Classes: []Class{
			{Name: "firehose", Process: "poisson", Rate: 4000, Frames: 80, SLOMs: 3, ShedAfterMs: 1},
		},
	}
	rep := runScenario(t, sc)
	if rep.Shed == 0 {
		t.Error("saturating scenario shed nothing")
	}
	if rep.Completed == 0 {
		t.Error("nothing completed")
	}
	if rep.MaxBacklog == 0 {
		t.Error("no backlog recorded under saturation")
	}
}

// TestStreamTraceValidates: a traced fault+remap run passes the Chrome
// validator, carries stream-schema events (admit, qdepth gauges, remap
// protocol), and the summary mentions them.
func TestStreamTraceValidates(t *testing.T) {
	sc := remapScenario()
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	col := trace.New("stream remap")
	cfg.Collector = col
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTrace()
	tr.Add(col)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := trace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("stream trace rejected: %v", err)
	}
	if stats.Streams == 0 {
		t.Fatal("no stream-category events in trace")
	}
	kinds := map[string]bool{}
	for _, s := range col.Streams() {
		kinds[s.Kind] = true
	}
	for _, want := range []string{"admit", "qdepth", "quiesce", "migrate", "resume", "remap"} {
		if !kinds[want] {
			t.Errorf("trace missing stream kind %q (have %v)", want, kinds)
		}
	}
	var sum bytes.Buffer
	if err := tr.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "stream:") {
		t.Error("summary missing stream section")
	}
}

// TestScenarioErrors covers Build's rejection paths.
func TestScenarioErrors(t *testing.T) {
	cases := []*Scenario{
		{App: "nope", Classes: []Class{{Name: "a", Process: "poisson", Rate: 1, Frames: 1}}},
		{App: "fft2d", Mapping: "alphabetical", Classes: []Class{{Name: "a", Process: "poisson", Rate: 1, Frames: 1}}},
		{App: "fft2d"}, // no classes
		{App: "fft2d", Classes: []Class{{Name: "a", Process: "cauchy", Rate: 1, Frames: 1}}},
		{App: "fft2d", Faults: "stall node=99 at=1ms for=1ms", Classes: []Class{{Name: "a", Process: "poisson", Rate: 1, Frames: 1}}},
	}
	for i, sc := range cases {
		if _, err := sc.Build(); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
}

// TestRunConfigErrors covers Run's own validation.
func TestRunConfigErrors(t *testing.T) {
	sc := &Scenario{App: "fft2d", N: 32, Threads: 2, Nodes: 4,
		Classes: []Class{{Name: "a", Process: "poisson", Rate: 100, Frames: 1}}}
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Tables = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil tables accepted")
	}
	bad = cfg
	bad.Classes = nil
	if _, err := Run(bad); err == nil {
		t.Error("no classes accepted")
	}
	bad = cfg
	bad.Remap = &RemapConfig{}
	bad.App = nil
	if _, err := Run(bad); err == nil {
		t.Error("remap without app accepted")
	}
	bad = cfg
	bad.Platform.Name = "other"
	if _, err := Run(bad); err == nil {
		t.Error("platform mismatch accepted")
	}
}
