package stream

import (
	"bytes"
	"testing"
)

// TestSmokeBasic is the first-light test: a small mixed-class scenario with
// no faults runs to completion, every admitted frame completes, and the
// report validates.
func TestSmokeBasic(t *testing.T) {
	sc := &Scenario{
		App: "fft2d", N: 32, Threads: 2, Nodes: 4, Seed: 7,
		Classes: []Class{
			{Name: "interactive", Process: "poisson", Rate: 400, Frames: 30, SLOMs: 20},
			{Name: "batch", Process: "gamma", Rate: 100, Shape: 4, Frames: 10, Weight: 2},
		},
	}
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 40 {
		t.Fatalf("got %d frames, want 40", len(res.Frames))
	}
	for i, f := range res.Frames {
		if f.Shed {
			t.Errorf("frame %d shed without a shed deadline", i)
		}
		if f.Done == 0 {
			t.Errorf("frame %d never completed", i)
		}
		if f.Done < f.Admit || f.Admit < f.Arrival {
			t.Errorf("frame %d: times out of order arrival=%v admit=%v done=%v", i, f.Arrival, f.Admit, f.Done)
		}
	}
	rep := BuildReport(cfg.Classes, cfg.Seed, res)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	var buf bytes.Buffer
	rep.Format(&buf)
	t.Logf("\n%s", buf.String())
}
