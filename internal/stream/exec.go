package stream

import (
	"fmt"

	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The streaming runtime reuses sagert's tag packing so traces and debugging
// read the same: (buffer, srcThread, dstThread) -> data tag, with credit
// tags in the disjoint upper half of the user tag space.
const tagThreadLimit = 128

func dataTag(buf, srcThread, dstThread int) int {
	return ((buf*tagThreadLimit)+srcThread)*tagThreadLimit + dstThread
}

func creditTag(buf, srcThread, dstThread int) int {
	return mpi.TagUserLimit/2 + dataTag(buf, srcThread, dstThread)
}

// slotKind discriminates the slot stream. Every thread processes the same
// global slot sequence: the source appends a slot record BEFORE sending any
// message of that slot, and each message travels causally behind it, so a
// consumer that has received a slot's first message can always read its
// record.
type slotKind uint8

const (
	// slotData carries one frame: one data message per transfer edge, with
	// credits consumed and returned exactly as in the batch runtime.
	slotData slotKind = iota
	// slotShed announces a frame dropped at admission: a zero-byte control
	// message per edge so downstream slot counters stay aligned, no credits.
	slotShed
	// slotRemap is the epoch switch of the remap protocol: threads forward
	// it through the OLD topology, drain their outstanding credits, migrate
	// if reassigned, and flip their epoch pointer.
	slotRemap
	// slotEOS ends the stream; threads forward it and exit.
	slotEOS
)

// slotRec is one entry of the global slot log. arg is the schedule index for
// data/shed slots and the remap-event index for remap slots.
type slotRec struct {
	kind slotKind
	arg  int
}

// streamXfer is one planned transfer edge seen from one side. Unlike
// sagert's static plan the peer NODE is not baked in: it is resolved against
// the thread's current epoch at every use, which is what makes the
// consistent-cut migration work.
type streamXfer struct {
	buf        *gluegen.BufferEntry
	x          gluegen.Transfer
	peerFn     int // peer's function-table index
	peerThread int
}

type ckey struct{ buf, srcThread, dstThread int }

func (xr *streamXfer) key() ckey { return ckey{xr.buf.ID, xr.x.SrcThread, xr.x.DstThread} }

// portPlan is a port's per-thread plan.
type portPlan struct {
	entry  *gluegen.PortEntry
	region model.Region
	xfers  []streamXfer
}

// threadPlan is one function thread's static plan.
type threadPlan struct {
	fn       *gluegen.FuncEntry
	fnIdx    int
	thread   int
	impl     *funclib.Impl
	ins      []*portPlan
	outs     []*portPlan
	isSource bool
	isSink   bool
	// stateBytes is the thread's working-set size (all port regions): the
	// payload a migration moves.
	stateBytes int
}

type runner struct {
	cfg   *Config
	mach  *machine.Machine
	world *mpi.World

	plans    []*threadPlan
	assign0  [][]int // initial epoch: tables' per-function thread->node
	schedule []Frame

	// slots is the global slot log, appended only by the source (the sim
	// kernel is single-threaded, so no locking).
	slots []slotRec
	// remapAssigns[i] is the epoch installed by remap slot i.
	remapAssigns [][][]int
	remaps       []RemapEvent

	frames  []FrameStat
	doneCnt []int // per-frame sink-thread completions

	admitted   int
	framesDone int
	shed       int
	sourceDone bool

	// drainTarget/-Ch is the quiesce handshake: the source sets the target
	// and blocks; the sink fires the channel when completions reach it.
	drainTarget int
	drainCh     *sim.Chan[struct{}]

	// curAssign is the epoch as seen by the source (the controller reads it
	// when planning; the source is the authority because it installs epochs).
	curAssign [][]int
	// pendingAssign is the controller's requested remap, consumed by the
	// source at the next frame boundary.
	pendingAssign  [][]int
	pendingTrigger int

	sinkThreads int
	maxBacklog  int
	creditStall sim.Duration

	ctl *controller
	err error
}

// buildPlan expands the tables into per-thread plans and the initial epoch.
func (r *runner) buildPlan() {
	t := r.cfg.Tables
	r.drainTarget = -1
	for fi := range t.Functions {
		fe := &t.Functions[fi]
		r.assign0 = append(r.assign0, append([]int(nil), fe.Nodes...))
		impl, err := funclib.Lookup(fe.Kind)
		if err != nil {
			panic(err) // tables verified
		}
		for th := 0; th < fe.Threads; th++ {
			tp := &threadPlan{
				fn: fe, fnIdx: fi, thread: th, impl: impl,
				isSource: len(fe.Ins) == 0, isSink: len(fe.Outs) == 0,
			}
			for pi := range fe.Ins {
				tp.ins = append(tp.ins, r.portPlan(&fe.Ins[pi], fe, th, true))
			}
			for pi := range fe.Outs {
				tp.outs = append(tp.outs, r.portPlan(&fe.Outs[pi], fe, th, false))
			}
			for _, pp := range tp.ins {
				tp.stateBytes += pp.region.Elems() * pp.entry.ElemBytes
			}
			for _, pp := range tp.outs {
				tp.stateBytes += pp.region.Elems() * pp.entry.ElemBytes
			}
			if tp.isSink {
				r.sinkThreads++
			}
			r.plans = append(r.plans, tp)
		}
	}
	r.curAssign = r.assign0
}

func (r *runner) portPlan(pe *gluegen.PortEntry, fe *gluegen.FuncEntry, thread int, isInput bool) *portPlan {
	region, err := model.Partition(pe.Striping, pe.Rows, pe.Cols, fe.Threads, thread)
	if err != nil {
		panic(err) // tables verified
	}
	pp := &portPlan{entry: pe, region: region}
	for _, bufID := range pe.Buffers {
		buf := &r.cfg.Tables.Buffers[bufID]
		for _, x := range buf.Transfers {
			if isInput {
				if buf.DstFn != fe.ID || buf.DstPort != pe.Name || x.DstThread != thread {
					continue
				}
				pp.xfers = append(pp.xfers, streamXfer{buf: buf, x: x, peerFn: buf.SrcFn, peerThread: x.SrcThread})
			} else {
				if buf.SrcFn != fe.ID || buf.SrcPort != pe.Name || x.SrcThread != thread {
					continue
				}
				pp.xfers = append(pp.xfers, streamXfer{buf: buf, x: x, peerFn: buf.DstFn, peerThread: x.DstThread})
			}
		}
	}
	return pp
}

func (r *runner) spawn(k *sim.Kernel) {
	for _, tp := range r.plans {
		tp := tp
		k.Spawn(fmt.Sprintf("%s.%s[%d]", r.cfg.Tables.AppName, tp.fn.Name, tp.thread), func(p *sim.Proc) {
			st := r.newThreadState(tp, p)
			if tp.isSource {
				r.sourceMain(st)
			} else {
				r.consumerMain(st)
			}
		})
	}
}

func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
		r.mach.K.Stop()
	}
}

// scaleBytes applies a class weight to a byte count with deterministic
// rounding.
func scaleBytes(b int, w float64) int {
	if w == 1 {
		return b
	}
	return int(float64(b)*w + 0.5)
}

// threadState is one thread's mutable execution state: its current epoch,
// node attachment and credit ledger.
type threadState struct {
	tp    *threadPlan
	p     *sim.Proc
	rank  *mpi.Rank
	node  *machine.Node
	my    int     // current node id
	cur   [][]int // current epoch (fn -> thread -> node)
	track string  // trace track, "" when tracing is off

	credits map[ckey]int
	ins     map[string]*funclib.Block // charge-only blocks, reused per slot
	outs    map[string]*funclib.Block
	ctx     *funclib.Context
}

func (r *runner) newThreadState(tp *threadPlan, p *sim.Proc) *threadState {
	st := &threadState{tp: tp, p: p, cur: r.assign0}
	st.my = st.cur[tp.fnIdx][tp.thread]
	st.rank = r.world.Attach(st.my, p)
	st.node = r.mach.Node(st.my)
	if r.mach.Trace().Enabled() {
		st.track = trace.ProcTrack(p.Name(), p.PID())
	}
	st.credits = map[ckey]int{}
	for _, pp := range tp.outs {
		for i := range pp.xfers {
			st.credits[pp.xfers[i].key()] = r.cfg.BufferSlots
		}
	}
	st.ins = make(map[string]*funclib.Block, len(tp.ins))
	st.outs = make(map[string]*funclib.Block, len(tp.outs))
	for _, pp := range tp.ins {
		st.ins[pp.entry.Name] = &funclib.Block{Region: pp.region}
	}
	for _, pp := range tp.outs {
		st.outs[pp.entry.Name] = &funclib.Block{Region: pp.region}
	}
	st.ctx = &funclib.Context{
		FuncName: tp.fn.Name, Params: tp.fn.Params,
		Thread: tp.thread, Threads: tp.fn.Threads,
	}
	return st
}

// peerNode resolves a transfer's peer against the thread's current epoch.
func (st *threadState) peerNode(xr *streamXfer) int {
	return st.cur[xr.peerFn][xr.peerThread]
}

// --- source ------------------------------------------------------------------

// sourceMain drives the offered-frame schedule: sleep to each arrival, shed
// frames whose admission deadline passed while backpressure held the source,
// admit the rest (paying dispatch+compute and the credit-gated sends), and
// execute pending remaps at frame boundaries.
func (r *runner) sourceMain(st *threadState) {
	tr := r.mach.Trace()
	for si := 0; si < len(r.schedule); si++ {
		if r.err != nil {
			return
		}
		if r.pendingAssign != nil {
			r.doRemap(st)
			if r.err != nil {
				return
			}
		}
		f := r.schedule[si]
		cls := &r.cfg.Classes[f.Class]
		if st.p.Now() < f.Arrival {
			st.p.SleepUntil(f.Arrival)
		}
		fs := &r.frames[si]
		if shed := cls.ShedAfter(); shed > 0 && st.p.Now().Sub(f.Arrival) > shed {
			fs.Shed = true
			r.shed++
			if tr.Enabled() {
				tr.StreamPoint(st.my, fmt.Sprintf("shed %s %d", cls.Name, f.Index), st.p.Now())
			}
			r.emitMarker(st, slotRec{kind: slotShed, arg: si})
			continue
		}
		fs.Admit = st.p.Now()
		r.admitted++
		r.noteBacklog(st, si, tr)
		if tr.Enabled() {
			tr.StreamPoint(st.my, fmt.Sprintf("admit %s %d", cls.Name, f.Index), st.p.Now())
		}
		r.slots = append(r.slots, slotRec{kind: slotData, arg: si})
		r.computeSlot(st, si, cls.weight())
		r.sendSlot(st, si, cls.weight())
	}
	r.emitMarker(st, slotRec{kind: slotEOS, arg: -1})
	r.sourceDone = true
}

// noteBacklog samples the admission queue depth: frames whose scheduled
// arrival has passed but which the source has not reached yet.
func (r *runner) noteBacklog(st *threadState, si int, tr *trace.Collector) {
	now := st.p.Now()
	// Upper bound of arrivals <= now, by binary search over the sorted
	// schedule.
	lo, hi := si, len(r.schedule)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.schedule[mid].Arrival <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	backlog := lo - si - 1
	if backlog > r.maxBacklog {
		r.maxBacklog = backlog
	}
	if r.cfg.Backlog != nil {
		r.cfg.Backlog(backlog)
	}
	if tr.Enabled() {
		tr.StreamGauge(st.my, trace.StreamTrack, "backlog", backlog, now)
	}
}

// emitMarker appends a control slot and sends its zero-byte message on every
// outgoing edge of the thread (credits are not consumed: markers are control
// traffic, not buffered data).
func (r *runner) emitMarker(st *threadState, rec slotRec) {
	r.slots = append(r.slots, rec)
	r.forwardMarker(st)
}

func (r *runner) forwardMarker(st *threadState) {
	for _, pp := range st.tp.outs {
		for i := range pp.xfers {
			xr := &pp.xfers[i]
			st.rank.Send(st.peerNode(xr), dataTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread), mpi.Empty())
		}
	}
}

// --- shared slot work --------------------------------------------------------

// computeSlot charges one frame's dispatch and compute on the thread's node,
// scaled by the class weight. Blocks are charge-only (no samples move): the
// streaming protocol measures time, not numerics — the batch runtime's
// compute iterations already verify those.
func (r *runner) computeSlot(st *threadState, si int, w float64) {
	tr := r.mach.Trace()
	start := st.p.Now()
	st.node.ComputeTime(st.p, r.cfg.DispatchOverhead)
	st.ctx.Iteration = si
	cost := st.tp.impl.Cost(st.ctx, st.ins, st.outs)
	st.node.ComputeFlops(st.p, cost.Flops*w)
	st.node.Memcpy(st.p, scaleBytes(cost.CopyBytes, w))
	tr.Phase(trace.LayerSage, st.my, st.track, "compute", si, start, st.p.Now())
}

// sendSlot emits one frame's outgoing transfers with credit-gated flow
// control. A zero-credit edge blocks until the consumer returns one; that
// wait is the backpressure this subsystem measures.
func (r *runner) sendSlot(st *threadState, si int, w float64) {
	tr := r.mach.Trace()
	sendStart := st.p.Now()
	for _, pp := range st.tp.outs {
		for i := range pp.xfers {
			xr := &pp.xfers[i]
			key := xr.key()
			if st.credits[key] == 0 {
				start := st.p.Now()
				st.rank.Recv(st.peerNode(xr), creditTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread))
				if stall := st.p.Now().Sub(start); stall > 0 {
					r.creditStall += stall
					if tr.Enabled() {
						tr.StreamSpan(st.my, st.track, fmt.Sprintf("credit-stall b%d", xr.buf.ID), start, st.p.Now())
					}
				}
			} else {
				st.credits[key]--
			}
			bytes := scaleBytes(xr.x.Bytes, w)
			if !contiguousIn(xr.x.Region, pp.region) {
				st.node.Memcpy(st.p, bytes)
			}
			st.rank.Send(st.peerNode(xr), dataTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread), mpi.Payload{Bytes: bytes})
		}
	}
	if len(st.tp.outs) > 0 {
		tr.Phase(trace.LayerSage, st.my, st.track, "send", si, sendStart, st.p.Now())
	}
}

// contiguousIn reports whether region reg occupies a contiguous byte range
// of a logical buffer covering blockReg (same rule as the batch runtime:
// full-width regions move zero-copy).
func contiguousIn(reg, blockReg model.Region) bool {
	return reg.C0 == blockReg.C0 && reg.Cols == blockReg.Cols
}

// --- consumers ---------------------------------------------------------------

// consumerMain is every non-source thread's loop over the global slot
// sequence: receive one message per incoming edge, learn the slot kind from
// the log (safe after the first receive — the record precedes the message
// causally), then process data, forward markers, or run the remap protocol.
func (r *runner) consumerMain(st *threadState) {
	tr := r.mach.Trace()
	for slot := 0; r.err == nil; slot++ {
		rec, ok := r.recvSlot(st, slot)
		if !ok {
			return
		}
		switch rec.kind {
		case slotData:
			si := rec.arg
			w := r.cfg.Classes[r.schedule[si].Class].weight()
			r.computeSlot(st, si, w)
			if !st.tp.isSink {
				r.sendSlot(st, si, w)
			} else {
				r.noteSinkDone(st, si, tr)
			}
		case slotShed, slotEOS:
			r.forwardMarker(st)
			if rec.kind == slotEOS {
				return
			}
		case slotRemap:
			r.forwardMarker(st)
			r.remapStep(st, rec.arg)
		}
		if tr.Enabled() {
			tr.StreamGauge(st.my, st.track, fmt.Sprintf("qdepth %s#%d", st.tp.fn.Name, st.tp.thread),
				len(r.slots)-slot-1, st.p.Now())
		}
	}
}

// recvSlot receives one slot's message on every incoming edge. For data
// slots it pays the assembly copy for strided regions and returns a
// pipelining credit per edge; markers carry nothing and return nothing.
func (r *runner) recvSlot(st *threadState, slot int) (slotRec, bool) {
	tr := r.mach.Trace()
	var rec slotRec
	first := true
	var w float64
	recvStart := st.p.Now()
	for _, pp := range st.tp.ins {
		for i := range pp.xfers {
			xr := &pp.xfers[i]
			payload := st.rank.Recv(st.peerNode(xr), dataTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread))
			if first {
				first = false
				if slot >= len(r.slots) {
					r.fail(fmt.Errorf("stream: %s[%d] received slot %d before the source logged it (protocol bug)",
						st.tp.fn.Name, st.tp.thread, slot))
					return rec, false
				}
				rec = r.slots[slot]
				if rec.kind == slotData {
					w = r.cfg.Classes[r.schedule[rec.arg].Class].weight()
				}
			}
			if rec.kind != slotData {
				continue
			}
			bytes := scaleBytes(xr.x.Bytes, w)
			if payload.Bytes != bytes {
				r.fail(fmt.Errorf("stream: %s[%d] slot %d: payload %dB, want %dB (slot desync)",
					st.tp.fn.Name, st.tp.thread, slot, payload.Bytes, bytes))
				return rec, false
			}
			if !contiguousIn(xr.x.Region, pp.region) {
				st.node.Memcpy(st.p, bytes)
			}
			st.rank.Send(st.peerNode(xr), creditTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread), mpi.Empty())
		}
	}
	if rec.kind == slotData {
		tr.Phase(trace.LayerSage, st.my, st.track, "recv", rec.arg, recvStart, st.p.Now())
	}
	return rec, true
}

// noteSinkDone records a sink thread's completion of a frame; the last sink
// thread finalises the frame (latency, SLO verdict, drain handshake).
func (r *runner) noteSinkDone(st *threadState, si int, tr *trace.Collector) {
	fs := &r.frames[si]
	if st.p.Now() > fs.Done {
		fs.Done = st.p.Now()
	}
	r.doneCnt[si]++
	if r.doneCnt[si] < r.sinkThreads {
		return
	}
	r.framesDone++
	cls := &r.cfg.Classes[fs.Class]
	if slo := cls.SLO(); slo > 0 && fs.Done.Sub(fs.Arrival) > slo {
		fs.Late = true
		if tr.Enabled() {
			tr.StreamPoint(st.my, fmt.Sprintf("late %s %d", cls.Name, fs.Index), fs.Done)
		}
	}
	if tr.Enabled() {
		tr.StreamSpan(st.my, trace.StreamTrack, fmt.Sprintf("frame %s %d", cls.Name, fs.Index), fs.Arrival, fs.Done)
	}
	if r.drainTarget >= 0 && r.framesDone >= r.drainTarget {
		r.drainTarget = -1
		r.drainCh.Send(struct{}{})
	}
}
