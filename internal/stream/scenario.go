package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sim"
)

// Scenario is the authored form of a streaming run: an app/platform/mapping
// case plus the class mix, fault plan and remap policy. It is what
// sage-stream reads from disk, what the experiments harness commits as
// goldens, and what a report embeds so a replay needs nothing else.
type Scenario struct {
	// App selects a generated benchmark: fft2d | cornerturn | stap.
	App string `json:"app"`
	// N is the benchmark matrix edge (default 64 — streaming scenarios run
	// many frames, so the per-frame size stays modest).
	N int `json:"n,omitempty"`
	// Threads is the worker-thread count per parallel function (default 4).
	Threads int `json:"threads,omitempty"`
	// Platform is a registry platform name (default CSPI).
	Platform string `json:"platform,omitempty"`
	// Nodes is the processor count (default 8).
	Nodes int `json:"nodes,omitempty"`
	// Mapping is the initial strategy: spread | stagger | roundrobin
	// (default spread). The remap controller may change it mid-run.
	Mapping string `json:"mapping,omitempty"`
	// Seed drives the arrival processes.
	Seed int64 `json:"seed,omitempty"`
	// BufferSlots is the per-transfer pipelining credit (default 2).
	BufferSlots int `json:"buffer_slots,omitempty"`
	// Classes is the client mix.
	Classes []Class `json:"classes"`
	// Faults is an optional fault-plan text (the sage-faultcheck format).
	Faults string `json:"faults,omitempty"`
	// Remap, when non-nil, enables the remapping controller.
	Remap *RemapSpec `json:"remap,omitempty"`
}

// RemapSpec is the JSON form of RemapConfig (durations in milliseconds,
// zero fields take the controller defaults).
type RemapSpec struct {
	ControlIntervalMs float64 `json:"control_interval_ms,omitempty"`
	Window            int     `json:"window,omitempty"`
	StallFraction     float64 `json:"stall_fraction,omitempty"`
	MaxRemaps         int     `json:"max_remaps,omitempty"`
	SpeedPenalty      float64 `json:"speed_penalty,omitempty"`
	Population        int     `json:"population,omitempty"`
	Generations       int     `json:"generations,omitempty"`
	GASeed            int64   `json:"ga_seed,omitempty"`
	ReplanCostMs      float64 `json:"replan_cost_ms,omitempty"`
}

func (rs *RemapSpec) Config() *RemapConfig {
	return &RemapConfig{
		ControlInterval: sim.Duration(rs.ControlIntervalMs * float64(time.Millisecond)),
		Window:          rs.Window,
		StallFraction:   rs.StallFraction,
		MaxRemaps:       rs.MaxRemaps,
		SpeedPenalty:    rs.SpeedPenalty,
		Population:      rs.Population,
		Generations:     rs.Generations,
		GASeed:          rs.GASeed,
		ReplanCost:      sim.Duration(rs.ReplanCostMs * float64(time.Millisecond)),
	}
}

// ReadScenario parses a scenario from JSON.
func ReadScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("stream: scenario: %w", err)
	}
	return &s, nil
}

// withDefaults returns a defaulted copy (the original is left as authored so
// report-embedded scenarios stay byte-stable).
func (s *Scenario) withDefaults() Scenario {
	out := *s
	if out.N == 0 {
		out.N = 64
	}
	if out.Threads == 0 {
		out.Threads = 4
	}
	if out.Platform == "" {
		out.Platform = "CSPI"
	}
	if out.Nodes == 0 {
		out.Nodes = 8
	}
	if out.Mapping == "" {
		out.Mapping = "spread"
	}
	return out
}

// Build compiles the scenario into a runnable Config: model construction,
// initial mapping, glue-code generation, fault-plan parsing. The returned
// Config has no Collector or Cancel wired; callers add those.
func (s *Scenario) Build() (Config, error) {
	d := s.withDefaults()
	var cfg Config
	var app *model.App
	var err error
	switch d.App {
	case "fft2d":
		app, err = apps.FFT2D(d.N, d.Threads)
	case "cornerturn":
		app, err = apps.CornerTurn(d.N, d.Threads)
	case "stap":
		app, err = apps.STAP(d.N, d.Threads)
	default:
		return cfg, fmt.Errorf("stream: unknown app %q (want fft2d, cornerturn or stap)", d.App)
	}
	if err != nil {
		return cfg, fmt.Errorf("stream: %s: %w", d.App, err)
	}
	pl, err := platforms.ByName(d.Platform)
	if err != nil {
		return cfg, fmt.Errorf("stream: %w", err)
	}
	var mapping *model.Mapping
	switch d.Mapping {
	case "spread":
		mapping, err = model.SpreadParallel(app, d.Nodes)
	case "stagger":
		mapping, err = model.StaggerParallel(app, d.Nodes)
	case "roundrobin":
		mapping = model.RoundRobin(app, d.Nodes)
	default:
		return cfg, fmt.Errorf("stream: unknown mapping %q (want spread, stagger or roundrobin)", d.Mapping)
	}
	if err != nil {
		return cfg, fmt.Errorf("stream: mapping: %w", err)
	}
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: d.Nodes})
	if err != nil {
		return cfg, fmt.Errorf("stream: gluegen: %w", err)
	}
	if len(d.Classes) == 0 {
		return cfg, fmt.Errorf("stream: scenario has no classes")
	}
	for i := range d.Classes {
		if err := d.Classes[i].Validate(); err != nil {
			return cfg, err
		}
	}
	var plan *fault.Plan
	if d.Faults != "" {
		plan, err = fault.ParsePlan(d.Faults)
		if err != nil {
			return cfg, fmt.Errorf("stream: faults: %w", err)
		}
		if err := plan.Validate(); err != nil {
			return cfg, fmt.Errorf("stream: faults: %w", err)
		}
		if err := plan.CheckNodes(d.Nodes); err != nil {
			return cfg, fmt.Errorf("stream: faults: %w", err)
		}
	}
	cfg = Config{
		Tables:      out.Tables,
		App:         app,
		Platform:    pl,
		Classes:     d.Classes,
		Seed:        d.Seed,
		BufferSlots: d.BufferSlots,
		Faults:      plan,
	}
	if d.Remap != nil {
		cfg.Remap = d.Remap.Config()
	}
	return cfg, nil
}

// Static returns a copy of the scenario with remapping disabled — the
// baseline cell of the remap-vs-static comparison.
func (s *Scenario) Static() *Scenario {
	out := *s
	out.Remap = nil
	return &out
}
