// Package stream is the streaming-workload subsystem: seeded arrival
// processes feed frames into a continuously-running SAGE graph on the
// simulation kernel, replacing the paper's fixed-iteration batch protocol
// with a serving-era scenario — multi-client mixes with per-class rates,
// frame sizes and latency objectives, admission control with load shedding,
// first-class backpressure metrics (per-stage queue depth, credit
// starvation) sampled into the trace schema, and mid-run remapping: a
// controller that watches injected faults degrade a node, re-plans the
// mapping with the twin-fitness AToT search, and migrates threads through a
// quiesce-drain-remap-resume protocol without losing a frame.
//
// Everything is seeded and runs in virtual time, so a scenario's report is
// byte-identical on every host at any experiment parallelism — the same
// determinism contract every prior subsystem keeps.
package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Class describes one client class of the arrival mix: a seeded stochastic
// arrival process, a frame budget, a relative frame size, and its service
// objectives. Durations are authored in milliseconds (floats) because
// scenario files are written by hand; they convert exactly to virtual
// nanoseconds.
type Class struct {
	// Name labels the class in reports and traces.
	Name string `json:"name"`
	// Process selects the interarrival distribution: poisson (exponential
	// interarrivals), gamma or weibull.
	Process string `json:"process"`
	// Rate is the mean arrival rate in frames per second of virtual time.
	Rate float64 `json:"rate"`
	// Shape is the gamma/weibull shape parameter (ignored for poisson;
	// default 2). Shape 1 degenerates to the exponential for both families;
	// larger shapes make arrivals more regular (gamma CV = 1/sqrt(shape)).
	Shape float64 `json:"shape,omitempty"`
	// Frames is how many frames this class offers before its stream ends.
	Frames int `json:"frames"`
	// Weight scales the class's frame size: compute flops, buffer copies and
	// transfer bytes are all multiplied by it (default 1). This is how a mix
	// models small interactive frames next to large batch frames over one
	// graph shape.
	Weight float64 `json:"weight,omitempty"`
	// SLOMs is the per-frame latency objective in milliseconds, measured
	// from scheduled arrival to sink completion (queueing included). Frames
	// over it count as late. Zero disables the objective.
	SLOMs float64 `json:"slo_ms,omitempty"`
	// ShedAfterMs is the admission deadline in milliseconds: a frame still
	// waiting for admission this long after its arrival is shed (dropped at
	// the source) instead of entering the pipeline. Zero never sheds.
	ShedAfterMs float64 `json:"shed_after_ms,omitempty"`
}

// SLO returns the latency objective as a duration (0 = none).
func (c *Class) SLO() sim.Duration { return sim.Duration(c.SLOMs * 1e6) }

// ShedAfter returns the admission deadline as a duration (0 = never).
func (c *Class) ShedAfter() sim.Duration { return sim.Duration(c.ShedAfterMs * 1e6) }

// weight returns the frame-size multiplier with its default applied.
func (c *Class) weight() float64 {
	if c.Weight == 0 {
		return 1
	}
	return c.Weight
}

// shape returns the shape parameter with its default applied.
func (c *Class) shape() float64 {
	if c.Shape == 0 {
		return 2
	}
	return c.Shape
}

// Validate checks one class's parameters.
func (c *Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("stream: class needs a name")
	}
	switch c.Process {
	case "poisson", "gamma", "weibull":
	default:
		return fmt.Errorf("stream: class %q: unknown process %q (want poisson, gamma or weibull)", c.Name, c.Process)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("stream: class %q: rate must be positive", c.Name)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("stream: class %q: frames must be positive", c.Name)
	}
	if c.Shape < 0 {
		return fmt.Errorf("stream: class %q: shape must be positive", c.Name)
	}
	if c.Weight < 0 || c.Weight > 64 {
		return fmt.Errorf("stream: class %q: weight must be in (0, 64]", c.Name)
	}
	if c.SLOMs < 0 || c.ShedAfterMs < 0 {
		return fmt.Errorf("stream: class %q: slo_ms and shed_after_ms must be non-negative", c.Name)
	}
	return nil
}

// --- seeded rng --------------------------------------------------------------

// rng is a splitmix64 generator: the same keyed-hash family the fault
// injector uses for its verdicts, so arrival streams are stable across Go
// versions (math/rand makes no cross-version guarantees).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in the open interval (0, 1): both endpoints
// are excluded so -log(u) and inverse-CDF transforms never see 0 or 1.
func (r *rng) float() float64 {
	for {
		u := float64(r.next()>>11) / (1 << 53)
		if u > 0 && u < 1 {
			return u
		}
	}
}

// norm returns a standard normal draw (Box-Muller; the spare is discarded to
// keep the generator stateless beyond its seed word).
func (r *rng) norm() float64 {
	u1, u2 := r.float(), r.float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gammaDraw samples Gamma(shape, scale=1) via Marsaglia-Tsang, with the
// standard boost for shape < 1.
func (r *rng) gammaDraw(shape float64) float64 {
	if shape < 1 {
		// G(k) = G(k+1) * U^(1/k)
		return r.gammaDraw(shape+1) * math.Pow(r.float(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.float()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// interarrival draws one interarrival gap for the class, in virtual
// nanoseconds. All three processes are parameterised to the class's mean
// rate: E[gap] = 1/Rate seconds regardless of process or shape.
func (c *Class) interarrival(r *rng) sim.Duration {
	meanSec := 1 / c.Rate
	var gapSec float64
	switch c.Process {
	case "poisson":
		gapSec = -math.Log(r.float()) * meanSec
	case "gamma":
		k := c.shape()
		// Gamma(k, theta) has mean k*theta; theta = mean/k keeps the rate.
		gapSec = r.gammaDraw(k) * meanSec / k
	case "weibull":
		k := c.shape()
		// Weibull(k, lambda) has mean lambda*Gamma(1+1/k).
		lambda := meanSec / math.Gamma(1+1/k)
		gapSec = lambda * math.Pow(-math.Log(r.float()), 1/k)
	default:
		panic("stream: unvalidated process " + c.Process)
	}
	return sim.Duration(gapSec * 1e9)
}

// Frame is one offered frame of the merged schedule.
type Frame struct {
	// Class indexes Config.Classes.
	Class int
	// Index is the frame's per-class sequence number.
	Index int
	// Arrival is the frame's scheduled arrival in virtual time.
	Arrival sim.Time
}

// classSeed derives the per-class rng seed: the scenario seed XOR a
// splitmix-scrambled class index, so classes draw independent streams and
// reordering one class's parameters never perturbs another's arrivals.
func classSeed(seed int64, class int) uint64 {
	h := newRNG(uint64(class) * 0x9e3779b97f4a7c15)
	return uint64(seed) ^ h.next()
}

// BuildSchedule expands the class mix into the merged offered-frame
// schedule, sorted by arrival time (ties broken by class then index, so the
// order is total and deterministic).
func BuildSchedule(classes []Class, seed int64) ([]Frame, error) {
	var frames []Frame
	for ci := range classes {
		c := &classes[ci]
		if err := c.Validate(); err != nil {
			return nil, err
		}
		r := newRNG(classSeed(seed, ci))
		var t sim.Time
		for i := 0; i < c.Frames; i++ {
			t = t.Add(c.interarrival(r))
			frames = append(frames, Frame{Class: ci, Index: i, Arrival: t})
		}
	}
	sort.SliceStable(frames, func(i, j int) bool {
		if frames[i].Arrival != frames[j].Arrival {
			return frames[i].Arrival < frames[j].Arrival
		}
		if frames[i].Class != frames[j].Class {
			return frames[i].Class < frames[j].Class
		}
		return frames[i].Index < frames[j].Index
	})
	return frames, nil
}
