package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ReportSchema versions the report JSON; bump on incompatible change.
const ReportSchema = "sage-stream/1"

// Report is the SLO-centric summary of a streaming run: per-class latency
// percentiles, throughput and goodput, the Jain fairness index across
// classes, backpressure high-water marks, and the remapping events. Every
// field is derived from virtual time, so report bytes are identical for a
// given scenario on every host at any experiment parallelism.
type Report struct {
	Schema  string `json:"schema"`
	Seed    int64  `json:"seed"`
	Offered int    `json:"offered"`
	// Admitted + Shed = Offered; Completed <= Admitted; Late <= Completed.
	Admitted  int `json:"admitted"`
	Shed      int `json:"shed"`
	Completed int `json:"completed"`
	Late      int `json:"late"`
	// Jain is the fairness index over per-class goodput (1 = perfectly
	// fair, 1/k = one class takes all).
	Jain    float64       `json:"jain"`
	Classes []ClassReport `json:"classes"`
	// ThroughputFPS is completed frames per second of virtual time, over the
	// window ending at the last completion (the controller's final idle tick
	// extends Elapsed, so Elapsed is not the throughput denominator).
	ThroughputFPS float64 `json:"throughput_fps"`
	// MaxBacklog is the admission queue's high-water mark; CreditStallNs the
	// total time threads spent blocked on pipelining credits.
	MaxBacklog    int           `json:"max_backlog"`
	CreditStallNs int64         `json:"credit_stall_ns"`
	Remaps        []RemapReport `json:"remaps,omitempty"`
	ElapsedNs     int64         `json:"elapsed_ns"`
	LastDoneNs    int64         `json:"last_done_ns"`
}

// ClassReport is one client class's service summary.
type ClassReport struct {
	Name      string `json:"name"`
	Offered   int    `json:"offered"`
	Admitted  int    `json:"admitted"`
	Shed      int    `json:"shed"`
	Completed int    `json:"completed"`
	Late      int    `json:"late"`
	// Latency percentiles over completed frames (arrival to sink, queueing
	// included), streaming P² estimates fed in completion order.
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
	// MeanNs / MaxNs over the same population.
	MeanNs int64 `json:"mean_ns"`
	MaxNs  int64 `json:"max_ns"`
	// ThroughputFPS is the class's completed frames per second (global
	// window); Goodput its on-time completions as a fraction of offered
	// frames — the number the Jain index is computed over.
	ThroughputFPS float64 `json:"throughput_fps"`
	Goodput       float64 `json:"goodput"`
}

// RemapReport is one remap event in report form.
type RemapReport struct {
	AtNs     int64   `json:"at_ns"`
	StallNs  int64   `json:"stall_ns"`
	Trigger  int     `json:"trigger"`
	Migrated int     `json:"migrated"`
	Assign   [][]int `json:"assign"`
}

// BuildReport aggregates a run's frame stats into the report.
func BuildReport(classes []Class, seed int64, res *Result) *Report {
	rep := &Report{
		Schema: ReportSchema, Seed: seed,
		Offered:       len(res.Frames),
		MaxBacklog:    res.MaxBacklog,
		CreditStallNs: int64(res.CreditStall),
		ElapsedNs:     int64(res.Elapsed),
		LastDoneNs:    int64(res.LastDone),
	}
	type acc struct {
		cr            ClassReport
		p50, p95, p99 *stats.Quantile
		mean          stats.Welford
		max           sim.Duration
		onTime        int
	}
	accs := make([]*acc, len(classes))
	for i, c := range classes {
		accs[i] = &acc{cr: ClassReport{Name: c.Name},
			p50: stats.NewQuantile(0.50), p95: stats.NewQuantile(0.95), p99: stats.NewQuantile(0.99)}
	}
	for i := range res.Frames {
		f := &res.Frames[i]
		a := accs[f.Class]
		a.cr.Offered++
		if f.Shed {
			a.cr.Shed++
			rep.Shed++
			continue
		}
		a.cr.Admitted++
		rep.Admitted++
		if f.Done == 0 {
			continue // canceled runs can leave admitted frames unfinished
		}
		a.cr.Completed++
		rep.Completed++
		lat := float64(f.Latency())
		a.p50.Add(lat)
		a.p95.Add(lat)
		a.p99.Add(lat)
		a.mean.Add(lat)
		if f.Latency() > a.max {
			a.max = f.Latency()
		}
		if f.Late {
			a.cr.Late++
			rep.Late++
		} else {
			a.onTime++
		}
	}
	seconds := float64(res.LastDone) / 1e9
	goodputs := make([]float64, len(classes))
	for i, a := range accs {
		a.cr.P50Ns = int64(a.p50.Value())
		a.cr.P95Ns = int64(a.p95.Value())
		a.cr.P99Ns = int64(a.p99.Value())
		a.cr.MeanNs = int64(a.mean.Mean())
		a.cr.MaxNs = int64(a.max)
		if seconds > 0 {
			a.cr.ThroughputFPS = float64(a.cr.Completed) / seconds
		}
		if a.cr.Offered > 0 {
			a.cr.Goodput = float64(a.onTime) / float64(a.cr.Offered)
		}
		goodputs[i] = a.cr.Goodput
		rep.Classes = append(rep.Classes, a.cr)
	}
	rep.Jain = stats.Jain(goodputs)
	if seconds > 0 {
		rep.ThroughputFPS = float64(rep.Completed) / seconds
	}
	for _, ev := range res.Remaps {
		rep.Remaps = append(rep.Remaps, RemapReport{
			AtNs: int64(ev.At), StallNs: int64(ev.Stall),
			Trigger: ev.Trigger, Migrated: ev.Migrated, Assign: ev.Assign,
		})
	}
	return rep
}

// Validate checks a report's internal consistency — the schema gate CI runs
// on sage-stream output.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("stream: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Admitted+r.Shed != r.Offered {
		return fmt.Errorf("stream: admitted %d + shed %d != offered %d", r.Admitted, r.Shed, r.Offered)
	}
	if r.Completed > r.Admitted {
		return fmt.Errorf("stream: completed %d > admitted %d", r.Completed, r.Admitted)
	}
	if r.Late > r.Completed {
		return fmt.Errorf("stream: late %d > completed %d", r.Late, r.Completed)
	}
	if r.Jain < 0 || r.Jain > 1+1e-9 {
		return fmt.Errorf("stream: Jain index %v outside [0,1]", r.Jain)
	}
	var offered, admitted, shed, completed, late int
	for i := range r.Classes {
		c := &r.Classes[i]
		if c.Admitted+c.Shed != c.Offered {
			return fmt.Errorf("stream: class %q: admitted %d + shed %d != offered %d", c.Name, c.Admitted, c.Shed, c.Offered)
		}
		if c.P50Ns > c.P95Ns || c.P95Ns > c.P99Ns {
			return fmt.Errorf("stream: class %q: percentiles not ordered (p50 %d, p95 %d, p99 %d)", c.Name, c.P50Ns, c.P95Ns, c.P99Ns)
		}
		if c.P99Ns > c.MaxNs {
			return fmt.Errorf("stream: class %q: p99 %d exceeds max %d", c.Name, c.P99Ns, c.MaxNs)
		}
		if c.Goodput < 0 || c.Goodput > 1 {
			return fmt.Errorf("stream: class %q: goodput %v outside [0,1]", c.Name, c.Goodput)
		}
		offered += c.Offered
		admitted += c.Admitted
		shed += c.Shed
		completed += c.Completed
		late += c.Late
	}
	if offered != r.Offered || admitted != r.Admitted || shed != r.Shed || completed != r.Completed || late != r.Late {
		return fmt.Errorf("stream: class totals disagree with run totals")
	}
	for i := range r.Remaps {
		if r.Remaps[i].StallNs < 0 {
			return fmt.Errorf("stream: remap %d has negative stall", i)
		}
	}
	return nil
}

// WriteJSON emits the report as indented JSON (stable field order —
// byte-identical for a given run).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the report as a human-readable table.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "streaming run: %d offered, %d admitted, %d shed, %d completed, %d late\n",
		r.Offered, r.Admitted, r.Shed, r.Completed, r.Late)
	fmt.Fprintf(w, "throughput %.1f frames/s over %v; Jain fairness %.4f\n",
		r.ThroughputFPS, time.Duration(r.LastDoneNs), r.Jain)
	fmt.Fprintf(w, "backpressure: max backlog %d frames, credit stall %v\n",
		r.MaxBacklog, time.Duration(r.CreditStallNs))
	fmt.Fprintf(w, "%-14s %7s %7s %6s %6s %12s %12s %12s %9s %8s\n",
		"class", "offered", "compl", "shed", "late", "p50", "p95", "p99", "fps", "goodput")
	for i := range r.Classes {
		c := &r.Classes[i]
		fmt.Fprintf(w, "%-14s %7d %7d %6d %6d %12v %12v %12v %9.1f %7.1f%%\n",
			c.Name, c.Offered, c.Completed, c.Shed, c.Late,
			time.Duration(c.P50Ns), time.Duration(c.P95Ns), time.Duration(c.P99Ns),
			c.ThroughputFPS, 100*c.Goodput)
	}
	for i := range r.Remaps {
		ev := &r.Remaps[i]
		fmt.Fprintf(w, "remap %d: node %d degraded at %v; %d threads migrated, admission stalled %v\n",
			i, ev.Trigger, time.Duration(ev.AtNs), ev.Migrated, time.Duration(ev.StallNs))
	}
}
