package stream

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/atot"
	"repro/internal/fault"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/twin"
)

// Config describes one streaming run: the generated runtime tables, the
// client-class mix that drives the source, and the optional fault plan and
// remapping controller.
//
// Streaming runs always execute on the sequential kernel: the admission
// source, the shedding policy and the remap controller all observe global
// state (backlog across every node, cross-node stall windows), so there is
// no sound lookahead to shard against. Callers that set a shard count
// upstream (serve's Request.Shards, sagert.Options.Shards) get it silently
// ignored here — the results are identical either way, sharding is only a
// wall-clock knob.
type Config struct {
	// Tables are the glue generator's runtime tables; the initial mapping is
	// the tables' own thread->node assignment.
	Tables *gluegen.Tables
	// App is the model the tables were generated from. Required when Remap
	// is set (the controller re-runs the AToT search over it); ignored
	// otherwise.
	App *model.App
	// Platform is the machine the tables were generated for.
	Platform machine.Platform
	// Classes is the client mix; at least one class.
	Classes []Class
	// Seed drives every arrival process (per-class sub-streams are derived
	// from it).
	Seed int64
	// BufferSlots is the per-transfer pipelining credit (default 2).
	BufferSlots int
	// DispatchOverhead is the per-invocation function-table dispatch cost
	// (default sagert.DefaultDispatchOverhead).
	DispatchOverhead sim.Duration
	// NodeSpeeds are per-node CPU speed multipliers (heterogeneous machines).
	NodeSpeeds []float64
	// Faults, when non-nil and non-empty, installs the deterministic fault
	// injector. The MPI layer's resilient send (bounded retry, forced
	// delivery after the budget) guarantees every message still arrives, so
	// the streaming protocol needs no receive timeouts even under drop plans.
	Faults *fault.Plan
	// Remap, when non-nil, starts the remapping controller: it watches the
	// injector's stall windows, re-plans the mapping with the twin-fitness
	// AToT search when a node degrades, and migrates threads mid-run.
	Remap *RemapConfig
	// Collector, when non-nil, receives the structured trace: sagert-style
	// per-thread phases plus the stream schema (admit/shed/late instants,
	// backlog and qdepth gauges, credit-stall spans, and the
	// quiesce/drain/migrate/resume remap protocol).
	Collector *trace.Collector
	// Backlog, when non-nil, is called from the source with each sampled
	// admission-queue depth — a host-side live gauge (the serve daemon's
	// per-worker queue depth). It observes the run and must not influence
	// it; virtual-time results are identical with or without it.
	Backlog func(frames int)
	// Cancel aborts the run when closed (sim.Kernel.SetCancel); Run returns
	// ErrCanceled.
	Cancel <-chan struct{}
	// CancelEvery is the dispatched-event interval between cancellation
	// polls (default sim.DefaultCancelEvery).
	CancelEvery int
}

// RemapConfig tunes the mid-run remapping controller. Zero fields select
// defaults.
type RemapConfig struct {
	// ControlInterval is the controller's sampling period (default 500µs of
	// virtual time).
	ControlInterval sim.Duration
	// Window is the per-node sliding sample window (default 8).
	Window int
	// StallFraction triggers a remap when at least this fraction of a full
	// window observed the node inside a stall (default 0.5).
	StallFraction float64
	// MaxRemaps bounds how many remaps the controller may trigger
	// (default 1).
	MaxRemaps int
	// SpeedPenalty is the speed multiplier the re-planner assumes for a
	// degraded node (default 0.25): the search is pushed off the node
	// without forbidding it outright.
	SpeedPenalty float64
	// Population and Generations size the GA re-plan (defaults 32 and 40 —
	// the controller runs mid-stream, so the budget is the interactive one
	// sage-serve uses, not the offline AToT default).
	Population, Generations int
	// GASeed seeds the re-plan search (default 1).
	GASeed int64
	// ReplanCost is the virtual time the controller charges for running the
	// search (default 200µs) — planning is not free on a real machine.
	ReplanCost sim.Duration
}

func (rc *RemapConfig) withDefaults() RemapConfig {
	out := *rc
	if out.ControlInterval <= 0 {
		out.ControlInterval = 500 * time.Microsecond
	}
	if out.Window <= 0 {
		out.Window = 8
	}
	if out.StallFraction <= 0 {
		out.StallFraction = 0.5
	}
	if out.MaxRemaps <= 0 {
		out.MaxRemaps = 1
	}
	if out.SpeedPenalty <= 0 {
		out.SpeedPenalty = 0.25
	}
	if out.Population <= 0 {
		out.Population = 32
	}
	if out.Generations <= 0 {
		out.Generations = 40
	}
	if out.GASeed == 0 {
		out.GASeed = 1
	}
	if out.ReplanCost <= 0 {
		out.ReplanCost = 200 * time.Microsecond
	}
	return out
}

// ErrCanceled is returned (wrapped) by Run when Config.Cancel aborted the
// run. Test with errors.Is.
var ErrCanceled = errors.New("stream: run canceled")

// FrameStat is one offered frame's fate, in schedule order.
type FrameStat struct {
	// Class indexes Config.Classes; Index is the per-class sequence number.
	Class, Index int
	// Arrival is the scheduled arrival, Admit when the source actually began
	// processing the frame, Done when the last sink thread completed it.
	Arrival, Admit, Done sim.Time
	// Shed marks a frame dropped at admission (its deadline passed while the
	// pipeline's backpressure held the source). Admit and Done stay zero.
	Shed bool
	// Late marks a completed frame whose latency (Done - Arrival) exceeded
	// its class SLO.
	Late bool
}

// Latency is the frame's arrival-to-completion time (0 for shed frames).
func (f *FrameStat) Latency() sim.Duration {
	if f.Shed || f.Done == 0 {
		return 0
	}
	return f.Done.Sub(f.Arrival)
}

// RemapEvent records one execution of the quiesce-drain-remap-resume
// protocol.
type RemapEvent struct {
	// At is the moment the source began quiescing; Stall is the admission
	// gap until it resumed (quiesce + drain + migration).
	At    sim.Time
	Stall sim.Duration
	// Trigger is the degraded node that tripped the controller.
	Trigger int
	// Migrated counts the threads whose node changed.
	Migrated int
	// Assign is the new per-function thread->node assignment, in
	// function-table order.
	Assign [][]int
}

// Result reports a streaming run.
type Result struct {
	// Frames holds every offered frame's fate, in schedule order.
	Frames []FrameStat
	// Remaps records the controller's remapping events, in order.
	Remaps []RemapEvent
	// Elapsed is the run's total virtual time (the controller's final tick
	// may extend it slightly past the last frame).
	Elapsed sim.Time
	// LastDone is the completion time of the last frame — the throughput
	// denominator.
	LastDone sim.Time
	// MaxBacklog is the largest number of frames that had arrived but were
	// not yet admitted — the admission queue's high-water mark under
	// backpressure.
	MaxBacklog int
	// CreditStall is the total virtual time threads spent blocked waiting
	// for pipelining credits (the backpressure integral).
	CreditStall sim.Duration
	// Dispatches is the kernel event count.
	Dispatches uint64
	// NodeStats reports per-node busy time (same shape as the batch
	// runtime's result, so callers can summarise either uniformly).
	NodeStats []NodeStat
}

// NodeStat summarises one node's activity over the run.
type NodeStat struct {
	Node        int
	ComputeBusy sim.Duration
	CopyBusy    sim.Duration
	CommBusy    sim.Duration
	Utilization float64
}

// Run executes the streaming scenario on a fresh simulated machine. Like
// every runner in this repository it is fully deterministic: the same Config
// yields the identical Result on every host.
func Run(cfg Config) (*Result, error) {
	if cfg.Tables == nil {
		return nil, fmt.Errorf("stream: nil tables")
	}
	if err := cfg.Tables.Verify(); err != nil {
		return nil, fmt.Errorf("stream: refusing to run unverified tables: %w", err)
	}
	if cfg.Platform.Name != cfg.Tables.Platform {
		return nil, fmt.Errorf("stream: tables were generated for platform %q, running on %q", cfg.Tables.Platform, cfg.Platform.Name)
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("stream: no classes")
	}
	sources := 0
	for fi := range cfg.Tables.Functions {
		fe := &cfg.Tables.Functions[fi]
		if len(fe.Ins) == 0 {
			sources++
			if fe.Threads != 1 {
				return nil, fmt.Errorf("stream: source function %q has %d threads; the streaming protocol needs a single admission point", fe.Name, fe.Threads)
			}
			if len(fe.Outs) == 0 {
				return nil, fmt.Errorf("stream: function %q is both source and sink; nothing to stream", fe.Name)
			}
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("stream: app has %d source functions, want exactly 1", sources)
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("stream: invalid fault plan: %w", err)
		}
		if err := cfg.Faults.CheckNodes(cfg.Tables.NumNodes); err != nil {
			return nil, fmt.Errorf("stream: fault plan does not fit the machine: %w", err)
		}
	}
	if cfg.BufferSlots < 1 {
		cfg.BufferSlots = 2
	}
	if cfg.DispatchOverhead <= 0 {
		cfg.DispatchOverhead = sagert.DefaultDispatchOverhead
	}

	schedule, err := BuildSchedule(cfg.Classes, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var ctl *controller
	if cfg.Remap != nil {
		if cfg.App == nil {
			return nil, fmt.Errorf("stream: remapping needs Config.App (the controller re-plans over the model)")
		}
		rc := cfg.Remap.withDefaults()
		aev, err := atot.NewEvaluator(cfg.App, cfg.Platform, cfg.Tables.NumNodes)
		if err != nil {
			return nil, fmt.Errorf("stream: remap evaluator: %w", err)
		}
		tev, err := twin.NewEvaluator(cfg.Tables, cfg.Platform)
		if err != nil {
			return nil, fmt.Errorf("stream: remap twin: %w", err)
		}
		ctl = &controller{cfg: rc, aev: aev, tev: tev}
	}

	k := sim.NewKernel()
	defer k.Shutdown()
	mach := machine.New(k, cfg.Platform, cfg.Tables.NumNodes)
	mach.SetNodeSpeeds(cfg.NodeSpeeds)
	mach.SetTrace(cfg.Collector)
	mach.SetFaults(cfg.Faults.NewInjector())
	world := mpi.NewWorld(mach)

	r := &runner{
		cfg:      &cfg,
		mach:     mach,
		world:    world,
		schedule: schedule,
		frames:   make([]FrameStat, len(schedule)),
		doneCnt:  make([]int, len(schedule)),
		drainCh:  sim.NewChan[struct{}](k, "stream.drain"),
		ctl:      ctl,
	}
	for si, f := range schedule {
		r.frames[si] = FrameStat{Class: f.Class, Index: f.Index, Arrival: f.Arrival}
	}
	r.buildPlan()
	r.spawn(k)
	if ctl != nil {
		ctl.r = r
		k.Spawn("stream.controller", ctl.main)
	}
	if cfg.Cancel != nil {
		k.SetCancel(cfg.Cancel, cfg.CancelEvery)
	}
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("stream: execution failed: %w", err)
	}
	if k.Canceled() {
		return nil, fmt.Errorf("%w at virtual time %v", ErrCanceled, k.Now())
	}
	if r.err != nil {
		return nil, r.err
	}
	mach.TraceNodeTotals()

	res := &Result{
		Frames:      r.frames,
		Remaps:      r.remaps,
		Elapsed:     k.Now(),
		MaxBacklog:  r.maxBacklog,
		CreditStall: r.creditStall,
		Dispatches:  k.Dispatched(),
	}
	for i := range r.frames {
		if r.frames[i].Done > res.LastDone {
			res.LastDone = r.frames[i].Done
		}
	}
	for _, nd := range mach.Nodes() {
		res.NodeStats = append(res.NodeStats, NodeStat{
			Node: nd.ID, ComputeBusy: nd.ComputeBusy, CopyBusy: nd.CopyBusy,
			CommBusy: nd.CommBusy, Utilization: nd.Utilization(k.Now()),
		})
	}
	return res, nil
}
