package stream

import (
	"fmt"

	"repro/internal/atot"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/twin"
)

// This file is the mid-run remapping machinery: the controller process that
// watches the fault injector degrade nodes and plans a new mapping, and the
// quiesce-drain-remap-resume protocol the threads execute to install it.
//
// The protocol keeps the cut consistent without global synchronisation
// primitives:
//
//  1. quiesce — the source stops admitting frames.
//  2. drain — the source waits until every admitted frame has completed at
//     the sink (the drain handshake), so no data message is in flight
//     anywhere.
//  3. remap — the source emits a remap marker slot through the OLD topology.
//     Each thread, on processing the marker, forwards it to its consumers
//     (still old topology), then receives back its outstanding pipelining
//     credits (they were sent to its old node; per-link FIFO guarantees
//     they arrive before any post-marker traffic matters), migrates its
//     working set to its new node if reassigned, and flips its epoch
//     pointer.
//  4. resume — the source migrates itself last, flips, and admits again.
//
// Because every thread flips at the same slot boundary and the pipeline is
// empty at the marker, pre-marker traffic uses old nodes on both sides and
// post-marker traffic new nodes on both sides — no message is ever sent to
// an endpoint the peer has abandoned.

// doRemap executes one pending remap from the source thread, at a frame
// boundary.
func (r *runner) doRemap(st *threadState) {
	next := r.pendingAssign
	trigger := r.pendingTrigger
	r.pendingAssign = nil
	tr := r.mach.Trace()

	// Quiesce + drain: stop admitting, wait for the pipeline to empty.
	quiesceStart := st.p.Now()
	r.drainTarget = r.admitted
	if r.framesDone >= r.drainTarget {
		r.drainTarget = -1
	} else {
		drainStart := st.p.Now()
		r.drainCh.Recv(st.p)
		if tr.Enabled() {
			tr.StreamSpan(st.my, trace.StreamTrack, "drain", drainStart, st.p.Now())
		}
	}

	migrated := 0
	for _, tp := range r.plans {
		if r.curAssign[tp.fnIdx][tp.thread] != next[tp.fnIdx][tp.thread] {
			migrated++
		}
	}

	// Publish the epoch and push the marker through the old topology; the
	// source's own marker handling (credit drain, self-migration, flip) is
	// the same remapStep every consumer runs.
	r.remapAssigns = append(r.remapAssigns, next)
	idx := len(r.remapAssigns) - 1
	r.emitMarker(st, slotRec{kind: slotRemap, arg: idx})
	r.remapStep(st, idx)
	r.curAssign = next

	stall := st.p.Now().Sub(quiesceStart)
	r.remaps = append(r.remaps, RemapEvent{
		At: quiesceStart, Stall: stall, Trigger: trigger, Migrated: migrated,
		Assign: next,
	})
	if tr.Enabled() {
		tr.StreamSpan(st.my, trace.StreamTrack, fmt.Sprintf("quiesce node %d", trigger), quiesceStart, st.p.Now())
		tr.StreamPoint(st.my, fmt.Sprintf("resume after %d migrations", migrated), st.p.Now())
	}
}

// remapStep is a thread's side of the remap marker (the source calls it
// directly after emitting; consumers reach it from consumerMain, which has
// already forwarded the marker downstream). Credits are drained from the old
// node before moving: outstanding credit returns were addressed there, and
// abandoning them would deflate the pipeline depth forever.
func (r *runner) remapStep(st *threadState, idx int) {
	next := r.remapAssigns[idx]
	r.drainCredits(st)
	newNode := next[st.tp.fnIdx][st.tp.thread]
	if newNode != st.my {
		r.migrate(st, newNode)
	}
	st.cur = next
}

// drainCredits receives every outstanding credit return, restoring each
// edge's ledger to the full BufferSlots. The pipeline is empty (post-drain),
// so every consumer has already sent these; the receives block at most on
// wire latency.
func (r *runner) drainCredits(st *threadState) {
	for _, pp := range st.tp.outs {
		for i := range pp.xfers {
			xr := &pp.xfers[i]
			key := xr.key()
			for st.credits[key] < r.cfg.BufferSlots {
				st.rank.Recv(st.peerNode(xr), creditTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread))
				st.credits[key]++
			}
		}
	}
}

// migrate moves the thread's working set to its new node and re-attaches its
// endpoint there: a bulk transfer of the port regions, the arrival wait, and
// the install copy on the far side.
func (r *runner) migrate(st *threadState, newNode int) {
	tr := r.mach.Trace()
	start := st.p.Now()
	old := st.my
	arrival := st.node.Transfer(st.p, newNode, st.tp.stateBytes)
	if arrival > st.p.Now() {
		st.p.SleepUntil(arrival)
	}
	st.my = newNode
	st.rank = r.world.Attach(newNode, st.p)
	st.node = r.mach.Node(newNode)
	st.node.Memcpy(st.p, st.tp.stateBytes)
	if tr.Enabled() {
		tr.StreamSpan(st.my, st.track, fmt.Sprintf("migrate %d->%d %dB", old, newNode, st.tp.stateBytes), start, st.p.Now())
	}
}

// --- controller --------------------------------------------------------------

// controller is the remapping policy process: it samples the injector's
// stall verdicts on a virtual-time tick, and when a node's sliding window
// shows it degraded, re-plans the mapping with the twin-fitness AToT search
// and hands the assignment to the source.
type controller struct {
	cfg RemapConfig
	aev *atot.Evaluator
	tev *twin.Evaluator
	r   *runner

	triggered  map[int]bool
	remapsDone int
}

func (c *controller) main(p *sim.Proc) {
	r := c.r
	inj := r.mach.Faults()
	if !inj.Enabled() {
		return // nothing can degrade, nothing to watch
	}
	nodes := r.cfg.Tables.NumNodes
	c.triggered = map[int]bool{}
	window := make([][]bool, nodes)
	for {
		if r.sourceDone || r.err != nil || c.remapsDone >= c.cfg.MaxRemaps {
			return
		}
		p.Sleep(c.cfg.ControlInterval)
		if r.sourceDone || r.err != nil {
			return
		}
		if r.pendingAssign != nil {
			continue // previous plan not yet consumed
		}
		now := p.Now()
		trigger := -1
		for n := 0; n < nodes; n++ {
			w := append(window[n], inj.NodeStalled(n, now))
			if len(w) > c.cfg.Window {
				w = w[1:]
			}
			window[n] = w
			if trigger >= 0 || len(w) < c.cfg.Window || c.triggered[n] {
				continue
			}
			stalled := 0
			for _, s := range w {
				if s {
					stalled++
				}
			}
			if float64(stalled) < c.cfg.StallFraction*float64(len(w)) {
				continue
			}
			if c.hostsThreads(n) {
				trigger = n
			}
		}
		if trigger < 0 {
			continue
		}
		next, err := c.replan(trigger)
		if err != nil {
			r.fail(fmt.Errorf("stream: remap planning: %w", err))
			return
		}
		p.Sleep(c.cfg.ReplanCost)
		c.triggered[trigger] = true
		c.remapsDone++
		r.pendingAssign = next
		r.pendingTrigger = trigger
		tr := r.mach.Trace()
		if tr.Enabled() {
			tr.StreamPoint(trigger, fmt.Sprintf("remap planned off node %d", trigger), p.Now())
		}
	}
}

// hostsThreads reports whether the current epoch places any thread on node n
// — remapping away from an idle node is pointless.
func (c *controller) hostsThreads(n int) bool {
	for _, nodes := range c.r.curAssign {
		for _, nd := range nodes {
			if nd == n {
				return true
			}
		}
	}
	return false
}

// replan runs the AToT genetic search with the analytical twin as fitness,
// pricing candidates on a machine whose degraded node runs at SpeedPenalty
// of its configured speed. Everything is seeded; the result is a pure
// function of (config, trigger), so replays are byte-identical.
func (c *controller) replan(trigger int) ([][]int, error) {
	r := c.r
	nodes := r.cfg.Tables.NumNodes
	speeds := make([]float64, nodes)
	for i := range speeds {
		speeds[i] = 1
		if i < len(r.cfg.NodeSpeeds) && r.cfg.NodeSpeeds[i] > 0 {
			speeds[i] = r.cfg.NodeSpeeds[i]
		}
	}
	speeds[trigger] *= c.cfg.SpeedPenalty
	c.aev.SetNodeSpeeds(speeds)
	twinOpts := twin.Options{
		// A small pipelined horizon: enough iterations for the bottleneck
		// period to dominate the prediction, cheap enough to score a whole
		// GA population mid-stream.
		Iterations:       4,
		DispatchOverhead: r.cfg.DispatchOverhead,
		BufferSlots:      r.cfg.BufferSlots,
		NodeSpeeds:       speeds,
	}
	gaCfg := atot.GAConfig{
		Population:  c.cfg.Population,
		Generations: c.cfg.Generations,
		Seed:        c.cfg.GASeed,
		Parallelism: 1, // inside a sim turn; the trajectory is width-invariant anyway
		Fitness: func(assign []int) float64 {
			return float64(c.tev.PredictElapsed(assign, twinOpts))
		},
	}
	cands, _, err := atot.MapGAK(c.aev, gaCfg, 1)
	if err != nil {
		return nil, err
	}
	m, err := c.aev.MappingFromAssign(cands[0])
	if err != nil {
		return nil, err
	}
	next := make([][]int, len(r.cfg.Tables.Functions))
	for fi := range r.cfg.Tables.Functions {
		fe := &r.cfg.Tables.Functions[fi]
		nodes, ok := m.Assign[fe.Name]
		if !ok || len(nodes) != fe.Threads {
			return nil, fmt.Errorf("replanned mapping incomplete for %q", fe.Name)
		}
		next[fi] = append([]int(nil), nodes...)
	}
	return next, nil
}
