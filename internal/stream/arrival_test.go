package stream

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestScheduleDeterministic: the same classes and seed produce the identical
// schedule on repeated builds, different seeds differ, and arrivals are
// sorted with per-class indices strictly increasing.
func TestScheduleDeterministic(t *testing.T) {
	classes := []Class{
		{Name: "interactive", Process: "poisson", Rate: 2000, Frames: 200, SLOMs: 4},
		{Name: "batch", Process: "gamma", Rate: 500, Shape: 4, Frames: 100, Weight: 2},
		{Name: "sensor", Process: "weibull", Rate: 1000, Shape: 1.5, Frames: 150},
	}
	a, err := BuildSchedule(classes, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(classes, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 450 {
		t.Fatalf("schedule has %d frames, want 450", len(a))
	}
	c, err := BuildSchedule(classes, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	nextIdx := make([]int, len(classes))
	for i, f := range a {
		if i > 0 && f.Arrival < a[i-1].Arrival {
			t.Fatalf("schedule not sorted at %d", i)
		}
		if f.Index != nextIdx[f.Class] {
			t.Fatalf("class %d skipped from index %d to %d", f.Class, nextIdx[f.Class], f.Index)
		}
		nextIdx[f.Class]++
	}
}

// TestClassSeedIndependence: perturbing one class's parameters leaves the
// other classes' arrival streams untouched (per-class seeding).
func TestClassSeedIndependence(t *testing.T) {
	base := []Class{
		{Name: "a", Process: "poisson", Rate: 1000, Frames: 50},
		{Name: "b", Process: "poisson", Rate: 1000, Frames: 50},
	}
	perturbed := []Class{
		{Name: "a", Process: "gamma", Rate: 333, Shape: 7, Frames: 80},
		{Name: "b", Process: "poisson", Rate: 1000, Frames: 50},
	}
	extract := func(frames []Frame, class int) []Frame {
		var out []Frame
		for _, f := range frames {
			if f.Class == class {
				out = append(out, f)
			}
		}
		return out
	}
	s1, err := BuildSchedule(base, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSchedule(perturbed, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(extract(s1, 1), extract(s2, 1)) {
		t.Fatal("changing class 0 perturbed class 1's arrivals")
	}
}

// TestInterarrivalStatistics: over 10k draws each process hits its
// configured mean rate within 3% and its theoretical coefficient of
// variation within 5% — the statistical-sanity gate on the samplers.
func TestInterarrivalStatistics(t *testing.T) {
	const n = 10000
	cases := []struct {
		class  Class
		wantCV float64
	}{
		{Class{Name: "p", Process: "poisson", Rate: 1000, Frames: 1}, 1},
		{Class{Name: "g4", Process: "gamma", Rate: 250, Shape: 4, Frames: 1}, 0.5},
		{Class{Name: "g05", Process: "gamma", Rate: 2000, Shape: 0.5, Frames: 1}, math.Sqrt2},
		{Class{Name: "w2", Process: "weibull", Rate: 500, Shape: 2, Frames: 1},
			math.Sqrt(math.Gamma(2)/(math.Gamma(1.5)*math.Gamma(1.5)) - 1)},
	}
	for _, tc := range cases {
		t.Run(tc.class.Name, func(t *testing.T) {
			r := newRNG(classSeed(99, 0))
			var w stats.Welford
			for i := 0; i < n; i++ {
				w.Add(float64(tc.class.interarrival(r)))
			}
			wantMean := 1e9 / tc.class.Rate
			if rel := math.Abs(w.Mean()-wantMean) / wantMean; rel > 0.03 {
				t.Errorf("mean %.0fns, want %.0fns (rel err %.3f > 0.03)", w.Mean(), wantMean, rel)
			}
			if rel := math.Abs(w.CV()-tc.wantCV) / tc.wantCV; rel > 0.05 {
				t.Errorf("CV %.4f, want %.4f (rel err %.3f > 0.05)", w.CV(), tc.wantCV, rel)
			}
		})
	}
}

// TestClassValidate covers the rejection paths.
func TestClassValidate(t *testing.T) {
	bad := []Class{
		{Process: "poisson", Rate: 1, Frames: 1},                         // no name
		{Name: "x", Process: "pareto", Rate: 1, Frames: 1},               // unknown process
		{Name: "x", Process: "poisson", Rate: 0, Frames: 1},              // zero rate
		{Name: "x", Process: "poisson", Rate: 1, Frames: 0},              // zero frames
		{Name: "x", Process: "gamma", Rate: 1, Frames: 1, Shape: -1},     // negative shape
		{Name: "x", Process: "poisson", Rate: 1, Frames: 1, Weight: 100}, // huge weight
		{Name: "x", Process: "poisson", Rate: 1, Frames: 1, SLOMs: -1},   // negative slo
		{Name: "x", Process: "poisson", Rate: 1, Frames: 1, ShedAfterMs: -1} /* negative shed */}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid class accepted: %+v", i, c)
		}
	}
	good := Class{Name: "x", Process: "weibull", Rate: 1, Frames: 1, Shape: 0.8, Weight: 4, SLOMs: 10, ShedAfterMs: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid class rejected: %v", err)
	}
}
