package viz

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sagert"
)

// WriteSVG renders the execution timeline as a standalone SVG document: one
// lane per (function, thread), phase-coloured bars on a virtual-time axis.
// This is the graphical counterpart of Gantt for the paper's "variety of
// graphical displays".
func (t *Trace) WriteSVG(w io.Writer, width int) error {
	if width < 200 {
		width = 200
	}
	const (
		laneH   = 22
		laneGap = 4
		labelW  = 180
		topH    = 30
	)
	phaseFill := map[string]string{
		"recv":    "#8ecae6",
		"compute": "#219ebc",
		"send":    "#ffb703",
	}

	type rowKey struct {
		fn     int
		name   string
		thread int
	}
	rows := map[rowKey][]sagert.Event{}
	for _, e := range t.Events {
		k := rowKey{e.Fn, e.FnName, e.Thread}
		rows[k] = append(rows[k], e)
	}
	keys := make([]rowKey, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].thread < keys[j].thread
	})

	lo, hi := t.Span()
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	plotW := float64(width - labelW - 10)
	x := func(ts float64) float64 { return float64(labelW) + (ts-float64(lo))/span*plotW }

	height := topH + len(keys)*(laneH+laneGap) + 10
	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="4" y="16">SAGE execution timeline: %s .. %s</text>`+"\n", lo, hi)
	// Legend.
	lx := labelW
	for _, ph := range []string{"recv", "compute", "send"} {
		fmt.Fprintf(w, `<rect x="%d" y="6" width="10" height="10" fill="%s"/><text x="%d" y="15">%s</text>`+"\n",
			lx, phaseFill[ph], lx+13, ph)
		lx += 80
	}
	for i, k := range keys {
		y := topH + i*(laneH+laneGap)
		fmt.Fprintf(w, `<text x="4" y="%d">%s[%d]</text>`+"\n", y+laneH-7, xmlEscape(k.name), k.thread)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#f1f3f5"/>`+"\n",
			labelW, y, plotW, laneH)
		for _, e := range rows[k] {
			x0 := x(float64(e.Start))
			x1 := x(float64(e.End))
			if x1-x0 < 0.5 {
				x1 = x0 + 0.5
			}
			fill, ok := phaseFill[e.Phase]
			if !ok {
				fill = "#adb5bd"
			}
			fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s[%d] iter %d %s: %s .. %s</title></rect>`+"\n",
				x0, y+2, x1-x0, laneH-4, fill, xmlEscape(e.FnName), e.Thread, e.Iter, e.Phase, e.Start, e.End)
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
