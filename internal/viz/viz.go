// Package viz reproduces the SAGE Visualizer (§1.1): "a configurable
// instrumentation package that enables the designer to visualize the
// execution of the application through a variety of graphical displays that
// are fed by probes placed within the generated code. The Visualizer allows
// the designer to configure the instrumentation probes to measure
// application performance, and search for problems in the system, such as
// bottlenecks or violated latency thresholds."
//
// Probes are the trace hooks of the SAGE runtime (sagert.Options.Trace /
// the per-function "probe" model property); this package collects the
// events and renders text displays: an ASCII Gantt timeline per function
// thread, per-function phase breakdowns, a bottleneck ranking, latency
// threshold checks, and CSV export for external tooling.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sagert"
	"repro/internal/sim"
)

// newLineScanner wraps bufio.Scanner with a generous buffer for long traces.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return sc
}

// Trace is a collected set of runtime probe events.
type Trace struct {
	Events []sagert.Event
}

// Collector returns a trace and the hook to pass as sagert.Options.Trace.
func Collector() (*Trace, func(sagert.Event)) {
	t := &Trace{}
	return t, func(e sagert.Event) { t.Events = append(t.Events, e) }
}

// Span reports the earliest start and latest end across all events.
func (t *Trace) Span() (sim.Time, sim.Time) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	lo, hi := t.Events[0].Start, t.Events[0].End
	for _, e := range t.Events[1:] {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// PhaseBreakdown sums event durations per function and phase.
type PhaseBreakdown struct {
	Fn      string
	Compute sim.Duration
	Recv    sim.Duration
	Send    sim.Duration
}

// Total is the function's summed instrumented time.
func (p PhaseBreakdown) Total() sim.Duration { return p.Compute + p.Recv + p.Send }

// Breakdown aggregates the trace per function, sorted by function name.
func (t *Trace) Breakdown() []PhaseBreakdown {
	agg := map[string]*PhaseBreakdown{}
	for _, e := range t.Events {
		b, ok := agg[e.FnName]
		if !ok {
			b = &PhaseBreakdown{Fn: e.FnName}
			agg[e.FnName] = b
		}
		d := e.End.Sub(e.Start)
		switch e.Phase {
		case "compute":
			b.Compute += d
		case "recv":
			b.Recv += d
		case "send":
			b.Send += d
		}
	}
	out := make([]PhaseBreakdown, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn < out[j].Fn })
	return out
}

// Bottleneck is a diagnosis for one function.
type Bottleneck struct {
	Fn string
	// Share is the function's fraction of total instrumented compute time.
	Share float64
	// WaitShare is recv (blocked/assembly) time relative to the function's
	// own total, indicating starvation by upstream stages.
	WaitShare float64
	// Diagnosis is a one-line classification.
	Diagnosis string
}

// Bottlenecks ranks functions by compute share and classifies each: the
// "search for problems in the system" display.
func (t *Trace) Bottlenecks() []Bottleneck {
	bd := t.Breakdown()
	var totalCompute sim.Duration
	for _, b := range bd {
		totalCompute += b.Compute
	}
	var out []Bottleneck
	for _, b := range bd {
		bn := Bottleneck{Fn: b.Fn}
		if totalCompute > 0 {
			bn.Share = float64(b.Compute) / float64(totalCompute)
		}
		if b.Total() > 0 {
			bn.WaitShare = float64(b.Recv) / float64(b.Total())
		}
		switch {
		case bn.Share > 0.5:
			bn.Diagnosis = "compute bottleneck: dominates total processing time"
		case bn.WaitShare > 0.6:
			bn.Diagnosis = "starved: mostly waiting on upstream data"
		case float64(b.Send) > 0.5*float64(b.Total()):
			bn.Diagnosis = "send-bound: output path saturated"
		default:
			bn.Diagnosis = "balanced"
		}
		out = append(out, bn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

// Violation is a data set whose latency exceeded the threshold.
type Violation struct {
	Iteration int
	Latency   sim.Duration
	Threshold sim.Duration
}

// CheckLatencies flags iterations whose latency exceeds the threshold (the
// Visualizer's "violated latency thresholds" display).
func CheckLatencies(latencies []sim.Duration, threshold sim.Duration) []Violation {
	var out []Violation
	for i, l := range latencies {
		if l > threshold {
			out = append(out, Violation{Iteration: i, Latency: l, Threshold: threshold})
		}
	}
	return out
}

// Gantt renders an ASCII timeline, one row per (function, thread), with
// phase characters: '.' idle, 'r' receiving/assembling, 'C' computing,
// 's' sending. width is the number of time columns.
func (t *Trace) Gantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	if len(t.Events) == 0 {
		_, err := fmt.Fprintln(w, "(no probe events)")
		return err
	}
	lo, hi := t.Span()
	span := hi.Sub(lo)
	if span <= 0 {
		span = 1
	}
	type rowKey struct {
		fn     int
		name   string
		thread int
	}
	rows := map[rowKey][]sagert.Event{}
	for _, e := range t.Events {
		k := rowKey{e.Fn, e.FnName, e.Thread}
		rows[k] = append(rows[k], e)
	}
	keys := make([]rowKey, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].thread < keys[j].thread
	})
	col := func(ts sim.Time) int {
		c := int(float64(ts.Sub(lo)) / float64(span) * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	phaseChar := map[string]byte{"recv": 'r', "compute": 'C', "send": 's'}
	fmt.Fprintf(w, "timeline %v .. %v (%v)\n", lo, hi, span)
	for _, k := range keys {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, e := range rows[k] {
			c0, c1 := col(e.Start), col(e.End)
			ch := phaseChar[e.Phase]
			if ch == 0 {
				ch = '?'
			}
			for c := c0; c <= c1; c++ {
				// Compute wins over send wins over recv when events share
				// a column at this resolution.
				if line[c] == '.' || line[c] == 'r' || (line[c] == 's' && ch == 'C') {
					line[c] = ch
				}
			}
		}
		fmt.Fprintf(w, "%-24s |%s|\n", fmt.Sprintf("%s[%d] n%d", k.name, k.thread, firstNode(rows[k])), line)
	}
	return nil
}

func firstNode(events []sagert.Event) int {
	if len(events) == 0 {
		return -1
	}
	return events[0].Node
}

// Report writes the full Visualizer text report: breakdown, bottlenecks and
// Gantt chart.
func (t *Trace) Report(w io.Writer, width int) error {
	fmt.Fprintln(w, "== SAGE Visualizer report ==")
	fmt.Fprintln(w, "\n-- per-function phase totals --")
	for _, b := range t.Breakdown() {
		fmt.Fprintf(w, "%-16s compute=%-14v recv=%-14v send=%-14v\n", b.Fn, b.Compute, b.Recv, b.Send)
	}
	fmt.Fprintln(w, "\n-- bottleneck analysis --")
	for _, bn := range t.Bottlenecks() {
		fmt.Fprintf(w, "%-16s compute-share=%5.1f%% wait-share=%5.1f%%  %s\n",
			bn.Fn, 100*bn.Share, 100*bn.WaitShare, bn.Diagnosis)
	}
	fmt.Fprintln(w, "\n-- timeline --")
	return t.Gantt(w, width)
}

// WriteCSV exports the raw events (one per line) for external tools.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "fn,name,thread,node,iteration,phase,start_ns,end_ns"); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%s,%d,%d\n",
			e.Fn, csvEscape(e.FnName), e.Thread, e.Node, e.Iter, e.Phase, int64(e.Start), int64(e.End)); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ReadCSV parses a trace previously exported with WriteCSV. Function names
// containing commas or quotes are not round-tripped (the runtime never
// produces them); a malformed line yields an error.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := newLineScanner(r)
	t := &Trace{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "fn,") {
				continue // header
			}
		}
		parts := strings.Split(line, ",")
		if len(parts) != 8 {
			return nil, fmt.Errorf("viz: bad trace line %q", line)
		}
		var e sagert.Event
		var start, end int64
		if _, err := fmt.Sscanf(parts[0], "%d", &e.Fn); err != nil {
			return nil, fmt.Errorf("viz: bad fn id in %q", line)
		}
		e.FnName = parts[1]
		for i, dst := range []*int{&e.Thread, &e.Node, &e.Iter} {
			if _, err := fmt.Sscanf(parts[2+i], "%d", dst); err != nil {
				return nil, fmt.Errorf("viz: bad field %d in %q", 2+i, line)
			}
		}
		e.Phase = parts[5]
		if _, err := fmt.Sscanf(parts[6], "%d", &start); err != nil {
			return nil, fmt.Errorf("viz: bad start in %q", line)
		}
		if _, err := fmt.Sscanf(parts[7], "%d", &end); err != nil {
			return nil, fmt.Errorf("viz: bad end in %q", line)
		}
		e.Start, e.End = sim.Time(start), sim.Time(end)
		t.Events = append(t.Events, e)
	}
	return t, sc.Err()
}
