package viz

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
)

// runTraced executes a corner turn with all probes on and returns the trace
// and result.
func runTraced(t *testing.T) (*Trace, *sagert.Result) {
	t.Helper()
	app, err := apps.CornerTurn(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	mapping, _ := model.SpreadParallel(app, 4)
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	trace, hook := Collector()
	res, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 3, ProbeAll: true, Trace: hook})
	if err != nil {
		t.Fatal(err)
	}
	return trace, res
}

func TestCollectorGathersEvents(t *testing.T) {
	trace, _ := runTraced(t)
	if len(trace.Events) == 0 {
		t.Fatal("no events collected")
	}
	lo, hi := trace.Span()
	if hi <= lo {
		t.Fatalf("span = [%v, %v]", lo, hi)
	}
}

func TestBreakdownCoversAllFunctions(t *testing.T) {
	trace, _ := runTraced(t)
	bd := trace.Breakdown()
	names := map[string]bool{}
	for _, b := range bd {
		names[b.Fn] = true
		if b.Total() <= 0 {
			t.Fatalf("function %s has zero instrumented time", b.Fn)
		}
	}
	for _, want := range []string{"source", "ingest", "turn", "sink"} {
		if !names[want] {
			t.Fatalf("breakdown missing %s: %v", want, names)
		}
	}
	// Sorted by name.
	for i := 1; i < len(bd); i++ {
		if bd[i].Fn < bd[i-1].Fn {
			t.Fatal("breakdown not sorted")
		}
	}
}

func TestBottlenecksRankedAndDiagnosed(t *testing.T) {
	trace, _ := runTraced(t)
	bns := trace.Bottlenecks()
	if len(bns) == 0 {
		t.Fatal("no bottlenecks reported")
	}
	for i := 1; i < len(bns); i++ {
		if bns[i].Share > bns[i-1].Share {
			t.Fatal("bottlenecks not ranked by compute share")
		}
	}
	var shareSum float64
	for _, b := range bns {
		shareSum += b.Share
		if b.Diagnosis == "" {
			t.Fatalf("missing diagnosis for %s", b.Fn)
		}
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Fatalf("compute shares sum to %v", shareSum)
	}
	// The sink in a corner turn waits on everything upstream: it must be
	// diagnosed as starved.
	for _, b := range bns {
		if b.Fn == "sink" && !strings.Contains(b.Diagnosis, "starved") {
			t.Fatalf("sink diagnosis = %q (wait share %.2f)", b.Diagnosis, b.WaitShare)
		}
	}
}

func TestCheckLatencies(t *testing.T) {
	lats := []sim.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	v := CheckLatencies(lats, 2*time.Millisecond)
	if len(v) != 1 || v[0].Iteration != 1 || v[0].Latency != 3*time.Millisecond {
		t.Fatalf("violations = %+v", v)
	}
	if len(CheckLatencies(lats, 10*time.Millisecond)) != 0 {
		t.Fatal("phantom violations")
	}
}

func TestLatencyViolationsFromRealRun(t *testing.T) {
	_, res := runTraced(t)
	tight := res.AvgLatency() / 2
	if len(CheckLatencies(res.Latencies, tight)) == 0 {
		t.Fatal("expected violations under a tight threshold")
	}
}

func TestGanttRendering(t *testing.T) {
	trace, _ := runTraced(t)
	var buf bytes.Buffer
	if err := trace.Gantt(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "timeline") {
		t.Fatal("missing header")
	}
	for _, want := range []string{"source[0]", "ingest[0]", "ingest[3]", "turn[2]", "sink[0]", "C"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 1 header + 1 source + 4 ingest + 4 turn + 1 sink = 11.
	if len(lines) != 11 {
		t.Fatalf("gantt has %d lines:\n%s", len(lines), out)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no probe events") {
		t.Fatal("empty trace not reported")
	}
}

func TestReport(t *testing.T) {
	trace, _ := runTraced(t)
	var buf bytes.Buffer
	if err := trace.Report(&buf, 50); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Visualizer report", "phase totals", "bottleneck analysis", "timeline"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	trace, _ := runTraced(t)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(trace.Events)+1 {
		t.Fatalf("csv has %d lines for %d events", len(lines), len(trace.Events))
	}
	if lines[0] != "fn,name,thread,node,iteration,phase,start_ns,end_ns" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 8 {
			t.Fatalf("bad csv line %q", l)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	trace, _ := runTraced(t)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(trace.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(trace.Events))
	}
	for i := range got.Events {
		if got.Events[i] != trace.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got.Events[i], trace.Events[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"1,f,0,0,0,compute,10",        // too few fields
		"x,f,0,0,0,compute,10,20",     // bad fn
		"1,f,a,0,0,compute,10,20",     // bad thread
		"1,f,0,0,0,compute,ten,20",    // bad start
		"1,f,0,0,0,compute,10,twenty", // bad end
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Header-only and empty are fine.
	if tr, err := ReadCSV(strings.NewReader("fn,name,thread,node,iteration,phase,start_ns,end_ns\n")); err != nil || len(tr.Events) != 0 {
		t.Fatalf("header-only: %v %v", tr, err)
	}
}

func TestWriteSVG(t *testing.T) {
	trace, _ := runTraced(t)
	var buf bytes.Buffer
	if err := trace.WriteSVG(&buf, 800); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "ingest[0]", "turn[3]", "compute", "#219ebc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Every event produced a rect with a tooltip.
	if got := strings.Count(out, "<title>"); got != len(trace.Events) {
		t.Fatalf("svg has %d tooltips for %d events", got, len(trace.Events))
	}
	// Narrow widths are clamped, not broken.
	var small bytes.Buffer
	if err := trace.WriteSVG(&small, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(small.String(), "<svg") {
		t.Fatal("clamped svg broken")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape = %q", got)
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain escaped")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Fatal("comma not quoted")
	}
	if csvEscape(`a"b`) != `"a""b"` {
		t.Fatal("quote not doubled")
	}
}
