// Package bench is the repo's reproducible performance harness. It runs a
// fixed matrix of end-to-end simulations (FFT sizes and a corner turn,
// traced and untraced, faulted and clean), a 1024-node wide-topology pair
// priced both by the discrete-event simulator and by the analytical twin,
// a 1024-node Mercury pair run sequentially and on the sharded kernel,
// a mixed-class streaming case on the stream runtime, plus a
// kernel-scheduling microbenchmark, and reports both host-dependent measurements (wall time,
// events/sec, allocations) and deterministic outputs (virtual elapsed time,
// kernel dispatches) that must be identical on every machine and every run.
//
// `sage-bench -benchjson BENCH_<n>.json` emits the report; committed
// BENCH_*.json files seed the repo's performance trajectory, so later PRs
// can demonstrate speedups against a recorded baseline. The deterministic
// fields double as a regression gate: if two runs (or two hosts, or two
// commits that claim pure optimisation) disagree on virtual_ns or
// dispatches, simulated behaviour changed.
package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/codegen"
	"repro/internal/codegen/rtl"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/twin"
)

// Schema identifies the report format; bump when fields change meaning.
const Schema = "sage-bench/1"

// faultPlanText is the canonical fault plan for faulted matrix cases:
// a light uniform drop rate plus one node stall, which together exercise
// retry, timeout and degraded-mode re-sequencing paths.
const faultPlanText = `seed 9
drop link=* rate=0.1
stall node=1 at=200us for=500us
`

// Case is one cell of the benchmark matrix.
type Case struct {
	Name       string
	App        experiments.AppKind // empty for micro cases
	N          int                 // matrix size (side length)
	Nodes      int
	Iterations int
	Traced     bool
	Faulted    bool
	// Threads overrides the per-function worker-thread count. Zero means
	// threads = Nodes (the classic matrix); nonzero selects the wide-topology
	// staggered mapping, for node counts beyond the 128-thread runtime cap.
	Threads int
	// Twin prices the case with the closed-form analytical twin instead of
	// running the discrete-event simulator. VirtualNS is then the predicted
	// elapsed time and Dispatches is zero (no events exist to dispatch).
	Twin bool
	// Events selects the kernel-scheduling microbenchmark (App empty):
	// a chain of that many self-rescheduled timer events.
	Events int
	// Stream runs the case on the streaming runtime instead of the batch
	// one: a fixed mixed-class arrival mix offering Iterations frames in
	// total. VirtualNS is then the streaming run's elapsed virtual time.
	Stream bool
	// Platform names the target platform from the registry. Empty means
	// CSPI, the classic matrix target — committed reports written before
	// the field existed replay unchanged.
	Platform string
	// Shards runs the simulation on the sharded kernel (sagert's
	// Options.Shards): up to that many host cores cooperate on this one run.
	// The deterministic columns are byte-identical at any shard count; only
	// wall-clock measurements may move. Zero or one means sequential.
	Shards int
	// Exec runs the case as a real program instead of a simulation: the
	// tables are lowered into the generated goroutines-and-channels runtime
	// (internal/codegen) and executed on actual data. WallNS is then real
	// compute time and OutputHash fingerprints the bitwise output; no
	// virtual time or dispatches exist.
	Exec bool
}

// CaseResult is one executed cell. Fields under "deterministic" depend only
// on the simulated behaviour; the rest measure the host.
type CaseResult struct {
	Name       string `json:"name"`
	App        string `json:"app,omitempty"`
	N          int    `json:"n,omitempty"`
	Nodes      int    `json:"nodes,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Traced     bool   `json:"traced"`
	Faulted    bool   `json:"faulted"`
	Threads    int    `json:"threads,omitempty"`
	// Platform is the registry platform the case ran on; empty means CSPI
	// (reports written before the field existed carry no platform key).
	Platform string `json:"platform,omitempty"`
	// Shards is the shard count the simulation ran with; zero means the
	// sequential kernel. Sharding never moves a deterministic column — a
	// sharded case and its sequential twin must agree on virtual_ns and
	// dispatches exactly.
	Shards int `json:"shards,omitempty"`
	// Kind is "twin" for analytically-priced cases, empty for simulated and
	// micro cases. Twin cases carry VirtualNS (the prediction) but no
	// dispatches or event rate: nothing was simulated.
	Kind string `json:"kind,omitempty"`

	// Deterministic: identical across hosts, runs and pool widths.
	VirtualNS  int64  `json:"virtual_ns"`
	Dispatches uint64 `json:"dispatches"`

	// OutputHash is the SHA-256 of the canonical sink-output text for exec
	// cases: deterministic across hosts and runs (the generated program is
	// bitwise reproducible), so it joins the fingerprint as a regression
	// gate on the computed data itself.
	OutputHash string `json:"output_hash,omitempty"`

	// Host-dependent measurements.
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Report is the full harness output.
type Report struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Cases      []CaseResult `json:"cases"`
	// Summary aggregates host measurements across the event-driven cases,
	// computed with the shared stats estimators (internal/stats — the same
	// code the streaming SLO reports use). Host-dependent, like the fields
	// it summarises; absent from reports written before the field existed.
	Summary *Summary `json:"summary,omitempty"`
}

// Summary is the cross-case host-measurement roll-up.
type Summary struct {
	Cases            int     `json:"cases"`
	WallNSTotal      int64   `json:"wall_ns_total"`
	EventsPerSecMean float64 `json:"events_per_sec_mean"`
	EventsPerSecP50  float64 `json:"events_per_sec_p50"`
	EventsPerSecMin  float64 `json:"events_per_sec_min"`
	EventsPerSecMax  float64 `json:"events_per_sec_max"`
	AllocsPerEvtMean float64 `json:"allocs_per_event_mean"`
}

// Summarize computes the host-measurement roll-up over every case that
// dispatched events (twin cases price without simulating and are skipped).
func Summarize(r *Report) *Summary {
	var w, aw stats.Welford
	var rates []float64
	var total int64
	for _, c := range r.Cases {
		if c.Dispatches == 0 {
			continue
		}
		w.Add(c.EventsPerSec)
		aw.Add(c.AllocsPerEvent)
		rates = append(rates, c.EventsPerSec)
		total += c.WallNS
	}
	if len(rates) == 0 {
		return nil
	}
	min, max := rates[0], rates[0]
	for _, v := range rates[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return &Summary{
		Cases:            len(rates),
		WallNSTotal:      total,
		EventsPerSecMean: w.Mean(),
		EventsPerSecP50:  stats.Percentile(rates, 0.50),
		EventsPerSecMin:  min,
		EventsPerSecMax:  max,
		AllocsPerEvtMean: aw.Mean(),
	}
}

// Matrix returns the fixed protocol matrix. The full matrix is the
// committed-baseline protocol (FFT 256/512/1024 + corner turn, each traced
// and untraced, faulted and clean, on 8 nodes), plus a 1024-node
// wide-topology pair pricing the same tables with the DES and with the
// analytical twin — the committed speedup evidence for estimate-before-run
// workflows — plus a 1024-node Mercury pair running the same simulation
// sequentially and on 8 shards, the committed evidence that sharding moves
// wall clock and nothing else. Quick shrinks sizes for CI smoke runs
// without changing the matrix shape (the XL pairs keep their 1024 nodes;
// only the problem size drops).
func Matrix(quick bool) []Case {
	type appCell struct {
		app experiments.AppKind
		n   int
	}
	apps := []appCell{
		{experiments.AppFFT2D, 256},
		{experiments.AppFFT2D, 512},
		{experiments.AppFFT2D, 1024},
		{experiments.AppCornerTurn, 512},
	}
	nodes, iters, events := 8, 5, 2_000_000
	if quick {
		apps = []appCell{
			{experiments.AppFFT2D, 64},
			{experiments.AppFFT2D, 128},
			{experiments.AppCornerTurn, 64},
		}
		nodes, iters, events = 4, 3, 200_000
	}
	var cases []Case
	for _, a := range apps {
		short := "fft"
		if a.app == experiments.AppCornerTurn {
			short = "ct"
		}
		for _, faulted := range []bool{false, true} {
			for _, traced := range []bool{false, true} {
				name := fmt.Sprintf("%s%d", short, a.n)
				if faulted {
					name += ".faulted"
				} else {
					name += ".clean"
				}
				if traced {
					name += ".traced"
				}
				cases = append(cases, Case{
					Name: name, App: a.app, N: a.n, Nodes: nodes,
					Iterations: iters, Traced: traced, Faulted: faulted,
				})
			}
		}
	}
	// Wide-topology pair: identical tables on 1024 nodes, priced once by the
	// DES and once by the twin. Per-function threads stay under the runtime's
	// 128-thread cap; the staggered mapping spreads the pipeline stages into
	// distinct node bands so the topology is genuinely wide.
	xlN, xlThreads, xlNodes, xlIters := 1024, 128, 1024, 5
	if quick {
		xlN, xlThreads, xlIters = 256, 64, 3
	}
	for _, twin := range []bool{false, true} {
		kind := "des"
		if twin {
			kind = "twin"
		}
		cases = append(cases, Case{
			Name: fmt.Sprintf("fft%d.xl%d.%s", xlN, xlNodes, kind),
			App:  experiments.AppFFT2D, N: xlN, Threads: xlThreads, Nodes: xlNodes,
			Iterations: xlIters, Twin: twin,
		})
	}
	// Sharded pair: the same wide workload on Mercury — a crossbar platform
	// with per-node fabric resources, so the conservative sharder can split
	// it — run once sequentially and once on 8 shards. The deterministic
	// columns must match exactly (sharding is byte-identical by contract);
	// the wall-clock delta is the multi-core speedup evidence on hosts with
	// GOMAXPROCS >= 8.
	for _, shards := range []int{1, 8} {
		name := fmt.Sprintf("fft%d.xlm%d.des", xlN, xlNodes)
		if shards > 1 {
			name += fmt.Sprintf(".s%d", shards)
		}
		cases = append(cases, Case{
			Name: name, App: experiments.AppFFT2D, N: xlN, Threads: xlThreads,
			Nodes: xlNodes, Iterations: xlIters, Platform: "Mercury", Shards: shards,
		})
	}
	// Streaming case: a mixed-class arrival mix on the stream runtime — the
	// acceptance number for streaming-path optimisations.
	strN, strFrames := 128, 120
	if quick {
		strN, strFrames = 64, 30
	}
	cases = append(cases, Case{
		Name: fmt.Sprintf("stream%d.mixed", strN),
		App:  experiments.AppFFT2D, N: strN, Nodes: nodes,
		Iterations: strFrames, Stream: true,
	})
	// Real-execution case: the same generated tables lowered to actual
	// goroutines and channels and run on real data — the acceptance number
	// for emitted-code and funclib-kernel optimisations, with the output
	// hash gating bitwise reproducibility.
	execN := 256
	if quick {
		execN = 64
	}
	cases = append(cases, Case{
		Name: fmt.Sprintf("fft%d.exec", execN),
		App:  experiments.AppFFT2D, N: execN, Nodes: nodes,
		Iterations: iters, Exec: true,
	})
	cases = append(cases, Case{Name: "kernel.schedule", Events: events})
	return cases
}

// Run executes the cases in order and assembles the report. Progress lines
// go to log (nil silences them). Cases run sequentially so wall-time and
// allocation measurements are not polluted by sibling cases.
func Run(cases []Case, log io.Writer) (*Report, error) {
	r := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range cases {
		var (
			res CaseResult
			err error
		)
		switch {
		case c.App == "":
			res, err = runMicro(c)
		case c.Twin:
			res, err = runTwin(c)
		case c.Stream:
			res, err = runStream(c)
		case c.Exec:
			res, err = runExec(c)
		default:
			res, err = runSim(c)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: case %s: %w", c.Name, err)
		}
		if log != nil {
			fmt.Fprintf(log, "bench %-22s %10.0f events/sec  %6.2f allocs/event  wall %v\n",
				res.Name, res.EventsPerSec, res.AllocsPerEvent, time.Duration(res.WallNS).Round(time.Millisecond))
		}
		r.Cases = append(r.Cases, res)
	}
	r.Summary = Summarize(r)
	return r, nil
}

// measure wraps fn with wall-clock and allocation accounting. GC runs first
// so a prior case's garbage is not attributed to this one.
func measure(fn func() error) (wallNS int64, allocs, bytes uint64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err = fn()
	wallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return wallNS, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}

func finish(res *CaseResult, wallNS int64, allocs, bytes, dispatches uint64, virtual sim.Time) {
	res.VirtualNS = int64(virtual)
	res.Dispatches = dispatches
	res.WallNS = wallNS
	if wallNS > 0 {
		res.EventsPerSec = float64(dispatches) / (float64(wallNS) / 1e9)
	}
	if dispatches > 0 {
		res.AllocsPerEvent = float64(allocs) / float64(dispatches)
		res.BytesPerEvent = float64(bytes) / float64(dispatches)
	}
	res.Allocs = allocs
}

// casePlatform resolves the case's target platform; empty selects CSPI.
func casePlatform(c Case) (machine.Platform, error) {
	if c.Platform == "" {
		return platforms.CSPI(), nil
	}
	return platforms.ByName(c.Platform)
}

// caseTables builds the generated tables for a sim or twin case. Table
// generation happens outside measure() in both paths, so the DES and the
// twin are timed over exactly the same remaining work: pricing the tables.
func caseTables(c Case) (*gluegen.Output, error) {
	pl, err := casePlatform(c)
	if err != nil {
		return nil, err
	}
	if c.Threads > 0 {
		return experiments.GenerateTablesWide(c.App, pl, c.Nodes, c.Threads, c.N)
	}
	return experiments.GenerateTables(c.App, pl, c.Nodes, c.N)
}

func runSim(c Case) (CaseResult, error) {
	res := CaseResult{
		Name: c.Name, App: string(c.App), N: c.N, Nodes: c.Nodes,
		Iterations: c.Iterations, Traced: c.Traced, Faulted: c.Faulted,
		Threads: c.Threads, Platform: c.Platform, Shards: c.Shards,
	}
	pl, err := casePlatform(c)
	if err != nil {
		return res, err
	}
	out, err := caseTables(c)
	if err != nil {
		return res, err
	}
	opts := sagert.Options{Iterations: c.Iterations, Shards: c.Shards}
	if c.Shards > 1 {
		// Seed the shard partitioner with the twin's per-node busy forecast,
		// the same steering sage-run uses; partition choice is wall-clock-only.
		if w, werr := twin.ShardWeights(out.Tables, pl, twin.Options{Iterations: c.Iterations}); werr == nil {
			opts.ShardWeights = w
		}
	}
	if c.Faulted {
		plan, err := fault.ParsePlan(faultPlanText)
		if err != nil {
			return res, err
		}
		opts.Faults = plan
		opts.Resilience.Degraded = plan.HasStalls()
	}
	if c.Traced {
		opts.Collector = trace.New(c.Name)
		opts.ProbeAll = true
	}
	var run *sagert.Result
	wallNS, allocs, bytes, err := measure(func() error {
		r, err := sagert.Run(out.Tables, pl, opts)
		run = r
		return err
	})
	if err != nil {
		return res, err
	}
	finish(&res, wallNS, allocs, bytes, run.Dispatches, run.Elapsed)
	return res, nil
}

// runTwin prices a case with the analytical twin. The evaluator — a
// compiled, reusable view of the tables, built once and then queried
// thousands of times by the GA fitness path and the serve estimate path —
// is constructed outside measure() next to table generation, so the
// measured region is one pricing query in both columns: sagert.Run for the
// DES case, Predict here. VirtualNS records the predicted elapsed time;
// Dispatches stays zero because no event was ever created.
func runTwin(c Case) (CaseResult, error) {
	res := CaseResult{
		Name: c.Name, App: string(c.App), N: c.N, Nodes: c.Nodes,
		Iterations: c.Iterations, Threads: c.Threads, Platform: c.Platform, Kind: "twin",
	}
	pl, err := casePlatform(c)
	if err != nil {
		return res, err
	}
	out, err := caseTables(c)
	if err != nil {
		return res, err
	}
	ev, err := twin.NewEvaluator(out.Tables, pl)
	if err != nil {
		return res, err
	}
	var pred *twin.Prediction
	wallNS, allocs, bytes, err := measure(func() error {
		pred = ev.Predict(twin.Options{Iterations: c.Iterations})
		return nil
	})
	if err != nil {
		return res, err
	}
	finish(&res, wallNS, allocs, bytes, 0, sim.Time(pred.Elapsed))
	return res, nil
}

// runStream measures the streaming runtime: a fixed 3:1 interactive/batch
// class mix offering Iterations frames in total. Like every other cell the
// deterministic outputs (virtual elapsed, dispatches) are host-independent.
func runStream(c Case) (CaseResult, error) {
	res := CaseResult{
		Name: c.Name, App: string(c.App), N: c.N, Nodes: c.Nodes,
		Iterations: c.Iterations, Kind: "stream",
	}
	interactive := (c.Iterations*3 + 3) / 4
	batch := c.Iterations - interactive
	sc := &stream.Scenario{
		App: "fft2d", N: c.N, Threads: 2, Nodes: c.Nodes, Seed: 7,
		Classes: []stream.Class{
			{Name: "interactive", Process: "poisson", Rate: 400, Frames: interactive, SLOMs: 50},
			{Name: "batch", Process: "gamma", Rate: 100, Shape: 4, Frames: batch, Weight: 2},
		},
	}
	cfg, err := sc.Build()
	if err != nil {
		return res, err
	}
	var run *stream.Result
	wallNS, allocs, bytes, err := measure(func() error {
		r, err := stream.Run(cfg)
		run = r
		return err
	})
	if err != nil {
		return res, err
	}
	finish(&res, wallNS, allocs, bytes, run.Dispatches, run.Elapsed)
	return res, nil
}

// runExec lowers the case's tables into the generated real-execution
// runtime and runs them on actual data: one goroutine per SAGE thread,
// buffered-channel lanes, function-library kernels on []complex128. Wall
// time is genuine host compute; the deterministic contribution is the
// SHA-256 of the canonical output text, which must be identical on every
// host and at every GOMAXPROCS.
func runExec(c Case) (CaseResult, error) {
	res := CaseResult{
		Name: c.Name, App: string(c.App), N: c.N, Nodes: c.Nodes,
		Iterations: c.Iterations, Threads: c.Threads, Platform: c.Platform, Kind: "exec",
	}
	out, err := caseTables(c)
	if err != nil {
		return res, err
	}
	prog, err := codegen.Plan(out.Tables, c.Iterations)
	if err != nil {
		return res, err
	}
	var run *rtl.Result
	wallNS, allocs, allocBytes, err := measure(func() error {
		r, err := rtl.Execute(prog)
		run = r
		return err
	})
	if err != nil {
		return res, err
	}
	var text bytes.Buffer
	if err := run.WriteText(&text); err != nil {
		return res, err
	}
	sum := sha256.Sum256(text.Bytes())
	finish(&res, wallNS, allocs, allocBytes, 0, 0)
	res.OutputHash = hex.EncodeToString(sum[:])
	return res, nil
}

// runMicro is the kernel-scheduling microbenchmark: a chain of Events
// self-rescheduled timer callbacks, the same loop as the package's
// BenchmarkKernelSchedule. It is the acceptance number for scheduling-path
// optimisations (events/sec up, allocs/event down).
func runMicro(c Case) (CaseResult, error) {
	res := CaseResult{Name: c.Name, Iterations: c.Events}
	var k *sim.Kernel
	wallNS, allocs, bytes, err := measure(func() error {
		k = sim.NewKernel()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < c.Events {
				k.After(time.Microsecond, tick)
			}
		}
		k.After(time.Microsecond, tick)
		return k.Run()
	})
	if err != nil {
		return res, err
	}
	finish(&res, wallNS, allocs, bytes, k.Dispatched(), k.Now())
	return res, nil
}

// WriteFile marshals the report (indented, trailing newline) to path.
func WriteFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Validate checks a report against the BENCH JSON schema: identity fields
// present, measurements internally consistent, no duplicate case names.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if r.GOMAXPROCS < 1 {
		return fmt.Errorf("gomaxprocs %d", r.GOMAXPROCS)
	}
	if len(r.Cases) == 0 {
		return fmt.Errorf("no cases")
	}
	seen := map[string]bool{}
	for i, c := range r.Cases {
		if c.Name == "" {
			return fmt.Errorf("case %d: missing name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("case %q: duplicate name", c.Name)
		}
		seen[c.Name] = true
		if c.App != "" && (c.N <= 0 || c.Nodes <= 0 || c.Iterations <= 0) {
			return fmt.Errorf("case %q: incomplete sim identity (n=%d nodes=%d iterations=%d)", c.Name, c.N, c.Nodes, c.Iterations)
		}
		switch c.Kind {
		case "":
			if c.VirtualNS <= 0 || c.Dispatches == 0 {
				return fmt.Errorf("case %q: missing deterministic outputs (virtual_ns=%d dispatches=%d)", c.Name, c.VirtualNS, c.Dispatches)
			}
			if c.WallNS <= 0 || c.EventsPerSec <= 0 {
				return fmt.Errorf("case %q: missing measurements (wall_ns=%d events_per_sec=%g)", c.Name, c.WallNS, c.EventsPerSec)
			}
		case "stream":
			if c.VirtualNS <= 0 || c.Dispatches == 0 {
				return fmt.Errorf("case %q: missing deterministic outputs (virtual_ns=%d dispatches=%d)", c.Name, c.VirtualNS, c.Dispatches)
			}
			if c.WallNS <= 0 || c.EventsPerSec <= 0 {
				return fmt.Errorf("case %q: missing measurements (wall_ns=%d events_per_sec=%g)", c.Name, c.WallNS, c.EventsPerSec)
			}
		case "exec":
			// Real-execution cases run generated code on actual data: no
			// virtual time or dispatches exist, but the wall clock and the
			// output hash (the bitwise-reproducibility gate) must be present.
			if c.VirtualNS != 0 || c.Dispatches != 0 {
				return fmt.Errorf("case %q: exec case carries simulated outputs (virtual_ns=%d dispatches=%d)", c.Name, c.VirtualNS, c.Dispatches)
			}
			if c.WallNS <= 0 {
				return fmt.Errorf("case %q: missing measurement (wall_ns=%d)", c.Name, c.WallNS)
			}
			if len(c.OutputHash) != 64 {
				return fmt.Errorf("case %q: exec case output_hash %q is not a sha-256 hex digest", c.Name, c.OutputHash)
			}
		case "twin":
			// Analytical cases predict virtual time without simulating: the
			// prediction must be present, the measurement must exist, and no
			// events may have been dispatched (that would mean a simulation
			// leaked into the analytical path).
			if c.VirtualNS <= 0 {
				return fmt.Errorf("case %q: twin case missing prediction (virtual_ns=%d)", c.Name, c.VirtualNS)
			}
			if c.Dispatches != 0 || c.EventsPerSec != 0 {
				return fmt.Errorf("case %q: twin case dispatched events (dispatches=%d events_per_sec=%g)", c.Name, c.Dispatches, c.EventsPerSec)
			}
			if c.WallNS <= 0 {
				return fmt.Errorf("case %q: missing measurement (wall_ns=%d)", c.Name, c.WallNS)
			}
		default:
			return fmt.Errorf("case %q: unknown kind %q", c.Name, c.Kind)
		}
		if c.AllocsPerEvent < 0 || c.BytesPerEvent < 0 {
			return fmt.Errorf("case %q: negative allocation rate", c.Name)
		}
		// Shards/Platform arrived with sage-bench/1 reports already committed;
		// absent keys decode to zero values and stay valid. Only nonsense is
		// rejected.
		if c.Shards < 0 {
			return fmt.Errorf("case %q: negative shard count %d", c.Name, c.Shards)
		}
		if c.Shards > 1 && c.Kind != "" {
			return fmt.Errorf("case %q: only simulated cases shard (kind=%q shards=%d)", c.Name, c.Kind, c.Shards)
		}
	}
	return nil
}

// Fingerprint projects the deterministic fields into a newline-separated
// canonical form. Two runs of the same matrix on any hosts must produce
// identical fingerprints; CI diffs this as the determinism gate.
func (r *Report) Fingerprint() string {
	var out []byte
	for _, c := range r.Cases {
		out = fmt.Appendf(out, "%s virtual_ns=%d dispatches=%d", c.Name, c.VirtualNS, c.Dispatches)
		if c.OutputHash != "" {
			out = fmt.Appendf(out, " output=%s", c.OutputHash)
		}
		out = append(out, '\n')
	}
	return string(out)
}
