// Package bench is the repo's reproducible performance harness. It runs a
// fixed matrix of end-to-end simulations (FFT sizes and a corner turn,
// traced and untraced, faulted and clean) plus a kernel-scheduling
// microbenchmark, and reports both host-dependent measurements (wall time,
// events/sec, allocations) and deterministic outputs (virtual elapsed time,
// kernel dispatches) that must be identical on every machine and every run.
//
// `sage-bench -benchjson BENCH_<n>.json` emits the report; committed
// BENCH_*.json files seed the repo's performance trajectory, so later PRs
// can demonstrate speedups against a recorded baseline. The deterministic
// fields double as a regression gate: if two runs (or two hosts, or two
// commits that claim pure optimisation) disagree on virtual_ns or
// dispatches, simulated behaviour changed.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Schema identifies the report format; bump when fields change meaning.
const Schema = "sage-bench/1"

// faultPlanText is the canonical fault plan for faulted matrix cases:
// a light uniform drop rate plus one node stall, which together exercise
// retry, timeout and degraded-mode re-sequencing paths.
const faultPlanText = `seed 9
drop link=* rate=0.1
stall node=1 at=200us for=500us
`

// Case is one cell of the benchmark matrix.
type Case struct {
	Name       string
	App        experiments.AppKind // empty for micro cases
	N          int                 // matrix size (side length)
	Nodes      int
	Iterations int
	Traced     bool
	Faulted    bool
	// Events selects the kernel-scheduling microbenchmark (App empty):
	// a chain of that many self-rescheduled timer events.
	Events int
}

// CaseResult is one executed cell. Fields under "deterministic" depend only
// on the simulated behaviour; the rest measure the host.
type CaseResult struct {
	Name       string `json:"name"`
	App        string `json:"app,omitempty"`
	N          int    `json:"n,omitempty"`
	Nodes      int    `json:"nodes,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Traced     bool   `json:"traced"`
	Faulted    bool   `json:"faulted"`

	// Deterministic: identical across hosts, runs and pool widths.
	VirtualNS  int64  `json:"virtual_ns"`
	Dispatches uint64 `json:"dispatches"`

	// Host-dependent measurements.
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Report is the full harness output.
type Report struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Cases      []CaseResult `json:"cases"`
}

// Matrix returns the fixed protocol matrix. The full matrix is the
// committed-baseline protocol (FFT 256/512/1024 + corner turn, each traced
// and untraced, faulted and clean, on 8 nodes); quick shrinks sizes for CI
// smoke runs without changing the matrix shape.
func Matrix(quick bool) []Case {
	type appCell struct {
		app experiments.AppKind
		n   int
	}
	apps := []appCell{
		{experiments.AppFFT2D, 256},
		{experiments.AppFFT2D, 512},
		{experiments.AppFFT2D, 1024},
		{experiments.AppCornerTurn, 512},
	}
	nodes, iters, events := 8, 5, 2_000_000
	if quick {
		apps = []appCell{
			{experiments.AppFFT2D, 64},
			{experiments.AppFFT2D, 128},
			{experiments.AppCornerTurn, 64},
		}
		nodes, iters, events = 4, 3, 200_000
	}
	var cases []Case
	for _, a := range apps {
		short := "fft"
		if a.app == experiments.AppCornerTurn {
			short = "ct"
		}
		for _, faulted := range []bool{false, true} {
			for _, traced := range []bool{false, true} {
				name := fmt.Sprintf("%s%d", short, a.n)
				if faulted {
					name += ".faulted"
				} else {
					name += ".clean"
				}
				if traced {
					name += ".traced"
				}
				cases = append(cases, Case{
					Name: name, App: a.app, N: a.n, Nodes: nodes,
					Iterations: iters, Traced: traced, Faulted: faulted,
				})
			}
		}
	}
	cases = append(cases, Case{Name: "kernel.schedule", Events: events})
	return cases
}

// Run executes the cases in order and assembles the report. Progress lines
// go to log (nil silences them). Cases run sequentially so wall-time and
// allocation measurements are not polluted by sibling cases.
func Run(cases []Case, log io.Writer) (*Report, error) {
	r := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range cases {
		var (
			res CaseResult
			err error
		)
		if c.App == "" {
			res, err = runMicro(c)
		} else {
			res, err = runSim(c)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: case %s: %w", c.Name, err)
		}
		if log != nil {
			fmt.Fprintf(log, "bench %-22s %10.0f events/sec  %6.2f allocs/event  wall %v\n",
				res.Name, res.EventsPerSec, res.AllocsPerEvent, time.Duration(res.WallNS).Round(time.Millisecond))
		}
		r.Cases = append(r.Cases, res)
	}
	return r, nil
}

// measure wraps fn with wall-clock and allocation accounting. GC runs first
// so a prior case's garbage is not attributed to this one.
func measure(fn func() error) (wallNS int64, allocs, bytes uint64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err = fn()
	wallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return wallNS, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}

func finish(res *CaseResult, wallNS int64, allocs, bytes, dispatches uint64, virtual sim.Time) {
	res.VirtualNS = int64(virtual)
	res.Dispatches = dispatches
	res.WallNS = wallNS
	if wallNS > 0 {
		res.EventsPerSec = float64(dispatches) / (float64(wallNS) / 1e9)
	}
	if dispatches > 0 {
		res.AllocsPerEvent = float64(allocs) / float64(dispatches)
		res.BytesPerEvent = float64(bytes) / float64(dispatches)
	}
	res.Allocs = allocs
}

func runSim(c Case) (CaseResult, error) {
	res := CaseResult{
		Name: c.Name, App: string(c.App), N: c.N, Nodes: c.Nodes,
		Iterations: c.Iterations, Traced: c.Traced, Faulted: c.Faulted,
	}
	pl := platforms.CSPI()
	out, err := experiments.GenerateTables(c.App, pl, c.Nodes, c.N)
	if err != nil {
		return res, err
	}
	opts := sagert.Options{Iterations: c.Iterations}
	if c.Faulted {
		plan, err := fault.ParsePlan(faultPlanText)
		if err != nil {
			return res, err
		}
		opts.Faults = plan
		opts.Resilience.Degraded = plan.HasStalls()
	}
	if c.Traced {
		opts.Collector = trace.New(c.Name)
		opts.ProbeAll = true
	}
	var run *sagert.Result
	wallNS, allocs, bytes, err := measure(func() error {
		r, err := sagert.Run(out.Tables, pl, opts)
		run = r
		return err
	})
	if err != nil {
		return res, err
	}
	finish(&res, wallNS, allocs, bytes, run.Dispatches, run.Elapsed)
	return res, nil
}

// runMicro is the kernel-scheduling microbenchmark: a chain of Events
// self-rescheduled timer callbacks, the same loop as the package's
// BenchmarkKernelSchedule. It is the acceptance number for scheduling-path
// optimisations (events/sec up, allocs/event down).
func runMicro(c Case) (CaseResult, error) {
	res := CaseResult{Name: c.Name, Iterations: c.Events}
	var k *sim.Kernel
	wallNS, allocs, bytes, err := measure(func() error {
		k = sim.NewKernel()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < c.Events {
				k.After(time.Microsecond, tick)
			}
		}
		k.After(time.Microsecond, tick)
		return k.Run()
	})
	if err != nil {
		return res, err
	}
	finish(&res, wallNS, allocs, bytes, k.Dispatched(), k.Now())
	return res, nil
}

// WriteFile marshals the report (indented, trailing newline) to path.
func WriteFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Validate checks a report against the BENCH JSON schema: identity fields
// present, measurements internally consistent, no duplicate case names.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	if r.GOMAXPROCS < 1 {
		return fmt.Errorf("gomaxprocs %d", r.GOMAXPROCS)
	}
	if len(r.Cases) == 0 {
		return fmt.Errorf("no cases")
	}
	seen := map[string]bool{}
	for i, c := range r.Cases {
		if c.Name == "" {
			return fmt.Errorf("case %d: missing name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("case %q: duplicate name", c.Name)
		}
		seen[c.Name] = true
		if c.App != "" && (c.N <= 0 || c.Nodes <= 0 || c.Iterations <= 0) {
			return fmt.Errorf("case %q: incomplete sim identity (n=%d nodes=%d iterations=%d)", c.Name, c.N, c.Nodes, c.Iterations)
		}
		if c.VirtualNS <= 0 || c.Dispatches == 0 {
			return fmt.Errorf("case %q: missing deterministic outputs (virtual_ns=%d dispatches=%d)", c.Name, c.VirtualNS, c.Dispatches)
		}
		if c.WallNS <= 0 || c.EventsPerSec <= 0 {
			return fmt.Errorf("case %q: missing measurements (wall_ns=%d events_per_sec=%g)", c.Name, c.WallNS, c.EventsPerSec)
		}
		if c.AllocsPerEvent < 0 || c.BytesPerEvent < 0 {
			return fmt.Errorf("case %q: negative allocation rate", c.Name)
		}
	}
	return nil
}

// Fingerprint projects the deterministic fields into a newline-separated
// canonical form. Two runs of the same matrix on any hosts must produce
// identical fingerprints; CI diffs this as the determinism gate.
func (r *Report) Fingerprint() string {
	var out []byte
	for _, c := range r.Cases {
		out = fmt.Appendf(out, "%s virtual_ns=%d dispatches=%d\n", c.Name, c.VirtualNS, c.Dispatches)
	}
	return string(out)
}
