package bench

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// xlPair pulls the classic CSPI wide-topology des/twin pair out of a case
// list or report. The Mercury sharded pair also has Threads set, so the
// selector pins platform and shard count too.
func xlPair(t *testing.T, cases []CaseResult) (des, twin CaseResult) {
	t.Helper()
	var haveDes, haveTwin bool
	for _, c := range cases {
		if c.Threads == 0 || c.Platform != "" || c.Shards > 1 {
			continue
		}
		switch c.Kind {
		case "":
			des, haveDes = c, true
		case "twin":
			twin, haveTwin = c, true
		}
	}
	if !haveDes || !haveTwin {
		t.Fatalf("report lacks the wide-topology des+twin pair")
	}
	return des, twin
}

func apePct(pred, ref int64) float64 {
	d := float64(pred - ref)
	if d < 0 {
		d = -d
	}
	return 100 * d / float64(ref)
}

// The quick XL pair run live: the twin's prediction for the 1024-node
// topology must land within the calibration gate of the DES measurement,
// and the analytical case must not have simulated anything.
func TestXLPairQuick(t *testing.T) {
	var pair []Case
	for _, c := range Matrix(true) {
		if c.Threads > 0 {
			pair = append(pair, c)
		}
	}
	r, err := Run(pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	des, twin := xlPair(t, r.Cases)
	if twin.Dispatches != 0 {
		t.Errorf("twin case dispatched %d events", twin.Dispatches)
	}
	if ape := apePct(twin.VirtualNS, des.VirtualNS); ape > 25 {
		t.Errorf("twin predicts %d ns, DES measures %d ns (APE %.1f%% > 25%%)",
			twin.VirtualNS, des.VirtualNS, ape)
	}
}

// The committed baseline must contain the full-size 1024-node pair and show
// the twin answering at least 100x faster than the DES — the issue's
// speedup acceptance. Wall times are host-dependent, but a 100x margin
// survives any realistic host variance; the committed file records the
// controlled run.
func TestCommittedXLSpeedup(t *testing.T) {
	r, err := ReadFile("../../BENCH_1.json")
	if err != nil {
		t.Fatal(err)
	}
	des, twin := xlPair(t, r.Cases)
	if des.Nodes < 1024 || twin.Nodes < 1024 {
		t.Fatalf("committed pair is not a >=1024-node case (des=%d twin=%d nodes)", des.Nodes, twin.Nodes)
	}
	if twin.WallNS*100 > des.WallNS {
		t.Errorf("committed twin wall %v is not >=100x faster than DES wall %v",
			time.Duration(twin.WallNS), time.Duration(des.WallNS))
	}
	if ape := apePct(twin.VirtualNS, des.VirtualNS); ape > 25 {
		t.Errorf("committed twin predicts %d ns vs DES %d ns (APE %.1f%% > 25%%)",
			twin.VirtualNS, des.VirtualNS, ape)
	}

	// The deterministic columns of the committed pair must be reproducible
	// here and now: virtual time is host-independent by construction, so a
	// mismatch means simulated or predicted behaviour changed since the
	// baseline was recorded.
	if testing.Short() {
		t.Skip("short mode: skip full-size XL determinism replay")
	}
	fresh, err := Run([]Case{
		{Name: des.Name, App: experiments.AppKind(des.App), N: des.N, Threads: des.Threads,
			Nodes: des.Nodes, Iterations: des.Iterations},
		{Name: twin.Name, App: experiments.AppKind(twin.App), N: twin.N, Threads: twin.Threads,
			Nodes: twin.Nodes, Iterations: twin.Iterations, Twin: true},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fd, ft := xlPair(t, fresh.Cases)
	if fd.VirtualNS != des.VirtualNS || fd.Dispatches != des.Dispatches {
		t.Errorf("DES drifted from baseline: virtual %d->%d dispatches %d->%d",
			des.VirtualNS, fd.VirtualNS, des.Dispatches, fd.Dispatches)
	}
	if ft.VirtualNS != twin.VirtualNS {
		t.Errorf("twin drifted from baseline: virtual %d->%d", twin.VirtualNS, ft.VirtualNS)
	}
}
