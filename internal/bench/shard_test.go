package bench

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// shardPair pulls the Mercury sequential/sharded pair out of a case list or
// report: two wide-topology simulated cases on the same platform, one run on
// the sequential kernel and one on 8 shards.
func shardPair(t *testing.T, cases []CaseResult) (seq, sharded CaseResult) {
	t.Helper()
	var haveSeq, haveSharded bool
	for _, c := range cases {
		if c.Threads == 0 || c.Platform != "Mercury" || c.Kind != "" {
			continue
		}
		if c.Shards > 1 {
			sharded, haveSharded = c, true
		} else {
			seq, haveSeq = c, true
		}
	}
	if !haveSeq || !haveSharded {
		t.Fatalf("report lacks the Mercury sequential+sharded pair")
	}
	return seq, sharded
}

// The quick Mercury pair run live: sharding is a wall-clock knob only, so
// the sharded case must reproduce the sequential case's deterministic
// columns exactly — same virtual elapsed time, same dispatch count.
func TestShardPairQuick(t *testing.T) {
	var pair []Case
	for _, c := range Matrix(true) {
		if c.Platform == "Mercury" && c.Threads > 0 {
			pair = append(pair, c)
		}
	}
	r, err := Run(pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	seq, sharded := shardPair(t, r.Cases)
	if sharded.Shards != 8 {
		t.Errorf("sharded case ran with %d shards, want 8", sharded.Shards)
	}
	if sharded.VirtualNS != seq.VirtualNS || sharded.Dispatches != seq.Dispatches {
		t.Errorf("sharding changed deterministic outputs: virtual %d vs %d, dispatches %d vs %d",
			seq.VirtualNS, sharded.VirtualNS, seq.Dispatches, sharded.Dispatches)
	}
}

// The committed baseline must contain the full-size Mercury pair with
// identical deterministic columns — sharding may never move virtual_ns or
// dispatches, on any host. The >=2x wall-clock speedup acceptance is
// asserted only when the committed run had at least 8 cores to shard onto
// (recorded in the report's gomaxprocs): a single-core recording is honest
// about having nothing to parallelise, and fabricating a speedup it could
// not measure would defeat the gate's purpose.
func TestCommittedShardSpeedup(t *testing.T) {
	r, err := ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Fatal(err)
	}
	seq, sharded := shardPair(t, r.Cases)
	if seq.Nodes < 1024 || sharded.Nodes < 1024 {
		t.Fatalf("committed pair is not a >=1024-node case (seq=%d sharded=%d nodes)", seq.Nodes, sharded.Nodes)
	}
	if sharded.Shards < 8 {
		t.Fatalf("committed sharded case used only %d shards", sharded.Shards)
	}
	if sharded.VirtualNS != seq.VirtualNS || sharded.Dispatches != seq.Dispatches {
		t.Errorf("committed pair disagrees on deterministic outputs: virtual %d vs %d, dispatches %d vs %d",
			seq.VirtualNS, sharded.VirtualNS, seq.Dispatches, sharded.Dispatches)
	}
	if r.GOMAXPROCS >= 8 {
		if sharded.WallNS*2 > seq.WallNS {
			t.Errorf("committed sharded wall %v is not >=2x faster than sequential wall %v at GOMAXPROCS=%d",
				time.Duration(sharded.WallNS), time.Duration(seq.WallNS), r.GOMAXPROCS)
		}
	} else {
		t.Logf("committed run recorded GOMAXPROCS=%d: speedup gate dormant (shards had no cores to spread onto); identity gate above still enforced", r.GOMAXPROCS)
	}

	// The deterministic columns must be reproducible here and now, at both
	// shard counts: a drift means simulated behaviour changed since the
	// baseline was recorded, a seq/sharded split means determinism broke.
	if testing.Short() {
		t.Skip("short mode: skip full-size Mercury determinism replay")
	}
	fresh, err := Run([]Case{
		{Name: seq.Name, App: experiments.AppKind(seq.App), N: seq.N, Threads: seq.Threads,
			Nodes: seq.Nodes, Iterations: seq.Iterations, Platform: seq.Platform},
		{Name: sharded.Name, App: experiments.AppKind(sharded.App), N: sharded.N, Threads: sharded.Threads,
			Nodes: sharded.Nodes, Iterations: sharded.Iterations, Platform: sharded.Platform, Shards: sharded.Shards},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, fsh := shardPair(t, fresh.Cases)
	if fs.VirtualNS != seq.VirtualNS || fs.Dispatches != seq.Dispatches {
		t.Errorf("sequential Mercury case drifted from baseline: virtual %d->%d dispatches %d->%d",
			seq.VirtualNS, fs.VirtualNS, seq.Dispatches, fs.Dispatches)
	}
	if fsh.VirtualNS != sharded.VirtualNS || fsh.Dispatches != sharded.Dispatches {
		t.Errorf("sharded Mercury case drifted from baseline: virtual %d->%d dispatches %d->%d",
			sharded.VirtualNS, fsh.VirtualNS, sharded.Dispatches, fsh.Dispatches)
	}
}

// Committed reports written before Platform/Shards existed must keep
// validating: absent keys decode to zero values, which the schema accepts
// and the selectors treat as "CSPI, sequential".
func TestCommittedBaselinesStillValidate(t *testing.T) {
	for _, path := range []string{"../../BENCH_0.json", "../../BENCH_1.json"} {
		r, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, c := range r.Cases {
			if c.Platform != "" || c.Shards != 0 {
				t.Fatalf("%s: case %q unexpectedly carries platform/shards (%q, %d)", path, c.Name, c.Platform, c.Shards)
			}
		}
	}
}
