package bench

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// tinyCases is a fast sub-matrix covering every case shape: clean, faulted,
// traced, analytically priced, and the micro case.
func tinyCases() []Case {
	return []Case{
		{Name: "fft64.clean", App: experiments.AppFFT2D, N: 64, Nodes: 4, Iterations: 2},
		{Name: "fft64.faulted", App: experiments.AppFFT2D, N: 64, Nodes: 4, Iterations: 2, Faulted: true},
		{Name: "ct64.clean.traced", App: experiments.AppCornerTurn, N: 64, Nodes: 4, Iterations: 2, Traced: true},
		{Name: "fft64.twin", App: experiments.AppFFT2D, N: 64, Nodes: 4, Iterations: 2, Twin: true},
		{Name: "fft64.mercury.s2", App: experiments.AppFFT2D, N: 64, Nodes: 4, Iterations: 2, Platform: "Mercury", Shards: 2},
		{Name: "stream64.mixed", App: experiments.AppFFT2D, N: 64, Nodes: 4, Iterations: 8, Stream: true},
		{Name: "fft64.exec", App: experiments.AppFFT2D, N: 64, Nodes: 4, Iterations: 2, Exec: true},
		{Name: "kernel.schedule", Events: 10_000},
	}
}

func TestRunValidatesAndFingerprints(t *testing.T) {
	r, err := Run(tinyCases(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatalf("fresh report fails its own schema: %v", err)
	}
	fp := r.Fingerprint()
	if strings.Count(fp, "\n") != len(r.Cases) {
		t.Fatalf("fingerprint has wrong line count:\n%s", fp)
	}
	for _, c := range r.Cases {
		if !strings.Contains(fp, c.Name+" ") {
			t.Fatalf("fingerprint missing case %q", c.Name)
		}
	}
}

// TestDeterministicFields is the determinism gate: two fresh runs of the
// same cases must agree exactly on every virtual-time output. (Wall times
// and allocation counts are host noise and excluded by Fingerprint.)
func TestDeterministicFields(t *testing.T) {
	a, err := Run(tinyCases(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyCases(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("deterministic fields changed between runs:\n--- first\n%s--- second\n%s", a.Fingerprint(), b.Fingerprint())
	}
}

func TestMatrixShape(t *testing.T) {
	for _, quick := range []bool{false, true} {
		cases := Matrix(quick)
		var traced, faulted, micro, wide, wideTwin, wideSharded, streamed, execs int
		seen := map[string]bool{}
		for _, c := range cases {
			if seen[c.Name] {
				t.Fatalf("duplicate case name %q", c.Name)
			}
			seen[c.Name] = true
			if c.Traced {
				traced++
			}
			if c.Faulted {
				faulted++
			}
			if c.App == "" {
				micro++
				if c.Events <= 0 {
					t.Fatalf("micro case %q has no event count", c.Name)
				}
			}
			if c.Stream {
				streamed++
				if c.Iterations <= 0 {
					t.Fatalf("stream case %q offers no frames", c.Name)
				}
			}
			if c.Exec {
				execs++
				if c.Traced || c.Faulted || c.Twin || c.Stream || c.Shards > 1 {
					t.Fatalf("exec case %q mixes modes", c.Name)
				}
			}
			if c.Threads > 0 {
				wide++
				if c.Twin {
					wideTwin++
				}
				if c.Shards > 1 {
					wideSharded++
					if c.Platform != "Mercury" {
						t.Fatalf("sharded case %q targets %q; only distributed-fabric platforms shard", c.Name, c.Platform)
					}
				}
				if c.Nodes < 1024 {
					t.Fatalf("wide case %q has only %d nodes", c.Name, c.Nodes)
				}
			}
		}
		if micro != 1 {
			t.Fatalf("quick=%v: %d micro cases, want 1", quick, micro)
		}
		// The wide-topology pairs: the CSPI tables priced by the DES and the
		// twin, plus the Mercury sequential/sharded pair, all at >= 1024 nodes
		// even in the quick matrix.
		if wide != 4 || wideTwin != 1 || wideSharded != 1 {
			t.Fatalf("quick=%v: %d wide cases (%d twin, %d sharded), want des+twin and seq+sharded pairs", quick, wide, wideTwin, wideSharded)
		}
		if streamed != 1 {
			t.Fatalf("quick=%v: %d stream cases, want 1", quick, streamed)
		}
		if execs != 1 {
			t.Fatalf("quick=%v: %d exec cases, want 1", quick, execs)
		}
		sims := len(cases) - micro - wide - streamed - execs
		if traced != sims/2 || faulted != sims/2 {
			t.Fatalf("quick=%v: matrix unbalanced: %d sims, %d traced, %d faulted", quick, sims, traced, faulted)
		}
	}
}

// TestSummary: the cross-case roll-up is computed with the shared stats
// estimators over every case that actually dispatched events.
func TestSummary(t *testing.T) {
	r, err := Run(tinyCases(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary == nil {
		t.Fatal("report has no summary")
	}
	want := 0
	for _, c := range r.Cases {
		if c.Dispatches > 0 {
			want++
		}
	}
	sum := r.Summary
	if sum.Cases != want {
		t.Errorf("summary covers %d cases, want %d (twin cases price without simulating)", sum.Cases, want)
	}
	if sum.WallNSTotal <= 0 {
		t.Errorf("wall_ns_total = %d", sum.WallNSTotal)
	}
	if sum.EventsPerSecMin > sum.EventsPerSecMean || sum.EventsPerSecMean > sum.EventsPerSecMax {
		t.Errorf("mean %g outside [%g, %g]", sum.EventsPerSecMean, sum.EventsPerSecMin, sum.EventsPerSecMax)
	}
	if sum.EventsPerSecP50 < sum.EventsPerSecMin || sum.EventsPerSecP50 > sum.EventsPerSecMax {
		t.Errorf("p50 %g outside [%g, %g]", sum.EventsPerSecP50, sum.EventsPerSecMin, sum.EventsPerSecMax)
	}
	if sum.AllocsPerEvtMean <= 0 {
		t.Errorf("allocs_per_event_mean = %g", sum.AllocsPerEvtMean)
	}
	// A report with no dispatching cases has nothing to summarise.
	twinOnly := &Report{Cases: []CaseResult{{Name: "t", Kind: "twin", WallNS: 5}}}
	if Summarize(twinOnly) != nil {
		t.Error("twin-only report produced a summary")
	}
}

func TestValidateRejectsBadReports(t *testing.T) {
	good, err := Run([]Case{{Name: "kernel.schedule", Events: 1000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		fn   func(r *Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "sage-bench/0" }},
		{"no cases", func(r *Report) { r.Cases = nil }},
		{"missing name", func(r *Report) { r.Cases[0].Name = "" }},
		{"duplicate name", func(r *Report) { r.Cases = append(r.Cases, r.Cases[0]) }},
		{"zero dispatches", func(r *Report) { r.Cases[0].Dispatches = 0 }},
		{"zero wall", func(r *Report) { r.Cases[0].WallNS = 0 }},
		{"unknown kind", func(r *Report) { r.Cases[0].Kind = "oracle" }},
		{"twin that simulated", func(r *Report) { r.Cases[0].Kind = "twin" }}, // dispatches != 0
		{"negative shards", func(r *Report) { r.Cases[0].Shards = -1 }},
		{"exec with dispatches", func(r *Report) { r.Cases[0].Kind = "exec" }},
		{"exec missing hash", func(r *Report) {
			r.Cases[0].Kind = "exec"
			r.Cases[0].VirtualNS = 0
			r.Cases[0].Dispatches = 0
			r.Cases[0].EventsPerSec = 0
			r.Cases[0].OutputHash = "deadbeef"
		}},
		{"sharded twin", func(r *Report) {
			r.Cases[0].Kind = "twin"
			r.Cases[0].Dispatches = 0
			r.Cases[0].EventsPerSec = 0
			r.Cases[0].Shards = 4
		}},
	}
	for _, m := range mutate {
		r := *good
		r.Cases = append([]CaseResult(nil), good.Cases...)
		m.fn(&r)
		if err := Validate(&r); err == nil {
			t.Errorf("%s: validation passed", m.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r, err := Run([]Case{{Name: "kernel.schedule", Events: 1000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/BENCH_test.json"
	if err := WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != r.Fingerprint() {
		t.Fatal("round trip changed deterministic fields")
	}
}
