package conformance

import (
	"fmt"

	"repro/internal/funclib"
	"repro/internal/model"
)

// The shrinker turns an arbitrary failing case into a minimal reproducer by
// greedy delta-debugging: propose a structurally smaller candidate, re-run the
// full differential check, and keep the candidate whenever it still fails
// (with any failure — chasing the smallest graph that misbehaves at all beats
// preserving one specific symptom). Transformations, tried in order on every
// round:
//
//   - drop one sink function (when more than one remains);
//   - bypass one operator whose first input matches its output shape, wiring
//     its consumers straight to its producer;
//   - prune functions whose outputs nobody consumes (to fixpoint — also run
//     after every drop/bypass, so severed upstream chains fall away with the
//     cut);
//   - collapse the whole case to a single node;
//   - drop the fault plan, reduce iterations to one, set every thread count
//     to one;
//   - halve every matrix dimension.
//
// Each accepted candidate restarts the round, so transformations compound
// (halving applies repeatedly, bypassing one op exposes the next). The
// process is deterministic and bounded by a check budget.

// ShrinkResult reports what shrinking achieved.
type ShrinkResult struct {
	Case    *Case    // the smallest failing case found
	Failure *Failure // its failure
	Checks  int      // differential checks spent

	// opt re-checks candidates under the same options that produced the
	// original failure.
	opt CheckOptions
}

// DefaultShrinkChecks bounds the differential checks one shrink may spend.
const DefaultShrinkChecks = 400

// Shrink minimizes a failing case. The original case is not modified; every
// candidate is a corpus-format round-trip clone. maxChecks <= 0 selects
// DefaultShrinkChecks.
func Shrink(c *Case, opt CheckOptions, maxChecks int) *ShrinkResult {
	if maxChecks <= 0 {
		maxChecks = DefaultShrinkChecks
	}
	res := &ShrinkResult{Case: c.Clone(), Failure: c.Check(opt), Checks: 1, opt: opt}
	if res.Failure == nil {
		return res // not failing; nothing to shrink
	}
	for res.Checks < maxChecks {
		cand, fail := nextSmaller(res, maxChecks)
		if cand == nil {
			break // no transformation helps anymore: local minimum
		}
		res.Case, res.Failure = cand, fail
	}
	return res
}

// nextSmaller tries every transformation on res.Case and returns the first
// candidate that still fails, charging every attempted check to res.Checks.
func nextSmaller(res *ShrinkResult, maxChecks int) (*Case, *Failure) {
	cur := res.Case
	try := func(cand *Case) (*Case, *Failure) {
		if cand == nil || res.Checks >= maxChecks || !cand.valid() {
			return nil, nil
		}
		res.Checks++
		if fail := cand.Check(res.opt); fail != nil {
			return cand, fail
		}
		return nil, nil
	}

	// Structural reductions first: each removes whole tasks.
	sinks := SinkNames(cur.App)
	if len(sinks) > 1 {
		for _, s := range sinks {
			if cand, fail := try(dropSink(cur, s)); cand != nil {
				return cand, fail
			}
		}
	}
	for _, f := range cur.App.Functions {
		if cand, fail := try(bypassOp(cur, f.Name)); cand != nil {
			return cand, fail
		}
	}
	if cand, fail := try(pruneDead(cur)); cand != nil {
		return cand, fail
	}
	// Environmental reductions: same graph, simpler run.
	if cur.Nodes > 1 {
		if cand, fail := try(oneNode(cur)); cand != nil {
			return cand, fail
		}
	}
	if !cur.Faults.Empty() {
		cand := cur.Clone()
		cand.Faults = nil
		if cand, fail := try(cand); cand != nil {
			return cand, fail
		}
	}
	if cur.Iterations > 1 {
		cand := cur.Clone()
		cand.Iterations = 1
		if cand, fail := try(cand); cand != nil {
			return cand, fail
		}
	}
	if cand, fail := try(oneThread(cur)); cand != nil {
		return cand, fail
	}
	// Data reduction last: halve every matrix dimension.
	if cand, fail := try(halveTypes(cur)); cand != nil {
		return cand, fail
	}
	return nil, nil
}

// valid re-validates a mutated candidate end to end; transformations are
// allowed to produce illegal models (e.g. halving below a kind's constraint)
// and rely on this gate to discard them.
func (c *Case) valid() bool {
	if c.Nodes < 1 || c.Iterations < 1 {
		return false
	}
	if err := c.App.Validate(); err != nil {
		return false
	}
	if err := funclib.ValidateApp(c.App); err != nil {
		return false
	}
	if err := c.Mapping.Validate(c.App, c.Nodes); err != nil {
		return false
	}
	if c.Perm != nil && !validPerm(c.Perm, c.Nodes) {
		return false
	}
	if !c.Faults.Empty() {
		if err := c.Faults.Validate(); err != nil {
			return false
		}
		if err := c.Faults.CheckNodes(c.Nodes); err != nil {
			return false
		}
	}
	return true
}

// removeFunction deletes fn plus every arc touching it from the case, and its
// entry from the mapping.
func removeFunction(c *Case, fn *model.Function) {
	app := c.App
	funcs := app.Functions[:0]
	for _, f := range app.Functions {
		if f != fn {
			funcs = append(funcs, f)
		}
	}
	app.Functions = funcs
	arcs := app.Arcs[:0]
	for _, a := range app.Arcs {
		if a.From.Fn != fn && a.To.Fn != fn {
			arcs = append(arcs, a)
		}
	}
	app.Arcs = arcs
	delete(c.Mapping.Assign, fn.Name)
	app.AssignIDs()
}

// pruneDeadInPlace removes every function whose outputs are all unconsumed
// (sources and operators severed from any sink), repeated to fixpoint, and
// reports whether anything fell away.
func pruneDeadInPlace(c *Case) bool {
	removed := false
	for {
		consumed := map[*model.Port]bool{}
		for _, a := range c.App.Arcs {
			consumed[a.From] = true
		}
		var dead *model.Function
		for _, f := range c.App.Functions {
			if len(f.Outputs) == 0 {
				continue // sinks are live by definition
			}
			live := false
			for _, p := range f.Outputs {
				if consumed[p] {
					live = true
					break
				}
			}
			if !live {
				dead = f
				break
			}
		}
		if dead == nil {
			return removed
		}
		removeFunction(c, dead)
		removed = true
	}
}

// dropSink returns a clone with the named sink removed and the chain that
// only fed it pruned away, or nil when the sink is absent.
func dropSink(cur *Case, name string) *Case {
	cand := cur.Clone()
	f := cand.App.Function(name)
	if f == nil {
		return nil
	}
	removeFunction(cand, f)
	pruneDeadInPlace(cand)
	return cand
}

// bypassOp returns a clone with the named operator cut out of the graph:
// every arc leaving it is rewired to the producer of its first input, and
// anything the cut orphans (e.g. the second operand chain of an add2) is
// pruned. Legal only for interior ops whose first input and single output
// share a shape — shape-changing kinds such as fir_decimate_rows are left
// alone. Returns nil when not applicable.
func bypassOp(cur *Case, name string) *Case {
	cand := cur.Clone()
	f := cand.App.Function(name)
	if f == nil || len(f.Inputs) == 0 || len(f.Outputs) != 1 {
		return nil // sources and sinks are handled by other transforms
	}
	in, out := f.Inputs[0], f.Outputs[0]
	if in.Type.Rows != out.Type.Rows || in.Type.Cols != out.Type.Cols {
		return nil
	}
	var producer *model.Port
	for _, a := range cand.App.Arcs {
		if a.To == in {
			producer = a.From
			break
		}
	}
	if producer == nil {
		return nil
	}
	rewired := false
	for _, a := range cand.App.Arcs {
		if a.From == out {
			a.From = producer
			rewired = true
		}
	}
	if !rewired {
		return nil // output feeds nobody; pruneDead handles it
	}
	removeFunction(cand, f)
	pruneDeadInPlace(cand)
	return cand
}

// pruneDead returns a clone with dead chains removed, or nil when nothing was
// dead.
func pruneDead(cur *Case) *Case {
	cand := cur.Clone()
	if !pruneDeadInPlace(cand) {
		return nil
	}
	return cand
}

// oneNode collapses the case onto a single node: all threads on node 0, the
// permutation trivial, and the fault plan dropped when it addresses nodes
// that no longer exist.
func oneNode(cur *Case) *Case {
	cand := cur.Clone()
	cand.Nodes = 1
	for _, nodes := range cand.Mapping.Assign {
		for i := range nodes {
			nodes[i] = 0
		}
	}
	cand.Perm = []int{0}
	if !cand.Faults.Empty() && cand.Faults.CheckNodes(1) != nil {
		cand.Faults = nil
	}
	return cand
}

// oneThread sets every function to a single thread, or nil when all already
// are.
func oneThread(cur *Case) *Case {
	cand := cur.Clone()
	changed := false
	for _, f := range cand.App.Functions {
		if f.Threads > 1 {
			f.Threads = 1
			cand.Mapping.Assign[f.Name] = cand.Mapping.Assign[f.Name][:1]
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return cand
}

// halveTypes halves every matrix dimension (floor, min 1), re-interning the
// shrunken types (several shapes may collapse onto one) and clamping thread
// counts to the new striped extents. Returns nil when every type is already
// 1x1. Kind constraints (power-of-two FFT extents, decimation divisibility)
// may break; the validity gate discards those candidates.
func halveTypes(cur *Case) *Case {
	cand := cur.Clone()
	changed := false
	halve := func(d int) int {
		if d > 1 {
			return d / 2
		}
		return d
	}
	canon := map[string]*model.DataType{}
	repoint := func(p *model.Port) {
		nr, nc := halve(p.Type.Rows), halve(p.Type.Cols)
		if nr != p.Type.Rows || nc != p.Type.Cols {
			changed = true
		}
		name := fmt.Sprintf("m%dx%d", nr, nc)
		t, ok := canon[name]
		if !ok {
			t = &model.DataType{Name: name, Rows: nr, Cols: nc, Elem: p.Type.Elem}
			canon[name] = t
		}
		p.Type = t
	}
	for _, f := range cand.App.Functions {
		for _, p := range f.Inputs {
			repoint(p)
		}
		for _, p := range f.Outputs {
			repoint(p)
		}
	}
	if !changed {
		return nil
	}
	cand.App.Types = canon
	for _, f := range cand.App.Functions {
		maxT := f.Threads
		for _, p := range append(append([]*model.Port{}, f.Inputs...), f.Outputs...) {
			switch p.Striping {
			case model.ByRows:
				maxT = min(maxT, p.Type.Rows)
			case model.ByCols:
				maxT = min(maxT, p.Type.Cols)
			}
		}
		if maxT < f.Threads {
			f.Threads = maxT
			cand.Mapping.Assign[f.Name] = cand.Mapping.Assign[f.Name][:maxT]
		}
	}
	return cand
}
