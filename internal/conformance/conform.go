package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Config tunes a conformance campaign over a seed range.
type Config struct {
	// Quick bounds generated graph and platform sizes (CI smoke runs).
	Quick bool
	// Parallelism is the number of concurrent checker workers; <= 0 means 1.
	// Parallelism affects wall clock only — the report is byte-identical for
	// any value (itself one of the subsystem's determinism claims).
	Parallelism int
	// Mutate runs the mutation self-test: a simulated runtime miscomputation
	// is injected after every run, every seed must FAIL, and each failure must
	// shrink to a tiny reproducer. Proves the harness detects a broken runtime.
	Mutate bool
	// MutateExec runs the mutation self-test on the generated-code path
	// instead: the executed program's output is corrupted before comparison,
	// every seed must FAIL on the exec variant, and each failure must shrink.
	// Proves the compiled-code differential check detects a broken emitter.
	MutateExec bool
	// CorpusDir, when set, receives a reproducer file seed-<seed>.case for
	// every (shrunken) failing seed.
	CorpusDir string
	// MaxShrinkChecks bounds the differential checks each shrink may spend;
	// <= 0 selects DefaultShrinkChecks.
	MaxShrinkChecks int
	// NoShrink reports raw failures without minimizing them.
	NoShrink bool
}

// SeedResult is the outcome of one seed.
type SeedResult struct {
	Seed    int64
	GenErr  string   // generator rejected the seed (a bug in the generator)
	Tasks   int      // generated graph size
	Arcs    int
	Nodes   int
	Failure *Failure // nil when every invariant held
	// Shrunk describes the minimized reproducer when Failure != nil and
	// shrinking ran: tasks/arcs of the reduced case and the checks spent.
	ShrunkTasks  int
	ShrunkArcs   int
	ShrinkChecks int
	CorpusFile   string // reproducer path when CorpusDir was set

	// repro is the (shrunken) failing case, held for corpus writing.
	repro *Case
}

// Failed reports whether the seed misbehaved (generator error or check
// failure).
func (r *SeedResult) Failed() bool { return r.GenErr != "" || r.Failure != nil }

// Report is the outcome of a campaign.
type Report struct {
	Config  Config
	Seeds   []SeedResult // ascending seed order regardless of parallelism
	Checked int          // seeds that generated and ran
	Passed  int
	Failed  int
}

// Run executes the campaign over seeds [from, to) and returns the report.
// Failing cases are shrunk and, when cfg.CorpusDir is set, written as
// reproducer files.
func Run(from, to int64, cfg Config) (*Report, error) {
	if to < from {
		return nil, fmt.Errorf("conformance: bad seed range [%d, %d)", from, to)
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = 1
	}
	n := int(to - from)
	results := make([]SeedResult, n)
	seeds := make(chan int, n)
	for i := 0; i < n; i++ {
		seeds <- i
	}
	close(seeds)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range seeds {
				results[i] = runSeed(from+int64(i), cfg)
			}
		}()
	}
	wg.Wait()

	rep := &Report{Config: cfg, Seeds: results}
	for i := range results {
		r := &results[i]
		if r.GenErr == "" {
			rep.Checked++
		}
		if r.Failed() {
			rep.Failed++
		} else {
			rep.Passed++
		}
	}
	// Corpus files are written after the pool so a crash mid-campaign never
	// leaves a half-written reproducer, and writes happen in seed order.
	if cfg.CorpusDir != "" {
		if err := os.MkdirAll(cfg.CorpusDir, 0o755); err != nil {
			return rep, err
		}
		for i := range results {
			r := &results[i]
			if r.Failure == nil || r.repro == nil {
				continue
			}
			path := filepath.Join(cfg.CorpusDir, fmt.Sprintf("seed-%d.case", r.Seed))
			if err := WriteCaseFile(path, r.repro); err != nil {
				return rep, fmt.Errorf("conformance: writing reproducer for seed %d: %w", r.Seed, err)
			}
			r.CorpusFile = path
		}
	}
	return rep, nil
}

// runSeed generates, checks and (on failure) shrinks one seed.
func runSeed(seed int64, cfg Config) SeedResult {
	r := SeedResult{Seed: seed}
	c, err := Generate(seed, GenConfig{Quick: cfg.Quick})
	if err != nil {
		r.GenErr = err.Error()
		return r
	}
	r.Tasks, r.Arcs, r.Nodes = c.Tasks(), c.Arcs(), c.Nodes
	opt := CheckOptions{MutateRuntime: cfg.Mutate, MutateExec: cfg.MutateExec}
	r.Failure = c.Check(opt)
	if r.Failure == nil {
		return r
	}
	if cfg.NoShrink {
		r.repro = c
		r.ShrunkTasks, r.ShrunkArcs = c.Tasks(), c.Arcs()
		return r
	}
	sr := Shrink(c, opt, cfg.MaxShrinkChecks)
	r.repro = sr.Case
	r.Failure = sr.Failure
	r.ShrunkTasks, r.ShrunkArcs, r.ShrinkChecks = sr.Case.Tasks(), sr.Case.Arcs(), sr.Checks
	return r
}

// Format renders the report deterministically: identical input seeds and
// config produce byte-identical text for any parallelism.
func (rep *Report) Format() string {
	var b strings.Builder
	mode := "verify"
	switch {
	case rep.Config.Mutate:
		mode = "mutate (every seed must fail and shrink)"
	case rep.Config.MutateExec:
		mode = "mutate-exec (every seed must fail on the generated-code path and shrink)"
	}
	fmt.Fprintf(&b, "conformance: %d seeds, mode %s\n", len(rep.Seeds), mode)
	for i := range rep.Seeds {
		r := &rep.Seeds[i]
		switch {
		case r.GenErr != "":
			fmt.Fprintf(&b, "seed %d: GENERATOR ERROR: %s\n", r.Seed, r.GenErr)
		case r.Failure != nil:
			fmt.Fprintf(&b, "seed %d: FAIL %s (graph %dt/%da on %dn",
				r.Seed, r.Failure, r.Tasks, r.Arcs, r.Nodes)
			if r.ShrunkTasks > 0 {
				fmt.Fprintf(&b, ", shrunk to %dt/%da in %d checks", r.ShrunkTasks, r.ShrunkArcs, r.ShrinkChecks)
			}
			b.WriteString(")")
			if r.CorpusFile != "" {
				fmt.Fprintf(&b, " -> %s", filepath.Base(r.CorpusFile))
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "conformance: %d/%d seeds passed, %d failed\n",
		rep.Passed, len(rep.Seeds), rep.Failed)
	return b.String()
}

// OK reports whether the campaign met its expectation: in verify mode every
// seed passes; in the mutate modes every seed fails (the harness caught the
// injected miscomputation each time) and every shrunk reproducer is tiny.
func (rep *Report) OK() bool {
	if rep.Config.Mutate || rep.Config.MutateExec {
		for i := range rep.Seeds {
			r := &rep.Seeds[i]
			if r.GenErr != "" || r.Failure == nil {
				return false
			}
			if !rep.Config.NoShrink && r.ShrunkTasks > 5 {
				return false
			}
		}
		return true
	}
	return rep.Failed == 0
}

// FailedSeeds lists the seeds that misbehaved, ascending.
func (rep *Report) FailedSeeds() []int64 {
	var out []int64
	for i := range rep.Seeds {
		if rep.Seeds[i].Failed() {
			out = append(out, rep.Seeds[i].Seed)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
