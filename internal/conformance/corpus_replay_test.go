package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusReplay re-runs every committed reproducer in testdata/corpus
// through the complete differential check on each `go test`: a case that once
// exposed a bug (or pins a degenerate shape) keeps guarding it forever. New
// reproducers land here by copying the seed-<n>.case file sage-conform writes
// on failure.
func TestCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".case") {
			continue
		}
		n++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			c, err := ReadCaseFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("unreadable reproducer: %v", err)
			}
			if fail := c.Check(CheckOptions{}); fail != nil {
				t.Fatalf("reproducer regressed: %s", fail)
			}
		})
	}
	if n == 0 {
		t.Fatal("corpus directory holds no .case files")
	}
}
