package conformance

import (
	"strings"
	"testing"
)

// TestExecCampaign is the acceptance campaign for the generated-code path:
// a 100-seed sweep in which every seed's emitted-program execution must be
// bitwise-equal to the sequential oracle and to the sim-kernel run (Check
// wires the exec variant into every seed automatically).
func TestExecCampaign(t *testing.T) {
	n := int64(100)
	if testing.Short() {
		n = 20
	}
	rep, err := Run(0, n, Config{Quick: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("exec campaign failures:\n%s", rep.Format())
	}
}

// TestExecMutationCaughtEverySeed: with a sign-flipped sink sample injected
// into the generated-code execution, the exec variant must catch the
// corruption on every seed of a 100-seed sweep. NoShrink keeps the sweep
// wide and cheap; shrinking quality is covered separately below.
func TestExecMutationCaughtEverySeed(t *testing.T) {
	n := int64(100)
	if testing.Short() {
		n = 20
	}
	rep, err := Run(0, n, Config{Quick: true, Parallelism: 8, MutateExec: true, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Seeds {
		r := &rep.Seeds[i]
		if r.GenErr != "" {
			t.Fatalf("seed %d: generator: %s", r.Seed, r.GenErr)
		}
		if r.Failure == nil {
			t.Errorf("seed %d: injected exec corruption NOT caught", r.Seed)
			continue
		}
		if !strings.HasPrefix(r.Failure.Variant, "exec") {
			t.Errorf("seed %d: corruption caught by variant %q, want an exec variant", r.Seed, r.Failure.Variant)
		}
	}
	if !rep.OK() {
		t.Errorf("mutate-exec report not OK:\n%s", rep.Format())
	}
}

// TestExecMutationShrinks: an exec-path corruption must not just be caught
// but shrink to a tiny reproducer, exactly like a sim-kernel miscomputation.
func TestExecMutationShrinks(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 3
	}
	rep, err := Run(0, n, Config{Quick: true, Parallelism: 4, MutateExec: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Seeds {
		r := &rep.Seeds[i]
		if r.Failure == nil {
			t.Errorf("seed %d: injected exec corruption NOT caught", r.Seed)
			continue
		}
		if !strings.HasPrefix(r.Failure.Variant, "exec") {
			t.Errorf("seed %d: shrunk failure on variant %q, want an exec variant", r.Seed, r.Failure.Variant)
		}
		if r.ShrunkTasks > 5 {
			t.Errorf("seed %d: shrunk reproducer still has %d tasks (want <= 5)", r.Seed, r.ShrunkTasks)
		}
	}
	if !rep.OK() {
		t.Errorf("mutate-exec report not OK:\n%s", rep.Format())
	}
}

// TestExecIterationSemantics pins the contract the exec variant relies on:
// the generated program captures every iteration, and each is independently
// oracle-checkable (the source is iteration-addressed, kinds are stateless).
func TestExecIterationSemantics(t *testing.T) {
	c, err := Generate(1, GenConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Iterations = 3
	if f := c.Check(CheckOptions{}); f != nil {
		t.Fatalf("3-iteration check failed: %s", f)
	}
}
