package conformance

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/funclib"
	"repro/internal/model"
	"repro/internal/platforms"
)

// Corpus text format. One file is one reproducer: a header of scalar fields,
// then the model, mapping and (optionally) fault-plan sections in their own
// native text formats, delimited by "=== <section>" lines (no native format
// uses a line starting with "==="):
//
//	conform-case v1
//	seed 42
//	platform CSPI
//	nodes 3
//	iterations 2
//	perm 2 0 1
//	=== model
//	app conform_42
//	...
//	=== mapping
//	mapping conform_42
//	...
//	=== faults
//	seed 9
//	drop link=* rate=0.2
//	=== end
//
// Failing cases are written into a corpus directory and replayed by
// TestCorpusReplay on every `go test`, so a bug once caught stays caught.

const caseMagic = "conform-case v1"

// WriteCase serialises a case.
func WriteCase(w io.Writer, c *Case) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", caseMagic)
	fmt.Fprintf(bw, "seed %d\n", c.Seed)
	fmt.Fprintf(bw, "platform %s\n", c.Platform)
	fmt.Fprintf(bw, "nodes %d\n", c.Nodes)
	fmt.Fprintf(bw, "iterations %d\n", c.Iterations)
	if len(c.Perm) > 0 {
		parts := make([]string, len(c.Perm))
		for i, p := range c.Perm {
			parts[i] = strconv.Itoa(p)
		}
		fmt.Fprintf(bw, "perm %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintln(bw, "=== model")
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := c.App.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(bw, "=== mapping")
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := c.Mapping.WriteText(w, c.App.Name); err != nil {
		return err
	}
	if !c.Faults.Empty() {
		fmt.Fprintln(bw, "=== faults")
		fmt.Fprint(bw, c.Faults.String())
	}
	fmt.Fprintln(bw, "=== end")
	return bw.Flush()
}

// ReadCase parses and validates a serialised case.
func ReadCase(r io.Reader) (*Case, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	c := &Case{Iterations: 1}
	lineNo := 0
	fail := func(format string, args ...any) (*Case, error) {
		return nil, fmt.Errorf("conformance: case line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("conformance: empty case file")
	}
	lineNo++
	if strings.TrimSpace(sc.Text()) != caseMagic {
		return fail("bad magic %q, want %q", strings.TrimSpace(sc.Text()), caseMagic)
	}

	// Header fields until the first section marker.
	section := ""
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "=== ") {
			section = strings.TrimSpace(strings.TrimPrefix(line, "=== "))
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "seed", "nodes", "iterations":
			if len(fields) != 2 {
				return fail("%s wants one integer", fields[0])
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return fail("bad %s %q", fields[0], fields[1])
			}
			switch fields[0] {
			case "seed":
				c.Seed = n
			case "nodes":
				c.Nodes = int(n)
			case "iterations":
				c.Iterations = int(n)
			}
		case "platform":
			if len(fields) != 2 {
				return fail("platform wants one name")
			}
			c.Platform = fields[1]
		case "perm":
			for _, f := range fields[1:] {
				p, err := strconv.Atoi(f)
				if err != nil {
					return fail("bad perm entry %q", f)
				}
				c.Perm = append(c.Perm, p)
			}
		default:
			return fail("unknown header field %q", fields[0])
		}
	}

	// Sections: collect raw text, then hand to the native parsers.
	bodies := map[string]*bytes.Buffer{}
	for section != "" && section != "end" {
		buf := &bytes.Buffer{}
		if _, dup := bodies[section]; dup {
			return fail("duplicate section %q", section)
		}
		bodies[section] = buf
		next := ""
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if strings.HasPrefix(strings.TrimSpace(line), "=== ") {
				next = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "=== "))
				break
			}
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
		if next == "" {
			return fail("section %q not terminated by another section or '=== end'", section)
		}
		section = next
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	mb, ok := bodies["model"]
	if !ok {
		return nil, fmt.Errorf("conformance: case has no model section")
	}
	app, err := model.ReadText(mb)
	if err != nil {
		return nil, fmt.Errorf("conformance: case model: %w", err)
	}
	c.App = app
	pb, ok := bodies["mapping"]
	if !ok {
		return nil, fmt.Errorf("conformance: case has no mapping section")
	}
	mapping, _, err := model.ReadMappingText(pb)
	if err != nil {
		return nil, fmt.Errorf("conformance: case mapping: %w", err)
	}
	c.Mapping = mapping
	if fb, ok := bodies["faults"]; ok {
		plan, err := fault.ParsePlan(fb.String())
		if err != nil {
			return nil, fmt.Errorf("conformance: case fault plan: %w", err)
		}
		c.Faults = plan
	}

	if _, err := platforms.ByName(c.Platform); err != nil {
		return nil, fmt.Errorf("conformance: case: %w", err)
	}
	if c.Nodes < 1 {
		return nil, fmt.Errorf("conformance: case declares %d nodes", c.Nodes)
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if err := c.App.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: case model invalid: %w", err)
	}
	if err := funclib.ValidateApp(c.App); err != nil {
		return nil, fmt.Errorf("conformance: case app invalid: %w", err)
	}
	if err := c.Mapping.Validate(c.App, c.Nodes); err != nil {
		return nil, fmt.Errorf("conformance: case mapping invalid: %w", err)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("conformance: case fault plan invalid: %w", err)
		}
		if err := c.Faults.CheckNodes(c.Nodes); err != nil {
			return nil, fmt.Errorf("conformance: case fault plan does not fit: %w", err)
		}
	}
	return c, nil
}

// Clone deep-copies a case by round-tripping it through the corpus format —
// the same path a committed reproducer takes, so a shrunk case is guaranteed
// serialisable.
func (c *Case) Clone() *Case {
	var buf bytes.Buffer
	if err := WriteCase(&buf, c); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	out, err := ReadCase(&buf)
	if err != nil {
		panic(fmt.Sprintf("conformance: case does not round-trip: %v", err))
	}
	return out
}

// WriteCaseFile writes a reproducer to path.
func WriteCaseFile(path string, c *Case) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCase(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCaseFile loads a reproducer from path.
func ReadCaseFile(path string) (*Case, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCase(f)
}
