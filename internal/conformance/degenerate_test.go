package conformance

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
)

// Explicit degenerate shapes the random generator only hits occasionally:
// the minimal two-task app, 1x1 matrices, thread count equal to the striped
// extent, single-row and single-column vectors, fan-out diamonds, and a
// double arc from one output port into one fan-in function. Each is run
// through the complete differential check (oracle, replay, sequential,
// optimized, traced, faulted, permuted). These graphs shook out the
// striping-mismatch validation gap locked down in funclib's tests.

// degenCase wraps an app in a runnable conformance case: round-robin mapping
// over the nodes, CSPI platform, a reversal permutation, and a light
// always-on drop plan.
func degenCase(t *testing.T, app *model.App, nodes int) *Case {
	t.Helper()
	app.AssignIDs()
	if err := app.Validate(); err != nil {
		t.Fatalf("degenerate app invalid: %v", err)
	}
	mapping := model.NewMapping()
	n := 0
	for _, f := range app.Functions {
		ns := make([]int, f.Threads)
		for i := range ns {
			ns[i] = n % nodes
			n++
		}
		mapping.Set(f.Name, ns...)
	}
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = nodes - 1 - i
	}
	c := &Case{
		Seed:       -1,
		Platform:   "CSPI",
		Nodes:      nodes,
		Iterations: 2,
		App:        app,
		Mapping:    mapping,
		Perm:       perm,
		Faults: &fault.Plan{
			Seed: 5,
			Drops: []fault.DropRule{{
				Link: fault.LinkSel{Src: fault.AllLinks, Dst: fault.AllLinks},
				Rate: 0.2,
				Win:  fault.Window{From: 0, To: fault.Forever},
			}},
		},
	}
	if !c.valid() {
		t.Fatal("degenerate case does not validate")
	}
	return c
}

func mustCheck(t *testing.T, c *Case) {
	t.Helper()
	if fail := c.Check(CheckOptions{}); fail != nil {
		t.Fatalf("degenerate case failed: %s", fail)
	}
	// Every degenerate graph must also round-trip the corpus format.
	back := c.Clone()
	if back.Tasks() != c.Tasks() || back.Arcs() != c.Arcs() {
		t.Fatalf("clone changed the graph: %d/%d -> %d/%d tasks/arcs",
			c.Tasks(), c.Arcs(), back.Tasks(), back.Arcs())
	}
}

// TestDirectSourceSink: the smallest expressible app — one source feeding one
// sink, 1x1 matrix — across two nodes.
func TestDirectSourceSink(t *testing.T) {
	app := model.NewApp("direct")
	mt, err := app.AddType(&model.DataType{Name: "m1x1", Rows: 1, Cols: 1, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 3}})
	src.AddOutput("out", mt, model.ByCols)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.Replicated)
	if _, err := app.Connect("src", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, degenCase(t, app, 2))
}

// TestThreadsEqualRows: every thread holds exactly one row (the partition
// boundary case where an off-by-one leaves a thread empty or overlapping).
func TestThreadsEqualRows(t *testing.T) {
	app := model.NewApp("fullsplit")
	mt, err := app.AddType(&model.DataType{Name: "m4x4", Rows: 4, Cols: 4, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 4,
		Params: map[string]any{"seed": 8}})
	src.AddOutput("out", mt, model.ByRows)
	fft := app.AddFunction(&model.Function{Name: "fft", Kind: "fft_rows", Threads: 4})
	fft.AddInput("in", mt, model.ByRows)
	fft.AddOutput("out", mt, model.ByRows)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 4})
	snk.AddInput("in", mt, model.ByRows)
	if _, err := app.Connect("src", "out", "fft", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("fft", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, degenCase(t, app, 4))
}

// TestVectorShapes: single-row and single-column matrices through the
// orientation-sensitive kinds.
func TestVectorShapes(t *testing.T) {
	app := model.NewApp("vectors")
	rowT, err := app.AddType(&model.DataType{Name: "m1x8", Rows: 1, Cols: 8, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	colT, err := app.AddType(&model.DataType{Name: "m8x1", Rows: 8, Cols: 1, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	srcR := app.AddFunction(&model.Function{Name: "srcR", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 21}})
	srcR.AddOutput("out", rowT, model.ByRows)
	fftR := app.AddFunction(&model.Function{Name: "fftR", Kind: "fft_rows", Threads: 1})
	fftR.AddInput("in", rowT, model.ByRows)
	fftR.AddOutput("out", rowT, model.ByRows)
	snkR := app.AddFunction(&model.Function{Name: "snkR", Kind: "sink_matrix", Threads: 1})
	snkR.AddInput("in", rowT, model.Replicated)

	srcC := app.AddFunction(&model.Function{Name: "srcC", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 22}})
	srcC.AddOutput("out", colT, model.ByCols)
	fftC := app.AddFunction(&model.Function{Name: "fftC", Kind: "fft_cols", Threads: 1})
	fftC.AddInput("in", colT, model.ByCols)
	fftC.AddOutput("out", colT, model.ByCols)
	snkC := app.AddFunction(&model.Function{Name: "snkC", Kind: "sink_matrix", Threads: 1})
	snkC.AddInput("in", colT, model.Replicated)

	for _, arc := range [][4]string{
		{"srcR", "out", "fftR", "in"}, {"fftR", "out", "snkR", "in"},
		{"srcC", "out", "fftC", "in"}, {"fftC", "out", "snkC", "in"},
	} {
		if _, err := app.Connect(arc[0], arc[1], arc[2], arc[3]); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, degenCase(t, app, 3))
}

// TestFanOutDiamond: one source value feeds two different operator chains
// that rejoin in an add2 — the classic diamond.
func TestFanOutDiamond(t *testing.T) {
	app := model.NewApp("diamond")
	mt, err := app.AddType(&model.DataType{Name: "m4x6", Rows: 4, Cols: 6, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 2,
		Params: map[string]any{"seed": 31}})
	src.AddOutput("out", mt, model.ByRows)
	left := app.AddFunction(&model.Function{Name: "left", Kind: "identity", Threads: 2})
	left.AddInput("in", mt, model.ByRows)
	left.AddOutput("out", mt, model.ByRows)
	right := app.AddFunction(&model.Function{Name: "right", Kind: "scale", Threads: 3,
		Params: map[string]any{"factor": -1.5}})
	right.AddInput("in", mt, model.ByCols)
	right.AddOutput("out", mt, model.ByCols)
	join := app.AddFunction(&model.Function{Name: "join", Kind: "add2", Threads: 2})
	join.AddInput("a", mt, model.ByRows)
	join.AddInput("b", mt, model.ByRows)
	join.AddOutput("out", mt, model.ByRows)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.Replicated)
	for _, arc := range [][4]string{
		{"src", "out", "left", "in"}, {"src", "out", "right", "in"},
		{"left", "out", "join", "a"}, {"right", "out", "join", "b"},
		{"join", "out", "snk", "in"},
	} {
		if _, err := app.Connect(arc[0], arc[1], arc[2], arc[3]); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, degenCase(t, app, 3))
}

// TestDoubleArcFanIn: both operands of an add2 drawn from the SAME output
// port — two arcs between one port pair's function, i.e. out = 2*in.
func TestDoubleArcFanIn(t *testing.T) {
	app := model.NewApp("doublearc")
	mt, err := app.AddType(&model.DataType{Name: "m1x8", Rows: 1, Cols: 8, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 44}})
	src.AddOutput("out", mt, model.ByCols)
	dbl := app.AddFunction(&model.Function{Name: "dbl", Kind: "add2", Threads: 2})
	dbl.AddInput("a", mt, model.ByCols)
	dbl.AddInput("b", mt, model.ByCols)
	dbl.AddOutput("out", mt, model.ByCols)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.Replicated)
	for _, arc := range [][4]string{
		{"src", "out", "dbl", "a"}, {"src", "out", "dbl", "b"}, {"dbl", "out", "snk", "in"},
	} {
		if _, err := app.Connect(arc[0], arc[1], arc[2], arc[3]); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, degenCase(t, app, 2))
}

// TestReplicatedMultiThread: replicated ports with several threads — every
// thread holds the whole matrix, so transfers carry full copies and the
// runtime must not double-deliver.
func TestReplicatedMultiThread(t *testing.T) {
	app := model.NewApp("replicated")
	mt, err := app.AddType(&model.DataType{Name: "m3x5", Rows: 3, Cols: 5, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 3,
		Params: map[string]any{"seed": 13}})
	src.AddOutput("out", mt, model.Replicated)
	sc := app.AddFunction(&model.Function{Name: "sc", Kind: "scale", Threads: 2,
		Params: map[string]any{"factor": 0.25}})
	sc.AddInput("in", mt, model.Replicated)
	sc.AddOutput("out", mt, model.Replicated)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 2})
	snk.AddInput("in", mt, model.Replicated)
	if _, err := app.Connect("src", "out", "sc", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("sc", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, degenCase(t, app, 3))
}

// TestStripeCountExceedsExtentRejected: more threads than striped rows/cols
// would leave some thread an empty partition; model validation must reject
// the app before any tool consumes it.
func TestStripeCountExceedsExtentRejected(t *testing.T) {
	app := model.NewApp("overstriped")
	mt, err := app.AddType(&model.DataType{Name: "m4x4", Rows: 4, Cols: 4, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 5,
		Params: map[string]any{"seed": 1}})
	src.AddOutput("out", mt, model.ByRows)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.Replicated)
	if _, err := app.Connect("src", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	app.AssignIDs()
	if err := app.Validate(); err == nil {
		t.Fatal("5 threads striping 4 rows not rejected by model validation")
	}
}
