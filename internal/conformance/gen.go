package conformance

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/funclib"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sim"
)

// Case is one self-contained conformance scenario: a generated application,
// its mapping onto a platform, and the ingredients of the metamorphic
// variants (the fault plan for the forced-delivery run, the node permutation
// for the remapped run). A Case round-trips through the corpus text format,
// so failing cases can be committed as reproducers and replayed by tests.
type Case struct {
	Seed       int64
	Platform   string
	Nodes      int
	Iterations int
	App        *model.App
	Mapping    *model.Mapping
	// Perm is a permutation of node ids; the permuted variant runs the same
	// app with every thread's node renamed through it.
	Perm []int
	// Faults is the plan for the faulted variant (forced delivery guarantees
	// termination); nil skips that variant.
	Faults *fault.Plan
}

// Tasks returns the application's function count.
func (c *Case) Tasks() int { return len(c.App.Functions) }

// Arcs returns the application's arc count.
func (c *Case) Arcs() int { return len(c.App.Arcs) }

// GenConfig tunes the generator.
type GenConfig struct {
	// Quick bounds sizes and op counts for smoke runs (CI).
	Quick bool
}

// genValue is a data set flowing through the graph under construction: the
// output port that produces it. Values may be consumed any number of times
// (fan-out); values consumed zero times are terminated with sinks.
type genValue struct {
	port     *model.Port
	consumed bool
}

type generator struct {
	rng  *rand.Rand
	cfg  GenConfig
	app  *model.App
	vals []*genValue
	nfn  int
}

// dims returns a randomized matrix dimension: mostly small composites and
// powers of two, including the degenerate 1.
func (g *generator) dim() int {
	if g.cfg.Quick {
		return []int{1, 2, 4, 8}[g.rng.Intn(4)]
	}
	return []int{1, 2, 3, 4, 5, 6, 8, 12, 16}[g.rng.Intn(9)]
}

// typeFor interns a matrix type of the given shape in the app's dictionary.
func (g *generator) typeFor(rows, cols int) *model.DataType {
	name := fmt.Sprintf("m%dx%d", rows, cols)
	if t, ok := g.app.Types[name]; ok {
		return t
	}
	t, err := g.app.AddType(&model.DataType{Name: name, Rows: rows, Cols: cols, Elem: model.ElemComplex})
	if err != nil {
		panic(err) // shape >= 1x1 by construction
	}
	return t
}

// threadsFor picks a thread count legal for striping s over a rows x cols
// type (striped ports may not leave any thread an empty partition).
func (g *generator) threadsFor(s model.StripeKind, t *model.DataType) int {
	maxT := 4
	switch s {
	case model.ByRows:
		maxT = min(maxT, t.Rows)
	case model.ByCols:
		maxT = min(maxT, t.Cols)
	}
	return 1 + g.rng.Intn(maxT)
}

func (g *generator) anyStripe() model.StripeKind {
	return []model.StripeKind{model.ByRows, model.ByCols, model.Replicated}[g.rng.Intn(3)]
}

func (g *generator) rowStripe() model.StripeKind {
	return []model.StripeKind{model.ByRows, model.Replicated}[g.rng.Intn(2)]
}

func (g *generator) colStripe() model.StripeKind {
	return []model.StripeKind{model.ByCols, model.Replicated}[g.rng.Intn(2)]
}

// pick returns a random existing value (consumed or not — re-picking a
// consumed value is how fan-out arises).
func (g *generator) pick() *genValue { return g.vals[g.rng.Intn(len(g.vals))] }

// connect wires the value into the input port and marks it consumed.
func (g *generator) connect(v *genValue, f *model.Function, port string) {
	if _, err := g.app.Connect(v.port.Fn.Name, v.port.Name, f.Name, port); err != nil {
		panic(err) // ports exist by construction
	}
	v.consumed = true
}

// addSource appends a source_matrix with a random shape and striping.
func (g *generator) addSource() {
	t := g.typeFor(g.dim(), g.dim())
	s := g.anyStripe()
	f := g.app.AddFunction(&model.Function{
		Name: fmt.Sprintf("src%d", g.nfn), Kind: "source_matrix",
		Threads: g.threadsFor(s, t),
		Params:  map[string]any{"seed": 1 + g.rng.Intn(1000)},
	})
	g.nfn++
	p := f.AddOutput("out", t, s)
	g.vals = append(g.vals, &genValue{port: p})
}

// opKinds is the insertion menu; each entry reports whether it applies to a
// candidate input type and, when chosen, builds the function. The generator
// retries down a shuffled menu, and "identity" always applies, so insertion
// always succeeds.
var opKinds = []string{"identity", "scale", "mag2", "add2", "fft_rows", "fft_cols",
	"window_rows", "fir_rows", "fir_decimate_rows", "transpose_block"}

// addOp inserts one random operator consuming one or two existing values.
func (g *generator) addOp() {
	order := g.rng.Perm(len(opKinds))
	for _, oi := range order {
		kind := opKinds[oi]
		v := g.pick()
		t := v.port.Type
		name := fmt.Sprintf("f%d_%s", g.nfn, kind)
		var f *model.Function
		switch kind {
		case "identity", "scale", "mag2":
			s := g.anyStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t)})
			if kind == "scale" {
				f.Params = map[string]any{"factor": []float64{0.5, 1.5, 2, -1}[g.rng.Intn(4)]}
			}
			f.AddInput("in", t, s)
			f.AddOutput("out", t, s)
			g.connect(v, f, "in")
		case "add2":
			// Second operand must share the shape; the same value twice is
			// legal (two arcs from one output port into one function).
			var cands []*genValue
			for _, c := range g.vals {
				if c.port.Type.Rows == t.Rows && c.port.Type.Cols == t.Cols {
					cands = append(cands, c)
				}
			}
			b := cands[g.rng.Intn(len(cands))]
			s := g.anyStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t)})
			f.AddInput("a", t, s)
			f.AddInput("b", t, s)
			f.AddOutput("out", t, s)
			g.connect(v, f, "a")
			g.connect(b, f, "b")
		case "fft_rows":
			if !isspl.IsPow2(t.Cols) {
				continue
			}
			s := g.rowStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t)})
			f.AddInput("in", t, s)
			f.AddOutput("out", t, s)
			g.connect(v, f, "in")
		case "fft_cols":
			if !isspl.IsPow2(t.Rows) {
				continue
			}
			s := g.colStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t)})
			f.AddInput("in", t, s)
			f.AddOutput("out", t, s)
			g.connect(v, f, "in")
		case "window_rows":
			s := g.rowStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t),
				Params: map[string]any{"window": []string{"rect", "hann", "hamming", "blackman"}[g.rng.Intn(4)]}})
			f.AddInput("in", t, s)
			f.AddOutput("out", t, s)
			g.connect(v, f, "in")
		case "fir_rows":
			s := g.rowStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t),
				Params: map[string]any{"ntaps": 1 + g.rng.Intn(8)}})
			f.AddInput("in", t, s)
			f.AddOutput("out", t, s)
			g.connect(v, f, "in")
		case "fir_decimate_rows":
			var factors []int
			for _, fac := range []int{2, 4} {
				if t.Cols%fac == 0 && t.Cols/fac >= 1 {
					factors = append(factors, fac)
				}
			}
			if len(factors) == 0 {
				continue
			}
			fac := factors[g.rng.Intn(len(factors))]
			ot := g.typeFor(t.Rows, t.Cols/fac)
			s := g.rowStripe()
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind, Threads: g.threadsFor(s, t),
				Params: map[string]any{"ntaps": 1 + g.rng.Intn(8), "factor": fac}})
			f.AddInput("in", t, s)
			f.AddOutput("out", ot, s)
			g.connect(v, f, "in")
		case "transpose_block":
			if t.Rows != t.Cols {
				continue
			}
			f = g.app.AddFunction(&model.Function{Name: name, Kind: kind,
				Threads: g.threadsFor(model.ByCols, t)})
			f.AddInput("in", t, model.ByCols)
			f.AddOutput("out", t, model.ByRows)
			g.connect(v, f, "in")
		}
		g.nfn++
		g.vals = append(g.vals, &genValue{port: f.Outputs[0]})
		return
	}
}

// addSink terminates a value with a sink_matrix.
func (g *generator) addSink(v *genValue) {
	t := v.port.Type
	s := g.anyStripe()
	f := g.app.AddFunction(&model.Function{
		Name: fmt.Sprintf("sink%d", g.nfn), Kind: "sink_matrix",
		Threads: g.threadsFor(s, t),
	})
	g.nfn++
	f.AddInput("in", t, s)
	g.connect(v, f, "in")
}

// Generate builds the conformance case for a seed: a random layered DAG of
// library ops (1-2 sources, a chain of operators drawing inputs from any
// earlier value — re-use of a value is fan-out, add2 is fan-in — and a sink
// for every loose end), a random mapping onto a random vendor platform, a
// fault plan and a node permutation for the metamorphic variants. The same
// seed always yields the identical case.
func Generate(seed int64, cfg GenConfig) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	g := &generator{rng: rng, cfg: cfg, app: model.NewApp(fmt.Sprintf("conform_%d", seed))}

	nSources := 1 + rng.Intn(2)
	for i := 0; i < nSources; i++ {
		g.addSource()
	}
	nOps := 1 + rng.Intn(8)
	if cfg.Quick {
		nOps = 1 + rng.Intn(5)
	}
	for i := 0; i < nOps; i++ {
		g.addOp()
	}
	// Every unconsumed value must terminate in a sink (model validation
	// demands every output be consumed)...
	for _, v := range g.vals {
		if !v.consumed {
			g.addSink(v)
		}
	}
	// ...and occasionally an extra sink taps an already-consumed value, so
	// fan-out to sinks is exercised too.
	if rng.Intn(4) == 0 {
		g.addSink(g.pick())
	}

	g.app.AssignIDs()
	if err := g.app.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: seed %d generated an invalid model: %w", seed, err)
	}
	if err := funclib.ValidateApp(g.app); err != nil {
		return nil, fmt.Errorf("conformance: seed %d generated an invalid app: %w", seed, err)
	}

	maxNodes := 8
	if cfg.Quick {
		maxNodes = 4
	}
	nodes := 1 + rng.Intn(maxNodes)
	mapping := model.NewMapping()
	for _, f := range g.app.Functions {
		ns := make([]int, f.Threads)
		for i := range ns {
			ns[i] = rng.Intn(nodes)
		}
		mapping.Set(f.Name, ns...)
	}

	names := platforms.Names()
	c := &Case{
		Seed:       seed,
		Platform:   names[rng.Intn(len(names))],
		Nodes:      nodes,
		Iterations: 1 + rng.Intn(3),
		App:        g.app,
		Mapping:    mapping,
		Perm:       rng.Perm(nodes),
	}

	plan := &fault.Plan{
		Seed: int64(1 + rng.Intn(1 << 20)),
		Drops: []fault.DropRule{{
			Link: fault.LinkSel{Src: fault.AllLinks, Dst: fault.AllLinks},
			Rate: []float64{0.1, 0.3}[rng.Intn(2)],
			Win:  fault.Window{From: 0, To: fault.Forever},
		}},
	}
	if nodes > 1 && rng.Intn(2) == 0 {
		from := sim.Time(0).Add(time.Duration(1+rng.Intn(5)) * 20 * time.Microsecond)
		plan.Stalls = []fault.StallRule{{
			Node: rng.Intn(nodes),
			Win:  fault.Window{From: from, To: from.Add(200 * time.Microsecond)},
		}}
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: seed %d generated an invalid fault plan: %w", seed, err)
	}
	c.Faults = plan
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
