// Package conformance is the randomized end-to-end verification subsystem:
// it generates arbitrary valid SAGE applications (layered DAGs of function
// library ops with randomized matrix shapes, stripings, fan-in/fan-out and
// thread counts), pushes each through the full pipeline — model validation,
// mapping, Alter glue-code generation, runtime-table verification, execution
// on the simulated multicomputer — and differentially checks the numeric
// outputs against a sequential oracle that evaluates the same dataflow graph
// with no distribution at all. On top of the oracle agreement it checks
// metamorphic invariants (sequential vs pipelined, optimized buffers, traced
// vs untraced, faulted with forced delivery, node-permuted mappings,
// re-execution), and on any failure a greedy shrinker minimizes the
// application graph and writes a reproducer corpus file that `go test`
// replays forever. The paper's equivalence claim — generated glue code
// computes exactly what a hand-written implementation of the model computes —
// becomes a property over every expressible application instead of a check on
// two fixed benchmarks.
package conformance

import (
	"fmt"
	"sort"

	"repro/internal/funclib"
	"repro/internal/isspl"
	"repro/internal/model"
)

// Oracle evaluates the application as plain sequential Go: every function
// runs single-threaded on whole, replicated matrices, in topological order,
// for the given iteration number (iterations are independent: every library
// kind is stateless and the source generator is addressed by iteration). It
// returns one assembled matrix per sink function, keyed by function name —
// the semantic reference the distributed runtime must reproduce bit for bit.
func Oracle(app *model.App, iteration int) (map[string]*isspl.Matrix, error) {
	order, err := app.TopoOrder()
	if err != nil {
		return nil, err
	}
	producer := map[*model.Port]*model.Port{} // input port -> driving output port
	for _, arc := range app.Arcs {
		producer[arc.To] = arc.From
	}
	values := map[*model.Port]*funclib.Block{}
	outputs := map[string]*isspl.Matrix{}
	for _, f := range order {
		impl, err := funclib.Lookup(f.Kind)
		if err != nil {
			return nil, fmt.Errorf("conformance: oracle: %w", err)
		}
		ins := map[string]*funclib.Block{}
		for _, p := range f.Inputs {
			src, ok := values[producer[p]]
			if !ok {
				return nil, fmt.Errorf("conformance: oracle: input %s has no value", p.QualifiedName())
			}
			// Copy: library kinds treat inputs as read-only, but the same
			// producer value may fan out to several consumers.
			cp := funclib.NewBlock(src.Region)
			copy(cp.Data, src.Data)
			ins[p.Name] = cp
		}
		outs := map[string]*funclib.Block{}
		for _, p := range f.Outputs {
			outs[p.Name] = funclib.NewBlock(model.Region{Rows: p.Type.Rows, Cols: p.Type.Cols})
		}
		ctx := &funclib.Context{
			FuncName: f.Name, Params: f.Params, Thread: 0, Threads: 1, Iteration: iteration,
		}
		if f.Kind == "sink_matrix" {
			name := f.Name
			ctx.Sink = func(port string, b *funclib.Block) {
				m := isspl.NewMatrix(b.Region.Rows, b.Region.Cols)
				copy(m.Data, b.Data)
				outputs[name] = m
			}
		}
		if err := impl.Compute(ctx, ins, outs); err != nil {
			return nil, fmt.Errorf("conformance: oracle: %s: %w", f.Name, err)
		}
		for _, p := range f.Outputs {
			values[p] = outs[p.Name]
		}
	}
	return outputs, nil
}

// SinkNames lists the app's sink_matrix functions in ID order.
func SinkNames(app *model.App) []string {
	var out []string
	for _, f := range app.Functions {
		if f.Kind == "sink_matrix" {
			out = append(out, f.Name)
		}
	}
	return out
}

// sortedNames returns the sorted key set of an output map.
func sortedNames(m map[string]*isspl.Matrix) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
