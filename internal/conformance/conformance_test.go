package conformance

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/isspl"
	"repro/internal/model"
)

// TestSeedsPass is the randomized differential property itself: a band of
// generated applications must clear the oracle and every metamorphic variant.
func TestSeedsPass(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 12
	}
	rep, err := Run(0, n, Config{Quick: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("conformance failures:\n%s", rep.Format())
	}
}

// TestGenerateDeterministic: the same seed must produce the byte-identical
// case (reports and reproducers depend on it).
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 3, 17} {
		var a, b bytes.Buffer
		c1, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteCase(&a, c1); err != nil {
			t.Fatal(err)
		}
		if err := WriteCase(&b, c2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestReportDeterministic: the campaign report must be byte-identical for any
// worker parallelism.
func TestReportDeterministic(t *testing.T) {
	r1, err := Run(0, 16, Config{Quick: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(0, 16, Config{Quick: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Format() != r8.Format() {
		t.Fatalf("report differs across parallelism:\n--- parallel 1\n%s--- parallel 8\n%s",
			r1.Format(), r8.Format())
	}
}

// TestCaseRoundTrip: write -> read -> write must be a fixed point of the
// corpus format.
func TestCaseRoundTrip(t *testing.T) {
	for _, seed := range []int64{0, 5, 23} {
		c, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := WriteCase(&first, c); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCase(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, first.String())
		}
		var second bytes.Buffer
		if err := WriteCase(&second, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: round trip not a fixed point:\n--- first\n%s--- second\n%s",
				seed, first.String(), second.String())
		}
	}
}

// TestMutationCaughtAndShrunk is the harness self-test demanded by the issue:
// with an injected runtime miscomputation, every seed must FAIL, and every
// failure must shrink to a reproducer of at most 5 tasks.
func TestMutationCaughtAndShrunk(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 3
	}
	rep, err := Run(0, n, Config{Quick: true, Parallelism: 4, Mutate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Seeds {
		r := &rep.Seeds[i]
		if r.GenErr != "" {
			t.Fatalf("seed %d: generator: %s", r.Seed, r.GenErr)
		}
		if r.Failure == nil {
			t.Errorf("seed %d: injected miscomputation NOT caught", r.Seed)
			continue
		}
		if r.ShrunkTasks > 5 {
			t.Errorf("seed %d: shrunk reproducer still has %d tasks (want <= 5)", r.Seed, r.ShrunkTasks)
		}
	}
	if !rep.OK() {
		t.Errorf("mutate-mode report not OK:\n%s", rep.Format())
	}
}

// TestShrinkReachesMinimalGraph: on a full-size failing case the shrinker
// should reach the smallest possible graph — one source feeding one sink.
func TestShrinkReachesMinimalGraph(t *testing.T) {
	c, err := Generate(0, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sr := Shrink(c, CheckOptions{MutateRuntime: true}, 0)
	if sr.Failure == nil {
		t.Fatal("mutated case did not fail")
	}
	if sr.Case.Tasks() != 2 || sr.Case.Arcs() != 1 {
		t.Fatalf("shrunk to %d tasks / %d arcs, want 2/1", sr.Case.Tasks(), sr.Case.Arcs())
	}
	if sr.Case.Nodes != 1 || sr.Case.Iterations != 1 {
		t.Fatalf("shrunk environment nodes=%d iterations=%d, want 1/1", sr.Case.Nodes, sr.Case.Iterations)
	}
	// The minimized case must itself be writable and still failing when read
	// back — exactly what a committed reproducer needs.
	dir := t.TempDir()
	path := filepath.Join(dir, "mutant.case")
	if err := WriteCaseFile(path, sr.Case); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCaseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fail := back.Check(CheckOptions{MutateRuntime: true}); fail == nil {
		t.Fatal("reread reproducer no longer fails under mutation")
	}
	if fail := back.Check(CheckOptions{}); fail != nil {
		t.Fatalf("reread reproducer fails without mutation: %s", fail)
	}
}

// TestShrinkPassingCaseIsNoop: shrinking a healthy case returns it unchanged.
func TestShrinkPassingCaseIsNoop(t *testing.T) {
	c, err := Generate(1, GenConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	sr := Shrink(c, CheckOptions{}, 0)
	if sr.Failure != nil {
		t.Fatalf("healthy case failed: %s", sr.Failure)
	}
	if sr.Checks != 1 {
		t.Fatalf("shrink of a passing case spent %d checks, want 1", sr.Checks)
	}
	if sr.Case.Tasks() != c.Tasks() {
		t.Fatalf("shrink of a passing case changed the graph: %d -> %d tasks", c.Tasks(), sr.Case.Tasks())
	}
}

func TestValidPerm(t *testing.T) {
	cases := []struct {
		perm []int
		n    int
		want bool
	}{
		{[]int{0}, 1, true},
		{[]int{2, 0, 1}, 3, true},
		{[]int{0, 0}, 2, false},
		{[]int{0, 2}, 2, false},
		{[]int{0}, 2, false},
		{nil, 0, true},
	}
	for _, tc := range cases {
		if got := validPerm(tc.perm, tc.n); got != tc.want {
			t.Errorf("validPerm(%v, %d) = %v, want %v", tc.perm, tc.n, got, tc.want)
		}
	}
}

func TestPermutedMapping(t *testing.T) {
	m := model.NewMapping()
	m.Set("a", 0, 1, 2)
	m.Set("b", 2)
	p := permutedMapping(m, []int{2, 0, 1})
	if got := p.Assign["a"]; got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("permuted a = %v", got)
	}
	if got := p.Assign["b"]; got[0] != 1 {
		t.Fatalf("permuted b = %v", got)
	}
	// Original untouched.
	if m.Assign["a"][0] != 0 {
		t.Fatal("permutedMapping mutated its input")
	}
}

// TestOracleFanOut: a value feeding two sinks must arrive identically at
// both, and the oracle must keep fan-out copies independent.
func TestOracleFanOut(t *testing.T) {
	app := model.NewApp("fanout")
	mt, err := app.AddType(&model.DataType{Name: "m4x4", Rows: 4, Cols: 4, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 99}})
	src.AddOutput("out", mt, model.Replicated)
	for _, name := range []string{"s1", "s2"} {
		f := app.AddFunction(&model.Function{Name: name, Kind: "sink_matrix", Threads: 1})
		f.AddInput("in", mt, model.Replicated)
		if _, err := app.Connect("src", "out", name, "in"); err != nil {
			t.Fatal(err)
		}
	}
	app.AssignIDs()
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := Oracle(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("oracle produced %d sinks, want 2", len(out))
	}
	if d := CompareOutputs(map[string]*isspl.Matrix{"x": out["s1"]}, map[string]*isspl.Matrix{"x": out["s2"]}); d != "" {
		t.Fatalf("fan-out copies diverge: %s", d)
	}
}
