package conformance

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/codegen/rtl"
	"repro/internal/gluegen"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/trace"
)

// Failure is one conformance violation: the variant that exposed it and a
// deterministic human-readable detail (no run-dependent noise, so reports
// are byte-identical across driver parallelism).
type Failure struct {
	Variant string
	Detail  string
}

func (f *Failure) String() string { return "[" + f.Variant + "] " + f.Detail }

// CheckOptions tunes a conformance check.
type CheckOptions struct {
	// MutateRuntime simulates a runtime miscomputation: after every runtime
	// execution the first sample of the first sink's output is sign-flipped
	// before comparison. The differential checker must catch it and the
	// shrinker must reduce it to a tiny reproducer — the mutation self-test
	// that proves the harness can actually detect a broken runtime.
	MutateRuntime bool
	// MutateExec applies the same sign-flip to the generated-code execution
	// path instead: the emitted program's iteration-0 output is corrupted
	// before comparison, so the exec variant must fail — proving the
	// compiled-code differential check can actually detect a miscompiled or
	// miscomputing generated program.
	MutateExec bool
}

// mutateFirstSample sign-flips the first nonzero sample of the first sink
// (flipping an exact zero is invisible: -0.0 == 0.0); an all-zero output
// gets a spike instead.
func mutateFirstSample(out map[string]*isspl.Matrix) {
	if names := sortedNames(out); len(names) > 0 {
		if m := out[names[0]]; m != nil && len(m.Data) > 0 {
			for i, v := range m.Data {
				if v != 0 {
					m.Data[i] = -v
					return
				}
			}
			m.Data[0] = 1
		}
	}
}

// runVariant executes tables under the given options and returns the
// per-sink outputs plus the kernel dispatch count.
func (c *Case) runVariant(tables *gluegen.Tables, opts sagert.Options, opt CheckOptions) (map[string]*isspl.Matrix, uint64, error) {
	pl, err := platforms.ByName(c.Platform)
	if err != nil {
		return nil, 0, err
	}
	res, err := sagert.Run(tables, pl, opts)
	if err != nil {
		return nil, 0, err
	}
	if opt.MutateRuntime {
		mutateFirstSample(res.Outputs)
	}
	return res.Outputs, res.Dispatches, nil
}

// CompareOutputs demands bit-identical agreement: the same sink set, the
// same shapes, and exactly equal samples. Every library kind performs the
// identical floating-point operations per element whether the data set is
// whole or striped, so the distributed runtime has no legitimate reason to
// deviate from the sequential oracle by even one ULP.
func CompareOutputs(want, got map[string]*isspl.Matrix) string {
	wn, gn := sortedNames(want), sortedNames(got)
	if len(wn) != len(gn) {
		return fmt.Sprintf("sink sets differ: want %v, got %v", wn, gn)
	}
	for i := range wn {
		if wn[i] != gn[i] {
			return fmt.Sprintf("sink sets differ: want %v, got %v", wn, gn)
		}
	}
	for _, name := range wn {
		w, g := want[name], got[name]
		if w == nil || g == nil {
			return fmt.Sprintf("sink %s: missing output (want %v, got %v)", name, w != nil, g != nil)
		}
		if w.Rows != g.Rows || w.Cols != g.Cols {
			return fmt.Sprintf("sink %s: shape %dx%d, want %dx%d", name, g.Rows, g.Cols, w.Rows, w.Cols)
		}
		for i := range w.Data {
			if w.Data[i] != g.Data[i] {
				return fmt.Sprintf("sink %s: sample %d (r%d,c%d) = %v, want %v (maxdiff %g)",
					name, i, i/w.Cols, i%w.Cols, g.Data[i], w.Data[i], w.MaxDiff(g))
			}
		}
	}
	return ""
}

// permutedMapping renames every node of m through perm.
func permutedMapping(m *model.Mapping, perm []int) *model.Mapping {
	out := model.NewMapping()
	for fn, nodes := range m.Assign {
		ns := make([]int, len(nodes))
		for i, n := range nodes {
			ns[i] = perm[n]
		}
		out.Set(fn, ns...)
	}
	return out
}

// validPerm reports whether perm is a permutation of [0, n).
func validPerm(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Check runs the full differential verification of one case:
//
//  1. the sequential oracle evaluates the model;
//  2. the pipeline (gluegen on the case's mapping and platform, executed by
//     sagert on the sim kernel) must reproduce the oracle bit for bit;
//  3. metamorphic variants — re-execution, a seed-derived shard count on
//     the shard-parallel kernel, sequential mode, optimized buffers,
//     traced, faulted under forced delivery, and a node-permuted mapping —
//     must each reproduce the baseline run bit for bit.
//
// A nil return means every invariant held.
func (c *Case) Check(opt CheckOptions) *Failure {
	pl, err := platforms.ByName(c.Platform)
	if err != nil {
		return &Failure{Variant: "setup", Detail: err.Error()}
	}
	want, err := Oracle(c.App, 0)
	if err != nil {
		return &Failure{Variant: "oracle-eval", Detail: err.Error()}
	}
	out, err := gluegen.Generate(gluegen.Input{
		App: c.App, Mapping: c.Mapping, Platform: pl, NumNodes: c.Nodes,
	})
	if err != nil {
		return &Failure{Variant: "gluegen", Detail: err.Error()}
	}
	tables := out.Tables

	base := sagert.Options{Iterations: c.Iterations}
	baseOut, baseDispatch, err := c.runVariant(tables, base, opt)
	if err != nil {
		return &Failure{Variant: "run", Detail: err.Error()}
	}
	if d := CompareOutputs(want, baseOut); d != "" {
		return &Failure{Variant: "oracle", Detail: d}
	}

	// Re-execution: a fresh kernel over the same tables must replay the run
	// exactly, down to the dispatch count.
	againOut, againDispatch, err := c.runVariant(tables, base, opt)
	if err != nil {
		return &Failure{Variant: "replay", Detail: err.Error()}
	}
	if d := CompareOutputs(baseOut, againOut); d != "" {
		return &Failure{Variant: "replay", Detail: d}
	}
	if againDispatch != baseDispatch {
		return &Failure{Variant: "replay",
			Detail: fmt.Sprintf("dispatch count %d, want %d", againDispatch, baseDispatch)}
	}

	// Generated-code execution: the same tables lowered into a real
	// goroutines-and-channels program computing on real data. Iteration 0
	// must reproduce the base sim run bit for bit; because the generated
	// program computes real data on every iteration (the sim kernel only
	// materializes its final compute iteration), each later iteration is
	// independently checked against the sequential oracle at that iteration.
	prog, err := codegen.Plan(tables, c.Iterations)
	if err != nil {
		return &Failure{Variant: "exec-plan", Detail: err.Error()}
	}
	eres, err := rtl.Execute(prog)
	if err != nil {
		return &Failure{Variant: "exec-run", Detail: err.Error()}
	}
	if opt.MutateExec && len(eres.Iters) > 0 {
		mutateFirstSample(eres.Iters[0])
	}
	if d := CompareOutputs(baseOut, eres.Iters[0]); d != "" {
		return &Failure{Variant: "exec", Detail: d}
	}
	for iter := 1; iter < c.Iterations; iter++ {
		iwant, err := Oracle(c.App, iter)
		if err != nil {
			return &Failure{Variant: "exec-oracle", Detail: err.Error()}
		}
		if d := CompareOutputs(iwant, eres.Iters[iter]); d != "" {
			return &Failure{Variant: "exec-oracle",
				Detail: fmt.Sprintf("iteration %d: %s", iter, d)}
		}
	}

	// Sharded: the same tables on the shard-parallel kernel, with the shard
	// count derived from the seed so the corpus sweeps K from 1 to the node
	// count. Platforms whose runs cannot shard (shared fabric) fall back to
	// the sequential kernel, making the comparison trivially true there and
	// genuinely metamorphic on distributed-fabric platforms. Outputs and the
	// dispatch count must both match bit for bit: sharding may not create,
	// drop or reorder one event's worth of observable work.
	shards := 1 + int(c.Seed%int64(c.Nodes))
	shardOut, shardDispatch, err := c.runVariant(tables,
		sagert.Options{Iterations: c.Iterations, Shards: shards}, opt)
	if err != nil {
		return &Failure{Variant: "sharded", Detail: err.Error()}
	}
	if d := CompareOutputs(baseOut, shardOut); d != "" {
		return &Failure{Variant: "sharded", Detail: fmt.Sprintf("shards=%d: %s", shards, d)}
	}
	if shardDispatch != baseDispatch {
		return &Failure{Variant: "sharded",
			Detail: fmt.Sprintf("shards=%d: dispatch count %d, want %d", shards, shardDispatch, baseDispatch)}
	}

	variants := []struct {
		name string
		opts sagert.Options
		skip bool
	}{
		{name: "sequential", opts: sagert.Options{Iterations: c.Iterations, Sequential: true}},
		{name: "optimized", opts: sagert.Options{Iterations: c.Iterations, OptimizedBuffers: true}},
		{name: "traced", opts: sagert.Options{Iterations: c.Iterations,
			Collector: trace.New(fmt.Sprintf("conform seed %d", c.Seed)), ProbeAll: true}},
		{name: "faulted", opts: sagert.Options{Iterations: c.Iterations, Faults: c.Faults},
			skip: c.Faults.Empty()},
	}
	for _, v := range variants {
		if v.skip {
			continue
		}
		got, _, err := c.runVariant(tables, v.opts, opt)
		if err != nil {
			return &Failure{Variant: v.name, Detail: err.Error()}
		}
		if d := CompareOutputs(baseOut, got); d != "" {
			return &Failure{Variant: v.name, Detail: d}
		}
	}

	// Node permutation: renaming the processors must not change what the
	// application computes — only (possibly) when.
	if c.Perm != nil && validPerm(c.Perm, c.Nodes) {
		pm := permutedMapping(c.Mapping, c.Perm)
		pout, err := gluegen.Generate(gluegen.Input{
			App: c.App, Mapping: pm, Platform: pl, NumNodes: c.Nodes,
		})
		if err != nil {
			return &Failure{Variant: "permuted", Detail: err.Error()}
		}
		got, _, err := c.runVariant(pout.Tables, base, opt)
		if err != nil {
			return &Failure{Variant: "permuted", Detail: err.Error()}
		}
		if d := CompareOutputs(baseOut, got); d != "" {
			return &Failure{Variant: "permuted", Detail: d}
		}
	}
	return nil
}
