package twin

import (
	"repro/internal/sim"
)

// evalScratch is one prediction's working state; pooled so concurrent GA
// fitness workers neither allocate per genome nor share state.
type evalScratch struct {
	nodeFree []sim.Duration // per-node CPU reservation within the iteration
	arrive   []sim.Duration // per-flow earliest receive time
	sendDone []sim.Duration // per-flow send completion (local handoff time)
	first    iterAcc
	steady   iterAcc
}

// iterAcc accumulates one iteration flavour's exact cost totals.
type iterAcc struct {
	compute []sim.Duration // per node, mirrors machine ComputeBusy
	copy    []sim.Duration // per node, mirrors machine CopyBusy
	comm    []sim.Duration // per node, mirrors machine CommBusy
	cpu     []sim.Duration // per node, CPU-resource demand (busy() charges)
	egress  []sim.Duration // per node, wire serialisation out of the node
	interSer    sim.Duration
	phases      Phases
	maxOccupied sim.Duration
	makespan    sim.Duration
	sinkEnd     sim.Duration
}

func (a *iterAcc) init(nodes int) {
	a.compute = make([]sim.Duration, nodes)
	a.copy = make([]sim.Duration, nodes)
	a.comm = make([]sim.Duration, nodes)
	a.cpu = make([]sim.Duration, nodes)
	a.egress = make([]sim.Duration, nodes)
}

func (a *iterAcc) reset() {
	for i := range a.compute {
		a.compute[i], a.copy[i], a.comm[i], a.cpu[i], a.egress[i] = 0, 0, 0, 0, 0
	}
	a.interSer = 0
	a.phases = Phases{}
	a.maxOccupied, a.makespan, a.sinkEnd = 0, 0, 0
}

func (e *Evaluator) newScratch() *evalScratch {
	s := &evalScratch{
		nodeFree: make([]sim.Duration, e.numNodes),
		arrive:   make([]sim.Duration, len(e.flows)),
		sendDone: make([]sim.Duration, len(e.flows)),
	}
	s.first.init(e.numNodes)
	s.steady.init(e.numNodes)
	return s
}

// iterate list-schedules one iteration under assign and fills a with its
// exact cost totals. Threads walk in the tables' execution order; each
// thread starts once its node's CPU reservation frees (co-located threads
// serialise their busy work, arrival waits overlap), then replays the
// runtime's own sequence: receive transfers in table order (wait for
// arrival, receive overhead, assembly copy for strided regions, credit
// return), dispatch, flops and buffer copies, then send transfers in table
// order (steady iterations first consume a banked credit, strided regions
// pay a pack copy, the wire send posts the flow's arrival time).
func (e *Evaluator) iterate(assign []int, o *Options, steady bool, s *evalScratch, a *iterAcc) {
	a.reset()
	nf := s.nodeFree
	for i := range nf {
		nf[i] = 0
	}
	pl := &e.pl
	for _, ti := range e.order {
		info := &e.threads[ti]
		node := assign[ti]
		speed := 1.0
		if node < len(o.NodeSpeeds) && o.NodeSpeeds[node] > 0 {
			speed = o.NodeSpeeds[node]
		}
		start := nf[node]
		t := start
		var cpu, occ sim.Duration

		// --- receive phase -----------------------------------------------
		for _, fi := range info.ins {
			f := &e.flows[fi]
			srcNode := assign[f.src]
			if o.OptimizedBuffers && srcNode == node {
				// Optimised local handoff: one copy, no messaging stack.
				if s.sendDone[fi] > t {
					t = s.sendDone[fi]
				}
				d := pl.CopyTime(f.bytes)
				t += d
				cpu += d
				occ += d
				a.copy[node] += d
				a.phases.Recv += d
			} else {
				if s.arrive[fi] > t {
					t = s.arrive[fi]
				}
				d := pl.RecvOverhead
				t += d
				cpu += d
				occ += d
				a.comm[node] += d
				a.phases.Recv += d
				if !f.dstContig {
					c := pl.CopyTime(f.bytes)
					t += c
					cpu += c
					occ += c
					a.copy[node] += c
					a.phases.Recv += c
				}
			}
			// Return a pipelining credit to the producer.
			lc := CreditCost(pl, node, srcNode)
			t += lc.CPU + lc.Ser
			cpu += lc.CPU
			occ += lc.CPU + lc.Ser
			if lc.Local {
				a.copy[node] += lc.CPU
			} else {
				a.comm[node] += lc.CPU + lc.Ser
				a.egress[node] += lc.Ser
				if lc.Inter {
					a.interSer += lc.Ser
				}
			}
			a.phases.Recv += lc.CPU + lc.Ser
		}

		// --- dispatch + compute ------------------------------------------
		cb := info.copyBytes
		if o.OptimizedBuffers && !info.isSource && !info.isSink {
			cb -= info.inBytes
			if cb < 0 {
				cb = 0
			}
		}
		dispatchT, flopT, copyT := ComputeCost(pl, o.DispatchOverhead, info.flops, cb, speed)
		t += dispatchT + flopT + copyT
		cpu += dispatchT + flopT + copyT
		occ += dispatchT + flopT + copyT
		a.compute[node] += dispatchT + flopT
		a.copy[node] += copyT
		a.phases.Dispatch += dispatchT
		a.phases.Compute += flopT + copyT

		// --- send phase ---------------------------------------------------
		for _, fi := range info.outs {
			f := &e.flows[fi]
			dstNode := assign[f.dst]
			if steady {
				// Credits exhausted: consume one banked by the consumer in a
				// previous iteration — a receive overhead, no wait.
				d := pl.RecvOverhead
				t += d
				cpu += d
				occ += d
				a.comm[node] += d
				a.phases.Send += d
			}
			if o.OptimizedBuffers && dstNode == node {
				s.sendDone[fi] = t
				continue
			}
			if !f.srcContig {
				c := pl.CopyTime(f.bytes)
				t += c
				cpu += c
				occ += c
				a.copy[node] += c
				a.phases.Send += c
			}
			lc := PointToPoint(pl, node, dstNode, f.bytes)
			t += lc.CPU + lc.Ser
			cpu += lc.CPU
			occ += lc.CPU + lc.Ser
			if lc.Local {
				a.copy[node] += lc.CPU
			} else {
				a.comm[node] += lc.CPU + lc.Ser
				a.egress[node] += lc.Ser
				if lc.Inter {
					a.interSer += lc.Ser
				}
			}
			a.phases.Send += lc.CPU + lc.Ser
			s.sendDone[fi] = t
			s.arrive[fi] = t + lc.Lat
		}

		nf[node] = start + cpu
		a.cpu[node] += cpu
		if occ > a.maxOccupied {
			a.maxOccupied = occ
		}
		if t > a.makespan {
			a.makespan = t
		}
		if info.isSink && t > a.sinkEnd {
			a.sinkEnd = t
		}
	}
	if a.sinkEnd == 0 {
		a.sinkEnd = a.makespan
	}
}

// bottleneck computes the pipelined steady-state period bound: the largest
// per-iteration demand on any single serial resource.
func (e *Evaluator) bottleneck(a *iterAcc) sim.Duration {
	p := a.maxOccupied
	for n := 0; n < e.numNodes; n++ {
		if a.cpu[n] > p {
			p = a.cpu[n]
		}
		if a.egress[n] > p {
			p = a.egress[n]
		}
	}
	if c := e.pl.FabricConcurrency; c > 0 {
		if f := a.interSer / sim.Duration(c); f > p {
			p = f
		}
	}
	return p
}

// Predict forecasts a run of the tables' own mapping.
func (e *Evaluator) Predict(o Options) *Prediction {
	return e.PredictAssign(e.base, o)
}

// PredictAssign forecasts a run under an alternative thread->node
// assignment (genome order: function table order, threads ascending). It
// panics on a malformed assignment — like the GA's genomes, assignments are
// produced by code, not users. Safe for concurrent use.
func (e *Evaluator) PredictAssign(assign []int, o Options) *Prediction {
	o = o.withDefaults()
	s := e.acquire(assign)
	defer e.scratch.Put(s)
	fill, ss := e.run(assign, &o, s)

	p := &Prediction{
		Iterations:       o.Iterations,
		FirstIteration:   fill.makespan,
		SteadyIteration:  ss.makespan,
		BottleneckPeriod: e.bottleneck(ss),
		Nodes:            make([]NodeCost, e.numNodes),
	}
	f, r := splitIterations(o.Iterations, o.BufferSlots)
	fd, rd := sim.Duration(f), sim.Duration(r)
	for n := 0; n < e.numNodes; n++ {
		p.Nodes[n] = NodeCost{
			Compute: fd*fill.compute[n] + rd*ss.compute[n],
			Copy:    fd*fill.copy[n] + rd*ss.copy[n],
			Comm:    fd*fill.comm[n] + rd*ss.comm[n],
		}
	}
	p.Phases = Phases{
		Recv:     fd*fill.phases.Recv + rd*ss.phases.Recv,
		Dispatch: fd*fill.phases.Dispatch + rd*ss.phases.Dispatch,
		Compute:  fd*fill.phases.Compute + rd*ss.phases.Compute,
		Send:     fd*fill.phases.Send + rd*ss.phases.Send,
	}
	p.AvgLatency = (fd*fill.sinkEnd + rd*ss.sinkEnd) / sim.Duration(o.Iterations)

	if o.Sequential {
		p.Elapsed = fd*fill.makespan + rd*ss.makespan
		if o.Iterations == 1 {
			p.Period = fill.sinkEnd
		} else {
			// sinkDone[i] = (sum of iteration lengths before i) + that
			// iteration's sink end; the period is the mean gap.
			lastLen, lastSink := fill.makespan, fill.sinkEnd
			if r > 0 {
				lastLen, lastSink = ss.makespan, ss.sinkEnd
			}
			total := fd*fill.makespan + rd*ss.makespan - lastLen + lastSink
			p.Period = (total - fill.sinkEnd) / sim.Duration(o.Iterations-1)
		}
		return p
	}

	if o.Iterations == 1 {
		p.Elapsed = fill.makespan
		p.Period = fill.sinkEnd
		return p
	}
	// Iterations 2..f still run credit-free, so they recur at the fill
	// bottleneck; only the remaining r pay the steady (credit-consuming) one.
	p.Elapsed = fill.makespan +
		sim.Duration(f-1)*e.bottleneck(fill) +
		rd*p.BottleneckPeriod
	p.Period = p.BottleneckPeriod
	return p
}

// PredictElapsed is the allocation-free fast path for GA fitness: it returns
// only the predicted total virtual time.
func (e *Evaluator) PredictElapsed(assign []int, o Options) sim.Duration {
	o = o.withDefaults()
	s := e.acquire(assign)
	defer e.scratch.Put(s)
	fill, ss := e.run(assign, &o, s)
	f, r := splitIterations(o.Iterations, o.BufferSlots)
	if o.Sequential {
		return sim.Duration(f)*fill.makespan + sim.Duration(r)*ss.makespan
	}
	if o.Iterations == 1 {
		return fill.makespan
	}
	return fill.makespan +
		sim.Duration(f-1)*e.bottleneck(fill) +
		sim.Duration(r)*e.bottleneck(ss)
}

// run executes the fill-iteration walk and, when the protocol outlives the
// credit bank, the steady-state walk; with credits to spare the fill
// accumulator doubles as the steady one.
func (e *Evaluator) run(assign []int, o *Options, s *evalScratch) (fill, ss *iterAcc) {
	e.iterate(assign, o, false, s, &s.first)
	if o.Iterations > o.BufferSlots {
		e.iterate(assign, o, true, s, &s.steady)
		return &s.first, &s.steady
	}
	return &s.first, &s.first
}

// splitIterations divides a run into credit-free fill iterations and steady
// iterations that pay the credit receive.
func splitIterations(iterations, slots int) (fill, steady int) {
	fill = iterations
	if fill > slots {
		fill = slots
	}
	return fill, iterations - fill
}

func (e *Evaluator) acquire(assign []int) *evalScratch {
	if len(assign) != len(e.threads) {
		panic("twin: assignment length does not match the task count")
	}
	for _, n := range assign {
		if n < 0 || n >= e.numNodes {
			panic("twin: assignment maps a thread outside the machine")
		}
	}
	return e.scratch.Get().(*evalScratch)
}
