package twin

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
)

// genTables builds the model, maps it one worker thread per node (spread,
// like the §3.3 manual mapping step) and runs the glue generator — the same
// construction experiments.GenerateTables performs, duplicated here because
// in-package twin tests cannot import experiments (it now depends on twin
// through the streaming subsystem).
func genTables(app string, pl machine.Platform, nodes, n int) (*gluegen.Output, error) {
	var m *model.App
	var err error
	switch app {
	case "fft2d":
		m, err = apps.FFT2D(n, nodes)
	case "cornerturn":
		m, err = apps.CornerTurn(n, nodes)
	default:
		return nil, fmt.Errorf("twin test: unknown app %q", app)
	}
	if err != nil {
		return nil, err
	}
	mapping, err := model.SpreadParallel(m, nodes)
	if err != nil {
		return nil, err
	}
	return gluegen.Generate(gluegen.Input{App: m, Mapping: mapping, Platform: pl, NumNodes: nodes})
}
