package twin

import (
	"testing"

	"repro/internal/platforms"
	"repro/internal/sagert"
)

// The twin's per-node busy accounting is not an approximation: every CPU,
// copy and wire charge mirrors a charge the DES makes, so the per-node
// Compute/Copy/Comm totals must equal the simulator's NodeStats to the
// nanosecond on every platform, node count and protocol mode. Only the
// arrangement of those charges in time (and hence Elapsed) is approximated;
// that error is bounded by the calibration gates in twin/validate.
func TestNodeAccountingMatchesDESExactly(t *testing.T) {
	apps := []string{"fft2d", "cornerturn"}
	for _, name := range platforms.Names() {
		pl, err := platforms.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range apps {
			for _, nodes := range []int{1, 2, 4} {
				out, err := genTables(app, pl, nodes, 64)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", name, app, nodes, err)
				}
				ev, err := NewEvaluator(out.Tables, pl)
				if err != nil {
					t.Fatal(err)
				}
				for _, seq := range []bool{false, true} {
					for _, opt := range []bool{false, true} {
						res, err := sagert.Run(out.Tables, pl, sagert.Options{
							Iterations: 4, Sequential: seq, OptimizedBuffers: opt,
						})
						if err != nil {
							t.Fatal(err)
						}
						pred := ev.Predict(Options{Iterations: 4, Sequential: seq, OptimizedBuffers: opt})
						for n, ns := range res.NodeStats {
							tc := pred.Nodes[n]
							if tc.Compute != ns.ComputeBusy || tc.Copy != ns.CopyBusy || tc.Comm != ns.CommBusy {
								t.Errorf("%s/%s nodes=%d seq=%v opt=%v node %d: twin %v/%v/%v, DES %v/%v/%v",
									name, app, nodes, seq, opt, n,
									tc.Compute, tc.Copy, tc.Comm,
									ns.ComputeBusy, ns.CopyBusy, ns.CommBusy)
							}
						}
						// Elapsed is approximated; a gross mismatch means a
						// structural bug, not calibration error. Pipelined
						// runs track the DES closely; sequential multi-node
						// runs carry the documented CPU-contention blind
						// spot (processor sharing stretches the measured
						// makespan), so their structural bound is looser.
						bound := 15.0
						if seq {
							bound = 40.0
						}
						ape := 100 * abs(float64(pred.Elapsed)-float64(res.Elapsed)) / float64(res.Elapsed)
						if ape > bound {
							t.Errorf("%s/%s nodes=%d seq=%v opt=%v: DES=%v twin=%v ape=%.1f%%",
								name, app, nodes, seq, opt, res.Elapsed, pred.Elapsed, ape)
						}
					}
				}
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
