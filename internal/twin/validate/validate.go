// Package validate cross-validates the analytical twin against the
// discrete-event simulator, the same way the conformance harness validates
// the runtime against its sequential oracle: a seeded matrix of randomized
// dataflow graphs (reusing the conformance generator) runs through both
// predictors, and the aggregate error statistics — MAPE for calibration,
// Spearman rank correlation for search-ordering fidelity — are gated in
// `go test` so the twin cannot silently drift from the runtime it models.
package validate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/conformance"
	"repro/internal/experiments"
	"repro/internal/gluegen"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/twin"
)

// Config selects the validation matrix.
type Config struct {
	// SeedStart and Seeds delimit the conformance-generator seed range.
	SeedStart int64
	Seeds     int
	// Quick bounds generated graph sizes (the CI gate matrix).
	Quick bool
	// ExtraIterations is added to each case's iteration count so steady-state
	// credit flow is exercised (default 3 when zero).
	ExtraIterations int
	// Parallelism bounds the worker pool (0 = all cores). Any setting yields
	// a byte-identical report.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 16
	}
	if c.ExtraIterations <= 0 {
		c.ExtraIterations = 3
	}
	return c
}

// Run is one twin-vs-DES comparison.
type Run struct {
	Seed       int64
	Platform   string
	Nodes      int
	Tasks      int
	Iterations int
	Sequential bool
	Optimized  bool
	DES        sim.Duration // oracle: sagert.Run's Elapsed
	Twin       sim.Duration // prediction
	APE        float64      // |Twin-DES|/DES, percent
}

// Report aggregates a validation matrix.
type Report struct {
	Runs []Run
	// MAPE is the mean absolute percentage error of Twin vs DES, in percent.
	MAPE float64
	// MaxAPE is the worst single-run error, in percent.
	MaxAPE float64
	// Spearman is the rank correlation between twin and DES elapsed times
	// across the matrix — the property that makes twin-guided search trust-
	// worthy: if the twin ranks candidate A under B, the DES should too.
	Spearman float64
}

// Gates are the calibration thresholds the twin must hold (issue acceptance
// criteria; enforced by go test and the CI twin-validate job).
const (
	GateMAPE     = 25.0 // percent
	GateSpearman = 0.90
)

// Pass reports whether the matrix satisfies the calibration gates.
func (r *Report) Pass() bool {
	return r.MAPE <= GateMAPE && r.Spearman >= GateSpearman
}

// Summary renders the aggregate line the CLI and CI logs print.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("twin-validate: %d runs MAPE=%.2f%% (gate %.0f%%) maxAPE=%.2f%% spearman=%.4f (gate %.2f) %s",
		len(r.Runs), r.MAPE, GateMAPE, r.MaxAPE, r.Spearman, GateSpearman, verdict)
}

// Table renders the per-run detail.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %5s %5s %4s %-4s %-4s %14s %14s %7s\n",
		"seed", "platform", "nodes", "tasks", "iter", "seq", "opt", "des", "twin", "ape%")
	for _, x := range r.Runs {
		fmt.Fprintf(&b, "%-6d %-8s %5d %5d %4d %-4v %-4v %14v %14v %7.2f\n",
			x.Seed, x.Platform, x.Nodes, x.Tasks, x.Iterations, x.Sequential, x.Optimized, x.DES, x.Twin, x.APE)
	}
	return b.String()
}

// Validate runs the matrix: for each seed, a conformance-generated graph is
// played through the DES and the twin under every protocol combination
// (sequential × optimized buffers), on the case's own platform, nodes and
// mapping. Fault plans are ignored — fault paths are a documented twin blind
// spot and are excluded from calibration.
func Validate(cfg Config) (*Report, error) {
	c := cfg.withDefaults()
	type caseRuns struct{ runs []Run }
	results, err := experiments.RunPool(c.Parallelism, c.Seeds, func(i int) (caseRuns, error) {
		seed := c.SeedStart + int64(i)
		cc, err := conformance.Generate(seed, conformance.GenConfig{Quick: c.Quick})
		if err != nil {
			return caseRuns{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		pl, err := platforms.ByName(cc.Platform)
		if err != nil {
			return caseRuns{}, err
		}
		out, err := gluegen.Generate(gluegen.Input{App: cc.App, Mapping: cc.Mapping, Platform: pl, NumNodes: cc.Nodes})
		if err != nil {
			return caseRuns{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		ev, err := twin.NewEvaluator(out.Tables, pl)
		if err != nil {
			return caseRuns{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		iters := cc.Iterations + c.ExtraIterations
		var cr caseRuns
		for _, seq := range []bool{true, false} {
			for _, opt := range []bool{false, true} {
				res, err := sagert.Run(out.Tables, pl, sagert.Options{
					Iterations: iters, Sequential: seq, OptimizedBuffers: opt,
				})
				if err != nil {
					return caseRuns{}, fmt.Errorf("seed %d seq=%v opt=%v: %w", seed, seq, opt, err)
				}
				pred := ev.Predict(twin.Options{
					Iterations: iters, Sequential: seq, OptimizedBuffers: opt,
				})
				des := sim.Duration(res.Elapsed)
				ape := 0.0
				if des > 0 {
					ape = 100 * math.Abs(float64(pred.Elapsed)-float64(des)) / float64(des)
				}
				cr.runs = append(cr.runs, Run{
					Seed: seed, Platform: cc.Platform, Nodes: cc.Nodes,
					Tasks: len(cc.App.Functions), Iterations: iters,
					Sequential: seq, Optimized: opt,
					DES: des, Twin: pred.Elapsed, APE: ape,
				})
			}
		}
		return cr, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	for _, cr := range results {
		rep.Runs = append(rep.Runs, cr.runs...)
	}
	var sum float64
	for _, x := range rep.Runs {
		sum += x.APE
		if x.APE > rep.MaxAPE {
			rep.MaxAPE = x.APE
		}
	}
	if len(rep.Runs) > 0 {
		rep.MAPE = sum / float64(len(rep.Runs))
	}
	des := make([]float64, len(rep.Runs))
	tw := make([]float64, len(rep.Runs))
	for i, x := range rep.Runs {
		des[i] = float64(x.DES)
		tw[i] = float64(x.Twin)
	}
	rep.Spearman = Spearman(tw, des)
	return rep, nil
}

// Spearman computes the rank correlation coefficient of two equal-length
// samples, with fractional (average) ranks for ties.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	// Pearson correlation of the rank vectors (exact under ties, unlike the
	// 6Σd² shortcut).
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 1 // constant ranks: no ordering to get wrong
	}
	return cov / math.Sqrt(va*vb)
}

// ranks assigns fractional ranks (1-based; ties share the average rank).
func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	r := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
