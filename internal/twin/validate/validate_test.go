package validate

import (
	"math"
	"reflect"
	"testing"
)

// The calibration gates from the issue: MAPE <= 25% and Spearman >= 0.9 on
// the fixed seeded matrix. This is the twin's contract with the DES oracle;
// a model change that breaks it must either be fixed or re-justified here.
func TestCalibrationGatesQuick(t *testing.T) {
	rep, err := Validate(Config{SeedStart: 1, Seeds: 24, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if testing.Verbose() {
		t.Log("\n" + rep.Table())
	}
	if rep.MAPE > GateMAPE {
		t.Errorf("MAPE %.2f%% exceeds gate %.0f%%", rep.MAPE, GateMAPE)
	}
	if rep.Spearman < GateSpearman {
		t.Errorf("Spearman %.4f below gate %.2f", rep.Spearman, GateSpearman)
	}
	if len(rep.Runs) != 24*4 {
		t.Errorf("expected %d runs, got %d", 24*4, len(rep.Runs))
	}
}

// Full-size graphs, a different seed band, fewer seeds to bound test time.
func TestCalibrationGatesFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Validate(Config{SeedStart: 1000, Seeds: 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if rep.MAPE > GateMAPE {
		t.Errorf("MAPE %.2f%% exceeds gate %.0f%%", rep.MAPE, GateMAPE)
	}
	if rep.Spearman < GateSpearman {
		t.Errorf("Spearman %.4f below gate %.2f", rep.Spearman, GateSpearman)
	}
}

// The report must be byte-identical at any parallelism, like every other
// pooled harness in this repo.
func TestValidateDeterministicAtAnyParallelism(t *testing.T) {
	var ref *Report
	for _, par := range []int{1, 4} {
		rep, err := Validate(Config{SeedStart: 40, Seeds: 6, Quick: true, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("parallelism %d: report diverges", par)
		}
	}
}

func TestSpearman(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{[]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}, -1},
		{[]float64{1, 2, 3, 4}, []float64{7, 7, 7, 7}, 1}, // constant: nothing misordered
		{[]float64{1, 1, 2, 2}, []float64{1, 1, 2, 2}, 1},
		{[]float64{1}, []float64{1}, 0}, // too short
	}
	for i, c := range cases {
		if got := Spearman(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
	// Monotone nonlinear relation still ranks perfectly.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{1, 4, 9, 16, 25, 36}
	if got := Spearman(a, b); got != 1 {
		t.Errorf("nonlinear monotone: got %v", got)
	}
}

func TestRanksTies(t *testing.T) {
	got := ranks([]float64{3, 1, 3, 2})
	want := []float64{3.5, 1, 3.5, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ranks: got %v want %v", got, want)
	}
}
