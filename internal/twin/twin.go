// Package twin is the analytical twin of the SAGE discrete-event runtime: a
// closed-form cost model that predicts what sagert.Run would measure — total
// virtual time, per-phase breakdowns, per-node busy accounting — without
// dispatching a single simulated event.
//
// The twin prices exactly the cost terms the DES charges, read from the same
// sources of truth: the glue generator's runtime tables (striping transfers,
// logical-buffer regions, execution order) and the machine's LogGP-style
// link parameters (software send/recv overheads, wire serialisation,
// pipelined latency, local memory-copy bandwidth). One iteration is
// list-scheduled in table order per thread — receive waits, assembly copies,
// credit returns, dispatch, compute, pack copies, sends — with co-located
// threads serialising on their node's CPU; whole runs compose iterations
// analytically (a credit-free fill iteration, a steady-state iteration that
// pays the credit receive, and for pipelined runs a bottleneck period from
// per-resource busy totals).
//
// What the twin models exactly: every per-message and per-byte cost term
// (they match the DES's per-node Compute/Copy/Comm accounting to the
// nanosecond on clean runs). What it approximates: intra-iteration resource
// contention (CPU quantum interleaving, egress and fabric queueing) and
// pipelined-fill transients. What it does not model at all: fault injection
// and the resilient runtime's retry paths. The cross-validation harness in
// twin/validate holds the approximation honest with MAPE and rank-correlation
// gates against the DES oracle.
package twin

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sagert"
	"repro/internal/sim"
)

// Options selects the execution protocol to predict. The fields mirror
// sagert.Options; zero values select the same defaults the runtime applies.
type Options struct {
	// Iterations is the number of data sets (>= 1).
	Iterations int
	// DispatchOverhead is the per-invocation function-table dispatch cost.
	// Zero selects sagert.DefaultDispatchOverhead.
	DispatchOverhead sim.Duration
	// BufferSlots is the per-transfer pipelining credit (default 2).
	BufferSlots int
	// Sequential predicts the barrier-synchronised mode: one data set at a
	// time, latency equals period.
	Sequential bool
	// OptimizedBuffers predicts the optimised-buffer mode: node-local
	// transfers hand off by reference (one copy) and non-endpoint functions
	// compute in place.
	OptimizedBuffers bool
	// NodeSpeeds are per-node CPU speed multipliers (flops only, like the
	// machine model); missing entries default to 1.
	NodeSpeeds []float64
}

func (o Options) withDefaults() Options {
	if o.Iterations < 1 {
		o.Iterations = 1
	}
	if o.DispatchOverhead <= 0 {
		o.DispatchOverhead = sagert.DefaultDispatchOverhead
	}
	if o.BufferSlots < 1 {
		o.BufferSlots = 2
	}
	return o
}

// NodeCost is one node's predicted busy-time accounting, in the same three
// categories the machine model reports (sagert.NodeStat).
type NodeCost struct {
	Compute sim.Duration
	Copy    sim.Duration
	Comm    sim.Duration
}

// ShardWeights returns per-node load weights for seeding the sharded
// kernel's partitioner (sim/shard.Partition, via sagert.Options.ShardWeights):
// each node's predicted total busy time under protocol o. The twin's
// bottleneck decomposition puts the cut boundaries between the busy nodes
// instead of bisecting them, which balances the shards' event load. The
// weights only steer the partition — a byte-identical run falls out of any
// partition — so callers may freely ignore an error and pass nil (uniform).
func ShardWeights(t *gluegen.Tables, pl machine.Platform, o Options) ([]float64, error) {
	e, err := NewEvaluator(t, pl)
	if err != nil {
		return nil, err
	}
	p := e.Predict(o)
	w := make([]float64, len(p.Nodes))
	for i, nc := range p.Nodes {
		w[i] = float64(nc.Compute + nc.Copy + nc.Comm)
	}
	return w, nil
}

// Phases is a per-phase cost breakdown: total thread-occupied time summed
// over all threads and iterations, split the way the runtime's own phase
// trace splits it.
type Phases struct {
	Recv     sim.Duration // arrival waits excluded: receive overheads, assembly copies, credit returns
	Dispatch sim.Duration // function-table dispatch
	Compute  sim.Duration // library flops + buffer-management copies
	Send     sim.Duration // credit receives, pack copies, send overheads, wire serialisation
}

// Prediction is the twin's forecast of one run.
type Prediction struct {
	// Elapsed predicts sagert.Result.Elapsed: the total virtual time.
	Elapsed sim.Duration
	// AvgLatency predicts the mean source-start to sink-done time. In
	// pipelined mode this is the unloaded (steady-iteration) latency;
	// queueing delay while the pipeline is backed up is a known blind spot.
	AvgLatency sim.Duration
	// Period predicts the steady-state time between completed data sets.
	Period sim.Duration
	// FirstIteration is the makespan of a credit-free fill iteration.
	FirstIteration sim.Duration
	// SteadyIteration is the makespan of a steady-state iteration (credits
	// exhausted, producers pay the credit receive).
	SteadyIteration sim.Duration
	// BottleneckPeriod is the pipelined throughput bound: the largest
	// per-iteration demand on any single resource (a node's CPU, a node's
	// egress port, the shared fabric, one thread's occupied time).
	BottleneckPeriod sim.Duration
	// Iterations echoes the protocol.
	Iterations int
	// Nodes is the predicted per-node busy accounting for the whole run; on
	// clean runs it matches the DES's NodeStats exactly.
	Nodes []NodeCost
	// Phases is the per-phase occupied-time breakdown for the whole run.
	Phases Phases
}

// threadInfo is the static per-thread cost profile derived from the tables.
type threadInfo struct {
	fn     int // function table index
	thread int
	flops     float64
	copyBytes int // funclib buffer-management bytes, before optimisation
	inBytes   int // total input-partition bytes (in-place optimisation credit)
	isSource  bool
	isSink    bool
	ins       []int // flow ids in the runtime's receive order
	outs      []int // flow ids in the runtime's send order
}

// flowInfo is one striped transfer between two threads.
type flowInfo struct {
	src, dst  int // thread indices
	bytes     int
	srcContig bool // region is contiguous in the producer's logical buffer
	dstContig bool // region is contiguous in the consumer's logical buffer
}

// Evaluator predicts runs of one set of runtime tables on one platform.
// Build it once; Predict and PredictAssign are cheap, pure, and safe to call
// concurrently (scratch state is pooled), which is what lets the GA use the
// twin as a fast fitness function.
type Evaluator struct {
	pl       machine.Platform
	numNodes int
	threads  []threadInfo
	flows    []flowInfo
	base     []int // the tables' own thread->node assignment, genome order
	order    []int // thread indices in execution (topological) order
	fns      []fnMeta
	scratch  sync.Pool // *evalScratch
}

type fnMeta struct {
	name    string
	threads int
}

// NewEvaluator builds the twin's cost tables from verified runtime tables.
// The striping transfers in the tables are mapping-independent, so one
// evaluator prices any thread->node assignment via PredictAssign.
func NewEvaluator(t *gluegen.Tables, pl machine.Platform) (*Evaluator, error) {
	if err := t.Verify(); err != nil {
		return nil, fmt.Errorf("twin: refusing unverified tables: %w", err)
	}
	if pl.Name != t.Platform {
		return nil, fmt.Errorf("twin: tables were generated for platform %q, predicting on %q", t.Platform, pl.Name)
	}
	e := &Evaluator{pl: pl, numNodes: t.NumNodes}

	firstThread := make([]int, len(t.Functions))
	n := 0
	for fi := range t.Functions {
		firstThread[fi] = n
		n += t.Functions[fi].Threads
		e.fns = append(e.fns, fnMeta{name: t.Functions[fi].Name, threads: t.Functions[fi].Threads})
	}
	e.threads = make([]threadInfo, n)
	e.base = make([]int, n)

	// Global flow table: one entry per (buffer, transfer), with the
	// contiguity of the region in both endpoint logical buffers — the exact
	// predicate the runtime uses to decide whether a pack or assembly copy
	// is charged.
	flowID := make([][]int, len(t.Buffers))
	for bi := range t.Buffers {
		b := &t.Buffers[bi]
		src := &t.Functions[b.SrcFn]
		dst := &t.Functions[b.DstFn]
		srcPort := portEntry(src.Outs, b.SrcPort)
		dstPort := portEntry(dst.Ins, b.DstPort)
		if srcPort == nil || dstPort == nil {
			return nil, fmt.Errorf("twin: buffer %d references missing ports", b.ID)
		}
		ids := make([]int, len(b.Transfers))
		for ti, x := range b.Transfers {
			sreg, err := model.Partition(srcPort.Striping, srcPort.Rows, srcPort.Cols, src.Threads, x.SrcThread)
			if err != nil {
				return nil, err
			}
			dreg, err := model.Partition(dstPort.Striping, dstPort.Rows, dstPort.Cols, dst.Threads, x.DstThread)
			if err != nil {
				return nil, err
			}
			ids[ti] = len(e.flows)
			e.flows = append(e.flows, flowInfo{
				src:       firstThread[b.SrcFn] + x.SrcThread,
				dst:       firstThread[b.DstFn] + x.DstThread,
				bytes:     x.Bytes,
				srcContig: contiguousIn(x.Region, sreg),
				dstContig: contiguousIn(x.Region, dreg),
			})
		}
		flowID[bi] = ids
	}

	// Per-thread cost profiles and flow schedules, in the runtime's own
	// order: input ports in table order, each port's buffers in table order,
	// each buffer's transfers in table order.
	for fi := range t.Functions {
		fe := &t.Functions[fi]
		impl, err := funclib.Lookup(fe.Kind)
		if err != nil {
			return nil, err
		}
		for th := 0; th < fe.Threads; th++ {
			ti := firstThread[fi] + th
			info := &e.threads[ti]
			info.fn, info.thread = fi, th
			info.isSource = len(fe.Ins) == 0
			info.isSink = len(fe.Outs) == 0
			e.base[ti] = fe.Nodes[th]

			ins := make(map[string]*funclib.Block, len(fe.Ins))
			for pi := range fe.Ins {
				pe := &fe.Ins[pi]
				reg, err := model.Partition(pe.Striping, pe.Rows, pe.Cols, fe.Threads, th)
				if err != nil {
					return nil, err
				}
				ins[pe.Name] = &funclib.Block{Region: reg}
				info.inBytes += reg.Elems() * pe.ElemBytes
				for _, bufID := range pe.Buffers {
					b := &t.Buffers[bufID]
					if b.DstFn != fe.ID || b.DstPort != pe.Name {
						continue
					}
					for xi := range b.Transfers {
						if b.Transfers[xi].DstThread == th {
							info.ins = append(info.ins, flowID[bufID][xi])
						}
					}
				}
			}
			outs := make(map[string]*funclib.Block, len(fe.Outs))
			for pi := range fe.Outs {
				pe := &fe.Outs[pi]
				reg, err := model.Partition(pe.Striping, pe.Rows, pe.Cols, fe.Threads, th)
				if err != nil {
					return nil, err
				}
				outs[pe.Name] = &funclib.Block{Region: reg}
				for _, bufID := range pe.Buffers {
					b := &t.Buffers[bufID]
					if b.SrcFn != fe.ID || b.SrcPort != pe.Name {
						continue
					}
					for xi := range b.Transfers {
						if b.Transfers[xi].SrcThread == th {
							info.outs = append(info.outs, flowID[bufID][xi])
						}
					}
				}
			}
			ctx := &funclib.Context{FuncName: fe.Name, Params: fe.Params, Thread: th, Threads: fe.Threads}
			c := impl.Cost(ctx, ins, outs)
			info.flops, info.copyBytes = c.Flops, c.CopyBytes
		}
	}

	for _, id := range t.Order {
		for th := 0; th < t.Functions[id].Threads; th++ {
			e.order = append(e.order, firstThread[id]+th)
		}
	}
	e.scratch.New = func() any { return e.newScratch() }
	return e, nil
}

// NumNodes reports the machine size the tables target.
func (e *Evaluator) NumNodes() int { return e.numNodes }

// Tasks reports the thread count — the genome length PredictAssign expects.
func (e *Evaluator) Tasks() int { return len(e.threads) }

// Flows reports the striped-transfer count.
func (e *Evaluator) Flows() int { return len(e.flows) }

// BaseAssign returns a copy of the tables' own thread->node assignment, in
// genome order (function table order, threads ascending).
func (e *Evaluator) BaseAssign() []int {
	out := make([]int, len(e.base))
	copy(out, e.base)
	return out
}

// MappingFromAssign converts a genome-order assignment into a model mapping
// (function names from the tables).
func (e *Evaluator) MappingFromAssign(assign []int) *model.Mapping {
	m := model.NewMapping()
	i := 0
	for _, f := range e.fns {
		nodes := make([]int, f.threads)
		for th := range nodes {
			nodes[th] = assign[i]
			i++
		}
		m.Set(f.name, nodes...)
	}
	return m
}

// portEntry finds a port by name.
func portEntry(ports []gluegen.PortEntry, name string) *gluegen.PortEntry {
	for i := range ports {
		if ports[i].Name == name {
			return &ports[i]
		}
	}
	return nil
}

// contiguousIn mirrors the runtime's zero-copy predicate: a region occupies a
// contiguous byte range of its logical buffer iff it spans the buffer's full
// width.
func contiguousIn(reg, blockReg model.Region) bool {
	return reg.C0 == blockReg.C0 && reg.Cols == blockReg.Cols
}

// LinkCost is the closed-form price of moving one message, split the way the
// machine model charges it.
type LinkCost struct {
	// CPU is time on the sending CPU: the software send overhead for a
	// remote transfer, or the local memory copy for a self-transfer.
	CPU sim.Duration
	// Ser is the wire serialisation time (holds the sender's egress port and
	// the thread, but not the CPU).
	Ser sim.Duration
	// Lat is the pipelined delivery latency (occupies nobody).
	Lat sim.Duration
	// Local marks a self-transfer priced as a memory copy (CPU is CopyBusy,
	// not CommBusy, and no envelope-free wire time exists).
	Local bool
	// Inter marks a cross-board transfer (subject to the shared fabric).
	Inter bool
}

// Total is the time the sending thread is occupied plus delivery latency:
// the earliest a receiver can observe the message after the send began.
func (l LinkCost) Total() sim.Duration { return l.CPU + l.Ser + l.Lat }

// PointToPoint prices one message of payloadBytes from node src to node dst
// on the platform, including the MPI envelope — exactly the terms
// machine.Node.Transfer charges for mpi.Rank.Send.
func PointToPoint(pl *machine.Platform, src, dst, payloadBytes int) LinkCost {
	wire := payloadBytes + mpi.EnvelopeBytes
	if src == dst {
		return LinkCost{CPU: pl.CopyTime(wire), Local: true}
	}
	if pl.SameBoard(src, dst) {
		return LinkCost{CPU: pl.SendOverhead, Ser: serialTime(wire, pl.IntraBW), Lat: pl.IntraLatency}
	}
	return LinkCost{CPU: pl.SendOverhead, Ser: serialTime(wire, pl.InterBW), Lat: pl.InterLatency, Inter: true}
}

// CreditCost prices one pipelining-credit return (an empty payload) from the
// consumer's node back to the producer's.
func CreditCost(pl *machine.Platform, consumerNode, producerNode int) LinkCost {
	return PointToPoint(pl, consumerNode, producerNode, 0)
}

// ComputeCost prices one thread invocation on a node: dispatch overhead,
// library flops at the node's speed, and buffer-management copies (which,
// like the machine model, do not scale with CPU speed).
func ComputeCost(pl *machine.Platform, dispatch sim.Duration, flops float64, copyBytes int, speed float64) (dispatchT, flopT, copyT sim.Duration) {
	flopT = pl.FlopTime(flops)
	if speed > 0 && speed != 1 {
		flopT = sim.Duration(float64(flopT) / speed)
	}
	return dispatch, flopT, pl.CopyTime(copyBytes)
}

// serialTime mirrors the machine model's wire serialisation price.
func serialTime(n int, bw float64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / bw * float64(time.Second))
}
