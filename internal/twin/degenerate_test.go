package twin

import (
	"testing"

	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
)

// On a single node with optimised buffers every hand-off is a local memory
// copy and no messaging-stack call remains: the prediction must show zero
// wire/stack time, and the machine is one serial processor. (Without the
// optimisation, local messages still pay the receive-overhead stack cost —
// the DES charges it as CommBusy, and so does the twin; that equality is
// pinned by TestNodeAccountingMatchesDESExactly.)
func TestDegenerateSingleNode(t *testing.T) {
	pl := platforms.CSPI()
	out, err := genTables("fft2d", pl, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(out.Tables, pl)
	if err != nil {
		t.Fatal(err)
	}
	pred := ev.Predict(Options{Iterations: 2, OptimizedBuffers: true})
	if len(pred.Nodes) != 1 {
		t.Fatalf("single-node prediction has %d nodes", len(pred.Nodes))
	}
	if pred.Nodes[0].Comm != 0 {
		t.Errorf("single node spent %v on the wire", pred.Nodes[0].Comm)
	}
	if pred.Elapsed <= 0 || pred.Nodes[0].Compute <= 0 || pred.Nodes[0].Copy <= 0 {
		t.Errorf("degenerate prediction incomplete: %+v", pred)
	}
}

// minimalApp is the smallest legal graph: a one-thread source feeding a
// one-thread sink through a single buffer.
func minimalApp(t *testing.T) *model.App {
	t.Helper()
	a := model.NewApp("minimal")
	mt, err := a.AddType(&model.DataType{Name: "matrix", Rows: 8, Cols: 8, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := a.AddFunction(&model.Function{Name: "source", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 1}})
	src.AddOutput("out", mt, model.ByRows)
	sink := a.AddFunction(&model.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, model.ByRows)
	if _, err := a.Connect("source", "out", "sink", "in"); err != nil {
		t.Fatal(err)
	}
	a.AssignIDs()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// For the one-task graph there is no pipeline interleaving to approximate:
// the twin and the DES must agree on elapsed time exactly, in every
// protocol mode, whether the two tasks share a node or sit on two.
func TestDegenerateOneTaskGraphExact(t *testing.T) {
	pl := platforms.CSPI()
	app := minimalApp(t)
	for _, nodes := range []int{1, 2} {
		mapping, err := model.SpreadParallel(app, nodes)
		if err != nil {
			t.Fatal(err)
		}
		out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(out.Tables, pl)
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range []bool{false, true} {
			for _, opt := range []bool{false, true} {
				res, err := sagert.Run(out.Tables, pl, sagert.Options{
					Iterations: 5, Sequential: seq, OptimizedBuffers: opt,
				})
				if err != nil {
					t.Fatal(err)
				}
				pred := ev.Predict(Options{Iterations: 5, Sequential: seq, OptimizedBuffers: opt})
				if pred.Elapsed != sim.Duration(res.Elapsed) {
					t.Errorf("nodes=%d seq=%v opt=%v: twin %v != DES %v",
						nodes, seq, opt, pred.Elapsed, res.Elapsed)
				}
			}
		}
	}
}
