package twin

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/platforms"
	"repro/internal/sim"
	"time"
)

// randomPlatform derives a random but valid platform from CSPI, keeping the
// name (the evaluator checks tables and platform agree) and the board
// shape (the tables bake node adjacency into nothing, but contiguity and
// transfer structure must stay meaningful).
func randomPlatform(rng *rand.Rand) machine.Platform {
	pl := platforms.CSPI()
	scale := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	pl.ClockHz *= scale(0.5, 2)
	pl.MemCopyBW *= scale(0.5, 2)
	pl.SendOverhead = sim.Duration(float64(pl.SendOverhead) * scale(0.5, 2))
	pl.RecvOverhead = sim.Duration(float64(pl.RecvOverhead) * scale(0.5, 2))
	pl.IntraLatency = sim.Duration(float64(pl.IntraLatency) * scale(0.5, 2))
	pl.InterLatency = sim.Duration(float64(pl.InterLatency) * scale(0.5, 2))
	pl.IntraBW *= scale(0.5, 2)
	pl.InterBW *= scale(0.5, 2)
	return pl
}

// The twin must be monotone in the platform's pessimism: making a link
// slower (more latency, less bandwidth), the software stack heavier, or a
// node slower can never shorten the predicted run. Checked over seeded
// random platforms so the property holds across the parameter space, not
// just at the calibrated vendor points.
func TestMonotonicity(t *testing.T) {
	base := platforms.CSPI()
	out, err := genTables("fft2d", base, 8, 32)
	if err != nil {
		t.Fatal(err)
	}

	modes := []Options{
		{Iterations: 4},
		{Iterations: 4, OptimizedBuffers: true},
		{Iterations: 4, Sequential: true},
		{Iterations: 4, Sequential: true, OptimizedBuffers: true},
	}
	price := func(pl machine.Platform, speeds []float64) []sim.Duration {
		ev, err := NewEvaluator(out.Tables, pl)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]sim.Duration, len(modes))
		for i, o := range modes {
			o.NodeSpeeds = speeds
			got[i] = ev.PredictElapsed(ev.BaseAssign(), o)
		}
		return got
	}
	check := func(seed int64, what string, ref, worse []sim.Duration) {
		for i := range ref {
			if worse[i] < ref[i] {
				t.Errorf("seed %d, %s, mode %d: prediction dropped %v -> %v",
					seed, what, i, ref[i], worse[i])
			}
		}
	}

	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pl := randomPlatform(rng)
		ref := price(pl, nil)

		// More wire latency.
		lat := pl
		lat.IntraLatency += sim.Duration(rng.Int63n(int64(200 * time.Microsecond)))
		lat.InterLatency += sim.Duration(rng.Int63n(int64(500 * time.Microsecond)))
		check(seed, "latency up", ref, price(lat, nil))

		// Less wire bandwidth.
		bw := pl
		bw.IntraBW /= 1 + rng.Float64()*9
		bw.InterBW /= 1 + rng.Float64()*9
		check(seed, "bandwidth down", ref, price(bw, nil))

		// Heavier messaging software.
		ovh := pl
		ovh.SendOverhead += sim.Duration(rng.Int63n(int64(50 * time.Microsecond)))
		ovh.RecvOverhead += sim.Duration(rng.Int63n(int64(50 * time.Microsecond)))
		check(seed, "overhead up", ref, price(ovh, nil))

		// One node slows down.
		speeds := make([]float64, 8)
		for i := range speeds {
			speeds[i] = 1
		}
		speeds[rng.Intn(8)] = 0.2 + rng.Float64()*0.7
		check(seed, "node slows", ref, price(pl, speeds))
	}
}
