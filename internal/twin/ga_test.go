package twin

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/atot"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
)

// desElapsed measures the true DES cost of one mapping.
func desElapsed(t *testing.T, app *model.App, plName string, nodes int, m *model.Mapping, opts sagert.Options) float64 {
	t.Helper()
	pl, err := platforms.ByName(plName)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: m, Platform: pl, NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sagert.Run(out.Tables, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return float64(res.Elapsed)
}

// The twin-scored GA with top-K DES promotion must land within a fixed bound
// of a GA that pays for a full DES run on every genome (issue satellite 3).
func TestTwinGAWithinBoundOfAllDESGA(t *testing.T) {
	const (
		plName = "CSPI"
		nodes  = 4
		n      = 32
		iters  = 2
		bound  = 1.10 // promoted winner may cost at most 10% more true time
	)
	app, err := apps.FFT2D(n, nodes)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platforms.ByName(plName)
	if err != nil {
		t.Fatal(err)
	}
	gaCfg := atot.GAConfig{Population: 12, Generations: 6, Seed: 1}
	opts := Options{Iterations: iters}
	sopts := sagert.Options{Iterations: iters}

	res, err := MapGAPromote(app, pl, nodes, 4, gaCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	twinWinner := desElapsed(t, app, plName, nodes, res.Mapping, sopts)
	if got := float64(res.Candidates[res.Winner].DESElapsed); got != twinWinner {
		t.Fatalf("winner's recorded DES cost %v != remeasured %v", got, twinWinner)
	}

	// The all-DES GA: every genome scored by a full discrete-event run.
	aev, err := atot.NewEvaluator(app, pl, nodes)
	if err != nil {
		t.Fatal(err)
	}
	desCfg := gaCfg
	desCfg.Fitness = func(assign []int) float64 {
		m, err := aev.MappingFromAssign(assign)
		if err != nil {
			panic(err)
		}
		out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: m, Platform: pl, NumNodes: nodes})
		if err != nil {
			panic(err)
		}
		r, err := sagert.Run(out.Tables, pl, sopts)
		if err != nil {
			panic(err)
		}
		return float64(r.Elapsed)
	}
	allDES, _, err := atot.MapGA(aev, desCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := desElapsed(t, app, plName, nodes, allDES, sopts)

	t.Logf("twin-promoted winner: %v, all-DES GA: %v (ratio %.3f)", twinWinner, oracle, twinWinner/oracle)
	if twinWinner > oracle*bound {
		t.Fatalf("twin-promoted mapping costs %v, all-DES GA found %v; exceeds %.0f%% bound",
			twinWinner, oracle, (bound-1)*100)
	}
}

// The twin-scored search must be byte-identical at any Parallelism: same
// candidates, same twin and DES scores, same winner (issue satellite 3).
func TestTwinGADeterministicAtAnyParallelism(t *testing.T) {
	app, err := apps.FFT2D(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platforms.ByName("Mercury")
	if err != nil {
		t.Fatal(err)
	}
	var ref *PromoteResult
	for _, par := range []int{1, 3, 8} {
		cfg := atot.GAConfig{Population: 12, Generations: 5, Seed: 7, Parallelism: par}
		res, err := MapGAPromote(app, pl, 4, 3, cfg, Options{Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Candidates, ref.Candidates) {
			t.Fatalf("parallelism %d: candidates diverge:\n%+v\nvs\n%+v", par, res.Candidates, ref.Candidates)
		}
		if res.Winner != ref.Winner || !reflect.DeepEqual(res.Mapping, ref.Mapping) {
			t.Fatalf("parallelism %d: winner diverges", par)
		}
		if !reflect.DeepEqual(res.Stats, ref.Stats) {
			t.Fatalf("parallelism %d: GA stats diverge", par)
		}
	}
}

// MapGAK's archive must contain distinct genomes, best-first, with the
// search winner at index 0.
func TestMapGAKArchive(t *testing.T) {
	app, err := apps.FFT2D(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platforms.ByName("CSPI")
	if err != nil {
		t.Fatal(err)
	}
	aev, err := atot.NewEvaluator(app, pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := atot.GAConfig{Population: 16, Generations: 8, Seed: 3}
	assigns, stats, err := atot.MapGAK(aev, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(assigns) == 0 || len(assigns) > 5 {
		t.Fatalf("archive size %d", len(assigns))
	}
	seen := map[string]bool{}
	for _, a := range assigns {
		k := ""
		for _, n := range a {
			k += string(rune('a' + n))
		}
		if seen[k] {
			t.Fatal("duplicate genome in archive")
		}
		seen[k] = true
	}
	// Index 0 is the same winner MapGA returns.
	winner, _, err := atot.MapGA(aev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := aev.MappingFromAssign(assigns[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m0, winner) {
		t.Fatalf("archive head is not the MapGA winner:\n%+v\nvs\n%+v", m0, winner)
	}
	if stats == nil || stats.Evaluations == 0 {
		t.Fatal("missing stats")
	}
}
