package twin

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// unitPlatform has deliberately round numbers so every cost term below can
// be computed by hand: 1 flop = 1 ns, 1 copied byte = 1 ns, 1 wire byte =
// 10 ns on-board and 100 ns across boards.
func unitPlatform() *machine.Platform {
	return &machine.Platform{
		Name:          "unit",
		NodesPerBoard: 2,
		ClockHz:       1e9,
		FlopsPerCycle: 1,   // 1 Gflop/s: 1 flop = 1 ns
		MemCopyBW:     1e9, // 1 GB/s: 1 byte = 1 ns
		SendOverhead:  100,
		RecvOverhead:  200,
		IntraLatency:  1000,
		IntraBW:       1e8, // 1 byte = 10 ns
		InterLatency:  5000,
		InterBW:       1e7, // 1 byte = 100 ns
		FabricConcurrency: 1,
	}
}

func TestPointToPointHandComputed(t *testing.T) {
	pl := unitPlatform()
	if mpi.EnvelopeBytes != 32 {
		t.Fatalf("envelope changed (%d bytes); update the expectations", mpi.EnvelopeBytes)
	}
	// payload 68 + envelope 32 = 100 wire bytes everywhere below.
	cases := []struct {
		name     string
		src, dst int
		payload  int
		want     LinkCost
	}{
		// Self-transfer: a memory copy of the wire bytes; no overhead, no
		// wire, no latency.
		{"self", 0, 0, 68, LinkCost{CPU: 100, Local: true}},
		// Same board (nodes 0 and 1 share a 2-node board): software send
		// overhead, 100 bytes at 10 ns/byte, board latency.
		{"intra", 0, 1, 68, LinkCost{CPU: 100, Ser: 1000, Lat: 1000}},
		// Cross board (node 2 is on board 1): slower wire, fabric latency,
		// marked Inter so it contends for the shared fabric.
		{"inter", 0, 2, 68, LinkCost{CPU: 100, Ser: 10000, Lat: 5000, Inter: true}},
		// Empty payload still pays for the 32-byte envelope.
		{"envelope only", 0, 2, 0, LinkCost{CPU: 100, Ser: 3200, Lat: 5000, Inter: true}},
	}
	for _, c := range cases {
		if got := PointToPoint(pl, c.src, c.dst, c.payload); got != c.want {
			t.Errorf("%s: PointToPoint = %+v, want %+v", c.name, got, c.want)
		}
	}

	// Total is the earliest the receiver can observe the message.
	got := PointToPoint(pl, 0, 2, 68)
	if want := sim.Duration(100 + 10000 + 5000); got.Total() != want {
		t.Errorf("Total = %v, want %v", got.Total(), want)
	}

	// A credit is an empty message from consumer back to producer.
	if c, p := CreditCost(pl, 1, 0), PointToPoint(pl, 1, 0, 0); c != p {
		t.Errorf("CreditCost = %+v, want PointToPoint(…, 0) = %+v", c, p)
	}

	// Degenerate link: zero latency legs cost serialisation only.
	pl.IntraLatency, pl.InterLatency = 0, 0
	if got := PointToPoint(pl, 0, 1, 68); got.Lat != 0 || got.Ser != 1000 {
		t.Errorf("zero-latency link: %+v", got)
	}
}

func TestComputeCostHandComputed(t *testing.T) {
	pl := unitPlatform()
	cases := []struct {
		name      string
		dispatch  sim.Duration
		flops     float64
		copyBytes int
		speed     float64
		wantD     sim.Duration
		wantF     sim.Duration
		wantC     sim.Duration
	}{
		{"unit speed", 42, 1000, 500, 1, 42, 1000, 500},
		{"fast node halves flop time", 42, 1000, 500, 2, 42, 500, 500},
		{"slow node doubles flop time", 42, 1000, 500, 0.5, 42, 2000, 500},
		{"zero speed means default", 42, 1000, 500, 0, 42, 1000, 500},
		{"copies do not scale with speed", 0, 0, 4096, 4, 0, 0, 4096},
		{"nothing to do", 0, 0, 0, 1, 0, 0, 0},
	}
	for _, c := range cases {
		d, f, cp := ComputeCost(pl, c.dispatch, c.flops, c.copyBytes, c.speed)
		if d != c.wantD || f != c.wantF || cp != c.wantC {
			t.Errorf("%s: ComputeCost = (%v, %v, %v), want (%v, %v, %v)",
				c.name, d, f, cp, c.wantD, c.wantF, c.wantC)
		}
	}
}

func TestSerialTime(t *testing.T) {
	cases := []struct {
		n    int
		bw   float64
		want sim.Duration
	}{
		{100, 1e8, 1000},
		{1, 1e9, 1},
		{0, 1e8, 0},
		{-5, 1e8, 0},
	}
	for _, c := range cases {
		if got := serialTime(c.n, c.bw); got != c.want {
			t.Errorf("serialTime(%d, %g) = %v, want %v", c.n, c.bw, got, c.want)
		}
	}
}
