package twin

import (
	"fmt"

	"repro/internal/atot"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sagert"
	"repro/internal/sim"
)

// Candidate is one GA survivor: its assignment, the twin score that earned
// its promotion, and the DES measurement that judged it.
type Candidate struct {
	Assign      []int
	TwinElapsed sim.Duration
	DESElapsed  sim.Duration
}

// PromoteResult reports a twin-accelerated mapping search.
type PromoteResult struct {
	// Mapping is the winner: the promoted candidate with the lowest true DES
	// cost (lowest candidate index on ties).
	Mapping *model.Mapping
	// Winner indexes the winning entry of Candidates.
	Winner int
	// Candidates are the top-K assignments the twin-scored GA promoted to
	// full DES evaluation, in archive order (GA winner first).
	Candidates []Candidate
	// Stats is the GA search trajectory (objective values are twin
	// predictions in nanoseconds).
	Stats *atot.GAStats
}

// MapGAPromote runs AToT's genetic mapping search with the analytical twin
// as the fitness function, then promotes the top-K distinct survivors to
// full discrete-event evaluation and returns the one the DES likes best.
// Every stage is deterministic at any parallelism: the GA's trajectory is
// rng-exact (scoring is pure), the archive fills in batch order, and the DES
// promotions run on an order-preserving pool.
func MapGAPromote(app *model.App, pl machine.Platform, nodes, topK int, cfg atot.GAConfig, opts Options) (*PromoteResult, error) {
	if topK < 1 {
		topK = 1
	}
	aev, err := atot.NewEvaluator(app, pl, nodes)
	if err != nil {
		return nil, err
	}
	// Any valid mapping yields the same striping transfers: the runtime
	// tables only bake the assignment into FuncEntry.Nodes, which
	// PredictAssign overrides. Generate once, predict everywhere.
	base, err := gluegen.Generate(gluegen.Input{App: app, Mapping: model.RoundRobin(app, nodes), Platform: pl, NumNodes: nodes})
	if err != nil {
		return nil, err
	}
	tev, err := NewEvaluator(base.Tables, pl)
	if err != nil {
		return nil, err
	}
	if tev.Tasks() == 0 {
		return nil, fmt.Errorf("twin: application has no tasks")
	}
	cfg.Fitness = func(assign []int) float64 {
		return float64(tev.PredictElapsed(assign, opts))
	}
	assigns, stats, err := atot.MapGAK(aev, cfg, topK)
	if err != nil {
		return nil, err
	}

	sopts := sagert.Options{
		Iterations:       opts.Iterations,
		DispatchOverhead: opts.DispatchOverhead,
		BufferSlots:      opts.BufferSlots,
		Sequential:       opts.Sequential,
		OptimizedBuffers: opts.OptimizedBuffers,
		NodeSpeeds:       opts.NodeSpeeds,
	}
	cands, err := pool.Run(cfg.Parallelism, len(assigns), func(i int) (Candidate, error) {
		m := tev.MappingFromAssign(assigns[i])
		out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: m, Platform: pl, NumNodes: nodes})
		if err != nil {
			return Candidate{}, err
		}
		res, err := sagert.Run(out.Tables, pl, sopts)
		if err != nil {
			return Candidate{}, err
		}
		return Candidate{
			Assign:      assigns[i],
			TwinElapsed: tev.PredictElapsed(assigns[i], opts),
			DESElapsed:  sim.Duration(res.Elapsed),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	win := 0
	for i, c := range cands {
		if c.DESElapsed < cands[win].DESElapsed {
			win = i
		}
	}
	return &PromoteResult{
		Mapping:    tev.MappingFromAssign(cands[win].Assign),
		Winner:     win,
		Candidates: cands,
		Stats:      stats,
	}, nil
}
