// Package fault is the deterministic fault-injection subsystem of the
// reproduction. The paper's target machines — embedded multicomputers for
// avionics and signal processing — exist to keep working under degraded
// conditions, yet the paper only evaluates SAGE glue code on a perfect
// fabric. This package lets the reproduction ask the paper's question under
// stress: does auto-generated glue code degrade as gracefully as hand-coded
// MPI when links drop messages, lose bandwidth, or nodes stall?
//
// A Plan is a composable, declarative set of fault rules parsed from a small
// text format (see ParsePlan): per-message drops, transient link degradation
// (bandwidth factor and extra latency over a virtual-time window, including
// full outages at bandwidth factor 0), and node stall windows (crash-restart:
// the CPU is unavailable, in-progress work resumes at restart). An Injector
// instantiates a Plan for one simulation kernel and makes every per-message
// decision with a counter-keyed PRNG derived from the plan seed, the link id
// and the virtual time of the attempt — never from host state — so a faulted
// run is bit-reproducible at any host parallelism and with tracing on or off.
//
// Progress is guaranteed by construction: the retry policy's attempt cap
// forces delivery through a maintenance path after MaxAttempts failures, and
// stall windows are validated finite, so no injected fault can deadlock a
// simulation (see RetryPolicy).
package fault

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// AllLinks / AllNodes are the wildcard selector values (any source, any
// destination, any node).
const (
	AllLinks = -1
	AllNodes = -1
)

// Forever marks a window with no upper bound.
const Forever = sim.Time(1<<63 - 1)

// Window is a half-open virtual-time interval [From, To).
type Window struct {
	From sim.Time
	To   sim.Time // Forever when unbounded
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.From && t < w.To }

// Bounded reports whether the window has a finite end.
func (w Window) Bounded() bool { return w.To != Forever }

// LinkSel selects directed links; AllLinks in either field is a wildcard.
type LinkSel struct {
	Src, Dst int
}

// Matches reports whether the selector covers the directed link src->dst.
func (s LinkSel) Matches(src, dst int) bool {
	return (s.Src == AllLinks || s.Src == src) && (s.Dst == AllLinks || s.Dst == dst)
}

// DropRule drops each message crossing a matching link during the window
// with probability Rate (an independent seeded draw per attempt).
type DropRule struct {
	Link LinkSel
	Rate float64 // [0, 1]
	Win  Window
}

// DegradeRule scales a matching link's bandwidth by BWFactor and adds
// ExtraLatency during the window. BWFactor 0 takes the link down entirely:
// transfer attempts fail without occupying the wire, and senders must retry
// (the zero-bandwidth guard — no division by zero, no infinite
// serialisation).
type DegradeRule struct {
	Link         LinkSel
	BWFactor     float64 // [0, 1]; 0 = link down
	ExtraLatency sim.Duration
	Win          Window
}

// StallRule makes a node's CPU unavailable for the window (crash-restart:
// processes resume where they were once the node comes back). Stall windows
// must be finite or the simulation could not terminate.
type StallRule struct {
	Node int // node id, or AllNodes
	Win  Window
}

// Plan is a validated, immutable set of fault rules plus the seed every
// injected decision derives from. Build plans with ParsePlan or construct
// them directly and call Validate.
type Plan struct {
	Seed     int64
	Drops    []DropRule
	Degrades []DegradeRule
	Stalls   []StallRule
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Drops) == 0 && len(p.Degrades) == 0 && len(p.Stalls) == 0)
}

// HasStalls reports whether any stall rule exists (the degraded-mode
// re-sequencing in the SAGE runtime only engages when it does).
func (p *Plan) HasStalls() bool { return p != nil && len(p.Stalls) > 0 }

// Validate checks rule parameters: probabilities in [0,1], bandwidth factors
// in [0,1], non-negative latencies, coherent windows, and finite stall
// windows (an unbounded stall would make termination impossible).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	var errs []error
	checkWin := func(what string, w Window) {
		if w.From < 0 {
			errs = append(errs, fmt.Errorf("%s: window start %v < 0", what, w.From))
		}
		if w.To <= w.From {
			errs = append(errs, fmt.Errorf("%s: empty window [%v, %v)", what, w.From, w.To))
		}
	}
	checkLink := func(what string, l LinkSel) {
		if l.Src < AllLinks || l.Dst < AllLinks {
			errs = append(errs, fmt.Errorf("%s: negative link endpoint %d->%d", what, l.Src, l.Dst))
		}
	}
	for i, r := range p.Drops {
		what := fmt.Sprintf("drop rule %d", i)
		if r.Rate < 0 || r.Rate > 1 {
			errs = append(errs, fmt.Errorf("%s: rate %v outside [0, 1]", what, r.Rate))
		}
		checkLink(what, r.Link)
		checkWin(what, r.Win)
	}
	for i, r := range p.Degrades {
		what := fmt.Sprintf("degrade rule %d", i)
		if r.BWFactor < 0 || r.BWFactor > 1 {
			errs = append(errs, fmt.Errorf("%s: bandwidth factor %v outside [0, 1]", what, r.BWFactor))
		}
		if r.ExtraLatency < 0 {
			errs = append(errs, fmt.Errorf("%s: negative extra latency %v", what, r.ExtraLatency))
		}
		checkLink(what, r.Link)
		checkWin(what, r.Win)
	}
	for i, r := range p.Stalls {
		what := fmt.Sprintf("stall rule %d", i)
		if r.Node < AllNodes {
			errs = append(errs, fmt.Errorf("%s: negative node %d", what, r.Node))
		}
		checkWin(what, r.Win)
		if !r.Win.Bounded() {
			errs = append(errs, fmt.Errorf("%s: stall window must be finite (an unbounded stall cannot terminate)", what))
		}
	}
	return errors.Join(errs...)
}

// CheckNodes verifies that every concrete node / link endpoint referenced by
// the plan exists on a machine with n nodes (wildcards always pass). Used by
// sage-faultcheck and by runtimes before installing a plan.
func (p *Plan) CheckNodes(n int) error {
	if p == nil {
		return nil
	}
	var errs []error
	checkID := func(what string, id int) {
		if id != AllLinks && id >= n {
			errs = append(errs, fmt.Errorf("%s references node %d, machine has %d node(s)", what, id, n))
		}
	}
	for i, r := range p.Drops {
		what := fmt.Sprintf("drop rule %d", i)
		checkID(what, r.Link.Src)
		checkID(what, r.Link.Dst)
	}
	for i, r := range p.Degrades {
		what := fmt.Sprintf("degrade rule %d", i)
		checkID(what, r.Link.Src)
		checkID(what, r.Link.Dst)
	}
	for i, r := range p.Stalls {
		checkID(fmt.Sprintf("stall rule %d", i), r.Node)
	}
	return errors.Join(errs...)
}

// DropAll builds the canonical sweep plan: drop every message on every link
// with the given rate for the whole run. Used by the experiment fault sweep.
func DropAll(seed int64, rate float64) *Plan {
	if rate <= 0 {
		return &Plan{Seed: seed}
	}
	return &Plan{
		Seed:  seed,
		Drops: []DropRule{{Link: LinkSel{AllLinks, AllLinks}, Rate: rate, Win: Window{0, Forever}}},
	}
}

// RetryPolicy bounds the link-level retry loop the MPI substrate runs when a
// transfer attempt is dropped or the link is down. Backoff grows
// geometrically from Backoff by Multiplier per failed attempt, capped at
// MaxBackoff. After MaxAttempts failures the message is forced through the
// maintenance path (delivered at base link cost), which is what guarantees
// that no fault plan can deadlock a run — only slow it down.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     sim.Duration
	Multiplier  float64
	MaxBackoff  sim.Duration
}

// DefaultRetry is the policy both the SAGE runtime and the hand-coded
// baselines install, so the comparison under faults stays fair.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 24,
		Backoff:     50 * time.Microsecond,
		Multiplier:  2,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// BackoffFor returns the sleep before retry attempt n (n = 1 after the first
// failure).
func (rp RetryPolicy) BackoffFor(n int) sim.Duration {
	d := float64(rp.Backoff)
	for i := 1; i < n; i++ {
		d *= rp.Multiplier
		if d >= float64(rp.MaxBackoff) {
			return rp.MaxBackoff
		}
	}
	if d > float64(rp.MaxBackoff) {
		d = float64(rp.MaxBackoff)
	}
	return sim.Duration(d)
}

// WithDefaults fills zero fields.
func (rp RetryPolicy) WithDefaults() RetryPolicy {
	def := DefaultRetry()
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = def.MaxAttempts
	}
	if rp.Backoff <= 0 {
		rp.Backoff = def.Backoff
	}
	if rp.Multiplier < 1 {
		rp.Multiplier = def.Multiplier
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = def.MaxBackoff
	}
	return rp
}

// Resilience tunes the SAGE runtime's degraded-operation mode (the
// hand-coded baselines only get the link-level RetryPolicy; everything here
// is runtime-level behaviour layered above it).
type Resilience struct {
	// RecvTimeout re-arms a striped-transfer receive after this long,
	// emitting a recovery span so stalls are visible in traces. Zero selects
	// the default.
	RecvTimeout sim.Duration
	// CreditTimeout bounds one wait for a pipelining credit before the
	// runtime considers emergency overcommit. Zero selects the default.
	CreditTimeout sim.Duration
	// MaxCreditOvercommit is how many emergency buffer slots a transfer may
	// consume beyond BufferSlots while its consumer is unresponsive; the
	// producer keeps working through a consumer stall instead of convoying
	// behind it. Zero selects the default (2).
	MaxCreditOvercommit int
	// Degraded enables re-sequencing of striped transfers around stalled
	// nodes: each iteration, receives and sends whose peer node is inside a
	// stall window are moved to the back of the port's transfer list, so
	// work overlaps the stall instead of blocking at its head.
	Degraded bool
}

// WithDefaults fills zero fields.
func (r Resilience) WithDefaults() Resilience {
	if r.RecvTimeout <= 0 {
		r.RecvTimeout = 2 * time.Millisecond
	}
	if r.CreditTimeout <= 0 {
		r.CreditTimeout = 2 * time.Millisecond
	}
	if r.MaxCreditOvercommit <= 0 {
		r.MaxCreditOvercommit = 2
	}
	return r
}
