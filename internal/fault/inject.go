package fault

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Outcome is the injector's verdict on one transfer attempt.
type Outcome struct {
	// Down means the link has zero effective bandwidth right now: the
	// attempt is refused before occupying the wire (the sender pays software
	// overhead only) and must be retried.
	Down bool
	// Drop means the message is lost on the wire: the sender pays the full
	// send cost but the payload never arrives.
	Drop bool
	// BWFactor scales the link's bandwidth for this attempt (1 when
	// undegraded; always > 0 when Down is false).
	BWFactor float64
	// ExtraLatency is added to the link's delivery latency.
	ExtraLatency sim.Duration
}

// Injector instantiates a Plan for one simulation kernel. Like everything
// attached to a kernel it belongs to a single goroutine and needs no
// locking; create one fresh Injector per run (per kernel) — never share one
// across concurrent simulations. A nil *Injector is the disabled injector:
// every method is a no-op reporting "no fault".
//
// Every random decision is a counter-keyed hash of (plan seed, link id,
// virtual time, per-link attempt index). All inputs are virtual-machine
// state, so a faulted run is bit-reproducible at any host parallelism and
// with tracing on or off.
type Injector struct {
	plan *Plan
	seed uint64
	tr   *trace.Collector
	// Mutable injection state is kept strictly per node, because on a
	// sharded kernel (sim.Kernel.SetShards) the injector is consulted
	// concurrently by processes on different shards. Every call site passes
	// the node the calling process executes on (LinkAttempt's src,
	// StalledUntil's node), so per-node state inherits the kernel's
	// one-goroutine-per-shard confinement with no locking — exactly the
	// discipline the trace collector uses.
	nodes []nodeFaultState
}

// nodeFaultState is one node's injection bookkeeping.
type nodeFaultState struct {
	// attempts counts transfer attempts per destination, so two attempts
	// at the same virtual instant draw differently.
	attempts map[int]uint64
	// stallNoted remembers which window-start stalls have already been
	// traced, so one window is one span no matter how many processes hit
	// it.
	stallNoted map[sim.Time]bool
	counts     map[string]int
}

// NewInjector builds the per-kernel injector for the plan. A nil or empty
// plan yields a nil injector (the disabled injector).
func (p *Plan) NewInjector() *Injector {
	if p.Empty() {
		return nil
	}
	return &Injector{plan: p, seed: uint64(p.Seed)}
}

// Bind pre-sizes the per-node state for a machine of n nodes. The machine
// model calls it when the injector is installed; it must run before any
// concurrent (sharded) use. Idempotent; never shrinks.
func (in *Injector) Bind(n int) {
	if in == nil {
		return
	}
	in.grow(n - 1)
}

func (in *Injector) grow(node int) {
	for len(in.nodes) <= node {
		in.nodes = append(in.nodes, nodeFaultState{
			attempts:   map[int]uint64{},
			stallNoted: map[sim.Time]bool{},
			counts:     map[string]int{},
		})
	}
}

// state returns node's bookkeeping, growing on demand (growth only happens
// single-threaded: sharded runs are pre-sized by Bind).
func (in *Injector) state(node int) *nodeFaultState {
	if node >= len(in.nodes) {
		in.grow(node)
	}
	return &in.nodes[node]
}

// SetTrace attaches the run's trace collector so injected faults appear in
// the Chrome trace. Tracing only observes: no injection decision ever
// depends on the collector.
func (in *Injector) SetTrace(c *trace.Collector) {
	if in != nil {
		in.tr = c
	}
}

// Enabled reports whether any faults can be injected.
func (in *Injector) Enabled() bool { return in != nil }

// Counts reports how many faults of each kind ("drop", "down", "stall")
// have been injected so far, merged across nodes. Call between runs or
// after the kernel drains, not concurrently with a sharded run.
func (in *Injector) Counts() map[string]int {
	if in == nil {
		return nil
	}
	out := map[string]int{}
	for i := range in.nodes {
		for k, v := range in.nodes[i].counts {
			out[k] += v
		}
	}
	return out
}

// splitmix64 finaliser: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a deterministic uniform value in [0, 1) for one attempt.
func (in *Injector) draw(src, dst int, now sim.Time, attempt uint64) float64 {
	h := mix64(in.seed ^ mix64(uint64(src)<<32|uint64(uint32(dst))))
	h = mix64(h ^ uint64(now))
	h = mix64(h ^ attempt)
	return float64(h>>11) / (1 << 53)
}

// LinkAttempt decides the fate of one transfer attempt on the directed link
// src->dst at virtual time now. Degradations compose: bandwidth factors
// multiply and extra latencies add across all matching active rules; any
// factor reaching zero takes the link down. Drops are evaluated per rule
// with independent seeded draws.
func (in *Injector) LinkAttempt(src, dst int, now sim.Time) Outcome {
	out := Outcome{BWFactor: 1}
	if in == nil {
		return out
	}
	st := in.state(src)
	attempt := st.attempts[dst]
	st.attempts[dst] = attempt + 1

	for i := range in.plan.Degrades {
		r := &in.plan.Degrades[i]
		if !r.Link.Matches(src, dst) || !r.Win.Contains(now) {
			continue
		}
		out.BWFactor *= r.BWFactor
		out.ExtraLatency += r.ExtraLatency
	}
	// Zero-bandwidth guard: no division by zero downstream, the attempt is
	// refused instead of serialising forever.
	if out.BWFactor <= 0 {
		out.Down = true
		out.BWFactor = 0
		in.note("down", src, fmt.Sprintf("down link %d->%d", src, dst), now)
		return out
	}
	drawn := false
	var v float64
	for i := range in.plan.Drops {
		r := &in.plan.Drops[i]
		if !r.Link.Matches(src, dst) || !r.Win.Contains(now) || r.Rate <= 0 {
			continue
		}
		if !drawn {
			// One draw per attempt; rules compose as independent drop
			// chances via the complement product.
			v = in.draw(src, dst, now, attempt)
			drawn = true
		}
		keep := 1 - r.Rate
		if v >= keep {
			out.Drop = true
			in.note("drop", src, fmt.Sprintf("drop link %d->%d", src, dst), now)
			return out
		}
		// Rescale the draw so subsequent rules see an independent uniform.
		v /= keep
	}
	return out
}

// StalledUntil reports whether node is inside a stall window at virtual time
// now and, if so, when its CPU comes back. Overlapping windows chain: the
// returned restart time is past every window containing it.
func (in *Injector) StalledUntil(node int, now sim.Time) (sim.Time, bool) {
	if in == nil {
		return 0, false
	}
	end := now
	stalled := false
	for changed := true; changed; {
		changed = false
		for i := range in.plan.Stalls {
			r := &in.plan.Stalls[i]
			if r.Node != AllNodes && r.Node != node {
				continue
			}
			if r.Win.Contains(end) && r.Win.To > end {
				in.noteStall(node, r.Win)
				end = r.Win.To
				stalled = true
				changed = true
			}
		}
	}
	if !stalled {
		return 0, false
	}
	return end, true
}

// NodeStalled reports whether node is inside a stall window at time now
// (used by the runtime's degraded-mode re-sequencing; emits no events).
func (in *Injector) NodeStalled(node int, now sim.Time) bool {
	if in == nil {
		return false
	}
	for i := range in.plan.Stalls {
		r := &in.plan.Stalls[i]
		if (r.Node == AllNodes || r.Node == node) && r.Win.Contains(now) {
			return true
		}
	}
	return false
}

// note counts one injected fault and traces it as an instant event.
func (in *Injector) note(kind string, node int, name string, at sim.Time) {
	in.state(node).counts[kind]++
	if in.tr.Enabled() {
		in.tr.FaultPoint(node, name, at)
	}
}

// noteStall counts and traces one stall window as a span, once per
// (node, window).
func (in *Injector) noteStall(node int, w Window) {
	st := in.state(node)
	if st.stallNoted[w.From] {
		return
	}
	st.stallNoted[w.From] = true
	st.counts["stall"]++
	if in.tr.Enabled() {
		in.tr.FaultSpan(node, fmt.Sprintf("stall node %d", node), w.From, w.To)
	}
}
