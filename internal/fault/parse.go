package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// maxPlanLines bounds parser work on hostile input (fuzzing guard).
const maxPlanLines = 10000

// ParsePlan parses the fault-plan text format and validates the result.
//
// The format is line-oriented; '#' starts a comment, blank lines are
// ignored. Durations use Go syntax (50us, 2ms, 1.5s); link selectors are
// "src->dst" with '*' as a wildcard on either side; windows default to the
// whole run and are given as "from=<dur> to=<dur>" offsets from simulation
// start.
//
//	# transient fabric trouble around t=1ms
//	seed 42
//	drop link=* rate=0.05
//	drop link=0->1 rate=0.5 from=1ms to=3ms
//	degrade link=2->3 bw=0.25 lat=+40us from=0 to=2ms
//	degrade link=1->0 bw=0 from=500us to=800us   # full outage
//	stall node=2 at=2ms for=500us
func ParsePlan(src string) (*Plan, error) {
	p := &Plan{}
	lines := strings.Split(src, "\n")
	if len(lines) > maxPlanLines {
		return nil, fmt.Errorf("fault: plan has %d lines, limit %d", len(lines), maxPlanLines)
	}
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseLine(p, fields); err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", ln+1, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault: invalid plan: %w", err)
	}
	return p, nil
}

func parseLine(p *Plan, fields []string) error {
	switch fields[0] {
	case "seed":
		if len(fields) != 2 {
			return fmt.Errorf("seed takes exactly one value")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %v", fields[1], err)
		}
		p.Seed = v
		return nil
	case "drop":
		kv, err := keyvals(fields[1:], "link", "rate", "from", "to")
		if err != nil {
			return err
		}
		r := DropRule{Link: LinkSel{AllLinks, AllLinks}, Win: Window{0, Forever}}
		if s, ok := kv["link"]; ok {
			if r.Link, err = parseLink(s); err != nil {
				return err
			}
		}
		s, ok := kv["rate"]
		if !ok {
			return fmt.Errorf("drop requires rate=")
		}
		if r.Rate, err = strconv.ParseFloat(s, 64); err != nil {
			return fmt.Errorf("bad rate %q: %v", s, err)
		}
		if r.Win, err = parseWindow(kv); err != nil {
			return err
		}
		p.Drops = append(p.Drops, r)
		return nil
	case "degrade":
		kv, err := keyvals(fields[1:], "link", "bw", "lat", "from", "to")
		if err != nil {
			return err
		}
		r := DegradeRule{Link: LinkSel{AllLinks, AllLinks}, BWFactor: 1, Win: Window{0, Forever}}
		if s, ok := kv["link"]; ok {
			if r.Link, err = parseLink(s); err != nil {
				return err
			}
		}
		if s, ok := kv["bw"]; ok {
			if r.BWFactor, err = strconv.ParseFloat(s, 64); err != nil {
				return fmt.Errorf("bad bw %q: %v", s, err)
			}
		}
		if s, ok := kv["lat"]; ok {
			d, err := time.ParseDuration(strings.TrimPrefix(s, "+"))
			if err != nil {
				return fmt.Errorf("bad lat %q: %v", s, err)
			}
			r.ExtraLatency = d
		}
		if _, hasBW := kv["bw"]; !hasBW {
			if _, hasLat := kv["lat"]; !hasLat {
				return fmt.Errorf("degrade requires bw= and/or lat=")
			}
		}
		if r.Win, err = parseWindow(kv); err != nil {
			return err
		}
		p.Degrades = append(p.Degrades, r)
		return nil
	case "stall":
		kv, err := keyvals(fields[1:], "node", "at", "for")
		if err != nil {
			return err
		}
		r := StallRule{Node: AllNodes}
		if s, ok := kv["node"]; ok && s != "*" {
			if r.Node, err = strconv.Atoi(s); err != nil {
				return fmt.Errorf("bad node %q: %v", s, err)
			}
		}
		at, ok := kv["at"]
		if !ok {
			return fmt.Errorf("stall requires at=")
		}
		start, err := parseOffset(at)
		if err != nil {
			return fmt.Errorf("bad at %q: %v", at, err)
		}
		dur, ok := kv["for"]
		if !ok {
			return fmt.Errorf("stall requires for=")
		}
		d, err := time.ParseDuration(dur)
		if err != nil {
			return fmt.Errorf("bad for %q: %v", dur, err)
		}
		r.Win = Window{From: start, To: start.Add(d)}
		p.Stalls = append(p.Stalls, r)
		return nil
	default:
		return fmt.Errorf("unknown directive %q (want seed, drop, degrade or stall)", fields[0])
	}
}

// keyvals splits "k=v" fields, rejecting unknown or duplicate keys.
func keyvals(fields []string, allowed ...string) (map[string]string, error) {
	ok := map[string]bool{}
	for _, a := range allowed {
		ok[a] = true
	}
	out := map[string]string{}
	for _, f := range fields {
		k, v, found := strings.Cut(f, "=")
		if !found || k == "" || v == "" {
			return nil, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		if !ok[k] {
			return nil, fmt.Errorf("unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		out[k] = v
	}
	return out, nil
}

// parseLink parses "src->dst" with '*' wildcards, or a bare "*" for any
// link.
func parseLink(s string) (LinkSel, error) {
	if s == "*" {
		return LinkSel{AllLinks, AllLinks}, nil
	}
	a, b, found := strings.Cut(s, "->")
	if !found {
		return LinkSel{}, fmt.Errorf("bad link %q (want src->dst or *)", s)
	}
	sel := LinkSel{AllLinks, AllLinks}
	var err error
	if a != "*" {
		if sel.Src, err = strconv.Atoi(a); err != nil || sel.Src < 0 {
			return LinkSel{}, fmt.Errorf("bad link source %q", a)
		}
	}
	if b != "*" {
		if sel.Dst, err = strconv.Atoi(b); err != nil || sel.Dst < 0 {
			return LinkSel{}, fmt.Errorf("bad link destination %q", b)
		}
	}
	return sel, nil
}

// parseOffset parses a virtual-time offset: "0" or a Go duration.
func parseOffset(s string) (sim.Time, error) {
	if s == "0" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative offset %v", d)
	}
	return sim.Time(0).Add(d), nil
}

// parseWindow reads optional from=/to= keys (defaults: whole run).
func parseWindow(kv map[string]string) (Window, error) {
	w := Window{0, Forever}
	if s, ok := kv["from"]; ok {
		t, err := parseOffset(s)
		if err != nil {
			return w, fmt.Errorf("bad from %q: %v", s, err)
		}
		w.From = t
	}
	if s, ok := kv["to"]; ok {
		t, err := parseOffset(s)
		if err != nil {
			return w, fmt.Errorf("bad to %q: %v", s, err)
		}
		w.To = t
	}
	return w, nil
}

// String renders the plan back in the text format ParsePlan accepts
// (round-trippable; used by sage-faultcheck to echo the normalised plan).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	win := func(w Window) string {
		if w.From == 0 && !w.Bounded() {
			return ""
		}
		s := fmt.Sprintf(" from=%v", sim.Duration(w.From))
		if w.Bounded() {
			s += fmt.Sprintf(" to=%v", sim.Duration(w.To))
		}
		return s
	}
	link := func(l LinkSel) string {
		side := func(v int) string {
			if v == AllLinks {
				return "*"
			}
			return strconv.Itoa(v)
		}
		if l.Src == AllLinks && l.Dst == AllLinks {
			return "*"
		}
		return side(l.Src) + "->" + side(l.Dst)
	}
	for _, r := range p.Drops {
		fmt.Fprintf(&b, "drop link=%s rate=%v%s\n", link(r.Link), r.Rate, win(r.Win))
	}
	for _, r := range p.Degrades {
		fmt.Fprintf(&b, "degrade link=%s bw=%v lat=%v%s\n", link(r.Link), r.BWFactor, r.ExtraLatency, win(r.Win))
	}
	for _, r := range p.Stalls {
		node := "*"
		if r.Node != AllNodes {
			node = strconv.Itoa(r.Node)
		}
		fmt.Fprintf(&b, "stall node=%s at=%v for=%v\n", node, sim.Duration(r.Win.From), r.Win.To.Sub(r.Win.From))
	}
	return b.String()
}
