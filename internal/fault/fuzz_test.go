package fault

import "testing"

// FuzzParsePlan feeds arbitrary text to the fault-plan parser: bad input must
// be rejected with an error, never a panic, and any accepted plan must be
// valid and survive a normalise/re-parse round trip (String is the parser's
// inverse on the plans it accepts).
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"",
		"seed 42",
		"drop link=* rate=0.05",
		"drop link=0->1 rate=0.5 from=1ms to=3ms",
		"degrade link=2->3 bw=0.25 lat=+40us from=0 to=2ms",
		"degrade link=1->0 bw=0 from=500us to=800us",
		"stall node=2 at=2ms for=500us",
		"stall node=* at=10ms for=1ms",
		"# comment only\n\nseed 7\ndrop rate=0.1 # trailing",
		"seed 42\ndrop link=* rate=0.05\ndegrade link=0->1 bw=0.5\nstall node=0 at=1ms for=1ms",
		"drop rate=1.5",
		"drop rate=0.5 rate=0.5",
		"degrade link=0->1",
		"stall node=0 at=1ms",
		"drop link=0>1 rate=0.5",
		"seed 99999999999999999999",
		"drop rate=0.5 from=3ms to=1ms",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePlan(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan accepted an invalid plan: %v\ninput: %q", verr, src)
		}
		text := p.String()
		p2, err := ParsePlan(text)
		if err != nil {
			t.Fatalf("normalised plan does not re-parse: %v\nnormalised: %q\ninput: %q", err, text, src)
		}
		if p2.String() != text {
			t.Fatalf("normalisation not a fixed point:\nfirst:  %q\nsecond: %q\ninput: %q", text, p2.String(), src)
		}
	})
}
