package fault

import (
	"strings"
	"testing"
	"time"
)

const examplePlan = `
# transient fabric trouble around t=1ms
seed 42
drop link=* rate=0.05
drop link=0->1 rate=0.5 from=1ms to=3ms
degrade link=2->3 bw=0.25 lat=+40us from=0 to=2ms
degrade link=1->0 bw=0 from=500us to=800us   # full outage
stall node=2 at=2ms for=500us
stall node=* at=10ms for=1ms
`

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan(examplePlan)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Drops) != 2 || len(p.Degrades) != 2 || len(p.Stalls) != 2 {
		t.Fatalf("unexpected plan shape: %+v", p)
	}
	if p.Drops[0].Link != (LinkSel{AllLinks, AllLinks}) || p.Drops[0].Win != (Window{0, Forever}) {
		t.Fatalf("wildcard drop defaults wrong: %+v", p.Drops[0])
	}
	d := p.Drops[1]
	if d.Link != (LinkSel{0, 1}) || d.Rate != 0.5 ||
		d.Win.From != ms(1) || d.Win.To != ms(3) {
		t.Fatalf("windowed drop wrong: %+v", d)
	}
	g := p.Degrades[0]
	if g.Link != (LinkSel{2, 3}) || g.BWFactor != 0.25 || g.ExtraLatency != 40*time.Microsecond {
		t.Fatalf("degrade wrong: %+v", g)
	}
	if p.Degrades[1].BWFactor != 0 {
		t.Fatalf("outage not parsed: %+v", p.Degrades[1])
	}
	s := p.Stalls[0]
	if s.Node != 2 || s.Win.From != ms(2) || s.Win.To.Sub(s.Win.From) != 500*time.Microsecond {
		t.Fatalf("stall wrong: %+v", s)
	}
	if p.Stalls[1].Node != AllNodes {
		t.Fatalf("wildcard stall wrong: %+v", p.Stalls[1])
	}
}

// TestParseRoundTrip pins String as the normalised, re-parseable form.
func TestParseRoundTrip(t *testing.T) {
	p, err := ParsePlan(examplePlan)
	if err != nil {
		t.Fatal(err)
	}
	text := p.String()
	p2, err := ParsePlan(text)
	if err != nil {
		t.Fatalf("normalised plan does not re-parse: %v\n%s", err, text)
	}
	if p2.String() != text {
		t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", text, p2.String())
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := ParsePlan("# only comments\n\n   \n")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("comment-only plan not empty: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown directive", "boom rate=1", "unknown directive"},
		{"drop without rate", "drop link=*", "requires rate"},
		{"bad rate", "drop rate=lots", "bad rate"},
		{"rate out of range", "drop rate=1.5", "outside [0, 1]"},
		{"unknown key", "drop rate=0.5 color=red", "unknown key"},
		{"duplicate key", "drop rate=0.5 rate=0.2", "duplicate key"},
		{"malformed field", "drop rate", "malformed field"},
		{"bad link", "drop link=0>1 rate=0.5", "bad link"},
		{"negative link", "drop link=-1->0 rate=0.5", "bad link source"},
		{"degrade needs bw or lat", "degrade link=0->1", "bw= and/or lat="},
		{"bad bw", "degrade bw=half", "bad bw"},
		{"bad lat", "degrade lat=fast", "bad lat"},
		{"stall without at", "stall node=0 for=1ms", "requires at"},
		{"stall without for", "stall node=0 at=1ms", "requires for"},
		{"bad stall node", "stall node=x at=1ms for=1ms", "bad node"},
		{"bad window", "drop rate=0.5 from=3ms to=1ms", "empty window"},
		{"bad seed", "seed abc", "bad seed"},
		{"seed arity", "seed 1 2", "exactly one"},
		{"negative offset", "drop rate=0.5 from=-1ms", "negative offset"},
	}
	for _, tc := range cases {
		_, err := ParsePlan(tc.src)
		if err == nil {
			t.Errorf("%s: %q accepted", tc.name, tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseLineLimit(t *testing.T) {
	src := strings.Repeat("\n", maxPlanLines+1)
	if _, err := ParsePlan(src); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized plan accepted (err=%v)", err)
	}
}
