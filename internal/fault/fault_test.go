package fault

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(0).Add(time.Duration(n) * time.Millisecond) }

func TestValidate(t *testing.T) {
	good := &Plan{
		Seed:     1,
		Drops:    []DropRule{{Link: LinkSel{AllLinks, AllLinks}, Rate: 0.5, Win: Window{0, Forever}}},
		Degrades: []DegradeRule{{Link: LinkSel{0, 1}, BWFactor: 0, Win: Window{ms(1), ms(2)}}},
		Stalls:   []StallRule{{Node: 2, Win: Window{ms(1), ms(2)}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []struct {
		name string
		p    Plan
		want string
	}{
		{"rate above 1", Plan{Drops: []DropRule{{Rate: 1.5, Win: Window{0, Forever}}}}, "rate"},
		{"negative rate", Plan{Drops: []DropRule{{Rate: -0.1, Win: Window{0, Forever}}}}, "rate"},
		{"bw above 1", Plan{Degrades: []DegradeRule{{BWFactor: 2, Win: Window{0, Forever}}}}, "bandwidth"},
		{"negative latency", Plan{Degrades: []DegradeRule{{BWFactor: 1, ExtraLatency: -1, Win: Window{0, Forever}}}}, "latency"},
		{"empty window", Plan{Drops: []DropRule{{Rate: 0.1, Win: Window{ms(2), ms(1)}}}}, "empty window"},
		{"negative window start", Plan{Drops: []DropRule{{Rate: 0.1, Win: Window{-1, Forever}}}}, "window start"},
		{"unbounded stall", Plan{Stalls: []StallRule{{Node: 0, Win: Window{0, Forever}}}}, "finite"},
		{"negative link", Plan{Drops: []DropRule{{Rate: 0.1, Link: LinkSel{-2, 0}, Win: Window{0, Forever}}}}, "link endpoint"},
		{"negative stall node", Plan{Stalls: []StallRule{{Node: -2, Win: Window{0, ms(1)}}}}, "negative node"},
	}
	for _, tc := range bad {
		err := tc.p.Validate()
		if err == nil {
			t.Errorf("%s: invalid plan accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan should validate: %v", err)
	}
}

func TestCheckNodes(t *testing.T) {
	p := &Plan{
		Drops:  []DropRule{{Link: LinkSel{0, 3}, Rate: 0.1, Win: Window{0, Forever}}},
		Stalls: []StallRule{{Node: 2, Win: Window{0, ms(1)}}},
	}
	if err := p.CheckNodes(4); err != nil {
		t.Fatalf("plan fits 4 nodes: %v", err)
	}
	if err := p.CheckNodes(3); err == nil {
		t.Fatal("link 0->3 accepted on a 3-node machine")
	}
	if err := p.CheckNodes(2); err == nil {
		t.Fatal("stall on node 2 accepted on a 2-node machine")
	}
	wild := DropAll(1, 0.5)
	if err := wild.CheckNodes(1); err != nil {
		t.Fatalf("wildcard plan must fit any machine: %v", err)
	}
}

func TestDropAll(t *testing.T) {
	if p := DropAll(3, 0); !p.Empty() {
		t.Fatal("rate-0 DropAll should inject nothing")
	}
	p := DropAll(3, 0.25)
	if p.Empty() || len(p.Drops) != 1 || p.Seed != 3 {
		t.Fatalf("unexpected plan: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := p.Drops[0]
	if !r.Link.Matches(0, 7) || !r.Win.Contains(ms(1000)) {
		t.Fatalf("DropAll rule not universal: %+v", r)
	}
}

func TestRetryBackoff(t *testing.T) {
	rp := DefaultRetry()
	if got := rp.BackoffFor(1); got != 50*time.Microsecond {
		t.Fatalf("first backoff %v", got)
	}
	if got := rp.BackoffFor(2); got != 100*time.Microsecond {
		t.Fatalf("second backoff %v", got)
	}
	if got := rp.BackoffFor(100); got != rp.MaxBackoff {
		t.Fatalf("backoff not capped: %v", got)
	}
	if got := (RetryPolicy{}).WithDefaults(); got != DefaultRetry() {
		t.Fatalf("zero policy should default: %+v", got)
	}
	custom := RetryPolicy{MaxAttempts: 3}.WithDefaults()
	if custom.MaxAttempts != 3 || custom.Backoff != DefaultRetry().Backoff {
		t.Fatalf("partial defaults wrong: %+v", custom)
	}
}

func TestResilienceDefaults(t *testing.T) {
	r := Resilience{}.WithDefaults()
	if r.RecvTimeout <= 0 || r.CreditTimeout <= 0 || r.MaxCreditOvercommit <= 0 {
		t.Fatalf("defaults not filled: %+v", r)
	}
	if r.Degraded {
		t.Fatal("Degraded must stay opt-in")
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if out := in.LinkAttempt(0, 1, ms(1)); out.Down || out.Drop || out.BWFactor != 1 || out.ExtraLatency != 0 {
		t.Fatalf("nil injector injected: %+v", out)
	}
	if _, ok := in.StalledUntil(0, ms(1)); ok {
		t.Fatal("nil injector stalled a node")
	}
	if in.NodeStalled(0, ms(1)) {
		t.Fatal("nil injector reported a stall")
	}
	in.SetTrace(nil) // must not panic
	if in.Counts() != nil {
		t.Fatal("nil injector has counts")
	}
}

// TestInjectorDeterminism pins the core reproducibility contract: two
// injectors built from the same plan return identical verdicts for an
// identical attempt sequence.
func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{
		Seed:  42,
		Drops: []DropRule{{Link: LinkSel{AllLinks, AllLinks}, Rate: 0.3, Win: Window{0, Forever}}},
		Degrades: []DegradeRule{
			{Link: LinkSel{0, 1}, BWFactor: 0.5, ExtraLatency: 10 * time.Microsecond, Win: Window{ms(1), ms(3)}},
		},
	}
	a, b := plan.NewInjector(), plan.NewInjector()
	for i := 0; i < 500; i++ {
		src, dst := i%3, (i+1)%3
		now := sim.Time(0).Add(time.Duration(i) * 17 * time.Microsecond)
		oa, ob := a.LinkAttempt(src, dst, now), b.LinkAttempt(src, dst, now)
		if oa != ob {
			t.Fatalf("attempt %d: verdicts diverge: %+v vs %+v", i, oa, ob)
		}
	}
}

// TestAttemptCounterVariesDraws checks that two attempts at the same virtual
// instant on the same link can differ — otherwise a retry at the same time
// would be dropped forever and the retry loop would always exhaust its
// budget.
func TestAttemptCounterVariesDraws(t *testing.T) {
	in := DropAll(1, 0.5).NewInjector()
	var dropped, passed int
	for i := 0; i < 200; i++ {
		if in.LinkAttempt(0, 1, ms(1)).Drop {
			dropped++
		} else {
			passed++
		}
	}
	if dropped == 0 || passed == 0 {
		t.Fatalf("same-instant attempts all agree (dropped=%d passed=%d): counter not keyed in", dropped, passed)
	}
}

func TestDropRateDistribution(t *testing.T) {
	const rate, n = 0.3, 20000
	in := DropAll(9, rate).NewInjector()
	drops := 0
	for i := 0; i < n; i++ {
		now := sim.Time(0).Add(time.Duration(i) * time.Microsecond)
		if in.LinkAttempt(i%4, (i+1)%4, now).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < rate-0.02 || got > rate+0.02 {
		t.Fatalf("empirical drop rate %.4f far from %.2f", got, rate)
	}
	if in.Counts()["drop"] != drops {
		t.Fatalf("counts[drop]=%d, want %d", in.Counts()["drop"], drops)
	}
}

func TestDegradeCompose(t *testing.T) {
	plan := &Plan{
		Seed: 1,
		Degrades: []DegradeRule{
			{Link: LinkSel{0, 1}, BWFactor: 0.5, ExtraLatency: 10 * time.Microsecond, Win: Window{0, ms(10)}},
			{Link: LinkSel{AllLinks, 1}, BWFactor: 0.5, ExtraLatency: 5 * time.Microsecond, Win: Window{0, ms(10)}},
		},
	}
	in := plan.NewInjector()
	out := in.LinkAttempt(0, 1, ms(1))
	if out.BWFactor != 0.25 || out.ExtraLatency != 15*time.Microsecond {
		t.Fatalf("rules did not compose: %+v", out)
	}
	// Outside the window and on unmatched links the link is clean.
	if out := in.LinkAttempt(0, 1, ms(20)); out.BWFactor != 1 || out.ExtraLatency != 0 {
		t.Fatalf("degradation leaked outside its window: %+v", out)
	}
	if out := in.LinkAttempt(1, 0, ms(1)); out.BWFactor != 1 {
		t.Fatalf("degradation leaked to reverse link: %+v", out)
	}
}

func TestZeroBandwidthIsDown(t *testing.T) {
	plan := &Plan{
		Seed:     1,
		Degrades: []DegradeRule{{Link: LinkSel{0, 1}, BWFactor: 0, Win: Window{0, ms(5)}}},
	}
	in := plan.NewInjector()
	out := in.LinkAttempt(0, 1, ms(1))
	if !out.Down || out.BWFactor != 0 {
		t.Fatalf("zero-bandwidth link not down: %+v", out)
	}
	if in.Counts()["down"] != 1 {
		t.Fatalf("down not counted: %v", in.Counts())
	}
	if out := in.LinkAttempt(0, 1, ms(6)); out.Down {
		t.Fatal("link still down after the window")
	}
}

func TestStalledUntilChainsWindows(t *testing.T) {
	plan := &Plan{
		Seed: 1,
		Stalls: []StallRule{
			{Node: 2, Win: Window{ms(1), ms(2)}},
			{Node: 2, Win: Window{From: ms(1) + sim.Time(500*time.Microsecond), To: ms(3)}},
		},
	}
	in := plan.NewInjector()
	end, ok := in.StalledUntil(2, ms(1))
	if !ok || end != ms(3) {
		t.Fatalf("overlapping stalls did not chain: end=%v ok=%v", end, ok)
	}
	if in.Counts()["stall"] != 2 {
		t.Fatalf("stall windows counted %d times, want 2", in.Counts()["stall"])
	}
	// Re-entering the same windows must not double-count.
	in.StalledUntil(2, ms(1))
	if in.Counts()["stall"] != 2 {
		t.Fatalf("stall windows recounted: %v", in.Counts())
	}
	if _, ok := in.StalledUntil(2, ms(4)); ok {
		t.Fatal("node stalled after every window closed")
	}
	if _, ok := in.StalledUntil(0, ms(1)); ok {
		t.Fatal("wrong node stalled")
	}
	if !in.NodeStalled(2, ms(1)) || in.NodeStalled(2, ms(4)) {
		t.Fatal("NodeStalled disagrees with the windows")
	}
}
