package fault

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// decodeFuzzCorpus extracts the single string argument from a Go fuzz corpus
// v1 file ("go test fuzz v1\nstring(...)").
func decodeFuzzCorpus(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a fuzz corpus v1 file", path)
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "string(")
	body = strings.TrimSuffix(body, ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("%s: bad string literal: %v", path, err)
	}
	return s
}

// TestFuzzCorpusReplay drives every committed FuzzParsePlan corpus entry
// through the fault-plan parser explicitly; any plan that parses must
// validate-or-reject and round-trip through String.
func TestFuzzCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParsePlan")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		src := decodeFuzzCorpus(t, filepath.Join(dir, e.Name()))
		t.Run(e.Name(), func(t *testing.T) {
			plan, err := ParsePlan(src)
			if err != nil {
				t.Logf("rejected (ok): %v", err)
				return
			}
			if err := plan.Validate(); err != nil {
				t.Logf("validate rejected (ok): %v", err)
				return
			}
			// A valid plan's text form must re-parse to an equivalent plan.
			back, err := ParsePlan(plan.String())
			if err != nil {
				t.Fatalf("normalised plan does not re-parse: %v\n%s", err, plan.String())
			}
			if back.String() != plan.String() {
				t.Fatalf("plan text not stable:\n--- first\n%s--- second\n%s", plan.String(), back.String())
			}
		})
	}
}
