// Package cli fixes the exit-code discipline shared by every SAGE command:
//
//	0 — success
//	1 — runtime or validation failure (a simulation failed, a file was
//	    unreadable, a check did not pass)
//	2 — usage error (bad flags, missing required arguments)
//
// Before this discipline the tools mixed the two failure classes — several
// exited 1 for a typo'd flag and 1 for a real failure, and some printed
// errors without any failing status — which makes them unscriptable: CI jobs
// and the serve smoke tests need to distinguish "you called me wrong" from
// "the thing you asked for went wrong".
//
// Commands mark command-line mistakes with Usagef (or wrap ErrUsage) and let
// every other error default to a failure exit; ExitCode maps an error to the
// right code.
package cli

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Exit codes shared by all SAGE commands.
const (
	ExitOK      = 0
	ExitFailure = 1
	ExitUsage   = 2
)

// ErrUsage marks an error as a command-line usage mistake. Wrap it
// (fmt.Errorf("...: %w", cli.ErrUsage)) or use Usagef.
var ErrUsage = errors.New("usage error")

// Usagef builds a usage error: ExitCode returns ExitUsage for it.
func Usagef(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrUsage)...)
}

// IsUsage reports whether err is (or wraps) a usage error.
func IsUsage(err error) bool { return errors.Is(err, ErrUsage) }

// ParseRange parses a half-open seed range "from:to" (to >= from). Shared
// by every command taking a -seed-range flag so they agree on the grammar.
func ParseRange(s string) (int64, int64, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, Usagef("bad seed range %q, want from:to", s)
	}
	from, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return 0, 0, Usagef("bad seed range %q: %v", s, err)
	}
	to, err := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return 0, 0, Usagef("bad seed range %q: %v", s, err)
	}
	if to < from {
		return 0, 0, Usagef("bad seed range %q: reversed", s)
	}
	return from, to, nil
}

// ExitCode maps an error to the command's exit code: nil is success, usage
// errors exit 2, everything else exits 1.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case IsUsage(err):
		return ExitUsage
	default:
		return ExitFailure
	}
}
