package cli

import (
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	wrapped := fmt.Errorf("context: %w", Usagef("missing -model"))
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", errors.New("boom"), ExitFailure},
		{"usage", Usagef("bad -n %d", 3), ExitUsage},
		{"wrapped-usage", wrapped, ExitUsage},
		{"sentinel", ErrUsage, ExitUsage},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

func TestUsagefMessage(t *testing.T) {
	err := Usagef("bad -seed-range %q", "x")
	if !IsUsage(err) {
		t.Fatal("Usagef error not recognized")
	}
	if want := `bad -seed-range "x"`; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("message = %q, want prefix %q", err.Error(), want)
	}
}
