package cli

import (
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	wrapped := fmt.Errorf("context: %w", Usagef("missing -model"))
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", errors.New("boom"), ExitFailure},
		{"usage", Usagef("bad -n %d", 3), ExitUsage},
		{"wrapped-usage", wrapped, ExitUsage},
		{"sentinel", ErrUsage, ExitUsage},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in       string
		from, to int64
		ok       bool
	}{
		{"0:200", 0, 200, true},
		{"5:5", 5, 5, true},
		{" 3 : 9 ", 3, 9, true},
		{"-4:4", -4, 4, true},
		{"9:3", 0, 0, false},
		{"12", 0, 0, false},
		{"a:b", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, tc := range cases {
		from, to, err := ParseRange(tc.in)
		if tc.ok && (err != nil || from != tc.from || to != tc.to) {
			t.Errorf("ParseRange(%q) = %d, %d, %v; want %d, %d", tc.in, from, to, err, tc.from, tc.to)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("ParseRange(%q) accepted, want error", tc.in)
			} else if !IsUsage(err) {
				t.Errorf("ParseRange(%q) error is not a usage error: %v", tc.in, err)
			}
		}
	}
}

func TestUsagefMessage(t *testing.T) {
	err := Usagef("bad -seed-range %q", "x")
	if !IsUsage(err) {
		t.Fatal("Usagef error not recognized")
	}
	if want := `bad -seed-range "x"`; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("message = %q, want prefix %q", err.Error(), want)
	}
}
