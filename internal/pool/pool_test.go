package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestOrderPreserved: results land in input order at every parallelism.
func TestOrderPreserved(t *testing.T) {
	for _, p := range []int{0, 1, 2, 8, 100} {
		got, err := Run(p, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: slot %d = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

// TestLowestIndexError: with several failures, the error a sequential loop
// would hit first is the one returned.
func TestLowestIndexError(t *testing.T) {
	for _, p := range []int{1, 4} {
		_, err := Run(p, 20, func(i int) (int, error) {
			if i == 7 || i == 3 || i == 15 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("parallelism %d: err = %v, want job 3's", p, err)
		}
	}
}

// TestFirstFailureStopsDispatch: after a failure the dispatcher stops
// handing out indices, so a long batch is not fully executed.
func TestFirstFailureStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Run(2, 10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Error("every job ran despite an index-0 failure")
	}
}

// TestZeroJobs: an empty batch succeeds with an empty slice.
func TestZeroJobs(t *testing.T) {
	got, err := Run(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
