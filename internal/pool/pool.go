// Package pool provides the order-preserving worker pool every fan-out in
// the repo runs on: experiment sweeps, the serve daemon's repetition
// batches, the twin's GA candidate promotions and the streaming comparison.
// It lives below those packages precisely so they can all share it without
// import cycles.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes n independent jobs on a bounded worker pool and returns
// their results in input order.
//
// Every job must be self-contained — each simulation run owns a fresh
// sim.Kernel, machine and RNG seed, so host-level concurrency cannot change
// any virtual-time result. Because results are written to slot i regardless
// of completion order, pooled output is byte-identical to sequential output:
// parallelism only changes wall-clock time, never a reported number.
//
// parallelism <= 0 selects runtime.GOMAXPROCS(0) workers; 1 runs the jobs
// inline on the calling goroutine (the sequential reference the determinism
// tests compare against). When several jobs fail, the error of the lowest
// input index is returned — the same error a sequential loop would hit
// first.
//
// The first failure cancels the rest of the batch: the dispatcher stops
// handing out new indices, so a long sweep does not burn hours simulating
// cells whose results will be discarded. (A daemon putting a deadline on a
// request relies on this: one canceled run must stop the whole batch.)
// Indices already handed out run to completion, and dispatch is in input
// order, so the dispatched set is always a prefix 0..k that covers every
// index a sequential loop would have reached before its first error — the
// lowest-index-error contract is unaffected by cancellation.
func Run[T any](parallelism, n int, job func(i int) (T, error)) ([]T, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	results := make([]T, n)
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = job(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
