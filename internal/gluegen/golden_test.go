package gluegen

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/platforms"
)

// TestGoldenTableSource pins the exact generated table source for a tiny
// model. The table-source grammar is a wire format (sage-gluegen writes it,
// sage-run parses it), so accidental format changes must be caught — update
// this golden text deliberately when the grammar changes.
func TestGoldenTableSource(t *testing.T) {
	a := model.NewApp("tiny")
	mt, err := a.AddType(&model.DataType{Name: "m", Rows: 4, Cols: 4, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := a.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 9}})
	src.AddOutput("out", mt, model.ByRows)
	work := a.AddFunction(&model.Function{Name: "work", Kind: "fft_rows", Threads: 2})
	work.AddInput("in", mt, model.ByRows)
	work.AddOutput("out", mt, model.ByRows)
	snk := a.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.ByRows)
	if _, err := a.Connect("src", "out", "work", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect("work", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	a.AssignIDs()
	mapping := model.NewMapping()
	mapping.Set("src", 0)
	mapping.Set("work", 0, 1)
	mapping.Set("snk", 1)

	out, err := Generate(Input{App: a, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}

	const golden = `(app "tiny" "CSPI" 2)
(function 0 "src" "source_matrix" 1 (0) (("seed" 9)) #f)
(outport 0 "out" 4 4 8 "rows" (0))
(function 1 "work" "fft_rows" 2 (0 1) () #f)
(inport 1 "in" 4 4 8 "rows" (0))
(outport 1 "out" 4 4 8 "rows" (1))
(function 2 "snk" "sink_matrix" 1 (1) () #f)
(inport 2 "in" 4 4 8 "rows" (1))
(buffer 0 0 "out" 1 "in" 4 4 8)
(xfer 0 0 0 (0 0 2 4))
(xfer 0 0 1 (2 0 2 4))
(buffer 1 1 "out" 2 "in" 4 4 8)
(xfer 1 0 0 (0 0 2 4))
(xfer 1 1 0 (2 0 2 4))
(order (0 1 2))
`
	if got := out.TableSource; got != golden {
		t.Fatalf("table source drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
	// The glue listing carries the human-readable view of the same facts.
	for _, want := range []string{"[1] work", "buffer 0: src.out (rows) -> work.in (rows), 4x4", "execution order: (0 1 2)"} {
		if !strings.Contains(out.GlueSource, want) {
			t.Fatalf("glue listing missing %q:\n%s", want, out.GlueSource)
		}
	}
}
