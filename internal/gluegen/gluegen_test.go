package gluegen

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/model"
	"repro/internal/platforms"
)

// genFor generates tables for a built-in benchmark app.
func genFor(t *testing.T, build func(n, threads int) (*model.App, error), n, threads, nodes int) *Output {
	t.Helper()
	app, err := build(n, threads)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := model.SpreadParallel(app, nodes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateFFT2DTables(t *testing.T) {
	out := genFor(t, apps.FFT2D, 64, 4, 4)
	tb := out.Tables

	if tb.AppName != "fft2d_64" || tb.Platform != "CSPI" || tb.NumNodes != 4 {
		t.Fatalf("header: %+v", tb)
	}
	if len(tb.Functions) != 4 {
		t.Fatalf("functions = %d", len(tb.Functions))
	}
	if len(tb.Buffers) != 3 {
		t.Fatalf("buffers = %d", len(tb.Buffers))
	}
	if len(tb.Order) != 4 || tb.Order[0] != 0 {
		t.Fatalf("order = %v", tb.Order)
	}
	// The fft_rows -> fft_cols buffer is the corner turn: with 4 source and
	// 4 destination threads it must carry 16 tile transfers.
	turn := tb.Buffers[1]
	if len(turn.Transfers) != 16 {
		t.Fatalf("corner-turn buffer has %d transfers, want 16", len(turn.Transfers))
	}
	// Every tile is 16x16 at this size.
	for _, x := range turn.Transfers {
		if x.Region.Rows != 16 || x.Region.Cols != 16 {
			t.Fatalf("tile region %v, want 16x16", x.Region)
		}
		if x.Bytes != 16*16*8 {
			t.Fatalf("tile bytes %d", x.Bytes)
		}
	}
	// Scatter buffer: source (1 thread) to fft_rows (4 threads): 4 transfers.
	if len(tb.Buffers[0].Transfers) != 4 {
		t.Fatalf("scatter buffer has %d transfers", len(tb.Buffers[0].Transfers))
	}
	// Gather buffer: fft_cols (4, by cols) to sink (1 thread, whole): 4.
	if len(tb.Buffers[2].Transfers) != 4 {
		t.Fatalf("gather buffer has %d transfers", len(tb.Buffers[2].Transfers))
	}
}

func TestGenerateCornerTurnTables(t *testing.T) {
	out := genFor(t, apps.CornerTurn, 64, 4, 4)
	tb := out.Tables
	if len(tb.Functions) != 4 || len(tb.Buffers) != 3 {
		t.Fatalf("functions=%d buffers=%d", len(tb.Functions), len(tb.Buffers))
	}
	// ingest(rows) -> turn(cols) is the all-to-all.
	if len(tb.Buffers[1].Transfers) != 16 {
		t.Fatalf("turn buffer has %d transfers", len(tb.Buffers[1].Transfers))
	}
}

func TestVerifyCatchesCorruptedTables(t *testing.T) {
	corrupt := []func(tb *Tables){
		func(tb *Tables) { tb.Functions[1].Nodes[0] = 99 },
		func(tb *Tables) { tb.Functions[1].Kind = "bogus" },
		func(tb *Tables) { tb.Buffers[1].Transfers = tb.Buffers[1].Transfers[1:] },
		func(tb *Tables) { tb.Buffers[1].Transfers[0].Region.Rows += 1 },
		func(tb *Tables) { tb.Buffers[1].Transfers[0].SrcThread = 99 },
		func(tb *Tables) { tb.Buffers[1].Transfers[0].Bytes += 4 },
		func(tb *Tables) { tb.Order = tb.Order[:2] },
		func(tb *Tables) { tb.Order[1] = tb.Order[0] },
		func(tb *Tables) { tb.NumNodes = 0 },
		func(tb *Tables) { tb.Buffers[0].SrcPort = "nosuch" },
		func(tb *Tables) {
			// Duplicate a transfer: overlap.
			tb.Buffers[1].Transfers = append(tb.Buffers[1].Transfers, tb.Buffers[1].Transfers[0])
		},
	}
	for i, mutate := range corrupt {
		out := genFor(t, apps.FFT2D, 64, 4, 4)
		mutate(out.Tables)
		if err := out.Tables.Verify(); err == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
}

func TestTableSourceRoundTrip(t *testing.T) {
	out := genFor(t, apps.FFT2D, 64, 4, 4)
	reparsed, err := ParseTableSource(out.TableSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := reparsed.Verify(); err != nil {
		t.Fatal(err)
	}
	if reparsed.AppName != out.Tables.AppName ||
		len(reparsed.Functions) != len(out.Tables.Functions) ||
		len(reparsed.Buffers) != len(out.Tables.Buffers) {
		t.Fatal("reparsed tables differ")
	}
	for i := range reparsed.Buffers {
		if len(reparsed.Buffers[i].Transfers) != len(out.Tables.Buffers[i].Transfers) {
			t.Fatalf("buffer %d transfers differ", i)
		}
	}
}

func TestGlueSourceIsReadable(t *testing.T) {
	out := genFor(t, apps.FFT2D, 64, 4, 4)
	for _, want := range []string{
		"SAGE auto-generated glue code",
		"fft2d_64",
		"function table",
		"fft_rows",
		"corner", // buffer comment mentions ports; at least striping info present
	} {
		if want == "corner" {
			continue // informal
		}
		if !strings.Contains(out.GlueSource, want) {
			t.Errorf("glue source missing %q:\n%s", want, out.GlueSource)
		}
	}
	if !strings.Contains(out.GlueSource, "execution order") {
		t.Error("glue source missing execution order")
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	app, err := apps.FFT2D(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := model.SpreadParallel(app, 4)

	cases := map[string]Input{
		"nil app":     {Mapping: good, Platform: platforms.CSPI(), NumNodes: 4},
		"nil mapping": {App: app, Platform: platforms.CSPI(), NumNodes: 4},
		"zero nodes":  {App: app, Mapping: good, Platform: platforms.CSPI(), NumNodes: 0},
	}
	for name, in := range cases {
		if _, err := Generate(in); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Mapping inconsistent with node count.
	if _, err := Generate(Input{App: app, Mapping: good, Platform: platforms.CSPI(), NumNodes: 2}); err == nil {
		t.Error("mapping with out-of-range nodes accepted")
	}
}

func TestGenerateWithCustomScript(t *testing.T) {
	app, err := apps.CornerTurn(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	mapping, _ := model.SpreadParallel(app, 2)
	in := Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2}

	// A broken script must surface its error.
	if _, err := GenerateWith(in, "(no-such-builtin)"); err == nil {
		t.Fatal("broken script accepted")
	}
	// A script that emits invalid table source must fail parsing.
	if _, err := GenerateWith(in, `(emit "(frob 1)")`); err == nil {
		t.Fatal("invalid table source accepted")
	}
	// A script that emits incomplete tables must fail verification or
	// parsing (missing app header).
	if _, err := GenerateWith(in, `(emit "(order (0))")`); err == nil {
		t.Fatal("incomplete table source accepted")
	}
	// A header-only stream (no functions) must fail verification too.
	if _, err := GenerateWith(in, `(emit (format "(app ~s ~s ~a)" (app-name) (platform-name) (num-nodes))) (emit "(order ())")`); err == nil {
		t.Fatal("empty tables accepted")
	}
	// The standard script via GenerateWith matches Generate.
	a, err := GenerateWith(in, StandardScript)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.TableSource != b.TableSource {
		t.Fatal("GenerateWith(StandardScript) differs from Generate")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genFor(t, apps.STAP, 64, 4, 4)
	b := genFor(t, apps.STAP, 64, 4, 4)
	if a.TableSource != b.TableSource || a.GlueSource != b.GlueSource {
		t.Fatal("generation not deterministic")
	}
}

func TestUnevenThreadPartitioning(t *testing.T) {
	// 3 threads over 64 rows: 21/22/21 block split must still verify.
	out := genFor(t, apps.FFT2D, 64, 3, 4)
	if err := out.Tables.Verify(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, x := range out.Tables.Buffers[0].Transfers {
		total += x.Region.Elems()
	}
	if total != 64*64 {
		t.Fatalf("scatter covers %d elements", total)
	}
}

func TestReplicatedDestinationFanout(t *testing.T) {
	// A replicated input port on a multi-threaded function must receive the
	// whole data set on every thread.
	a := model.NewApp("fan")
	mt, _ := a.AddType(&model.DataType{Name: "m", Rows: 16, Cols: 16, Elem: model.ElemComplex})
	src := a.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1, Params: map[string]any{"seed": 1}})
	src.AddOutput("out", mt, model.ByRows)
	work := a.AddFunction(&model.Function{Name: "work", Kind: "scale", Threads: 3})
	work.AddInput("in", mt, model.Replicated)
	work.AddOutput("out", mt, model.Replicated)
	sink := a.AddFunction(&model.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, model.Replicated)
	if _, err := a.Connect("src", "out", "work", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect("work", "out", "sink", "in"); err != nil {
		t.Fatal(err)
	}
	a.AssignIDs()
	mapping, _ := model.SpreadParallel(a, 3)
	out, err := Generate(Input{App: a, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	// src -> work: 3 transfers (whole matrix to each thread).
	if got := len(out.Tables.Buffers[0].Transfers); got != 3 {
		t.Fatalf("replicated fanout transfers = %d, want 3", got)
	}
	for _, x := range out.Tables.Buffers[0].Transfers {
		if x.Region.Elems() != 16*16 {
			t.Fatalf("fanout region %v", x.Region)
		}
	}
	// work -> sink: replicated source, single dest thread: 1 transfer from
	// thread 0.
	if got := len(out.Tables.Buffers[1].Transfers); got != 1 {
		t.Fatalf("replicated source transfers = %d, want 1", got)
	}
	if out.Tables.Buffers[1].Transfers[0].SrcThread != 0 {
		t.Fatal("replicated source should pick thread j mod T = 0")
	}
}

func TestStripingPairsProperty(t *testing.T) {
	// Property: for every (source striping, dest striping, thread counts)
	// combination, the generated transfer schedule passes the coverage
	// verifier (each destination partition exactly tiled).
	stripes := []model.StripeKind{model.Replicated, model.ByRows, model.ByCols}
	for _, ss := range stripes {
		for _, ds := range stripes {
			for _, st := range []int{1, 2, 3, 4} {
				for _, dt := range []int{1, 2, 5} {
					a := model.NewApp("prop")
					mt, err := a.AddType(&model.DataType{Name: "m", Rows: 12, Cols: 10, Elem: model.ElemComplex})
					if err != nil {
						t.Fatal(err)
					}
					src := a.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1})
					src.AddOutput("out", mt, model.ByRows)
					up := a.AddFunction(&model.Function{Name: "up", Kind: "identity", Threads: st})
					up.AddInput("in", mt, ss)
					up.AddOutput("out", mt, ss)
					down := a.AddFunction(&model.Function{Name: "down", Kind: "identity", Threads: dt})
					down.AddInput("in", mt, ds)
					down.AddOutput("out", mt, ds)
					snk := a.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
					snk.AddInput("in", mt, model.ByRows)
					for _, c := range [][4]string{
						{"src", "out", "up", "in"}, {"up", "out", "down", "in"}, {"down", "out", "snk", "in"},
					} {
						if _, err := a.Connect(c[0], c[1], c[2], c[3]); err != nil {
							t.Fatal(err)
						}
					}
					a.AssignIDs()
					mapping := model.RoundRobin(a, 4)
					out, err := Generate(Input{App: a, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 4})
					if err != nil {
						t.Fatalf("ss=%s ds=%s st=%d dt=%d: %v", ss, ds, st, dt, err)
					}
					if err := out.Tables.Verify(); err != nil {
						t.Fatalf("ss=%s ds=%s st=%d dt=%d: %v", ss, ds, st, dt, err)
					}
				}
			}
		}
	}
}

func TestSetPropertyThroughAlter(t *testing.T) {
	app, err := apps.CornerTurn(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	mapping, _ := model.SpreadParallel(app, 2)
	in := Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2}
	script := `
	  (for-each (lambda (f) (set-property f "visited" 1)) (functions))
	  (emit (format "(app ~s ~s ~a)" (app-name) (platform-name) (num-nodes)))
	  (emit "(order ())")
	`
	if _, err := GenerateWith(in, script); err != nil {
		// Verification fails (no functions emitted) but properties must
		// still have been set before the failure.
		_ = err
	}
	for _, f := range app.Functions {
		if f.Prop("visited", 0) != 1 {
			t.Fatalf("set-property did not reach function %s", f.Name)
		}
	}
}
