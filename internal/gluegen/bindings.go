package gluegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alter"
	"repro/internal/model"
)

// bindModel installs the SAGE model-access "standard calls" into an Alter
// interpreter (§2: "The language also includes a set of standard calls to
// access certain features in SAGE, such as setting or retrieving a property
// value from an object"). Emitted table lines accumulate in tableOut;
// emitted glue listing lines in glueOut.
func bindModel(in *alter.Interp, input Input, tableOut, glueOut *strings.Builder) {
	env := in.Global
	app := input.App

	// --- model roots -----------------------------------------------------

	env.Register("app-name", func(args alter.List) (alter.Value, error) {
		return app.Name, nil
	})
	env.Register("platform-name", func(args alter.List) (alter.Value, error) {
		return input.Platform.Name, nil
	})
	env.Register("num-nodes", func(args alter.List) (alter.Value, error) {
		return int64(input.NumNodes), nil
	})
	env.Register("functions", func(args alter.List) (alter.Value, error) {
		out := make(alter.List, len(app.Functions))
		for i, f := range app.Functions {
			out[i] = f
		}
		return out, nil
	})
	env.Register("arcs", func(args alter.List) (alter.Value, error) {
		out := make(alter.List, len(app.Arcs))
		for i, a := range app.Arcs {
			out[i] = a
		}
		return out, nil
	})
	env.Register("topo-order", func(args alter.List) (alter.Value, error) {
		order, err := app.TopoOrder()
		if err != nil {
			return nil, err
		}
		out := make(alter.List, len(order))
		for i, f := range order {
			out[i] = int64(f.ID)
		}
		return out, nil
	})

	// --- object accessors ------------------------------------------------

	asFunction := func(v alter.Value) (*model.Function, error) {
		f, ok := v.(*model.Function)
		if !ok {
			return nil, fmt.Errorf("expected function object, got %s", alter.TypeName(v))
		}
		return f, nil
	}
	asPort := func(v alter.Value) (*model.Port, error) {
		p, ok := v.(*model.Port)
		if !ok {
			return nil, fmt.Errorf("expected port object, got %s", alter.TypeName(v))
		}
		return p, nil
	}
	asArc := func(v alter.Value) (*model.Arc, error) {
		a, ok := v.(*model.Arc)
		if !ok {
			return nil, fmt.Errorf("expected arc object, got %s", alter.TypeName(v))
		}
		return a, nil
	}
	fnAccessor := func(name string, get func(f *model.Function) (alter.Value, error)) {
		env.Register(name, func(args alter.List) (alter.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("wants 1 argument")
			}
			f, err := asFunction(args[0])
			if err != nil {
				return nil, err
			}
			return get(f)
		})
	}
	fnAccessor("function-name", func(f *model.Function) (alter.Value, error) { return f.Name, nil })
	fnAccessor("function-kind", func(f *model.Function) (alter.Value, error) { return f.Kind, nil })
	fnAccessor("function-id", func(f *model.Function) (alter.Value, error) { return int64(f.ID), nil })
	fnAccessor("function-threads", func(f *model.Function) (alter.Value, error) { return int64(f.Threads), nil })
	fnAccessor("function-params", func(f *model.Function) (alter.Value, error) {
		return paramsToAlist(f.Params), nil
	})
	fnAccessor("inputs", func(f *model.Function) (alter.Value, error) {
		out := make(alter.List, len(f.Inputs))
		for i, p := range f.Inputs {
			out[i] = p
		}
		return out, nil
	})
	fnAccessor("outputs", func(f *model.Function) (alter.Value, error) {
		out := make(alter.List, len(f.Outputs))
		for i, p := range f.Outputs {
			out[i] = p
		}
		return out, nil
	})

	portAccessor := func(name string, get func(p *model.Port) (alter.Value, error)) {
		env.Register(name, func(args alter.List) (alter.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("wants 1 argument")
			}
			p, err := asPort(args[0])
			if err != nil {
				return nil, err
			}
			return get(p)
		})
	}
	portAccessor("port-name", func(p *model.Port) (alter.Value, error) { return p.Name, nil })
	portAccessor("port-striping", func(p *model.Port) (alter.Value, error) { return string(p.Striping), nil })
	portAccessor("port-rows", func(p *model.Port) (alter.Value, error) { return int64(p.Type.Rows), nil })
	portAccessor("port-cols", func(p *model.Port) (alter.Value, error) { return int64(p.Type.Cols), nil })
	portAccessor("port-elem-bytes", func(p *model.Port) (alter.Value, error) {
		b, err := p.Type.Elem.WireBytes()
		return int64(b), err
	})
	portAccessor("port-fn", func(p *model.Port) (alter.Value, error) { return p.Fn, nil })

	env.Register("arc-from", func(args alter.List) (alter.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("wants 1 argument")
		}
		a, err := asArc(args[0])
		if err != nil {
			return nil, err
		}
		return a.From, nil
	})
	env.Register("arc-to", func(args alter.List) (alter.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("wants 1 argument")
		}
		a, err := asArc(args[0])
		if err != nil {
			return nil, err
		}
		return a.To, nil
	})

	// --- properties (the paper's canonical standard calls) ----------------

	env.Register("get-property", func(args alter.List) (alter.Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("wants (get-property obj key default)")
		}
		f, err := asFunction(args[0])
		if err != nil {
			return nil, err
		}
		key, err := alter.AsString(args[1])
		if err != nil {
			return nil, err
		}
		return goToAlter(f.Prop(key, alterToGo(args[2]))), nil
	})
	env.Register("set-property", func(args alter.List) (alter.Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("wants (set-property obj key value)")
		}
		f, err := asFunction(args[0])
		if err != nil {
			return nil, err
		}
		key, err := alter.AsString(args[1])
		if err != nil {
			return nil, err
		}
		f.SetProp(key, alterToGo(args[2]))
		return args[2], nil
	})

	// --- mapping -----------------------------------------------------------

	env.Register("node-of", func(args alter.List) (alter.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("wants (node-of function thread)")
		}
		f, err := asFunction(args[0])
		if err != nil {
			return nil, err
		}
		i, err := alter.AsInt(args[1])
		if err != nil {
			return nil, err
		}
		n, err := input.Mapping.NodeOf(f.Name, int(i))
		if err != nil {
			return nil, err
		}
		return int64(n), nil
	})

	// --- striping math -----------------------------------------------------

	env.Register("partition", func(args alter.List) (alter.Value, error) {
		if len(args) != 5 {
			return nil, fmt.Errorf("wants (partition striping rows cols threads i)")
		}
		s, err := alter.AsString(args[0])
		if err != nil {
			return nil, err
		}
		nums := make([]int64, 4)
		for i := 0; i < 4; i++ {
			nums[i], err = alter.AsInt(args[i+1])
			if err != nil {
				return nil, err
			}
		}
		r, err := model.Partition(model.StripeKind(s), int(nums[0]), int(nums[1]), int(nums[2]), int(nums[3]))
		if err != nil {
			return nil, err
		}
		return regionToList(r), nil
	})
	env.Register("intersect", func(args alter.List) (alter.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("wants (intersect r1 r2)")
		}
		r1, err := listToRegion(args[0])
		if err != nil {
			return nil, err
		}
		r2, err := listToRegion(args[1])
		if err != nil {
			return nil, err
		}
		out := r1.Intersect(r2)
		if out.Empty() {
			return nil, nil
		}
		return regionToList(out), nil
	})
	env.Register("region-elems", func(args alter.List) (alter.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("wants (region-elems r)")
		}
		r, err := listToRegion(args[0])
		if err != nil {
			return nil, err
		}
		return int64(r.Elems()), nil
	})

	// --- output streams -----------------------------------------------------

	env.Register("emit", func(args alter.List) (alter.Value, error) {
		for _, a := range args {
			tableOut.WriteString(alter.Display(a))
		}
		tableOut.WriteByte('\n')
		return nil, nil
	})
	env.Register("emit-src", func(args alter.List) (alter.Value, error) {
		for _, a := range args {
			glueOut.WriteString(alter.Display(a))
		}
		glueOut.WriteByte('\n')
		return nil, nil
	})
}

// regionToList renders a region as (r0 c0 rows cols).
func regionToList(r model.Region) alter.List {
	return alter.List{int64(r.R0), int64(r.C0), int64(r.Rows), int64(r.Cols)}
}

// listToRegion parses (r0 c0 rows cols).
func listToRegion(v alter.Value) (model.Region, error) {
	l, err := alter.AsList(v)
	if err != nil || len(l) != 4 {
		return model.Region{}, fmt.Errorf("expected region (r0 c0 rows cols), got %s", alter.Format(v))
	}
	nums := make([]int, 4)
	for i, e := range l {
		n, err := alter.AsInt(e)
		if err != nil {
			return model.Region{}, err
		}
		nums[i] = int(n)
	}
	return model.Region{R0: nums[0], C0: nums[1], Rows: nums[2], Cols: nums[3]}, nil
}

// paramsToAlist renders a params map as a sorted association list.
func paramsToAlist(params map[string]any) alter.List {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(alter.List, 0, len(keys))
	for _, k := range keys {
		out = append(out, alter.List{k, goToAlter(params[k])})
	}
	return out
}

// goToAlter converts a Go scalar to an Alter value.
func goToAlter(v any) alter.Value {
	switch x := v.(type) {
	case nil:
		return nil
	case int:
		return int64(x)
	case int64:
		return x
	case float64:
		return x
	case bool:
		return x
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// alterToGo converts an Alter scalar to the Go form stored in model maps.
func alterToGo(v alter.Value) any {
	switch x := v.(type) {
	case int64:
		return int(x)
	case alter.Symbol:
		return string(x)
	default:
		return x
	}
}
