package gluegen

import "testing"

// FuzzParseTableSource feeds arbitrary bytes to the runtime-table parser:
// parse and verification must reject bad input with errors, never panic.
func FuzzParseTableSource(f *testing.F) {
	seeds := []string{
		"",
		"(app \"tiny\" \"CSPI\" 2)",
		`(app "tiny" "CSPI" 2)
(function 0 "src" "source_matrix" 1 (0) (("seed" 9)) #f)
(outport 0 "out" 4 4 8 "rows" (0))
(function 1 "work" "fft_rows" 2 (0 1) () #f)
(inport 1 "in" 4 4 8 "rows" (0))
(outport 1 "out" 4 4 8 "rows" (1))
(function 2 "snk" "sink_matrix" 1 (1) () #f)
(inport 2 "in" 4 4 8 "rows" (1))
(buffer 0 0 "out" 1 "in" 4 4 8)
(xfer 0 0 0 (0 0 2 4))
(xfer 0 0 1 (2 0 2 4))
(buffer 1 1 "out" 2 "in" 4 4 8)
(xfer 1 0 0 (0 0 2 4))
(xfer 1 1 0 (2 0 2 4))
(order (0 1 2))`,
		"(buffer 0 0 \"out\" 1 \"in\" 4 4 8)",
		"(xfer 0 0 0 (0 0 2 4))",
		"(function -1 \"x\" \"y\" 999999 () () #t)",
		"(app \"a\" \"b\" -5)(order (9 9 9))",
		"(((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tables, err := ParseTableSource(src)
		if err != nil {
			return
		}
		// Verify must classify any parsed tables without panicking; its
		// verdict (valid or not) is unconstrained for arbitrary input.
		_ = tables.Verify()
	})
}
