// Package gluegen is the SAGE glue-code generator of §2 and Figure 1.0: an
// Alter script traverses a mapped application model, collects attributes
// through the model-access standard calls, and emits source files for the
// SAGE run-time. Two artifacts are produced: the runtime table source (a
// machine-readable s-expression listing that is parsed back into
// RuntimeTables, the exact structures — function table, logical buffer
// table with striding information, execution order — that §2 says the
// generator derives from the model), and a human-readable glue listing for
// inspection.
//
// The generator is faithful to the paper's architecture: the Go code here
// only provides the standard calls (model traversal, property access, the
// striping/partition math) and the parser; the generation logic itself is
// written in Alter (see script.go) and user-supplied Alter scripts can
// replace it.
package gluegen

import (
	"errors"
	"fmt"

	"repro/internal/funclib"
	"repro/internal/machine"
	"repro/internal/model"
)

// Transfer is one striding entry of a logical buffer: the region of the data
// set that must move from a source thread to a destination thread each
// iteration.
type Transfer struct {
	SrcThread int
	DstThread int
	Region    model.Region
	Bytes     int
}

// BufferEntry is a logical buffer (§2: "Located and shared between each port
// on the sender and receiver functions is the SAGE notion of a logical
// buffer ... It contains the striding information, total buffer size (before
// striding), thread information (number and type), etc.").
type BufferEntry struct {
	ID        int
	SrcFn     int // function ID
	SrcPort   string
	DstFn     int
	DstPort   string
	Rows      int
	Cols      int
	ElemBytes int
	Transfers []Transfer
}

// TotalBytes is the buffer's full data-set size before striding.
func (b *BufferEntry) TotalBytes() int { return b.Rows * b.Cols * b.ElemBytes }

// PortEntry is a port of a function-table entry, with the logical buffers it
// feeds (outputs) or reads (inputs, exactly one).
type PortEntry struct {
	Name      string
	Rows      int
	Cols      int
	ElemBytes int
	Striping  model.StripeKind
	Buffers   []int
}

// FuncEntry is one row of the function table. The runtime "executes
// functions based on this ID, which is the index of this descriptor into the
// function table" (§2).
type FuncEntry struct {
	ID      int
	Name    string
	Kind    string
	Threads int
	Nodes   []int // thread -> processor node
	Params  map[string]any
	Ins     []PortEntry
	Outs    []PortEntry
	Probe   bool
}

// Tables is the complete generated runtime configuration.
type Tables struct {
	AppName   string
	Platform  string
	NumNodes  int
	Functions []FuncEntry
	Buffers   []BufferEntry
	Order     []int // function IDs in execution (topological) order
}

// Function returns the entry with the given ID.
func (t *Tables) Function(id int) (*FuncEntry, error) {
	if id < 0 || id >= len(t.Functions) {
		return nil, fmt.Errorf("gluegen: function ID %d out of range [0,%d)", id, len(t.Functions))
	}
	return &t.Functions[id], nil
}

// Verify checks the structural integrity of generated tables: IDs dense and
// ordered, nodes in range, buffers wired to real ports, and — the heart of
// the striping logic — that for every buffer each destination thread's
// partition is exactly tiled by its incoming transfers (full coverage, no
// overlap, no spill).
func (t *Tables) Verify() error {
	var errs []error
	add := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if t.NumNodes < 1 {
		add("gluegen: tables declare %d nodes", t.NumNodes)
	}
	if len(t.Functions) == 0 {
		add("gluegen: tables contain no functions (generator emitted nothing?)")
	}
	for i, f := range t.Functions {
		if f.ID != i {
			add("gluegen: function %q has ID %d at index %d", f.Name, f.ID, i)
		}
		if f.Threads < 1 || len(f.Nodes) != f.Threads {
			add("gluegen: function %q has %d threads and %d nodes", f.Name, f.Threads, len(f.Nodes))
		}
		for _, n := range f.Nodes {
			if n < 0 || n >= t.NumNodes {
				add("gluegen: function %q mapped to node %d of %d", f.Name, n, t.NumNodes)
			}
		}
		if _, err := funclib.Lookup(f.Kind); err != nil {
			add("gluegen: function %q: %v", f.Name, err)
		}
	}
	if len(t.Order) != len(t.Functions) {
		add("gluegen: order lists %d of %d functions", len(t.Order), len(t.Functions))
	}
	seen := map[int]bool{}
	for _, id := range t.Order {
		if id < 0 || id >= len(t.Functions) || seen[id] {
			add("gluegen: bad or duplicate ID %d in order", id)
			continue
		}
		seen[id] = true
	}

	for i, b := range t.Buffers {
		if b.ID != i {
			add("gluegen: buffer %d has ID %d", i, b.ID)
			continue
		}
		src, err := t.Function(b.SrcFn)
		if err != nil {
			add("gluegen: buffer %d: %v", b.ID, err)
			continue
		}
		dst, err := t.Function(b.DstFn)
		if err != nil {
			add("gluegen: buffer %d: %v", b.ID, err)
			continue
		}
		srcPort := findPort(src.Outs, b.SrcPort)
		dstPort := findPort(dst.Ins, b.DstPort)
		if srcPort == nil {
			add("gluegen: buffer %d: source port %s.%s missing", b.ID, src.Name, b.SrcPort)
			continue
		}
		if dstPort == nil {
			add("gluegen: buffer %d: destination port %s.%s missing", b.ID, dst.Name, b.DstPort)
			continue
		}
		if !containsInt(srcPort.Buffers, b.ID) || !containsInt(dstPort.Buffers, b.ID) {
			add("gluegen: buffer %d not referenced by both its ports", b.ID)
		}
		// Per-destination-thread coverage.
		for j := 0; j < dst.Threads; j++ {
			want, err := model.Partition(dstPort.Striping, b.Rows, b.Cols, dst.Threads, j)
			if err != nil {
				add("gluegen: buffer %d dst thread %d: %v", b.ID, j, err)
				continue
			}
			covered := 0
			var regions []model.Region
			for _, x := range b.Transfers {
				if x.DstThread != j {
					continue
				}
				if x.SrcThread < 0 || x.SrcThread >= src.Threads {
					add("gluegen: buffer %d: transfer from thread %d of %d", b.ID, x.SrcThread, src.Threads)
				}
				if x.Region.Intersect(want) != x.Region {
					add("gluegen: buffer %d: transfer region %v spills outside dst partition %v", b.ID, x.Region, want)
				}
				if x.Bytes != x.Region.Elems()*b.ElemBytes {
					add("gluegen: buffer %d: transfer bytes %d != region %v x %d", b.ID, x.Bytes, x.Region, b.ElemBytes)
				}
				covered += x.Region.Elems()
				regions = append(regions, x.Region)
			}
			for a := range regions {
				for c := a + 1; c < len(regions); c++ {
					if !regions[a].Intersect(regions[c]).Empty() {
						add("gluegen: buffer %d dst thread %d: overlapping transfers %v and %v", b.ID, j, regions[a], regions[c])
					}
				}
			}
			if covered != want.Elems() {
				add("gluegen: buffer %d dst thread %d: transfers cover %d of %d elements", b.ID, j, covered, want.Elems())
			}
		}
	}
	return errors.Join(errs...)
}

func findPort(ports []PortEntry, name string) *PortEntry {
	for i := range ports {
		if ports[i].Name == name {
			return &ports[i]
		}
	}
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Input is everything the generator needs: a flattened, validated
// application, a validated mapping, and the target platform.
type Input struct {
	App      *model.App
	Mapping  *model.Mapping
	Platform machine.Platform
	NumNodes int
}

// validate checks the generator preconditions.
func (in *Input) validate() error {
	if in.App == nil || in.Mapping == nil {
		return fmt.Errorf("gluegen: nil app or mapping")
	}
	if in.NumNodes < 1 {
		return fmt.Errorf("gluegen: %d nodes", in.NumNodes)
	}
	if err := in.App.Validate(); err != nil {
		return err
	}
	if err := funclib.ValidateApp(in.App); err != nil {
		return err
	}
	return in.Mapping.Validate(in.App, in.NumNodes)
}

// Output bundles the generation artifacts.
type Output struct {
	// Tables is the parsed, verified runtime configuration.
	Tables *Tables
	// TableSource is the machine-readable s-expression source the Alter
	// script emitted (Figure 1.0's "source files"; parsing it yields
	// Tables).
	TableSource string
	// GlueSource is the human-readable glue listing.
	GlueSource string
}
