package gluegen

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// decodeFuzzCorpus extracts the single string argument from a Go fuzz corpus
// v1 file ("go test fuzz v1\nstring(...)").
func decodeFuzzCorpus(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a fuzz corpus v1 file", path)
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "string(")
	body = strings.TrimSuffix(body, ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("%s: bad string literal: %v", path, err)
	}
	return s
}

// TestFuzzCorpusReplay drives every committed FuzzParseTableSource corpus
// entry through the runtime-table parser and verifier explicitly, keeping the
// regression corpus load-bearing under -run filters.
func TestFuzzCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParseTableSource")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		src := decodeFuzzCorpus(t, filepath.Join(dir, e.Name()))
		t.Run(e.Name(), func(t *testing.T) {
			tables, err := ParseTableSource(src)
			if err != nil {
				t.Logf("rejected (ok): %v", err)
				return
			}
			// Verification must classify parsed tables without panicking.
			if err := tables.Verify(); err != nil {
				t.Logf("verify rejected (ok): %v", err)
			}
		})
	}
}
