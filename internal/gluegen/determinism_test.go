package gluegen

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/alter"
	"repro/internal/model"
	"repro/internal/platforms"
)

// paramApp builds an app whose source carries a many-key parameter map —
// the one place a map ever reaches the Alter emission path. If table
// construction or script emission iterated that map directly, Go's
// randomized map order would leak into the bytes.
func paramApp(t *testing.T) (*model.App, *model.Mapping) {
	t.Helper()
	a := model.NewApp("paramful")
	mt, err := a.AddType(&model.DataType{Name: "m", Rows: 8, Cols: 8, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]any{}
	for i := 0; i < 12; i++ {
		params[fmt.Sprintf("p%02d", i)] = i
	}
	params["seed"] = 3
	params["gain"] = 0.5
	params["tag"] = "x"
	src := a.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1, Params: params})
	src.AddOutput("out", mt, model.ByRows)
	snk := a.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.ByRows)
	if _, err := a.Connect("src", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	a.AssignIDs()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	mapping, err := model.SpreadParallel(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	return a, mapping
}

// TestGenerateDeterministic locks the full generation pipeline against map
// iteration order: repeated generations from the same input must produce
// byte-identical Alter table source, byte-identical glue listings, and
// deeply equal parsed tables. This is the regression test for the
// sorted-key invariant in paramsToAlist (and any future map that sneaks
// into the emission path).
func TestGenerateByteDeterministic(t *testing.T) {
	app, mapping := paramApp(t)
	in := Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2}
	first, err := Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		out, err := Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.TableSource != first.TableSource {
			t.Fatalf("run %d: table source differs\n--- first\n%s--- now\n%s", i, first.TableSource, out.TableSource)
		}
		if out.GlueSource != first.GlueSource {
			t.Fatalf("run %d: glue listing differs", i)
		}
		if !reflect.DeepEqual(out.Tables, first.Tables) {
			t.Fatalf("run %d: parsed tables differ", i)
		}
	}
}

// TestParamsToAlistSorted pins the ordering contract directly: the alist
// keys come out in sorted order on every call, regardless of map layout.
func TestParamsToAlistSorted(t *testing.T) {
	params := map[string]any{"z": 1, "a": 2, "m": 3, "b": 4}
	for i := 0; i < 10; i++ {
		l := paramsToAlist(params)
		if len(l) != 4 {
			t.Fatalf("alist has %d entries", len(l))
		}
		var prev string
		for _, e := range l {
			pair, ok := e.(alter.List)
			if !ok || len(pair) != 2 {
				t.Fatalf("run %d: alist entry %v is not a pair", i, e)
			}
			key, ok := pair[0].(string)
			if !ok {
				t.Fatalf("run %d: alist key %v is not a string", i, pair[0])
			}
			if key < prev {
				t.Fatalf("run %d: alist not sorted: %v", i, l)
			}
			prev = key
		}
	}
}
