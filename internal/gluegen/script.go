package gluegen

// StandardScript is the stock glue-code generator, written in Alter as the
// paper describes: it traverses the model's functions, ports and arcs
// through the standard calls, computes the striping transfer schedule with
// the partition/intersect calls, and emits the runtime table source plus a
// human-readable listing. Users can supply their own script to GenerateWith.
const StandardScript = `
;; ---------------------------------------------------------------------------
;; SAGE standard glue-code generator.
;;
;; Emits, via (emit ...), one s-expression per line of runtime-table source:
;;   (app "name" "platform" num-nodes)
;;   (function id "name" "kind" threads (node...) (params-alist) probe)
;;   (inport  fn-id "name" rows cols elem-bytes "striping" (buffer-id...))
;;   (outport fn-id "name" rows cols elem-bytes "striping" (buffer-id...))
;;   (buffer id src-fn "src-port" dst-fn "dst-port" rows cols elem-bytes)
;;   (xfer buffer-id src-thread dst-thread (r0 c0 rows cols))
;;   (order (id...))
;; and, via (emit-src ...), a human-readable glue listing.
;; ---------------------------------------------------------------------------

(define all-arcs (arcs))
(define num-arcs (length all-arcs))

(emit-src (format ";; SAGE auto-generated glue code"))
(emit-src (format ";; application: ~a   target: ~a (~a nodes)"
                  (app-name) (platform-name) (num-nodes)))
(emit-src "")

(emit (format "(app ~s ~s ~a)" (app-name) (platform-name) (num-nodes)))

;; --- function table ---------------------------------------------------------

(define (port-buffers p)
  ;; Logical buffer IDs are arc indices; a port's buffers are the arcs that
  ;; touch it.
  (filter (lambda (i)
            (let ((a (nth all-arcs i)))
              (or (equal? (arc-from a) p) (equal? (arc-to a) p))))
          (range num-arcs)))

(define (emit-port label f p)
  (emit (format "(~a ~a ~s ~a ~a ~a ~s ~a)"
                label (function-id f) (port-name p)
                (port-rows p) (port-cols p) (port-elem-bytes p)
                (port-striping p) (port-buffers p))))

(emit-src ";; function table (runtime dispatches by ID = index)")
(for-each
 (lambda (f)
   (let ((nodes (map (lambda (i) (node-of f i))
                     (range (function-threads f)))))
     (emit (format "(function ~a ~s ~s ~a ~a ~s ~a)"
                   (function-id f) (function-name f) (function-kind f)
                   (function-threads f) nodes (function-params f)
                   (if (get-property f "probe" #f) "#t" "#f")))
     (for-each (lambda (p) (emit-port "inport" f p)) (inputs f))
     (for-each (lambda (p) (emit-port "outport" f p)) (outputs f))
     (emit-src (format ";;  [~a] ~a  kind=~a threads=~a nodes=~a"
                       (function-id f) (function-name f) (function-kind f)
                       (function-threads f) nodes))))
 (functions))
(emit-src "")

;; --- logical buffers and striding -------------------------------------------

(define (emit-xfer buf i j reg)
  (emit (format "(xfer ~a ~a ~a ~a)" buf i j reg)))

(emit-src ";; logical buffers (one per arc) with striding schedules")
(for-each
 (lambda (bi)
   (let ((a (nth all-arcs bi)))
     (let ((sp (arc-from a)) (dp (arc-to a)))
       (let ((sf (port-fn sp)) (df (port-fn dp))
             (rows (port-rows sp)) (cols (port-cols sp))
             (eb (port-elem-bytes sp))
             (ss (port-striping sp)) (ds (port-striping dp)))
         (let ((st (function-threads sf)) (dt (function-threads df)))
           (emit (format "(buffer ~a ~a ~s ~a ~s ~a ~a ~a)"
                         bi (function-id sf) (port-name sp)
                         (function-id df) (port-name dp) rows cols eb))
           (emit-src (format ";;  buffer ~a: ~a.~a (~a) -> ~a.~a (~a), ~ax~a"
                             bi (function-name sf) (port-name sp) ss
                             (function-name df) (port-name dp) ds rows cols))
           ;; For each destination thread, tile its partition with source
           ;; regions. A replicated source holds the whole data set on every
           ;; thread, so one source thread is chosen round-robin; a striped
           ;; source contributes the (disjoint) intersections.
           (for-each
            (lambda (j)
              (let ((dreg (partition ds rows cols dt j)))
                (if (equal? ss "replicated")
                    (emit-xfer bi (mod j st) j dreg)
                    (for-each
                     (lambda (i)
                       (let ((x (intersect (partition ss rows cols st i) dreg)))
                         (unless (null? x)
                           (emit-xfer bi i j x))))
                     (range st)))))
            (range dt)))))))
 (range num-arcs))
(emit-src "")

;; --- execution order ----------------------------------------------------------

(emit (format "(order ~a)" (topo-order)))
(emit-src (format ";; execution order: ~a" (topo-order)))
`
