package gluegen

import (
	"fmt"
	"strings"

	"repro/internal/alter"
	"repro/internal/model"
)

// ParseTableSource parses the s-expression runtime-table source emitted by a
// generator script back into Tables. The grammar is documented on
// StandardScript.
func ParseTableSource(src string) (*Tables, error) {
	forms, err := alter.ReadAll(src)
	if err != nil {
		return nil, fmt.Errorf("gluegen: parsing table source: %w", err)
	}
	t := &Tables{}
	sawApp := false
	for _, form := range forms {
		l, ok := form.(alter.List)
		if !ok || len(l) == 0 {
			return nil, fmt.Errorf("gluegen: table source form %s is not a directive", alter.Format(form))
		}
		head, err := alter.AsSymbol(l[0])
		if err != nil {
			return nil, fmt.Errorf("gluegen: table source form %s: %w", alter.Format(form), err)
		}
		switch head {
		case "app":
			if err := parseApp(t, l); err != nil {
				return nil, err
			}
			sawApp = true
		case "function":
			if err := parseFunction(t, l); err != nil {
				return nil, err
			}
		case "inport", "outport":
			if err := parsePort(t, l, head == "inport"); err != nil {
				return nil, err
			}
		case "buffer":
			if err := parseBuffer(t, l); err != nil {
				return nil, err
			}
		case "xfer":
			if err := parseXfer(t, l); err != nil {
				return nil, err
			}
		case "order":
			if err := parseOrder(t, l); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("gluegen: unknown table directive %q", head)
		}
	}
	if !sawApp {
		return nil, fmt.Errorf("gluegen: table source missing (app ...) header")
	}
	return t, nil
}

func formErr(l alter.List, format string, args ...any) error {
	return fmt.Errorf("gluegen: %s in %s", fmt.Sprintf(format, args...), alter.Format(l))
}

func intAt(l alter.List, i int) (int, error) {
	n, err := alter.AsInt(l[i])
	return int(n), err
}

func stringAt(l alter.List, i int) (string, error) {
	return alter.AsString(l[i])
}

func intListAt(l alter.List, i int) ([]int, error) {
	items, err := alter.AsList(l[i])
	if err != nil {
		return nil, err
	}
	out := make([]int, len(items))
	for j, v := range items {
		n, err := alter.AsInt(v)
		if err != nil {
			return nil, err
		}
		out[j] = int(n)
	}
	return out, nil
}

func parseApp(t *Tables, l alter.List) error {
	if len(l) != 4 {
		return formErr(l, "app wants name, platform, nodes")
	}
	var err error
	if t.AppName, err = stringAt(l, 1); err != nil {
		return err
	}
	if t.Platform, err = stringAt(l, 2); err != nil {
		return err
	}
	if t.NumNodes, err = intAt(l, 3); err != nil {
		return err
	}
	return nil
}

func parseFunction(t *Tables, l alter.List) error {
	if len(l) != 8 {
		return formErr(l, "function wants id, name, kind, threads, nodes, params, probe")
	}
	var fe FuncEntry
	var err error
	if fe.ID, err = intAt(l, 1); err != nil {
		return err
	}
	if fe.Name, err = stringAt(l, 2); err != nil {
		return err
	}
	if fe.Kind, err = stringAt(l, 3); err != nil {
		return err
	}
	if fe.Threads, err = intAt(l, 4); err != nil {
		return err
	}
	if fe.Nodes, err = intListAt(l, 5); err != nil {
		return err
	}
	params, err := alter.AsList(l[6])
	if err != nil {
		return err
	}
	fe.Params = map[string]any{}
	for _, entry := range params {
		pair, ok := entry.(alter.List)
		if !ok || len(pair) != 2 {
			return formErr(l, "param entry %s is not (key value)", alter.Format(entry))
		}
		key, err := alter.AsString(pair[0])
		if err != nil {
			return err
		}
		fe.Params[key] = alterToGo(pair[1])
	}
	probe, ok := l[7].(bool)
	if !ok {
		return formErr(l, "probe flag is %s", alter.TypeName(l[7]))
	}
	fe.Probe = probe
	if fe.ID != len(t.Functions) {
		return formErr(l, "function ID %d out of sequence (expected %d)", fe.ID, len(t.Functions))
	}
	t.Functions = append(t.Functions, fe)
	return nil
}

func parsePort(t *Tables, l alter.List, isInput bool) error {
	if len(l) != 8 {
		return formErr(l, "port wants fn-id, name, rows, cols, elem-bytes, striping, buffers")
	}
	fnID, err := intAt(l, 1)
	if err != nil {
		return err
	}
	fe, err := t.Function(fnID)
	if err != nil {
		return err
	}
	var pe PortEntry
	if pe.Name, err = stringAt(l, 2); err != nil {
		return err
	}
	if pe.Rows, err = intAt(l, 3); err != nil {
		return err
	}
	if pe.Cols, err = intAt(l, 4); err != nil {
		return err
	}
	if pe.ElemBytes, err = intAt(l, 5); err != nil {
		return err
	}
	s, err := stringAt(l, 6)
	if err != nil {
		return err
	}
	pe.Striping = model.StripeKind(s)
	if !model.ValidStripe(pe.Striping) {
		return formErr(l, "invalid striping %q", s)
	}
	if pe.Buffers, err = intListAt(l, 7); err != nil {
		return err
	}
	if isInput {
		fe.Ins = append(fe.Ins, pe)
	} else {
		fe.Outs = append(fe.Outs, pe)
	}
	return nil
}

func parseBuffer(t *Tables, l alter.List) error {
	if len(l) != 9 {
		return formErr(l, "buffer wants id, src-fn, src-port, dst-fn, dst-port, rows, cols, elem-bytes")
	}
	var be BufferEntry
	var err error
	if be.ID, err = intAt(l, 1); err != nil {
		return err
	}
	if be.SrcFn, err = intAt(l, 2); err != nil {
		return err
	}
	if be.SrcPort, err = stringAt(l, 3); err != nil {
		return err
	}
	if be.DstFn, err = intAt(l, 4); err != nil {
		return err
	}
	if be.DstPort, err = stringAt(l, 5); err != nil {
		return err
	}
	if be.Rows, err = intAt(l, 6); err != nil {
		return err
	}
	if be.Cols, err = intAt(l, 7); err != nil {
		return err
	}
	if be.ElemBytes, err = intAt(l, 8); err != nil {
		return err
	}
	if be.ID != len(t.Buffers) {
		return formErr(l, "buffer ID %d out of sequence (expected %d)", be.ID, len(t.Buffers))
	}
	t.Buffers = append(t.Buffers, be)
	return nil
}

func parseXfer(t *Tables, l alter.List) error {
	if len(l) != 5 {
		return formErr(l, "xfer wants buffer-id, src-thread, dst-thread, region")
	}
	bufID, err := intAt(l, 1)
	if err != nil {
		return err
	}
	if bufID < 0 || bufID >= len(t.Buffers) {
		return formErr(l, "xfer references unknown buffer %d", bufID)
	}
	var x Transfer
	if x.SrcThread, err = intAt(l, 2); err != nil {
		return err
	}
	if x.DstThread, err = intAt(l, 3); err != nil {
		return err
	}
	if x.Region, err = listToRegion(l[4]); err != nil {
		return err
	}
	buf := &t.Buffers[bufID]
	x.Bytes = x.Region.Elems() * buf.ElemBytes
	buf.Transfers = append(buf.Transfers, x)
	return nil
}

func parseOrder(t *Tables, l alter.List) error {
	if len(l) != 2 {
		return formErr(l, "order wants one ID list")
	}
	ids, err := intListAt(l, 1)
	if err != nil {
		return err
	}
	t.Order = ids
	return nil
}

// Generate runs the standard Alter generator over the input and returns the
// verified tables plus both source artifacts.
func Generate(in Input) (*Output, error) {
	return GenerateWith(in, StandardScript)
}

// GenerateWith runs a custom Alter generator script. The script sees the
// model through the standard calls and must emit table source (see
// StandardScript for the grammar); the result is parsed and verified before
// being returned.
func GenerateWith(in Input, script string) (*Output, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	interp := alter.New()
	interp.MaxSteps = 50_000_000 // generation over large models is bounded work
	var tableSrc, glueSrc strings.Builder
	bindModel(interp, in, &tableSrc, &glueSrc)
	if _, err := interp.RunString(script); err != nil {
		return nil, fmt.Errorf("gluegen: generator script failed: %w", err)
	}
	tables, err := ParseTableSource(tableSrc.String())
	if err != nil {
		return nil, err
	}
	if err := tables.Verify(); err != nil {
		return nil, fmt.Errorf("gluegen: generated tables failed verification: %w", err)
	}
	return &Output{Tables: tables, TableSource: tableSrc.String(), GlueSource: glueSrc.String()}, nil
}
