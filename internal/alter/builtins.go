package alter

import (
	"fmt"
	"sort"
	"strings"
)

// installStdlib registers the base procedure library. Model-traversal
// standard calls are installed separately by the embedding tool.
func installStdlib(env *Env) {
	installArith(env)
	installCompare(env)
	installLists(env)
	installStrings(env)
	installPredicates(env)
}

func wantArgs(args List, n int) error {
	if len(args) != n {
		return fmt.Errorf("wants %d arguments, got %d", n, len(args))
	}
	return nil
}

func wantAtLeast(args List, n int) error {
	if len(args) < n {
		return fmt.Errorf("wants at least %d arguments, got %d", n, len(args))
	}
	return nil
}

// numFold reduces numeric arguments, preserving int64 unless any float is
// involved.
func numFold(args List, intFn func(a, b int64) (int64, error), floatFn func(a, b float64) float64, unit int64, unary bool) (Value, error) {
	if len(args) == 0 {
		return unit, nil
	}
	allInt := true
	for _, a := range args {
		switch a.(type) {
		case int64:
		case float64:
			allInt = false
		default:
			return nil, fmt.Errorf("expected number, got %s", TypeName(a))
		}
	}
	if allInt {
		acc := args[0].(int64)
		if len(args) == 1 && unary {
			return intFn(unit, acc)
		}
		for _, a := range args[1:] {
			var err error
			acc, err = intFn(acc, a.(int64))
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	acc, _ := AsFloat(args[0])
	if len(args) == 1 && unary {
		return floatFn(float64(unit), acc), nil
	}
	for _, a := range args[1:] {
		f, _ := AsFloat(a)
		acc = floatFn(acc, f)
	}
	return acc, nil
}

func installArith(env *Env) {
	env.Register("+", func(args List) (Value, error) {
		return numFold(args,
			func(a, b int64) (int64, error) { return a + b, nil },
			func(a, b float64) float64 { return a + b }, 0, false)
	})
	env.Register("-", func(args List) (Value, error) {
		if err := wantAtLeast(args, 1); err != nil {
			return nil, err
		}
		return numFold(args,
			func(a, b int64) (int64, error) { return a - b, nil },
			func(a, b float64) float64 { return a - b }, 0, true)
	})
	env.Register("*", func(args List) (Value, error) {
		return numFold(args,
			func(a, b int64) (int64, error) { return a * b, nil },
			func(a, b float64) float64 { return a * b }, 1, false)
	})
	env.Register("/", func(args List) (Value, error) {
		if err := wantAtLeast(args, 2); err != nil {
			return nil, err
		}
		return numFold(args,
			func(a, b int64) (int64, error) {
				if b == 0 {
					return 0, fmt.Errorf("division by zero")
				}
				return a / b, nil
			},
			func(a, b float64) float64 { return a / b }, 1, false)
	})
	env.Register("mod", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		a, err := AsInt(args[0])
		if err != nil {
			return nil, err
		}
		b, err := AsInt(args[1])
		if err != nil {
			return nil, err
		}
		if b == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return a % b, nil
	})
	env.Register("abs", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		switch x := args[0].(type) {
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		default:
			return nil, fmt.Errorf("expected number, got %s", TypeName(args[0]))
		}
	})
	env.Register("even?", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		n, err := AsInt(args[0])
		if err != nil {
			return nil, err
		}
		return n%2 == 0, nil
	})
	env.Register("odd?", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		n, err := AsInt(args[0])
		if err != nil {
			return nil, err
		}
		return n%2 != 0, nil
	})
	env.Register("min", func(args List) (Value, error) {
		if err := wantAtLeast(args, 1); err != nil {
			return nil, err
		}
		return numFold(args,
			func(a, b int64) (int64, error) {
				if b < a {
					return b, nil
				}
				return a, nil
			},
			func(a, b float64) float64 {
				if b < a {
					return b
				}
				return a
			}, 0, false)
	})
	env.Register("max", func(args List) (Value, error) {
		if err := wantAtLeast(args, 1); err != nil {
			return nil, err
		}
		return numFold(args,
			func(a, b int64) (int64, error) {
				if b > a {
					return b, nil
				}
				return a, nil
			},
			func(a, b float64) float64 {
				if b > a {
					return b
				}
				return a
			}, 0, false)
	})
}

func installCompare(env *Env) {
	cmp := func(name string, ok func(c int) bool) {
		env.Register(name, func(args List) (Value, error) {
			if err := wantAtLeast(args, 2); err != nil {
				return nil, err
			}
			for i := 0; i+1 < len(args); i++ {
				a, err := AsFloat(args[i])
				if err != nil {
					return nil, err
				}
				b, err := AsFloat(args[i+1])
				if err != nil {
					return nil, err
				}
				c := 0
				if a < b {
					c = -1
				} else if a > b {
					c = 1
				}
				if !ok(c) {
					return false, nil
				}
			}
			return true, nil
		})
	}
	cmp("<", func(c int) bool { return c < 0 })
	cmp(">", func(c int) bool { return c > 0 })
	cmp("<=", func(c int) bool { return c <= 0 })
	cmp(">=", func(c int) bool { return c >= 0 })
	cmp("=", func(c int) bool { return c == 0 })
	env.Register("equal?", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		return Equal(args[0], args[1]), nil
	})
	env.Register("not", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		return !Truthy(args[0]), nil
	})
}

func installLists(env *Env) {
	env.Register("list", func(args List) (Value, error) {
		out := make(List, len(args))
		copy(out, args)
		return out, nil
	})
	env.Register("cons", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		tail, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		out := make(List, 0, len(tail)+1)
		out = append(out, args[0])
		return append(out, tail...), nil
	})
	env.Register("first", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		l, err := AsList(args[0])
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return nil, nil
		}
		return l[0], nil
	})
	env.Register("rest", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		l, err := AsList(args[0])
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return List{}, nil
		}
		out := make(List, len(l)-1)
		copy(out, l[1:])
		return out, nil
	})
	env.Register("nth", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[0])
		if err != nil {
			return nil, err
		}
		i, err := AsInt(args[1])
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(l) {
			return nil, fmt.Errorf("index %d out of range for list of %d", i, len(l))
		}
		return l[i], nil
	})
	env.Register("length", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		switch x := args[0].(type) {
		case nil:
			return int64(0), nil
		case List:
			return int64(len(x)), nil
		case string:
			return int64(len(x)), nil
		default:
			return nil, fmt.Errorf("expected list or string, got %s", TypeName(args[0]))
		}
	})
	env.Register("append", func(args List) (Value, error) {
		var out List
		for _, a := range args {
			l, err := AsList(a)
			if err != nil {
				return nil, err
			}
			out = append(out, l...)
		}
		return out, nil
	})
	env.Register("reverse", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		l, err := AsList(args[0])
		if err != nil {
			return nil, err
		}
		out := make(List, len(l))
		for i, v := range l {
			out[len(l)-1-i] = v
		}
		return out, nil
	})
	env.Register("range", func(args List) (Value, error) {
		// (range n) -> (0 .. n-1); (range a b) -> (a .. b-1).
		if len(args) != 1 && len(args) != 2 {
			return nil, fmt.Errorf("wants 1 or 2 arguments, got %d", len(args))
		}
		var lo, hi int64
		var err error
		if len(args) == 1 {
			hi, err = AsInt(args[0])
		} else {
			lo, err = AsInt(args[0])
			if err == nil {
				hi, err = AsInt(args[1])
			}
		}
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return List{}, nil
		}
		out := make(List, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out, nil
	})
	env.Register("assoc", func(args List) (Value, error) {
		// (assoc key alist) -> matching (key value) pair or nil.
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		alist, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		for _, entry := range alist {
			pair, ok := entry.(List)
			if !ok || len(pair) < 1 {
				continue
			}
			if Equal(pair[0], args[0]) {
				return pair, nil
			}
		}
		return nil, nil
	})
}

func installStrings(env *Env) {
	env.Register("string-append", func(args List) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteString(Display(a))
		}
		return b.String(), nil
	})
	env.Register("format", func(args List) (Value, error) {
		// (format "template" args...): ~a inserts display form, ~s write
		// form, ~~ a literal tilde, ~% a newline.
		if err := wantAtLeast(args, 1); err != nil {
			return nil, err
		}
		tpl, err := AsString(args[0])
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		argi := 1
		for i := 0; i < len(tpl); i++ {
			c := tpl[i]
			if c != '~' {
				b.WriteByte(c)
				continue
			}
			i++
			if i >= len(tpl) {
				return nil, fmt.Errorf("dangling ~ in format template")
			}
			switch tpl[i] {
			case 'a', 'A':
				if argi >= len(args) {
					return nil, fmt.Errorf("not enough arguments for format template %q", tpl)
				}
				b.WriteString(Display(args[argi]))
				argi++
			case 's', 'S':
				if argi >= len(args) {
					return nil, fmt.Errorf("not enough arguments for format template %q", tpl)
				}
				b.WriteString(Format(args[argi]))
				argi++
			case '~':
				b.WriteByte('~')
			case '%':
				b.WriteByte('\n')
			default:
				return nil, fmt.Errorf("unknown format directive ~%c", tpl[i])
			}
		}
		return b.String(), nil
	})
	env.Register("symbol->string", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		s, err := AsSymbol(args[0])
		if err != nil {
			return nil, err
		}
		return string(s), nil
	})
	env.Register("string->symbol", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		s, err := AsString(args[0])
		if err != nil {
			return nil, err
		}
		return Symbol(s), nil
	})
	env.Register("string-upcase", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		s, err := AsString(args[0])
		if err != nil {
			return nil, err
		}
		return strings.ToUpper(s), nil
	})
	env.Register("string-split", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		s, err := AsString(args[0])
		if err != nil {
			return nil, err
		}
		sep, err := AsString(args[1])
		if err != nil {
			return nil, err
		}
		parts := strings.Split(s, sep)
		out := make(List, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return out, nil
	})
	env.Register("string-contains?", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		s, err := AsString(args[0])
		if err != nil {
			return nil, err
		}
		sub, err := AsString(args[1])
		if err != nil {
			return nil, err
		}
		return strings.Contains(s, sub), nil
	})
	env.Register("number->string", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		if _, ok := numeric(args[0]); !ok {
			return nil, fmt.Errorf("expected number, got %s", TypeName(args[0]))
		}
		return Display(args[0]), nil
	})
	env.Register("string->number", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		s, err := AsString(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ReadOne(s)
		if err != nil {
			return nil, err
		}
		if _, ok := numeric(v); !ok {
			return nil, fmt.Errorf("%q is not a number", s)
		}
		return v, nil
	})
	env.Register("string-join", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[0])
		if err != nil {
			return nil, err
		}
		sep, err := AsString(args[1])
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(l))
		for i, v := range l {
			parts[i] = Display(v)
		}
		return strings.Join(parts, sep), nil
	})
}

func installPredicates(env *Env) {
	pred := func(name string, f func(v Value) bool) {
		env.Register(name, func(args List) (Value, error) {
			if err := wantArgs(args, 1); err != nil {
				return nil, err
			}
			return f(args[0]), nil
		})
	}
	pred("null?", func(v Value) bool {
		if v == nil {
			return true
		}
		l, ok := v.(List)
		return ok && len(l) == 0
	})
	pred("list?", func(v Value) bool {
		_, ok := v.(List)
		return ok || v == nil
	})
	pred("number?", func(v Value) bool {
		_, ok := numeric(v)
		return ok
	})
	pred("string?", func(v Value) bool { _, ok := v.(string); return ok })
	pred("symbol?", func(v Value) bool { _, ok := v.(Symbol); return ok })
	pred("procedure?", func(v Value) bool {
		switch v.(type) {
		case *Lambda, *Builtin:
			return true
		}
		return false
	})
}

// installApplicative registers map/filter/for-each/apply/fold/sort-by, which
// need the interpreter to apply procedures and are therefore installed per
// Interp rather than per Env.
func (in *Interp) installApplicative() {
	env := in.Global
	env.Register("apply", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		return in.Apply(args[0], l)
	})
	env.Register("map", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		out := make(List, len(l))
		for i, v := range l {
			out[i], err = in.Apply(args[0], List{v})
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	env.Register("filter", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		var out List
		for _, v := range l {
			keep, err := in.Apply(args[0], List{v})
			if err != nil {
				return nil, err
			}
			if Truthy(keep) {
				out = append(out, v)
			}
		}
		return out, nil
	})
	env.Register("for-each", func(args List) (Value, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		for _, v := range l {
			if _, err := in.Apply(args[0], List{v}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	env.Register("fold", func(args List) (Value, error) {
		// (fold fn init list)
		if err := wantArgs(args, 3); err != nil {
			return nil, err
		}
		l, err := AsList(args[2])
		if err != nil {
			return nil, err
		}
		acc := args[1]
		for _, v := range l {
			acc, err = in.Apply(args[0], List{acc, v})
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	env.Register("sort-by", func(args List) (Value, error) {
		// (sort-by key-fn list): stable sort by numeric or string key.
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		l, err := AsList(args[1])
		if err != nil {
			return nil, err
		}
		keys := make([]Value, len(l))
		for i, v := range l {
			keys[i], err = in.Apply(args[0], List{v})
			if err != nil {
				return nil, err
			}
		}
		idx := make([]int, len(l))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := keys[idx[a]], keys[idx[b]]
			if fa, ok := numeric(ka); ok {
				fb, ok := numeric(kb)
				if !ok {
					sortErr = fmt.Errorf("mixed sort keys")
					return false
				}
				return fa < fb
			}
			sa, aok := ka.(string)
			sb, bok := kb.(string)
			if !aok || !bok {
				sortErr = fmt.Errorf("sort keys must be numbers or strings")
				return false
			}
			return sa < sb
		})
		if sortErr != nil {
			return nil, sortErr
		}
		out := make(List, len(l))
		for i, j := range idx {
			out[i] = l[j]
		}
		return out, nil
	})
}
