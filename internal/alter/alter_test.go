package alter

import (
	"strings"
	"testing"
	"testing/quick"
)

// evalStr evaluates source and returns the last value.
func evalStr(t *testing.T, src string) Value {
	t.Helper()
	v, err := New().RunString(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

// evalErr evaluates source expecting failure.
func evalErr(t *testing.T, src string) error {
	t.Helper()
	_, err := New().RunString(src)
	if err == nil {
		t.Fatalf("eval %q: expected error", src)
	}
	return err
}

func TestReaderBasics(t *testing.T) {
	cases := map[string]string{
		"42":                  "42",
		"-17":                 "-17",
		"3.5":                 "3.5",
		`"hi\nthere"`:         `"hi\nthere"`,
		"#t":                  "#t",
		"#f":                  "#f",
		"nil":                 "nil",
		"foo-bar":             "foo-bar",
		"(1 2 3)":             "(1 2 3)",
		"(a (b c) d)":         "(a (b c) d)",
		"'x":                  "(quote x)",
		"'(1 2)":              "(quote (1 2))",
		"( a ; comment\n b )": "(a b)",
		"()":                  "()",
	}
	for src, want := range cases {
		v, err := ReadOne(src)
		if err != nil {
			t.Errorf("read %q: %v", src, err)
			continue
		}
		if got := Format(v); got != want {
			t.Errorf("read %q = %s, want %s", src, got, want)
		}
	}
}

func TestReaderErrors(t *testing.T) {
	for _, src := range []string{"(1 2", ")", `"unterminated`, `"bad \q escape"`, "(1) (2)"} {
		if _, err := ReadOne(src); err == nil {
			t.Errorf("read %q: expected error", src)
		}
	}
}

func TestReaderMultipleForms(t *testing.T) {
	forms, err := ReadAll("(a) (b) 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != 3 {
		t.Fatalf("got %d forms", len(forms))
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]Value{
		"(+ 1 2 3)":   int64(6),
		"(+)":         int64(0),
		"(- 10 3 2)":  int64(5),
		"(- 5)":       int64(-5),
		"(* 2 3 4)":   int64(24),
		"(/ 7 2)":     int64(3),
		"(/ 7.0 2)":   3.5,
		"(+ 1 2.5)":   3.5,
		"(mod 7 3)":   int64(1),
		"(min 3 1 2)": int64(1),
		"(max 3 1 2)": int64(3),
		"(max 1.5 2)": float64(2),
	}
	for src, want := range cases {
		if got := evalStr(t, src); !Equal(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	evalErr(t, "(/ 1 0)")
	evalErr(t, "(mod 1 0)")
	evalErr(t, `(+ 1 "x")`)
}

func TestComparisons(t *testing.T) {
	cases := map[string]bool{
		"(< 1 2 3)":              true,
		"(< 1 3 2)":              false,
		"(<= 1 1 2)":             true,
		"(> 3 2 1)":              true,
		"(>= 2 2 1)":             true,
		"(= 2 2 2)":              true,
		"(= 2 2.0)":              true,
		"(equal? '(1 2) '(1 2))": true,
		"(equal? '(1 2) '(1 3))": false,
		`(equal? "a" "a")`:       true,
		"(not #f)":               true,
		"(not 0)":                false, // 0 is truthy, Lisp-style
	}
	for src, want := range cases {
		if got := evalStr(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestDefineAndSet(t *testing.T) {
	if got := evalStr(t, "(define x 10) (set! x (+ x 5)) x"); !Equal(got, int64(15)) {
		t.Fatalf("got %v", got)
	}
	evalErr(t, "(set! nosuch 1)")
	evalErr(t, "nosuch")
}

func TestLambdaAndRecursion(t *testing.T) {
	fact := `
	  (define (fact n)
	    (if (<= n 1) 1 (* n (fact (- n 1)))))
	  (fact 10)`
	if got := evalStr(t, fact); !Equal(got, int64(3628800)) {
		t.Fatalf("fact = %v", got)
	}
	fib := `
	  (define fib (lambda (n)
	    (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
	  (fib 15)`
	if got := evalStr(t, fib); !Equal(got, int64(610)) {
		t.Fatalf("fib = %v", got)
	}
}

func TestLexicalClosure(t *testing.T) {
	src := `
	  (define (make-counter)
	    (let ((n 0))
	      (lambda () (set! n (+ n 1)) n)))
	  (define c1 (make-counter))
	  (define c2 (make-counter))
	  (c1) (c1) (c1)
	  (list (c1) (c2))`
	if got := Format(evalStr(t, src)); got != "(4 1)" {
		t.Fatalf("closure = %s", got)
	}
}

func TestVariadicLambda(t *testing.T) {
	src := `(define (f a &rest more) (list a more)) (f 1 2 3 4)`
	if got := Format(evalStr(t, src)); got != "(1 (2 3 4))" {
		t.Fatalf("got %s", got)
	}
	if got := Format(evalStr(t, `(define (f a &rest more) (list a more)) (f 1)`)); got != "(1 ())" {
		t.Fatalf("got %s", got)
	}
	evalErr(t, `(define (f a &rest more) more) (f)`)
}

func TestArityErrors(t *testing.T) {
	evalErr(t, "((lambda (x) x))")
	evalErr(t, "((lambda (x) x) 1 2)")
	evalErr(t, "(1 2 3)") // calling a number
}

func TestLetAndLetStar(t *testing.T) {
	if got := evalStr(t, "(let ((a 1) (b 2)) (+ a b))"); !Equal(got, int64(3)) {
		t.Fatalf("let = %v", got)
	}
	// let evaluates bindings in the outer scope; let* sequentially.
	if got := evalStr(t, "(define a 10) (let ((a 1) (b a)) b)"); !Equal(got, int64(10)) {
		t.Fatalf("let scoping = %v", got)
	}
	if got := evalStr(t, "(let* ((a 1) (b (+ a 1))) b)"); !Equal(got, int64(2)) {
		t.Fatalf("let* = %v", got)
	}
	evalErr(t, "(let ((a)) a)")
}

func TestCondWhenUnless(t *testing.T) {
	src := `(define (classify n)
	          (cond ((< n 0) "neg") ((= n 0) "zero") (else "pos")))
	        (list (classify -5) (classify 0) (classify 9))`
	if got := Format(evalStr(t, src)); got != `("neg" "zero" "pos")` {
		t.Fatalf("cond = %s", got)
	}
	if got := evalStr(t, "(when (> 2 1) 5)"); !Equal(got, int64(5)) {
		t.Fatalf("when = %v", got)
	}
	if got := evalStr(t, "(when (< 2 1) 5)"); got != nil {
		t.Fatalf("when false = %v", got)
	}
	if got := evalStr(t, "(unless (< 2 1) 7)"); !Equal(got, int64(7)) {
		t.Fatalf("unless = %v", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
	  (define i 0)
	  (define sum 0)
	  (while (< i 10)
	    (set! sum (+ sum i))
	    (set! i (+ i 1)))
	  sum`
	if got := evalStr(t, src); !Equal(got, int64(45)) {
		t.Fatalf("while = %v", got)
	}
}

func TestAndOrShortCircuit(t *testing.T) {
	// The undefined variable must never be evaluated.
	if got := evalStr(t, "(and #f nosuch)"); got != false {
		t.Fatalf("and = %v", got)
	}
	if got := evalStr(t, "(or 5 nosuch)"); !Equal(got, int64(5)) {
		t.Fatalf("or = %v", got)
	}
	if got := evalStr(t, "(and 1 2 3)"); !Equal(got, int64(3)) {
		t.Fatalf("and all true = %v", got)
	}
	if got := evalStr(t, "(or #f nil)"); got != nil {
		t.Fatalf("or all false = %v", got)
	}
}

func TestListOps(t *testing.T) {
	cases := map[string]string{
		"(list 1 2 3)":              "(1 2 3)",
		"(cons 1 '(2 3))":           "(1 2 3)",
		"(cons 1 nil)":              "(1)",
		"(first '(1 2))":            "1",
		"(first '())":               "nil",
		"(rest '(1 2 3))":           "(2 3)",
		"(rest '())":                "()",
		"(nth '(a b c) 1)":          "b",
		"(length '(1 2 3))":         "3",
		`(length "abcd")`:           "4",
		"(append '(1) '(2 3) '())":  "(1 2 3)",
		"(reverse '(1 2 3))":        "(3 2 1)",
		"(range 4)":                 "(0 1 2 3)",
		"(range 2 5)":               "(2 3 4)",
		"(range 5 2)":               "()",
		"(assoc 'b '((a 1) (b 2)))": "(b 2)",
		"(assoc 'z '((a 1)))":       "nil",
	}
	for src, want := range cases {
		if got := Format(evalStr(t, src)); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
	evalErr(t, "(nth '(1) 5)")
	evalErr(t, "(nth '(1) -1)")
}

func TestHigherOrder(t *testing.T) {
	cases := map[string]string{
		"(map (lambda (x) (* x x)) '(1 2 3))":      "(1 4 9)",
		"(filter (lambda (x) (> x 1)) '(0 1 2 3))": "(2 3)",
		"(fold + 0 '(1 2 3 4))":                    "10",
		"(apply + '(1 2 3))":                       "6",
		"(sort-by (lambda (x) (- x)) '(1 3 2))":    "(3 2 1)",
		`(sort-by (lambda (x) x) '("b" "a" "c"))`:  `("a" "b" "c")`,
	}
	for src, want := range cases {
		if got := Format(evalStr(t, src)); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
	src := `
	  (define total 0)
	  (for-each (lambda (x) (set! total (+ total x))) '(1 2 3))
	  total`
	if got := evalStr(t, src); !Equal(got, int64(6)) {
		t.Fatalf("for-each = %v", got)
	}
	evalErr(t, "(sort-by (lambda (x) x) '(1 \"a\"))")
}

func TestStringOps(t *testing.T) {
	cases := map[string]string{
		`(string-append "a" "b" 3)`:             `"ab3"`,
		`(format "fn ~a has ~a threads" "f" 4)`: `"fn f has 4 threads"`,
		`(format "write: ~s" "x")`:              `"write: \"x\""`,
		`(format "~~ and ~%")`:                  "\"~ and \\n\"",
		`(symbol->string 'abc)`:                 `"abc"`,
		`(string->symbol "abc")`:                "abc",
		`(string-upcase "abc")`:                 `"ABC"`,
		`(string-join '(1 2 3) ", ")`:           `"1, 2, 3"`,
	}
	for src, want := range cases {
		if got := Format(evalStr(t, src)); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
	evalErr(t, `(format "~a")`)
	evalErr(t, `(format "~q" 1)`)
}

func TestExtraBuiltins(t *testing.T) {
	cases := map[string]string{
		`(string-split "a,b,c" ",")`:       `("a" "b" "c")`,
		`(string-split "abc" "x")`:         `("abc")`,
		`(string-contains? "hello" "ell")`: "#t",
		`(string-contains? "hello" "z")`:   "#f",
		`(number->string 42)`:              `"42"`,
		`(number->string 2.5)`:             `"2.5"`,
		`(string->number "17")`:            "17",
		`(string->number "-3.5")`:          "-3.5",
		"(abs -5)":                         "5",
		"(abs 5)":                          "5",
		"(abs -2.5)":                       "2.5",
		"(even? 4)":                        "#t",
		"(even? 3)":                        "#f",
		"(odd? 3)":                         "#t",
	}
	for src, want := range cases {
		if got := Format(evalStr(t, src)); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
	evalErr(t, `(string->number "banana")`)
	evalErr(t, `(number->string "x")`)
	evalErr(t, `(abs "x")`)
	evalErr(t, `(even? 2.5)`)
}

func TestPredicates(t *testing.T) {
	cases := map[string]bool{
		"(null? '())":                 true,
		"(null? nil)":                 true,
		"(null? '(1))":                false,
		"(list? '(1))":                true,
		`(list? "x")`:                 false,
		"(number? 3)":                 true,
		"(number? 3.5)":               true,
		`(number? "3")`:               false,
		`(string? "x")`:               true,
		"(symbol? 'x)":                true,
		"(procedure? (lambda (x) x))": true,
		"(procedure? +)":              true,
		"(procedure? 3)":              false,
	}
	for src, want := range cases {
		if got := evalStr(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	in := New()
	in.MaxDepth = 100
	_, err := in.RunString("(define (loop n) (loop (+ n 1))) (loop 0)")
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	in := New()
	in.MaxSteps = 1000
	_, err := in.RunString("(while #t 1)")
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestCustomBuiltinAndHostObjects(t *testing.T) {
	type widget struct{ name string }
	in := New()
	w := &widget{name: "w1"}
	in.Global.Register("get-widget", func(args List) (Value, error) {
		return w, nil
	})
	in.Global.Register("widget-name", func(args List) (Value, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		wd, ok := args[0].(*widget)
		if !ok {
			return nil, errFor(args[0])
		}
		return wd.name, nil
	})
	got, err := in.RunString(`(widget-name (get-widget))`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "w1" {
		t.Fatalf("got %v", got)
	}
	// Host objects display opaquely but safely.
	if s := Format(w); !strings.Contains(s, "object") {
		t.Fatalf("host object formats as %s", s)
	}
}

func errFor(v Value) error { return &hostTypeError{TypeName(v)} }

type hostTypeError struct{ got string }

func (e *hostTypeError) Error() string { return "expected widget, got " + e.got }

func TestFormatAndDisplayForms(t *testing.T) {
	v := List{int64(1), "two", Symbol("three"), true, nil, 2.5}
	if got := Format(v); got != `(1 "two" three #t nil 2.5)` {
		t.Fatalf("Format = %s", got)
	}
	if got := Display(v); got != "(1 two three #t nil 2.5)" {
		t.Fatalf("Display = %s", got)
	}
}

func TestEqualAcrossNumericTypes(t *testing.T) {
	check := func(n int32) bool {
		return Equal(int64(n), float64(n)) && Equal(List{int64(n)}, List{float64(n)})
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if Equal(int64(1), "1") {
		t.Fatal("number equals string")
	}
}

func TestReadEvalRoundTripProperty(t *testing.T) {
	// Property: formatting a parsed literal list and re-reading it yields
	// an Equal value.
	check := func(xs []int16) bool {
		items := make([]string, len(xs))
		for i, x := range xs {
			items[i] = Format(int64(x))
		}
		src := "(" + strings.Join(items, " ") + ")"
		v1, err := ReadOne(src)
		if err != nil {
			return false
		}
		v2, err := ReadOne(Format(v1))
		if err != nil {
			return false
		}
		return Equal(v1, v2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBeginAndEmptyList(t *testing.T) {
	if got := evalStr(t, "(begin 1 2 3)"); !Equal(got, int64(3)) {
		t.Fatalf("begin = %v", got)
	}
	if got := Format(evalStr(t, "()")); got != "()" {
		t.Fatalf("() = %s", got)
	}
}

func TestDefineNamesAnonymousLambda(t *testing.T) {
	in := New()
	if _, err := in.RunString("(define f (lambda (x) x))"); err != nil {
		t.Fatal(err)
	}
	v, _ := in.Global.Lookup("f")
	if lam := v.(*Lambda); lam.Name != "f" {
		t.Fatalf("lambda name = %q", lam.Name)
	}
}
