// Package alter implements the Alter language: the Lisp-like programming
// language the SAGE glue-code generator is written in (§2: "a programming
// language similar to Lisp in its syntax and style, which provides a direct
// interface to the contents of a SAGE model"). The interpreter provides the
// constructs the paper enumerates — procedure encapsulation, conditionals,
// looping, variable declaration, and recursion — plus a builtin registry
// through which the embedding tool (internal/gluegen) installs the "standard
// calls" for traversing model objects, reading and setting properties, and
// emitting output.
//
// Values are s-expressions: nil, booleans, integers, floats, strings,
// symbols, proper lists, procedures (lambdas and builtins) and opaque host
// objects (model functions, ports, arcs). Lists are Go slices, which keeps
// traversal code simple and garbage-collector friendly.
package alter

import (
	"fmt"
	"strconv"
	"strings"
)

// Symbol is an interned identifier.
type Symbol string

// Value is any Alter datum: nil, bool, int64, float64, string, Symbol,
// List, *Lambda, *Builtin, or an opaque host object.
type Value any

// List is a proper list.
type List []Value

// Lambda is a user-defined procedure with lexical scope.
type Lambda struct {
	Name   string // for error messages; "" for anonymous
	Params []Symbol
	Rest   Symbol // variadic tail parameter, "" if none
	Body   List
	Env    *Env
}

// Builtin is a host procedure. Args arrive already evaluated.
type Builtin struct {
	Name string
	Fn   func(args List) (Value, error)
}

// Truthy implements Lisp truth: everything except nil and false is true.
// (The empty list is a value, and it is true, as in Scheme.)
func Truthy(v Value) bool {
	if v == nil {
		return false
	}
	b, ok := v.(bool)
	return !ok || b
}

// Format renders a value in external (write) form: strings are quoted.
func Format(v Value) string {
	var b strings.Builder
	writeValue(&b, v, true)
	return b.String()
}

// Display renders a value in display form: strings appear bare.
func Display(v Value) string {
	var b strings.Builder
	writeValue(&b, v, false)
	return b.String()
}

func writeValue(b *strings.Builder, v Value, write bool) {
	switch x := v.(type) {
	case nil:
		b.WriteString("nil")
	case bool:
		if x {
			b.WriteString("#t")
		} else {
			b.WriteString("#f")
		}
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		if write {
			b.WriteString(strconv.Quote(x))
		} else {
			b.WriteString(x)
		}
	case Symbol:
		b.WriteString(string(x))
	case List:
		b.WriteByte('(')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(' ')
			}
			writeValue(b, e, write)
		}
		b.WriteByte(')')
	case *Lambda:
		name := x.Name
		if name == "" {
			name = "anonymous"
		}
		fmt.Fprintf(b, "#<lambda %s>", name)
	case *Builtin:
		fmt.Fprintf(b, "#<builtin %s>", x.Name)
	default:
		fmt.Fprintf(b, "#<object %T>", v)
	}
}

// TypeName names a value's type for error messages.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "nil"
	case bool:
		return "boolean"
	case int64:
		return "integer"
	case float64:
		return "float"
	case string:
		return "string"
	case Symbol:
		return "symbol"
	case List:
		return "list"
	case *Lambda, *Builtin:
		return "procedure"
	default:
		return fmt.Sprintf("object(%T)", v)
	}
}

// AsInt coerces integers (and integral floats) to int64.
func AsInt(v Value) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case float64:
		if x == float64(int64(x)) {
			return int64(x), nil
		}
		return 0, fmt.Errorf("alter: %v is not an integer", x)
	default:
		return 0, fmt.Errorf("alter: expected integer, got %s", TypeName(v))
	}
}

// AsFloat coerces numbers to float64.
func AsFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	default:
		return 0, fmt.Errorf("alter: expected number, got %s", TypeName(v))
	}
}

// AsString extracts a string value.
func AsString(v Value) (string, error) {
	if s, ok := v.(string); ok {
		return s, nil
	}
	return "", fmt.Errorf("alter: expected string, got %s", TypeName(v))
}

// AsSymbol extracts a symbol.
func AsSymbol(v Value) (Symbol, error) {
	if s, ok := v.(Symbol); ok {
		return s, nil
	}
	return "", fmt.Errorf("alter: expected symbol, got %s", TypeName(v))
}

// AsList extracts a list (nil is the empty list).
func AsList(v Value) (List, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case List:
		return x, nil
	default:
		return nil, fmt.Errorf("alter: expected list, got %s", TypeName(v))
	}
}

// Equal implements structural equality across Alter values (numbers compare
// across int/float; lists compare elementwise; host objects by identity).
func Equal(a, b Value) bool {
	if af, aok := numeric(a); aok {
		bf, bok := numeric(b)
		return bok && af == bf
	}
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case Symbol:
		y, ok := b.(Symbol)
		return ok && x == y
	case List:
		y, ok := b.(List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

func numeric(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}
