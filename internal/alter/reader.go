package alter

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The reader turns source text into Values. Syntax: parenthesised lists,
// 'x quote shorthand, "strings" with Go escapes, ; line comments, integers,
// floats, #t/#f booleans, nil, and symbols.

type reader struct {
	src   []rune
	pos   int
	line  int
	depth int
}

// maxReadDepth bounds list/quote nesting so hostile input (e.g. a few
// kilobytes of '(' characters) fails with a parse error instead of
// overflowing the goroutine stack through read's recursion.
const maxReadDepth = 1000

// ReadAll parses every top-level form in src.
func ReadAll(src string) (List, error) {
	r := &reader{src: []rune(src), line: 1}
	var forms List
	for {
		r.skipSpace()
		if r.eof() {
			return forms, nil
		}
		form, err := r.read()
		if err != nil {
			return nil, err
		}
		forms = append(forms, form)
	}
}

// ReadOne parses a single form, failing on trailing garbage.
func ReadOne(src string) (Value, error) {
	forms, err := ReadAll(src)
	if err != nil {
		return nil, err
	}
	if len(forms) != 1 {
		return nil, fmt.Errorf("alter: expected one form, got %d", len(forms))
	}
	return forms[0], nil
}

func (r *reader) eof() bool { return r.pos >= len(r.src) }

func (r *reader) peek() rune { return r.src[r.pos] }

func (r *reader) next() rune {
	c := r.src[r.pos]
	r.pos++
	if c == '\n' {
		r.line++
	}
	return c
}

func (r *reader) errf(format string, args ...any) error {
	return fmt.Errorf("alter: line %d: %s", r.line, fmt.Sprintf(format, args...))
}

func (r *reader) skipSpace() {
	for !r.eof() {
		c := r.peek()
		switch {
		case unicode.IsSpace(c):
			r.next()
		case c == ';':
			for !r.eof() && r.peek() != '\n' {
				r.next()
			}
		default:
			return
		}
	}
}

func isDelim(c rune) bool {
	return unicode.IsSpace(c) || c == '(' || c == ')' || c == '"' || c == ';' || c == '\''
}

func (r *reader) read() (Value, error) {
	r.skipSpace()
	if r.eof() {
		return nil, r.errf("unexpected end of input")
	}
	if r.depth >= maxReadDepth {
		return nil, r.errf("nesting deeper than %d", maxReadDepth)
	}
	r.depth++
	defer func() { r.depth-- }()
	switch c := r.peek(); {
	case c == '(':
		r.next()
		var items List
		for {
			r.skipSpace()
			if r.eof() {
				return nil, r.errf("unterminated list")
			}
			if r.peek() == ')' {
				r.next()
				return items, nil
			}
			item, err := r.read()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
		}
	case c == ')':
		return nil, r.errf("unexpected ')'")
	case c == '\'':
		r.next()
		quoted, err := r.read()
		if err != nil {
			return nil, err
		}
		return List{Symbol("quote"), quoted}, nil
	case c == '"':
		return r.readString()
	default:
		return r.readAtom()
	}
}

func (r *reader) readString() (Value, error) {
	start := r.line
	r.next() // opening quote
	var b strings.Builder
	for {
		if r.eof() {
			return nil, fmt.Errorf("alter: line %d: unterminated string", start)
		}
		c := r.next()
		if c == '"' {
			return b.String(), nil
		}
		if c == '\\' {
			if r.eof() {
				return nil, fmt.Errorf("alter: line %d: unterminated escape", start)
			}
			e := r.next()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'a':
				b.WriteByte('\a')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'v':
				b.WriteByte('\v')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case 'x', 'u', 'U':
				// Hex escapes, so Format (which quotes with the full Go
				// escape set) always round-trips through the reader.
				digits := 2
				if e == 'u' {
					digits = 4
				} else if e == 'U' {
					digits = 8
				}
				var code rune
				for i := 0; i < digits; i++ {
					if r.eof() {
						return nil, fmt.Errorf("alter: line %d: unterminated escape", start)
					}
					d, ok := hexVal(r.next())
					if !ok {
						return nil, fmt.Errorf("alter: line %d: bad hex digit in \\%c escape", start, e)
					}
					code = code<<4 | d
				}
				if e == 'x' {
					b.WriteByte(byte(code))
				} else {
					b.WriteRune(code)
				}
			default:
				return nil, fmt.Errorf("alter: line %d: unknown escape \\%c", start, e)
			}
			continue
		}
		b.WriteRune(c)
	}
}

func hexVal(c rune) (rune, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func (r *reader) readAtom() (Value, error) {
	var b strings.Builder
	for !r.eof() && !isDelim(r.peek()) {
		b.WriteRune(r.next())
	}
	tok := b.String()
	switch tok {
	case "#t", "true":
		return true, nil
	case "#f", "false":
		return false, nil
	case "nil":
		return nil, nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f, nil
	}
	return Symbol(tok), nil
}
