package alter

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// decodeFuzzCorpus extracts the single string argument from a Go fuzz corpus
// v1 file ("go test fuzz v1\nstring(...)").
func decodeFuzzCorpus(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a fuzz corpus v1 file", path)
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "string(")
	body = strings.TrimSuffix(body, ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("%s: bad string literal: %v", path, err)
	}
	return s
}

// TestFuzzCorpusReplay drives every committed FuzzReadAll corpus entry
// through the reader explicitly (in addition to the automatic seeding `go
// test` performs for fuzz targets), so the regression corpus is exercised
// even under -run filters and stays load-bearing if the fuzz target is ever
// renamed.
func TestFuzzCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReadAll")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		src := decodeFuzzCorpus(t, filepath.Join(dir, e.Name()))
		t.Run(e.Name(), func(t *testing.T) {
			// Must terminate without panicking; parse errors are legitimate.
			if _, err := ReadAll(src); err != nil {
				t.Logf("rejected (ok): %v", err)
			}
		})
	}
}
