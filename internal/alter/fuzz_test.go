package alter

import (
	"strings"
	"testing"
)

// FuzzReadAll feeds arbitrary bytes to the s-expression reader: it must
// either parse or return an error, never panic or overflow the stack, and
// anything it accepts must survive a Format -> ReadAll round trip.
func FuzzReadAll(f *testing.F) {
	seeds := []string{
		"",
		"(app \"fft2d\" (function \"fft\" 8))",
		"'(quote (1 2 3)) #t #f nil sym -12 3.5",
		"\"str with \\n escape\" ; comment\n(a (b (c)))",
		"(((((((((((((((((((()))))))))))))))))))",
		"(unterminated",
		"\"unterminated",
		")",
		"'",
		strings.Repeat("(", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		forms, err := ReadAll(src)
		if err != nil {
			return
		}
		// Accepted input must format to text the reader accepts again.
		for _, form := range forms {
			if _, err := ReadAll(Format(form)); err != nil {
				t.Fatalf("Format output rejected: %v\ninput: %q\nformatted: %q", err, src, Format(form))
			}
		}
	})
}

// TestReadAllDepthLimit pins the recursion bound: pathological nesting must
// fail cleanly rather than exhaust the stack.
func TestReadAllDepthLimit(t *testing.T) {
	deep := strings.Repeat("(", maxReadDepth+10) + strings.Repeat(")", maxReadDepth+10)
	if _, err := ReadAll(deep); err == nil {
		t.Fatal("expected a depth error for pathological nesting")
	}
	// Quote shorthand recurses through read as well.
	quoted := strings.Repeat("'", maxReadDepth+10) + "x"
	if _, err := ReadAll(quoted); err == nil {
		t.Fatal("expected a depth error for pathological quoting")
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("(", 50) + "x" + strings.Repeat(")", 50)
	if _, err := ReadAll(ok); err != nil {
		t.Fatalf("moderate nesting rejected: %v", err)
	}
}
