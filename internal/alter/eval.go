package alter

import (
	"errors"
	"fmt"
)

// Env is a lexical environment frame.
type Env struct {
	vars   map[Symbol]Value
	parent *Env
}

// NewEnv creates a child of parent (parent may be nil for a root frame).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[Symbol]Value{}, parent: parent}
}

// Lookup resolves a symbol through the frame chain.
func (e *Env) Lookup(s Symbol) (Value, bool) {
	for f := e; f != nil; f = f.parent {
		if v, ok := f.vars[s]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a symbol in this frame.
func (e *Env) Define(s Symbol, v Value) { e.vars[s] = v }

// Set assigns the nearest existing binding, failing if none exists.
func (e *Env) Set(s Symbol, v Value) error {
	for f := e; f != nil; f = f.parent {
		if _, ok := f.vars[s]; ok {
			f.vars[s] = v
			return nil
		}
	}
	return fmt.Errorf("alter: set! of undefined variable %s", s)
}

// Register installs a builtin procedure under its name.
func (e *Env) Register(name string, fn func(args List) (Value, error)) {
	e.Define(Symbol(name), &Builtin{Name: name, Fn: fn})
}

// Interp is an Alter interpreter instance: a global environment plus
// execution limits.
type Interp struct {
	Global *Env
	// MaxDepth bounds recursion (the glue generators recurse over models,
	// not unboundedly; a runaway script is a bug to report, not a hang).
	MaxDepth int
	// MaxSteps bounds total evaluation steps (0 = unlimited).
	MaxSteps int
	depth    int
	steps    int
}

// New creates an interpreter with the standard library installed.
func New() *Interp {
	in := &Interp{Global: NewEnv(nil), MaxDepth: 4096, MaxSteps: 0}
	installStdlib(in.Global)
	in.installApplicative()
	return in
}

// RunString reads and evaluates every form in src, returning the last value.
func (in *Interp) RunString(src string) (Value, error) {
	forms, err := ReadAll(src)
	if err != nil {
		return nil, err
	}
	var last Value
	for _, f := range forms {
		last, err = in.Eval(f, in.Global)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// errTooDeep distinguishes resource exhaustion from script errors.
var errTooDeep = errors.New("alter: recursion depth limit exceeded")

// Eval evaluates one expression in env.
func (in *Interp) Eval(expr Value, env *Env) (Value, error) {
	in.steps++
	if in.MaxSteps > 0 && in.steps > in.MaxSteps {
		return nil, fmt.Errorf("alter: step limit %d exceeded", in.MaxSteps)
	}
	switch x := expr.(type) {
	case Symbol:
		v, ok := env.Lookup(x)
		if !ok {
			return nil, fmt.Errorf("alter: undefined variable %s", x)
		}
		return v, nil
	case List:
		if len(x) == 0 {
			return List{}, nil
		}
		if head, ok := x[0].(Symbol); ok {
			if fn, special := specialForms[head]; special {
				return fn(in, x, env)
			}
		}
		return in.evalCall(x, env)
	default:
		// Self-evaluating: numbers, strings, booleans, nil, procedures,
		// host objects.
		return expr, nil
	}
}

func (in *Interp) evalCall(form List, env *Env) (Value, error) {
	callee, err := in.Eval(form[0], env)
	if err != nil {
		return nil, err
	}
	args := make(List, len(form)-1)
	for i, a := range form[1:] {
		args[i], err = in.Eval(a, env)
		if err != nil {
			return nil, err
		}
	}
	return in.Apply(callee, args)
}

// Apply invokes a procedure value on already-evaluated arguments.
func (in *Interp) Apply(callee Value, args List) (Value, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.MaxDepth {
		return nil, errTooDeep
	}
	switch f := callee.(type) {
	case *Builtin:
		v, err := f.Fn(args)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
		return v, nil
	case *Lambda:
		if f.Rest == "" && len(args) != len(f.Params) {
			return nil, fmt.Errorf("alter: %s wants %d arguments, got %d", lambdaName(f), len(f.Params), len(args))
		}
		if f.Rest != "" && len(args) < len(f.Params) {
			return nil, fmt.Errorf("alter: %s wants at least %d arguments, got %d", lambdaName(f), len(f.Params), len(args))
		}
		frame := NewEnv(f.Env)
		for i, p := range f.Params {
			frame.Define(p, args[i])
		}
		if f.Rest != "" {
			rest := make(List, len(args)-len(f.Params))
			copy(rest, args[len(f.Params):])
			frame.Define(f.Rest, rest)
		}
		var out Value
		for _, b := range f.Body {
			var err error
			out, err = in.Eval(b, frame)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("alter: cannot call %s", TypeName(callee))
	}
}

func lambdaName(f *Lambda) string {
	if f.Name == "" {
		return "lambda"
	}
	return f.Name
}

// specialForms dispatches syntax that controls evaluation. It is populated
// in init to break the initialisation cycle between the table and Eval.
var specialForms map[Symbol]func(in *Interp, form List, env *Env) (Value, error)

func init() {
	specialForms = map[Symbol]func(in *Interp, form List, env *Env) (Value, error){
		"quote":  sfQuote,
		"if":     sfIf,
		"cond":   sfCond,
		"define": sfDefine,
		"set!":   sfSet,
		"lambda": sfLambda,
		"let":    sfLet,
		"let*":   sfLetStar,
		"begin":  sfBegin,
		"while":  sfWhile,
		"and":    sfAnd,
		"or":     sfOr,
		"when":   sfWhen,
		"unless": sfUnless,
	}
}

func sfQuote(in *Interp, form List, env *Env) (Value, error) {
	if len(form) != 2 {
		return nil, fmt.Errorf("alter: quote wants 1 argument")
	}
	return form[1], nil
}

func sfIf(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 || len(form) > 4 {
		return nil, fmt.Errorf("alter: if wants (if test then [else])")
	}
	test, err := in.Eval(form[1], env)
	if err != nil {
		return nil, err
	}
	if Truthy(test) {
		return in.Eval(form[2], env)
	}
	if len(form) == 4 {
		return in.Eval(form[3], env)
	}
	return nil, nil
}

func sfCond(in *Interp, form List, env *Env) (Value, error) {
	for _, clause := range form[1:] {
		cl, ok := clause.(List)
		if !ok || len(cl) < 1 {
			return nil, fmt.Errorf("alter: cond clause must be a non-empty list")
		}
		if sym, ok := cl[0].(Symbol); ok && sym == "else" {
			return in.evalSeq(cl[1:], env)
		}
		test, err := in.Eval(cl[0], env)
		if err != nil {
			return nil, err
		}
		if Truthy(test) {
			if len(cl) == 1 {
				return test, nil
			}
			return in.evalSeq(cl[1:], env)
		}
	}
	return nil, nil
}

func (in *Interp) evalSeq(forms List, env *Env) (Value, error) {
	var out Value
	for _, f := range forms {
		var err error
		out, err = in.Eval(f, env)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sfDefine(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 {
		return nil, fmt.Errorf("alter: define wants a name and a value")
	}
	switch target := form[1].(type) {
	case Symbol:
		if len(form) != 3 {
			return nil, fmt.Errorf("alter: (define name value) wants exactly one value")
		}
		v, err := in.Eval(form[2], env)
		if err != nil {
			return nil, err
		}
		if lam, ok := v.(*Lambda); ok && lam.Name == "" {
			lam.Name = string(target)
		}
		env.Define(target, v)
		return nil, nil
	case List:
		// (define (name params...) body...) procedure shorthand.
		if len(target) == 0 {
			return nil, fmt.Errorf("alter: define procedure wants a name")
		}
		name, err := AsSymbol(target[0])
		if err != nil {
			return nil, err
		}
		lam, err := makeLambda(target[1:], form[2:], env)
		if err != nil {
			return nil, err
		}
		lam.Name = string(name)
		env.Define(name, lam)
		return nil, nil
	default:
		return nil, fmt.Errorf("alter: cannot define %s", TypeName(form[1]))
	}
}

func sfSet(in *Interp, form List, env *Env) (Value, error) {
	if len(form) != 3 {
		return nil, fmt.Errorf("alter: set! wants a name and a value")
	}
	name, err := AsSymbol(form[1])
	if err != nil {
		return nil, err
	}
	v, err := in.Eval(form[2], env)
	if err != nil {
		return nil, err
	}
	return v, env.Set(name, v)
}

func makeLambda(params List, body List, env *Env) (*Lambda, error) {
	lam := &Lambda{Env: env, Body: body}
	rest := false
	for _, p := range params {
		s, err := AsSymbol(p)
		if err != nil {
			return nil, fmt.Errorf("alter: lambda parameter: %w", err)
		}
		if s == "&rest" {
			rest = true
			continue
		}
		if rest {
			if lam.Rest != "" {
				return nil, fmt.Errorf("alter: multiple &rest parameters")
			}
			lam.Rest = s
			continue
		}
		lam.Params = append(lam.Params, s)
	}
	if rest && lam.Rest == "" {
		return nil, fmt.Errorf("alter: &rest without a parameter name")
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("alter: lambda with empty body")
	}
	return lam, nil
}

func sfLambda(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 3 {
		return nil, fmt.Errorf("alter: lambda wants parameters and a body")
	}
	params, err := AsList(form[1])
	if err != nil {
		return nil, err
	}
	return makeLambda(params, form[2:], env)
}

func sfLet(in *Interp, form List, env *Env) (Value, error) {
	return letCommon(in, form, env, false)
}

func sfLetStar(in *Interp, form List, env *Env) (Value, error) {
	return letCommon(in, form, env, true)
}

func letCommon(in *Interp, form List, env *Env, sequential bool) (Value, error) {
	if len(form) < 3 {
		return nil, fmt.Errorf("alter: let wants bindings and a body")
	}
	bindings, err := AsList(form[1])
	if err != nil {
		return nil, err
	}
	frame := NewEnv(env)
	evalEnv := env
	if sequential {
		evalEnv = frame
	}
	for _, b := range bindings {
		pair, ok := b.(List)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("alter: let binding must be (name value)")
		}
		name, err := AsSymbol(pair[0])
		if err != nil {
			return nil, err
		}
		v, err := in.Eval(pair[1], evalEnv)
		if err != nil {
			return nil, err
		}
		frame.Define(name, v)
	}
	return in.evalSeq(form[2:], frame)
}

func sfBegin(in *Interp, form List, env *Env) (Value, error) {
	return in.evalSeq(form[1:], env)
}

func sfWhile(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 2 {
		return nil, fmt.Errorf("alter: while wants a test")
	}
	var out Value
	for {
		test, err := in.Eval(form[1], env)
		if err != nil {
			return nil, err
		}
		if !Truthy(test) {
			return out, nil
		}
		out, err = in.evalSeq(form[2:], env)
		if err != nil {
			return nil, err
		}
	}
}

func sfAnd(in *Interp, form List, env *Env) (Value, error) {
	var out Value = true
	for _, f := range form[1:] {
		var err error
		out, err = in.Eval(f, env)
		if err != nil {
			return nil, err
		}
		if !Truthy(out) {
			return out, nil
		}
	}
	return out, nil
}

func sfOr(in *Interp, form List, env *Env) (Value, error) {
	for _, f := range form[1:] {
		out, err := in.Eval(f, env)
		if err != nil {
			return nil, err
		}
		if Truthy(out) {
			return out, nil
		}
	}
	return nil, nil
}

func sfWhen(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 2 {
		return nil, fmt.Errorf("alter: when wants a test")
	}
	test, err := in.Eval(form[1], env)
	if err != nil {
		return nil, err
	}
	if Truthy(test) {
		return in.evalSeq(form[2:], env)
	}
	return nil, nil
}

func sfUnless(in *Interp, form List, env *Env) (Value, error) {
	if len(form) < 2 {
		return nil, fmt.Errorf("alter: unless wants a test")
	}
	test, err := in.Eval(form[1], env)
	if err != nil {
		return nil, err
	}
	if !Truthy(test) {
		return in.evalSeq(form[2:], env)
	}
	return nil, nil
}
