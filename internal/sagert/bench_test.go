package sagert_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/platforms"
	"repro/internal/sagert"
)

// BenchmarkStripeDispatch measures a full generated-runtime run: stripe
// dispatch, credit flow control and inter-node transfers for a small FFT.
// Run with -benchmem; the allocation count here is the end-to-end figure
// the kernel fast path is meant to shrink.
func BenchmarkStripeDispatch(b *testing.B) {
	out, err := experiments.GenerateTables(experiments.AppFFT2D, platforms.CSPI(), 4, 128)
	if err != nil {
		b.Fatal(err)
	}
	pl := platforms.CSPI()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sagert.Run(out.Tables, pl, sagert.Options{Iterations: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Latencies) == 0 {
			b.Fatal("no latencies")
		}
	}
}

// BenchmarkStripeDispatchSequential is the non-pipelined variant: one block
// in flight, so per-iteration runtime bookkeeping dominates.
func BenchmarkStripeDispatchSequential(b *testing.B) {
	out, err := experiments.GenerateTables(experiments.AppCornerTurn, platforms.CSPI(), 4, 128)
	if err != nil {
		b.Fatal(err)
	}
	pl := platforms.CSPI()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sagert.Run(out.Tables, pl, sagert.Options{Iterations: 4, Sequential: true}); err != nil {
			b.Fatal(err)
		}
	}
}
