package sagert

import (
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// planShards decides whether — and how — a run can execute on a sharded
// kernel. It returns the shard count (1 = classic sequential kernel), the
// node->shard map, and the conservative lookahead: the minimum virtual
// latency of any message crossing between shards.
//
// Sharding is transparent (outputs are byte-identical either way), so the
// only question is soundness. A run is forced onto one shard when:
//
//   - the platform has a shared fabric (FabricConcurrency > 0): the fabric
//     is one contention point spanning every node, so no partition of the
//     nodes confines it to a shard;
//   - Sequential mode: the iteration barrier spans every thread;
//   - the legacy Options.Trace probe is set: its callback is a single
//     closure invoked from every thread;
//   - the derived lookahead is not positive (degenerate platform).
//
// The partition itself comes from sim/shard.Partition, seeded with the
// caller-supplied per-node weights (Options.ShardWeights — typically the
// analytical twin's per-node busy forecast, see twin.ShardWeights) and
// falling back to uniform contiguous bands without them.
func planShards(t *gluegen.Tables, pl machine.Platform, o *Options) (n int, domainOf []int, lookahead sim.Duration) {
	if o.Shards <= 1 || o.Sequential || o.Trace != nil || pl.FabricConcurrency > 0 {
		return 1, nil, 0
	}
	boards := make([]int, t.NumNodes)
	for i := range boards {
		boards[i] = pl.Board(i)
	}
	domainOf, n = shard.Partition(shard.Input{
		Nodes:   t.NumNodes,
		Shards:  o.Shards,
		BoardOf: boards,
		Weight:  o.ShardWeights,
	})
	if n <= 1 {
		return 1, nil, 0
	}
	// Every cross-node message is delivered Intra/InterLatency (plus any
	// injected extra, which only adds) after the send completes, so the
	// minimum latency over cut links bounds how far ahead a shard may run.
	// A board-aligned partition only cuts inter-board links; a partition
	// splitting a board also cuts intra-board ones.
	lookahead = pl.InterLatency
	if shard.SplitsBoard(domainOf, boards) && pl.IntraLatency < lookahead {
		lookahead = pl.IntraLatency
	}
	if lookahead <= 0 {
		return 1, nil, 0
	}
	return n, domainOf, lookahead
}
