package sagert

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/platforms"
	"repro/internal/sim"
	"repro/internal/trace"
)

// stressPlan combines every fault class: background drops, a degraded link,
// a full outage window and a node stall.
func stressPlan() *fault.Plan {
	p, err := fault.ParsePlan(`
seed 11
drop link=* rate=0.2
degrade link=1->2 bw=0.5 lat=+20us
degrade link=2->1 bw=0 from=100us to=400us
stall node=3 at=200us for=300us
`)
	if err != nil {
		panic(err)
	}
	return p
}

// TestResilientRunCorrectUnderFaults is the subsystem's end-to-end safety
// check: under drops, outages and stalls the run must terminate and the
// computed transform must be bit-identical to the fault-free one — faults
// cost time, never correctness.
func TestResilientRunCorrectUnderFaults(t *testing.T) {
	const n = 32
	tb := genTables(t, apps.FFT2D, n, 4, 4)
	clean, err := Run(tb, platforms.CSPI(), Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(tb, platforms.CSPI(), Options{
		Iterations: 2,
		Faults:     stressPlan(),
		Resilience: fault.Resilience{Degraded: true},
	})
	if err != nil {
		t.Fatalf("resilient run failed: %v", err)
	}
	if faulted.Output == nil || clean.Output == nil {
		t.Fatal("missing output")
	}
	if d := faulted.Output.MaxDiff(clean.Output); d != 0 {
		t.Fatalf("faults changed the computed result (max diff %g)", d)
	}
	if faulted.Elapsed <= clean.Elapsed {
		t.Fatalf("faulted run (%v) not slower than clean (%v)", faulted.Elapsed, clean.Elapsed)
	}
}

// TestResilientRunDeterministic: two identical faulted runs agree on every
// latency, and tracing does not perturb a single value.
func TestResilientRunDeterministic(t *testing.T) {
	const n = 32
	tb := genTables(t, apps.CornerTurn, n, 4, 4)
	runOnce := func(col *trace.Collector) *Result {
		res, err := Run(tb, platforms.CSPI(), Options{
			Iterations: 3,
			Faults:     stressPlan(),
			Resilience: fault.Resilience{Degraded: true},
			Collector:  col,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(nil), runOnce(nil)
	traced := runOnce(trace.New("faulted"))
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] || a.Latencies[i] != traced.Latencies[i] {
			t.Fatalf("iteration %d latencies diverge: %v %v %v",
				i, a.Latencies[i], b.Latencies[i], traced.Latencies[i])
		}
	}
	if a.Elapsed != b.Elapsed || a.Elapsed != traced.Elapsed {
		t.Fatalf("elapsed diverges: %v %v %v", a.Elapsed, b.Elapsed, traced.Elapsed)
	}
}

// TestResilienceEventsTraced: aggressive timeouts against a stalled consumer
// surface the runtime's recovery machinery — recv-timeouts, credit handling
// and injected faults all land in the collector.
func TestResilienceEventsTraced(t *testing.T) {
	const n = 32
	tb := genTables(t, apps.FFT2D, n, 4, 4)
	plan, err := fault.ParsePlan(`
seed 5
drop link=* rate=0.4
stall node=2 at=0 for=2ms
`)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.New("resilience")
	_, err = Run(tb, platforms.CSPI(), Options{
		Iterations: 3,
		Faults:     plan,
		Resilience: fault.Resilience{
			RecvTimeout:   100 * time.Microsecond,
			CreditTimeout: 100 * time.Microsecond,
			Degraded:      true,
		},
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, f := range col.Faults() {
		kinds[f.Kind] = f.Count
	}
	if kinds["drop"] == 0 || kinds["stall"] == 0 {
		t.Fatalf("injector events missing from trace: %v", kinds)
	}
	if kinds["recv-timeout"] == 0 {
		t.Fatalf("no recv-timeout spans despite a 2ms stall and 100us timeout: %v", kinds)
	}
	if kinds["retry"] == 0 {
		t.Fatalf("no retry spans at 40%% drop: %v", kinds)
	}
}

// TestInvalidPlanRefused: Run must reject malformed plans and plans that
// reference nodes beyond the machine before any simulation starts.
func TestInvalidPlanRefused(t *testing.T) {
	tb := genTables(t, apps.FFT2D, 16, 2, 2)
	if _, err := Run(tb, platforms.CSPI(), Options{
		Iterations: 1,
		Faults:     &fault.Plan{Stalls: []fault.StallRule{{Node: 0, Win: fault.Window{From: 0, To: fault.Forever}}}},
	}); err == nil {
		t.Fatal("unbounded stall accepted")
	}
	if _, err := Run(tb, platforms.CSPI(), Options{
		Iterations: 1,
		Faults: &fault.Plan{Stalls: []fault.StallRule{{Node: 99, Win: fault.Window{
			From: 0, To: sim.Time(time.Millisecond),
		}}}},
	}); err == nil {
		t.Fatal("stall on nonexistent node accepted")
	}
}
