// Package sagert is the SAGE run-time kernel of §2: it executes the
// glue-code generator's runtime tables on the simulated multicomputer. The
// kernel is "responsible for all sequencing of functions, data striping, and
// buffer management": every thread of every function-table entry runs as a
// simulated process on its mapped node, receives its striped input regions
// into per-function logical buffers, dispatches the library function by its
// table ID, and sends output regions onward according to the buffers'
// striding schedules.
//
// The overhead the paper measures for auto-generated code arises here
// mechanistically, not as a fudge factor: the kernel pays a dispatch cost
// per function invocation, assembles inputs into private logical buffers
// (extra copies relative to hand-coded in-place processing — §3.4: "the SAGE
// run-time buffer management scheme assigns unique logical buffers to the
// data per function which can cause extra data access times"), packs each
// outgoing region separately, and moves data with generic point-to-point
// transfers instead of the platform's tuned collectives.
//
// Pipelining across iterations uses per-transfer credits (double buffering
// by default), so a source cannot run unboundedly ahead of its consumers —
// the runtime's buffer management in action.
package sagert

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/isspl"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tunes a runtime execution.
type Options struct {
	// Iterations is the number of data sets to process (>= 1).
	Iterations int
	// ComputeIterations is how many initial iterations move and transform
	// real samples (for verification); the rest charge identical costs
	// without touching data. Default 1.
	ComputeIterations int
	// DispatchOverhead is the per-invocation cost of the function-table
	// dispatch and thread scheduling. Zero selects the default.
	DispatchOverhead sim.Duration
	// BufferSlots is the per-transfer pipelining credit (default 2: double
	// buffering).
	BufferSlots int
	// Sequential processes one data set at a time: every function thread
	// synchronises at an iteration barrier, so no pipelining occurs and
	// latency equals period. This is the like-for-like mode used when
	// comparing against the hand-coded benchmarks, which run a sequential
	// measurement loop (§3.3).
	Sequential bool
	// OptimizedBuffers enables the future-work optimisation the paper's
	// conclusion announces ("Work is currently underway to improve the
	// performance of the glue code generation component that will reach
	// levels of 90% of hand coded performance"): node-local transfers pass
	// by reference (one copy instead of pack+assemble) and the library
	// computes in place where legal, skipping the input-to-output copy.
	OptimizedBuffers bool
	// NodeSpeeds applies per-node CPU speed multipliers to the simulated
	// machine (heterogeneous architectures); missing entries default to 1.
	NodeSpeeds []float64
	// InputPeriod, when positive, paces the data source in real time:
	// data set i becomes available at virtual time i*InputPeriod, the
	// arrival pattern of a sensor front-end. Sources that cannot keep up
	// (backpressure from the pipeline) accumulate overrun, reported in
	// Result.MaxOverrun.
	InputPeriod sim.Duration
	// Trace, when non-nil, receives an event for every phase of every
	// probed function (or every function if ProbeAll).
	Trace func(Event)
	// Collector, when non-nil, receives structured trace spans for the
	// whole run: per-thread function phases (recv/compute/send), per-port
	// transfer activity with byte counts, buffer-credit stalls, MPI
	// collective spans, and the sim kernel's process/wait events. One
	// collector serves one run. See package repro/internal/trace.
	Collector *trace.Collector
	// ProbeAll instruments every function, not just those whose model
	// entry set the probe property.
	ProbeAll bool
	// Faults, when non-nil and non-empty, installs a deterministic fault
	// injector on the simulated machine and switches the runtime into its
	// resilient mode: striped transfers retry with backoff (at the MPI
	// layer), data receives and credit waits use timeouts, and — with
	// Resilience.Degraded — transfer schedules re-sequence around stalled
	// peers. The plan is validated against the table's node count.
	Faults *fault.Plan
	// Resilience tunes the resilient mode's timeouts and overcommit budget;
	// zero fields take fault.Resilience defaults. Ignored without Faults.
	Resilience fault.Resilience
	// Shards requests conservative sharded execution of the simulation
	// (sim.Kernel.SetShards): the machine's nodes are partitioned into up
	// to Shards shards that advance concurrently on separate goroutines,
	// synchronising at lookahead windows derived from the platform's link
	// latencies. Results, traces, fault verdicts and dispatch counts are
	// byte-identical to the sequential kernel's — sharding buys wall-clock
	// speed, never different answers. Values <= 1 select the classic
	// sequential kernel. The request is a ceiling, not a promise: runs that
	// cannot shard soundly (shared-fabric platforms, Sequential mode, the
	// legacy Trace probe, fewer nodes than shards) silently fall back to
	// fewer shards or one.
	Shards int
	// ShardWeights optionally biases the shard partitioner with per-node
	// load weights (higher = busier); the analytical twin's per-node busy
	// forecast (twin.ShardWeights) is the intended source. Missing or short
	// weights default to uniform. Ignored unless Shards > 1.
	ShardWeights []float64
	// Cancel, when non-nil, aborts the run as soon as the channel is closed:
	// the kernel polls it between dispatched events (sim.Kernel.SetCancel),
	// halts, and Run returns ErrCanceled instead of a result. The deferred
	// Kernel.Shutdown then releases every parked process goroutine, so a
	// canceled run leaks nothing and a fresh kernel afterwards produces
	// byte-identical results — the mid-run-abort contract the sage-serve
	// daemon's per-request deadlines rely on. Polling happens outside
	// virtual time, so arming cancellation changes no reported measurement,
	// not even Result.Dispatches.
	Cancel <-chan struct{}
	// CancelEvery is the dispatched-event interval between cancellation
	// polls. Zero selects sim.DefaultCancelEvery. Ignored without Cancel.
	CancelEvery int
}

// ErrCanceled is returned (wrapped) by Run when Options.Cancel aborted the
// run before completion. Test with errors.Is.
var ErrCanceled = errors.New("sagert: run canceled")

// DefaultDispatchOverhead is the table-dispatch cost used when Options does
// not override it (calibrated to a 1999-era RTOS task activation).
const DefaultDispatchOverhead = 25 * time.Microsecond

func (o *Options) withDefaults() Options {
	out := *o
	if out.Iterations < 1 {
		out.Iterations = 1
	}
	if out.ComputeIterations < 1 {
		out.ComputeIterations = 1
	}
	if out.ComputeIterations > out.Iterations {
		out.ComputeIterations = out.Iterations
	}
	if out.DispatchOverhead <= 0 {
		out.DispatchOverhead = DefaultDispatchOverhead
	}
	if out.BufferSlots < 1 {
		out.BufferSlots = 2
	}
	out.Resilience = out.Resilience.WithDefaults()
	return out
}

// Event is one traced phase of a function thread's iteration.
type Event struct {
	Fn     int
	FnName string
	Thread int
	Node   int
	Iter   int
	Phase  string // "recv", "compute", "send"
	Start  sim.Time
	End    sim.Time
}

// Result reports an execution.
type Result struct {
	// Latencies[i] is data-set i's source-start to sink-complete time
	// (§3.3: "latency corresponds to the time from when the first data
	// leaves the data source to the time the final result is output to the
	// data sink").
	Latencies []sim.Duration
	// Period is the steady-state time between completed data sets (§3.3:
	// "a period is defined to be the time between input data sets").
	Period sim.Duration
	// Output is the first sink function's final data set from the last
	// compute iteration, assembled across sink threads (nil if the app has
	// no sink_matrix).
	Output *isspl.Matrix
	// Outputs holds the same per sink function name (applications may fan
	// out to several sinks).
	Outputs map[string]*isspl.Matrix
	// Elapsed is the total virtual time of the run.
	Elapsed sim.Time
	// MaxOverrun is the largest delay between a data set's scheduled
	// real-time arrival (Options.InputPeriod) and the moment the source
	// could actually begin processing it; zero when unpaced or keeping up.
	MaxOverrun sim.Duration
	// Dispatches is the number of kernel events the run executed — the
	// denominator benchmark harnesses use for events/sec and allocs/event.
	Dispatches uint64
	// NodeStats reports per-node busy time.
	NodeStats []NodeStat
}

// NodeStat summarises one node's activity.
type NodeStat struct {
	Node        int
	ComputeBusy sim.Duration
	CopyBusy    sim.Duration
	CommBusy    sim.Duration
	Utilization float64
}

// AvgLatency returns the mean latency across iterations.
func (r *Result) AvgLatency() sim.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / sim.Duration(len(r.Latencies))
}

// tag packing: (buffer, srcThread, dstThread) -> user tag. Limits checked at
// runner construction.
const tagThreadLimit = 128

func dataTag(buf, srcThread, dstThread int) int {
	return ((buf*tagThreadLimit)+srcThread)*tagThreadLimit + dstThread
}

// credit tags live in a disjoint range above data tags.
func creditTag(buf, srcThread, dstThread int) int {
	return mpi.TagUserLimit/2 + dataTag(buf, srcThread, dstThread)
}

// Run executes the tables on a fresh simulated machine of the given
// platform.
func Run(tables *gluegen.Tables, pl machine.Platform, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if err := tables.Verify(); err != nil {
		return nil, fmt.Errorf("sagert: refusing to run unverified tables: %w", err)
	}
	if pl.Name != tables.Platform {
		return nil, fmt.Errorf("sagert: tables were generated for platform %q, running on %q (regenerate the glue code)", tables.Platform, pl.Name)
	}
	for _, f := range tables.Functions {
		if f.Threads > tagThreadLimit {
			return nil, fmt.Errorf("sagert: function %q has %d threads, limit %d", f.Name, f.Threads, tagThreadLimit)
		}
	}
	if len(tables.Buffers)*tagThreadLimit*tagThreadLimit >= mpi.TagUserLimit/2 {
		return nil, fmt.Errorf("sagert: %d buffers exceed the tag space", len(tables.Buffers))
	}
	if !o.Faults.Empty() {
		if err := o.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("sagert: invalid fault plan: %w", err)
		}
		if err := o.Faults.CheckNodes(tables.NumNodes); err != nil {
			return nil, fmt.Errorf("sagert: fault plan does not fit the machine: %w", err)
		}
	}

	k := sim.NewKernel()
	// Release any process goroutines left parked by a failed or stopped run
	// (runner errors call Stop mid-execution); without this every failed run
	// leaks one goroutine per function thread.
	defer k.Shutdown()
	// Sharding must be decided before anything binds to the kernel: node
	// resources, channels and processes attach to their owning shard at
	// creation time.
	if n, domainOf, lookahead := planShards(tables, pl, &o); n > 1 {
		k.SetShards(n, domainOf, lookahead)
	}
	mach := machine.New(k, pl, tables.NumNodes)
	mach.SetNodeSpeeds(o.NodeSpeeds)
	mach.SetTrace(o.Collector)
	mach.SetFaults(o.Faults.NewInjector())
	world := mpi.NewWorld(mach)
	r := &runner{
		tables: tables, opts: o, mach: mach, world: world,
		sourceStart: make([]sim.Time, o.Iterations),
		sinkDone:    make([]sim.Time, o.Iterations),
		localQueues: map[localKey]*sim.Chan[*funclib.Block]{},
	}
	r.buildPlan()
	r.buildLocalQueues(k)
	r.collectOutput()
	if o.Sequential {
		r.iterBarrier = sim.NewBarrier(k, "iteration", len(r.plans))
	}
	r.spawn(k)
	if o.Cancel != nil {
		k.SetCancel(o.Cancel, o.CancelEvery)
	}
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("sagert: execution failed: %w", err)
	}
	if k.Canceled() {
		return nil, fmt.Errorf("%w at virtual time %v", ErrCanceled, k.Now())
	}
	if r.err != nil {
		return nil, r.err
	}
	mach.TraceNodeTotals()
	return r.result(k), nil
}
