package sagert

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/platforms"
)

// This file is the runtime's strongest correctness test: it generates random
// pipeline applications (random stage kinds, striping choices, thread counts
// and mappings), pushes them through the full Alter-generate -> verify ->
// execute path, and compares the sink output against a sequential functional
// oracle that evaluates the same dataflow graph on whole matrices with no
// distribution at all. Any striping, transfer-scheduling or buffer-assembly
// bug shows up as a numerical mismatch.

// oracleEval runs the app functionally: every function executed once with
// replicated whole-matrix blocks, in topological order.
func oracleEval(t *testing.T, app *model.App, iterations int) *isspl.Matrix {
	t.Helper()
	order, err := app.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Values on arcs, keyed by the producing port.
	values := map[*model.Port]*funclib.Block{}
	var sinkOut *isspl.Matrix
	for iter := 0; iter < iterations; iter++ {
		for _, f := range order {
			impl, err := funclib.Lookup(f.Kind)
			if err != nil {
				t.Fatal(err)
			}
			ins := map[string]*funclib.Block{}
			for _, p := range f.Inputs {
				for _, arc := range app.Arcs {
					if arc.To == p {
						src := values[arc.From]
						cp := funclib.NewBlock(src.Region)
						copy(cp.Data, src.Data)
						ins[p.Name] = cp
					}
				}
			}
			outs := map[string]*funclib.Block{}
			for _, p := range f.Outputs {
				outs[p.Name] = funclib.NewBlock(model.Region{Rows: p.Type.Rows, Cols: p.Type.Cols})
			}
			ctx := &funclib.Context{
				FuncName: f.Name, Params: f.Params, Thread: 0, Threads: 1, Iteration: iter,
			}
			if f.Kind == "sink_matrix" && iter == 0 {
				ctx.Sink = func(port string, b *funclib.Block) {
					sinkOut = isspl.NewMatrix(b.Region.Rows, b.Region.Cols)
					copy(sinkOut.Data, b.Data)
				}
			}
			if err := impl.Compute(ctx, ins, outs); err != nil {
				t.Fatalf("oracle %s: %v", f.Name, err)
			}
			for _, p := range f.Outputs {
				values[p] = outs[p.Name]
			}
		}
	}
	return sinkOut
}

// stageChoice describes a randomly insertable pipeline stage.
type stageChoice struct {
	kind        string
	params      map[string]any
	inStripes   []model.StripeKind
	outStripes  []model.StripeKind
	needsSquare bool
}

var stageChoices = []stageChoice{
	{kind: "identity",
		inStripes:  []model.StripeKind{model.ByRows, model.ByCols, model.Replicated},
		outStripes: nil /* same as in */},
	{kind: "scale", params: map[string]any{"factor": 1.5},
		inStripes: []model.StripeKind{model.ByRows, model.ByCols, model.Replicated}},
	{kind: "mag2",
		inStripes: []model.StripeKind{model.ByRows, model.ByCols, model.Replicated}},
	{kind: "fft_rows",
		inStripes: []model.StripeKind{model.ByRows, model.Replicated}},
	{kind: "fft_cols",
		inStripes: []model.StripeKind{model.ByCols, model.Replicated}},
	{kind: "window_rows", params: map[string]any{"window": "hamming"},
		inStripes: []model.StripeKind{model.ByRows, model.Replicated}},
	{kind: "fir_rows", params: map[string]any{"ntaps": 5},
		inStripes: []model.StripeKind{model.ByRows, model.Replicated}},
	{kind: "transpose_block", needsSquare: true,
		inStripes:  []model.StripeKind{model.ByCols},
		outStripes: []model.StripeKind{model.ByRows}},
}

// randomPipeline builds a random valid source -> stages -> sink app.
func randomPipeline(t *testing.T, rng *rand.Rand, n int) *model.App {
	t.Helper()
	app := model.NewApp(fmt.Sprintf("fuzz_%d", rng.Int31()))
	mt, err := app.AddType(&model.DataType{Name: "m", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": int(rng.Int31n(1000))}})
	srcStripe := []model.StripeKind{model.ByRows, model.ByCols}[rng.Intn(2)]
	src.AddOutput("out", mt, srcStripe)
	prev := "src"
	prevPort := "out"

	nStages := 1 + rng.Intn(4)
	for s := 0; s < nStages; s++ {
		c := stageChoices[rng.Intn(len(stageChoices))]
		threads := 1 + rng.Intn(4)
		name := fmt.Sprintf("s%d_%s", s, c.kind)
		f := app.AddFunction(&model.Function{Name: name, Kind: c.kind, Threads: threads, Params: c.params})
		in := c.inStripes[rng.Intn(len(c.inStripes))]
		var out model.StripeKind
		switch {
		case c.outStripes != nil:
			out = c.outStripes[rng.Intn(len(c.outStripes))]
		case c.kind == "fft_rows" || c.kind == "window_rows" || c.kind == "fir_rows":
			out = in // row kinds keep orientation
		case c.kind == "fft_cols":
			out = in
		default:
			// identity/scale/mag2 require matching regions per thread, so
			// the output striping must equal the input striping.
			out = in
		}
		f.AddInput("in", mt, in)
		f.AddOutput("out", mt, out)
		if _, err := app.Connect(prev, prevPort, name, "in"); err != nil {
			t.Fatal(err)
		}
		prev, prevPort = name, "out"
	}

	sink := app.AddFunction(&model.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, []model.StripeKind{model.ByRows, model.ByCols}[rng.Intn(2)])
	if _, err := app.Connect(prev, prevPort, "sink", "in"); err != nil {
		t.Fatal(err)
	}
	app.AssignIDs()
	return app
}

// randomMapping places each thread on a random node.
func randomMapping(rng *rand.Rand, app *model.App, nodes int) *model.Mapping {
	m := model.NewMapping()
	for _, f := range app.Functions {
		ns := make([]int, f.Threads)
		for i := range ns {
			ns[i] = rng.Intn(nodes)
		}
		m.Set(f.Name, ns...)
	}
	return m
}

func TestRandomPipelinesMatchOracle(t *testing.T) {
	const trials = 40
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < trials; trial++ {
		n := []int{8, 16, 32}[rng.Intn(3)]
		app := randomPipeline(t, rng, n)
		if err := app.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid app: %v\n", trial, err)
		}
		if err := funclib.ValidateApp(app); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nodes := 1 + rng.Intn(8)
		mapping := randomMapping(rng, app, nodes)
		out, err := gluegen.Generate(gluegen.Input{
			App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes,
		})
		if err != nil {
			t.Fatalf("trial %d (%s): generate: %v", trial, app.Name, err)
		}
		opts := Options{Iterations: 1 + rng.Intn(3)}
		if rng.Intn(2) == 0 {
			opts.OptimizedBuffers = true
		}
		if rng.Intn(2) == 0 {
			opts.Sequential = true
		}
		res, err := Run(out.Tables, platforms.CSPI(), opts)
		if err != nil {
			t.Fatalf("trial %d (%s): run: %v", trial, app.Name, err)
		}
		want := oracleEval(t, app, 1)
		if want == nil || res.Output == nil {
			t.Fatalf("trial %d (%s): missing output (oracle %v, run %v)", trial, app.Name, want != nil, res.Output != nil)
		}
		if d := res.Output.MaxDiff(want); d > 1e-9 {
			t.Fatalf("trial %d (%s, %d nodes, opts %+v): output deviates from oracle by %g",
				trial, app.Name, nodes, opts, d)
		}
	}
}
