package sagert

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/handcoded"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/platforms"
)

// genTables generates verified tables for a benchmark app.
func genTables(t *testing.T, build func(n, threads int) (*model.App, error), n, threads, nodes int) *gluegen.Tables {
	t.Helper()
	app, err := build(n, threads)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := model.SpreadParallel(app, nodes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return out.Tables
}

// sourceMatrix reproduces the source_matrix generator output.
func sourceMatrix(n int, seed int64, iter int) *isspl.Matrix {
	m := isspl.NewMatrix(n, n)
	b := &funclib.Block{Region: model.Region{Rows: n, Cols: n}, Data: m.Data}
	funclib.FillSource(b, seed, iter)
	return m
}

func TestRunFFT2DProducesTransform(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		threads := threads
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			const n = 32
			tb := genTables(t, apps.FFT2D, n, threads, 4)
			res, err := Run(tb, platforms.CSPI(), Options{Iterations: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := sourceMatrix(n, 1, 0)
			if err := isspl.FFT2D(want.Data, n); err != nil {
				t.Fatal(err)
			}
			if res.Output == nil {
				t.Fatal("no output collected")
			}
			if d := res.Output.MaxDiff(want); d > 1e-6 {
				t.Fatalf("output deviates by %g", d)
			}
		})
	}
}

func TestRunCornerTurnProducesTranspose(t *testing.T) {
	const n = 32
	tb := genTables(t, apps.CornerTurn, n, 4, 4)
	res, err := Run(tb, platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := sourceMatrix(n, 1, 0).Transposed()
	if d := res.Output.MaxDiff(want); d != 0 {
		t.Fatalf("output deviates by %g", d)
	}
}

func TestRunSTAPPipeline(t *testing.T) {
	const n = 32
	tb := genTables(t, apps.STAP, n, 4, 4)
	res, err := Run(tb, platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: window rows, FFT rows, FFT cols, |.|^2.
	want := sourceMatrix(n, 7, 0)
	w, _ := isspl.Window(isspl.WindowHamming, n)
	for r := 0; r < n; r++ {
		isspl.VApplyWindow(want.Data[r*n:(r+1)*n], want.Data[r*n:(r+1)*n], w)
	}
	if err := isspl.FFTRows(want.Data, n, n); err != nil {
		t.Fatal(err)
	}
	isspl.TransposeSquare(want.Data, n)
	if err := isspl.FFTRows(want.Data, n, n); err != nil {
		t.Fatal(err)
	}
	isspl.TransposeSquare(want.Data, n)
	for i, v := range want.Data {
		re, im := real(v), imag(v)
		want.Data[i] = complex(re*re+im*im, 0)
	}
	if d := res.Output.MaxDiff(want); d > 1e-5 {
		t.Fatalf("STAP output deviates by %g", d)
	}
}

func TestOutputIdenticalAcrossThreadCounts(t *testing.T) {
	const n = 32
	ref, err := Run(genTables(t, apps.FFT2D, n, 1, 4), platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 3, 4} {
		res, err := Run(genTables(t, apps.FFT2D, n, threads, 4), platforms.CSPI(), Options{Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d := res.Output.MaxDiff(ref.Output); d > 1e-9 {
			t.Fatalf("threads=%d output differs by %g", threads, d)
		}
	}
}

func TestLatencyAndPeriod(t *testing.T) {
	tb := genTables(t, apps.FFT2D, 64, 4, 4)
	res, err := Run(tb, platforms.CSPI(), Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != 6 {
		t.Fatalf("latencies = %d", len(res.Latencies))
	}
	for i, l := range res.Latencies {
		if l <= 0 {
			t.Fatalf("iteration %d latency %v", i, l)
		}
	}
	// Pipelined dataflow: steady-state period must not exceed latency.
	if res.Period > res.AvgLatency() {
		t.Fatalf("period %v > avg latency %v (no pipelining?)", res.Period, res.AvgLatency())
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if len(res.NodeStats) != 4 {
		t.Fatalf("node stats = %d", len(res.NodeStats))
	}
	busy := false
	for _, ns := range res.NodeStats {
		if ns.ComputeBusy > 0 {
			busy = true
		}
	}
	if !busy {
		t.Fatal("no node reported compute time")
	}
}

func TestDeterministicTiming(t *testing.T) {
	tb := genTables(t, apps.CornerTurn, 64, 4, 4)
	a, err := Run(tb, platforms.CSPI(), Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tb, platforms.CSPI(), Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("nondeterministic: %v vs %v", a.Latencies, b.Latencies)
		}
	}
}

func TestChargeOnlyIterationsSameTiming(t *testing.T) {
	// Charge-only iterations must be timing-identical to computing ones:
	// run the same schedule with all iterations computing and with only the
	// first computing, and compare latencies elementwise.
	tb := genTables(t, apps.FFT2D, 64, 4, 4)
	full, err := Run(tb, platforms.CSPI(), Options{Iterations: 4, ComputeIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Run(tb, platforms.CSPI(), Options{Iterations: 4, ComputeIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Latencies {
		if full.Latencies[i] != lazy.Latencies[i] {
			t.Fatalf("iteration %d: compute %v vs charge-only %v", i, full.Latencies[i], lazy.Latencies[i])
		}
	}
}

func TestSageSlowerThanHandCodedButComparable(t *testing.T) {
	// The central claim of the paper, as a smoke check at small scale: the
	// generated code runs slower than hand-coded, but within a small
	// constant factor (the paper reports 75-90%).
	const n, nodes = 256, 4
	tb := genTables(t, apps.FFT2D, n, nodes, nodes)
	sage, err := Run(tb, platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := handcoded.FFT2D(handcoded.Config{Platform: platforms.CSPI(), Nodes: nodes, N: n, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(hand.AvgLatency()) / float64(sage.AvgLatency())
	if ratio >= 1.0 {
		t.Fatalf("SAGE (%v) outperformed hand-coded (%v): overhead model missing", sage.AvgLatency(), hand.AvgLatency())
	}
	if ratio < 0.5 {
		t.Fatalf("SAGE (%v) more than 2x slower than hand-coded (%v): ratio %.2f", sage.AvgLatency(), hand.AvgLatency(), ratio)
	}
	t.Logf("FFT2D n=%d nodes=%d: hand=%v sage=%v efficiency=%.1f%%", n, nodes, hand.AvgLatency(), sage.AvgLatency(), 100*ratio)
}

func TestOptimizedBuffersFasterAndCorrect(t *testing.T) {
	const n = 64
	tb := genTables(t, apps.CornerTurn, n, 4, 4)
	plain, err := Run(tb, platforms.CSPI(), Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(tb, platforms.CSPI(), Options{Iterations: 2, OptimizedBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.AvgLatency() >= plain.AvgLatency() {
		t.Fatalf("optimized (%v) not faster than plain (%v)", opt.AvgLatency(), plain.AvgLatency())
	}
	if d := opt.Output.MaxDiff(plain.Output); d != 0 {
		t.Fatalf("optimized output differs by %g", d)
	}
}

func TestTraceEvents(t *testing.T) {
	tb := genTables(t, apps.CornerTurn, 32, 2, 2)
	var events []Event
	_, err := Run(tb, platforms.CSPI(), Options{
		Iterations: 2, ProbeAll: true,
		Trace: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{}
	for _, e := range events {
		phases[e.Phase] = true
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if e.FnName == "" {
			t.Fatalf("unnamed event: %+v", e)
		}
	}
	for _, want := range []string{"recv", "compute", "send"} {
		if !phases[want] {
			t.Fatalf("missing phase %q in %v", want, phases)
		}
	}
	// Without ProbeAll and without probe properties, no events.
	var none []Event
	_, err = Run(tb, platforms.CSPI(), Options{Iterations: 1, Trace: func(e Event) { none = append(none, e) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("unprobed run emitted %d events", len(none))
	}
}

func TestProbePropertyEnablesTracing(t *testing.T) {
	app, err := apps.CornerTurn(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	app.Function("turn").SetProp("probe", true)
	mapping, _ := model.SpreadParallel(app, 2)
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if _, err := Run(out.Tables, platforms.CSPI(), Options{Iterations: 1, Trace: func(e Event) { events = append(events, e) }}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("probe property did not enable tracing")
	}
	for _, e := range events {
		if e.FnName != "turn" {
			t.Fatalf("unprobed function traced: %+v", e)
		}
	}
}

func TestPlatformMismatchRejected(t *testing.T) {
	tb := genTables(t, apps.CornerTurn, 32, 2, 2)
	_, err := Run(tb, platforms.Mercury(), Options{Iterations: 1})
	if err == nil || !strings.Contains(err.Error(), "regenerate") {
		t.Fatalf("err = %v", err)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	// A library function failing at runtime (bad window parameter slips
	// past static checks) must abort the run with a descriptive error, not
	// hang or panic.
	app := model.NewApp("failing")
	mt, _ := app.AddType(&model.DataType{Name: "m", Rows: 16, Cols: 16, Elem: model.ElemComplex})
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1})
	src.AddOutput("out", mt, model.ByRows)
	w := app.AddFunction(&model.Function{Name: "w", Kind: "window_rows", Threads: 2,
		Params: map[string]any{"window": "nonexistent"}})
	w.AddInput("in", mt, model.ByRows)
	w.AddOutput("out", mt, model.ByRows)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.ByRows)
	for _, c := range [][4]string{{"src", "out", "w", "in"}, {"w", "out", "snk", "in"}} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			t.Fatal(err)
		}
	}
	app.AssignIDs()
	mapping, _ := model.SpreadParallel(app, 2)
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(out.Tables, platforms.CSPI(), Options{Iterations: 2})
	if err == nil {
		t.Fatal("runtime error swallowed")
	}
	for _, want := range []string{"w", "iteration 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestCorruptTablesRejected(t *testing.T) {
	tb := genTables(t, apps.CornerTurn, 32, 2, 2)
	tb.Order = tb.Order[:1]
	if _, err := Run(tb, platforms.CSPI(), Options{Iterations: 1}); err == nil {
		t.Fatal("corrupt tables accepted")
	}
}

func TestBufferSlotsThrottlePipelining(t *testing.T) {
	// With 1 slot the source is fully synchronous with its consumer; with
	// more slots the pipeline overlaps and total elapsed time drops (or at
	// least does not increase).
	tb := genTables(t, apps.FFT2D, 64, 4, 4)
	one, err := Run(tb, platforms.CSPI(), Options{Iterations: 6, BufferSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(tb, platforms.CSPI(), Options{Iterations: 6, BufferSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.Elapsed > one.Elapsed {
		t.Fatalf("more buffer slots slowed the pipeline: %v vs %v", four.Elapsed, one.Elapsed)
	}
}

func TestFanOutToTwoSinks(t *testing.T) {
	// One producer feeding two branches with different processing and two
	// sinks; the runtime must collect both outputs.
	const n, nodes = 32, 4
	app := model.NewApp("fan")
	mt, _ := app.AddType(&model.DataType{Name: "m", Rows: n, Cols: n, Elem: model.ElemComplex})
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1, Params: map[string]any{"seed": 6}})
	src.AddOutput("out", mt, model.ByRows)
	left := app.AddFunction(&model.Function{Name: "left", Kind: "scale", Threads: 2, Params: map[string]any{"factor": 2.0}})
	left.AddInput("in", mt, model.ByRows)
	left.AddOutput("out", mt, model.ByRows)
	right := app.AddFunction(&model.Function{Name: "right", Kind: "mag2", Threads: 2})
	right.AddInput("in", mt, model.ByRows)
	right.AddOutput("out", mt, model.ByRows)
	sinkL := app.AddFunction(&model.Function{Name: "sinkL", Kind: "sink_matrix", Threads: 1})
	sinkL.AddInput("in", mt, model.ByRows)
	sinkR := app.AddFunction(&model.Function{Name: "sinkR", Kind: "sink_matrix", Threads: 1})
	sinkR.AddInput("in", mt, model.ByRows)
	for _, c := range [][4]string{
		{"src", "out", "left", "in"}, {"src", "out", "right", "in"},
		{"left", "out", "sinkL", "in"}, {"right", "out", "sinkR", "in"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			t.Fatal(err)
		}
	}
	app.AssignIDs()
	mapping, _ := model.SpreadParallel(app, nodes)
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(out.Tables, platforms.CSPI(), Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d sinks", len(res.Outputs))
	}
	in := sourceMatrix(n, 6, 0)
	l, r := res.Outputs["sinkL"], res.Outputs["sinkR"]
	if l == nil || r == nil {
		t.Fatal("missing sink outputs")
	}
	for i := 0; i < 5; i++ {
		if l.Data[i] != 2*in.Data[i] {
			t.Fatalf("left branch wrong at %d", i)
		}
		re, im := real(in.Data[i]), imag(in.Data[i])
		if real(r.Data[i])-(re*re+im*im) > 1e-12 {
			t.Fatalf("right branch wrong at %d", i)
		}
	}
	if res.Output != l {
		t.Fatal("Output should alias the first sink in table order")
	}
}

func TestShapeChangingPipeline(t *testing.T) {
	// A decimating stage narrows the data type mid-pipeline; the generator
	// and runtime must carry the differing port shapes through.
	const n, factor, nodes = 64, 4, 4
	app := model.NewApp("chan")
	frame, _ := app.AddType(&model.DataType{Name: "frame", Rows: n, Cols: n, Elem: model.ElemComplex})
	narrow, _ := app.AddType(&model.DataType{Name: "narrow", Rows: n, Cols: n / factor, Elem: model.ElemComplex})
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1, Params: map[string]any{"seed": 4}})
	src.AddOutput("out", frame, model.ByRows)
	dec := app.AddFunction(&model.Function{Name: "dec", Kind: "fir_decimate_rows", Threads: nodes,
		Params: map[string]any{"ntaps": 5, "factor": factor}})
	dec.AddInput("in", frame, model.ByRows)
	dec.AddOutput("out", narrow, model.ByRows)
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", narrow, model.ByRows)
	for _, c := range [][4]string{{"src", "out", "dec", "in"}, {"dec", "out", "snk", "in"}} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			t.Fatal(err)
		}
	}
	app.AssignIDs()
	mapping, _ := model.SpreadParallel(app, nodes)
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(out.Tables, platforms.CSPI(), Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Rows != n || res.Output.Cols != n/factor {
		t.Fatalf("output shape %dx%d", res.Output.Rows, res.Output.Cols)
	}
	// Verify one row against the library directly.
	in := sourceMatrix(n, 4, 0)
	taps := funclib.LowpassTaps(5)
	want := make([]complex128, n/factor)
	isspl.FIRDecimate(want, in.Row(3), taps, factor)
	if d := isspl.MaxDiff(res.Output.Row(3), want); d > 1e-12 {
		t.Fatalf("decimated row deviates by %g", d)
	}
}

func TestNodeSpeedsAffectTiming(t *testing.T) {
	tb := genTables(t, apps.FFT2D, 128, 4, 4)
	base, err := Run(tb, platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(tb, platforms.CSPI(), Options{Iterations: 1, NodeSpeeds: []float64{2, 2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	slowOne, err := Run(tb, platforms.CSPI(), Options{Iterations: 1, NodeSpeeds: []float64{0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if fast.AvgLatency() >= base.AvgLatency() {
		t.Fatalf("2x nodes (%v) not faster than baseline (%v)", fast.AvgLatency(), base.AvgLatency())
	}
	if slowOne.AvgLatency() <= base.AvgLatency() {
		t.Fatalf("one slow node (%v) not slower than baseline (%v)", slowOne.AvgLatency(), base.AvgLatency())
	}
	// Numerics unaffected by speed.
	if d := fast.Output.MaxDiff(base.Output); d != 0 {
		t.Fatalf("speeds changed results by %g", d)
	}
}

func TestInputPeriodPacingAndOverrun(t *testing.T) {
	tb := genTables(t, apps.CornerTurn, 64, 4, 4)
	free, err := Run(tb, platforms.CSPI(), Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if free.MaxOverrun != 0 {
		t.Fatalf("unpaced run reports overrun %v", free.MaxOverrun)
	}
	// Slack pacing: the period becomes the input period, no overrun.
	slack, err := Run(tb, platforms.CSPI(), Options{Iterations: 6, InputPeriod: 2 * free.Period})
	if err != nil {
		t.Fatal(err)
	}
	if slack.MaxOverrun != 0 {
		t.Fatalf("slack pacing overran by %v", slack.MaxOverrun)
	}
	if slack.Period < 2*free.Period-free.Period/10 {
		t.Fatalf("paced period %v, want ~%v", slack.Period, 2*free.Period)
	}
	// Overdriven pacing: the source cannot keep the schedule.
	hot, err := Run(tb, platforms.CSPI(), Options{Iterations: 8, InputPeriod: free.Period / 3})
	if err != nil {
		t.Fatal(err)
	}
	if hot.MaxOverrun == 0 {
		t.Fatal("overdriven pacing reported no overrun")
	}
}

func TestMultipleThreadsShareNodeCPU(t *testing.T) {
	// Mapping all 4 worker threads onto one node must be slower than
	// spreading them over 4 nodes: the CPU resource serialises them.
	app, err := apps.FFT2D(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	packed := model.NewMapping()
	for _, f := range app.Functions {
		nodes := make([]int, f.Threads)
		packed.Set(f.Name, nodes...) // all zeros
	}
	outPacked, err := gluegen.Generate(gluegen.Input{App: app, Mapping: packed, Platform: platforms.CSPI(), NumNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	spread, _ := model.SpreadParallel(app, 4)
	outSpread, err := gluegen.Generate(gluegen.Input{App: app, Mapping: spread, Platform: platforms.CSPI(), NumNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(outPacked.Tables, platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(outSpread.Tables, platforms.CSPI(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rp.AvgLatency() <= rs.AvgLatency() {
		t.Fatalf("packed mapping (%v) not slower than spread (%v)", rp.AvgLatency(), rs.AvgLatency())
	}
	// Results identical regardless of mapping.
	if d := rp.Output.MaxDiff(rs.Output); d != 0 {
		t.Fatalf("mapping changed results by %g", d)
	}
}
