package sagert

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/platforms"
)

// settleGoroutines polls until the live goroutine count drops to at most
// want, returning the last observation (teardown goroutines need a few
// scheduler rounds to exit).
func settleGoroutines(want int) int {
	var n int
	for i := 0; i < 200; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		time.Sleep(time.Millisecond)
	}
	return n
}

// TestCancelClosedChannelAborts: a cancel channel that is already closed
// aborts the run at the first poll, with processes spawned and data in
// flight — the tightest possible in-flight abort. The deferred
// Kernel.Shutdown must release every parked process goroutine, run after
// run.
func TestCancelClosedChannelAborts(t *testing.T) {
	base := runtime.NumGoroutine()
	tb := genTables(t, apps.FFT2D, 32, 2, 4)
	cancel := make(chan struct{})
	close(cancel)
	for i := 0; i < 50; i++ {
		// CancelEvery 1 polls after every event: the abort lands mid-run at
		// the earliest opportunity, at a different point than the default
		// interval would pick.
		res, err := Run(tb, platforms.CSPI(), Options{Iterations: 10, Cancel: cancel, CancelEvery: 1})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if res != nil {
			t.Fatal("canceled run returned a result")
		}
	}
	if n := settleGoroutines(base); n > base {
		t.Fatalf("goroutines grew from %d to %d across canceled runs", base, n)
	}
}

// TestCancelMidRunNoLeakAndFreshKernelIdentical is the daemon's cancellation
// path end to end: abort an in-flight run mid-simulation via a wall-clock
// deadline, verify no goroutine leaks, then verify a fresh kernel running
// the same tables produces results identical to a run that was never
// disturbed.
func TestCancelMidRunNoLeakAndFreshKernelIdentical(t *testing.T) {
	base := runtime.NumGoroutine()
	tb := genTables(t, apps.FFT2D, 64, 2, 4)

	// Reference: an undisturbed run with an armed (never fired) cancel
	// channel — the exact configuration the daemon uses for every request.
	neverFired := make(chan struct{})
	opts := Options{Iterations: 20, Cancel: neverFired}
	before, err := Run(tb, platforms.CSPI(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Abort a much longer run partway through. The cancel closes after a
	// short wall delay; the watchdog observes it at its next virtual poll
	// and stops the kernel mid-simulation.
	cancel := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(cancel)
	}()
	res, err := Run(tb, platforms.CSPI(), Options{Iterations: 200000, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("long run: err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a result")
	}

	if n := settleGoroutines(base); n > base {
		t.Fatalf("goroutines grew from %d to %d after mid-run abort", base, n)
	}

	// A fresh kernel on the same worker (this goroutine) is undisturbed by
	// the aborted run: every field, including the virtual-time measurements,
	// the output samples and the dispatch count, must match exactly.
	after, err := Run(tb, platforms.CSPI(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("fresh kernel after abort diverged:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

// TestCancelArmedDoesNotPerturbMeasurements: arming cancellation must not
// change any simulated result — the poll lives between events, outside
// virtual time, so even Dispatches is identical to an unarmed run.
func TestCancelArmedDoesNotPerturbMeasurements(t *testing.T) {
	tb := genTables(t, apps.CornerTurn, 32, 2, 4)
	plain, err := Run(tb, platforms.CSPI(), Options{Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := Run(tb, platforms.CSPI(), Options{Iterations: 8, Cancel: make(chan struct{}), CancelEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, armed) {
		t.Fatal("armed-but-unfired cancellation changed simulated measurements")
	}
}
