package sagert

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/isspl"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// xferRef is one planned transfer seen from one side.
type xferRef struct {
	buf      *gluegen.BufferEntry
	x        gluegen.Transfer
	peerNode int
}

// portPlan is a port's per-thread execution plan.
type portPlan struct {
	entry  *gluegen.PortEntry
	region model.Region
	// xfers are incoming (for inputs) or outgoing (for outputs) transfers
	// touching this thread, in deterministic table order.
	xfers []xferRef
}

// threadPlan is the static plan of one function thread.
type threadPlan struct {
	fn       *gluegen.FuncEntry
	thread   int
	node     int
	impl     *funclib.Impl
	ins      []*portPlan
	outs     []*portPlan
	isSource bool
	isSink   bool
	probe    bool
}

// localKey routes optimised node-local handoffs.
type localKey struct {
	buf, srcThread, dstThread int
}

type runner struct {
	tables *gluegen.Tables
	opts   Options
	mach   *machine.Machine
	world  *mpi.World

	plans []*threadPlan

	sourceStart []sim.Time
	sinkDone    []sim.Time

	output      *isspl.Matrix
	outputs     map[string]*isspl.Matrix // per sink-function name
	localQueues map[localKey]*sim.Chan[*funclib.Block]
	iterBarrier *sim.Barrier // non-nil in Sequential mode
	maxOverrun  sim.Duration

	// On a sharded kernel function threads execute concurrently (one
	// goroutine per shard), so the cross-thread endpoint bookkeeping —
	// iteration timestamps, overrun, the first failure — is mutex-guarded.
	// The locks are uncontended-cheap and touched at most a few times per
	// iteration, far off the per-event fast path.
	noteMu sync.Mutex // guards sourceStart, sinkDone, maxOverrun
	errMu  sync.Mutex // guards err
	sinkMu sync.Mutex // guards assembled sink matrices (replicated sinks overlap)
	failed atomic.Bool

	err error
}

// buildPlan expands the tables into per-thread plans.
func (r *runner) buildPlan() {
	t := r.tables
	for fi := range t.Functions {
		fe := &t.Functions[fi]
		impl, err := funclib.Lookup(fe.Kind)
		if err != nil {
			panic(err) // tables verified
		}
		for th := 0; th < fe.Threads; th++ {
			tp := &threadPlan{
				fn: fe, thread: th, node: fe.Nodes[th], impl: impl,
				isSource: len(fe.Ins) == 0, isSink: len(fe.Outs) == 0,
				probe: fe.Probe || r.opts.ProbeAll,
			}
			for pi := range fe.Ins {
				tp.ins = append(tp.ins, r.portPlan(&fe.Ins[pi], fe, th, true))
			}
			for pi := range fe.Outs {
				tp.outs = append(tp.outs, r.portPlan(&fe.Outs[pi], fe, th, false))
			}
			r.plans = append(r.plans, tp)
		}
	}
}

func (r *runner) portPlan(pe *gluegen.PortEntry, fe *gluegen.FuncEntry, thread int, isInput bool) *portPlan {
	region, err := model.Partition(pe.Striping, pe.Rows, pe.Cols, fe.Threads, thread)
	if err != nil {
		panic(err) // tables verified
	}
	pp := &portPlan{entry: pe, region: region}
	for _, bufID := range pe.Buffers {
		buf := &r.tables.Buffers[bufID]
		for _, x := range buf.Transfers {
			if isInput {
				if buf.DstFn != fe.ID || buf.DstPort != pe.Name || x.DstThread != thread {
					continue
				}
				src, _ := r.tables.Function(buf.SrcFn)
				pp.xfers = append(pp.xfers, xferRef{buf: buf, x: x, peerNode: src.Nodes[x.SrcThread]})
			} else {
				if buf.SrcFn != fe.ID || buf.SrcPort != pe.Name || x.SrcThread != thread {
					continue
				}
				dst, _ := r.tables.Function(buf.DstFn)
				pp.xfers = append(pp.xfers, xferRef{buf: buf, x: x, peerNode: dst.Nodes[x.DstThread]})
			}
		}
	}
	return pp
}

// collectOutput prepares the sink assembly target from the sink function's
// input port shape.
func (r *runner) collectOutput() {
	r.outputs = map[string]*isspl.Matrix{}
	for fi := range r.tables.Functions {
		fe := &r.tables.Functions[fi]
		if fe.Kind == "sink_matrix" && len(fe.Ins) == 1 {
			m := isspl.NewMatrix(fe.Ins[0].Rows, fe.Ins[0].Cols)
			r.outputs[fe.Name] = m
			if r.output == nil {
				r.output = m // first sink, in function-table order
			}
		}
	}
}

// localOptimised reports whether a transfer can use the optimised
// node-local handoff path.
func (r *runner) localOptimised(srcNode, dstNode int) bool {
	return r.opts.OptimizedBuffers && srcNode == dstNode
}

// spawn launches every function thread on its mapped node's shard.
func (r *runner) spawn(k *sim.Kernel) {
	for _, tp := range r.plans {
		tp := tp
		k.SpawnOn(tp.node, fmt.Sprintf("%s.%s[%d]", r.tables.AppName, tp.fn.Name, tp.thread), func(p *sim.Proc) {
			rank := r.world.Attach(tp.node, p)
			r.threadMain(tp, rank)
		})
	}
}

func (r *runner) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
		r.failed.Store(true)
		r.mach.K.Stop()
	}
	r.errMu.Unlock()
}

// buildLocalQueues pre-creates every optimised node-local handoff channel,
// before the kernel runs. Creating them lazily mid-run would mutate the
// shared map from concurrent shard goroutines; eager creation is free (a
// channel is inert until used) and changes nothing observable.
func (r *runner) buildLocalQueues(k *sim.Kernel) {
	if !r.opts.OptimizedBuffers {
		return
	}
	for bi := range r.tables.Buffers {
		buf := &r.tables.Buffers[bi]
		src, _ := r.tables.Function(buf.SrcFn)
		dst, _ := r.tables.Function(buf.DstFn)
		for _, x := range buf.Transfers {
			if src.Nodes[x.SrcThread] != dst.Nodes[x.DstThread] {
				continue
			}
			key := localKey{buf.ID, x.SrcThread, x.DstThread}
			if _, ok := r.localQueues[key]; !ok {
				r.localQueues[key] = sim.NewChanOn[*funclib.Block](k, src.Nodes[x.SrcThread],
					fmt.Sprintf("local b%d %d->%d", key.buf, key.srcThread, key.dstThread))
			}
		}
	}
}

func (r *runner) localQueue(key localKey) *sim.Chan[*funclib.Block] {
	q := r.localQueues[key]
	if q == nil {
		panic(fmt.Sprintf("sagert: no local queue for b%d %d->%d", key.buf, key.srcThread, key.dstThread))
	}
	return q
}

// threadMain is the per-thread iteration loop: receive/assemble, dispatch,
// compute, pack/send — with credit-based flow control.
func (r *runner) threadMain(tp *threadPlan, rank *mpi.Rank) {
	node := r.mach.Node(tp.node)
	// Structured tracing: the collector is nil-safe, but the track name and
	// per-transfer span labels are only built when tracing is on.
	tr := r.mach.Trace()
	var track string
	if tr.Enabled() {
		track = trace.ProcTrack(rank.Proc().Name(), rank.Proc().PID())
	}
	credits := map[localKey]int{}
	for _, pp := range tp.outs {
		for _, xr := range pp.xfers {
			credits[localKey{xr.buf.ID, xr.x.SrcThread, xr.x.DstThread}] = r.opts.BufferSlots
		}
	}
	inj := r.mach.Faults()
	// overcommit tracks emergency credit borrowing per transfer (resilient
	// mode only): a bounded per-run budget, so the pipeline depth can never
	// exceed BufferSlots + MaxCreditOvercommit.
	overcommit := map[localKey]int{}
	// Per-iteration working state, hoisted out of the loop and cleared each
	// pass so the steady-state iteration allocates no maps or contexts.
	inBlocks := make(map[string]*funclib.Block, len(tp.ins))
	outBlocks := make(map[string]*funclib.Block, len(tp.outs))
	ctx := &funclib.Context{
		FuncName: tp.fn.Name, Params: tp.fn.Params,
		Thread: tp.thread, Threads: tp.fn.Threads,
	}
	for iter := 0; iter < r.opts.Iterations && !r.failed.Load(); iter++ {
		compute := iter < r.opts.ComputeIterations

		if tp.isSource {
			if r.opts.InputPeriod > 0 {
				// Real-time pacing: data set iter arrives on schedule; if
				// the pipeline's backpressure held us past the arrival,
				// record the overrun.
				scheduled := sim.Time(0).Add(sim.Duration(iter) * r.opts.InputPeriod)
				if rank.Proc().Now() < scheduled {
					rank.Proc().SleepUntil(scheduled)
				} else {
					r.noteOverrun(rank.Proc().Now().Sub(scheduled))
				}
			}
			r.noteSourceStart(iter, rank.Proc().Now())
		}

		// --- receive phase: assemble input logical buffers -----------------
		recvStart := rank.Proc().Now()
		clear(inBlocks)
		for _, pp := range tp.ins {
			blk := funclib.NewBlock(pp.region)
			if !compute {
				blk.Data = nil // charge-only iterations carry no samples
			}
			for _, xr := range r.orderXfers(pp.xfers, rank.Proc().Now()) {
				key := localKey{xr.buf.ID, xr.x.SrcThread, xr.x.DstThread}
				xferStart := rank.Proc().Now()
				if r.localOptimised(xr.peerNode, tp.node) {
					// Optimised local handoff: single copy, no messaging
					// stack.
					got := r.localQueue(key).Recv(rank.Proc())
					node.Memcpy(rank.Proc(), xr.x.Bytes)
					if compute {
						copyRegion(blk, got, xr.x.Region)
					}
				} else {
					payload := r.recvData(rank, tp, track, xr)
					// Assemble into the function's private logical buffer:
					// the extra data access §3.4 attributes overhead to. A
					// region that lands contiguously in the buffer (full
					// buffer width) is received in place, zero-copy; only
					// strided regions (corner-turn tiles, column stripes)
					// pay the copy.
					if !contiguousIn(xr.x.Region, blk.Region) {
						node.Memcpy(rank.Proc(), xr.x.Bytes)
					}
					if compute {
						src := &funclib.Block{Region: xr.x.Region, Data: payload.Complex()}
						copyRegion(blk, src, xr.x.Region)
					}
				}
				if tr.Enabled() {
					tr.Xfer(trace.LayerSage, tp.node, track,
						fmt.Sprintf("recv b%d t%d", xr.buf.ID, xr.x.SrcThread),
						xr.x.Bytes, iter, xferStart, rank.Proc().Now())
				}
				// Return a pipelining credit to the producer.
				rank.Send(xr.peerNode, creditTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread), mpi.Empty())
			}
			inBlocks[pp.entry.Name] = blk
		}
		if len(tp.ins) > 0 {
			r.trace(tp, iter, "recv", recvStart, rank.Proc().Now())
			tr.Phase(trace.LayerSage, tp.node, track, "recv", iter, recvStart, rank.Proc().Now())
		}

		// --- dispatch + compute --------------------------------------------
		compStart := rank.Proc().Now()
		node.ComputeTime(rank.Proc(), r.opts.DispatchOverhead)

		clear(outBlocks)
		for _, pp := range tp.outs {
			blk := funclib.NewBlock(pp.region)
			if !compute {
				blk.Data = nil
			}
			outBlocks[pp.entry.Name] = blk
		}
		ctx.Iteration = iter
		ctx.Sink = nil
		if tp.isSink && compute && iter == r.opts.ComputeIterations-1 {
			if target := r.outputs[tp.fn.Name]; target != nil {
				ctx.Sink = func(port string, b *funclib.Block) { r.storeSink(target, b) }
			}
		}
		cost := tp.impl.Cost(ctx, inBlocks, outBlocks)
		copyBytes := cost.CopyBytes
		if r.opts.OptimizedBuffers && !tp.isSource && !tp.isSink {
			// In-place computation where legal: the input-to-output copy
			// disappears.
			inBytes := 0
			for _, pp := range tp.ins {
				inBytes += pp.region.Elems() * pp.entry.ElemBytes
			}
			copyBytes -= inBytes
			if copyBytes < 0 {
				copyBytes = 0
			}
		}
		node.ComputeFlops(rank.Proc(), cost.Flops)
		node.Memcpy(rank.Proc(), copyBytes)
		if compute {
			if err := tp.impl.Compute(ctx, inBlocks, outBlocks); err != nil {
				r.fail(fmt.Errorf("sagert: %s thread %d iteration %d: %w", tp.fn.Name, tp.thread, iter, err))
				return
			}
		}
		r.trace(tp, iter, "compute", compStart, rank.Proc().Now())
		tr.Phase(trace.LayerSage, tp.node, track, "compute", iter, compStart, rank.Proc().Now())

		// --- send phase ------------------------------------------------------
		sendStart := rank.Proc().Now()
		for _, pp := range tp.outs {
			blk := outBlocks[pp.entry.Name]
			for _, xr := range r.orderXfers(pp.xfers, rank.Proc().Now()) {
				key := localKey{xr.buf.ID, xr.x.SrcThread, xr.x.DstThread}
				if credits[key] == 0 {
					creditStart := rank.Proc().Now()
					if inj.Enabled() {
						r.awaitCredit(rank, tp, track, xr, overcommit)
					} else {
						rank.Recv(xr.peerNode, creditTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread))
					}
					if tr.Enabled() && rank.Proc().Now() > creditStart {
						tr.Phase(trace.LayerSage, tp.node, track,
							fmt.Sprintf("credit b%d", xr.buf.ID),
							iter, creditStart, rank.Proc().Now())
					}
				} else {
					credits[key]--
				}
				xferStart := rank.Proc().Now()
				if r.localOptimised(tp.node, xr.peerNode) {
					var pass *funclib.Block
					if compute {
						pass = extractRegion(blk, xr.x.Region)
					} else {
						pass = &funclib.Block{Region: xr.x.Region}
					}
					r.localQueue(key).Send(pass)
					continue
				}
				// Pack the region out of the logical buffer; a region that
				// is contiguous in the buffer is sent in place, zero-copy.
				if !contiguousIn(xr.x.Region, blk.Region) {
					node.Memcpy(rank.Proc(), xr.x.Bytes)
				}
				var payload mpi.Payload
				if compute {
					payload = mpi.ComplexPayload(extractRegion(blk, xr.x.Region).Data)
				} else {
					payload = mpi.Payload{Bytes: xr.x.Bytes}
				}
				rank.Send(xr.peerNode, dataTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread), payload)
				if tr.Enabled() {
					tr.Xfer(trace.LayerSage, tp.node, track,
						fmt.Sprintf("send b%d t%d", xr.buf.ID, xr.x.DstThread),
						xr.x.Bytes, iter, xferStart, rank.Proc().Now())
				}
			}
		}
		if len(tp.outs) > 0 {
			r.trace(tp, iter, "send", sendStart, rank.Proc().Now())
			tr.Phase(trace.LayerSage, tp.node, track, "send", iter, sendStart, rank.Proc().Now())
		}

		if tp.isSink {
			r.noteSinkDone(iter, rank.Proc().Now())
		}
		if r.iterBarrier != nil {
			r.iterBarrier.Wait(rank.Proc())
		}
	}
}

// recvData receives one striped region. Without a fault injector it is a
// plain blocking Recv. In resilient mode it re-arms a timed receive until the
// data arrives: the message is guaranteed to come eventually (the MPI retry
// protocol forces delivery after its attempt budget), so the loop terminates;
// each expiry is recorded as a recv-timeout fault span on the thread's track.
func (r *runner) recvData(rank *mpi.Rank, tp *threadPlan, track string, xr xferRef) mpi.Payload {
	tag := dataTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread)
	if !r.mach.Faults().Enabled() {
		return rank.Recv(xr.peerNode, tag)
	}
	tr := r.mach.Trace()
	for {
		start := rank.Proc().Now()
		payload, ok := rank.RecvTimeout(xr.peerNode, tag, r.opts.Resilience.RecvTimeout)
		if ok {
			return payload
		}
		tr.FaultSpanOn(tp.node, track,
			fmt.Sprintf("recv-timeout b%d t%d", xr.buf.ID, xr.x.SrcThread),
			start, rank.Proc().Now())
	}
}

// awaitCredit blocks until a pipelining credit for xr arrives, in resilient
// mode. Each timed-out wait is recorded; while the per-transfer overcommit
// budget lasts, a timeout is resolved by borrowing an emergency slot and
// proceeding without the credit — the credit stays in flight and satisfies a
// later wait instantly, so the pipeline depth overshoot is bounded by the
// budget and drains by itself.
func (r *runner) awaitCredit(rank *mpi.Rank, tp *threadPlan, track string, xr xferRef, overcommit map[localKey]int) {
	ctag := creditTag(xr.buf.ID, xr.x.SrcThread, xr.x.DstThread)
	key := localKey{xr.buf.ID, xr.x.SrcThread, xr.x.DstThread}
	res := r.opts.Resilience
	tr := r.mach.Trace()
	for {
		start := rank.Proc().Now()
		if _, ok := rank.RecvTimeout(xr.peerNode, ctag, res.CreditTimeout); ok {
			return
		}
		tr.FaultSpanOn(tp.node, track,
			fmt.Sprintf("credit-timeout b%d", xr.buf.ID), start, rank.Proc().Now())
		if overcommit[key] < res.MaxCreditOvercommit {
			overcommit[key]++
			tr.FaultPoint(tp.node,
				fmt.Sprintf("overcommit b%d %d->%d", xr.buf.ID, xr.x.SrcThread, xr.x.DstThread),
				rank.Proc().Now())
			return
		}
	}
}

// orderXfers returns a port's transfer schedule, re-sequenced in degraded
// mode: transfers whose peer node is currently inside a stall window move —
// stably — to the back, so healthy peers are serviced first and the stalled
// peer's transfer is attempted as late as possible (by which time it may have
// restarted). Without Resilience.Degraded (or without faults) the table
// order is returned untouched.
func (r *runner) orderXfers(xfers []xferRef, now sim.Time) []xferRef {
	inj := r.mach.Faults()
	if !r.opts.Resilience.Degraded || !inj.Enabled() {
		return xfers
	}
	stalled := 0
	for i := range xfers {
		if inj.NodeStalled(xfers[i].peerNode, now) {
			stalled++
		}
	}
	if stalled == 0 || stalled == len(xfers) {
		return xfers
	}
	out := make([]xferRef, 0, len(xfers))
	tail := make([]xferRef, 0, stalled)
	for _, xr := range xfers {
		if inj.NodeStalled(xr.peerNode, now) {
			tail = append(tail, xr)
		} else {
			out = append(out, xr)
		}
	}
	return append(out, tail...)
}

func (r *runner) noteSourceStart(iter int, t sim.Time) {
	r.noteMu.Lock()
	if r.sourceStart[iter] == 0 || t < r.sourceStart[iter] {
		r.sourceStart[iter] = t
	}
	r.noteMu.Unlock()
}

func (r *runner) noteSinkDone(iter int, t sim.Time) {
	r.noteMu.Lock()
	if t > r.sinkDone[iter] {
		r.sinkDone[iter] = t
	}
	r.noteMu.Unlock()
}

func (r *runner) noteOverrun(over sim.Duration) {
	r.noteMu.Lock()
	if over > r.maxOverrun {
		r.maxOverrun = over
	}
	r.noteMu.Unlock()
}

func (r *runner) trace(tp *threadPlan, iter int, phase string, start, end sim.Time) {
	if r.opts.Trace == nil || !tp.probe {
		return
	}
	r.opts.Trace(Event{
		Fn: tp.fn.ID, FnName: tp.fn.Name, Thread: tp.thread, Node: tp.node,
		Iter: iter, Phase: phase, Start: start, End: end,
	})
}

// storeSink writes a sink thread's block into the assembled output matrix.
func (r *runner) storeSink(target *isspl.Matrix, b *funclib.Block) {
	if b.Data == nil {
		return
	}
	// Replicated sink threads cover overlapping regions with identical
	// data; under the sharded kernel they can run concurrently, so the
	// assembly copy must be serialized. Non-overlapping writes pay an
	// uncontended lock a few times per iteration — off the hot path.
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	for i := 0; i < b.Region.Rows; i++ {
		row := b.Region.R0 + i
		copy(target.Data[row*target.Cols+b.Region.C0:], b.Data[i*b.Region.Cols:(i+1)*b.Region.Cols])
	}
}

// contiguousIn reports whether region reg occupies a contiguous byte range
// of a block covering blockReg: it must span the block's full width. Such
// regions can be sent from or received into the logical buffer without a
// marshalling copy.
func contiguousIn(reg, blockReg model.Region) bool {
	return reg.C0 == blockReg.C0 && reg.Cols == blockReg.Cols
}

// copyRegion copies region reg from src into dst; both blocks must contain
// reg.
func copyRegion(dst, src *funclib.Block, reg model.Region) {
	for i := 0; i < reg.Rows; i++ {
		row := reg.R0 + i
		dstOff := (row-dst.Region.R0)*dst.Region.Cols + (reg.C0 - dst.Region.C0)
		srcOff := (row-src.Region.R0)*src.Region.Cols + (reg.C0 - src.Region.C0)
		copy(dst.Data[dstOff:dstOff+reg.Cols], src.Data[srcOff:srcOff+reg.Cols])
	}
}

// extractRegion returns a dense copy of region reg from blk.
func extractRegion(blk *funclib.Block, reg model.Region) *funclib.Block {
	out := funclib.NewBlock(reg)
	copyRegion(out, blk, reg)
	return out
}

// result assembles the Result after the kernel drains.
func (r *runner) result(k *sim.Kernel) *Result {
	res := &Result{
		Output: r.output, Outputs: r.outputs, Elapsed: k.Now(),
		MaxOverrun: r.maxOverrun, Dispatches: k.Dispatched(),
	}
	for i := 0; i < r.opts.Iterations; i++ {
		res.Latencies = append(res.Latencies, r.sinkDone[i].Sub(r.sourceStart[i]))
	}
	if r.opts.Iterations > 1 {
		res.Period = r.sinkDone[r.opts.Iterations-1].Sub(r.sinkDone[0]) / sim.Duration(r.opts.Iterations-1)
	} else {
		res.Period = res.Latencies[0]
	}
	for _, nd := range r.mach.Nodes() {
		res.NodeStats = append(res.NodeStats, NodeStat{
			Node: nd.ID, ComputeBusy: nd.ComputeBusy, CopyBusy: nd.CopyBusy,
			CommBusy: nd.CommBusy, Utilization: nd.Utilization(k.Now()),
		})
	}
	return res
}
