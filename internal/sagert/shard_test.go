package sagert

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/trace"
)

// genTablesMercury generates verified tables for the crossbar platform — the
// preset without a shared fabric, which is what makes a run shardable.
func genTablesMercury(t *testing.T, build func(n, threads int) (*model.App, error), n, threads, nodes int) *gluegen.Tables {
	t.Helper()
	app, err := build(n, threads)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := model.SpreadParallel(app, nodes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: platforms.Mercury(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return out.Tables
}

// chromeBytes serialises a collector to Chrome trace JSON — the bytes a user
// would actually write to disk, and therefore the strictest practical
// definition of "the trace is identical".
func chromeBytes(t *testing.T, c *trace.Collector) []byte {
	t.Helper()
	tr := trace.NewTrace()
	tr.Add(c)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertSameResult checks every observable field of a Result bitwise.
func assertSameResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if got.Elapsed != ref.Elapsed {
		t.Errorf("%s: elapsed %v != %v", label, got.Elapsed, ref.Elapsed)
	}
	if got.Dispatches != ref.Dispatches {
		t.Errorf("%s: dispatches %d != %d", label, got.Dispatches, ref.Dispatches)
	}
	if got.Period != ref.Period {
		t.Errorf("%s: period %v != %v", label, got.Period, ref.Period)
	}
	if got.MaxOverrun != ref.MaxOverrun {
		t.Errorf("%s: max overrun %v != %v", label, got.MaxOverrun, ref.MaxOverrun)
	}
	if !reflect.DeepEqual(got.Latencies, ref.Latencies) {
		t.Errorf("%s: latencies diverge:\n got %v\nwant %v", label, got.Latencies, ref.Latencies)
	}
	if !reflect.DeepEqual(got.NodeStats, ref.NodeStats) {
		t.Errorf("%s: node stats diverge:\n got %+v\nwant %+v", label, got.NodeStats, ref.NodeStats)
	}
	if (got.Output == nil) != (ref.Output == nil) {
		t.Fatalf("%s: output presence differs", label)
	}
	if got.Output != nil && !reflect.DeepEqual(got.Output.Data, ref.Output.Data) {
		t.Errorf("%s: output samples differ bitwise", label)
	}
}

// TestShardedRunByteIdentical is the runtime-level contract of the sharded
// kernel: for every shard count, a pipelined run on the crossbar platform
// reproduces the sequential run's results, timings, dispatch count and full
// structured trace byte for byte.
func TestShardedRunByteIdentical(t *testing.T) {
	const n = 32
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"pipelined", Options{Iterations: 4}},
		{"optimized", Options{Iterations: 3, OptimizedBuffers: true}},
		{"paced", Options{Iterations: 4, InputPeriod: 50 * time.Microsecond}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tb := genTablesMercury(t, apps.FFT2D, n, 8, 8)
			refCol := trace.New("ref")
			refOpts := tc.opts
			refOpts.Collector = refCol
			ref, err := Run(tb, platforms.Mercury(), refOpts)
			if err != nil {
				t.Fatal(err)
			}
			refTrace := chromeBytes(t, refCol)
			for _, shards := range []int{2, 3, 8} {
				col := trace.New("ref")
				o := tc.opts
				o.Collector = col
				o.Shards = shards
				got, err := Run(tb, platforms.Mercury(), o)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				assertSameResult(t, fmt.Sprintf("shards=%d", shards), ref, got)
				if !bytes.Equal(refTrace, chromeBytes(t, col)) {
					t.Errorf("shards=%d: chrome trace differs from sequential", shards)
				}
			}
		})
	}
}

// TestShardedFaultedRunByteIdentical: the deterministic fault injector and
// the resilient runtime produce identical verdicts, recoveries and fault
// traces on the sharded kernel.
func TestShardedFaultedRunByteIdentical(t *testing.T) {
	const n = 32
	tb := genTablesMercury(t, apps.CornerTurn, n, 4, 4)
	run := func(shards int) (*Result, *trace.Collector) {
		col := trace.New("faulted")
		res, err := Run(tb, platforms.Mercury(), Options{
			Iterations: 3,
			Faults:     stressPlan(),
			Resilience: fault.Resilience{Degraded: true},
			Collector:  col,
			Shards:     shards,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, col
	}
	ref, refCol := run(0)
	refTrace := chromeBytes(t, refCol)
	for _, shards := range []int{2, 4} {
		got, col := run(shards)
		assertSameResult(t, fmt.Sprintf("shards=%d", shards), ref, got)
		if !reflect.DeepEqual(refCol.Faults(), col.Faults()) {
			t.Errorf("shards=%d: fault verdicts diverge:\n got %+v\nwant %+v", shards, col.Faults(), refCol.Faults())
		}
		if !bytes.Equal(refTrace, chromeBytes(t, col)) {
			t.Errorf("shards=%d: chrome trace differs from sequential", shards)
		}
	}
}

// TestShardedWeightsOnlySteerThePartition: load weights bias where the cuts
// land but can never change an answer.
func TestShardedWeightsOnlySteerThePartition(t *testing.T) {
	const n = 32
	tb := genTablesMercury(t, apps.FFT2D, n, 4, 8)
	ref, err := Run(tb, platforms.Mercury(), Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(tb, platforms.Mercury(), Options{
		Iterations:   2,
		Shards:       4,
		ShardWeights: []float64{8, 1, 1, 1, 1, 1, 1, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "weighted", ref, got)
}

// TestShardedRequestFallsBackSoundly: configurations that cannot shard
// (shared-fabric platform, Sequential mode, the legacy Trace probe) accept a
// Shards request and silently run on one shard, unchanged.
func TestShardedRequestFallsBackSoundly(t *testing.T) {
	const n = 32
	t.Run("fabric", func(t *testing.T) {
		tb := genTables(t, apps.FFT2D, n, 4, 4)
		ref, err := Run(tb, platforms.CSPI(), Options{Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(tb, platforms.CSPI(), Options{Iterations: 2, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "fabric", ref, got)
	})
	t.Run("sequential", func(t *testing.T) {
		tb := genTablesMercury(t, apps.FFT2D, n, 4, 4)
		ref, err := Run(tb, platforms.Mercury(), Options{Iterations: 2, Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(tb, platforms.Mercury(), Options{Iterations: 2, Sequential: true, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "sequential", ref, got)
	})
	t.Run("legacy-probe", func(t *testing.T) {
		tb := genTablesMercury(t, apps.FFT2D, n, 4, 4)
		events := 0
		_, err := Run(tb, platforms.Mercury(), Options{
			Iterations: 2, Shards: 4, ProbeAll: true,
			Trace: func(Event) { events++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if events == 0 {
			t.Fatal("legacy probe saw no events")
		}
	})
}
