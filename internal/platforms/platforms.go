// Package platforms holds the calibrated hardware descriptors for the four
// COTS multicomputer vendors the paper's evaluation references (CSPI, Mercury,
// SKY and SIGI, per the MITRE cross-vendor study it cites), plus a plain
// workstation-cluster descriptor used by examples.
//
// The CSPI numbers follow §3.2 of the paper directly: 200 MHz PowerPC 603e
// nodes, two quad-processor boards in a VME chassis, and a 160 MB/s Myrinet
// fabric. The other vendors are calibrated to their published interconnect
// characteristics (Mercury RACEway ~267 MB/s links, SKY SKYchannel ~320 MB/s
// shared backplane, SIGI a lower-bandwidth VME-based design) so that the
// *relative* cross-vendor behaviour — who wins the communication-bound corner
// turn, who wins the compute-bound FFT — reproduces the shape of the MITRE
// measurements. Absolute times are simulated, not measured.
package platforms

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/machine"
)

// CSPI is the paper's experimental target (§3.2): 200 MHz PPC 603e, quad-CPU
// boards, 160 MB/s Myrinet, VxWorks messaging stack.
func CSPI() machine.Platform {
	return machine.Platform{
		Name:              "CSPI",
		NodesPerBoard:     4,
		ClockHz:           200e6,
		FlopsPerCycle:     0.30, // ~60 MFLOPS sustained on tuned FFT kernels
		MemCopyBW:         180e6,
		SendOverhead:      8 * time.Microsecond,
		RecvOverhead:      8 * time.Microsecond,
		IntraLatency:      5 * time.Microsecond,
		IntraBW:           240e6,
		InterLatency:      15 * time.Microsecond,
		InterBW:           160e6, // Myrinet fabric, §3.2
		FabricConcurrency: 8,     // switched fabric, near-crossbar
		AllToAll:          "pairwise",
	}
}

// Mercury models a Mercury RACE system: RACEway crossbar with ~267 MB/s
// links and a low-overhead messaging stack.
func Mercury() machine.Platform {
	return machine.Platform{
		Name:              "Mercury",
		NodesPerBoard:     4,
		ClockHz:           200e6,
		FlopsPerCycle:     0.34,
		MemCopyBW:         230e6,
		SendOverhead:      6 * time.Microsecond,
		RecvOverhead:      6 * time.Microsecond,
		IntraLatency:      3 * time.Microsecond,
		IntraBW:           267e6,
		InterLatency:      8 * time.Microsecond,
		InterBW:           267e6,
		FabricConcurrency: 0, // crossbar: unlimited concurrent transfers
		AllToAll:          "direct",
	}
}

// SKY models a SKY Computers system: fast but shared SKYchannel backplane.
func SKY() machine.Platform {
	return machine.Platform{
		Name:              "SKY",
		NodesPerBoard:     4,
		ClockHz:           200e6,
		FlopsPerCycle:     0.30,
		MemCopyBW:         200e6,
		SendOverhead:      10 * time.Microsecond,
		RecvOverhead:      10 * time.Microsecond,
		IntraLatency:      4 * time.Microsecond,
		IntraBW:           250e6,
		InterLatency:      12 * time.Microsecond,
		InterBW:           320e6,
		FabricConcurrency: 4, // shared backplane limits concurrency
		AllToAll:          "bruck",
	}
}

// SIGI models the SIGI platform from the MITRE study: a lower-bandwidth
// VME-bus-based design with a heavier software stack.
func SIGI() machine.Platform {
	return machine.Platform{
		Name:              "SIGI",
		NodesPerBoard:     2,
		ClockHz:           200e6,
		FlopsPerCycle:     0.26,
		MemCopyBW:         140e6,
		SendOverhead:      14 * time.Microsecond,
		RecvOverhead:      14 * time.Microsecond,
		IntraLatency:      6 * time.Microsecond,
		IntraBW:           180e6,
		InterLatency:      25 * time.Microsecond,
		InterBW:           100e6,
		FabricConcurrency: 2,
		AllToAll:          "direct",
	}
}

// Workstations is a generic commodity-cluster descriptor used by examples
// and the quickstart; it is not part of the paper's evaluation.
func Workstations() machine.Platform {
	return machine.Platform{
		Name:              "Workstations",
		NodesPerBoard:     1,
		ClockHz:           450e6,
		FlopsPerCycle:     0.25,
		MemCopyBW:         250e6,
		SendOverhead:      30 * time.Microsecond,
		RecvOverhead:      30 * time.Microsecond,
		IntraLatency:      1 * time.Microsecond,
		IntraBW:           300e6,
		InterLatency:      60 * time.Microsecond,
		InterBW:           12.5e6, // 100 Mb/s Ethernet
		FabricConcurrency: 1,      // shared segment
		AllToAll:          "bruck",
	}
}

// registry maps names to constructors.
var registry = map[string]func() machine.Platform{
	"CSPI":         CSPI,
	"Mercury":      Mercury,
	"SKY":          SKY,
	"SIGI":         SIGI,
	"Workstations": Workstations,
}

// ByName returns the named platform descriptor.
func ByName(name string) (machine.Platform, error) {
	f, ok := registry[name]
	if !ok {
		return machine.Platform{}, fmt.Errorf("platforms: unknown platform %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered platform names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Vendors lists the four vendor platforms of the MITRE cross-vendor study in
// the order the paper mentions them.
func Vendors() []machine.Platform {
	return []machine.Platform{Mercury(), CSPI(), SIGI(), SKY()}
}
