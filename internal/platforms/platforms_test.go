package platforms

import (
	"testing"

	"repro/internal/mpi"
)

func TestAllRegisteredPlatformsValid(t *testing.T) {
	for _, name := range Names() {
		pl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if pl.Name != name {
			t.Errorf("%s: descriptor name %q", name, pl.Name)
		}
		// Every platform's all-to-all preference must resolve to a real
		// algorithm without falling back.
		if string(mpi.AlgorithmFor(pl.AllToAll)) != pl.AllToAll {
			t.Errorf("%s: alltoall %q does not resolve", name, pl.AllToAll)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Cray"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"CSPI", "Mercury", "SIGI", "SKY", "Workstations"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestVendorsMatchPaperOrder(t *testing.T) {
	v := Vendors()
	if len(v) != 4 {
		t.Fatalf("vendors = %d", len(v))
	}
	order := []string{"Mercury", "CSPI", "SIGI", "SKY"}
	for i, pl := range v {
		if pl.Name != order[i] {
			t.Fatalf("vendor %d = %s, want %s", i, pl.Name, order[i])
		}
	}
}

func TestCSPIMatchesPaperSection32(t *testing.T) {
	pl := CSPI()
	// §3.2: 200 MHz PowerPC 603e, quad-CPU boards, 160 MB/s Myrinet.
	if pl.ClockHz != 200e6 {
		t.Fatalf("clock = %v", pl.ClockHz)
	}
	if pl.NodesPerBoard != 4 {
		t.Fatalf("nodes/board = %d", pl.NodesPerBoard)
	}
	if pl.InterBW != 160e6 {
		t.Fatalf("fabric bw = %v", pl.InterBW)
	}
}

func TestRelativeVendorCharacter(t *testing.T) {
	// The calibrated descriptors must preserve the qualitative ordering the
	// cross-vendor experiment depends on.
	m, c, s, g := Mercury(), CSPI(), SKY(), SIGI()
	if !(m.InterBW > c.InterBW) || !(s.InterBW > c.InterBW) || !(g.InterBW < c.InterBW) {
		t.Fatal("fabric bandwidth ordering broken")
	}
	if m.FabricConcurrency != 0 {
		t.Fatal("Mercury should be a crossbar")
	}
	if !(g.SendOverhead > c.SendOverhead) {
		t.Fatal("SIGI should have the heaviest software stack")
	}
}
