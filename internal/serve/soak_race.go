//go:build race

package serve

// Shorter soak under the race detector; see soak_notrace.go.
const soakRequests = 20_000
