package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/atot"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/twin"
)

// errBadRequest marks validation failures the client caused; the handler
// maps it to HTTP 400 where everything else in the execution path is a 500.
var errBadRequest = errors.New("bad request")

// badf builds a client-error with errBadRequest in its chain.
func badf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errBadRequest)...)
}

// Request is the body of POST /v1/run: a model (a named benchmark or inline
// model text), a platform, a mapping strategy with its seed, and the
// execution protocol. Every field that influences the simulated result is
// part of the cache key; TimeoutMs is the one knob that is not — it bounds
// wall-clock patience, never virtual-time results.
type Request struct {
	// App selects a generated benchmark model: fft2d | cornerturn | stap.
	App string `json:"app,omitempty"`
	// N is the benchmark matrix edge (power of two; default 256).
	N int `json:"n,omitempty"`
	// Threads is the benchmark worker-thread count (default 4).
	Threads int `json:"threads,omitempty"`
	// Source is inline model text (the sage-designer format); when set it
	// replaces App/N/Threads.
	Source string `json:"source,omitempty"`
	// Platform is a registry platform name (default CSPI).
	Platform string `json:"platform,omitempty"`
	// Nodes is the processor count (default 8).
	Nodes int `json:"nodes,omitempty"`
	// Mapping is the strategy: spread | roundrobin | greedy | ga
	// (default spread).
	Mapping string `json:"mapping,omitempty"`
	// Seed drives the GA mapper; it is part of the cache key for every
	// strategy so clients can force distinct cache entries.
	Seed int64 `json:"seed,omitempty"`
	// Protocol is the execution protocol (§3.3 shape).
	Protocol Protocol `json:"protocol,omitempty"`
	// Faults is an optional fault-plan text (the sage-faultcheck format)
	// injected into every repetition.
	Faults string `json:"faults,omitempty"`
	// TraceSummary asks for the per-node/per-link trace summary of the
	// first repetition in the response.
	TraceSummary bool `json:"trace_summary,omitempty"`
	// TimeoutMs lowers the server's per-request deadline for this request.
	// It is excluded from the cache key: patience is not a simulation
	// parameter, and cached bytes must not depend on it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Shards requests conservative sharded execution of each simulation run
	// (sagert.Options.Shards): the run's event processing spreads across up
	// to Shards host cores with byte-identical output. Like TimeoutMs it is
	// excluded from the cache key — sharding changes wall-clock speed, never
	// response bytes, so requests differing only in shards share an entry.
	// Ignored by streaming and estimate requests and by runs that cannot
	// shard soundly (shared-fabric platforms, sequential protocol).
	Shards int `json:"shards,omitempty"`
	// Estimate answers with the analytical twin's closed-form prediction
	// instead of simulating: the response carries predicted period/latency/
	// elapsed (plus a twin breakdown) and never occupies a worker slot or a
	// rate token. Estimates are cached like runs (Estimate is part of the
	// key, so a prediction can never shadow a measurement).
	Estimate bool `json:"estimate,omitempty"`
}

// Protocol mirrors the experiments protocol: repetitions of a fixed
// iteration count. The simulator is deterministic, so repetitions reproduce
// identical virtual results; they exist to exercise the batch path.
type Protocol struct {
	Iterations       int  `json:"iterations,omitempty"`        // default 5
	Repetitions      int  `json:"repetitions,omitempty"`       // default 1
	Sequential       bool `json:"sequential,omitempty"`        // no pipelining
	OptimizedBuffers bool `json:"optimized_buffers,omitempty"` // future-work optimisation
	// Stream switches the request from the batch runtime to the streaming
	// one: frames arrive from the spec's client classes instead of a fixed
	// iteration count, and the response carries an SLO report. Mutually
	// exclusive with Iterations, Sequential, Repetitions > 1 and Estimate.
	Stream *StreamSpec `json:"stream,omitempty"`
}

// StreamSpec is the streaming half of a run request: the client-class mix
// plus the optional remap policy, riding on the request's app/platform/
// mapping/seed/faults fields.
type StreamSpec struct {
	// Classes is the client mix (stream.Class JSON shape).
	Classes []stream.Class `json:"classes"`
	// BufferSlots is the per-transfer pipelining credit (default 2).
	BufferSlots int `json:"buffer_slots,omitempty"`
	// Remap, when non-nil, enables the mid-run remapping controller.
	Remap *stream.RemapSpec `json:"remap,omitempty"`
}

// Response is the body of a successful /v1/run. Every field is derived from
// virtual time or deterministic mapping output — no wall-clock values — so
// the encoded bytes are identical for a given request at any worker count,
// which is what makes the content-addressed cache sound.
type Response struct {
	App          string           `json:"app"`
	Platform     string           `json:"platform"`
	Nodes        int              `json:"nodes"`
	Mapping      string           `json:"mapping"`
	Seed         int64            `json:"seed"`
	Iterations   int              `json:"iterations"`
	Repetitions  int              `json:"repetitions"`
	Period       string           `json:"period"`
	PeriodNs     int64            `json:"period_ns"`
	AvgLatency   string           `json:"avg_latency"`
	AvgLatencyNs int64            `json:"avg_latency_ns"`
	Elapsed      string           `json:"elapsed"`
	ElapsedNs    int64            `json:"elapsed_ns"`
	Dispatches   uint64           `json:"dispatches"`
	NodeStats    []NodeStat       `json:"node_stats"`
	Assignment   map[string][]int `json:"assignment"`
	GA           *GASummary       `json:"ga,omitempty"`
	TraceSummary string           `json:"trace_summary,omitempty"`
	FaultSummary string           `json:"fault_summary,omitempty"`
	// Twin is present on estimate-only responses: the analytical model's
	// breakdown of the prediction the top-level fields carry.
	Twin *TwinSummary `json:"twin,omitempty"`
	// Stream is present on streaming responses: the full SLO report
	// (per-class latency percentiles, goodput, fairness, remap events).
	Stream *stream.Report `json:"stream,omitempty"`
}

// TwinSummary is the analytical twin's view of an estimated run.
type TwinSummary struct {
	FirstIterationNs   int64 `json:"first_iteration_ns"`
	SteadyIterationNs  int64 `json:"steady_iteration_ns"`
	BottleneckPeriodNs int64 `json:"bottleneck_period_ns"`
	RecvNs             int64 `json:"recv_ns"`
	DispatchNs         int64 `json:"dispatch_ns"`
	ComputeNs          int64 `json:"compute_ns"`
	SendNs             int64 `json:"send_ns"`
}

// NodeStat is one node's busy-time breakdown in nanoseconds of virtual time.
type NodeStat struct {
	Node        int     `json:"node"`
	ComputeNs   int64   `json:"compute_ns"`
	CopyNs      int64   `json:"copy_ns"`
	CommNs      int64   `json:"comm_ns"`
	Utilization float64 `json:"utilization"`
}

// GASummary reports the genetic mapper's work when mapping=ga.
type GASummary struct {
	Generations int     `json:"generations"`
	Evaluations int     `json:"evaluations"`
	Best        float64 `json:"best"`
}

// normalize applies defaults and validates everything that can be checked
// without building the model. It must be called before cacheKey so that
// spelled-out and defaulted requests share an entry.
func (r *Request) normalize() error {
	if r.Source == "" && r.App == "" {
		return badf("pass app or source")
	}
	if r.Source != "" {
		r.App, r.N, r.Threads = "", 0, 0
	} else {
		switch r.App {
		case "fft2d", "cornerturn", "stap":
		default:
			return badf("unknown app %q (want fft2d, cornerturn or stap)", r.App)
		}
		if r.N == 0 {
			r.N = 256
		}
		if r.N < 0 {
			return badf("n must be positive")
		}
		if r.Threads == 0 {
			r.Threads = 4
		}
		if r.Threads < 0 {
			return badf("threads must be positive")
		}
	}
	if r.Platform == "" {
		r.Platform = "CSPI"
	}
	if _, err := platforms.ByName(r.Platform); err != nil {
		return badf("%v (have %s)", err, strings.Join(platforms.Names(), ", "))
	}
	if r.Nodes == 0 {
		r.Nodes = 8
	}
	if r.Nodes < 0 {
		return badf("nodes must be positive")
	}
	if r.Mapping == "" {
		r.Mapping = "spread"
	}
	switch r.Mapping {
	case "spread", "roundrobin", "greedy", "ga":
	default:
		return badf("unknown mapping %q (want spread, roundrobin, greedy or ga)", r.Mapping)
	}
	if st := r.Protocol.Stream; st != nil {
		// Streaming replaces the iteration protocol: arrivals drive the run.
		if r.Protocol.Iterations != 0 {
			return badf("stream: iterations is a batch-protocol knob; the class mix drives a streaming run")
		}
		if r.Protocol.Repetitions > 1 {
			return badf("stream: repetitions > 1 is a batch-protocol knob (streaming runs are deterministic)")
		}
		r.Protocol.Repetitions = 1
		if r.Protocol.Sequential || r.Protocol.OptimizedBuffers {
			return badf("stream: sequential and optimized_buffers are batch-runtime modes")
		}
		if r.Estimate {
			return badf("stream: the twin has no streaming model; drop estimate or run the batch protocol")
		}
		if len(st.Classes) == 0 {
			return badf("stream: no client classes")
		}
		for i := range st.Classes {
			if err := st.Classes[i].Validate(); err != nil {
				return badf("stream: %v", err)
			}
		}
		if st.BufferSlots < 0 {
			return badf("stream: buffer_slots must be non-negative")
		}
	} else {
		if r.Protocol.Iterations == 0 {
			r.Protocol.Iterations = 5
		}
		if r.Protocol.Iterations < 0 {
			return badf("iterations must be positive")
		}
		if r.Protocol.Repetitions == 0 {
			r.Protocol.Repetitions = 1
		}
		if r.Protocol.Repetitions < 0 {
			return badf("repetitions must be positive")
		}
	}
	if r.TimeoutMs < 0 {
		return badf("timeout_ms must be non-negative")
	}
	if r.Shards < 0 {
		return badf("shards must be non-negative")
	}
	if r.Estimate {
		if r.Faults != "" {
			return badf("estimate: fault paths are outside the twin's model; drop faults or run a full simulation")
		}
		if r.TraceSummary {
			return badf("estimate: no events are simulated, so there is no trace; drop trace_summary or run a full simulation")
		}
	}
	if r.Faults != "" {
		plan, err := fault.ParsePlan(r.Faults)
		if err != nil {
			return badf("faults: %v", err)
		}
		if err := plan.Validate(); err != nil {
			return badf("faults: %v", err)
		}
	}
	return nil
}

// cacheKey returns the content address of a normalized request: the sha256
// of its canonical JSON with the wall-clock-only fields zeroed. Two requests
// with the same key ask for the same deterministic computation, so serving
// one's cached bytes for the other is exact, not approximate.
func (r *Request) cacheKey() string {
	c := *r
	c.TimeoutMs = 0
	c.Shards = 0
	b, err := json.Marshal(&c)
	if err != nil {
		// A Request is plain data; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// buildCase turns a normalized request into executable runtime tables.
// Every error here is the client's (bad model text, shape constraints,
// unmappable graphs) and is wrapped as errBadRequest.
func buildCase(r *Request) (*gluegen.Tables, *model.App, machine.Platform, *Response, error) {
	var app *model.App
	var err error
	if r.Source != "" {
		app, err = model.ReadText(strings.NewReader(r.Source))
		if err != nil {
			return nil, nil, machine.Platform{}, nil, badf("source: %v", err)
		}
		if err := funclib.ValidateApp(app); err != nil {
			return nil, nil, machine.Platform{}, nil, badf("source: %v", err)
		}
	} else {
		switch r.App {
		case "fft2d":
			app, err = apps.FFT2D(r.N, r.Threads)
		case "cornerturn":
			app, err = apps.CornerTurn(r.N, r.Threads)
		case "stap":
			app, err = apps.STAP(r.N, r.Threads)
		}
		if err != nil {
			return nil, nil, machine.Platform{}, nil, badf("%s: %v", r.App, err)
		}
	}
	pl, err := platforms.ByName(r.Platform)
	if err != nil {
		return nil, nil, machine.Platform{}, nil, badf("%v", err)
	}

	resp := &Response{
		App:         app.Name,
		Platform:    pl.Name,
		Nodes:       r.Nodes,
		Mapping:     r.Mapping,
		Seed:        r.Seed,
		Iterations:  r.Protocol.Iterations,
		Repetitions: r.Protocol.Repetitions,
	}

	var mapping *model.Mapping
	switch r.Mapping {
	case "spread":
		mapping, err = model.SpreadParallel(app, r.Nodes)
	case "roundrobin":
		mapping = model.RoundRobin(app, r.Nodes)
	case "greedy", "ga":
		ev, everr := atot.NewEvaluator(app, pl, r.Nodes)
		if everr != nil {
			return nil, nil, machine.Platform{}, nil, badf("%v", everr)
		}
		if r.Mapping == "greedy" {
			mapping, err = atot.MapGreedy(ev)
		} else {
			var stats *atot.GAStats
			// Small fixed GA budget: the daemon answers interactively, and
			// the seed (cache-keyed) makes the search reproducible.
			mapping, stats, err = atot.MapGA(ev, atot.GAConfig{Population: 32, Generations: 40, Seed: r.Seed})
			if stats != nil {
				resp.GA = &GASummary{Generations: stats.Generations, Evaluations: stats.Evaluations, Best: stats.Best.Total}
			}
		}
	}
	if err != nil {
		return nil, nil, machine.Platform{}, nil, badf("mapping: %v", err)
	}
	resp.Assignment = mapping.Assign

	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: r.Nodes})
	if err != nil {
		return nil, nil, machine.Platform{}, nil, badf("gluegen: %v", err)
	}
	return out.Tables, app, pl, resp, nil
}

// executeEstimate answers a request from the analytical twin: same model,
// mapping and table generation as a real run, but the execution itself is a
// closed-form prediction — no kernel, no events, no worker occupancy. The
// response mirrors a run response (predicted period/latency/elapsed,
// predicted per-node busy stats, Dispatches 0) plus the twin breakdown.
func executeEstimate(r *Request) (*Response, error) {
	tables, _, pl, resp, err := buildCase(r)
	if err != nil {
		return nil, err
	}
	ev, err := twin.NewEvaluator(tables, pl)
	if err != nil {
		return nil, badf("twin: %v", err)
	}
	pred := ev.Predict(twin.Options{
		Iterations:       r.Protocol.Iterations,
		Sequential:       r.Protocol.Sequential,
		OptimizedBuffers: r.Protocol.OptimizedBuffers,
	})
	period := time.Duration(pred.Period)
	avg := time.Duration(pred.AvgLatency)
	elapsed := time.Duration(pred.Elapsed)
	resp.Period = period.String()
	resp.PeriodNs = int64(period)
	resp.AvgLatency = avg.String()
	resp.AvgLatencyNs = int64(avg)
	resp.Elapsed = elapsed.String()
	resp.ElapsedNs = int64(elapsed)
	for n, nc := range pred.Nodes {
		util := 0.0
		if pred.Elapsed > 0 {
			util = float64(nc.Compute+nc.Copy) / float64(pred.Elapsed)
		}
		resp.NodeStats = append(resp.NodeStats, NodeStat{
			Node:        n,
			ComputeNs:   int64(nc.Compute),
			CopyNs:      int64(nc.Copy),
			CommNs:      int64(nc.Comm),
			Utilization: util,
		})
	}
	resp.Twin = &TwinSummary{
		FirstIterationNs:   int64(pred.FirstIteration),
		SteadyIterationNs:  int64(pred.SteadyIteration),
		BottleneckPeriodNs: int64(pred.BottleneckPeriod),
		RecvNs:             int64(pred.Phases.Recv),
		DispatchNs:         int64(pred.Phases.Dispatch),
		ComputeNs:          int64(pred.Phases.Compute),
		SendNs:             int64(pred.Phases.Send),
	}
	return resp, nil
}

// executeStream runs a streaming request: same model/mapping/table pipeline
// as a batch run, then the stream runtime instead of sagert. The response's
// latency fields summarise frames (mean frame latency; period is the mean
// completion interval) and Stream carries the full SLO report. The backlog
// callback, when non-nil, receives live admission-queue depths for the
// daemon's per-worker gauges; it never influences the simulated result.
func executeStream(ctx context.Context, r *Request, backlog func(int)) (*Response, error) {
	tables, app, pl, resp, err := buildCase(r)
	if err != nil {
		return nil, err
	}
	spec := r.Protocol.Stream
	cfg := stream.Config{
		Tables:      tables,
		App:         app,
		Platform:    pl,
		Classes:     spec.Classes,
		Seed:        r.Seed,
		BufferSlots: spec.BufferSlots,
		Backlog:     backlog,
		Cancel:      ctx.Done(),
	}
	if r.Faults != "" {
		plan, err := fault.ParsePlan(r.Faults)
		if err != nil {
			return nil, badf("faults: %v", err)
		}
		if err := plan.CheckNodes(tables.NumNodes); err != nil {
			return nil, badf("faults: %v", err)
		}
		cfg.Faults = plan
	}
	if spec.Remap != nil {
		remap := *spec.Remap
		cfg.Remap = remap.Config()
	}
	var col *trace.Collector
	if r.TraceSummary {
		col = trace.New(resp.App + " stream on " + pl.Name)
		cfg.Collector = col
	}
	res, err := stream.Run(cfg)
	if err != nil {
		if errors.Is(err, stream.ErrCanceled) {
			return nil, err
		}
		return nil, badf("stream: %v", err)
	}
	rep := stream.BuildReport(cfg.Classes, cfg.Seed, res)
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("stream: report: %w", err)
	}
	resp.Iterations = 0
	resp.Stream = rep
	elapsed := time.Duration(res.Elapsed)
	resp.Elapsed = elapsed.String()
	resp.ElapsedNs = int64(elapsed)
	resp.Dispatches = res.Dispatches
	if rep.Completed > 0 {
		// Period: mean completion interval; AvgLatency: mean frame latency.
		period := time.Duration(rep.LastDoneNs / int64(rep.Completed))
		resp.Period = period.String()
		resp.PeriodNs = int64(period)
		var totalLat int64
		for i := range rep.Classes {
			totalLat += rep.Classes[i].MeanNs * int64(rep.Classes[i].Completed)
		}
		avg := time.Duration(totalLat / int64(rep.Completed))
		resp.AvgLatency = avg.String()
		resp.AvgLatencyNs = int64(avg)
	}
	for _, ns := range res.NodeStats {
		resp.NodeStats = append(resp.NodeStats, NodeStat{
			Node:        ns.Node,
			ComputeNs:   int64(ns.ComputeBusy),
			CopyNs:      int64(ns.CopyBusy),
			CommNs:      int64(ns.CommBusy),
			Utilization: ns.Utilization,
		})
	}
	if col != nil {
		t := trace.NewTrace()
		t.Add(col)
		var b bytes.Buffer
		if err := t.WriteSummary(&b); err != nil {
			return nil, fmt.Errorf("trace summary: %w", err)
		}
		resp.TraceSummary = b.String()
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		resp.FaultSummary = fmt.Sprintf("seed %d: %d drop / %d degrade / %d stall rules applied",
			cfg.Faults.Seed, len(cfg.Faults.Drops), len(cfg.Faults.Degrades), len(cfg.Faults.Stalls))
	}
	return resp, nil
}

// execute runs a normalized request end to end. The context's deadline is
// wired into the kernel's cancellation poll (sagert.Options.Cancel): a
// deadline mid-run aborts between dispatched events and sagert's deferred
// Kernel.Shutdown releases the parked process goroutines, so a canceled
// request leaks nothing. Repetitions fan out on the experiments pool; its
// first-failure cancellation stops the batch as soon as one repetition is
// canceled. backlog feeds the daemon's per-worker queue-depth gauge on
// streaming requests; batch requests ignore it.
func execute(ctx context.Context, r *Request, backlog func(int)) (*Response, error) {
	if r.Protocol.Stream != nil {
		return executeStream(ctx, r, backlog)
	}
	tables, _, pl, resp, err := buildCase(r)
	if err != nil {
		return nil, err
	}

	var plan *fault.Plan
	if r.Faults != "" {
		// Parse validated by normalize; reparse for the injector.
		if plan, err = fault.ParsePlan(r.Faults); err != nil {
			return nil, badf("faults: %v", err)
		}
		if err := plan.CheckNodes(tables.NumNodes); err != nil {
			return nil, badf("faults: %v", err)
		}
	}

	reps := r.Protocol.Repetitions
	type repOut struct {
		res *sagert.Result
		col *trace.Collector
	}
	par := reps
	if par > 4 {
		par = 4
	}
	outs, err := experiments.RunPool(par, reps, func(i int) (repOut, error) {
		if err := ctx.Err(); err != nil {
			return repOut{}, err
		}
		opts := sagert.Options{
			Iterations:       r.Protocol.Iterations,
			Sequential:       r.Protocol.Sequential,
			OptimizedBuffers: r.Protocol.OptimizedBuffers,
			Faults:           plan,
			Cancel:           ctx.Done(),
			Shards:           r.Shards,
		}
		var col *trace.Collector
		if r.TraceSummary && i == 0 {
			col = trace.New(resp.App + " on " + pl.Name)
			opts.Collector = col
		}
		res, err := sagert.Run(tables, pl, opts)
		if err != nil {
			return repOut{}, err
		}
		return repOut{res: res, col: col}, nil
	})
	if err != nil {
		return nil, err
	}

	res := outs[0].res
	period := time.Duration(res.Period)
	avg := time.Duration(res.AvgLatency())
	elapsed := time.Duration(res.Elapsed)
	resp.Period = period.String()
	resp.PeriodNs = int64(period)
	resp.AvgLatency = avg.String()
	resp.AvgLatencyNs = int64(avg)
	resp.Elapsed = elapsed.String()
	resp.ElapsedNs = int64(elapsed)
	resp.Dispatches = res.Dispatches
	for _, ns := range res.NodeStats {
		resp.NodeStats = append(resp.NodeStats, NodeStat{
			Node:        ns.Node,
			ComputeNs:   int64(ns.ComputeBusy),
			CopyNs:      int64(ns.CopyBusy),
			CommNs:      int64(ns.CommBusy),
			Utilization: ns.Utilization,
		})
	}
	if outs[0].col != nil {
		t := trace.NewTrace()
		t.Add(outs[0].col)
		var b bytes.Buffer
		if err := t.WriteSummary(&b); err != nil {
			return nil, fmt.Errorf("trace summary: %w", err)
		}
		resp.TraceSummary = b.String()
	}
	if plan != nil && !plan.Empty() {
		resp.FaultSummary = fmt.Sprintf("seed %d: %d drop / %d degrade / %d stall rules applied to every repetition",
			plan.Seed, len(plan.Drops), len(plan.Degrades), len(plan.Stalls))
	}
	return resp, nil
}
