package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// soakMix builds the distinct request bodies the soak cycles through: small
// deterministic cases across both benchmark apps, both cheap mappings, and a
// few shapes each — enough variety to exercise mapping, gluegen and the FFT
// cache, small enough that the cold pass stays fast.
func soakMix() []string {
	var out []string
	for _, app := range []string{"fft2d", "cornerturn"} {
		for _, n := range []int{64, 128} {
			for _, mapping := range []string{"spread", "roundrobin"} {
				for _, iters := range []int{1, 2, 3} {
					out = append(out, fmt.Sprintf(
						`{"app":%q,"n":%d,"threads":2,"nodes":4,"mapping":%q,"protocol":{"iterations":%d}}`,
						app, n, mapping, iters))
				}
			}
		}
	}
	return out // 24 distinct requests
}

// settle polls until the goroutine count drops to at most want, tolerating
// runtime background goroutines that wind down asynchronously.
func settle(t *testing.T, want int) int {
	t.Helper()
	var n int
	for i := 0; i < 200; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestSoakDaemonStability is the long-lived-process proof for the tentpole:
// it pushes soakRequests mixed requests (valid and invalid) through a
// parallel daemon and asserts
//
//  1. determinism at any parallelism — a 1-worker and an 8-worker fleet
//     produce byte-identical fresh responses for every distinct request;
//  2. bitwise response stability — every 200 over the whole soak equals the
//     first response for that request, cached or fresh;
//  3. zero goroutine growth while serving, and full teardown after
//     Shutdown;
//  4. bounded heap — post-GC heap growth across the soak stays small
//     (caches are size-bounded, nothing per-request accumulates).
func TestSoakDaemonStability(t *testing.T) {
	base := settle(t, 0) // whatever the test runtime already has
	reqs := soakMix()

	// Phase 1: determinism across worker fleet sizes, fresh on both.
	s1 := New(Config{Workers: 1})
	s8 := New(Config{Workers: 8})
	reference := make(map[string][]byte, len(reqs))
	for i, body := range reqs {
		w1 := do(s1, http.MethodPost, "/v1/run", body)
		w8 := do(s8, http.MethodPost, "/v1/run", body)
		if w1.Code != http.StatusOK || w8.Code != http.StatusOK {
			t.Fatalf("request %d: statuses %d/%d (body %s)", i, w1.Code, w8.Code, w1.Body.String())
		}
		if !bytes.Equal(w1.Body.Bytes(), w8.Body.Bytes()) {
			t.Fatalf("request %d: 1-worker and 8-worker responses differ", i)
		}
		reference[body] = w1.Body.Bytes()
	}
	s1.Shutdown()

	// Phase 2: the soak proper, against the parallel fleet.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()

	const clients = 16
	invalid := []string{`{"app":"sonar"}`, `{"mapping":"anneal","app":"fft2d"}`}
	var sent, mismatches, badStatus atomic.Uint64
	var wg sync.WaitGroup
	perClient := soakRequests / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				k := c*perClient + i
				if k%101 == 100 { // ~1% invalid requests in the mix
					if w := do(s8, http.MethodPost, "/v1/run", invalid[k%len(invalid)]); w.Code != http.StatusBadRequest {
						badStatus.Add(1)
					}
					sent.Add(1)
					continue
				}
				body := reqs[k%len(reqs)]
				w := do(s8, http.MethodPost, "/v1/run", body)
				if w.Code != http.StatusOK {
					badStatus.Add(1)
				} else if !bytes.Equal(w.Body.Bytes(), reference[body]) {
					mismatches.Add(1)
				}
				sent.Add(1)
			}
		}(c)
	}
	wg.Wait()

	if got := sent.Load(); got != uint64(perClient*clients) {
		t.Fatalf("sent %d requests, expected %d", got, perClient*clients)
	}
	if n := mismatches.Load(); n != 0 {
		t.Errorf("%d responses were not byte-identical to the reference", n)
	}
	if n := badStatus.Load(); n != 0 {
		t.Errorf("%d requests got an unexpected status", n)
	}

	// Goroutines must not grow while the daemon serves; a long-lived process
	// that adds even one goroutine per N requests eventually dies.
	if g1 := settle(t, g0); g1 > g0 {
		t.Errorf("goroutines grew during soak: %d -> %d", g0, g1)
	}

	// Post-GC heap growth across the soak stays bounded: the response cache
	// and the FFT twiddle cache are size-limited, and requests retain
	// nothing. Allow generous slack for allocator noise.
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc && m1.HeapAlloc-m0.HeapAlloc > 16<<20 {
		t.Errorf("heap grew %d bytes across the soak (from %d to %d)",
			m1.HeapAlloc-m0.HeapAlloc, m0.HeapAlloc, m1.HeapAlloc)
	}

	st := s8.Stats()
	if st.CacheHits == 0 || st.Completed == 0 {
		t.Errorf("soak exercised no cache hits or completions: %+v", st)
	}
	if min := uint64(soakRequests / 2); st.CacheHits < min {
		t.Errorf("cache hits %d below expected floor %d", st.CacheHits, min)
	}

	// Teardown: after Shutdown the whole fleet must be gone.
	s8.Shutdown()
	if g := settle(t, base+2); g > base+2 {
		t.Errorf("goroutines leaked after shutdown: base %d, now %d", base, g)
	}
	t.Logf("soak: %d requests, %d completed, %d cache hits, heap %d -> %d",
		soakRequests, st.Completed, st.CacheHits, m0.HeapAlloc, m1.HeapAlloc)
}
