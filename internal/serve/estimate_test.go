package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

const estimateReq = `{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true,"protocol":{"iterations":2}}`

// Estimate-only requests are answered by the analytical twin with the same
// response shape as a run: predicted totals, per-node stats, a twin
// breakdown, and no dispatched events.
func TestEstimateResponseShape(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(s, http.MethodPost, "/v1/run", estimateReq)
	if w.Code != http.StatusOK {
		t.Fatalf("estimate: status %d, body %s", w.Code, w.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Twin == nil {
		t.Fatal("estimate response missing twin breakdown")
	}
	if resp.ElapsedNs <= 0 || resp.PeriodNs <= 0 || resp.AvgLatencyNs <= 0 {
		t.Errorf("estimate missing predictions: %+v", resp)
	}
	if resp.Dispatches != 0 {
		t.Errorf("estimate simulated %d events", resp.Dispatches)
	}
	if len(resp.NodeStats) != 4 || len(resp.Assignment) == 0 {
		t.Errorf("estimate missing node stats or mapping: %+v", resp)
	}

	// The prediction should be in the neighbourhood of the real run (the
	// calibration gates in twin/validate pin this precisely; here we only
	// guard against gross wiring mistakes like unit mixups).
	runW := do(s, http.MethodPost, "/v1/run", smallReq)
	if runW.Code != http.StatusOK {
		t.Fatalf("run: status %d", runW.Code)
	}
	var runResp Response
	if err := json.Unmarshal(runW.Body.Bytes(), &runResp); err != nil {
		t.Fatal(err)
	}
	if runResp.Twin != nil {
		t.Error("full run response carries a twin breakdown")
	}
	ratio := float64(resp.ElapsedNs) / float64(runResp.ElapsedNs)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("estimate %d ns vs run %d ns (ratio %.2f)", resp.ElapsedNs, runResp.ElapsedNs, ratio)
	}
}

// Estimates must not occupy the worker fleet: a zero-worker daemon — and one
// whose fleet has already shut down — still answers them, while real runs
// are refused. This is the strongest possible form of "hits no worker-pool
// slot" (issue satellite 4).
func TestEstimateBypassesWorkers(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.Shutdown() // drain the fleet; queue consumers are gone

	w := do(s, http.MethodPost, "/v1/run", estimateReq)
	if w.Code != http.StatusOK {
		t.Fatalf("estimate after shutdown: status %d, body %s", w.Code, w.Body.String())
	}
	if got := s.Stats().Estimates; got != 1 {
		t.Errorf("Estimates counter = %d, want 1", got)
	}
	if got := s.Stats().BusyWorkers; got != 0 {
		t.Errorf("estimate occupied a worker: busy=%d", got)
	}

	// A real run with the same shape is refused: the fleet is gone.
	runW := do(s, http.MethodPost, "/v1/run", smallReq)
	if runW.Code != http.StatusServiceUnavailable {
		t.Fatalf("run after shutdown: status %d, want 503", runW.Code)
	}
}

// TimeoutMs is excluded from the cache key for estimates exactly as for
// runs, and cached estimate bytes are identical to fresh ones (issue
// satellite 4).
func TestEstimateCacheKeyIgnoresTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	fresh := do(s, http.MethodPost, "/v1/run", `{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true,"timeout_ms":60000}`)
	if fresh.Code != http.StatusOK || fresh.Header().Get("X-Sage-Cache") != "miss" {
		t.Fatalf("fresh estimate: status %d cache %q", fresh.Code, fresh.Header().Get("X-Sage-Cache"))
	}
	// Different timeout, same computation: must hit, byte-identically.
	cached := do(s, http.MethodPost, "/v1/run", `{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true,"timeout_ms":5}`)
	if cached.Code != http.StatusOK || cached.Header().Get("X-Sage-Cache") != "hit" {
		t.Fatalf("cached estimate: status %d cache %q", cached.Code, cached.Header().Get("X-Sage-Cache"))
	}
	if !bytes.Equal(fresh.Body.Bytes(), cached.Body.Bytes()) {
		t.Error("cached estimate bytes differ from fresh")
	}

	// An estimate and a run of the same request are distinct cache entries:
	// a prediction can never shadow a measurement.
	runW := do(s, http.MethodPost, "/v1/run", `{"app":"fft2d","n":64,"threads":2,"nodes":4}`)
	if runW.Code != http.StatusOK || runW.Header().Get("X-Sage-Cache") != "miss" {
		t.Fatalf("run after estimate: status %d cache %q (prediction shadowed a measurement?)",
			runW.Code, runW.Header().Get("X-Sage-Cache"))
	}
}

// Estimates of every protocol and mapping combination produce identical
// bytes on repeat — the determinism the response cache relies on.
func TestEstimateDeterministic(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheEntries: -1}) // cache off: every request computes
	for _, req := range []string{
		`{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true}`,
		`{"app":"stap","n":64,"threads":3,"nodes":6,"estimate":true,"protocol":{"sequential":true}}`,
		`{"app":"cornerturn","n":64,"threads":2,"nodes":2,"estimate":true,"protocol":{"optimized_buffers":true,"iterations":7}}`,
		`{"app":"fft2d","n":64,"threads":2,"nodes":8,"estimate":true,"mapping":"ga","seed":3}`,
	} {
		a := do(s, http.MethodPost, "/v1/run", req)
		b := do(s, http.MethodPost, "/v1/run", req)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("%s: status %d/%d body %s", req, a.Code, b.Code, a.Body.String())
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Errorf("%s: repeat estimate bytes differ", req)
		}
	}
}

// The twin has no fault or trace model; asking for either with an estimate
// is a client error, stated plainly.
func TestEstimateRejectsUnmodeledFeatures(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, req := range []string{
		`{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true,"faults":"seed 1\ndrop node 0 prob 0.5"}`,
		`{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true,"trace_summary":true}`,
	} {
		w := do(s, http.MethodPost, "/v1/run", req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", req, w.Code, w.Body.String())
		}
	}
}

// Estimates answer under a worker fleet that is fully busy, without queueing
// behind the running simulations.
func TestEstimateUnderLoad(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the single worker with a long simulation in the background.
	bigReq := `{"app":"fft2d","n":512,"threads":4,"nodes":8,"protocol":{"iterations":40,"repetitions":2}}`
	done := make(chan struct{})
	go func() {
		defer close(done)
		do(s, http.MethodPost, "/v1/run", bigReq)
	}()
	// Estimates keep flowing regardless of fleet occupancy.
	for i := 0; i < 8; i++ {
		req := fmt.Sprintf(`{"app":"fft2d","n":64,"threads":2,"nodes":4,"estimate":true,"seed":%d}`, i)
		w := do(s, http.MethodPost, "/v1/run", req)
		if w.Code != http.StatusOK {
			t.Fatalf("estimate %d under load: status %d body %s", i, w.Code, w.Body.String())
		}
	}
	<-done
}
