package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a daemon and guarantees its fleet is torn down.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Shutdown)
	return s
}

// do drives the handler directly — no sockets, so tests are fast and the
// soak can push six-figure request counts.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

const smallReq = `{"app":"fft2d","n":64,"threads":2,"nodes":4,"protocol":{"iterations":2}}`

func TestRunEndpointAndCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	w := do(s, http.MethodPost, "/v1/run", smallReq)
	if w.Code != http.StatusOK {
		t.Fatalf("fresh run: status %d, body %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Sage-Cache"); got != "miss" {
		t.Errorf("fresh run: X-Sage-Cache = %q, want miss", got)
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if resp.App == "" || resp.PeriodNs <= 0 || resp.ElapsedNs <= 0 || len(resp.Assignment) == 0 {
		t.Errorf("response missing results or mapping: %+v", resp)
	}
	if resp.Nodes != 4 || resp.Iterations != 2 {
		t.Errorf("response echoes wrong parameters: %+v", resp)
	}

	w2 := do(s, http.MethodPost, "/v1/run", smallReq)
	if w2.Code != http.StatusOK {
		t.Fatalf("cached run: status %d", w2.Code)
	}
	if got := w2.Header().Get("X-Sage-Cache"); got != "hit" {
		t.Errorf("cached run: X-Sage-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached response is not byte-identical to the fresh one")
	}

	// Spelling out the defaults must land on the same cache entry: keys are
	// computed after normalization.
	spelled := `{"app":"fft2d","n":64,"threads":2,"platform":"CSPI","nodes":4,"mapping":"spread","protocol":{"iterations":2,"repetitions":1}}`
	w3 := do(s, http.MethodPost, "/v1/run", spelled)
	if w3.Code != http.StatusOK || w3.Header().Get("X-Sage-Cache") != "hit" {
		t.Errorf("normalized request missed the cache: status %d, X-Sage-Cache %q", w3.Code, w3.Header().Get("X-Sage-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w3.Body.Bytes()) {
		t.Error("normalized request returned different bytes")
	}
}

func TestRepetitionsAndTraceSummary(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	body := `{"app":"cornerturn","n":64,"threads":2,"nodes":4,"trace_summary":true,"protocol":{"iterations":2,"repetitions":3}}`
	w := do(s, http.MethodPost, "/v1/run", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Repetitions != 3 {
		t.Errorf("repetitions = %d, want 3", resp.Repetitions)
	}
	if resp.TraceSummary == "" {
		t.Error("trace summary requested but absent")
	}
}

func TestFaultPlanSummary(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := map[string]any{
		"app": "cornerturn", "n": 64, "threads": 2, "nodes": 4,
		"protocol": map[string]any{"iterations": 2},
		"faults":   "seed 3\ndrop link=* rate=0.2\n",
	}
	b, _ := json.Marshal(req)
	w := do(s, http.MethodPost, "/v1/run", string(b))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FaultSummary == "" {
		t.Error("fault plan supplied but no fault summary in response")
	}
}

func TestErrorTaxonomy(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"bad json", http.MethodPost, "/v1/run", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/run", `{"app":"fft2d","bogus":1}`, http.StatusBadRequest},
		{"no model", http.MethodPost, "/v1/run", `{}`, http.StatusBadRequest},
		{"unknown app", http.MethodPost, "/v1/run", `{"app":"sonar"}`, http.StatusBadRequest},
		{"unknown platform", http.MethodPost, "/v1/run", `{"app":"fft2d","platform":"PDP11"}`, http.StatusBadRequest},
		{"unknown mapping", http.MethodPost, "/v1/run", `{"app":"fft2d","mapping":"anneal"}`, http.StatusBadRequest},
		{"negative n", http.MethodPost, "/v1/run", `{"app":"fft2d","n":-4}`, http.StatusBadRequest},
		{"bad faults", http.MethodPost, "/v1/run", `{"app":"fft2d","faults":"drop nonsense"}`, http.StatusBadRequest},
		{"bad source", http.MethodPost, "/v1/run", `{"source":"not a model"}`, http.StatusBadRequest},
		{"run is POST only", http.MethodGet, "/v1/run", "", http.StatusMethodNotAllowed},
		{"health is GET only", http.MethodPost, "/v1/health", "", http.StatusMethodNotAllowed},
		{"stats is GET only", http.MethodPost, "/v1/stats", "", http.StatusMethodNotAllowed},
		{"unknown path", http.MethodGet, "/v2/run", "", http.StatusNotFound},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if w := do(s, tc.method, tc.path, tc.body); w.Code != tc.want {
				t.Errorf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, w.Code, tc.want, w.Body.String())
			}
		})
	}
}

func TestHealthAndStats(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(s, http.MethodGet, "/v1/health", ""); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Errorf("health: status %d, body %s", w.Code, w.Body.String())
	}
	do(s, http.MethodPost, "/v1/run", smallReq)
	do(s, http.MethodPost, "/v1/run", smallReq)
	w := do(s, http.MethodGet, "/v1/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: status %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Requests != 2 || st.Completed != 1 || st.CacheHits != 1 || st.CacheMisses != 1 || st.Workers != 1 {
		t.Errorf("stats counters off: %+v", st)
	}
}

// TestDeadlineCancelsMidRun pins the tentpole bug fix: a request that blows
// its wall-clock budget is canceled between kernel events (504), the worker
// survives, and the next request runs normally on a fresh kernel.
func TestDeadlineCancelsMidRun(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Deadline: 10 * time.Millisecond})
	long := `{"app":"fft2d","n":256,"threads":4,"nodes":8,"protocol":{"iterations":50000}}`
	w := do(s, http.MethodPost, "/v1/run", long)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("long run: status %d, want 504 (body %s)", w.Code, w.Body.String())
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", st.Canceled)
	}
	// The fleet's single worker must have released the canceled kernel and
	// be able to serve a fresh request.
	w2 := do(s, http.MethodPost, "/v1/run", smallReq)
	if w2.Code != http.StatusOK {
		t.Errorf("request after cancellation: status %d, body %s", w2.Code, w2.Body.String())
	}
}

// TestTimeoutMsExcludedFromCacheKey: wall-clock patience is not a simulation
// parameter, so a cached result satisfies even an impossibly impatient
// replay of the same request.
func TestTimeoutMsExcludedFromCacheKey(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(s, http.MethodPost, "/v1/run", smallReq)
	if w.Code != http.StatusOK {
		t.Fatalf("warm request: status %d", w.Code)
	}
	impatient := `{"app":"fft2d","n":64,"threads":2,"nodes":4,"protocol":{"iterations":2},"timeout_ms":1}`
	w2 := do(s, http.MethodPost, "/v1/run", impatient)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Sage-Cache") != "hit" {
		t.Errorf("timeout_ms changed the cache key: status %d, X-Sage-Cache %q", w2.Code, w2.Header().Get("X-Sage-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached bytes differ under timeout_ms")
	}
}

// TestShardsExcludedFromCacheKey: sharding spends host cores, never changes
// response bytes, so (a) requests differing only in shards share a cache
// entry, and (b) a cold sharded execution produces byte-identical output to
// the sequential one.
func TestShardsExcludedFromCacheKey(t *testing.T) {
	base := `{"app":"fft2d","n":64,"threads":4,"nodes":8,"platform":"Mercury","protocol":{"iterations":3}}`
	sharded := `{"app":"fft2d","n":64,"threads":4,"nodes":8,"platform":"Mercury","protocol":{"iterations":3},"shards":4}`

	s := newTestServer(t, Config{Workers: 1})
	w := do(s, http.MethodPost, "/v1/run", base)
	if w.Code != http.StatusOK {
		t.Fatalf("warm request: status %d (body %s)", w.Code, w.Body.String())
	}
	w2 := do(s, http.MethodPost, "/v1/run", sharded)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Sage-Cache") != "hit" {
		t.Errorf("shards changed the cache key: status %d, X-Sage-Cache %q", w2.Code, w2.Header().Get("X-Sage-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached bytes differ under shards")
	}

	// Cold sharded execution (fresh server, nothing cached) must produce the
	// exact bytes the sequential kernel produced above.
	s2 := newTestServer(t, Config{Workers: 1})
	w3 := do(s2, http.MethodPost, "/v1/run", sharded)
	if w3.Code != http.StatusOK || w3.Header().Get("X-Sage-Cache") == "hit" {
		t.Fatalf("cold sharded run: status %d, X-Sage-Cache %q", w3.Code, w3.Header().Get("X-Sage-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w3.Body.Bytes()) {
		t.Error("sharded execution changed response bytes")
	}

	if w := do(s, http.MethodPost, "/v1/run", `{"app":"fft2d","shards":-1}`); w.Code != http.StatusBadRequest {
		t.Errorf("negative shards: status %d, want 400", w.Code)
	}
}

// TestQueueShedding fills the single worker and the one queue slot with
// slow deadline-bounded requests, then asserts the next arrival is shed
// with 429 instead of piling up.
func TestQueueShedding(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := func(seed int) string {
		// Distinct seeds defeat the cache; timeout_ms bounds the test.
		return `{"app":"fft2d","n":256,"threads":4,"nodes":8,"seed":` +
			string(rune('0'+seed)) + `,"protocol":{"iterations":50000},"timeout_ms":400}`
	}
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = do(s, http.MethodPost, "/v1/run", slow(i)).Code
		}(i)
	}
	// Wait until one request occupies the worker and one sits in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.BusyWorkers == 1 && st.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never saturated: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	w := do(s, http.MethodPost, "/v1/run", slow(2))
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("saturated queue: status %d, want 429", w.Code)
	}
	if st := s.Stats(); st.ShedQueue != 1 {
		t.Errorf("shed_queue = %d, want 1", st.ShedQueue)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusGatewayTimeout && c != http.StatusOK {
			t.Errorf("slow request %d: status %d, want 504 or 200", i, c)
		}
	}
}

// TestRateShedding: with a one-token bucket the second fresh request inside
// the same second is rejected 429. Cache hits bypass admission entirely.
func TestRateShedding(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RatePerSec: 0.0001, Burst: 1})
	w := do(s, http.MethodPost, "/v1/run", smallReq)
	if w.Code != http.StatusOK {
		t.Fatalf("first request: status %d", w.Code)
	}
	other := `{"app":"cornerturn","n":64,"threads":2,"nodes":4,"protocol":{"iterations":1}}`
	if w := do(s, http.MethodPost, "/v1/run", other); w.Code != http.StatusTooManyRequests {
		t.Errorf("second fresh request: status %d, want 429", w.Code)
	}
	if st := s.Stats(); st.ShedRate != 1 {
		t.Errorf("shed_rate = %d, want 1", st.ShedRate)
	}
	// The cached first request is still served: no token needed.
	if w := do(s, http.MethodPost, "/v1/run", smallReq); w.Code != http.StatusOK || w.Header().Get("X-Sage-Cache") != "hit" {
		t.Errorf("cache hit was rate-limited: status %d", w.Code)
	}
}

func TestShutdownRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	if w := do(s, http.MethodPost, "/v1/run", smallReq); w.Code != http.StatusOK {
		t.Fatalf("pre-shutdown request: status %d", w.Code)
	}
	s.Shutdown()
	if w := do(s, http.MethodPost, "/v1/run", smallReq); w.Code != http.StatusOK && w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown: status %d, want 200 (cache) or 503", w.Code)
	}
	// A fresh (uncached) request cannot be executed by a stopped fleet.
	fresh := `{"app":"cornerturn","n":128,"threads":2,"nodes":4,"protocol":{"iterations":1}}`
	if w := do(s, http.MethodPost, "/v1/run", fresh); w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown fresh run: status %d, want 503", w.Code)
	}
	s.Shutdown() // idempotent
}

func TestCacheEviction(t *testing.T) {
	c := newRespCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be present")
	}
	entries, _, _, evictions := c.counters()
	if entries != 2 || evictions != 1 {
		t.Errorf("entries=%d evictions=%d, want 2 and 1", entries, evictions)
	}
}
