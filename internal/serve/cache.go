package serve

import "sync"

// respCache is the content-addressed response cache: canonical request hash
// -> the exact bytes a fresh execution produced. Entries are immutable, so a
// hit can hand out the stored slice without copying, and cached and fresh
// responses are byte-identical by construction. Bounded by entry count with
// least-recently-used eviction (logical-clock stamps, linear min scan — the
// map stays small enough that a heap would be ceremony).
type respCache struct {
	mu   sync.Mutex
	max  int
	tick uint64
	m    map[string]*cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	body []byte
	used uint64
}

func newRespCache(max int) *respCache {
	return &respCache{max: max, m: make(map[string]*cacheEntry)}
}

// get returns the cached bytes for key, refreshing its LRU stamp.
func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.tick++
	e.used = c.tick
	c.hits++
	return e.body, true
}

// put stores body under key, evicting least-recently-used entries to stay
// within the bound. The caller must not mutate body afterwards.
func (c *respCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return // a concurrent worker published the identical bytes first
	}
	for len(c.m) >= c.max {
		var oldKey string
		var oldUsed uint64
		first := true
		for k, e := range c.m {
			if first || e.used < oldUsed {
				oldKey, oldUsed, first = k, e.used, false
			}
		}
		delete(c.m, oldKey)
		c.evictions++
	}
	c.tick++
	c.m[key] = &cacheEntry{body: body, used: c.tick}
}

// cacheCounters is a consistent snapshot for /v1/stats.
func (c *respCache) counters() (entries int, hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m), c.hits, c.misses, c.evictions
}
