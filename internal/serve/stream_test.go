package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

const streamReq = `{"app":"fft2d","n":32,"threads":2,"nodes":4,"seed":7,"protocol":{"stream":{"classes":[
{"name":"interactive","process":"poisson","rate":400,"frames":20,"slo_ms":20},
{"name":"batch","process":"gamma","rate":100,"shape":4,"frames":5,"weight":2}]}}}`

// TestStreamRunEndpoint: a streaming request executes, carries the SLO
// report, and repeated requests hit the cache byte-identically.
func TestStreamRunEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	w := do(s, http.MethodPost, "/v1/run", streamReq)
	if w.Code != http.StatusOK {
		t.Fatalf("stream run: status %d, body %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Sage-Cache"); got != "miss" {
		t.Errorf("fresh stream run: X-Sage-Cache = %q, want miss", got)
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("streaming response has no stream report")
	}
	if err := resp.Stream.Validate(); err != nil {
		t.Fatalf("stream report invalid: %v", err)
	}
	if resp.Stream.Offered != 25 || resp.Stream.Completed != 25 {
		t.Errorf("offered %d completed %d, want 25/25", resp.Stream.Offered, resp.Stream.Completed)
	}
	if len(resp.Stream.Classes) != 2 {
		t.Errorf("got %d class reports, want 2", len(resp.Stream.Classes))
	}
	if resp.ElapsedNs <= 0 || resp.PeriodNs <= 0 || resp.AvgLatencyNs <= 0 {
		t.Errorf("stream response missing timing: %+v", resp)
	}
	if resp.Iterations != 0 {
		t.Errorf("stream response reports batch iterations %d", resp.Iterations)
	}
	if len(resp.NodeStats) != 4 {
		t.Errorf("got %d node stats, want 4", len(resp.NodeStats))
	}

	w2 := do(s, http.MethodPost, "/v1/run", streamReq)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Sage-Cache") != "hit" {
		t.Fatalf("repeat stream run: status %d, cache %q", w2.Code, w2.Header().Get("X-Sage-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached stream response not byte-identical")
	}
}

// TestStreamStatsCounters: /v1/stats reflects executed streaming work —
// run count, frame totals, and the worker-depth gauge vector.
func TestStreamStatsCounters(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if w := do(s, http.MethodPost, "/v1/run", streamReq); w.Code != http.StatusOK {
		t.Fatalf("stream run: status %d, body %s", w.Code, w.Body.String())
	}
	st := s.Stats()
	if st.StreamRuns != 1 {
		t.Errorf("stream_runs = %d, want 1", st.StreamRuns)
	}
	if st.StreamAdmitted != 25 {
		t.Errorf("stream_frames_admitted = %d, want 25", st.StreamAdmitted)
	}
	if st.ActiveStreams != 0 {
		t.Errorf("active_streams = %d after completion, want 0", st.ActiveStreams)
	}
	if len(st.WorkerDepths) != 2 {
		t.Fatalf("got %d worker depth gauges, want 2", len(st.WorkerDepths))
	}
	for i, d := range st.WorkerDepths {
		if d != 0 {
			t.Errorf("worker %d depth = %d while idle, want 0", i, d)
		}
	}
	// Cache hits execute nothing, so the counters must not move.
	if w := do(s, http.MethodPost, "/v1/run", streamReq); w.Header().Get("X-Sage-Cache") != "hit" {
		t.Fatalf("expected cache hit, got %q", w.Header().Get("X-Sage-Cache"))
	}
	if st2 := s.Stats(); st2.StreamRuns != 1 || st2.StreamAdmitted != 25 {
		t.Errorf("cache hit moved stream counters: %+v", st2)
	}
}

// TestStreamWithRemapAndFaults: the full streaming feature set through the
// HTTP front end — fault plan plus remap policy — produces remap events.
func TestStreamWithRemapAndFaults(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := map[string]any{
		"app": "fft2d", "n": 32, "threads": 2, "nodes": 4, "seed": 11,
		"faults": "seed 3\nstall node=1 at=2ms for=2ms\nstall node=1 at=7ms for=2ms\nstall node=1 at=12ms for=2ms\nstall node=1 at=17ms for=2ms\nstall node=1 at=22ms for=2ms\nstall node=1 at=27ms for=2ms\nstall node=1 at=32ms for=2ms\nstall node=1 at=37ms for=2ms\nstall node=1 at=42ms for=2ms\nstall node=1 at=47ms for=2ms\nstall node=1 at=52ms for=2ms\nstall node=1 at=57ms for=2ms\nstall node=1 at=62ms for=2ms\nstall node=1 at=67ms for=2ms\nstall node=1 at=72ms for=2ms\n",
		"protocol": map[string]any{"stream": map[string]any{
			"classes": []map[string]any{
				{"name": "interactive", "process": "poisson", "rate": 700, "frames": 40, "slo_ms": 5},
				{"name": "batch", "process": "gamma", "rate": 150, "shape": 4, "frames": 10, "weight": 2},
			},
			"remap": map[string]any{"max_remaps": 1},
		}},
	}
	b, _ := json.Marshal(req)
	w := do(s, http.MethodPost, "/v1/run", string(b))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil || len(resp.Stream.Remaps) == 0 {
		t.Fatal("remap-enabled stream run reported no remap events")
	}
	if resp.Stream.Remaps[0].Trigger != 1 {
		t.Errorf("remap triggered on node %d, want 1", resp.Stream.Remaps[0].Trigger)
	}
	if resp.FaultSummary == "" {
		t.Error("fault plan supplied but no fault summary")
	}
}

// TestStreamRequestValidation covers the stream-specific 400s.
func TestStreamRequestValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"no classes", `{"app":"fft2d","protocol":{"stream":{"classes":[]}}}`},
		{"bad class", `{"app":"fft2d","protocol":{"stream":{"classes":[{"name":"x","process":"cauchy","rate":1,"frames":1}]}}}`},
		{"iterations", `{"app":"fft2d","protocol":{"iterations":5,"stream":{"classes":[{"name":"x","process":"poisson","rate":1,"frames":1}]}}}`},
		{"repetitions", `{"app":"fft2d","protocol":{"repetitions":2,"stream":{"classes":[{"name":"x","process":"poisson","rate":1,"frames":1}]}}}`},
		{"sequential", `{"app":"fft2d","protocol":{"sequential":true,"stream":{"classes":[{"name":"x","process":"poisson","rate":1,"frames":1}]}}}`},
		{"estimate", `{"app":"fft2d","estimate":true,"protocol":{"stream":{"classes":[{"name":"x","process":"poisson","rate":1,"frames":1}]}}}`},
		{"negative slots", `{"app":"fft2d","protocol":{"stream":{"buffer_slots":-1,"classes":[{"name":"x","process":"poisson","rate":1,"frames":1}]}}}`},
	}
	for _, tc := range cases {
		w := do(s, http.MethodPost, "/v1/run", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
	}
}
