// Package serve is the SAGE daemon: a persistent HTTP front end over the
// model -> mapping -> gluegen -> simulate pipeline, designed to stay up for
// weeks. Long-lived-process discipline shapes everything here:
//
//   - a bounded worker fleet executes requests (no per-request goroutine
//     fan-out beyond the experiments pool, which is itself bounded);
//   - admission control sheds load early — a token bucket for sustained
//     rate, a bounded queue for bursts — with HTTP 429, instead of letting
//     latency and memory grow without bound;
//   - per-request deadlines ride the kernel's cancellation poll
//     (sagert.Options.Cancel) and the Kernel.Shutdown mid-run-abort
//     contract, so an abandoned request releases its parked process
//     goroutines instead of leaking them;
//   - a content-addressed response cache (sha256 of the canonical request)
//     returns the exact bytes a fresh run would produce — the simulator is
//     deterministic, so caching is exact, and the cache is LRU-bounded.
//
// Endpoints: POST /v1/run executes or serves a cached simulation;
// GET /v1/health is a liveness probe; GET /v1/stats reports queue depth,
// cache hit rates, worker occupancy and runtime-internal cache sizes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isspl"
	"repro/internal/sagert"
)

// Config sizes the daemon; zero values select the documented defaults.
type Config struct {
	// Workers is the size of the simulation worker fleet
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond those already
	// running; an arrival past the bound is shed with 429 (default 64).
	QueueDepth int
	// RatePerSec is the sustained admission rate of the token bucket;
	// 0 disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity (default: ceil(RatePerSec), min 1).
	Burst int
	// Deadline is the per-request wall-clock budget; a request exceeding it
	// is canceled mid-run and answered 504. 0 means no deadline. A request
	// may lower (never raise) it with timeout_ms.
	Deadline time.Duration
	// CacheEntries bounds the response cache (default 1024; negative
	// disables caching).
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.RatePerSec > 0 && c.Burst <= 0 {
		c.Burst = int(c.RatePerSec + 0.999)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	return c
}

// job is one admitted request travelling to the worker fleet and back.
type job struct {
	ctx  context.Context
	req  *Request
	done chan jobResult
}

type jobResult struct {
	body []byte // encoded Response on success
	err  error
}

// Stats is the /v1/stats body. Wall-clock and occupancy numbers are
// snapshots; counters are monotone since process start.
type Stats struct {
	Workers     int    `json:"workers"`
	BusyWorkers int64  `json:"busy_workers"`
	QueueDepth  int    `json:"queue_depth"`
	QueueCap    int    `json:"queue_cap"`
	Requests    uint64 `json:"requests"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	Estimates   uint64 `json:"estimates"`
	ShedRate    uint64 `json:"shed_rate"`
	ShedQueue   uint64 `json:"shed_queue"`
	// Streaming-workload counters: streams currently executing, and the
	// frame totals accumulated across completed streaming runs (cache hits
	// execute nothing, so they leave these untouched).
	ActiveStreams      int64  `json:"active_streams"`
	StreamRuns         uint64 `json:"stream_runs"`
	StreamAdmitted     uint64 `json:"stream_frames_admitted"`
	StreamShed         uint64 `json:"stream_frames_shed"`
	StreamSLOViolation uint64 `json:"stream_slo_violations"`
	// WorkerDepths is one gauge per worker: 0 idle, 1 running a batch
	// request, 1+backlog while running a streaming request (the live
	// admission-queue depth of the stream it is executing).
	WorkerDepths   []int64          `json:"worker_depths"`
	CacheEntries   int              `json:"cache_entries"`
	CacheHits      uint64           `json:"cache_hits"`
	CacheMisses    uint64           `json:"cache_misses"`
	CacheEvictions uint64           `json:"cache_evictions"`
	TwiddleCache   isspl.CacheStats `json:"twiddle_cache"`
	Goroutines     int              `json:"goroutines"`
}

// Server is the daemon. It implements http.Handler; wire it into an
// http.Server (or call ServeHTTP directly in tests) and call Shutdown when
// done — after Shutdown returns, every worker goroutine has exited.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job
	cache *respCache

	closed   chan struct{}
	shutdown sync.Once
	wg       sync.WaitGroup

	bucketMu   sync.Mutex
	tokens     float64
	lastRefill time.Time

	requests, completed, failed, canceled atomic.Uint64
	shedRate, shedQueue, estimates        atomic.Uint64
	busy                                  atomic.Int64

	activeStreams                          atomic.Int64
	streamRuns, streamAdmitted, streamShed atomic.Uint64
	streamLate                             atomic.Uint64
	workerDepths                           []atomic.Int64
}

// New builds a Server and starts its worker fleet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		queue:      make(chan *job, cfg.QueueDepth),
		cache:      newRespCache(cfg.CacheEntries),
		closed:     make(chan struct{}),
		tokens:     float64(cfg.Burst),
		lastRefill: time.Now(),
	}
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/health", s.handleHealth)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.workerDepths = make([]atomic.Int64, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops the worker fleet and blocks until every worker goroutine
// has exited. Requests already running finish (or hit their deadline);
// requests still queued — and new arrivals — are answered 503. Idempotent.
func (s *Server) Shutdown() {
	s.shutdown.Do(func() { close(s.closed) })
	s.wg.Wait()
}

// worker is one member of the bounded fleet: it owns at most one simulation
// at a time, so total concurrent kernels never exceed Config.Workers. Each
// worker publishes a depth gauge: 1 while running a batch request, 1 plus
// the stream's live admission backlog while running a streaming one.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	depth := &s.workerDepths[id]
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			s.busy.Add(1)
			depth.Store(1)
			isStream := j.req.Protocol.Stream != nil
			if isStream {
				s.activeStreams.Add(1)
			}
			resp, err := execute(j.ctx, j.req, func(backlog int) {
				depth.Store(int64(1 + backlog))
			})
			var res jobResult
			if err != nil {
				res.err = err
			} else {
				res.body, res.err = encodeBody(resp)
			}
			if isStream {
				s.activeStreams.Add(-1)
				if err == nil && resp.Stream != nil {
					s.streamRuns.Add(1)
					s.streamAdmitted.Add(uint64(resp.Stream.Admitted))
					s.streamShed.Add(uint64(resp.Stream.Shed))
					s.streamLate.Add(uint64(resp.Stream.Late))
				}
			}
			depth.Store(0)
			s.busy.Add(-1)
			j.done <- res
		}
	}
}

// encodeBody renders the canonical response bytes — the unit the cache
// stores, so hits and fresh runs are identical down to the trailing newline.
func encodeBody(resp *Response) ([]byte, error) {
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encode response: %w", err)
	}
	return append(b, '\n'), nil
}

// admit consumes one token from the rate bucket, refilling it by elapsed
// wall time first. Cache hits never reach here: answering from memory is
// cheaper than the bookkeeping that would shed it.
func (s *Server) admit() bool {
	if s.cfg.RatePerSec <= 0 {
		return true
	}
	s.bucketMu.Lock()
	defer s.bucketMu.Unlock()
	now := time.Now()
	s.tokens += now.Sub(s.lastRefill).Seconds() * s.cfg.RatePerSec
	if max := float64(s.cfg.Burst); s.tokens > max {
		s.tokens = max
	}
	s.lastRefill = now
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.requests.Add(1)

	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.cacheKey()
	if body, ok := s.cache.get(key); ok {
		writeBody(w, body, "hit")
		return
	}

	if req.Estimate {
		// Estimates are answered inline by the analytical twin: closed-form
		// arithmetic, microseconds of work — they never consume a worker
		// slot, a queue position or a rate token, and they keep working
		// after Shutdown has drained the fleet.
		resp, err := executeEstimate(&req)
		if err != nil {
			s.writeRunError(w, r.Context(), err)
			return
		}
		body, err := encodeBody(resp)
		if err != nil {
			s.failed.Add(1)
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.estimates.Add(1)
		s.completed.Add(1)
		s.cache.put(key, body)
		writeBody(w, body, "miss")
		return
	}

	if !s.admit() {
		s.shedRate.Add(1)
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded, retry later")
		return
	}

	ctx := r.Context()
	deadline := s.cfg.Deadline
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; deadline == 0 || d < deadline {
			deadline = d
		}
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	j := &job{ctx: ctx, req: &req, done: make(chan jobResult, 1)}
	select {
	case <-s.closed:
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case s.queue <- j:
	default:
		s.shedQueue.Add(1)
		writeError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	}

	select {
	case <-s.closed:
		// The job may still be queued; no worker will pick it up.
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case res := <-j.done:
		if res.err != nil {
			s.writeRunError(w, ctx, res.err)
			return
		}
		s.completed.Add(1)
		s.cache.put(key, res.body)
		writeBody(w, res.body, "miss")
	}
}

// writeRunError maps execution errors onto the status taxonomy: client
// mistakes 400, deadline aborts 504, everything else 500.
func (s *Server) writeRunError(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, errBadRequest):
		s.failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, sagert.ErrCanceled), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.canceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
	default:
		s.failed.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"queue_depth\":%d}\n", len(s.queue))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// Stats snapshots the daemon's counters (also used by tests and sage-load).
func (s *Server) Stats() Stats {
	entries, hits, misses, evictions := s.cache.counters()
	depths := make([]int64, len(s.workerDepths))
	for i := range s.workerDepths {
		depths[i] = s.workerDepths[i].Load()
	}
	return Stats{
		Workers:            s.cfg.Workers,
		BusyWorkers:        s.busy.Load(),
		QueueDepth:         len(s.queue),
		QueueCap:           s.cfg.QueueDepth,
		Requests:           s.requests.Load(),
		Completed:          s.completed.Load(),
		Failed:             s.failed.Load(),
		Canceled:           s.canceled.Load(),
		Estimates:          s.estimates.Load(),
		ShedRate:           s.shedRate.Load(),
		ShedQueue:          s.shedQueue.Load(),
		ActiveStreams:      s.activeStreams.Load(),
		StreamRuns:         s.streamRuns.Load(),
		StreamAdmitted:     s.streamAdmitted.Load(),
		StreamShed:         s.streamShed.Load(),
		StreamSLOViolation: s.streamLate.Load(),
		WorkerDepths:       depths,
		CacheEntries:       entries,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvictions:     evictions,
		TwiddleCache:       isspl.TwiddleCacheStats(),
		Goroutines:         runtime.NumGoroutine(),
	}
}

func writeBody(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sage-Cache", cache)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(b, '\n'))
}
