//go:build !race

package serve

// soakRequests is the request count for the long-lived-daemon soak test. The
// race detector multiplies per-request cost by an order of magnitude, so the
// race build (soak_race.go) runs a shorter — but otherwise identical — soak.
const soakRequests = 100_000
