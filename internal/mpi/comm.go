package mpi

import (
	"fmt"
	"sort"
)

// Comm is a sub-communicator: a subset of world ranks with a private rank
// numbering and tag space, split off the world like MPI_Comm_split. The 2D
// decompositions of signal-processing codes use these as row/column
// communicators.
//
// Every member must construct the communicator with the same member list
// and color; collectives then run entirely inside the group.
type Comm struct {
	under   *Rank
	members []int // sorted world ranks
	myIdx   int
	tagBase int
}

// maxComms bounds the per-world communicator colors so tag spaces stay
// disjoint: world collectives use [collTagBase, collTagBase+commTagSpan),
// color c uses the (c+1)-th span.
const (
	commTagSpan = 1 << 16
	maxComms    = 100
)

// Split creates the communicator of the given color containing exactly the
// listed world ranks (which must include this rank). All listed ranks must
// call Split with identical arguments, as in MPI.
func (r *Rank) Split(color int, members []int) (*Comm, error) {
	if color < 0 || color >= maxComms {
		return nil, fmt.Errorf("mpi: split color %d outside [0, %d)", color, maxComms)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("mpi: split with no members")
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	myIdx := -1
	for i, m := range sorted {
		if m < 0 || m >= r.Size() {
			return nil, fmt.Errorf("mpi: split member %d outside world of %d", m, r.Size())
		}
		if i > 0 && sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("mpi: split member %d duplicated", m)
		}
		if m == r.id {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in its own split member list %v", r.id, sorted)
	}
	return &Comm{
		under:   r,
		members: sorted,
		myIdx:   myIdx,
		tagBase: collTagBase + (color+1)*commTagSpan,
	}, nil
}

// Size reports the communicator's rank count.
func (c *Comm) Size() int { return len(c.members) }

// Rank reports this member's rank within the communicator.
func (c *Comm) Rank() int { return c.myIdx }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(i int) int { return c.members[i] }

func (c *Comm) checkRank(i int) {
	if i < 0 || i >= len(c.members) {
		panic(fmt.Sprintf("mpi: comm rank %d of %d", i, len(c.members)))
	}
}

// Send transmits to communicator rank dst with a tag below commTagSpan/2.
func (c *Comm) Send(dst, tag int, body Payload) {
	c.checkRank(dst)
	c.under.Send(c.members[dst], c.tagBase+tag, body)
}

// Recv receives from communicator rank src.
func (c *Comm) Recv(src, tag int) Payload {
	c.checkRank(src)
	return c.under.Recv(c.members[src], c.tagBase+tag)
}

// Sendrecv sends to dst and then receives from src.
func (c *Comm) Sendrecv(dst, sendTag int, body Payload, src, recvTag int) Payload {
	c.Send(dst, sendTag, body)
	return c.Recv(src, recvTag)
}

// collective builds the group's collCtx.
func (c *Comm) collective() *collCtx {
	return &collCtx{
		size: len(c.members),
		me:   c.myIdx,
		send: func(dst, tag int, body Payload) {
			c.under.Send(c.members[dst], c.tagBase+tag, body)
		},
		recv: func(src, tag int) Payload {
			return c.under.Recv(c.members[src], c.tagBase+tag)
		},
		memcpySelf: func(bytes int) {
			c.under.node.Memcpy(c.under.proc, bytes)
		},
	}
}

// Barrier synchronises the communicator's members.
func (c *Comm) Barrier() { barrierOn(c.collective()) }

// Bcast distributes root's payload within the communicator.
func (c *Comm) Bcast(root int, body Payload) Payload {
	c.checkRank(root)
	return bcastOn(c.collective(), root, body)
}

// Gather collects one payload per member at root (indexed by comm rank).
func (c *Comm) Gather(root int, body Payload) []Payload {
	c.checkRank(root)
	return gatherOn(c.collective(), root, body)
}

// Scatter distributes parts[i] from root to comm rank i.
func (c *Comm) Scatter(root int, parts []Payload) Payload {
	c.checkRank(root)
	return scatterOn(c.collective(), root, parts)
}

// Alltoall exchanges parts within the communicator.
func (c *Comm) Alltoall(parts []Payload, alg AlltoallAlgorithm) []Payload {
	return alltoallOn(c.collective(), parts, alg)
}

// Reduce combines every member's payload at root.
func (c *Comm) Reduce(root int, body Payload, op ReduceOp) Payload {
	c.checkRank(root)
	return reduceOn(c.collective(), root, body, op)
}

// Allreduce combines every member's payload on all members.
func (c *Comm) Allreduce(body Payload, op ReduceOp) Payload {
	return allreduceOn(c.collective(), body, op)
}
