package mpi

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/platforms"
	"repro/internal/sim"
	"repro/internal/trace"
)

// faultWorld builds an n-node CSPI world with a fault plan installed.
func faultWorld(t *testing.T, n int, plan *fault.Plan) (*sim.Kernel, *World) {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	m := machine.New(k, platforms.CSPI(), n)
	m.SetFaults(plan.NewInjector())
	return k, NewWorld(m)
}

func dropEverything() *fault.Plan {
	return fault.DropAll(1, 1) // rate 1: every attempt dropped
}

// TestSendSurvivesTotalDrop is the termination guarantee end to end: even
// with a 100% drop rate the retry protocol exhausts its attempt budget and
// forces the message through the maintenance path — the payload arrives, the
// run terminates, no deadlock.
func TestSendSurvivesTotalDrop(t *testing.T) {
	k, w := faultWorld(t, 2, dropEverything())
	w.SetRetry(fault.RetryPolicy{MaxAttempts: 3})
	var got []complex128
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, ComplexPayload([]complex128{5 + 6i}))
		} else {
			got = r.Recv(0, 7).Complex()
		}
	})
	run(t, k)
	if len(got) != 1 || got[0] != 5+6i {
		t.Fatalf("payload lost under total drop: %v", got)
	}
	if drops := w.Mach.Faults().Counts()["drop"]; drops != 3 {
		t.Fatalf("expected exactly MaxAttempts=3 drops before the forced path, got %d", drops)
	}
}

// TestRetryRecoversAndIsSlower: a faulted send must still deliver, later
// than the fault-free send, and the trace must carry the retry span.
func TestRetryRecoversAndIsSlower(t *testing.T) {
	arrival := func(plan *fault.Plan, col *trace.Collector) sim.Time {
		var k *sim.Kernel
		var w *World
		if plan == nil {
			k, w = world(2)
		} else {
			k, w = faultWorld(t, 2, plan)
		}
		w.Mach.SetTrace(col)
		var done sim.Time
		w.Launch("t", func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 1, Payload{Bytes: 10_000})
			} else {
				r.Recv(0, 1)
				done = r.Proc().Now()
			}
		})
		run(t, k)
		return done
	}
	clean := arrival(nil, nil)
	// A half-rate drop plan: with the default 24-attempt budget the send
	// always gets through on some attempt, strictly later than clean.
	col := trace.New("retry")
	faulted := arrival(fault.DropAll(3, 0.5), col)
	if faulted <= clean {
		t.Fatalf("faulted delivery (%v) not slower than clean (%v)", faulted, clean)
	}
	kinds := map[string]int{}
	for _, f := range col.Faults() {
		kinds[f.Kind] = f.Count
	}
	if kinds["drop"] == 0 || kinds["retry"] == 0 {
		t.Fatalf("trace missing drop/retry events: %v", kinds)
	}
}

// TestGiveupTracedOnForcedDelivery: exhausting the budget emits a giveup
// span.
func TestGiveupTracedOnForcedDelivery(t *testing.T) {
	k, w := faultWorld(t, 2, dropEverything())
	w.SetRetry(fault.RetryPolicy{MaxAttempts: 2})
	col := trace.New("giveup")
	w.Mach.SetTrace(col)
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, Empty())
		} else {
			r.Recv(0, 1)
		}
	})
	run(t, k)
	kinds := map[string]int{}
	for _, f := range col.Faults() {
		kinds[f.Kind] = f.Count
	}
	if kinds["giveup"] != 1 {
		t.Fatalf("want one giveup, got %v", kinds)
	}
}

// TestBackoffDelaysRetries: the retry loop must actually wait between
// attempts — the faulted delivery time includes the geometric backoff sleeps.
func TestBackoffDelaysRetries(t *testing.T) {
	k, w := faultWorld(t, 2, dropEverything())
	pol := fault.RetryPolicy{MaxAttempts: 4, Backoff: 100 * time.Microsecond, Multiplier: 2}.WithDefaults()
	w.SetRetry(pol)
	var done sim.Time
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, Empty())
		} else {
			r.Recv(0, 1)
			done = r.Proc().Now()
		}
	})
	run(t, k)
	// Three backoffs happen before the forced fourth+1 path: 100+200+400us.
	minBackoff := sim.Time(700 * time.Microsecond)
	if done < minBackoff {
		t.Fatalf("delivery at %v, want at least %v of backoff", done, minBackoff)
	}
}

// TestRecvTimeoutExpires: with no sender, a timed receive returns ok=false
// after exactly the timeout, and the rank can keep working.
func TestRecvTimeoutExpires(t *testing.T) {
	k, w := world(2)
	var ok bool
	var at sim.Time
	w.Launch("t", func(r *Rank) {
		if r.ID() == 1 {
			_, ok = r.RecvTimeout(0, 7, 300*time.Microsecond)
			at = r.Proc().Now()
		}
	})
	run(t, k)
	if ok {
		t.Fatal("timed receive matched a message nobody sent")
	}
	if at != sim.Time(300*time.Microsecond) {
		t.Fatalf("timeout fired at %v, want 300us", at)
	}
}

// TestRecvTimeoutMatchesEarlyMessage: a message arriving before the deadline
// is returned with ok=true, and a pending message matches instantly.
func TestRecvTimeoutMatchesEarlyMessage(t *testing.T) {
	k, w := world(2)
	var ok, ok2 bool
	var got Payload
	w.Launch("t", func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, Float64Payload([]float64{42}))
		case 1:
			got, ok = r.RecvTimeout(0, 7, time.Second)
			// Nothing more is coming: a second timed receive must expire.
			_, ok2 = r.RecvTimeout(0, 7, 100*time.Microsecond)
		}
	})
	run(t, k)
	if !ok || got.Data.([]float64)[0] != 42 {
		t.Fatalf("timed receive missed the message: ok=%v got=%+v", ok, got)
	}
	if ok2 {
		t.Fatal("second timed receive matched a phantom message")
	}
}

// TestRecvTimeoutThenLateArrival: a message that arrives after the waiter
// timed out must not be lost — it lands in the pending set and satisfies the
// next receive.
func TestRecvTimeoutThenLateArrival(t *testing.T) {
	k, w := world(2)
	var firstOK bool
	var second Payload
	w.Launch("t", func(r *Rank) {
		switch r.ID() {
		case 0:
			// Sleep past the receiver's first deadline, then send.
			r.Proc().Sleep(500 * time.Microsecond)
			r.Send(1, 7, Float64Payload([]float64{7}))
		case 1:
			_, firstOK = r.RecvTimeout(0, 7, 100*time.Microsecond)
			second = r.Recv(0, 7)
		}
	})
	run(t, k)
	if firstOK {
		t.Fatal("first receive should have timed out")
	}
	if second.Data.([]float64)[0] != 7 {
		t.Fatalf("late message lost: %+v", second)
	}
}

// TestFaultFreeSendUnchanged: without an injector the resilient path is never
// taken — timing is identical to the pre-fault-subsystem behaviour.
func TestFaultFreeSendUnchanged(t *testing.T) {
	timing := func(setRetry bool) sim.Time {
		k, w := world(2)
		if setRetry {
			w.SetRetry(fault.DefaultRetry())
		}
		var done sim.Time
		w.Launch("t", func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 1, Payload{Bytes: 64_000})
			} else {
				r.Recv(0, 1)
				done = r.Proc().Now()
			}
		})
		run(t, k)
		return done
	}
	if a, b := timing(false), timing(true); a != b {
		t.Fatalf("retry policy changed fault-free timing: %v vs %v", a, b)
	}
}
