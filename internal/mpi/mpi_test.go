package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/platforms"
	"repro/internal/sim"
)

// world builds an n-node CSPI world on a fresh kernel.
func world(n int) (*sim.Kernel, *World) {
	k := sim.NewKernel()
	m := machine.New(k, platforms.CSPI(), n)
	return k, NewWorld(m)
}

func run(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	k, w := world(2)
	var got []complex128
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, ComplexPayload([]complex128{1 + 2i, 3 + 4i}))
		} else {
			got = r.Recv(0, 7).Complex()
		}
	})
	run(t, k)
	if len(got) != 2 || got[0] != 1+2i || got[1] != 3+4i {
		t.Fatalf("got %v", got)
	}
}

func TestSendChargesVirtualTime(t *testing.T) {
	k, w := world(2)
	var sendDone, recvDone sim.Time
	const nBytes = 160000 // 1 ms at 160 MB/s inter-board... nodes 0,1 share a board
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, Payload{Bytes: nBytes})
			sendDone = r.Proc().Now()
		} else {
			r.Recv(0, 1)
			recvDone = r.Proc().Now()
		}
	})
	run(t, k)
	if sendDone == 0 {
		t.Fatal("send finished at t=0: no time charged")
	}
	if recvDone <= sendDone {
		t.Fatalf("recv (%v) should complete after send (%v): latency + recv overhead", recvDone, sendDone)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	k, w := world(2)
	var first, second int
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 100, Payload{Data: 100})
			r.Send(1, 200, Payload{Data: 200})
		} else {
			// Receive in the opposite order of sending.
			second = r.Recv(0, 200).Data.(int)
			first = r.Recv(0, 100).Data.(int)
		}
	})
	run(t, k)
	if first != 100 || second != 200 {
		t.Fatalf("first=%d second=%d", first, second)
	}
}

func TestSameTagFIFOOrder(t *testing.T) {
	k, w := world(2)
	var got []int
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 3, Payload{Bytes: 8, Data: i})
			}
		} else {
			for i := 0; i < 5; i++ {
				got = append(got, r.Recv(0, 3).Data.(int))
			}
		}
	})
	run(t, k)
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order same-tag delivery: %v", got)
		}
	}
}

func TestMultipleThreadsPerRank(t *testing.T) {
	// Two simulated threads attached to the same rank receive
	// independently via distinct tags.
	k, w := world(2)
	results := make(map[int]int)
	w.Launch("main", func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 10, Payload{Data: 10})
			r.Send(1, 11, Payload{Data: 11})
		}
	})
	for tid := 10; tid <= 11; tid++ {
		tid := tid
		k.Spawn(fmt.Sprintf("thread%d", tid), func(p *sim.Proc) {
			r := w.Attach(1, p)
			results[tid] = r.Recv(0, tid).Data.(int)
		})
	}
	run(t, k)
	if results[10] != 10 || results[11] != 11 {
		t.Fatalf("results = %v", results)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			k, w := world(n)
			release := make([]sim.Time, n)
			arrive := make([]sim.Time, n)
			w.Launch("t", func(r *Rank) {
				r.Proc().Sleep(sim.Duration(r.ID()+1) * 1000000) // 1..n ms
				arrive[r.ID()] = r.Proc().Now()
				r.Barrier()
				release[r.ID()] = r.Proc().Now()
			})
			run(t, k)
			latest := arrive[n-1]
			for i, rel := range release {
				if rel < latest {
					t.Fatalf("rank %d released at %v before last arrival %v", i, rel, latest)
				}
			}
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				k, w := world(n)
				got := make([]int, n)
				w.Launch("t", func(r *Rank) {
					var body Payload
					if r.ID() == root {
						body = Payload{Bytes: 8, Data: 42}
					}
					got[r.ID()] = r.Bcast(root, body).Data.(int)
				})
				run(t, k)
				for i, v := range got {
					if v != 42 {
						t.Fatalf("rank %d got %d", i, v)
					}
				}
			})
		}
	}
}

func TestGatherCollectsInSourceOrder(t *testing.T) {
	k, w := world(4)
	var got []Payload
	w.Launch("t", func(r *Rank) {
		res := r.Gather(2, Payload{Bytes: 8, Data: r.ID() * 10})
		if r.ID() == 2 {
			got = res
		}
	})
	run(t, k)
	if got == nil {
		t.Fatal("root got nil")
	}
	for i, p := range got {
		if p.Data.(int) != i*10 {
			t.Fatalf("slot %d = %v", i, p.Data)
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	k, w := world(4)
	got := make([]int, 4)
	w.Launch("t", func(r *Rank) {
		var parts []Payload
		if r.ID() == 1 {
			for i := 0; i < 4; i++ {
				parts = append(parts, Payload{Bytes: 8, Data: i + 100})
			}
		}
		got[r.ID()] = r.Scatter(1, parts).Data.(int)
	})
	run(t, k)
	for i, v := range got {
		if v != i+100 {
			t.Fatalf("rank %d got %d", i, v)
		}
	}
}

// checkAlltoall verifies the exchange semantics for a given algorithm and
// world size: rank s sends value s*1000+d to rank d.
func checkAlltoall(t *testing.T, alg AlltoallAlgorithm, n int) {
	t.Helper()
	k, w := world(n)
	results := make([][]Payload, n)
	w.Launch("t", func(r *Rank) {
		parts := make([]Payload, n)
		for d := 0; d < n; d++ {
			parts[d] = Payload{Bytes: 64, Data: r.ID()*1000 + d}
		}
		results[r.ID()] = r.Alltoall(parts, alg)
	})
	run(t, k)
	for d := 0; d < n; d++ {
		if len(results[d]) != n {
			t.Fatalf("rank %d result size %d", d, len(results[d]))
		}
		for s := 0; s < n; s++ {
			want := s*1000 + d
			if got := results[d][s].Data.(int); got != want {
				t.Fatalf("alg=%s n=%d: rank %d slot %d = %d, want %d", alg, n, d, s, got, want)
			}
		}
	}
}

func TestAlltoallAllAlgorithmsAllSizes(t *testing.T) {
	for _, alg := range []AlltoallAlgorithm{AlltoallDirect, AlltoallPairwise, AlltoallBruck} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
			alg, n := alg, n
			t.Run(fmt.Sprintf("%s/n=%d", alg, n), func(t *testing.T) {
				checkAlltoall(t, alg, n)
			})
		}
	}
}

func TestAlltoallAlgorithmsAgreeProperty(t *testing.T) {
	// Property: all three algorithms produce identical exchanges for
	// arbitrary payload contents.
	check := func(seed int64, sizeRaw uint8) bool {
		n := 2 + int(sizeRaw%7) // 2..8
		rng := rand.New(rand.NewSource(seed))
		data := make([][]int, n)
		for s := range data {
			data[s] = make([]int, n)
			for d := range data[s] {
				data[s][d] = rng.Int()
			}
		}
		var outputs [3][][]Payload
		for ai, alg := range []AlltoallAlgorithm{AlltoallDirect, AlltoallPairwise, AlltoallBruck} {
			k, w := world(n)
			results := make([][]Payload, n)
			w.Launch("t", func(r *Rank) {
				parts := make([]Payload, n)
				for d := 0; d < n; d++ {
					parts[d] = Payload{Bytes: 8, Data: data[r.ID()][d]}
				}
				results[r.ID()] = r.Alltoall(parts, alg)
			})
			if err := k.Run(); err != nil {
				return false
			}
			outputs[ai] = results
		}
		for d := 0; d < n; d++ {
			for s := 0; s < n; s++ {
				v := outputs[0][d][s].Data.(int)
				if outputs[1][d][s].Data.(int) != v || outputs[2][d][s].Data.(int) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBruckFewerMessagesThanDirect(t *testing.T) {
	// Bruck should send O(log n) messages per rank vs n-1 for direct.
	count := func(alg AlltoallAlgorithm) int {
		k, w := world(8)
		w.Launch("t", func(r *Rank) {
			parts := make([]Payload, 8)
			for d := range parts {
				parts[d] = Payload{Bytes: 1024}
			}
			r.Alltoall(parts, alg)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Mach.Node(0).MsgsSent
	}
	direct := count(AlltoallDirect)
	bruck := count(AlltoallBruck)
	if bruck >= direct {
		t.Fatalf("bruck sent %d msgs, direct %d; want fewer", bruck, direct)
	}
}

func TestAlltoallDeterministicTiming(t *testing.T) {
	elapsed := func() sim.Time {
		k, w := world(8)
		w.Launch("t", func(r *Rank) {
			parts := make([]Payload, 8)
			for d := range parts {
				parts[d] = Payload{Bytes: 128 * 1024}
			}
			r.Alltoall(parts, AlltoallPairwise)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	a, b := elapsed(), elapsed()
	if a != b {
		t.Fatalf("nondeterministic timing: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("alltoall took zero virtual time")
	}
}

func TestAlgorithmFor(t *testing.T) {
	cases := map[string]AlltoallAlgorithm{
		"direct":   AlltoallDirect,
		"pairwise": AlltoallPairwise,
		"bruck":    AlltoallBruck,
		"":         AlltoallPairwise,
		"bogus":    AlltoallPairwise,
	}
	for in, want := range cases {
		if got := AlgorithmFor(in); got != want {
			t.Errorf("AlgorithmFor(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	k, w := world(2)
	panicked := false
	w.Launch("t", func(r *Rank) {
		if r.ID() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			r.Send(5, 0, Empty())
		}
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("send to invalid rank did not panic")
	}
}

func TestPayloadHelpers(t *testing.T) {
	c := ComplexPayload(make([]complex128, 10))
	if c.Bytes != 80 {
		t.Fatalf("complex payload bytes = %d, want 80 (single precision wire)", c.Bytes)
	}
	f := Float64Payload(make([]float64, 10))
	if f.Bytes != 40 {
		t.Fatalf("float payload bytes = %d, want 40", f.Bytes)
	}
	if Empty().Bytes != 0 {
		t.Fatal("empty payload has bytes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Complex() on wrong type did not panic")
		}
	}()
	_ = f.Complex()
}

func TestContentionSharedFabricSlowsTransfers(t *testing.T) {
	// With FabricConcurrency=1, two simultaneous inter-board transfers
	// must serialise; with a crossbar they overlap.
	elapsed := func(conc int) sim.Time {
		pl := platforms.CSPI()
		pl.FabricConcurrency = conc
		k := sim.NewKernel()
		m := machine.New(k, pl, 8)
		w := NewWorld(m)
		w.Launch("t", func(r *Rank) {
			// Ranks 0 and 1 (board 0) send to 4 and 5 (board 1).
			switch r.ID() {
			case 0:
				r.Send(4, 1, Payload{Bytes: 1 << 20})
			case 1:
				r.Send(5, 1, Payload{Bytes: 1 << 20})
			case 4:
				r.Recv(0, 1)
			case 5:
				r.Recv(1, 1)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	serial := elapsed(1)
	parallel := elapsed(0)
	if serial <= parallel {
		t.Fatalf("shared fabric (%v) not slower than crossbar (%v)", serial, parallel)
	}
}
