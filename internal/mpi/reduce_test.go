package mpi

import (
	"fmt"
	"testing"
)

func TestReduceSumComplexAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < n && root < 3; root++ {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				k, w := world(n)
				var got []complex128
				w.Launch("t", func(r *Rank) {
					v := []complex128{complex(float64(r.ID()), 0), complex(0, float64(r.ID()))}
					res := r.Reduce(root, ComplexPayload(v), SumComplex)
					if r.ID() == root {
						got = res.Complex()
					}
				})
				run(t, k)
				want := complex128(0)
				for i := 0; i < n; i++ {
					want += complex(float64(i), 0)
				}
				if got[0] != want || got[1] != complex(0, real(want)) {
					t.Fatalf("reduce = %v, want sum %v", got, want)
				}
			})
		}
	}
}

func TestAllreduceAllRanksAgree(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			k, w := world(n)
			results := make([][]complex128, n)
			w.Launch("t", func(r *Rank) {
				v := []complex128{complex(1, 0), complex(float64(r.ID()), 0)}
				results[r.ID()] = r.Allreduce(ComplexPayload(v), SumComplex).Complex()
			})
			run(t, k)
			wantSecond := 0.0
			for i := 0; i < n; i++ {
				wantSecond += float64(i)
			}
			for rank, res := range results {
				if real(res[0]) != float64(n) || real(res[1]) != wantSecond {
					t.Fatalf("rank %d allreduce = %v, want [%d %v]", rank, res, n, wantSecond)
				}
			}
		})
	}
}

func TestMaxFloat64Op(t *testing.T) {
	a := Payload{Bytes: 8, Data: []float64{1, 5}}
	b := Payload{Bytes: 8, Data: []float64{3, 2}}
	got := MaxFloat64(a, b).Data.([]float64)
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("max = %v", got)
	}
}

func TestReduceOpsHandleChargeOnly(t *testing.T) {
	// nil Data payloads (charge-only iterations) must combine sizes only.
	a := Payload{Bytes: 100}
	b := Payload{Bytes: 80, Data: []complex128{1}}
	if out := SumComplex(a, b); out.Bytes != 100 || out.Data != nil {
		t.Fatalf("SumComplex charge-only = %+v", out)
	}
	if out := MaxFloat64(a, Payload{Bytes: 120}); out.Bytes != 120 || out.Data != nil {
		t.Fatalf("MaxFloat64 charge-only = %+v", out)
	}
}

func TestReduceChargesTime(t *testing.T) {
	k, w := world(8)
	w.Launch("t", func(r *Rank) {
		r.Reduce(0, Payload{Bytes: 1 << 16}, SumComplex)
	})
	run(t, k)
	if k.Now() == 0 {
		t.Fatal("reduce took no virtual time")
	}
}
