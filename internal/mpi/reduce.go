package mpi

import "fmt"

// ReduceOp combines two payloads into one. Implementations must tolerate
// nil Data (charge-only iterations carry sizes without samples) by
// combining only the Bytes fields.
type ReduceOp func(a, b Payload) Payload

// SumComplex element-wise adds complex vectors (the canonical reduction of
// the signal-processing library, e.g. beam summation).
func SumComplex(a, b Payload) Payload {
	out := Payload{Bytes: maxInt(a.Bytes, b.Bytes)}
	if a.Data == nil || b.Data == nil {
		return out
	}
	av, bv := a.Complex(), b.Complex()
	if len(av) != len(bv) {
		panic(fmt.Sprintf("mpi: SumComplex length mismatch %d vs %d", len(av), len(bv)))
	}
	sum := make([]complex128, len(av))
	for i := range av {
		sum[i] = av[i] + bv[i]
	}
	out.Data = sum
	return out
}

// MaxFloat64 keeps the element-wise maximum of float64 vectors (detection
// across channels).
func MaxFloat64(a, b Payload) Payload {
	out := Payload{Bytes: maxInt(a.Bytes, b.Bytes)}
	if a.Data == nil || b.Data == nil {
		return out
	}
	av := a.Data.([]float64)
	bv := b.Data.([]float64)
	if len(av) != len(bv) {
		panic(fmt.Sprintf("mpi: MaxFloat64 length mismatch %d vs %d", len(av), len(bv)))
	}
	m := make([]float64, len(av))
	for i := range av {
		m[i] = av[i]
		if bv[i] > m[i] {
			m[i] = bv[i]
		}
	}
	out.Data = m
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
