package mpi

import (
	"fmt"
	"testing"
)

func TestSplitRowCommunicators(t *testing.T) {
	// 2x4 grid: two row communicators of 4 ranks; each row computes its own
	// allreduce sum, independently and concurrently.
	k, w := world(8)
	sums := make([]float64, 8)
	w.Launch("t", func(r *Rank) {
		row := r.ID() / 4
		members := []int{row * 4, row*4 + 1, row*4 + 2, row*4 + 3}
		comm, err := r.Split(row, members)
		if err != nil {
			t.Error(err)
			return
		}
		if comm.Size() != 4 || comm.Rank() != r.ID()%4 {
			t.Errorf("rank %d: comm size %d rank %d", r.ID(), comm.Size(), comm.Rank())
			return
		}
		v := []complex128{complex(float64(r.ID()), 0)}
		res := comm.Allreduce(ComplexPayload(v), SumComplex)
		sums[r.ID()] = real(res.Complex()[0])
	})
	run(t, k)
	// Row 0 sums ranks 0..3 = 6; row 1 sums 4..7 = 22.
	for i := 0; i < 4; i++ {
		if sums[i] != 6 {
			t.Fatalf("row 0 rank %d sum %v", i, sums[i])
		}
		if sums[4+i] != 22 {
			t.Fatalf("row 1 rank %d sum %v", 4+i, sums[4+i])
		}
	}
}

func TestCommPointToPointAndCollectives(t *testing.T) {
	// A communicator over a strided subset {1, 3, 5}: world ranks translate
	// through the member list.
	k, w := world(6)
	var gathered []Payload
	var bcasted [3]int
	w.Launch("t", func(r *Rank) {
		if r.ID()%2 == 0 {
			return // not a member
		}
		comm, err := r.Split(3, []int{1, 3, 5})
		if err != nil {
			t.Error(err)
			return
		}
		// Point-to-point inside the group: ring of comm ranks.
		next := (comm.Rank() + 1) % comm.Size()
		prev := (comm.Rank() + comm.Size() - 1) % comm.Size()
		got := comm.Sendrecv(next, 7, Payload{Bytes: 8, Data: comm.Rank()}, prev, 7)
		if got.Data.(int) != prev {
			t.Errorf("ring got %v want %d", got.Data, prev)
		}
		// Bcast from comm rank 1 (world rank 3).
		var body Payload
		if comm.Rank() == 1 {
			body = Payload{Bytes: 8, Data: 99}
		}
		bcasted[comm.Rank()] = comm.Bcast(1, body).Data.(int)
		// Gather at comm rank 0 (world rank 1).
		res := comm.Gather(0, Payload{Bytes: 8, Data: r.ID() * 10})
		if comm.Rank() == 0 {
			gathered = res
		}
	})
	run(t, k)
	for i, v := range bcasted {
		if v != 99 {
			t.Fatalf("bcast[%d] = %d", i, v)
		}
	}
	if len(gathered) != 3 {
		t.Fatalf("gathered = %v", gathered)
	}
	for i, worldRank := range []int{1, 3, 5} {
		if gathered[i].Data.(int) != worldRank*10 {
			t.Fatalf("gather slot %d = %v", i, gathered[i].Data)
		}
	}
}

func TestCommAlltoallMatchesWorldSemantics(t *testing.T) {
	k, w := world(8)
	results := make(map[int][]Payload)
	w.Launch("t", func(r *Rank) {
		if r.ID() >= 4 {
			return
		}
		comm, err := r.Split(0, []int{0, 1, 2, 3})
		if err != nil {
			t.Error(err)
			return
		}
		parts := make([]Payload, 4)
		for d := 0; d < 4; d++ {
			parts[d] = Payload{Bytes: 16, Data: r.ID()*100 + d}
		}
		results[r.ID()] = comm.Alltoall(parts, AlltoallBruck)
	})
	run(t, k)
	for d := 0; d < 4; d++ {
		for s := 0; s < 4; s++ {
			if got := results[d][s].Data.(int); got != s*100+d {
				t.Fatalf("comm alltoall [%d][%d] = %d", d, s, got)
			}
		}
	}
}

func TestConcurrentCommAndWorldTraffic(t *testing.T) {
	// Group collectives and world point-to-point traffic with overlapping
	// logical tags must not interfere (disjoint tag bases).
	k, w := world(4)
	var worldGot, commGot int
	w.Launch("t", func(r *Rank) {
		comm, err := r.Split(1, []int{0, 1, 2, 3})
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			r.Send(1, 7, Payload{Bytes: 8, Data: 1234}) // same tag number as comm ring below
		}
		got := comm.Sendrecv((comm.Rank()+1)%4, 7, Payload{Bytes: 8, Data: comm.Rank()}, (comm.Rank()+3)%4, 7)
		if r.ID() == 1 {
			commGot = got.Data.(int)
			worldGot = r.Recv(0, 7).Data.(int)
		}
	})
	run(t, k)
	if worldGot != 1234 || commGot != 0 {
		t.Fatalf("cross-talk: world=%d comm=%d", worldGot, commGot)
	}
}

func TestSplitValidation(t *testing.T) {
	k, w := world(4)
	w.Launch("t", func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		cases := map[string]func() (*Comm, error){
			"missing self": func() (*Comm, error) { return r.Split(0, []int{1, 2}) },
			"empty":        func() (*Comm, error) { return r.Split(0, nil) },
			"out of range": func() (*Comm, error) { return r.Split(0, []int{0, 9}) },
			"duplicate":    func() (*Comm, error) { return r.Split(0, []int{0, 0, 1}) },
			"bad color":    func() (*Comm, error) { return r.Split(-1, []int{0, 1}) },
			"color cap":    func() (*Comm, error) { return r.Split(maxComms, []int{0, 1}) },
		}
		for name, f := range cases {
			if _, err := f(); err == nil {
				t.Errorf("%s accepted", name)
			}
		}
	})
	run(t, k)
}

func TestCommBadRankPanics(t *testing.T) {
	k, w := world(2)
	panicked := false
	w.Launch("t", func(r *Rank) {
		comm, err := r.Split(0, []int{0, 1})
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			comm.Send(5, 0, Empty())
		}
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("bad comm rank accepted")
	}
}

func TestSingleMemberComm(t *testing.T) {
	k, w := world(2)
	w.Launch("t", func(r *Rank) {
		comm, err := r.Split(2, []int{r.ID()})
		if err != nil {
			t.Error(err)
			return
		}
		comm.Barrier()
		if got := comm.Bcast(0, Payload{Data: 5}); got.Data.(int) != 5 {
			t.Errorf("singleton bcast %v", got)
		}
		res := comm.Allreduce(ComplexPayload([]complex128{2}), SumComplex)
		if res.Complex()[0] != 2 {
			t.Errorf("singleton allreduce %v", res)
		}
	})
	run(t, k)
	_ = fmt.Sprint() // keep fmt imported for symmetry with sibling tests
}
