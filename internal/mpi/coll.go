package mpi

import (
	"fmt"

	"repro/internal/trace"
)

// Reserved tag bases keep collective traffic out of the user tag space.
// User code must use tags below TagUserLimit.
const (
	TagUserLimit = 1 << 24
	tagBarrier   = 0x1000
	tagBcast     = 0x2000
	tagGather    = 0x3000
	tagScatter   = 0x4000
	tagAlltoall  = 0x5000
	tagReduce    = 0x6000
	tagAllreduce = 0x7000
	// collTagBase offsets all collective tags above the user space; each
	// communicator adds its own slice on top (see Comm).
	collTagBase = 1 << 24
)

// collCtx abstracts "a participant in a collective" so the same algorithms
// serve the world communicator and split sub-communicators: local rank ids,
// sends/receives in the group's translated namespace, and a way to price
// the self-block copy of an all-to-all.
type collCtx struct {
	size       int
	me         int
	send       func(dst, tag int, body Payload)
	recv       func(src, tag int) Payload
	memcpySelf func(bytes int)
}

func (c *collCtx) sendrecv(dst, sendTag int, body Payload, src, recvTag int) Payload {
	c.send(dst, sendTag, body)
	return c.recv(src, recvTag)
}

// --- algorithms -------------------------------------------------------------

// barrierOn is a dissemination barrier: ceil(log2 n) rounds of small
// messages, charging realistic latency and software overhead rather than
// synchronising for free.
func barrierOn(c *collCtx) {
	n := c.size
	if n == 1 {
		return
	}
	for k := 1; k < n; k <<= 1 {
		dst := (c.me + k) % n
		src := (c.me - k + n) % n
		c.send(dst, tagBarrier+k, Empty())
		c.recv(src, tagBarrier+k)
	}
}

// bcastOn distributes root's payload along a binomial tree.
func bcastOn(c *collCtx, root int, body Payload) Payload {
	n := c.size
	if n == 1 {
		return body
	}
	rel := (c.me - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			body = c.recv(src, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			c.send(dst, tagBcast, body)
		}
		mask >>= 1
	}
	return body
}

// gatherOn collects one payload from every participant at root.
func gatherOn(c *collCtx, root int, body Payload) []Payload {
	n := c.size
	if c.me != root {
		c.send(root, tagGather, body)
		return nil
	}
	out := make([]Payload, n)
	out[c.me] = body
	for src := 0; src < n; src++ {
		if src == root {
			continue
		}
		out[src] = c.recv(src, tagGather)
	}
	return out
}

// scatterOn distributes parts[i] from root to participant i.
func scatterOn(c *collCtx, root int, parts []Payload) Payload {
	n := c.size
	if c.me == root {
		if len(parts) != n {
			panic(fmt.Sprintf("mpi: scatter with %d parts for %d ranks", len(parts), n))
		}
		for dst := 0; dst < n; dst++ {
			if dst == root {
				continue
			}
			c.send(dst, tagScatter, parts[dst])
		}
		return parts[root]
	}
	return c.recv(root, tagScatter)
}

// AlltoallAlgorithm selects the collective exchange schedule; the paper notes
// each hardware vendor shipped its own tuned MPI_All_to_All.
type AlltoallAlgorithm string

const (
	// AlltoallDirect posts all sends then all receives: minimal software
	// logic, maximal fabric concurrency; best on a true crossbar (Mercury).
	AlltoallDirect AlltoallAlgorithm = "direct"
	// AlltoallPairwise exchanges with one partner per step (XOR schedule on
	// power-of-two sizes, ring otherwise), bounding contention on switched
	// fabrics (CSPI Myrinet).
	AlltoallPairwise AlltoallAlgorithm = "pairwise"
	// AlltoallBruck combines blocks into log2(n) larger messages, trading
	// extra bytes for fewer message overheads; best when per-message
	// overhead or latency dominates (shared backplanes, Ethernet).
	AlltoallBruck AlltoallAlgorithm = "bruck"
)

// AlgorithmFor maps a platform's AllToAll preference string onto an
// algorithm, defaulting to pairwise.
func AlgorithmFor(name string) AlltoallAlgorithm {
	switch AlltoallAlgorithm(name) {
	case AlltoallDirect, AlltoallPairwise, AlltoallBruck:
		return AlltoallAlgorithm(name)
	default:
		return AlltoallPairwise
	}
}

// alltoallOn performs a personalised all-to-all exchange.
func alltoallOn(c *collCtx, parts []Payload, alg AlltoallAlgorithm) []Payload {
	n := c.size
	if len(parts) != n {
		panic(fmt.Sprintf("mpi: alltoall with %d parts for %d ranks", len(parts), n))
	}
	out := make([]Payload, n)
	// Self block: local copy, priced by the memory system.
	c.memcpySelf(parts[c.me].Bytes)
	out[c.me] = parts[c.me]
	if n == 1 {
		return out
	}
	switch alg {
	case AlltoallDirect:
		alltoallDirectOn(c, parts, out)
	case AlltoallPairwise:
		alltoallPairwiseOn(c, parts, out)
	case AlltoallBruck:
		alltoallBruckOn(c, parts, out)
	default:
		panic(fmt.Sprintf("mpi: unknown alltoall algorithm %q", alg))
	}
	return out
}

func alltoallDirectOn(c *collCtx, parts, out []Payload) {
	n := c.size
	for k := 1; k < n; k++ {
		dst := (c.me + k) % n
		c.send(dst, tagAlltoall, parts[dst])
	}
	for k := 1; k < n; k++ {
		src := (c.me - k + n) % n
		out[src] = c.recv(src, tagAlltoall)
	}
}

func alltoallPairwiseOn(c *collCtx, parts, out []Payload) {
	n := c.size
	pow2 := n&(n-1) == 0
	for k := 1; k < n; k++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = c.me ^ k
			recvFrom = sendTo
		} else {
			sendTo = (c.me + k) % n
			recvFrom = (c.me - k + n) % n
		}
		out[recvFrom] = c.sendrecv(sendTo, tagAlltoall+k, parts[sendTo], recvFrom, tagAlltoall+k)
	}
}

// bruckBlock is one (index, payload) unit inside a combined Bruck message.
type bruckBlock struct {
	Index int
	Body  Payload
}

const bruckBlockHeaderBytes = 8

func alltoallBruckOn(c *collCtx, parts, out []Payload) {
	n := c.size
	// Phase 1: local rotation. buf[j] holds the block destined for rank
	// (me + j) mod n.
	buf := make([]Payload, n)
	for j := 1; j < n; j++ {
		buf[j] = parts[(c.me+j)%n]
	}
	// Phase 2: log2(n) combined exchanges.
	for k := 1; k < n; k <<= 1 {
		var blocks []bruckBlock
		bytes := 0
		for j := 1; j < n; j++ {
			if j&k != 0 {
				blocks = append(blocks, bruckBlock{Index: j, Body: buf[j]})
				bytes += buf[j].Bytes + bruckBlockHeaderBytes
			}
		}
		dst := (c.me + k) % n
		src := (c.me - k + n) % n
		got := c.sendrecv(dst, tagAlltoall+k, Payload{Bytes: bytes, Data: blocks},
			src, tagAlltoall+k)
		for _, b := range got.Data.([]bruckBlock) {
			buf[b.Index] = b.Body
		}
	}
	// Phase 3: after the exchanges, buf[j] holds the block sent by rank
	// (me - j) mod n for us; un-rotate into source order.
	for j := 1; j < n; j++ {
		out[(c.me-j+n)%n] = buf[j]
	}
}

// reduceOn combines every participant's payload at root along a binomial
// tree (non-roots return their partial, which callers should ignore).
func reduceOn(c *collCtx, root int, body Payload, op ReduceOp) Payload {
	n := c.size
	if n == 1 {
		return body
	}
	rel := (c.me - root + n) % n
	acc := body
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			dst := (rel - mask + root) % n
			c.send(dst, tagReduce, acc)
			return acc // this participant is done contributing
		}
		if rel+mask < n {
			src := (rel + mask + root) % n
			acc = op(acc, c.recv(src, tagReduce))
		}
		mask <<= 1
	}
	return acc
}

// allreduceOn combines every participant's payload on all of them:
// recursive doubling on power-of-two sizes, reduce-then-broadcast otherwise.
func allreduceOn(c *collCtx, body Payload, op ReduceOp) Payload {
	n := c.size
	if n == 1 {
		return body
	}
	if n&(n-1) == 0 {
		acc := body
		for mask := 1; mask < n; mask <<= 1 {
			partner := c.me ^ mask
			got := c.sendrecv(partner, tagAllreduce+mask, acc, partner, tagAllreduce+mask)
			acc = op(acc, got)
		}
		return acc
	}
	acc := reduceOn(c, 0, body, op)
	if c.me != 0 {
		acc = Payload{} // only root holds the full reduction
	}
	return bcastOn(c, 0, acc)
}

// --- world-communicator wrappers --------------------------------------------

// collective builds the world collCtx for this rank.
func (r *Rank) collective() *collCtx {
	return &collCtx{
		size: r.Size(),
		me:   r.id,
		send: func(dst, tag int, body Payload) { r.Send(dst, collTagBase+tag, body) },
		recv: func(src, tag int) Payload { return r.Recv(src, collTagBase+tag) },
		memcpySelf: func(bytes int) {
			r.node.Memcpy(r.proc, bytes)
		},
	}
}

// collSpan runs one collective under a trace span when the machine is
// traced: the span covers this rank's participation, on the calling
// process's track, named after the collective (and, for all-to-all, its
// algorithm).
func (r *Rank) collSpan(name string, f func()) {
	tr := r.w.Mach.Trace()
	if !tr.Enabled() {
		f()
		return
	}
	start := r.proc.Now()
	f()
	tr.Collective(r.node.ID, trace.ProcTrack(r.proc.Name(), r.proc.PID()), name, start, r.proc.Now())
}

// Barrier synchronises all ranks (dissemination barrier).
func (r *Rank) Barrier() {
	r.collSpan("barrier", func() { barrierOn(r.collective()) })
}

// Bcast distributes root's payload to all ranks and returns it everywhere.
// Non-root callers pass anything (ignored).
func (r *Rank) Bcast(root int, body Payload) Payload {
	var out Payload
	r.collSpan("bcast", func() { out = bcastOn(r.collective(), root, body) })
	return out
}

// Gather collects one payload from every rank at root. The root's return
// value is indexed by source rank; other ranks get nil.
func (r *Rank) Gather(root int, body Payload) []Payload {
	var out []Payload
	r.collSpan("gather", func() { out = gatherOn(r.collective(), root, body) })
	return out
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part. Only the root's parts argument is consulted.
func (r *Rank) Scatter(root int, parts []Payload) Payload {
	var out Payload
	r.collSpan("scatter", func() { out = scatterOn(r.collective(), root, parts) })
	return out
}

// Alltoall performs a personalised all-to-all exchange: parts[i] is sent to
// rank i; the result is indexed by source rank. The self block is a local
// memory copy. parts must have exactly Size() entries.
func (r *Rank) Alltoall(parts []Payload, alg AlltoallAlgorithm) []Payload {
	var out []Payload
	r.collSpan("alltoall["+string(alg)+"]", func() { out = alltoallOn(r.collective(), parts, alg) })
	return out
}

// Reduce combines every rank's payload at root (op must be associative and
// commutative); non-roots get their partial, which they should ignore.
func (r *Rank) Reduce(root int, body Payload, op ReduceOp) Payload {
	var out Payload
	r.collSpan("reduce", func() { out = reduceOn(r.collective(), root, body, op) })
	return out
}

// Allreduce combines every rank's payload and returns the result on all
// ranks.
func (r *Rank) Allreduce(body Payload, op ReduceOp) Payload {
	var out Payload
	r.collSpan("allreduce", func() { out = allreduceOn(r.collective(), body, op) })
	return out
}
