package mpi

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property-based checks of the collective algorithms: all three all-to-all
// schedules must move identical data for any node count and payload mix, and
// gather must invert scatter. Sizes and payloads are drawn from a fixed-seed
// RNG so failures reproduce.

// randParts builds one personalised payload per destination rank, with
// random sizes and random (but per-cell deterministic) contents.
func randParts(rng *rand.Rand, me, n int) []Payload {
	parts := make([]Payload, n)
	for dst := 0; dst < n; dst++ {
		elems := 1 + rng.Intn(16)
		data := make([]complex128, elems)
		for i := range data {
			// Content encodes (src, dst, index) so misrouted blocks are
			// detected, not just missing ones.
			data[i] = complex(float64(me*1000+dst), float64(i))
		}
		parts[dst] = ComplexPayload(data)
	}
	return parts
}

// runAlltoall executes one all-to-all under the given algorithm and returns
// every rank's received blocks, indexed [rank][src].
func runAlltoall(t *testing.T, nodes int, alg AlltoallAlgorithm, seed int64) [][]Payload {
	t.Helper()
	k, w := world(nodes)
	got := make([][]Payload, nodes)
	w.Launch("a2a", func(r *Rank) {
		// Per-rank RNG with a rank-dependent seed keeps sizes independent
		// across ranks but identical across algorithms.
		rng := rand.New(rand.NewSource(seed + int64(r.ID())))
		got[r.ID()] = r.Alltoall(randParts(rng, r.ID(), nodes), alg)
	})
	run(t, k)
	return got
}

func payloadsEqual(a, b Payload) bool {
	if a.Bytes != b.Bytes {
		return false
	}
	av, bv := a.Complex(), b.Complex()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// TestAlltoallAlgorithmsAgree checks that direct, pairwise and Bruck move
// the same data for random node counts (including non-powers of two, which
// exercise the ring schedule and the reduce+bcast fallback paths).
func TestAlltoallAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	algs := []AlltoallAlgorithm{AlltoallDirect, AlltoallPairwise, AlltoallBruck}
	for trial := 0; trial < 8; trial++ {
		nodes := 1 + rng.Intn(12)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("trial%d_nodes%d", trial, nodes), func(t *testing.T) {
			ref := runAlltoall(t, nodes, algs[0], seed)
			for _, alg := range algs[1:] {
				got := runAlltoall(t, nodes, alg, seed)
				for rank := 0; rank < nodes; rank++ {
					for src := 0; src < nodes; src++ {
						if !payloadsEqual(ref[rank][src], got[rank][src]) {
							t.Fatalf("%s: rank %d block from %d differs from %s:\n %v\n vs %v",
								alg, rank, src, algs[0], got[rank][src].Complex(), ref[rank][src].Complex())
						}
					}
				}
			}
		})
	}
}

// TestGatherScatterRoundTrip checks that scattering random blocks from a
// random root and gathering them back at another random root reconstructs
// the original data for random node counts.
func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		nodes := 1 + rng.Intn(12)
		scatterRoot := rng.Intn(nodes)
		gatherRoot := rng.Intn(nodes)
		orig := make([][]complex128, nodes)
		for q := range orig {
			elems := 1 + rng.Intn(16)
			orig[q] = make([]complex128, elems)
			for i := range orig[q] {
				orig[q][i] = complex(rng.Float64(), rng.Float64())
			}
		}
		t.Run(fmt.Sprintf("trial%d_nodes%d", trial, nodes), func(t *testing.T) {
			k, w := world(nodes)
			var back []Payload
			w.Launch("rt", func(r *Rank) {
				var parts []Payload
				if r.ID() == scatterRoot {
					parts = make([]Payload, nodes)
					for q := 0; q < nodes; q++ {
						parts[q] = ComplexPayload(orig[q])
					}
				}
				mine := r.Scatter(scatterRoot, parts)
				got := r.Gather(gatherRoot, mine)
				if r.ID() == gatherRoot {
					back = got
				}
			})
			run(t, k)
			if len(back) != nodes {
				t.Fatalf("gathered %d blocks, want %d", len(back), nodes)
			}
			for q := 0; q < nodes; q++ {
				if !payloadsEqual(back[q], ComplexPayload(orig[q])) {
					t.Fatalf("rank %d's block corrupted in scatter(%d)->gather(%d) round trip:\n %v\n vs %v",
						q, scatterRoot, gatherRoot, back[q].Complex(), orig[q])
				}
			}
		})
	}
}

// TestBcastReduceAllreduceAgree checks bcast delivers the root payload
// everywhere and allreduce equals reduce-at-root for random node counts.
func TestBcastReduceAllreduceAgree(t *testing.T) {
	sum := func(a, b Payload) Payload {
		av, bv := a.Complex(), b.Complex()
		out := make([]complex128, len(av))
		for i := range av {
			out[i] = av[i] + bv[i]
		}
		return ComplexPayload(out)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		nodes := 1 + rng.Intn(12)
		root := rng.Intn(nodes)
		t.Run(fmt.Sprintf("trial%d_nodes%d", trial, nodes), func(t *testing.T) {
			k, w := world(nodes)
			bcastGot := make([]Payload, nodes)
			reduceGot := make([]Payload, 1)
			allGot := make([]Payload, nodes)
			w.Launch("coll", func(r *Rank) {
				body := ComplexPayload([]complex128{complex(float64(r.ID()+1), 0)})
				bcastGot[r.ID()] = r.Bcast(root, body)
				red := r.Reduce(root, body, sum)
				if r.ID() == root {
					reduceGot[0] = red
				}
				allGot[r.ID()] = r.Allreduce(body, sum)
			})
			run(t, k)
			rootBody := ComplexPayload([]complex128{complex(float64(root+1), 0)})
			want := complex(float64(nodes*(nodes+1)/2), 0)
			for q := 0; q < nodes; q++ {
				if !payloadsEqual(bcastGot[q], rootBody) {
					t.Fatalf("rank %d bcast got %v, want %v", q, bcastGot[q].Complex(), rootBody.Complex())
				}
				if got := allGot[q].Complex(); len(got) != 1 || got[0] != want {
					t.Fatalf("rank %d allreduce got %v, want %v", q, got, want)
				}
			}
			if got := reduceGot[0].Complex(); len(got) != 1 || got[0] != want {
				t.Fatalf("reduce at root got %v, want %v", got, want)
			}
		})
	}
}
