// Package mpi implements the message-passing substrate of the reproduction:
// a deterministic MPI subset (point-to-point with tag matching, barrier,
// broadcast, gather/scatter, and three all-to-all algorithms) executing on the
// simulated multicomputer of internal/machine.
//
// The paper's benchmarks — and the vendor systems it measures — are MPI
// programs; the corner turn in particular is dominated by MPI_All_to_All,
// which "each vendor implemented ... tailored to their respective hardware".
// This package therefore provides selectable all-to-all algorithms (direct,
// pairwise-exchange, Bruck) so platform descriptors can express that tuning.
//
// Real data moves through every call: Send delivers the payload object to the
// matching Recv, while the machine model charges virtual time for software
// overhead, wire serialisation, latency and contention. One rank runs per
// node, but a rank may host multiple simulated threads (the SAGE runtime
// does); tag matching keeps concurrent receivers on one rank independent.
package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// EnvelopeBytes is the wire-size overhead charged per message.
const EnvelopeBytes = 32

// Payload is a typed message body together with its wire size in bytes. The
// wire size is explicit because the simulated hardware era used single
// precision (8-byte complex) while the Go kernels compute in float64.
type Payload struct {
	Bytes int
	Data  any
}

// BytesPerComplex is the wire size of one complex sample (complex64 on the
// 1999-era targets).
const BytesPerComplex = 8

// ComplexPayload wraps a complex vector, priced at single-precision size.
func ComplexPayload(data []complex128) Payload {
	return Payload{Bytes: BytesPerComplex * len(data), Data: data}
}

// Complex extracts a complex vector payload, panicking on type mismatch
// (which is a protocol bug, not a runtime condition).
func (p Payload) Complex() []complex128 {
	v, ok := p.Data.([]complex128)
	if !ok {
		panic(fmt.Sprintf("mpi: payload holds %T, want []complex128", p.Data))
	}
	return v
}

// Float64Payload wraps a float64 vector, priced at float32 wire size.
func Float64Payload(data []float64) Payload {
	return Payload{Bytes: 4 * len(data), Data: data}
}

// Empty returns a zero-byte payload (control messages).
func Empty() Payload { return Payload{} }

// message is the wire unit: envelope fields used for matching plus payload.
type message struct {
	src  int
	tag  int
	body Payload
}

// waiter is a blocked receiver: a match key plus a private one-shot channel
// the matching message is handed over on.
type waiter struct {
	src, tag int
	ch       *sim.Chan[message]
}

// endpoint is the per-rank receive engine: an unordered pending set matched
// by (source, tag), serving possibly many simulated threads on one rank.
type endpoint struct {
	k       *sim.Kernel
	rank    int
	pending []message
	waiters []*waiter
}

func matches(m *message, src, tag int) bool {
	return m.src == src && m.tag == tag
}

// deliver makes m visible to receivers at the current virtual instant,
// handing it to the first blocked waiter that matches (FIFO among waiters).
func (e *endpoint) deliver(m message) {
	for i, w := range e.waiters {
		if matches(&m, w.src, w.tag) {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			w.ch.Send(m)
			return
		}
	}
	e.pending = append(e.pending, m)
}

// recv blocks the calling process until a message matching (src, tag) is
// available and returns it.
func (e *endpoint) recv(p *sim.Proc, src, tag int) message {
	for i := range e.pending {
		if matches(&e.pending[i], src, tag) {
			m := e.pending[i]
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return m
		}
	}
	w := &waiter{
		src: src, tag: tag,
		ch: sim.NewChan[message](e.k, fmt.Sprintf("mpi.rank%d.recv(src=%d,tag=%d)", e.rank, src, tag)),
	}
	e.waiters = append(e.waiters, w)
	return w.ch.Recv(p)
}

// World is an MPI job: one rank per machine node.
type World struct {
	Mach      *machine.Machine
	endpoints []*endpoint
}

// NewWorld creates a world spanning every node of the machine.
func NewWorld(m *machine.Machine) *World {
	w := &World{Mach: m}
	for i := 0; i < m.NumNodes(); i++ {
		w.endpoints = append(w.endpoints, &endpoint{k: m.K, rank: i})
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.endpoints) }

// Rank is the handle a simulated thread uses to communicate as world rank id.
// Multiple threads on the same rank may share the id; tags must disambiguate.
type Rank struct {
	w    *World
	id   int
	node *machine.Node
	proc *sim.Proc
}

// Launch spawns body as the main thread of every rank and returns once all
// processes are created (call w.Mach.K.Run() to execute). Rank i runs on
// machine node i.
func (w *World) Launch(name string, body func(r *Rank)) {
	for i := 0; i < w.Size(); i++ {
		i := i
		w.Mach.K.Spawn(fmt.Sprintf("%s.rank%d", name, i), func(p *sim.Proc) {
			body(&Rank{w: w, id: i, node: w.Mach.Node(i), proc: p})
		})
	}
}

// Attach creates a Rank handle for an existing simulated process p acting as
// rank id (used by the SAGE runtime, which manages its own threads).
func (w *World) Attach(id int, p *sim.Proc) *Rank {
	if id < 0 || id >= w.Size() {
		panic(fmt.Sprintf("mpi: attach to rank %d of world size %d", id, w.Size()))
	}
	return &Rank{w: w, id: id, node: w.Mach.Node(id), proc: p}
}

// ID reports this rank's id.
func (r *Rank) ID() int { return r.id }

// Size reports the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Proc exposes the underlying simulated process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Node exposes the node this rank runs on.
func (r *Rank) Node() *machine.Node { return r.node }

// Trace exposes the machine's trace collector (nil — the disabled
// collector — when tracing is off), so code layered on MPI can emit its
// own spans.
func (r *Rank) Trace() *trace.Collector { return r.w.Mach.Trace() }

// Send transmits body to rank dst with the given tag. The caller is blocked
// for the send-side costs (software overhead plus wire serialisation under
// contention); delivery to dst happens asynchronously after the fabric
// latency. Send never blocks on the receiver, so exchange patterns in which
// every rank sends before receiving are deadlock-free.
func (r *Rank) Send(dst, tag int, body Payload) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mpi: send to rank %d of world size %d", dst, r.Size()))
	}
	arrival := r.node.Transfer(r.proc, dst, body.Bytes+EnvelopeBytes)
	ep := r.w.endpoints[dst]
	m := message{src: r.id, tag: tag, body: body}
	if arrival <= r.proc.Now() {
		ep.deliver(m)
		return
	}
	r.w.Mach.K.After(arrival.Sub(r.proc.Now()), func() { ep.deliver(m) })
}

// Recv blocks until a message from src with the given tag arrives, charges
// the receive software overhead, and returns the payload.
func (r *Rank) Recv(src, tag int) Payload {
	if src < 0 || src >= r.Size() {
		panic(fmt.Sprintf("mpi: recv from rank %d of world size %d", src, r.Size()))
	}
	m := r.w.endpoints[r.id].recv(r.proc, src, tag)
	r.node.RecvOverhead(r.proc)
	return m.body
}

// Sendrecv sends to dst and then receives from src (safe because Send does
// not block on the receiver).
func (r *Rank) Sendrecv(dst, sendTag int, body Payload, src, recvTag int) Payload {
	r.Send(dst, sendTag, body)
	return r.Recv(src, recvTag)
}
