// Package mpi implements the message-passing substrate of the reproduction:
// a deterministic MPI subset (point-to-point with tag matching, barrier,
// broadcast, gather/scatter, and three all-to-all algorithms) executing on the
// simulated multicomputer of internal/machine.
//
// The paper's benchmarks — and the vendor systems it measures — are MPI
// programs; the corner turn in particular is dominated by MPI_All_to_All,
// which "each vendor implemented ... tailored to their respective hardware".
// This package therefore provides selectable all-to-all algorithms (direct,
// pairwise-exchange, Bruck) so platform descriptors can express that tuning.
//
// Real data moves through every call: Send delivers the payload object to the
// matching Recv, while the machine model charges virtual time for software
// overhead, wire serialisation, latency and contention. One rank runs per
// node, but a rank may host multiple simulated threads (the SAGE runtime
// does); tag matching keeps concurrent receivers on one rank independent.
package mpi

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// EnvelopeBytes is the wire-size overhead charged per message.
const EnvelopeBytes = 32

// Payload is a typed message body together with its wire size in bytes. The
// wire size is explicit because the simulated hardware era used single
// precision (8-byte complex) while the Go kernels compute in float64.
type Payload struct {
	Bytes int
	Data  any
}

// BytesPerComplex is the wire size of one complex sample (complex64 on the
// 1999-era targets).
const BytesPerComplex = 8

// ComplexPayload wraps a complex vector, priced at single-precision size.
func ComplexPayload(data []complex128) Payload {
	return Payload{Bytes: BytesPerComplex * len(data), Data: data}
}

// Complex extracts a complex vector payload, panicking on type mismatch
// (which is a protocol bug, not a runtime condition).
func (p Payload) Complex() []complex128 {
	v, ok := p.Data.([]complex128)
	if !ok {
		panic(fmt.Sprintf("mpi: payload holds %T, want []complex128", p.Data))
	}
	return v
}

// Float64Payload wraps a float64 vector, priced at float32 wire size.
func Float64Payload(data []float64) Payload {
	return Payload{Bytes: 4 * len(data), Data: data}
}

// Empty returns a zero-byte payload (control messages).
func Empty() Payload { return Payload{} }

// message is the wire unit: envelope fields used for matching plus payload.
type message struct {
	src  int
	tag  int
	body Payload
}

// waiter is a blocked receiver: a match key plus a private one-shot channel
// the matching message is handed over on. matched marks hand-over, so a
// pending receive timeout knows it lost the race. Waiters (and their
// channels) are recycled through the endpoint's free list; gen counts
// recycles so a timeout timer armed for an earlier wait recognises that its
// waiter has moved on.
type waiter struct {
	src, tag int
	ch       *sim.Chan[message]
	matched  bool
	gen      uint64
	next     *waiter
}

// endpoint is the per-rank receive engine: an unordered pending set matched
// by (source, tag), serving possibly many simulated threads on one rank.
type endpoint struct {
	k       *sim.Kernel
	rank    int
	pending []message
	waiters []*waiter
	free    *waiter
}

// getWaiter takes a waiter off the free list (or allocates one) keyed for
// (src, tag). The channel name is part of the observable trace/deadlock
// output, so a recycled waiter is renamed unless the key is unchanged — the
// common case for credit waits, which poll the same peer and tag every
// iteration.
func (e *endpoint) getWaiter(src, tag int) *waiter {
	w := e.free
	if w == nil {
		return &waiter{
			src: src, tag: tag,
			ch: sim.NewChanOn[message](e.k, e.rank, fmt.Sprintf("mpi.rank%d.recv(src=%d,tag=%d)", e.rank, src, tag)),
		}
	}
	e.free = w.next
	w.next = nil
	w.matched = false
	if w.src != src || w.tag != tag {
		w.src, w.tag = src, tag
		w.ch.SetName(fmt.Sprintf("mpi.rank%d.recv(src=%d,tag=%d)", e.rank, src, tag))
	}
	return w
}

// putWaiter recycles w once its wait has fully resolved (received or timed
// out, and no longer queued). Bumping gen disarms any still-pending timer.
func (e *endpoint) putWaiter(w *waiter) {
	w.gen++
	w.next = e.free
	e.free = w
}

func matches(m *message, src, tag int) bool {
	return m.src == src && m.tag == tag
}

// deliver makes m visible to receivers at the current virtual instant,
// handing it to the first blocked waiter that matches (FIFO among waiters).
func (e *endpoint) deliver(m message) {
	for i, w := range e.waiters {
		if matches(&m, w.src, w.tag) {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			w.matched = true
			w.ch.Send(m)
			return
		}
	}
	e.pending = append(e.pending, m)
}

// recv blocks the calling process until a message matching (src, tag) is
// available and returns it.
func (e *endpoint) recv(p *sim.Proc, src, tag int) message {
	for i := range e.pending {
		if matches(&e.pending[i], src, tag) {
			m := e.pending[i]
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return m
		}
	}
	w := e.getWaiter(src, tag)
	e.waiters = append(e.waiters, w)
	m := w.ch.Recv(p)
	e.putWaiter(w)
	return m
}

// recvTimeout is recv with a deadline: if no matching message arrives within
// d of the call, the waiter is withdrawn and ok is false. A message and the
// timer firing at the same virtual instant are ordered by the kernel's event
// queue; whichever fires first wins, deterministically.
func (e *endpoint) recvTimeout(p *sim.Proc, src, tag int, d sim.Duration) (message, bool) {
	for i := range e.pending {
		if matches(&e.pending[i], src, tag) {
			m := e.pending[i]
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return m, true
		}
	}
	w := e.getWaiter(src, tag)
	e.waiters = append(e.waiters, w)
	timedOut := false
	gen := w.gen
	// The timer is shard-local: p executes on the endpoint's rank, and the
	// callback only touches this endpoint's state.
	p.AfterOn(e.rank, d, func() {
		// gen mismatch: this wait resolved and the waiter was recycled for
		// a later receive; the stale timer must not touch it.
		if w.gen != gen || w.matched {
			return
		}
		for i, x := range e.waiters {
			if x == w {
				e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
				break
			}
		}
		timedOut = true
		w.ch.Send(message{})
	})
	m := w.ch.Recv(p)
	e.putWaiter(w)
	if timedOut {
		return message{}, false
	}
	return m, true
}

// World is an MPI job: one rank per machine node.
type World struct {
	Mach      *machine.Machine
	endpoints []*endpoint
	retry     fault.RetryPolicy
	retrySet  bool
}

// NewWorld creates a world spanning every node of the machine.
func NewWorld(m *machine.Machine) *World {
	w := &World{Mach: m}
	for i := 0; i < m.NumNodes(); i++ {
		w.endpoints = append(w.endpoints, &endpoint{k: m.K, rank: i})
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.endpoints) }

// SetRetry configures the link-level retry protocol Send uses when the
// machine has a fault injector installed (zero fields take defaults). Without
// an injector the policy is irrelevant: Send takes the plain path.
func (w *World) SetRetry(p fault.RetryPolicy) {
	w.retry = p.WithDefaults()
	w.retrySet = true
}

func (w *World) retryPolicy() fault.RetryPolicy {
	if !w.retrySet {
		return fault.DefaultRetry()
	}
	return w.retry
}

// Rank is the handle a simulated thread uses to communicate as world rank id.
// Multiple threads on the same rank may share the id; tags must disambiguate.
type Rank struct {
	w    *World
	id   int
	node *machine.Node
	proc *sim.Proc
}

// Launch spawns body as the main thread of every rank and returns once all
// processes are created (call w.Mach.K.Run() to execute). Rank i runs on
// machine node i.
func (w *World) Launch(name string, body func(r *Rank)) {
	for i := 0; i < w.Size(); i++ {
		i := i
		w.Mach.K.SpawnOn(i, fmt.Sprintf("%s.rank%d", name, i), func(p *sim.Proc) {
			body(&Rank{w: w, id: i, node: w.Mach.Node(i), proc: p})
		})
	}
}

// Attach creates a Rank handle for an existing simulated process p acting as
// rank id (used by the SAGE runtime, which manages its own threads).
func (w *World) Attach(id int, p *sim.Proc) *Rank {
	if id < 0 || id >= w.Size() {
		panic(fmt.Sprintf("mpi: attach to rank %d of world size %d", id, w.Size()))
	}
	return &Rank{w: w, id: id, node: w.Mach.Node(id), proc: p}
}

// ID reports this rank's id.
func (r *Rank) ID() int { return r.id }

// Size reports the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Proc exposes the underlying simulated process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Node exposes the node this rank runs on.
func (r *Rank) Node() *machine.Node { return r.node }

// Trace exposes the machine's trace collector (nil — the disabled
// collector — when tracing is off), so code layered on MPI can emit its
// own spans.
func (r *Rank) Trace() *trace.Collector { return r.w.Mach.Trace() }

// Send transmits body to rank dst with the given tag. The caller is blocked
// for the send-side costs (software overhead plus wire serialisation under
// contention); delivery to dst happens asynchronously after the fabric
// latency. Send never blocks on the receiver, so exchange patterns in which
// every rank sends before receiving are deadlock-free.
// Under an installed fault injector, Send runs a bounded retry protocol: a
// refused or dropped attempt is retried after geometric backoff, and once the
// attempt budget is exhausted the message is forced through the fault-
// oblivious maintenance path (Node.Transfer), so every Send terminates and
// every message is eventually delivered under any valid fault plan.
func (r *Rank) Send(dst, tag int, body Payload) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mpi: send to rank %d of world size %d", dst, r.Size()))
	}
	bytes := body.Bytes + EnvelopeBytes
	var arrival sim.Time
	if !r.w.Mach.Faults().Enabled() {
		arrival = r.node.Transfer(r.proc, dst, bytes)
	} else {
		arrival = r.sendResilient(dst, bytes)
	}
	ep := r.w.endpoints[dst]
	m := message{src: r.id, tag: tag, body: body}
	if arrival <= r.proc.Now() {
		// Only self-transfers arrive instantly (cross-node latency is
		// always positive), so delivering inline stays on dst's shard.
		ep.deliver(m)
		return
	}
	// Delivery executes on dst's shard; the fabric latency of a
	// cross-shard link is what bounds the kernel's lookahead.
	r.proc.AfterOn(dst, arrival.Sub(r.proc.Now()), func() { ep.deliver(m) })
}

// sendResilient pushes bytes to dst through the fault injector, retrying
// failed attempts with backoff and escalating to the maintenance path after
// the attempt budget. Returns the arrival time of the attempt that succeeded.
func (r *Rank) sendResilient(dst, bytes int) sim.Time {
	pol := r.w.retryPolicy()
	start := r.proc.Now()
	for attempt := 1; ; attempt++ {
		arrival, ok := r.node.TryTransfer(r.proc, dst, bytes)
		if ok {
			if attempt > 1 {
				r.Trace().FaultSpan(r.id, fmt.Sprintf("retry %d->%d x%d", r.id, dst, attempt-1),
					start, r.proc.Now())
			}
			return arrival
		}
		if attempt >= pol.MaxAttempts {
			arrival := r.node.Transfer(r.proc, dst, bytes)
			r.Trace().FaultSpan(r.id, fmt.Sprintf("giveup %d->%d", r.id, dst), start, r.proc.Now())
			return arrival
		}
		r.proc.Sleep(pol.BackoffFor(attempt))
	}
}

// Recv blocks until a message from src with the given tag arrives, charges
// the receive software overhead, and returns the payload.
func (r *Rank) Recv(src, tag int) Payload {
	if src < 0 || src >= r.Size() {
		panic(fmt.Sprintf("mpi: recv from rank %d of world size %d", src, r.Size()))
	}
	m := r.w.endpoints[r.id].recv(r.proc, src, tag)
	r.node.RecvOverhead(r.proc)
	return m.body
}

// RecvTimeout is Recv with a deadline: it blocks until a message from src
// with the given tag arrives or duration d of virtual time elapses. On
// timeout it returns ok == false without charging the receive overhead (no
// message was processed). Resilient runtimes use it to re-arm receives and
// interleave recovery work instead of blocking indefinitely on a degraded
// peer.
func (r *Rank) RecvTimeout(src, tag int, d sim.Duration) (body Payload, ok bool) {
	if src < 0 || src >= r.Size() {
		panic(fmt.Sprintf("mpi: recv from rank %d of world size %d", src, r.Size()))
	}
	m, ok := r.w.endpoints[r.id].recvTimeout(r.proc, src, tag, d)
	if !ok {
		return Payload{}, false
	}
	r.node.RecvOverhead(r.proc)
	return m.body, true
}

// Sendrecv sends to dst and then receives from src (safe because Send does
// not block on the receiver).
func (r *Rank) Sendrecv(dst, sendTag int, body Payload, src, recvTag int) Payload {
	r.Send(dst, sendTag, body)
	return r.Recv(src, recvTag)
}
