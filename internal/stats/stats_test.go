package stats

import (
	"math"
	"sort"
	"testing"
)

// splitmix64 gives the tests a seeded deterministic stream without pulling
// in math/rand ordering guarantees.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if w.Count() != len(xs) {
		t.Fatalf("count = %d, want %d", w.Count(), len(xs))
	}
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("variance = %v, want %v", w.Variance(), variance)
	}
	if w.CV() <= 0 {
		t.Fatalf("cv = %v, want > 0", w.CV())
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CV() != 0 {
		t.Fatalf("empty accumulator not all-zero: %v %v %v", w.Mean(), w.Variance(), w.CV())
	}
	w.Add(7)
	if w.Mean() != 7 || w.Variance() != 0 {
		t.Fatalf("single sample: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"equal", []float64{2, 2, 2, 2}, 1},
		{"one-takes-all", []float64{1, 0, 0, 0}, 0.25},
		{"half", []float64{1, 1, 0, 0}, 0.5},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Jain = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{5, 15}, {30, 20}, {40, 20}, {50, 35}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty P50 = %v, want 0", got)
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	Percentile([]float64{1}, 0)
}

func TestQuantileExactBelowFive(t *testing.T) {
	q := NewQuantile(0.5)
	q.Add(9)
	q.Add(1)
	q.Add(5)
	if got := q.Value(); got != 5 {
		t.Fatalf("median of {9,1,5} = %v, want 5", got)
	}
}

// TestQuantileTracksExact drives the P² estimator with 10k uniform and
// exponential-ish draws and checks the estimate lands close to the exact
// order statistic.
func TestQuantileTracksExact(t *testing.T) {
	for _, p := range []float64{0.5, 0.95, 0.99} {
		for _, shape := range []string{"uniform", "heavy"} {
			r := &splitmix{s: 0xfeed}
			q := NewQuantile(p)
			xs := make([]float64, 0, 10000)
			for i := 0; i < 10000; i++ {
				u := r.float()
				x := u
				if shape == "heavy" {
					x = -math.Log(1 - u)
				}
				q.Add(x)
				xs = append(xs, x)
			}
			exact := Percentile(xs, p*100)
			got := q.Value()
			// P² should land within a few percent of the exact order
			// statistic on 10k smooth draws.
			relErr := math.Abs(got-exact) / exact
			if relErr > 0.05 {
				t.Errorf("%s p=%v: P² = %v, exact = %v (rel err %.3f)", shape, p, got, exact, relErr)
			}
		}
	}
}

// TestQuantileDeterministic checks bit-identical estimates for identical
// insertion orders.
func TestQuantileDeterministic(t *testing.T) {
	run := func() float64 {
		r := &splitmix{s: 42}
		q := NewQuantile(0.95)
		for i := 0; i < 5000; i++ {
			q.Add(r.float())
		}
		return q.Value()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same stream gave %v then %v", a, b)
	}
}

func TestQuantileMonotoneMarkers(t *testing.T) {
	r := &splitmix{s: 7}
	q := NewQuantile(0.9)
	for i := 0; i < 2000; i++ {
		q.Add(r.float())
		if q.Count() >= 5 {
			if !sort.Float64sAreSorted(q.q[:]) {
				t.Fatalf("markers out of order after %d adds: %v", i+1, q.q)
			}
		}
	}
}
