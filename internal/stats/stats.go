// Package stats collects the small numerical helpers the reporting layers
// share: a streaming quantile estimator (P² — Jain & Chlamtac 1985), a
// single-pass mean/variance accumulator (Welford), exact order-statistic
// percentiles for small samples, and the Jain fairness index. The streaming
// subsystem's per-class SLO percentiles, the benchmark harness's report
// summaries and the twin-validation MAPE all compute through this package,
// so there is exactly one definition of each estimator in the repo.
//
// Every routine here is deterministic: identical inputs in identical order
// produce bit-identical float64 results on every host, which is what lets
// reports that embed these numbers stay byte-identical at any parallelism.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a single-pass mean/variance accumulator (Welford's online
// algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the sample variance (n-1 denominator; 0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev reports the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// CV reports the coefficient of variation (stddev / mean; 0 when the mean
// is 0).
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Stddev() / w.mean
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean()
}

// Jain returns the Jain fairness index of the allocation vector xs:
// (Σx)² / (n·Σx²), which is 1 when every share is equal and 1/n when one
// share takes everything. Non-positive entries count as zero allocation. An
// empty vector — or one with no positive share at all — reports 1: nothing
// is being divided, so nothing is divided unfairly.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Percentile returns the exact p-th percentile (0 < p <= 100) of xs by the
// nearest-rank method on a sorted copy. It returns 0 for an empty sample and
// panics on a percentile outside (0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside (0, 100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Quantile is the P² streaming quantile estimator: it tracks one quantile of
// an unbounded stream in O(1) space by maintaining five markers whose
// positions are nudged toward their ideal ranks with piecewise-parabolic
// interpolation. For the first five observations the estimate is exact
// (order statistic on the buffered sample). Feeding the same observations in
// the same order always yields the same estimate, so reports built on it
// stay deterministic.
type Quantile struct {
	p     float64    // target quantile in (0, 1)
	n     int        // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based ranks)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired position increments per observation
}

// NewQuantile returns a P² estimator for quantile p in (0, 1), e.g. 0.95 for
// the 95th percentile.
func NewQuantile(p float64) *Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile %v outside (0, 1)", p))
	}
	q := &Quantile{p: p}
	q.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Count reports the number of observations.
func (q *Quantile) Count() int { return q.n }

// Add folds one observation into the estimator.
func (q *Quantile) Add(x float64) {
	if q.n < 5 {
		q.q[q.n] = x
		q.n++
		if q.n == 5 {
			sort.Float64s(q.q[:])
			for i := 0; i < 5; i++ {
				q.pos[i] = float64(i + 1)
			}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}
	q.n++

	// Locate the cell x falls in and bump the end markers.
	var k int
	switch {
	case x < q.q[0]:
		q.q[0] = x
		k = 0
	case x >= q.q[4]:
		q.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.q[i-1] < h && h < q.q[i+1] {
				q.q[i] = h
			} else {
				q.q[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height update for marker i moved
// by sign (±1).
func (q *Quantile) parabolic(i int, sign float64) float64 {
	return q.q[i] + sign/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+sign)*(q.q[i+1]-q.q[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-sign)*(q.q[i]-q.q[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback height update when the parabolic estimate would
// leave the marker's bracket.
func (q *Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return q.q[i] + sign*(q.q[j]-q.q[i])/(q.pos[j]-q.pos[i])
}

// Value reports the current quantile estimate: exact below five
// observations, the P² center-marker height afterwards. Empty streams
// report 0.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		buf := make([]float64, q.n)
		copy(buf, q.q[:q.n])
		sort.Float64s(buf)
		rank := int(math.Ceil(q.p * float64(q.n)))
		if rank < 1 {
			rank = 1
		}
		return buf[rank-1]
	}
	return q.q[2]
}
