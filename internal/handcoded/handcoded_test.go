package handcoded

import (
	"fmt"
	"testing"

	"repro/internal/funclib"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sim"
)

// sourceMatrix reconstructs the iteration-0 input the benchmarks generate.
func sourceMatrix(n int, seed int64) *isspl.Matrix {
	m := isspl.NewMatrix(n, n)
	b := &funclib.Block{Region: model.Region{Rows: n, Cols: n}, Data: m.Data}
	funclib.FillSource(b, seed, 0)
	return m
}

func TestCornerTurnProducesTranspose(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 8} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			const n = 32
			res, err := CornerTurn(Config{Platform: platforms.CSPI(), Nodes: nodes, N: n, Iterations: 1, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			want := sourceMatrix(n, 3).Transposed()
			if d := res.Output.MaxDiff(want); d != 0 {
				t.Fatalf("corner turn output wrong by %g", d)
			}
		})
	}
}

func TestFFT2DProducesTransform(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			const n = 32
			res, err := FFT2D(Config{Platform: platforms.CSPI(), Nodes: nodes, N: n, Iterations: 1, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			want := sourceMatrix(n, 5)
			if err := isspl.FFT2D(want.Data, n); err != nil {
				t.Fatal(err)
			}
			if d := res.Output.MaxDiff(want); d > 1e-6 {
				t.Fatalf("fft2d output wrong by %g", d)
			}
		})
	}
}

func TestLatencyPositiveAndDeterministic(t *testing.T) {
	cfg := Config{Platform: platforms.CSPI(), Nodes: 4, N: 64, Iterations: 3, Seed: 1}
	a, err := CornerTurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CornerTurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Latencies) != 3 {
		t.Fatalf("latencies = %v", a.Latencies)
	}
	for i := range a.Latencies {
		if a.Latencies[i] <= 0 {
			t.Fatalf("iteration %d latency %v", i, a.Latencies[i])
		}
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("nondeterministic latency: %v vs %v", a.Latencies, b.Latencies)
		}
	}
	if a.Period <= 0 || a.AvgLatency() <= 0 {
		t.Fatalf("period=%v avg=%v", a.Period, a.AvgLatency())
	}
}

func TestChargeOnlyIterationsMatchComputeIterationTiming(t *testing.T) {
	// Iterations after the first charge costs without computing; their
	// virtual-time latency must equal the computed iteration's.
	res, err := FFT2D(Config{Platform: platforms.CSPI(), Nodes: 4, N: 64, Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Latencies[0]
	for i, l := range res.Latencies {
		if l != first {
			t.Fatalf("iteration %d latency %v != first %v", i, l, first)
		}
	}
}

func TestMoreNodesFasterFFT(t *testing.T) {
	// The 2D FFT is compute-bound at this size: 8 nodes must beat 2.
	lat := func(nodes int) sim.Duration {
		res, err := FFT2D(Config{Platform: platforms.CSPI(), Nodes: nodes, N: 256, Iterations: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatency()
	}
	if l8, l2 := lat(8), lat(2); l8 >= l2 {
		t.Fatalf("8 nodes (%v) not faster than 2 (%v)", l8, l2)
	}
}

func TestVendorPlatformsRankByFabric(t *testing.T) {
	// The corner turn is communication-bound: Mercury's crossbar should
	// beat SIGI's narrow shared bus.
	lat := func(pl string) sim.Duration {
		p, err := platforms.ByName(pl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CornerTurn(Config{Platform: p, Nodes: 8, N: 256, Iterations: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatency()
	}
	if lm, ls := lat("Mercury"), lat("SIGI"); lm >= ls {
		t.Fatalf("Mercury (%v) not faster than SIGI (%v)", lm, ls)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Platform: platforms.CSPI(), Nodes: 0, N: 64, Iterations: 1},
		{Platform: platforms.CSPI(), Nodes: 4, N: 63, Iterations: 1},
		{Platform: platforms.CSPI(), Nodes: 4, N: 64, Iterations: 0},
		{Platform: platforms.CSPI(), Nodes: 128, N: 64, Iterations: 1},
	}
	for i, cfg := range bad {
		if _, err := CornerTurn(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
