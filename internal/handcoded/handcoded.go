// Package handcoded contains the baseline implementations the paper compares
// SAGE against: a Parallel 2D FFT and a Distributed Corner Turn written
// directly against the MPI substrate, the way a vendor engineer would code
// them (§3.1). They share the machine and the ISSPL kernels with the SAGE
// runtime but skip everything the SAGE runtime adds: no function-table
// dispatch, no per-function logical buffers, in-place computation, and the
// platform's vendor-tuned all-to-all for the corner turn.
//
// Each benchmark runs a sequence of iterations. Only iteration 0 moves and
// transforms real samples (so results can be verified bit-for-bit against
// references); later iterations charge identical virtual-time costs without
// recomputing, which is exact because the simulator's timing never depends
// on data content. This mirrors the paper's 10x100-execution averaging
// protocol at simulation speed.
package handcoded

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/funclib"
	"repro/internal/isspl"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterises a baseline run.
type Config struct {
	Platform   machine.Platform
	Nodes      int
	N          int   // matrix edge (power of two)
	Iterations int   // total iterations (>= 1); iteration 0 computes real data
	Seed       int64 // source data seed
	// Trace, when non-nil, collects structured spans for the run: per-rank
	// benchmark stages, MPI collective spans, and the sim kernel's
	// process/wait events. One collector serves one run.
	Trace *trace.Collector
	// Faults, when non-nil and non-empty, installs a deterministic fault
	// injector on the simulated machine. The baseline's resilience is the
	// minimal, fair equivalent of the SAGE runtime's: the shared MPI
	// retry-with-backoff protocol on every send (what a vendor's reliable
	// link layer provides), nothing runtime-level on top.
	Faults *fault.Plan
}

func (c *Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("handcoded: %d nodes", c.Nodes)
	}
	if !isspl.IsPow2(c.N) || c.N < 2 {
		return fmt.Errorf("handcoded: matrix edge %d must be a power of two >= 2", c.N)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("handcoded: %d iterations", c.Iterations)
	}
	if c.Nodes > c.N {
		return fmt.Errorf("handcoded: %d nodes for %d rows", c.Nodes, c.N)
	}
	if !c.Faults.Empty() {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("handcoded: invalid fault plan: %w", err)
		}
		if err := c.Faults.CheckNodes(c.Nodes); err != nil {
			return fmt.Errorf("handcoded: fault plan does not fit the machine: %w", err)
		}
	}
	return nil
}

// Result reports a run: per-iteration latency (source-ready to sink-complete,
// per §3.3), the average period (time between completed data sets), and the
// final output matrix from the verified iteration.
type Result struct {
	Latencies []sim.Duration
	Period    sim.Duration
	Output    *isspl.Matrix
}

// AvgLatency returns the mean of the per-iteration latencies.
func (r *Result) AvgLatency() sim.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / sim.Duration(len(r.Latencies))
}

// rowRange returns the row block of rank r among p ranks.
func rowRange(n, p, r int) (lo, hi int) { return r * n / p, (r + 1) * n / p }

// phase runs one stage of a benchmark under a trace span on the calling
// rank's track when the machine is traced; otherwise it just calls f.
func phase(r *mpi.Rank, name string, iter int, f func()) {
	tr := r.Trace()
	if !tr.Enabled() {
		f()
		return
	}
	start := r.Proc().Now()
	f()
	tr.Phase(trace.LayerHand, r.Node().ID,
		trace.ProcTrack(r.Proc().Name(), r.Proc().PID()),
		name, iter, start, r.Proc().Now())
}

const (
	tagScatterRows = 100
	tagGatherRows  = 101
)

// run executes body once per iteration inside a fresh simulated world and
// collects the timing protocol shared by both benchmarks.
func run(cfg Config, body func(r *mpi.Rank, iter int, compute bool, out *isspl.Matrix)) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	defer k.Shutdown() // release parked rank goroutines on error paths
	m := machine.New(k, cfg.Platform, cfg.Nodes)
	m.SetTrace(cfg.Trace)
	m.SetFaults(cfg.Faults.NewInjector())
	w := mpi.NewWorld(m)
	res := &Result{Output: isspl.NewMatrix(cfg.N, cfg.N)}
	var firstDone, lastDone sim.Time
	w.Launch("handcoded", func(r *mpi.Rank) {
		for iter := 0; iter < cfg.Iterations; iter++ {
			start := r.Proc().Now()
			body(r, iter, iter == 0, res.Output)
			r.Barrier()
			if r.ID() == 0 {
				res.Latencies = append(res.Latencies, r.Proc().Now().Sub(start))
				if iter == 0 {
					firstDone = r.Proc().Now()
				}
				lastDone = r.Proc().Now()
			}
		}
	})
	if err := k.Run(); err != nil {
		return nil, err
	}
	m.TraceNodeTotals()
	if cfg.Iterations > 1 {
		res.Period = lastDone.Sub(firstDone) / sim.Duration(cfg.Iterations-1)
	} else {
		res.Period = res.Latencies[0]
	}
	return res, nil
}

// scatterRows distributes the source matrix's row blocks from rank 0. On the
// compute iteration rank 0 synthesises real data; otherwise only costs are
// charged. Returns this rank's local row block (real or placeholder).
func scatterRows(r *mpi.Rank, n int, seed int64, iter int, compute bool) []complex128 {
	p := r.Size()
	lo, hi := rowRange(n, p, r.ID())
	if r.ID() == 0 {
		// Generation cost: one pass over the matrix.
		r.Node().Memcpy(r.Proc(), n*n*mpi.BytesPerComplex)
		var full []complex128
		if compute {
			full = make([]complex128, n*n)
			b := &funclib.Block{Region: model.Region{Rows: n, Cols: n}, Data: full}
			funclib.FillSource(b, seed, iter)
		}
		parts := make([]mpi.Payload, p)
		for q := 0; q < p; q++ {
			qlo, qhi := rowRange(n, p, q)
			if compute {
				parts[q] = mpi.ComplexPayload(full[qlo*n : qhi*n])
			} else {
				parts[q] = mpi.Payload{Bytes: (qhi - qlo) * n * mpi.BytesPerComplex}
			}
		}
		return payloadRows(r.Scatter(0, parts), (hi-lo)*n, compute)
	}
	return payloadRows(r.Scatter(0, nil), (hi-lo)*n, compute)
}

// payloadRows extracts or fabricates a local block from a payload.
func payloadRows(p mpi.Payload, elems int, compute bool) []complex128 {
	if compute {
		// Copy: the baseline works in place on its own buffer.
		out := make([]complex128, elems)
		copy(out, p.Complex())
		return out
	}
	return make([]complex128, 0)
}

// gatherRows collects row blocks at rank 0 into out.
func gatherRows(r *mpi.Rank, local []complex128, n int, compute bool, out *isspl.Matrix) {
	p := r.Size()
	lo, hi := rowRange(n, p, r.ID())
	var body mpi.Payload
	if compute {
		body = mpi.ComplexPayload(local)
	} else {
		body = mpi.Payload{Bytes: (hi - lo) * n * mpi.BytesPerComplex}
	}
	parts := r.Gather(0, body)
	if r.ID() == 0 && compute {
		for q := 0; q < p; q++ {
			qlo := q * n / p
			copy(out.Data[qlo*n:], parts[q].Complex())
		}
	}
}

// cornerTurnExchangeAlg performs the tuned distributed corner turn: pack
// tiles, vendor all-to-all, unpack transposed. local is this rank's row
// block of X; the return value is this rank's row block of X^T.
func cornerTurnExchangeAlg(r *mpi.Rank, local []complex128, n int, compute bool, alg mpi.AlltoallAlgorithm) []complex128 {
	p := r.Size()
	myLo, myHi := rowRange(n, p, r.ID())
	myRows := myHi - myLo

	parts := make([]mpi.Payload, p)
	for q := 0; q < p; q++ {
		qLo, qHi := rowRange(n, p, q)
		w := qHi - qLo
		// Pack cost: one copy of the tile.
		r.Node().Memcpy(r.Proc(), myRows*w*mpi.BytesPerComplex)
		if compute {
			tile := make([]complex128, myRows*w)
			isspl.GatherTile(tile, local, myRows, n, 0, qLo, myRows, w)
			parts[q] = mpi.ComplexPayload(tile)
		} else {
			parts[q] = mpi.Payload{Bytes: myRows * w * mpi.BytesPerComplex}
		}
	}
	got := r.Alltoall(parts, alg)

	out := make([]complex128, 0)
	if compute {
		out = make([]complex128, myRows*n)
	}
	for q := 0; q < p; q++ {
		qLo, qHi := rowRange(n, p, q)
		h := qHi - qLo
		// Unpack cost: one copy of the tile.
		r.Node().Memcpy(r.Proc(), h*myRows*mpi.BytesPerComplex)
		if compute {
			// Tile from q: q's rows [qLo, qHi) x my cols [myLo, myHi),
			// stored row-major h x myRows; transpose into my block of X^T.
			isspl.ScatterTileTransposed(out, got[q].Complex(), n, 0, qLo, h, myRows)
		}
	}
	return out
}

// FFT2D runs the hand-coded Parallel 2D FFT: scatter rows, row FFTs, corner
// turn, row FFTs again (equivalent to column FFTs of the original), gather.
// The gathered result is the transpose of the 2D FFT; Output holds it
// re-transposed into natural orientation (outside the timed region, as the
// orientation convention is a reporting choice, not part of the benchmark).
func FFT2D(cfg Config) (*Result, error) {
	res, err := run(cfg, func(r *mpi.Rank, iter int, compute bool, out *isspl.Matrix) {
		n, p := cfg.N, r.Size()
		lo, hi := rowRange(n, p, r.ID())
		myRows := hi - lo
		var local []complex128
		phase(r, "scatter", iter, func() {
			local = scatterRows(r, n, cfg.Seed, iter, compute)
		})

		// Row FFTs, in place (no extra buffer: the hand-coded advantage).
		phase(r, "fft-rows", iter, func() {
			r.Node().ComputeFlops(r.Proc(), isspl.FFTRowsFlops(myRows, n))
			if compute {
				mustFFTRows(local, myRows, n)
			}
		})

		phase(r, "corner-turn", iter, func() {
			local = cornerTurnExchangeAlg(r, local, n, compute, mpi.AlgorithmFor(cfg.Platform.AllToAll))
		})

		phase(r, "fft-rows", iter, func() {
			r.Node().ComputeFlops(r.Proc(), isspl.FFTRowsFlops(myRows, n))
			if compute {
				mustFFTRows(local, myRows, n)
			}
		})

		phase(r, "gather", iter, func() {
			gatherRows(r, local, n, compute, out)
		})
	})
	if err != nil {
		return nil, err
	}
	// Undo the transposed orientation for reporting/verification.
	isspl.TransposeSquare(res.Output.Data, cfg.N)
	return res, nil
}

// CornerTurn runs the hand-coded Distributed Corner Turn: scatter rows,
// exchange + local transpose, gather. Output is X^T.
func CornerTurn(cfg Config) (*Result, error) {
	return run(cfg, func(r *mpi.Rank, iter int, compute bool, out *isspl.Matrix) {
		var local []complex128
		phase(r, "scatter", iter, func() {
			local = scatterRows(r, cfg.N, cfg.Seed, iter, compute)
		})
		phase(r, "exchange", iter, func() {
			local = cornerTurnExchangeAlg(r, local, cfg.N, compute, mpi.AlgorithmFor(cfg.Platform.AllToAll))
		})
		phase(r, "gather", iter, func() {
			gatherRows(r, local, cfg.N, compute, out)
		})
	})
}

func mustFFTRows(data []complex128, rows, cols int) {
	if err := isspl.FFTRows(data, rows, cols); err != nil {
		panic(err) // lengths validated by Config
	}
}
