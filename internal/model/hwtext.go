package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Textual hardware format, mirroring the hardware editor's hierarchy
// (processor -> board -> system). Durations use Go syntax ("15us"),
// rates are plain floats in Hz / bytes-per-second.
//
//	hardware <name> boards <n>
//	processor <name> clock <hz> flops-per-cycle <f> memcopy-bw <Bps>
//	board <name> procs <n> intra-latency <dur> intra-bw <Bps>
//	fabric <name> latency <dur> bw <Bps> concurrency <n> send-overhead <dur> recv-overhead <dur> alltoall <alg>

// WriteHWText serialises the hardware system.
func (s *HWSystem) WriteHWText(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "hardware %s boards %d\n", s.Name, s.NumBoards)
	p := s.Board.Proc
	fmt.Fprintf(bw, "processor %s clock %g flops-per-cycle %g memcopy-bw %g\n",
		p.Name, p.ClockHz, p.FlopsPerCycle, p.MemCopyBW)
	fmt.Fprintf(bw, "board %s procs %d intra-latency %s intra-bw %g\n",
		s.Board.Name, s.Board.NumProcs, time.Duration(s.Board.IntraLatency), s.Board.IntraBW)
	f := s.Fabric
	fmt.Fprintf(bw, "fabric %s latency %s bw %g concurrency %d send-overhead %s recv-overhead %s alltoall %s\n",
		f.Name, time.Duration(f.Latency), f.BW, f.Concurrency,
		time.Duration(f.SendOverhead), time.Duration(f.RecvOverhead), f.AllToAll)
	return bw.Flush()
}

// hwFields parses "key value key value ..." pairs after the leading name.
type hwFields map[string]string

func parseHWLine(fields []string) (name string, kv hwFields, err error) {
	if len(fields) < 2 {
		return "", nil, fmt.Errorf("want: <directive> <name> key value ...")
	}
	name = fields[1]
	kv = hwFields{}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return "", nil, fmt.Errorf("odd key/value list")
	}
	for i := 0; i < len(rest); i += 2 {
		kv[rest[i]] = rest[i+1]
	}
	return name, kv, nil
}

func (kv hwFields) float(key string) (float64, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("missing %q", key)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %v", key, err)
	}
	return f, nil
}

func (kv hwFields) integer(key string) (int, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("missing %q", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %v", key, err)
	}
	return n, nil
}

func (kv hwFields) duration(key string) (time.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("missing %q", key)
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("bad %q: %v", key, err)
	}
	return d, nil
}

// ReadHWText parses a serialised hardware system and validates it.
func ReadHWText(r io.Reader) (*HWSystem, error) {
	sc := bufio.NewScanner(r)
	sys := &HWSystem{}
	lineNo := 0
	fail := func(format string, args ...any) (*HWSystem, error) {
		return nil, fmt.Errorf("model: hw line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		name, kv, err := parseHWLine(fields)
		if err != nil {
			return fail("%v", err)
		}
		switch fields[0] {
		case "hardware":
			sys.Name = name
			if sys.NumBoards, err = kv.integer("boards"); err != nil {
				return fail("%v", err)
			}
		case "processor":
			p := &Processor{Name: name}
			if p.ClockHz, err = kv.float("clock"); err != nil {
				return fail("%v", err)
			}
			if p.FlopsPerCycle, err = kv.float("flops-per-cycle"); err != nil {
				return fail("%v", err)
			}
			if p.MemCopyBW, err = kv.float("memcopy-bw"); err != nil {
				return fail("%v", err)
			}
			if sys.Board == nil {
				sys.Board = &Board{}
			}
			sys.Board.Proc = p
		case "board":
			if sys.Board == nil {
				sys.Board = &Board{}
			}
			b := sys.Board
			b.Name = name
			if b.NumProcs, err = kv.integer("procs"); err != nil {
				return fail("%v", err)
			}
			if b.IntraLatency, err = kv.duration("intra-latency"); err != nil {
				return fail("%v", err)
			}
			if b.IntraBW, err = kv.float("intra-bw"); err != nil {
				return fail("%v", err)
			}
		case "fabric":
			f := &Fabric{Name: name}
			if f.Latency, err = kv.duration("latency"); err != nil {
				return fail("%v", err)
			}
			if f.BW, err = kv.float("bw"); err != nil {
				return fail("%v", err)
			}
			if f.Concurrency, err = kv.integer("concurrency"); err != nil {
				return fail("%v", err)
			}
			if f.SendOverhead, err = kv.duration("send-overhead"); err != nil {
				return fail("%v", err)
			}
			if f.RecvOverhead, err = kv.duration("recv-overhead"); err != nil {
				return fail("%v", err)
			}
			f.AllToAll = kv["alltoall"]
			sys.Fabric = f
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("model: hardware text: %w", err)
	}
	return sys, nil
}
