package model

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// buildPipeline constructs a minimal valid app: src -> work (T threads) -> sink.
func buildPipeline(t *testing.T, workThreads int) *App {
	t.Helper()
	a := NewApp("pipe")
	mt, err := a.AddType(&DataType{Name: "m", Rows: 16, Cols: 16, Elem: ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := a.AddFunction(&Function{Name: "src", Kind: "source_matrix", Threads: 1})
	src.AddOutput("out", mt, ByRows)
	work := a.AddFunction(&Function{Name: "work", Kind: "fft_rows", Threads: workThreads})
	work.AddInput("in", mt, ByRows)
	work.AddOutput("out", mt, ByRows)
	sink := a.AddFunction(&Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, ByRows)
	if _, err := a.Connect("src", "out", "work", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect("work", "out", "sink", "in"); err != nil {
		t.Fatal(err)
	}
	a.AssignIDs()
	return a
}

func TestDataTypeValidate(t *testing.T) {
	good := &DataType{Name: "x", Rows: 4, Cols: 4, Elem: ElemComplex}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []*DataType{
		{Name: "", Rows: 4, Cols: 4, Elem: ElemComplex},
		{Name: "x", Rows: 0, Cols: 4, Elem: ElemComplex},
		{Name: "x", Rows: 4, Cols: -1, Elem: ElemComplex},
		{Name: "x", Rows: 4, Cols: 4, Elem: "quaternion"},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad type %d accepted", i)
		}
	}
}

func TestDataTypeBytes(t *testing.T) {
	tt := &DataType{Name: "x", Rows: 4, Cols: 8, Elem: ElemComplex}
	if tt.Elems() != 32 || tt.Bytes() != 256 {
		t.Fatalf("elems=%d bytes=%d", tt.Elems(), tt.Bytes())
	}
	ft := &DataType{Name: "f", Rows: 2, Cols: 2, Elem: ElemFloat}
	if ft.Bytes() != 16 {
		t.Fatalf("float bytes = %d", ft.Bytes())
	}
	bt := &DataType{Name: "b", Rows: 3, Cols: 1, Elem: ElemByte}
	if bt.Bytes() != 3 {
		t.Fatalf("byte bytes = %d", bt.Bytes())
	}
}

func TestPartitionByRows(t *testing.T) {
	// 10 rows over 4 threads: 2,3,2,3 split by the block formula.
	sizes := []int{}
	for i := 0; i < 4; i++ {
		r, err := Partition(ByRows, 10, 6, 4, i)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cols != 6 || r.C0 != 0 {
			t.Fatalf("thread %d region %v should span all cols", i, r)
		}
		sizes = append(sizes, r.Rows)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 10 {
		t.Fatalf("row partitions %v do not cover 10 rows", sizes)
	}
}

func TestPartitionPropertyCoverDisjoint(t *testing.T) {
	// Property: for any striping and thread count, partitions are disjoint
	// and cover the whole data set.
	check := func(rowsRaw, colsRaw, tRaw uint8, byCols bool) bool {
		rows := 1 + int(rowsRaw%64)
		cols := 1 + int(colsRaw%64)
		s := ByRows
		limit := rows
		if byCols {
			s = ByCols
			limit = cols
		}
		tn := 1 + int(tRaw)%limit
		covered := 0
		var regions []Region
		for i := 0; i < tn; i++ {
			r, err := Partition(s, rows, cols, tn, i)
			if err != nil {
				return false
			}
			covered += r.Elems()
			regions = append(regions, r)
		}
		if covered != rows*cols {
			return false
		}
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				if !regions[i].Intersect(regions[j]).Empty() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionReplicated(t *testing.T) {
	for i := 0; i < 3; i++ {
		r, err := Partition(Replicated, 8, 8, 3, i)
		if err != nil {
			t.Fatal(err)
		}
		if r != (Region{Rows: 8, Cols: 8}) {
			t.Fatalf("replicated partition %v", r)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(ByRows, 8, 8, 0, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := Partition(ByRows, 8, 8, 2, 2); err == nil {
		t.Error("index out of range accepted")
	}
	if _, err := Partition("diagonal", 8, 8, 2, 0); err == nil {
		t.Error("bad striping accepted")
	}
}

func TestRegionIntersect(t *testing.T) {
	a := Region{R0: 0, C0: 0, Rows: 4, Cols: 4}
	b := Region{R0: 2, C0: 2, Rows: 4, Cols: 4}
	got := a.Intersect(b)
	if got != (Region{R0: 2, C0: 2, Rows: 2, Cols: 2}) {
		t.Fatalf("intersect = %v", got)
	}
	c := Region{R0: 10, C0: 10, Rows: 2, Cols: 2}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
	if a.Intersect(c).Elems() != 0 {
		t.Fatal("empty region has elements")
	}
	if s := b.String(); !strings.Contains(s, "4x4") {
		t.Fatalf("String = %q", s)
	}
}

func TestValidateAcceptsPipeline(t *testing.T) {
	a := buildPipeline(t, 4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesUndrivenInput(t *testing.T) {
	a := buildPipeline(t, 4)
	extra := a.AddFunction(&Function{Name: "orphan", Kind: "fft_rows", Threads: 1})
	extra.AddInput("in", a.MustType("m"), ByRows)
	extra.AddOutput("out", a.MustType("m"), ByRows)
	err := a.Validate()
	if err == nil || !strings.Contains(err.Error(), "not driven") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesDuplicateNamesAndBadThreads(t *testing.T) {
	a := buildPipeline(t, 4)
	a.AddFunction(&Function{Name: "src", Kind: "source_matrix", Threads: 0})
	err := a.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "threads") {
		t.Fatalf("thread error missing: %v", err)
	}
}

func TestValidateCatchesShapeMismatch(t *testing.T) {
	a := buildPipeline(t, 4)
	small, _ := a.AddType(&DataType{Name: "small", Rows: 4, Cols: 4, Elem: ElemComplex})
	bad := a.AddFunction(&Function{Name: "bad", Kind: "sink_matrix", Threads: 1})
	bad.AddInput("in", small, ByRows)
	if _, err := a.Connect("work", "out", "bad", "in"); err != nil {
		t.Fatal(err)
	}
	err := a.Validate()
	if err == nil || !strings.Contains(err.Error(), "incompatible shapes") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesOverStriping(t *testing.T) {
	a := NewApp("x")
	mt, _ := a.AddType(&DataType{Name: "m", Rows: 2, Cols: 2, Elem: ElemComplex})
	f := a.AddFunction(&Function{Name: "f", Kind: "fft_rows", Threads: 8})
	f.AddInput("in", mt, ByRows)
	f.AddOutput("out", mt, ByRows)
	err := a.Validate()
	if err == nil || !strings.Contains(err.Error(), "stripes") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	a := NewApp("cyc")
	mt, _ := a.AddType(&DataType{Name: "m", Rows: 4, Cols: 4, Elem: ElemComplex})
	f1 := a.AddFunction(&Function{Name: "f1", Kind: "k", Threads: 1})
	f1.AddInput("in", mt, Replicated)
	f1.AddOutput("out", mt, Replicated)
	f2 := a.AddFunction(&Function{Name: "f2", Kind: "k", Threads: 1})
	f2.AddInput("in", mt, Replicated)
	f2.AddOutput("out", mt, Replicated)
	if _, err := a.Connect("f1", "out", "f2", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect("f2", "out", "f1", "in"); err != nil {
		t.Fatal(err)
	}
	a.AssignIDs()
	err := a.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestConnectErrors(t *testing.T) {
	a := buildPipeline(t, 2)
	if _, err := a.Connect("nosuch", "out", "sink", "in"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := a.Connect("src", "nosuch", "sink", "in"); err == nil {
		t.Error("unknown port accepted")
	}
	if _, err := a.Connect("sink", "in", "src", "out"); err == nil {
		t.Error("reversed arc accepted")
	}
}

func TestTopoOrderAndSourcesSinks(t *testing.T) {
	a := buildPipeline(t, 2)
	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0].Name != "src" || order[2].Name != "sink" {
		t.Fatalf("order = %v", []string{order[0].Name, order[1].Name, order[2].Name})
	}
	if s := a.Sources(); len(s) != 1 || s[0].Name != "src" {
		t.Fatalf("sources = %v", s)
	}
	if s := a.Sinks(); len(s) != 1 || s[0].Name != "sink" {
		t.Fatalf("sinks = %v", s)
	}
}

func TestAssignIDsDesignerOrder(t *testing.T) {
	a := buildPipeline(t, 2)
	for i, f := range a.Functions {
		if f.ID != i {
			t.Fatalf("function %s has ID %d, want %d", f.Name, f.ID, i)
		}
	}
}

func TestFlattenComposite(t *testing.T) {
	a := NewApp("comp")
	mt, _ := a.AddType(&DataType{Name: "m", Rows: 16, Cols: 16, Elem: ElemComplex})

	src := a.AddFunction(&Function{Name: "src", Kind: "source_matrix", Threads: 1})
	src.AddOutput("out", mt, ByRows)

	// Composite "stage" wraps two chained leaf functions.
	inner1 := &Function{Name: "a", Kind: "fft_rows", Threads: 2}
	in1 := inner1.AddInput("in", mt, ByRows)
	out1 := inner1.AddOutput("out", mt, ByRows)
	inner2 := &Function{Name: "b", Kind: "fft_rows", Threads: 2}
	in2 := inner2.AddInput("in", mt, ByRows)
	out2 := inner2.AddOutput("out", mt, ByRows)

	comp := &Function{Name: "stage", Threads: 1}
	cin := comp.AddInput("in", mt, ByRows)
	cout := comp.AddOutput("out", mt, ByRows)
	comp.Body = &Subgraph{
		Functions: []*Function{inner1, inner2},
		Arcs:      []*Arc{{From: out1, To: in2}},
		Bind:      map[*Port]*Port{cin: in1, cout: out2},
	}
	a.AddFunction(comp)

	sink := a.AddFunction(&Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, ByRows)
	if _, err := a.Connect("src", "out", "stage", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect("stage", "out", "sink", "in"); err != nil {
		t.Fatal(err)
	}

	flat, err := a.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Functions) != 4 {
		t.Fatalf("flattened to %d functions, want 4", len(flat.Functions))
	}
	if flat.Function("stage/a") == nil || flat.Function("stage/b") == nil {
		t.Fatal("inner functions not present with prefixed names")
	}
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(flat.Arcs) != 3 {
		t.Fatalf("flattened arcs = %d, want 3", len(flat.Arcs))
	}
}

func TestFlattenUnboundPortFails(t *testing.T) {
	a := NewApp("comp")
	mt, _ := a.AddType(&DataType{Name: "m", Rows: 4, Cols: 4, Elem: ElemComplex})
	comp := &Function{Name: "c", Threads: 1}
	comp.AddInput("in", mt, ByRows)
	comp.Body = &Subgraph{Bind: map[*Port]*Port{}}
	a.AddFunction(comp)
	if _, err := a.Flatten(); err == nil {
		t.Fatal("unbound boundary port accepted")
	}
}

func TestMappingValidate(t *testing.T) {
	a := buildPipeline(t, 4)
	m := NewMapping()
	m.Set("src", 0)
	m.Set("work", 0, 1, 2, 3)
	m.Set("sink", 0)
	if err := m.Validate(a, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(a, 2); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	m.Set("work", 0, 1)
	if err := m.Validate(a, 4); err == nil {
		t.Fatal("wrong thread count accepted")
	}
	delete(m.Assign, "src")
	if err := m.Validate(a, 4); err == nil {
		t.Fatal("missing function accepted")
	}
}

func TestMappingHelpers(t *testing.T) {
	m := NewMapping()
	m.Set("f", 3, 1)
	n, err := m.NodeOf("f", 1)
	if err != nil || n != 1 {
		t.Fatalf("NodeOf = %d, %v", n, err)
	}
	if _, err := m.NodeOf("g", 0); err == nil {
		t.Fatal("unknown fn accepted")
	}
	if _, err := m.NodeOf("f", 5); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
	used := m.NodesUsed()
	if len(used) != 2 || used[0] != 1 || used[1] != 3 {
		t.Fatalf("NodesUsed = %v", used)
	}
	cl := m.Clone()
	cl.Set("f", 0, 0)
	if m.Assign["f"][0] != 3 {
		t.Fatal("Clone aliases")
	}
}

func TestRoundRobinAndSpreadParallel(t *testing.T) {
	a := buildPipeline(t, 4)
	rr := RoundRobin(a, 4)
	if err := rr.Validate(a, 4); err != nil {
		t.Fatal(err)
	}
	sp, err := SpreadParallel(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(a, 4); err != nil {
		t.Fatal(err)
	}
	// SpreadParallel puts work thread i on node i.
	for i := 0; i < 4; i++ {
		if sp.Assign["work"][i] != i {
			t.Fatalf("work mapping = %v", sp.Assign["work"])
		}
	}
	if _, err := SpreadParallel(a, 2); err == nil {
		t.Fatal("over-wide function accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	a := buildPipeline(t, 4)
	a.Function("work").Params = map[string]any{"size": 16, "scale": 1.5, "label": "hello world"}
	a.Function("work").SetProp("probe", true)
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\ntext:\n%s", err, buf.String())
	}
	if got.Name != "pipe" || len(got.Functions) != 3 || len(got.Arcs) != 2 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	w := got.Function("work")
	if w.Params["size"] != 16 || w.Params["scale"] != 1.5 || w.Params["label"] != "hello world" {
		t.Fatalf("params = %v", w.Params)
	}
	if w.Props["probe"] != true {
		t.Fatalf("props = %v", w.Props)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Serialise again: stable output.
	var buf2 bytes.Buffer
	if err := got.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("serialisation not stable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no app":         "type m 4 4 complex\n",
		"bad type":       "app x\ntype m zero 4 complex\n",
		"dup type":       "app x\ntype m 4 4 complex\ntype m 4 4 complex\n",
		"unknown type":   "app x\nfunction f k threads 1\n  in p nosuch rows\n",
		"bad stripe":     "app x\ntype m 4 4 complex\nfunction f k threads 1\n  in p m diagonal\n",
		"port no fn":     "app x\ntype m 4 4 complex\n  in p m rows\n",
		"bad arc":        "app x\narc a b c\n",
		"unknown arc fn": "app x\narc a.x -> b.y\n",
		"bad directive":  "app x\nfrobnicate\n",
		"bad threads":    "app x\nfunction f k threads many\n",
	}
	for name, text := range cases {
		if _, err := ReadText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestReadTextComments(t *testing.T) {
	text := "# a comment\napp x\n\n# another\ntype m 4 4 complex\n"
	a, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Types) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestMappingTextRoundTrip(t *testing.T) {
	m := NewMapping()
	m.Set("alpha", 0, 1, 2)
	m.Set("beta", 3)
	var buf bytes.Buffer
	if err := m.WriteText(&buf, "myapp"); err != nil {
		t.Fatal(err)
	}
	got, app, err := ReadMappingText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if app != "myapp" {
		t.Fatalf("app = %q", app)
	}
	if len(got.Assign["alpha"]) != 3 || got.Assign["beta"][0] != 3 {
		t.Fatalf("assign = %v", got.Assign)
	}
}

func TestReadMappingErrors(t *testing.T) {
	for name, text := range map[string]string{
		"no header": "map f 0\n",
		"bad node":  "mapping x\nmap f zero\n",
		"short map": "mapping x\nmap f\n",
		"unknown":   "mapping x\nfrob\n",
	} {
		if _, _, err := ReadMappingText(strings.NewReader(text)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestHWSystemPlatformRoundTrip(t *testing.T) {
	proc := &Processor{Name: "ppc603e", ClockHz: 200e6, FlopsPerCycle: 0.3, MemCopyBW: 85e6}
	sys := &HWSystem{
		Name:      "CSPI-like",
		Board:     &Board{Name: "quad", Proc: proc, NumProcs: 4, IntraLatency: 5000, IntraBW: 240e6},
		NumBoards: 2,
		Fabric:    &Fabric{Name: "myrinet", Latency: 15000, BW: 160e6, Concurrency: 8, SendOverhead: 8000, RecvOverhead: 8000, AllToAll: "pairwise"},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d", sys.NumNodes())
	}
	pl := sys.Platform()
	back := SystemFromPlatform(pl, 2)
	if back.Platform() != pl {
		t.Fatalf("platform round trip: %+v vs %+v", back.Platform(), pl)
	}
}

func TestHWSystemValidateErrors(t *testing.T) {
	if err := (&HWSystem{}).Validate(); err == nil {
		t.Fatal("empty system accepted")
	}
	sys := &HWSystem{Name: "x", Board: &Board{Proc: &Processor{}, NumProcs: 1}, NumBoards: 0, Fabric: &Fabric{}}
	if err := sys.Validate(); err == nil {
		t.Fatal("zero boards accepted")
	}
}

func TestFunctionPropAndPort(t *testing.T) {
	f := &Function{Name: "f", Kind: "k", Threads: 1}
	if f.Prop("missing", 42) != 42 {
		t.Fatal("default not returned")
	}
	f.SetProp("x", "y")
	if f.Prop("x", nil) != "y" {
		t.Fatal("prop not stored")
	}
	if f.Port("nosuch") != nil {
		t.Fatal("phantom port")
	}
	if f.IsComposite() {
		t.Fatal("leaf reported composite")
	}
}
