package model

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Textual model format. The Designer's graphical models serialise to a
// line-oriented form so they can be stored, diffed and re-loaded ("stored on
// software and hardware shelves for later reuse", §1.1). Composite blocks
// are expanded by Flatten before saving; the on-disk form holds only leaf
// functions.
//
//	app <name>
//	type <name> <rows> <cols> <elem>
//	function <name> <kind> threads <n>
//	  param <key> <value>
//	  prop <key> <value>
//	  in <port> <type> <striping>
//	  out <port> <type> <striping>
//	arc <fn>.<port> -> <fn>.<port>
//
// Mapping files:
//
//	mapping <appname>
//	map <function> <node> [<node> ...]

// WriteText serialises the application model.
func (a *App) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "app %s\n", a.Name)
	names := make([]string, 0, len(a.Types))
	for n := range a.Types {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := a.Types[n]
		fmt.Fprintf(bw, "type %s %d %d %s\n", t.Name, t.Rows, t.Cols, t.Elem)
	}
	for _, f := range a.Functions {
		if f.IsComposite() {
			return fmt.Errorf("model: cannot serialise composite function %q; flatten first", f.Name)
		}
		fmt.Fprintf(bw, "function %s %s threads %d\n", f.Name, f.Kind, f.Threads)
		for _, k := range sortedKeys(f.Params) {
			fmt.Fprintf(bw, "  param %s %v\n", k, f.Params[k])
		}
		for _, k := range sortedKeys(f.Props) {
			fmt.Fprintf(bw, "  prop %s %v\n", k, f.Props[k])
		}
		for _, p := range f.Inputs {
			fmt.Fprintf(bw, "  in %s %s %s\n", p.Name, p.Type.Name, p.Striping)
		}
		for _, p := range f.Outputs {
			fmt.Fprintf(bw, "  out %s %s %s\n", p.Name, p.Type.Name, p.Striping)
		}
	}
	for _, arc := range a.Arcs {
		fmt.Fprintf(bw, "arc %s -> %s\n", arc.From.QualifiedName(), arc.To.QualifiedName())
	}
	return bw.Flush()
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseScalar interprets a textual param/prop value as int, float or string.
func parseScalar(s string) any {
	if i, err := strconv.Atoi(s); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if s == "true" {
		return true
	}
	if s == "false" {
		return false
	}
	return s
}

// ReadText parses a serialised application model.
func ReadText(r io.Reader) (*App, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var app *App
	var cur *Function
	lineNo := 0
	fail := func(format string, args ...any) (*App, error) {
		return nil, fmt.Errorf("model: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "app":
			if len(fields) != 2 {
				return fail("app wants 1 argument")
			}
			if app != nil {
				return fail("duplicate app line")
			}
			app = NewApp(fields[1])
		case "type":
			if app == nil {
				return fail("type before app")
			}
			if len(fields) != 5 {
				return fail("type wants: name rows cols elem")
			}
			rows, err1 := strconv.Atoi(fields[2])
			cols, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return fail("bad type shape %q %q", fields[2], fields[3])
			}
			if _, err := app.AddType(&DataType{Name: fields[1], Rows: rows, Cols: cols, Elem: ElemKind(fields[4])}); err != nil {
				return fail("%v", err)
			}
		case "function":
			if app == nil {
				return fail("function before app")
			}
			if len(fields) != 5 || fields[3] != "threads" {
				return fail("function wants: name kind threads n")
			}
			th, err := strconv.Atoi(fields[4])
			if err != nil {
				return fail("bad thread count %q", fields[4])
			}
			cur = &Function{Name: fields[1], Kind: fields[2], Threads: th}
			app.AddFunction(cur)
		case "param", "prop":
			if cur == nil {
				return fail("%s outside function", fields[0])
			}
			if len(fields) < 3 {
				return fail("%s wants: key value", fields[0])
			}
			val := parseScalar(strings.Join(fields[2:], " "))
			if fields[0] == "param" {
				if cur.Params == nil {
					cur.Params = map[string]any{}
				}
				cur.Params[fields[1]] = val
			} else {
				cur.SetProp(fields[1], val)
			}
		case "in", "out":
			if cur == nil {
				return fail("port outside function")
			}
			if len(fields) != 4 {
				return fail("port wants: name type striping")
			}
			t, ok := app.Types[fields[2]]
			if !ok {
				return fail("unknown type %q", fields[2])
			}
			s := StripeKind(fields[3])
			if !ValidStripe(s) {
				return fail("invalid striping %q", fields[3])
			}
			if fields[0] == "in" {
				cur.AddInput(fields[1], t, s)
			} else {
				cur.AddOutput(fields[1], t, s)
			}
		case "arc":
			if app == nil {
				return fail("arc before app")
			}
			if len(fields) != 4 || fields[2] != "->" {
				return fail("arc wants: src.port -> dst.port")
			}
			from, err := splitPortRef(fields[1])
			if err != nil {
				return fail("%v", err)
			}
			to, err := splitPortRef(fields[3])
			if err != nil {
				return fail("%v", err)
			}
			if _, err := app.Connect(from[0], from[1], to[0], to[1]); err != nil {
				return fail("%v", err)
			}
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if app == nil {
		return nil, fmt.Errorf("model: empty model text")
	}
	app.AssignIDs()
	return app, nil
}

func splitPortRef(s string) ([2]string, error) {
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return [2]string{}, fmt.Errorf("bad port reference %q, want fn.port", s)
	}
	return [2]string{s[:i], s[i+1:]}, nil
}

// WriteText serialises the mapping.
func (m *Mapping) WriteText(w io.Writer, appName string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mapping %s\n", appName)
	fns := make([]string, 0, len(m.Assign))
	for fn := range m.Assign {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		parts := make([]string, len(m.Assign[fn]))
		for i, n := range m.Assign[fn] {
			parts[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(bw, "map %s %s\n", fn, strings.Join(parts, " "))
	}
	return bw.Flush()
}

// ReadMappingText parses a serialised mapping, returning it with the
// application name it declares.
func ReadMappingText(r io.Reader) (*Mapping, string, error) {
	sc := bufio.NewScanner(r)
	m := NewMapping()
	appName := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "mapping":
			if len(fields) != 2 {
				return nil, "", fmt.Errorf("model: line %d: mapping wants app name", lineNo)
			}
			appName = fields[1]
		case "map":
			if len(fields) < 3 {
				return nil, "", fmt.Errorf("model: line %d: map wants function and nodes", lineNo)
			}
			nodes := make([]int, 0, len(fields)-2)
			for _, f := range fields[2:] {
				n, err := strconv.Atoi(f)
				if err != nil {
					return nil, "", fmt.Errorf("model: line %d: bad node %q", lineNo, f)
				}
				nodes = append(nodes, n)
			}
			m.Set(fields[1], nodes...)
		default:
			return nil, "", fmt.Errorf("model: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if appName == "" {
		return nil, "", fmt.Errorf("model: mapping text missing 'mapping' header")
	}
	return m, appName, nil
}
