package model

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func demoSystem() *HWSystem {
	return &HWSystem{
		Name: "demo",
		Board: &Board{
			Name:         "quad",
			Proc:         &Processor{Name: "ppc", ClockHz: 200e6, FlopsPerCycle: 0.3, MemCopyBW: 180e6},
			NumProcs:     4,
			IntraLatency: 5 * time.Microsecond,
			IntraBW:      240e6,
		},
		NumBoards: 2,
		Fabric: &Fabric{
			Name: "myrinet", Latency: 15 * time.Microsecond, BW: 160e6, Concurrency: 8,
			SendOverhead: 8 * time.Microsecond, RecvOverhead: 8 * time.Microsecond, AllToAll: "pairwise",
		},
	}
}

func TestHWTextRoundTrip(t *testing.T) {
	sys := demoSystem()
	var buf bytes.Buffer
	if err := sys.WriteHWText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHWText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\ntext:\n%s", err, buf.String())
	}
	if got.Platform() != sys.Platform() {
		t.Fatalf("platforms differ:\n%+v\n%+v", got.Platform(), sys.Platform())
	}
	if got.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d", got.NumNodes())
	}
	// Stable output.
	var buf2 bytes.Buffer
	if err := got.WriteHWText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("not stable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestWriteHWTextRejectsInvalid(t *testing.T) {
	sys := demoSystem()
	sys.NumBoards = 0
	if err := sys.WriteHWText(&bytes.Buffer{}); err == nil {
		t.Fatal("invalid system serialised")
	}
}

func TestReadHWTextErrors(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := demoSystem().WriteHWText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := map[string]string{
		"empty":           "",
		"missing fabric":  strings.Replace(good, "fabric", "# fabric", 1),
		"bad clock":       strings.Replace(good, "clock 2e+08", "clock fast", 1),
		"bad latency":     strings.Replace(good, "latency 15µs", "latency soon", 1),
		"odd kv":          "hardware x boards\n",
		"unknown":         "hardware x boards 1\nwarp y speed 9\n",
		"bad concurrency": strings.Replace(good, "concurrency 8", "concurrency many", 1),
		"bad alltoall":    strings.Replace(good, "alltoall pairwise", "alltoall warp", 1),
	}
	for name, text := range cases {
		if _, err := ReadHWText(strings.NewReader(text)); err == nil {
			t.Errorf("%s accepted:\n%s", name, text)
		}
	}
}

func TestReadHWTextComments(t *testing.T) {
	var buf bytes.Buffer
	if err := demoSystem().WriteHWText(&buf); err != nil {
		t.Fatal(err)
	}
	text := "# custom hardware\n\n" + buf.String()
	if _, err := ReadHWText(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
}
