package model

import (
	"errors"
	"fmt"
)

// Validate checks the structural integrity of the application model:
// non-empty names, valid types and striping, ports wired correctly, every
// input driven by exactly one arc, every output consumed, shapes compatible
// across arcs, and an acyclic dataflow graph. Kind-specific checks (does the
// function library know this Kind, are its ports right) belong to the
// function library, which layers on top.
func (a *App) Validate() error {
	var errs []error
	add := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if a.Name == "" {
		add("model: application with empty name")
	}
	for _, t := range a.Types {
		if err := t.Validate(); err != nil {
			errs = append(errs, err)
		}
	}

	seen := map[string]bool{}
	for _, f := range a.Functions {
		if f.Name == "" {
			add("model: function with empty name")
			continue
		}
		if seen[f.Name] {
			add("model: duplicate function name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Threads < 1 {
			add("model: function %q has %d threads, want >= 1", f.Name, f.Threads)
		}
		if f.Kind == "" && !f.IsComposite() {
			add("model: function %q has no kind and no body", f.Name)
		}
		for _, p := range append(append([]*Port{}, f.Inputs...), f.Outputs...) {
			if p.Fn != f {
				add("model: port %s has broken back-pointer", p.QualifiedName())
			}
			if p.Type == nil {
				add("model: port %s has no data type", p.QualifiedName())
				continue
			}
			if a.Types[p.Type.Name] != p.Type {
				add("model: port %s uses type %q not in the dictionary", p.QualifiedName(), p.Type.Name)
			}
			if !ValidStripe(p.Striping) {
				add("model: port %s has invalid striping %q", p.QualifiedName(), p.Striping)
			}
			// Striped ports must divide cleanly enough that no thread is
			// left with an empty partition.
			if p.Striping == ByRows && f.Threads > p.Type.Rows {
				add("model: port %s stripes %d rows over %d threads", p.QualifiedName(), p.Type.Rows, f.Threads)
			}
			if p.Striping == ByCols && f.Threads > p.Type.Cols {
				add("model: port %s stripes %d cols over %d threads", p.QualifiedName(), p.Type.Cols, f.Threads)
			}
		}
	}

	inDriven := map[*Port]int{}
	outUsed := map[*Port]int{}
	for _, arc := range a.Arcs {
		if arc.From == nil || arc.To == nil {
			add("model: arc with nil endpoint")
			continue
		}
		if arc.From.Dir != Out {
			add("model: arc source %s is not an output", arc.From.QualifiedName())
		}
		if arc.To.Dir != In {
			add("model: arc destination %s is not an input", arc.To.QualifiedName())
		}
		inDriven[arc.To]++
		outUsed[arc.From]++
		// Arc endpoints must agree on the data set shape; the striping may
		// differ (that is how redistribution is expressed) but the logical
		// data set is one and the same.
		ft, tt := arc.From.Type, arc.To.Type
		if ft != nil && tt != nil {
			if ft.Rows != tt.Rows || ft.Cols != tt.Cols || ft.Elem != tt.Elem {
				add("model: arc %s connects incompatible shapes %dx%d(%s) -> %dx%d(%s)",
					arc, ft.Rows, ft.Cols, ft.Elem, tt.Rows, tt.Cols, tt.Elem)
			}
		}
	}
	for _, f := range a.Functions {
		for _, p := range f.Inputs {
			switch inDriven[p] {
			case 0:
				add("model: input %s is not driven by any arc", p.QualifiedName())
			case 1:
			default:
				add("model: input %s is driven by %d arcs", p.QualifiedName(), inDriven[p])
			}
		}
		for _, p := range f.Outputs {
			if outUsed[p] == 0 {
				add("model: output %s is not consumed by any arc", p.QualifiedName())
			}
		}
	}

	if len(errs) == 0 {
		if _, err := a.TopoOrder(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
