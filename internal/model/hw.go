package model

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// The hardware editor builds architectures "hierarchically from the
// processor all the way up to the system level" (§1.1). These types mirror
// that hierarchy; HWSystem.Platform lowers a system design onto the machine
// simulator's flat cost model.

// Processor is a CPU shelf item.
type Processor struct {
	Name          string
	ClockHz       float64
	FlopsPerCycle float64
	MemCopyBW     float64 // bytes/s
}

// Board groups processors behind a board-local interconnect.
type Board struct {
	Name         string
	Proc         *Processor
	NumProcs     int
	IntraLatency sim.Duration
	IntraBW      float64
}

// Fabric is the inter-board interconnect of a chassis.
type Fabric struct {
	Name         string
	Latency      sim.Duration
	BW           float64
	Concurrency  int // 0 = crossbar
	SendOverhead sim.Duration
	RecvOverhead sim.Duration
	AllToAll     string
}

// HWSystem is a complete target: boards in a chassis joined by a fabric.
type HWSystem struct {
	Name      string
	Board     *Board
	NumBoards int
	Fabric    *Fabric
}

// NumNodes returns the processor count of the system.
func (s *HWSystem) NumNodes() int { return s.Board.NumProcs * s.NumBoards }

// Validate checks the hardware design for completeness.
func (s *HWSystem) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("model: hardware system with empty name")
	}
	if s.Board == nil || s.Board.Proc == nil || s.Fabric == nil {
		return fmt.Errorf("model: hardware system %q is missing board, processor or fabric", s.Name)
	}
	if s.NumBoards < 1 || s.Board.NumProcs < 1 {
		return fmt.Errorf("model: hardware system %q has %d boards x %d procs", s.Name, s.NumBoards, s.Board.NumProcs)
	}
	pl := s.Platform()
	return pl.Validate()
}

// Platform lowers the hierarchical design to the simulator's descriptor.
func (s *HWSystem) Platform() machine.Platform {
	return machine.Platform{
		Name:              s.Name,
		NodesPerBoard:     s.Board.NumProcs,
		ClockHz:           s.Board.Proc.ClockHz,
		FlopsPerCycle:     s.Board.Proc.FlopsPerCycle,
		MemCopyBW:         s.Board.Proc.MemCopyBW,
		SendOverhead:      s.Fabric.SendOverhead,
		RecvOverhead:      s.Fabric.RecvOverhead,
		IntraLatency:      s.Board.IntraLatency,
		IntraBW:           s.Board.IntraBW,
		InterLatency:      s.Fabric.Latency,
		InterBW:           s.Fabric.BW,
		FabricConcurrency: s.Fabric.Concurrency,
		AllToAll:          s.Fabric.AllToAll,
	}
}

// SystemFromPlatform reconstructs a hierarchical hardware design from a flat
// platform descriptor with the given board count (the inverse of Platform,
// used when instantiating registry platforms in the Designer).
func SystemFromPlatform(pl machine.Platform, numBoards int) *HWSystem {
	return &HWSystem{
		Name: pl.Name,
		Board: &Board{
			Name: pl.Name + "-board",
			Proc: &Processor{
				Name:          pl.Name + "-cpu",
				ClockHz:       pl.ClockHz,
				FlopsPerCycle: pl.FlopsPerCycle,
				MemCopyBW:     pl.MemCopyBW,
			},
			NumProcs:     pl.NodesPerBoard,
			IntraLatency: pl.IntraLatency,
			IntraBW:      pl.IntraBW,
		},
		NumBoards: numBoards,
		Fabric: &Fabric{
			Name:         pl.Name + "-fabric",
			Latency:      pl.InterLatency,
			BW:           pl.InterBW,
			Concurrency:  pl.FabricConcurrency,
			SendOverhead: pl.SendOverhead,
			RecvOverhead: pl.RecvOverhead,
			AllToAll:     pl.AllToAll,
		},
	}
}
