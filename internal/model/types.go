// Package model implements the SAGE Designer's three editors as data
// structures: the data type editor (types and striping/parallelisation
// relationships), the application editor (hierarchical dataflow graphs of
// functional blocks connected through ports), and the hardware editor
// (processors composed into boards, boards into systems). It also defines
// the mapping of application threads onto processors, validation for all of
// it, and a textual serialisation so models can be stored on "shelves" and
// reused, as the paper describes.
//
// The port-striping semantics follow §2 of the paper: a port is either
// replicated (every thread of the host function sees the whole data set) or
// striped (the data set is sliced among the threads). Striping here is
// two-dimensional — by rows or by columns of a matrix type — because the
// benchmark applications redistribute matrices; a row-striped producer
// feeding a column-striped consumer is precisely the distributed corner
// turn, and the glue-code generator turns that striping relationship into
// the runtime's transfer schedule.
package model

import "fmt"

// ElemKind enumerates scalar element kinds for data types.
type ElemKind string

const (
	ElemComplex ElemKind = "complex" // complex sample, 8 wire bytes (single precision)
	ElemFloat   ElemKind = "float"   // real sample, 4 wire bytes
	ElemByte    ElemKind = "byte"    // raw byte
)

// WireBytes returns the on-the-wire size of one element of kind k on the
// simulated 1999-era targets.
func (k ElemKind) WireBytes() (int, error) {
	switch k {
	case ElemComplex:
		return 8, nil
	case ElemFloat:
		return 4, nil
	case ElemByte:
		return 1, nil
	default:
		return 0, fmt.Errorf("model: unknown element kind %q", k)
	}
}

// DataType is an entry from the data type editor: a named matrix (or vector,
// when Cols == 1) of scalar elements.
type DataType struct {
	Name string
	Rows int
	Cols int
	Elem ElemKind
}

// Validate checks the type's shape and element kind.
func (t *DataType) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("model: data type with empty name")
	}
	if t.Rows < 1 || t.Cols < 1 {
		return fmt.Errorf("model: data type %q has shape %dx%d, want >= 1x1", t.Name, t.Rows, t.Cols)
	}
	if _, err := t.Elem.WireBytes(); err != nil {
		return fmt.Errorf("model: data type %q: %w", t.Name, err)
	}
	return nil
}

// Elems returns the total element count of the type.
func (t *DataType) Elems() int { return t.Rows * t.Cols }

// Bytes returns the total wire size of one data set of the type.
func (t *DataType) Bytes() int {
	b, err := t.Elem.WireBytes()
	if err != nil {
		panic(err) // validated at model load
	}
	return t.Elems() * b
}

// StripeKind is the port striping convention of §2: replicated ports carry
// the whole data set to every thread, striped ports slice it among threads.
type StripeKind string

const (
	// Replicated: every thread of the host function holds the entire data set.
	Replicated StripeKind = "replicated"
	// ByRows: thread i of T holds the contiguous row block [i*R/T, (i+1)*R/T).
	ByRows StripeKind = "rows"
	// ByCols: thread i of T holds the contiguous column block [i*C/T, (i+1)*C/T).
	ByCols StripeKind = "cols"
)

// ValidStripe reports whether s is a known striping kind.
func ValidStripe(s StripeKind) bool {
	switch s {
	case Replicated, ByRows, ByCols:
		return true
	}
	return false
}

// Region is a rectangular sub-block [R0, R0+Rows) x [C0, C0+Cols) of a data
// set; the unit of the glue code's striding computations.
type Region struct {
	R0, C0     int
	Rows, Cols int
}

// Empty reports whether the region covers no elements.
func (r Region) Empty() bool { return r.Rows <= 0 || r.Cols <= 0 }

// Elems returns the element count of the region (0 if empty).
func (r Region) Elems() int {
	if r.Empty() {
		return 0
	}
	return r.Rows * r.Cols
}

// String renders the region as rows x cols at (r0, c0).
func (r Region) String() string {
	return fmt.Sprintf("%dx%d@(%d,%d)", r.Rows, r.Cols, r.R0, r.C0)
}

// Intersect returns the overlap of two regions (possibly empty).
func (r Region) Intersect(o Region) Region {
	r0 := max(r.R0, o.R0)
	c0 := max(r.C0, o.C0)
	r1 := min(r.R0+r.Rows, o.R0+o.Rows)
	c1 := min(r.C0+r.Cols, o.C0+o.Cols)
	out := Region{R0: r0, C0: c0, Rows: r1 - r0, Cols: c1 - c0}
	if out.Empty() {
		return Region{}
	}
	return out
}

// blockRange computes the standard block distribution of n items over t
// parts: part i covers [i*n/t, (i+1)*n/t).
func blockRange(n, t, i int) (lo, hi int) {
	return i * n / t, (i + 1) * n / t
}

// Partition returns the region of a rows x cols data set held by thread i of
// t under striping s. Replicated (and any striping with t == 1) yields the
// whole data set.
func Partition(s StripeKind, rows, cols, t, i int) (Region, error) {
	if t < 1 {
		return Region{}, fmt.Errorf("model: partition over %d threads", t)
	}
	if i < 0 || i >= t {
		return Region{}, fmt.Errorf("model: partition index %d of %d threads", i, t)
	}
	whole := Region{Rows: rows, Cols: cols}
	switch s {
	case Replicated:
		return whole, nil
	case ByRows:
		lo, hi := blockRange(rows, t, i)
		return Region{R0: lo, Rows: hi - lo, Cols: cols}, nil
	case ByCols:
		lo, hi := blockRange(cols, t, i)
		return Region{C0: lo, Cols: hi - lo, Rows: rows}, nil
	default:
		return Region{}, fmt.Errorf("model: unknown striping %q", s)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
