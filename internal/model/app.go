package model

import (
	"fmt"
	"sort"
)

// Direction distinguishes input from output ports.
type Direction string

const (
	In  Direction = "in"
	Out Direction = "out"
)

// Port is a function's sending or receiving point for dataflow communication
// (§2: "A function's port object is the sending and receiving point for all
// data-flow communication between functions; the striping characteristics of
// a data-flow connection are defined on the source and destination ports").
type Port struct {
	Name     string
	Dir      Direction
	Type     *DataType
	Striping StripeKind
	Fn       *Function // back-pointer, set by App wiring
}

// QualifiedName returns "function.port".
func (p *Port) QualifiedName() string {
	if p.Fn == nil {
		return "?." + p.Name
	}
	return p.Fn.Name + "." + p.Name
}

// Partition returns the region of this port's data set held by thread i of
// the host function.
func (p *Port) Partition(i int) (Region, error) {
	return Partition(p.Striping, p.Type.Rows, p.Type.Cols, p.Fn.Threads, i)
}

// Function is a behavioural block in the application editor. Kind names an
// entry in the function library (the "software shelf"); Threads is the
// degree of data parallelism; Params are kind-specific attributes; Props are
// free-form properties that tools (and Alter scripts) may read and write.
//
// A Function with a non-nil Body is a hierarchical (composite) block whose
// behaviour is an inner subgraph; composites are expanded by App.Flatten
// before mapping and code generation.
type Function struct {
	Name    string
	Kind    string
	Threads int
	Params  map[string]any
	Props   map[string]any
	Inputs  []*Port
	Outputs []*Port
	Body    *Subgraph

	// ID is assigned by App.AssignIDs in Designer order; the runtime
	// dispatches functions by this index into the function table.
	ID int
}

// IsComposite reports whether the function is a hierarchical block.
func (f *Function) IsComposite() bool { return f.Body != nil }

// Port finds a port by name on either side, or nil.
func (f *Function) Port(name string) *Port {
	for _, p := range f.Inputs {
		if p.Name == name {
			return p
		}
	}
	for _, p := range f.Outputs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// AddInput appends an input port and wires its back-pointer.
func (f *Function) AddInput(name string, t *DataType, s StripeKind) *Port {
	p := &Port{Name: name, Dir: In, Type: t, Striping: s, Fn: f}
	f.Inputs = append(f.Inputs, p)
	return p
}

// AddOutput appends an output port and wires its back-pointer.
func (f *Function) AddOutput(name string, t *DataType, s StripeKind) *Port {
	p := &Port{Name: name, Dir: Out, Type: t, Striping: s, Fn: f}
	f.Outputs = append(f.Outputs, p)
	return p
}

// Prop reads a property with a default.
func (f *Function) Prop(key string, def any) any {
	if v, ok := f.Props[key]; ok {
		return v
	}
	return def
}

// SetProp writes a property, allocating the map lazily.
func (f *Function) SetProp(key string, v any) {
	if f.Props == nil {
		f.Props = map[string]any{}
	}
	f.Props[key] = v
}

// Arc is a dataflow connection from an output port to an input port.
type Arc struct {
	From *Port
	To   *Port
}

func (a *Arc) String() string {
	return a.From.QualifiedName() + " -> " + a.To.QualifiedName()
}

// Subgraph is the body of a composite block: inner functions and arcs, plus
// bindings from the composite's boundary ports to inner ports.
type Subgraph struct {
	Functions []*Function
	Arcs      []*Arc
	// Bind maps a boundary port of the composite to the inner port that
	// realises it (an inner input for a composite input, an inner output
	// for a composite output).
	Bind map[*Port]*Port
}

// App is an application model: the data type dictionary plus the top-level
// dataflow graph.
type App struct {
	Name      string
	Types     map[string]*DataType
	Functions []*Function
	Arcs      []*Arc
}

// NewApp creates an empty application model.
func NewApp(name string) *App {
	return &App{Name: name, Types: map[string]*DataType{}}
}

// AddType registers a data type in the dictionary.
func (a *App) AddType(t *DataType) (*DataType, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if _, dup := a.Types[t.Name]; dup {
		return nil, fmt.Errorf("model: duplicate data type %q", t.Name)
	}
	a.Types[t.Name] = t
	return t, nil
}

// MustType returns a registered type or panics (for programmatic model
// construction where the type was just added).
func (a *App) MustType(name string) *DataType {
	t, ok := a.Types[name]
	if !ok {
		panic(fmt.Sprintf("model: unknown data type %q", name))
	}
	return t
}

// AddFunction appends a function block to the top-level graph.
func (a *App) AddFunction(f *Function) *Function {
	a.Functions = append(a.Functions, f)
	return f
}

// Function finds a top-level function by name, or nil.
func (a *App) Function(name string) *Function {
	for _, f := range a.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Connect adds an arc from fromFn.fromPort to toFn.toPort.
func (a *App) Connect(fromFn, fromPort, toFn, toPort string) (*Arc, error) {
	src := a.Function(fromFn)
	dst := a.Function(toFn)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("model: connect %s.%s -> %s.%s: unknown function", fromFn, fromPort, toFn, toPort)
	}
	fp := src.Port(fromPort)
	tp := dst.Port(toPort)
	if fp == nil || tp == nil {
		return nil, fmt.Errorf("model: connect %s.%s -> %s.%s: unknown port", fromFn, fromPort, toFn, toPort)
	}
	if fp.Dir != Out {
		return nil, fmt.Errorf("model: arc source %s is not an output", fp.QualifiedName())
	}
	if tp.Dir != In {
		return nil, fmt.Errorf("model: arc destination %s is not an input", tp.QualifiedName())
	}
	arc := &Arc{From: fp, To: tp}
	a.Arcs = append(a.Arcs, arc)
	return arc, nil
}

// AssignIDs numbers the functions 0..N-1 in Designer order (the order they
// were added), as §2 describes: "SAGE Designer orders all function instances
// and assigns them IDs from 0..N-1".
func (a *App) AssignIDs() {
	for i, f := range a.Functions {
		f.ID = i
	}
}

// Flatten expands composite blocks into their bodies, rewriting arcs that
// touch composite boundary ports to the bound inner ports. Inner function
// names are prefixed with "composite/" to stay unique. The result is a new
// App containing only leaf functions; the original is not modified.
func (a *App) Flatten() (*App, error) {
	out := NewApp(a.Name)
	for n, t := range a.Types {
		out.Types[n] = t
	}
	// portMap sends original boundary ports to the (possibly renamed)
	// flattened inner ports.
	portMap := map[*Port]*Port{}
	var expand func(prefix string, fns []*Function, arcs []*Arc) error
	expand = func(prefix string, fns []*Function, arcs []*Arc) error {
		for _, f := range fns {
			if !f.IsComposite() {
				clone := &Function{
					Name: prefix + f.Name, Kind: f.Kind, Threads: f.Threads,
					Params: f.Params, Props: f.Props,
				}
				for _, p := range f.Inputs {
					np := clone.AddInput(p.Name, p.Type, p.Striping)
					portMap[p] = np
				}
				for _, p := range f.Outputs {
					np := clone.AddOutput(p.Name, p.Type, p.Striping)
					portMap[p] = np
				}
				out.AddFunction(clone)
				continue
			}
			if err := expand(prefix+f.Name+"/", f.Body.Functions, f.Body.Arcs); err != nil {
				return err
			}
			// Boundary ports resolve through the binding to inner ports.
			for _, p := range append(append([]*Port{}, f.Inputs...), f.Outputs...) {
				inner, ok := f.Body.Bind[p]
				if !ok {
					return fmt.Errorf("model: composite %s: boundary port %s unbound", f.Name, p.Name)
				}
				resolved, ok := portMap[inner]
				if !ok {
					return fmt.Errorf("model: composite %s: binding for %s resolves to unknown inner port", f.Name, p.Name)
				}
				portMap[p] = resolved
			}
		}
		for _, arc := range arcs {
			from, ok := portMap[arc.From]
			if !ok {
				return fmt.Errorf("model: flatten: arc source %s unresolved", arc.From.QualifiedName())
			}
			to, ok := portMap[arc.To]
			if !ok {
				return fmt.Errorf("model: flatten: arc destination %s unresolved", arc.To.QualifiedName())
			}
			out.Arcs = append(out.Arcs, &Arc{From: from, To: to})
		}
		return nil
	}
	if err := expand("", a.Functions, a.Arcs); err != nil {
		return nil, err
	}
	out.AssignIDs()
	return out, nil
}

// Sources returns functions with no incoming arcs, in ID order.
func (a *App) Sources() []*Function {
	hasIn := map[*Function]bool{}
	for _, arc := range a.Arcs {
		hasIn[arc.To.Fn] = true
	}
	var out []*Function
	for _, f := range a.Functions {
		if !hasIn[f] {
			out = append(out, f)
		}
	}
	return out
}

// Sinks returns functions with no outgoing arcs, in ID order.
func (a *App) Sinks() []*Function {
	hasOut := map[*Function]bool{}
	for _, arc := range a.Arcs {
		hasOut[arc.From.Fn] = true
	}
	var out []*Function
	for _, f := range a.Functions {
		if !hasOut[f] {
			out = append(out, f)
		}
	}
	return out
}

// TopoOrder returns the functions in a deterministic topological order
// (Kahn's algorithm, ready set kept sorted by ID). It fails if the dataflow
// graph has a cycle.
func (a *App) TopoOrder() ([]*Function, error) {
	indeg := map[*Function]int{}
	succ := map[*Function][]*Function{}
	for _, f := range a.Functions {
		indeg[f] = 0
	}
	for _, arc := range a.Arcs {
		indeg[arc.To.Fn]++
		succ[arc.From.Fn] = append(succ[arc.From.Fn], arc.To.Fn)
	}
	var ready []*Function
	for _, f := range a.Functions {
		if indeg[f] == 0 {
			ready = append(ready, f)
		}
	}
	var order []*Function
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool {
			if ready[i].ID != ready[j].ID {
				return ready[i].ID < ready[j].ID
			}
			return ready[i].Name < ready[j].Name
		})
		f := ready[0]
		ready = ready[1:]
		order = append(order, f)
		for _, s := range succ[f] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(a.Functions) {
		return nil, fmt.Errorf("model: application %q has a dataflow cycle", a.Name)
	}
	return order, nil
}
