package model

import (
	"fmt"
	"sort"
)

// Mapping assigns every thread of every (leaf) function to a processor node.
// It is produced either manually in the Designer or by the AToT genetic
// mapper, and consumed by the glue-code generator.
type Mapping struct {
	// Assign[functionName][threadIndex] = node id.
	Assign map[string][]int
}

// NewMapping returns an empty mapping.
func NewMapping() *Mapping { return &Mapping{Assign: map[string][]int{}} }

// Set assigns the threads of a function to the given nodes.
func (m *Mapping) Set(fn string, nodes ...int) {
	cp := make([]int, len(nodes))
	copy(cp, nodes)
	m.Assign[fn] = cp
}

// NodeOf returns the node hosting thread i of function fn.
func (m *Mapping) NodeOf(fn string, i int) (int, error) {
	nodes, ok := m.Assign[fn]
	if !ok {
		return 0, fmt.Errorf("model: mapping has no entry for function %q", fn)
	}
	if i < 0 || i >= len(nodes) {
		return 0, fmt.Errorf("model: mapping for %q has %d threads, asked for %d", fn, len(nodes), i)
	}
	return nodes[i], nil
}

// Validate checks the mapping against an application and node count: every
// leaf function covered, thread counts matching, node ids in range.
func (m *Mapping) Validate(app *App, numNodes int) error {
	for _, f := range app.Functions {
		if f.IsComposite() {
			return fmt.Errorf("model: mapping validation requires a flattened app (composite %q present)", f.Name)
		}
		nodes, ok := m.Assign[f.Name]
		if !ok {
			return fmt.Errorf("model: function %q has no mapping", f.Name)
		}
		if len(nodes) != f.Threads {
			return fmt.Errorf("model: function %q has %d threads but %d mapped nodes", f.Name, f.Threads, len(nodes))
		}
		for i, n := range nodes {
			if n < 0 || n >= numNodes {
				return fmt.Errorf("model: function %q thread %d mapped to node %d of %d", f.Name, i, n, numNodes)
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (m *Mapping) Clone() *Mapping {
	out := NewMapping()
	for fn, nodes := range m.Assign {
		out.Set(fn, nodes...)
	}
	return out
}

// NodesUsed returns the sorted set of node ids referenced by the mapping.
func (m *Mapping) NodesUsed() []int {
	set := map[int]bool{}
	for _, nodes := range m.Assign {
		for _, n := range nodes {
			set[n] = true
		}
	}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// RoundRobin produces the naive baseline mapping: threads are dealt onto
// nodes 0..numNodes-1 in function-ID order. Parallel (multi-thread)
// functions spread one thread per node when possible.
func RoundRobin(app *App, numNodes int) *Mapping {
	m := NewMapping()
	next := 0
	for _, f := range app.Functions {
		nodes := make([]int, f.Threads)
		for i := range nodes {
			nodes[i] = next % numNodes
			next++
		}
		m.Set(f.Name, nodes...)
	}
	return m
}

// StaggerParallel places each function's threads on its own band of nodes:
// the first function occupies nodes 0..T0-1, the next T1..., wrapping when
// the bands exhaust the machine. A pipeline of k functions with t threads
// each therefore populates min(k*t, numNodes) distinct processors, whereas
// SpreadParallel overlays every function on nodes 0..T-1 and leaves the rest
// of a large machine idle. This is the natural hand mapping for topologies
// much wider than any single function's thread count.
func StaggerParallel(app *App, numNodes int) (*Mapping, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("model: stagger mapping needs at least one node, got %d", numNodes)
	}
	m := NewMapping()
	offset := 0
	for _, f := range app.Functions {
		nodes := make([]int, f.Threads)
		for i := range nodes {
			nodes[i] = (offset + i) % numNodes
		}
		m.Set(f.Name, nodes...)
		offset += f.Threads
	}
	return m, nil
}

// SpreadParallel maps each multi-threaded function across nodes 0..T-1 and
// places single-threaded functions on node 0. This is the canonical manual
// mapping for the benchmark pipelines (source and sink on node 0, worker
// threads one per node), matching how the hand-coded versions are deployed.
func SpreadParallel(app *App, numNodes int) (*Mapping, error) {
	m := NewMapping()
	for _, f := range app.Functions {
		if f.Threads > numNodes {
			return nil, fmt.Errorf("model: function %q has %d threads but only %d nodes", f.Name, f.Threads, numNodes)
		}
		nodes := make([]int, f.Threads)
		for i := range nodes {
			nodes[i] = i
		}
		m.Set(f.Name, nodes...)
	}
	return m, nil
}
