package funclib

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/model"
)

// Table-driven verification of every primitive op against naive references
// written directly from the defining formulas (an O(n^2) DFT sum, a direct
// convolution, the window equations), over edge shapes: 1x1, single row,
// single column, and non-power-of-two extents wherever the kind permits them.

// refShapes are the elementwise edge shapes.
var refShapes = []struct{ rows, cols int }{
	{1, 1}, {1, 7}, {7, 1}, {5, 6}, {4, 4},
}

// refInput builds a whole-matrix block with deterministic, irregular values.
func refInput(rows, cols int) *Block {
	b := NewBlock(model.Region{Rows: rows, Cols: cols})
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.Set(r, c, SourceValue(7, 0, r, c))
		}
	}
	return b
}

// computeWhole runs one kind single-threaded on whole matrices.
func computeWhole(t *testing.T, kind string, params map[string]any, in map[string]*Block, outRows, outCols int) *Block {
	t.Helper()
	im, err := Lookup(kind)
	if err != nil {
		t.Fatal(err)
	}
	out := NewBlock(model.Region{Rows: outRows, Cols: outCols})
	ctx := &Context{FuncName: "ref_" + kind, Params: params, Thread: 0, Threads: 1}
	if err := im.Compute(ctx, in, map[string]*Block{"out": out}); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return out
}

func wantClose(t *testing.T, kind string, got, want *Block, tol float64) {
	t.Helper()
	if got.Region != want.Region {
		t.Fatalf("%s: region %v, want %v", kind, got.Region, want.Region)
	}
	for i := range want.Data {
		if d := cmplx.Abs(got.Data[i] - want.Data[i]); d > tol {
			t.Fatalf("%s %dx%d: sample %d = %v, want %v (|diff| %g > %g)",
				kind, want.Region.Rows, want.Region.Cols, i, got.Data[i], want.Data[i], d, tol)
		}
	}
}

func TestIdentityRef(t *testing.T) {
	for _, s := range refShapes {
		in := refInput(s.rows, s.cols)
		got := computeWhole(t, "identity", nil, map[string]*Block{"in": in}, s.rows, s.cols)
		wantClose(t, "identity", got, in, 0)
	}
}

func TestScaleRef(t *testing.T) {
	for _, s := range refShapes {
		for _, factor := range []float64{0, 1, -2.5} {
			in := refInput(s.rows, s.cols)
			got := computeWhole(t, "scale", map[string]any{"factor": factor},
				map[string]*Block{"in": in}, s.rows, s.cols)
			want := NewBlock(in.Region)
			for i, v := range in.Data {
				want.Data[i] = complex(factor, 0) * v
			}
			wantClose(t, "scale", got, want, 0)
		}
	}
}

func TestMag2Ref(t *testing.T) {
	for _, s := range refShapes {
		in := refInput(s.rows, s.cols)
		got := computeWhole(t, "mag2", nil, map[string]*Block{"in": in}, s.rows, s.cols)
		want := NewBlock(in.Region)
		for i, v := range in.Data {
			want.Data[i] = complex(real(v)*real(v)+imag(v)*imag(v), 0)
		}
		wantClose(t, "mag2", got, want, 0)
	}
}

func TestAdd2Ref(t *testing.T) {
	for _, s := range refShapes {
		a := refInput(s.rows, s.cols)
		b := NewBlock(a.Region)
		for i := range b.Data {
			b.Data[i] = SourceValue(11, 0, i, i+1)
		}
		got := computeWhole(t, "add2", nil, map[string]*Block{"a": a, "b": b}, s.rows, s.cols)
		want := NewBlock(a.Region)
		for i := range want.Data {
			want.Data[i] = a.Data[i] + b.Data[i]
		}
		wantClose(t, "add2", got, want, 0)
	}
}

// naiveDFT is the O(n^2) definition X[k] = sum_n x[n] e^{-2πi kn/N}.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = acc
	}
	return out
}

func TestFFTRowsRef(t *testing.T) {
	// Rows may be anything; cols must be a power of two (including 1).
	for _, s := range []struct{ rows, cols int }{{1, 1}, {1, 8}, {4, 1}, {3, 4}, {5, 8}, {7, 2}} {
		in := refInput(s.rows, s.cols)
		got := computeWhole(t, "fft_rows", nil, map[string]*Block{"in": in}, s.rows, s.cols)
		want := NewBlock(in.Region)
		for r := 0; r < s.rows; r++ {
			copy(want.Data[r*s.cols:(r+1)*s.cols], naiveDFT(in.Data[r*s.cols:(r+1)*s.cols]))
		}
		wantClose(t, "fft_rows", got, want, 1e-9*float64(s.cols))
	}
}

func TestFFTColsRef(t *testing.T) {
	// Cols may be anything; rows must be a power of two (including 1).
	for _, s := range []struct{ rows, cols int }{{1, 1}, {8, 1}, {1, 5}, {4, 3}, {2, 7}, {8, 6}} {
		in := refInput(s.rows, s.cols)
		got := computeWhole(t, "fft_cols", nil, map[string]*Block{"in": in}, s.rows, s.cols)
		want := NewBlock(in.Region)
		for c := 0; c < s.cols; c++ {
			col := make([]complex128, s.rows)
			for r := 0; r < s.rows; r++ {
				col[r] = in.At(r, c)
			}
			for r, v := range naiveDFT(col) {
				want.Set(r, c, v)
			}
		}
		wantClose(t, "fft_cols", got, want, 1e-9*float64(s.rows))
	}
}

func TestTransposeBlockRef(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		in := refInput(n, n)
		got := computeWhole(t, "transpose_block", nil, map[string]*Block{"in": in}, n, n)
		want := NewBlock(in.Region)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want.Set(c, r, in.At(r, c))
			}
		}
		wantClose(t, "transpose_block", got, want, 0)
	}
}

// refWindow evaluates the periodic window equations straight from their
// definitions (independently of isspl.Window).
func refWindow(kind string, n, i int) float64 {
	t := 2 * math.Pi * float64(i) / float64(n)
	switch kind {
	case "rect":
		return 1
	case "hann":
		return 0.5 - 0.5*math.Cos(t)
	case "hamming":
		return 0.54 - 0.46*math.Cos(t)
	case "blackman":
		return 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
	}
	panic("unknown window " + kind)
}

func TestWindowRowsRef(t *testing.T) {
	for _, kind := range []string{"rect", "hann", "hamming", "blackman"} {
		for _, s := range []struct{ rows, cols int }{{1, 1}, {1, 5}, {3, 1}, {4, 6}} {
			in := refInput(s.rows, s.cols)
			got := computeWhole(t, "window_rows", map[string]any{"window": kind},
				map[string]*Block{"in": in}, s.rows, s.cols)
			want := NewBlock(in.Region)
			for r := 0; r < s.rows; r++ {
				for c := 0; c < s.cols; c++ {
					want.Set(r, c, in.At(r, c)*complex(refWindow(kind, s.cols, c), 0))
				}
			}
			wantClose(t, "window_rows("+kind+")", got, want, 1e-12)
		}
	}
}

// naiveFIR is y[n] = sum_k taps[k] * x[n-k] with zero-padded history,
// accumulated in the same k-ascending order the library uses so agreement is
// exact.
func naiveFIR(x []complex128, taps []float64) []complex128 {
	out := make([]complex128, len(x))
	for n := range x {
		var acc complex128
		for k, tap := range taps {
			if n-k >= 0 {
				acc += complex(tap, 0) * x[n-k]
			}
		}
		out[n] = acc
	}
	return out
}

func TestFIRRowsRef(t *testing.T) {
	for _, ntaps := range []int{1, 3, 8} {
		for _, s := range []struct{ rows, cols int }{{1, 1}, {2, 5}, {3, 9}, {1, 12}} {
			in := refInput(s.rows, s.cols)
			got := computeWhole(t, "fir_rows", map[string]any{"ntaps": ntaps},
				map[string]*Block{"in": in}, s.rows, s.cols)
			taps := LowpassTaps(ntaps)
			want := NewBlock(in.Region)
			for r := 0; r < s.rows; r++ {
				copy(want.Data[r*s.cols:(r+1)*s.cols], naiveFIR(in.Data[r*s.cols:(r+1)*s.cols], taps))
			}
			wantClose(t, fmt.Sprintf("fir_rows(ntaps=%d)", ntaps), got, want, 0)
		}
	}
}

func TestFIRDecimateRowsRef(t *testing.T) {
	for _, tc := range []struct{ rows, cols, factor, ntaps int }{
		{2, 6, 2, 3}, {1, 8, 4, 5}, {3, 6, 3, 8}, {1, 1, 1, 2}, {4, 4, 4, 1},
	} {
		in := refInput(tc.rows, tc.cols)
		outCols := tc.cols / tc.factor
		got := computeWhole(t, "fir_decimate_rows",
			map[string]any{"ntaps": tc.ntaps, "factor": tc.factor},
			map[string]*Block{"in": in}, tc.rows, outCols)
		taps := LowpassTaps(tc.ntaps)
		want := NewBlock(model.Region{Rows: tc.rows, Cols: outCols})
		for r := 0; r < tc.rows; r++ {
			full := naiveFIR(in.Data[r*tc.cols:(r+1)*tc.cols], taps)
			for j := 0; j < outCols; j++ {
				want.Data[r*outCols+j] = full[j*tc.factor]
			}
		}
		wantClose(t, fmt.Sprintf("fir_decimate_rows(f=%d)", tc.factor), got, want, 0)
	}
}

// TestStripedMatchesWhole runs the row-local kinds thread-by-thread over
// ByRows partitions and demands bitwise agreement with the single-threaded
// whole-matrix result — the property the distributed runtime leans on when it
// splits a function across nodes.
func TestStripedMatchesWhole(t *testing.T) {
	const rows, cols = 7, 8
	kinds := []struct {
		kind   string
		params map[string]any
	}{
		{"identity", nil},
		{"scale", map[string]any{"factor": 1.5}},
		{"mag2", nil},
		{"fft_rows", nil},
		{"window_rows", map[string]any{"window": "hamming"}},
		{"fir_rows", map[string]any{"ntaps": 4}},
	}
	for _, k := range kinds {
		whole := computeWhole(t, k.kind, k.params,
			map[string]*Block{"in": refInput(rows, cols)}, rows, cols)
		for _, threads := range []int{2, 3, 7} {
			im, err := Lookup(k.kind)
			if err != nil {
				t.Fatal(err)
			}
			got := NewBlock(model.Region{Rows: rows, Cols: cols})
			for th := 0; th < threads; th++ {
				reg, err := model.Partition(model.ByRows, rows, cols, threads, th)
				if err != nil {
					t.Fatal(err)
				}
				in := NewBlock(reg)
				for r := reg.R0; r < reg.R0+reg.Rows; r++ {
					for c := 0; c < cols; c++ {
						in.Set(r, c, SourceValue(7, 0, r, c))
					}
				}
				out := NewBlock(reg)
				ctx := &Context{FuncName: "striped", Params: k.params, Thread: th, Threads: threads}
				if err := im.Compute(ctx, map[string]*Block{"in": in}, map[string]*Block{"out": out}); err != nil {
					t.Fatalf("%s threads=%d: %v", k.kind, threads, err)
				}
				for r := reg.R0; r < reg.R0+reg.Rows; r++ {
					for c := 0; c < cols; c++ {
						got.Set(r, c, out.At(r, c))
					}
				}
			}
			wantClose(t, fmt.Sprintf("%s striped x%d", k.kind, threads), got, whole, 0)
		}
	}
}

// TestStripingMismatchRejected locks the validation fix for the class of
// model the runtime cannot execute: an elementwise kind whose input and
// output ports declare different stripings (the per-thread regions diverge;
// mag2 used to panic at dispatch). Redistribution belongs on arcs.
func TestStripingMismatchRejected(t *testing.T) {
	for _, kind := range []string{"identity", "scale", "mag2", "fft_rows", "window_rows", "fir_rows"} {
		app := model.NewApp("mismatch")
		mt, err := app.AddType(&model.DataType{Name: "m4x4", Rows: 4, Cols: 4, Elem: model.ElemComplex})
		if err != nil {
			t.Fatal(err)
		}
		f := app.AddFunction(&model.Function{Name: "f", Kind: kind, Threads: 2})
		inStripe, outStripe := model.ByRows, model.Replicated
		f.AddInput("in", mt, inStripe)
		f.AddOutput("out", mt, outStripe)
		if err := ValidateFunction(f); err == nil {
			t.Errorf("%s: striping mismatch %s -> %s not rejected", kind, inStripe, outStripe)
		}
	}
	// add2 demands one striping across all three ports.
	app := model.NewApp("mismatch2")
	mt, _ := app.AddType(&model.DataType{Name: "m4x4", Rows: 4, Cols: 4, Elem: model.ElemComplex})
	f := app.AddFunction(&model.Function{Name: "f", Kind: "add2", Threads: 2})
	f.AddInput("a", mt, model.ByRows)
	f.AddInput("b", mt, model.ByCols)
	f.AddOutput("out", mt, model.ByRows)
	if err := ValidateFunction(f); err == nil {
		t.Error("add2: operand striping mismatch not rejected")
	}
}

// TestElementwiseShapeMismatchRejected locks the companion shape rule.
func TestElementwiseShapeMismatchRejected(t *testing.T) {
	app := model.NewApp("shape")
	t4, _ := app.AddType(&model.DataType{Name: "m4x4", Rows: 4, Cols: 4, Elem: model.ElemComplex})
	t8, _ := app.AddType(&model.DataType{Name: "m4x8", Rows: 4, Cols: 8, Elem: model.ElemComplex})
	f := app.AddFunction(&model.Function{Name: "f", Kind: "scale", Threads: 1})
	f.AddInput("in", t4, model.Replicated)
	f.AddOutput("out", t8, model.Replicated)
	if err := ValidateFunction(f); err == nil {
		t.Error("scale: in 4x4 -> out 4x8 not rejected")
	}
}
