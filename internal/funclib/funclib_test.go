package funclib

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isspl"
	"repro/internal/model"
)

func TestKindsRegistered(t *testing.T) {
	want := []string{"add2", "fft_cols", "fft_rows", "fir_decimate_rows", "fir_rows", "identity",
		"mag2", "scale", "sink_matrix", "source_matrix", "transpose_block", "window_rows"}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("warp_drive"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	im, err := Lookup("fft_rows")
	if err != nil || im.Kind != "fft_rows" {
		t.Fatalf("lookup fft_rows: %v", err)
	}
}

func TestSourceValueDeterministicAndBounded(t *testing.T) {
	a := SourceValue(7, 3, 10, 20)
	b := SourceValue(7, 3, 10, 20)
	if a != b {
		t.Fatal("SourceValue not deterministic")
	}
	if SourceValue(7, 3, 10, 21) == a && SourceValue(7, 4, 10, 20) == a {
		t.Fatal("SourceValue ignores coordinates")
	}
	check := func(seed int64, it, r, c uint16) bool {
		v := SourceValue(seed, int(it), int(r), int(c))
		return real(v) >= -1 && real(v) < 1 && imag(v) >= -1 && imag(v) < 1 &&
			!math.IsNaN(real(v)) && !math.IsNaN(imag(v))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFillSourceRegionIndependence(t *testing.T) {
	// Filling a sub-region yields the same values as the corresponding
	// part of the whole: threads can generate their slices independently.
	whole := NewBlock(model.Region{Rows: 8, Cols: 8})
	FillSource(whole, 5, 2)
	part := NewBlock(model.Region{R0: 2, C0: 4, Rows: 3, Cols: 2})
	FillSource(part, 5, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if part.At(2+i, 4+j) != whole.At(2+i, 4+j) {
				t.Fatalf("region fill differs at (%d,%d)", 2+i, 4+j)
			}
		}
	}
}

func TestBlockAtSet(t *testing.T) {
	b := NewBlock(model.Region{R0: 4, C0: 2, Rows: 2, Cols: 3})
	if len(b.Data) != 6 {
		t.Fatalf("block data len %d", len(b.Data))
	}
	b.Set(5, 4, 9i)
	if b.At(5, 4) != 9i || b.Data[1*3+2] != 9i {
		t.Fatal("At/Set addressing wrong")
	}
}

func computeKind(t *testing.T, kind string, ctx *Context, in, out map[string]*Block) {
	t.Helper()
	im, err := Lookup(kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Compute(ctx, in, out); err != nil {
		t.Fatal(err)
	}
	c := im.Cost(ctx, in, out)
	if c.Flops < 0 || c.CopyBytes < 0 {
		t.Fatalf("negative cost %+v", c)
	}
	if c.Flops == 0 && c.CopyBytes == 0 {
		t.Fatalf("kind %s has zero cost", kind)
	}
}

func TestFFTRowsKind(t *testing.T) {
	reg := model.Region{R0: 2, Rows: 3, Cols: 8}
	in, out := NewBlock(reg), NewBlock(reg)
	FillSource(in, 1, 0)
	computeKind(t, "fft_rows", &Context{FuncName: "f"}, map[string]*Block{"in": in}, map[string]*Block{"out": out})
	for r := 0; r < 3; r++ {
		want := isspl.DFT(in.Data[r*8 : (r+1)*8])
		if isspl.MaxDiff(out.Data[r*8:(r+1)*8], want) > 1e-9 {
			t.Fatalf("row %d FFT wrong", r)
		}
	}
}

func TestFFTColsKind(t *testing.T) {
	reg := model.Region{C0: 4, Rows: 8, Cols: 3}
	in, out := NewBlock(reg), NewBlock(reg)
	FillSource(in, 2, 0)
	computeKind(t, "fft_cols", &Context{FuncName: "f"}, map[string]*Block{"in": in}, map[string]*Block{"out": out})
	col := make([]complex128, 8)
	for j := 0; j < 3; j++ {
		for i := 0; i < 8; i++ {
			col[i] = in.Data[i*3+j]
		}
		want := isspl.DFT(col)
		for i := 0; i < 8; i++ {
			if d := out.Data[i*3+j] - want[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Fatalf("col %d FFT wrong at %d", j, i)
			}
		}
	}
}

func TestTransposeBlockKind(t *testing.T) {
	// 8x8 matrix, thread 1 of 2: in = all rows, cols [4,8); out = rows
	// [4,8) of X^T, all cols.
	inReg := model.Region{C0: 4, Rows: 8, Cols: 4}
	outReg := model.Region{R0: 4, Rows: 4, Cols: 8}
	in, out := NewBlock(inReg), NewBlock(outReg)
	FillSource(in, 3, 0)
	computeKind(t, "transpose_block", &Context{FuncName: "f"}, map[string]*Block{"in": in}, map[string]*Block{"out": out})
	for i := 0; i < 8; i++ {
		for j := 4; j < 8; j++ {
			// X^T[j][i] == X[i][j]
			if out.At(j, i) != in.At(i, j) {
				t.Fatalf("transpose wrong at in(%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeBlockMisalignedRegions(t *testing.T) {
	im, _ := Lookup("transpose_block")
	in := NewBlock(model.Region{C0: 0, Rows: 8, Cols: 4})
	out := NewBlock(model.Region{R0: 4, Rows: 4, Cols: 8}) // wrong offset
	err := im.Compute(&Context{FuncName: "f"}, map[string]*Block{"in": in}, map[string]*Block{"out": out})
	if err == nil {
		t.Fatal("misaligned regions accepted")
	}
}

func TestIdentityAndScaleAndMag2(t *testing.T) {
	reg := model.Region{Rows: 4, Cols: 4}
	in := NewBlock(reg)
	FillSource(in, 4, 0)

	out := NewBlock(reg)
	computeKind(t, "identity", &Context{}, map[string]*Block{"in": in}, map[string]*Block{"out": out})
	if isspl.MaxDiff(out.Data, in.Data) != 0 {
		t.Fatal("identity changed data")
	}

	out2 := NewBlock(reg)
	computeKind(t, "scale", &Context{Params: map[string]any{"factor": 2.0}},
		map[string]*Block{"in": in}, map[string]*Block{"out": out2})
	for i := range in.Data {
		if out2.Data[i] != 2*in.Data[i] {
			t.Fatal("scale wrong")
		}
	}

	out3 := NewBlock(reg)
	computeKind(t, "mag2", &Context{}, map[string]*Block{"in": in}, map[string]*Block{"out": out3})
	for i := range in.Data {
		re, im := real(in.Data[i]), imag(in.Data[i])
		if math.Abs(real(out3.Data[i])-(re*re+im*im)) > 1e-15 || imag(out3.Data[i]) != 0 {
			t.Fatal("mag2 wrong")
		}
	}
}

func TestWindowAndFIRKinds(t *testing.T) {
	reg := model.Region{Rows: 2, Cols: 16}
	in := NewBlock(reg)
	FillSource(in, 5, 0)

	out := NewBlock(reg)
	computeKind(t, "window_rows", &Context{Params: map[string]any{"window": "hamming"}},
		map[string]*Block{"in": in}, map[string]*Block{"out": out})
	w, _ := isspl.Window(isspl.WindowHamming, 16)
	if out.Data[0] != in.Data[0]*complex(w[0], 0) {
		t.Fatal("window_rows wrong")
	}

	out2 := NewBlock(reg)
	computeKind(t, "fir_rows", &Context{Params: map[string]any{"ntaps": 4}},
		map[string]*Block{"in": in}, map[string]*Block{"out": out2})
	taps := LowpassTaps(4)
	want := make([]complex128, 16)
	isspl.FIR(want, in.Data[:16], taps)
	if isspl.MaxDiff(out2.Data[:16], want) > 1e-12 {
		t.Fatal("fir_rows wrong")
	}
}

func TestWindowRowsBadWindowErrors(t *testing.T) {
	im, _ := Lookup("window_rows")
	reg := model.Region{Rows: 1, Cols: 4}
	err := im.Compute(&Context{Params: map[string]any{"window": "bogus"}},
		map[string]*Block{"in": NewBlock(reg)}, map[string]*Block{"out": NewBlock(reg)})
	if err == nil {
		t.Fatal("bogus window accepted")
	}
}

func TestFIRDecimateRowsKind(t *testing.T) {
	inReg := model.Region{R0: 2, Rows: 2, Cols: 16}
	outReg := model.Region{R0: 2, Rows: 2, Cols: 4}
	in, out := NewBlock(inReg), NewBlock(outReg)
	FillSource(in, 8, 0)
	ctx := &Context{FuncName: "d", Params: map[string]any{"ntaps": 3, "factor": 4}}
	computeKind(t, "fir_decimate_rows", ctx, map[string]*Block{"in": in}, map[string]*Block{"out": out})
	taps := LowpassTaps(3)
	want := make([]complex128, 4)
	isspl.FIRDecimate(want, in.Data[:16], taps, 4)
	if isspl.MaxDiff(out.Data[:4], want) > 1e-12 {
		t.Fatal("decimated output wrong")
	}
	// Misaligned regions rejected.
	im, _ := Lookup("fir_decimate_rows")
	bad := NewBlock(model.Region{R0: 2, Rows: 2, Cols: 5})
	if err := im.Compute(ctx, map[string]*Block{"in": in}, map[string]*Block{"out": bad}); err == nil {
		t.Fatal("misaligned decimation accepted")
	}
}

func TestFIRDecimateRowsValidation(t *testing.T) {
	a := model.NewApp("x")
	inT, _ := a.AddType(&model.DataType{Name: "in", Rows: 8, Cols: 16, Elem: model.ElemComplex})
	outT, _ := a.AddType(&model.DataType{Name: "out", Rows: 8, Cols: 4, Elem: model.ElemComplex})
	good := &model.Function{Name: "d", Kind: "fir_decimate_rows", Threads: 2,
		Params: map[string]any{"factor": 4}}
	good.AddInput("in", inT, model.ByRows)
	good.AddOutput("out", outT, model.ByRows)
	if err := ValidateFunction(good); err != nil {
		t.Fatal(err)
	}
	// Wrong output width for the factor.
	bad := &model.Function{Name: "e", Kind: "fir_decimate_rows", Threads: 2,
		Params: map[string]any{"factor": 2}}
	bad.AddInput("in", inT, model.ByRows)
	bad.AddOutput("out", outT, model.ByRows)
	if err := ValidateFunction(bad); err == nil {
		t.Fatal("wrong decimated shape accepted")
	}
	// Mismatched striping.
	bad2 := &model.Function{Name: "f", Kind: "fir_decimate_rows", Threads: 1,
		Params: map[string]any{"factor": 4}}
	bad2.AddInput("in", inT, model.ByRows)
	bad2.AddOutput("out", outT, model.Replicated)
	if err := ValidateFunction(bad2); err == nil {
		t.Fatal("mismatched striping accepted")
	}
	// Non-positive factor.
	bad3 := &model.Function{Name: "g", Kind: "fir_decimate_rows", Threads: 1,
		Params: map[string]any{"factor": 0}}
	bad3.AddInput("in", inT, model.ByRows)
	bad3.AddOutput("out", outT, model.ByRows)
	if err := ValidateFunction(bad3); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestSinkDeliversToCollector(t *testing.T) {
	im, _ := Lookup("sink_matrix")
	reg := model.Region{Rows: 2, Cols: 2}
	in := NewBlock(reg)
	FillSource(in, 6, 0)
	var got *Block
	ctx := &Context{Sink: func(port string, b *Block) {
		if port == "in" {
			got = b
		}
	}}
	if err := im.Compute(ctx, map[string]*Block{"in": in}, nil); err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatal("sink did not deliver block")
	}
	// Without a collector it must not crash.
	if err := im.Compute(&Context{}, map[string]*Block{"in": in}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLowpassTapsNormalised(t *testing.T) {
	taps := LowpassTaps(8)
	sum := 0.0
	for _, v := range taps {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("taps sum to %v", sum)
	}
	if len(LowpassTaps(0)) != 1 {
		t.Fatal("degenerate tap count not clamped")
	}
}

func TestContextParamHelpers(t *testing.T) {
	ctx := &Context{Params: map[string]any{"i": 5, "f": 2.5, "s": "hi", "fi": 3.0}}
	if ctx.IntParam("i", 0) != 5 || ctx.IntParam("fi", 0) != 3 || ctx.IntParam("missing", 7) != 7 {
		t.Fatal("IntParam")
	}
	if ctx.FloatParam("f", 0) != 2.5 || ctx.FloatParam("i", 0) != 5 || ctx.FloatParam("missing", 1.5) != 1.5 {
		t.Fatal("FloatParam")
	}
	if ctx.StringParam("s", "") != "hi" || ctx.StringParam("missing", "d") != "d" {
		t.Fatal("StringParam")
	}
}

func TestValidateFunction(t *testing.T) {
	a := model.NewApp("x")
	mt, _ := a.AddType(&model.DataType{Name: "m", Rows: 8, Cols: 8, Elem: model.ElemComplex})

	good := &model.Function{Name: "f", Kind: "fft_rows", Threads: 2}
	good.AddInput("in", mt, model.ByRows)
	good.AddOutput("out", mt, model.ByRows)
	if err := ValidateFunction(good); err != nil {
		t.Fatal(err)
	}

	badStripe := &model.Function{Name: "g", Kind: "fft_rows", Threads: 2}
	badStripe.AddInput("in", mt, model.ByCols)
	badStripe.AddOutput("out", mt, model.ByRows)
	if err := ValidateFunction(badStripe); err == nil || !strings.Contains(err.Error(), "striping") {
		t.Fatalf("err = %v", err)
	}

	missingPort := &model.Function{Name: "h", Kind: "fft_rows", Threads: 2}
	missingPort.AddInput("in", mt, model.ByRows)
	if err := ValidateFunction(missingPort); err == nil {
		t.Fatal("missing port accepted")
	}

	wrongName := &model.Function{Name: "i", Kind: "fft_rows", Threads: 2}
	wrongName.AddInput("data", mt, model.ByRows)
	wrongName.AddOutput("out", mt, model.ByRows)
	if err := ValidateFunction(wrongName); err == nil {
		t.Fatal("wrong port name accepted")
	}

	unknown := &model.Function{Name: "j", Kind: "nope", Threads: 1}
	if err := ValidateFunction(unknown); err == nil {
		t.Fatal("unknown kind accepted")
	}

	rect, _ := a.AddType(&model.DataType{Name: "r", Rows: 8, Cols: 4, Elem: model.ElemComplex})
	nonSquare := &model.Function{Name: "k", Kind: "transpose_block", Threads: 2}
	nonSquare.AddInput("in", rect, model.ByCols)
	nonSquare.AddOutput("out", rect, model.ByRows)
	if err := ValidateFunction(nonSquare); err == nil || !strings.Contains(err.Error(), "square") {
		t.Fatalf("err = %v", err)
	}
}
