package funclib

import (
	"fmt"

	"repro/internal/isspl"
	"repro/internal/model"
)

// SourceValue is the deterministic per-element generator used by the
// source_matrix kind: any (seed, iteration, row, col) maps to a fixed
// complex sample in [-1, 1) + [-1, 1)i. Because it is addressable per
// element, any thread can fill any region independently, and verification
// code can recompute expected inputs without sharing state. (It stands in
// for the benchmark data set CSPI supplied to the paper's authors.)
func SourceValue(seed int64, iteration, row, col int) complex128 {
	mix := func(h uint64) uint64 {
		// splitmix64 finalizer.
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return h
	}
	h := mix(uint64(seed)*0x9e3779b97f4a7c15 + uint64(iteration+1))
	h = mix(h ^ uint64(row)*0xd6e8feb86659fd93)
	h = mix(h ^ uint64(col)*0xa0761d6478bd642f)
	toUnit := func(bits uint32) float64 { return float64(bits)/float64(1<<31) - 1 }
	return complex(toUnit(uint32(h>>32)), toUnit(uint32(h)))
}

// FillSource fills a block with SourceValue samples.
func FillSource(b *Block, seed int64, iteration int) {
	r := b.Region
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < r.Cols; j++ {
			b.Data[i*r.Cols+j] = SourceValue(seed, iteration, r.R0+i, r.C0+j)
		}
	}
}

func blockBytes(b *Block) int { return b.Region.Elems() * 8 } // single-precision wire size

// checkMatchedPorts is the cross-port Check shared by every kind that
// computes thread-locally and elementwise (or row/column-wise) from one port
// onto another of the same shape: both ports must carry the same striping,
// or a thread's input and output regions diverge and the computation is not
// expressible locally. Striping *changes* belong on arcs (redistribution by
// the runtime), not across a single function.
func checkMatchedPorts(in, out string) func(f *model.Function) error {
	return func(f *model.Function) error {
		ip, op := f.Port(in), f.Port(out)
		if ip.Type.Rows != op.Type.Rows || ip.Type.Cols != op.Type.Cols || ip.Type.Elem != op.Type.Elem {
			return fmt.Errorf("funclib: %s (kind %s): ports %s and %s must share one shape, got %dx%d vs %dx%d",
				f.Name, f.Kind, in, out, ip.Type.Rows, ip.Type.Cols, op.Type.Rows, op.Type.Cols)
		}
		if ip.Striping != op.Striping {
			return fmt.Errorf("funclib: %s (kind %s): ports %s and %s must share one striping (got %q -> %q); express redistribution on the arc, not across the function",
				f.Name, f.Kind, in, out, ip.Striping, op.Striping)
		}
		return nil
	}
}

func init() {
	register(&Impl{
		Kind: "source_matrix",
		Doc:  "Data source: synthesises a deterministic matrix data set each iteration (param seed).",
		Out:  []PortReq{{Name: "out", Stripes: anyStripe()}},
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			FillSource(out["out"], int64(ctx.IntParam("seed", 1)), ctx.Iteration)
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			// Generation priced as one pass over the data.
			return Cost{CopyBytes: blockBytes(out["out"])}
		},
	})

	register(&Impl{
		Kind: "sink_matrix",
		Doc:  "Data sink: consumes the final data set; hands blocks to the experiment collector.",
		In:   []PortReq{{Name: "in", Stripes: anyStripe()}},
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			if ctx.Sink != nil {
				ctx.Sink("in", in["in"])
			}
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			// Latency is measured "to the time the final result is output
			// to the data sink" (§3.3): arrival is the endpoint, so the
			// sink itself only posts a completion descriptor.
			return Cost{CopyBytes: 64}
		},
	})

	register(&Impl{
		Kind:  "identity",
		Doc:   "Copies input to output unchanged (pipeline plumbing).",
		In:    []PortReq{{Name: "in", Stripes: anyStripe()}},
		Out:   []PortReq{{Name: "out", Stripes: anyStripe()}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			if in["in"].Region != out["out"].Region {
				return fmt.Errorf("funclib: %s: identity regions differ: %v vs %v",
					ctx.FuncName, in["in"].Region, out["out"].Region)
			}
			copy(out["out"].Data, in["in"].Data)
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{CopyBytes: blockBytes(in["in"])}
		},
	})

	register(&Impl{
		Kind:  "scale",
		Doc:   "Multiplies every sample by the real parameter factor.",
		In:    []PortReq{{Name: "in", Stripes: anyStripe()}},
		Out:   []PortReq{{Name: "out", Stripes: anyStripe()}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			if in["in"].Region != out["out"].Region {
				return fmt.Errorf("funclib: %s: scale regions differ: %v vs %v",
					ctx.FuncName, in["in"].Region, out["out"].Region)
			}
			f := complex(ctx.FloatParam("factor", 1), 0)
			isspl.VScale(out["out"].Data, in["in"].Data, f)
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{Flops: isspl.VectorOpFlops(in["in"].Region.Elems())}
		},
	})

	register(&Impl{
		Kind:  "mag2",
		Doc:   "Writes |x|^2 into the real part of the output (detection stage).",
		In:    []PortReq{{Name: "in", Stripes: anyStripe()}},
		Out:   []PortReq{{Name: "out", Stripes: anyStripe()}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			if in["in"].Region != out["out"].Region {
				return fmt.Errorf("funclib: %s: mag2 regions differ: %v vs %v",
					ctx.FuncName, in["in"].Region, out["out"].Region)
			}
			src, dst := in["in"].Data, out["out"].Data
			for i := range src {
				re, im := real(src[i]), imag(src[i])
				dst[i] = complex(re*re+im*im, 0)
			}
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{Flops: 3 * float64(in["in"].Region.Elems())}
		},
	})

	register(&Impl{
		Kind:  "fft_rows",
		Doc:   "In-order FFT of every local row (row-striped matrix FFT stage).",
		In:    []PortReq{{Name: "in", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Out:   []PortReq{{Name: "out", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			ib, ob := in["in"], out["out"]
			if ib.Region != ob.Region {
				return fmt.Errorf("funclib: %s: fft_rows regions differ: %v vs %v", ctx.FuncName, ib.Region, ob.Region)
			}
			cols := ib.Region.Cols
			copy(ob.Data, ib.Data)
			return isspl.FFTRows(ob.Data, ib.Region.Rows, cols)
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			r := in["in"].Region
			return Cost{
				Flops:     isspl.FFTRowsFlops(r.Rows, r.Cols),
				CopyBytes: blockBytes(in["in"]),
			}
		},
	})

	register(&Impl{
		Kind:  "fft_cols",
		Doc:   "FFT of every local column of a column-striped block (strided transforms on row-major storage).",
		In:    []PortReq{{Name: "in", Stripes: []model.StripeKind{model.ByCols, model.Replicated}}},
		Out:   []PortReq{{Name: "out", Stripes: []model.StripeKind{model.ByCols, model.Replicated}}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			ib, ob := in["in"], out["out"]
			if ib.Region != ob.Region {
				return fmt.Errorf("funclib: %s: fft_cols regions differ: %v vs %v", ctx.FuncName, ib.Region, ob.Region)
			}
			rows, cols := ib.Region.Rows, ib.Region.Cols
			copy(ob.Data, ib.Data)
			for j := 0; j < cols; j++ {
				if err := isspl.FFTStrided(ob.Data, rows, j, cols); err != nil {
					return err
				}
			}
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			r := in["in"].Region
			return Cost{
				Flops: isspl.FFTRowsFlops(r.Cols, r.Rows),
				// Input-to-output buffer copy plus the cache penalty of
				// column-strided access, priced as one extra pass.
				CopyBytes: 2 * blockBytes(in["in"]),
			}
		},
	})

	register(&Impl{
		Kind:          "transpose_block",
		Doc:           "Locally transposes a column-striped block of X into a row-striped block of X^T (finishing stage of a corner turn).",
		In:            []PortReq{{Name: "in", Stripes: []model.StripeKind{model.ByCols}}},
		Out:           []PortReq{{Name: "out", Stripes: []model.StripeKind{model.ByRows}}},
		RequireSquare: true,
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			ib, ob := in["in"], out["out"]
			// in: all rows x c cols of X at column offset k.
			// out: c rows x all cols of X^T at row offset k.
			if ib.Region.C0 != ob.Region.R0 || ib.Region.Cols != ob.Region.Rows ||
				ib.Region.Rows != ob.Region.Cols {
				return fmt.Errorf("funclib: %s: transpose_block regions misaligned: in %v out %v",
					ctx.FuncName, ib.Region, ob.Region)
			}
			isspl.Transpose(ob.Data, ib.Data, ib.Region.Rows, ib.Region.Cols)
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{CopyBytes: blockBytes(in["in"])}
		},
	})

	register(&Impl{
		Kind:  "window_rows",
		Doc:   "Applies a tapering window (param window: rect|hann|hamming|blackman|kaiser) across every local row.",
		In:    []PortReq{{Name: "in", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Out:   []PortReq{{Name: "out", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			ib, ob := in["in"], out["out"]
			if ib.Region != ob.Region {
				return fmt.Errorf("funclib: %s: window_rows regions differ", ctx.FuncName)
			}
			w, err := isspl.Window(isspl.WindowKind(ctx.StringParam("window", "hann")), ib.Region.Cols)
			if err != nil {
				return err
			}
			for r := 0; r < ib.Region.Rows; r++ {
				isspl.VApplyWindow(ob.Data[r*ib.Region.Cols:(r+1)*ib.Region.Cols],
					ib.Data[r*ib.Region.Cols:(r+1)*ib.Region.Cols], w)
			}
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{Flops: isspl.WindowFlops(in["in"].Region.Elems())}
		},
	})

	register(&Impl{
		Kind:  "fir_rows",
		Doc:   "FIR-filters every local row with a generated lowpass (param ntaps).",
		In:    []PortReq{{Name: "in", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Out:   []PortReq{{Name: "out", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Check: checkMatchedPorts("in", "out"),
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			ib, ob := in["in"], out["out"]
			if ib.Region != ob.Region {
				return fmt.Errorf("funclib: %s: fir_rows regions differ", ctx.FuncName)
			}
			taps := LowpassTaps(ctx.IntParam("ntaps", 8))
			cols := ib.Region.Cols
			for r := 0; r < ib.Region.Rows; r++ {
				isspl.FIR(ob.Data[r*cols:(r+1)*cols], ib.Data[r*cols:(r+1)*cols], taps)
			}
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{Flops: isspl.FIRFlops(in["in"].Region.Elems(), ctx.IntParam("ntaps", 8))}
		},
	})
}

func init() {
	register(&Impl{
		Kind: "fir_decimate_rows",
		Doc:  "FIR-filters and decimates every local row (params ntaps, factor); output type has cols/factor columns.",
		In:   []PortReq{{Name: "in", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Out:  []PortReq{{Name: "out", Stripes: []model.StripeKind{model.ByRows, model.Replicated}}},
		Check: func(f *model.Function) error {
			factor := 2
			if v, ok := f.Params["factor"].(int); ok {
				factor = v
			}
			if factor < 1 {
				return fmt.Errorf("funclib: %s: factor %d < 1", f.Name, factor)
			}
			in, out := f.Port("in").Type, f.Port("out").Type
			if in.Cols%factor != 0 || out.Cols != in.Cols/factor || out.Rows != in.Rows {
				return fmt.Errorf("funclib: %s: fir_decimate_rows wants out %dx%d for in %dx%d at factor %d",
					f.Name, in.Rows, in.Cols/factor, in.Rows, in.Cols, factor)
			}
			if f.Port("in").Striping != f.Port("out").Striping {
				return fmt.Errorf("funclib: %s: fir_decimate_rows requires matching port striping", f.Name)
			}
			return nil
		},
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			ib, ob := in["in"], out["out"]
			factor := ctx.IntParam("factor", 2)
			if ib.Region.Rows != ob.Region.Rows || ib.Region.R0 != ob.Region.R0 ||
				ob.Region.Cols*factor != ib.Region.Cols {
				return fmt.Errorf("funclib: %s: fir_decimate_rows regions misaligned: in %v out %v factor %d",
					ctx.FuncName, ib.Region, ob.Region, factor)
			}
			taps := LowpassTaps(ctx.IntParam("ntaps", 8))
			inCols, outCols := ib.Region.Cols, ob.Region.Cols
			for r := 0; r < ib.Region.Rows; r++ {
				n := isspl.FIRDecimate(ob.Data[r*outCols:(r+1)*outCols],
					ib.Data[r*inCols:(r+1)*inCols], taps, factor)
				if n != outCols {
					return fmt.Errorf("funclib: %s: decimation produced %d of %d samples", ctx.FuncName, n, outCols)
				}
			}
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{Flops: isspl.FIRFlops(out["out"].Region.Elems(), ctx.IntParam("ntaps", 8))}
		},
	})
}

func init() {
	register(&Impl{
		Kind: "add2",
		Doc:  "Elementwise sum of two equally-typed inputs (fan-in combiner for DAG applications).",
		In:   []PortReq{{Name: "a", Stripes: anyStripe()}, {Name: "b", Stripes: anyStripe()}},
		Out:  []PortReq{{Name: "out", Stripes: anyStripe()}},
		Check: func(f *model.Function) error {
			a, b, out := f.Port("a"), f.Port("b"), f.Port("out")
			for _, p := range []*model.Port{b, out} {
				if p.Type.Rows != a.Type.Rows || p.Type.Cols != a.Type.Cols || p.Type.Elem != a.Type.Elem {
					return fmt.Errorf("funclib: %s: add2 ports must share one shape, got %dx%d vs %dx%d",
						f.Name, a.Type.Rows, a.Type.Cols, p.Type.Rows, p.Type.Cols)
				}
				if p.Striping != a.Striping {
					return fmt.Errorf("funclib: %s: add2 ports must share one striping (threads combine their local regions), got %q vs %q",
						f.Name, a.Striping, p.Striping)
				}
			}
			return nil
		},
		Compute: func(ctx *Context, in, out map[string]*Block) error {
			a, b, ob := in["a"], in["b"], out["out"]
			if a.Region != ob.Region || b.Region != ob.Region {
				return fmt.Errorf("funclib: %s: add2 regions differ: a %v b %v out %v",
					ctx.FuncName, a.Region, b.Region, ob.Region)
			}
			isspl.VAdd(ob.Data, a.Data, b.Data)
			return nil
		},
		Cost: func(ctx *Context, in, out map[string]*Block) Cost {
			return Cost{Flops: isspl.VectorOpFlops(out["out"].Region.Elems())}
		},
	})
}

// LowpassTaps generates a deterministic n-tap Hamming-windowed moving
// average used by the fir_rows kind (the exact response is irrelevant to the
// benchmarks; determinism is what matters).
func LowpassTaps(n int) []float64 {
	if n < 1 {
		n = 1
	}
	w, err := isspl.Window(isspl.WindowHamming, n)
	if err != nil {
		panic(err)
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
