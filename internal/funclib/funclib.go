// Package funclib is the function library — the "software shelf" of §1.1 —
// binding the Kind names used in application models to executable behaviour,
// port requirements, and operation-cost models. It stands in for the COTS
// functional libraries (CSPI ISSPL) the paper's applications link against;
// the numerical work itself lives in internal/isspl.
//
// Each library entry computes on Blocks: the dense, row-major sub-matrix a
// single thread of a function holds for one port, as carved out by the port
// striping conventions. The SAGE runtime calls Compute once per thread per
// iteration; Cost prices the same work for the simulated machine.
package funclib

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Block is one thread's local view of one port's data set: the region it
// covers and the dense row-major samples.
type Block struct {
	Region model.Region
	Data   []complex128
}

// NewBlock allocates a zeroed block covering region r.
func NewBlock(r model.Region) *Block {
	return &Block{Region: r, Data: make([]complex128, r.Elems())}
}

// At returns the sample at absolute coordinates (r, c), which must lie
// inside the block's region.
func (b *Block) At(r, c int) complex128 {
	return b.Data[(r-b.Region.R0)*b.Region.Cols+(c-b.Region.C0)]
}

// Set writes the sample at absolute coordinates (r, c).
func (b *Block) Set(r, c int, v complex128) {
	b.Data[(r-b.Region.R0)*b.Region.Cols+(c-b.Region.C0)] = v
}

// Context carries per-invocation information into a library function.
type Context struct {
	// FuncName is the model instance name (for error messages).
	FuncName string
	// Params are the function's model parameters.
	Params map[string]any
	// Thread and Threads identify this thread of the host function.
	Thread, Threads int
	// Iteration is the data-set sequence number (0-based).
	Iteration int
	// Sink, when non-nil, receives the blocks a sink-kind function
	// consumes; the runtime wires it to the experiment's collector.
	Sink func(port string, b *Block)
}

// IntParam fetches an integer parameter with a default.
func (c *Context) IntParam(key string, def int) int {
	if v, ok := c.Params[key]; ok {
		switch n := v.(type) {
		case int:
			return n
		case float64:
			return int(n)
		}
	}
	return def
}

// FloatParam fetches a float parameter with a default.
func (c *Context) FloatParam(key string, def float64) float64 {
	if v, ok := c.Params[key]; ok {
		switch n := v.(type) {
		case float64:
			return n
		case int:
			return float64(n)
		}
	}
	return def
}

// StringParam fetches a string parameter with a default.
func (c *Context) StringParam(key string, def string) string {
	if v, ok := c.Params[key].(string); ok {
		return v
	}
	return def
}

// Cost is the priced work of one Compute call.
type Cost struct {
	Flops     float64
	CopyBytes int
}

// PortReq declares a port an implementation requires, with the striping
// kinds it supports.
type PortReq struct {
	Name    string
	Stripes []model.StripeKind
}

func anyStripe() []model.StripeKind {
	return []model.StripeKind{model.Replicated, model.ByRows, model.ByCols}
}

// Impl is a function library entry.
type Impl struct {
	Kind string
	Doc  string
	// In and Out declare the required ports.
	In, Out []PortReq
	// RequireSquare demands a square data type (redistribution kinds).
	RequireSquare bool
	// Check, when non-nil, performs kind-specific cross-port validation
	// (e.g. shape relationships between input and output types).
	Check func(f *model.Function) error
	// Compute runs one thread for one iteration. Inputs are read-only.
	Compute func(ctx *Context, in, out map[string]*Block) error
	// Cost prices that Compute call on the abstract machine.
	Cost func(ctx *Context, in, out map[string]*Block) Cost
}

// registry of library entries, keyed by kind.
var registry = map[string]*Impl{}

// register installs an entry, panicking on duplicates (program bug).
func register(im *Impl) {
	if _, dup := registry[im.Kind]; dup {
		panic("funclib: duplicate kind " + im.Kind)
	}
	registry[im.Kind] = im
}

// Lookup returns the implementation of a kind.
func Lookup(kind string) (*Impl, error) {
	im, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("funclib: unknown function kind %q (have %v)", kind, Kinds())
	}
	return im, nil
}

// Kinds lists the registered kinds in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ValidateFunction checks a model function instance against its library
// entry: required ports present with allowed striping, no extras, square
// shape where demanded.
func ValidateFunction(f *model.Function) error {
	im, err := Lookup(f.Kind)
	if err != nil {
		return fmt.Errorf("funclib: function %q: %w", f.Name, err)
	}
	checkSide := func(side string, reqs []PortReq, ports []*model.Port) error {
		if len(ports) != len(reqs) {
			return fmt.Errorf("funclib: function %q (kind %s) has %d %s ports, want %d",
				f.Name, f.Kind, len(ports), side, len(reqs))
		}
		for _, req := range reqs {
			p := f.Port(req.Name)
			if p == nil {
				return fmt.Errorf("funclib: function %q (kind %s) is missing %s port %q",
					f.Name, f.Kind, side, req.Name)
			}
			ok := false
			for _, s := range req.Stripes {
				if p.Striping == s {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("funclib: function %q port %q striping %q not supported by kind %s (want one of %v)",
					f.Name, req.Name, p.Striping, f.Kind, req.Stripes)
			}
			if im.RequireSquare && p.Type.Rows != p.Type.Cols {
				return fmt.Errorf("funclib: function %q (kind %s) requires a square type, got %dx%d",
					f.Name, f.Kind, p.Type.Rows, p.Type.Cols)
			}
		}
		return nil
	}
	if err := checkSide("input", im.In, f.Inputs); err != nil {
		return err
	}
	if err := checkSide("output", im.Out, f.Outputs); err != nil {
		return err
	}
	if im.Check != nil {
		return im.Check(f)
	}
	return nil
}

// ValidateApp runs ValidateFunction over every leaf function of an app.
func ValidateApp(a *model.App) error {
	for _, f := range a.Functions {
		if f.IsComposite() {
			continue
		}
		if err := ValidateFunction(f); err != nil {
			return err
		}
	}
	return nil
}
