// Package machine models a COTS embedded multicomputer of the kind the paper
// targets (CSPI/Mercury/SKY/SIGI): compute nodes grouped onto boards, an
// intra-board interconnect, and an inter-board fabric (Myrinet, RACEway, VME)
// with finite bandwidth, latency, software messaging overhead and contention.
//
// The model executes on the internal/sim discrete-event kernel: computation
// and communication advance virtual time, and all experiment timings in this
// repository come from that clock. The cost parameters follow a LogGP-style
// decomposition — per-message software overhead on the CPU, wire latency,
// and per-byte serialisation on the sender's NIC — plus an optional shared
// fabric concurrency limit that models a bus/switch bottleneck.
package machine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Platform describes the fixed hardware characteristics of a multicomputer
// family. A Machine instantiates a Platform at a specific node count.
type Platform struct {
	// Name identifies the platform ("CSPI", "Mercury", ...).
	Name string
	// NodesPerBoard is how many processors share a board-local interconnect
	// (e.g. 4 for the CSPI quad-PowerPC boards).
	NodesPerBoard int

	// ClockHz is the CPU clock rate.
	ClockHz float64
	// FlopsPerCycle is the sustained floating-point throughput per cycle for
	// the signal-processing kernels of interest (well below the peak of the
	// architecture; e.g. ~0.3 for a PowerPC 603e running a tuned FFT).
	FlopsPerCycle float64
	// MemCopyBW is local memory copy bandwidth in bytes/second; it prices
	// the runtime's buffer management (the paper's "extra data access
	// times" from unique logical buffers).
	MemCopyBW float64

	// SendOverhead and RecvOverhead are the per-message CPU costs of the
	// messaging software stack.
	SendOverhead sim.Duration
	RecvOverhead sim.Duration

	// IntraLatency/IntraBW describe board-local communication;
	// InterLatency/InterBW describe the inter-board fabric.
	IntraLatency sim.Duration
	IntraBW      float64
	InterLatency sim.Duration
	InterBW      float64

	// FabricConcurrency limits how many inter-board transfers can be in
	// flight simultaneously (a shared bus is 1; a full crossbar is 0,
	// meaning unlimited).
	FabricConcurrency int

	// AllToAll names the vendor-tuned all-to-all algorithm the platform's
	// MPI uses ("direct", "pairwise", "bruck"). The paper notes each vendor
	// implemented its own MPI_All_to_All tailored to its hardware.
	AllToAll string
}

// Validate reports whether the platform parameters are complete and sane.
func (pl *Platform) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(pl.Name != "", "platform name is empty")
	check(pl.NodesPerBoard >= 1, "NodesPerBoard = %d, want >= 1", pl.NodesPerBoard)
	check(pl.ClockHz > 0, "ClockHz = %v, want > 0", pl.ClockHz)
	check(pl.FlopsPerCycle > 0, "FlopsPerCycle = %v, want > 0", pl.FlopsPerCycle)
	check(pl.MemCopyBW > 0, "MemCopyBW = %v, want > 0", pl.MemCopyBW)
	check(pl.SendOverhead >= 0, "SendOverhead = %v, want >= 0", pl.SendOverhead)
	check(pl.RecvOverhead >= 0, "RecvOverhead = %v, want >= 0", pl.RecvOverhead)
	check(pl.IntraLatency >= 0, "IntraLatency = %v, want >= 0", pl.IntraLatency)
	check(pl.IntraBW > 0, "IntraBW = %v, want > 0", pl.IntraBW)
	check(pl.InterLatency >= 0, "InterLatency = %v, want >= 0", pl.InterLatency)
	check(pl.InterBW > 0, "InterBW = %v, want > 0", pl.InterBW)
	check(pl.FabricConcurrency >= 0, "FabricConcurrency = %d, want >= 0", pl.FabricConcurrency)
	switch pl.AllToAll {
	case "", "direct", "pairwise", "bruck":
	default:
		errs = append(errs, fmt.Errorf("unknown AllToAll algorithm %q", pl.AllToAll))
	}
	return errors.Join(errs...)
}

// FlopTime returns the virtual CPU time to execute nflops floating-point
// operations at the platform's sustained rate.
func (pl *Platform) FlopTime(nflops float64) sim.Duration {
	if nflops <= 0 {
		return 0
	}
	sec := nflops / (pl.ClockHz * pl.FlopsPerCycle)
	return sim.Duration(sec * float64(time.Second))
}

// CopyTime returns the virtual time to copy n bytes in local memory.
func (pl *Platform) CopyTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	sec := float64(n) / pl.MemCopyBW
	return sim.Duration(sec * float64(time.Second))
}

// serialTime returns the wire serialisation time for n bytes at bw bytes/s.
func serialTime(n int, bw float64) sim.Duration {
	if n <= 0 {
		return 0
	}
	sec := float64(n) / bw
	return sim.Duration(sec * float64(time.Second))
}

// Board returns the board index hosting node id.
func (pl *Platform) Board(id int) int { return id / pl.NodesPerBoard }

// SameBoard reports whether two nodes share a board-local interconnect.
func (pl *Platform) SameBoard(a, b int) bool { return pl.Board(a) == pl.Board(b) }
