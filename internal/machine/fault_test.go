package machine

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// faultMachine builds a 4-node test machine with the given plan installed.
func faultMachine(t *testing.T, plan *fault.Plan) (*sim.Kernel, *Machine) {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	m := New(k, testPlatform(), 4)
	m.SetFaults(plan.NewInjector())
	return k, m
}

func forever() fault.Window { return fault.Window{From: 0, To: fault.Forever} }

// TestTryTransferDownLink is the zero-bandwidth edge case: a bw=0 degraded
// link must refuse the attempt after the software overhead — no division by
// zero, no infinite serialisation, and the wire is never occupied.
func TestTryTransferDownLink(t *testing.T) {
	k, m := faultMachine(t, &fault.Plan{
		Degrades: []fault.DegradeRule{{Link: fault.LinkSel{Src: 0, Dst: 1}, BWFactor: 0, Win: forever()}},
	})
	var at sim.Time
	var ok bool
	var elapsed sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		at, ok = m.Node(0).TryTransfer(p, 1, 100_000)
		elapsed = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || at != 0 {
		t.Fatalf("downed link delivered: at=%v ok=%v", at, ok)
	}
	// The refused attempt costs exactly the send overhead (10us), not the
	// 1ms serialisation a healthy attempt would pay.
	if elapsed != sim.Time(10*time.Microsecond) {
		t.Fatalf("refused attempt took %v, want the 10us overhead only", elapsed)
	}
	if m.Faults().Counts()["down"] != 1 {
		t.Fatalf("down not counted: %v", m.Faults().Counts())
	}
}

// TestTransferBypassesFaults is the starvation guard: the fault-oblivious
// maintenance path must deliver even on a link that is down and dropping
// everything, so a capped retry loop can always force progress.
func TestTransferBypassesFaults(t *testing.T) {
	k, m := faultMachine(t, &fault.Plan{
		Drops:    []fault.DropRule{{Link: fault.LinkSel{Src: fault.AllLinks, Dst: fault.AllLinks}, Rate: 1, Win: forever()}},
		Degrades: []fault.DegradeRule{{Link: fault.LinkSel{Src: 0, Dst: 1}, BWFactor: 0, Win: forever()}},
	})
	var at sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		at = m.Node(0).Transfer(p, 1, 100_000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Base cost: 10us overhead + 1ms serialisation + 1us latency.
	want := sim.Time(10*time.Microsecond + time.Millisecond + time.Microsecond)
	if at != want {
		t.Fatalf("maintenance transfer arrival %v, want %v", at, want)
	}
}

// TestTryTransferDropPaysFullCost: a dropped message wastes the entire send
// cost (overhead + serialisation) but never arrives.
func TestTryTransferDropPaysFullCost(t *testing.T) {
	k, m := faultMachine(t, &fault.Plan{
		Drops: []fault.DropRule{{Link: fault.LinkSel{Src: fault.AllLinks, Dst: fault.AllLinks}, Rate: 1, Win: forever()}},
	})
	var ok bool
	var elapsed sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		_, ok = m.Node(0).TryTransfer(p, 1, 100_000)
		elapsed = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("rate-1 drop delivered")
	}
	if elapsed != sim.Time(10*time.Microsecond+time.Millisecond) {
		t.Fatalf("dropped attempt took %v, want full send cost", elapsed)
	}
}

// TestTryTransferDegradedBandwidth: bandwidth scaling stretches serialisation
// and extra latency shifts arrival, including on a zero-latency platform (the
// zero-latency edge case — nothing underflows or divides by zero).
func TestTryTransferDegradedBandwidth(t *testing.T) {
	pl := testPlatform()
	pl.IntraLatency = 0
	pl.InterLatency = 0
	plan := &fault.Plan{
		Degrades: []fault.DegradeRule{{
			Link: fault.LinkSel{Src: 0, Dst: 1}, BWFactor: 0.5,
			ExtraLatency: 7 * time.Microsecond, Win: forever(),
		}},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	m := New(k, pl, 4)
	m.SetFaults(plan.NewInjector())
	var at sim.Time
	var ok bool
	k.Spawn("s", func(p *sim.Proc) {
		at, ok = m.Node(0).TryTransfer(p, 1, 100_000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("degraded (but up) link refused delivery")
	}
	// 10us overhead + 2ms serialisation (half bandwidth) + 0 base latency
	// + 7us extra latency.
	want := sim.Time(10*time.Microsecond + 2*time.Millisecond + 7*time.Microsecond)
	if at != want {
		t.Fatalf("degraded arrival %v, want %v", at, want)
	}
}

// TestSelfTransferSkipsInjector: a node talking to itself is a memcpy, not a
// link, and must be immune to even a drop-everything plan.
func TestSelfTransferSkipsInjector(t *testing.T) {
	k, m := faultMachine(t, &fault.Plan{
		Drops: []fault.DropRule{{Link: fault.LinkSel{Src: fault.AllLinks, Dst: fault.AllLinks}, Rate: 1, Win: forever()}},
	})
	var ok bool
	k.Spawn("s", func(p *sim.Proc) {
		_, ok = m.Node(0).TryTransfer(p, 0, 1000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("self transfer was dropped")
	}
}

// TestStallWindowPausesCPU: a stalled node's CPU freezes for the window and
// in-progress work resumes afterwards (crash-restart, nothing lost).
func TestStallWindowPausesCPU(t *testing.T) {
	k, m := faultMachine(t, &fault.Plan{
		Stalls: []fault.StallRule{{Node: 0, Win: fault.Window{
			From: 0, To: sim.Time(time.Millisecond),
		}}},
	})
	var done0, done1 sim.Time
	k.Spawn("stalled", func(p *sim.Proc) {
		m.Node(0).ComputeTime(p, 500*time.Microsecond)
		done0 = p.Now()
	})
	k.Spawn("healthy", func(p *sim.Proc) {
		m.Node(1).ComputeTime(p, 500*time.Microsecond)
		done1 = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done1 != sim.Time(500*time.Microsecond) {
		t.Fatalf("healthy node finished at %v, want 500us", done1)
	}
	if done0 != sim.Time(time.Millisecond+500*time.Microsecond) {
		t.Fatalf("stalled node finished at %v, want 1.5ms (1ms stall + 500us work)", done0)
	}
	if m.Faults().Counts()["stall"] != 1 {
		t.Fatalf("stall not counted once: %v", m.Faults().Counts())
	}
}
