package machine

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Machine is a Platform instantiated at a specific node count on a simulation
// kernel. All nodes of a machine share one kernel and one virtual clock.
type Machine struct {
	K      *sim.Kernel
	Plat   Platform
	nodes  []*Node
	fabric *sim.Resource // nil when FabricConcurrency == 0 (crossbar)
	tr     *trace.Collector
	faults *fault.Injector
}

// SetTrace attaches a trace collector to the machine and installs it as the
// kernel's structured tracer. A nil collector disables tracing (the
// default). Call before the simulation runs; one collector serves one
// kernel.
func (m *Machine) SetTrace(c *trace.Collector) {
	m.tr = c
	if c.Enabled() {
		m.K.SetTracer(c)
	}
	m.faults.SetTrace(c)
}

// SetFaults installs a fault injector on the machine's links and node CPUs.
// A nil injector disables injection (the default). The injector belongs to
// this machine's kernel — never share one across machines. Call before the
// simulation runs, in any order relative to SetTrace.
func (m *Machine) SetFaults(inj *fault.Injector) {
	m.faults = inj
	inj.SetTrace(m.tr)
	// Pre-size the injector's per-node state so a sharded run never grows
	// it concurrently.
	inj.Bind(len(m.nodes))
}

// Faults returns the installed injector (nil — the disabled injector — when
// fault injection is off). The MPI substrate consults it to decide whether
// sends need the retry protocol.
func (m *Machine) Faults() *fault.Injector { return m.faults }

// Trace returns the attached collector (nil — the disabled collector — when
// tracing is off). Layers above the machine (mpi, sagert, handcoded) emit
// their spans through it.
func (m *Machine) Trace() *trace.Collector { return m.tr }

// TraceNodeTotals records every node's accumulated counters into the
// attached collector and stamps the final virtual time; call after the
// kernel has drained. No-op when tracing is off.
func (m *Machine) TraceNodeTotals() {
	if !m.tr.Enabled() {
		return
	}
	for _, nd := range m.nodes {
		m.tr.AddNodeTotals(trace.NodeTotals{
			Node: nd.ID, ComputeBusy: nd.ComputeBusy, CopyBusy: nd.CopyBusy,
			CommBusy: nd.CommBusy, MsgsSent: nd.MsgsSent, BytesSent: nd.BytesSent,
		})
	}
	m.tr.Finish(m.K)
}

// Node is one processor of the machine. Per-node accounting (busy time split
// into compute, copy and communication) feeds the utilisation reports of the
// visualizer.
type Node struct {
	ID     int
	Board  int
	mach   *Machine
	egress *sim.Resource
	cpu    *sim.Resource // serialises the CPU among co-located threads
	// speed is the node's CPU speed multiplier relative to the platform
	// baseline (heterogeneous systems mix processor generations; the
	// paper's mapper explicitly targets "the multi-processor,
	// heterogeneous architecture"). Affects compute, not the memory or
	// messaging system.
	speed float64

	// Accounting, in virtual time.
	ComputeBusy sim.Duration
	CopyBusy    sim.Duration
	CommBusy    sim.Duration
	MsgsSent    int
	BytesSent   int64
}

// cpuQuantum is the preemption granularity of the node CPU model: a long
// computation holds the processor in quantum-sized slices so co-located
// threads time-share (as under the VxWorks scheduler) instead of convoying
// behind one unpreemptable burst.
const cpuQuantum = 250 * time.Microsecond

// busy occupies the node's CPU for duration d: co-located simulated threads
// time-share the processor rather than overlapping for free. When the fault
// injector has the node inside a stall window, the CPU is unavailable until
// the restart time — crash-restart semantics at quantum granularity:
// in-progress work pauses and resumes, it is not lost.
func (nd *Node) busy(p *sim.Proc, d sim.Duration) {
	for d > 0 {
		if end, ok := nd.mach.faults.StalledUntil(nd.ID, p.Now()); ok {
			p.SleepUntil(end)
		}
		q := d
		if q > cpuQuantum {
			q = cpuQuantum
		}
		nd.cpu.Use(p, 1, q)
		d -= q
	}
}

// New creates a machine with n nodes of the given platform. It panics on an
// invalid platform or node count, since both are programming errors in this
// codebase (platforms are compiled in, counts come from validated configs).
func New(k *sim.Kernel, pl Platform, n int) *Machine {
	if err := pl.Validate(); err != nil {
		panic(fmt.Sprintf("machine: invalid platform %s: %v", pl.Name, err))
	}
	if n < 1 {
		panic(fmt.Sprintf("machine: node count %d < 1", n))
	}
	m := &Machine{K: k, Plat: pl}
	if pl.FabricConcurrency > 0 {
		m.fabric = sim.NewResource(k, pl.Name+".fabric", pl.FabricConcurrency)
	}
	for i := 0; i < n; i++ {
		// Per-node resources live on the shard owning the node (shard 0 on
		// an unsharded kernel), since only processes on that node touch
		// them. The fabric above stays global: a platform with a shared
		// fabric cannot shard (the runtime layer forces one shard).
		m.nodes = append(m.nodes, &Node{
			ID:     i,
			Board:  pl.Board(i),
			mach:   m,
			egress: sim.NewResourceOn(k, i, fmt.Sprintf("%s.n%d.egress", pl.Name, i), 1),
			cpu:    sim.NewResourceOn(k, i, fmt.Sprintf("%s.n%d.cpu", pl.Name, i), 1),
			speed:  1,
		})
	}
	return m
}

// NumNodes reports the node count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// Node returns node id (panics if out of range).
func (m *Machine) Node(id int) *Node { return m.nodes[id] }

// Nodes returns all nodes in id order.
func (m *Machine) Nodes() []*Node { return m.nodes }

// ComputeFlops blocks the calling process for the CPU time of nflops
// floating-point operations on this node.
func (nd *Node) ComputeFlops(p *sim.Proc, nflops float64) {
	d := sim.Duration(float64(nd.mach.Plat.FlopTime(nflops)) / nd.speed)
	nd.ComputeBusy += d
	nd.busy(p, d)
}

// Speed reports the node's CPU speed multiplier.
func (nd *Node) Speed() float64 { return nd.speed }

// SetSpeed sets the node's CPU speed multiplier (must be > 0).
func (nd *Node) SetSpeed(mult float64) {
	if mult <= 0 {
		panic(fmt.Sprintf("machine: node %d speed %v <= 0", nd.ID, mult))
	}
	nd.speed = mult
}

// SetNodeSpeeds applies per-node CPU speed multipliers; speeds beyond the
// node count are ignored, missing entries keep 1.0.
func (m *Machine) SetNodeSpeeds(speeds []float64) {
	for i, s := range speeds {
		if i >= len(m.nodes) {
			return
		}
		m.nodes[i].SetSpeed(s)
	}
}

// ComputeTime blocks the calling process for an explicit CPU duration
// (used for fixed software overheads such as dispatch).
func (nd *Node) ComputeTime(p *sim.Proc, d sim.Duration) {
	if d < 0 {
		d = 0
	}
	nd.ComputeBusy += d
	nd.busy(p, d)
}

// Memcpy blocks the calling process for a local copy of n bytes.
func (nd *Node) Memcpy(p *sim.Proc, n int) {
	d := nd.mach.Plat.CopyTime(n)
	nd.CopyBusy += d
	nd.busy(p, d)
}

// Transfer models sending n bytes from this node to node dst. The calling
// process (the sender's CPU) is blocked for the software send overhead and
// the wire serialisation time (during which the node's egress port — and,
// for inter-board transfers, a unit of the shared fabric — is held). It
// returns the virtual time at which the payload arrives at dst, i.e. the
// earliest moment a receiver can observe it; latency is pipelined and does
// not occupy the sender.
//
// A self-transfer (dst == this node) is priced as a local memory copy.
//
// Transfer bypasses the fault injector entirely: it is the base link
// behaviour, and also the maintenance path a retry protocol escalates to
// after exhausting its attempt budget (which is what guarantees progress
// under any fault plan). Fault-aware senders use TryTransfer.
func (nd *Node) Transfer(p *sim.Proc, dst int, n int) sim.Time {
	at, _ := nd.transfer(p, dst, n, fault.Outcome{BWFactor: 1})
	return at
}

// TryTransfer is Transfer under the machine's fault injector: link
// degradation scales bandwidth and adds latency, a downed (zero-bandwidth)
// link refuses the attempt after the software overhead without occupying
// the wire, and a drop loses the message after the full send cost. ok
// reports whether the payload will arrive; on ok the arrival time is
// returned exactly as from Transfer. Without an installed injector
// TryTransfer is identical to Transfer.
func (nd *Node) TryTransfer(p *sim.Proc, dst int, n int) (arrival sim.Time, ok bool) {
	var out fault.Outcome
	if dst == nd.ID {
		out = fault.Outcome{BWFactor: 1} // self-transfers never touch a link
	} else {
		out = nd.mach.faults.LinkAttempt(nd.ID, dst, p.Now())
	}
	return nd.transfer(p, dst, n, out)
}

// transfer is the shared core of Transfer and TryTransfer.
func (nd *Node) transfer(p *sim.Proc, dst int, n int, out fault.Outcome) (sim.Time, bool) {
	m := nd.mach
	pl := &m.Plat
	nd.MsgsSent++
	nd.BytesSent += int64(n)
	m.tr.LinkTransfer(nd.ID, dst, n)
	if dst == nd.ID {
		nd.Memcpy(p, n)
		return p.Now(), true
	}
	// Software overhead on the sending CPU.
	nd.busy(p, pl.SendOverhead)

	if out.Down {
		// The link refused the attempt before anything serialised: the
		// software overhead is the whole (wasted) cost. Guards the
		// zero-bandwidth degradation case — nothing divides by the zero.
		nd.CommBusy += pl.SendOverhead
		return 0, false
	}

	intra := pl.SameBoard(nd.ID, dst)
	var lat sim.Duration
	var ser sim.Duration
	if intra {
		lat = pl.IntraLatency
		ser = serialTime(n, pl.IntraBW*out.BWFactor)
	} else {
		lat = pl.InterLatency
		ser = serialTime(n, pl.InterBW*out.BWFactor)
	}
	lat += out.ExtraLatency

	useFabric := !intra && m.fabric != nil
	if useFabric {
		m.fabric.Acquire(p, 1)
	}
	nd.egress.Acquire(p, 1)
	p.Sleep(ser)
	nd.egress.Release(1)
	if useFabric {
		m.fabric.Release(1)
	}
	// Account occupancy only (overhead + wire serialisation), not time
	// spent queueing for the fabric, so utilisation stays meaningful.
	nd.CommBusy += pl.SendOverhead + ser
	if out.Drop {
		// Lost on the wire: the full send cost was paid for nothing.
		return 0, false
	}
	return p.Now().Add(lat), true
}

// RecvOverhead blocks the calling process for the software cost of receiving
// one message on this node.
func (nd *Node) RecvOverhead(p *sim.Proc) {
	d := nd.mach.Plat.RecvOverhead
	nd.CommBusy += d
	nd.busy(p, d)
}

// Utilization reports the fraction of the elapsed virtual time [0, now] this
// node's CPU spent busy (compute + copy). Wire serialisation is concurrent
// DMA-engine work and is reported separately via CommBusy. Returns 0 for an
// idle clock.
func (nd *Node) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(nd.ComputeBusy+nd.CopyBusy) / float64(now)
}

// ResetAccounting clears the per-node counters (used between experiment
// repetitions that share a machine).
func (nd *Node) ResetAccounting() {
	nd.ComputeBusy, nd.CopyBusy, nd.CommBusy = 0, 0, 0
	nd.MsgsSent, nd.BytesSent = 0, 0
}
